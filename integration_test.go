package strgindex

import (
	"bytes"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// TestEndToEndRetrievalQuality is the repository's cross-module smoke
// test: generate a stream, ingest it through the whole pipeline, query
// with fresh (unseen) instances of each motion class and check that
// retrieval surfaces the right clips.
func TestEndToEndRetrievalQuality(t *testing.T) {
	profile := video.StreamProfile{
		Name: "IT", Kind: video.KindLab,
		NumObjects: 24, SegmentFrames: 24, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(profile, 1234)
	if err != nil {
		t.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	if db.Stats().OGs < 16 {
		t.Fatalf("only %d OGs extracted from 24 objects", db.Stats().OGs)
	}

	// Fresh queries: straight-line trajectories along the lab corridors
	// (the classes the stream's objects walk).
	queries := []struct {
		name string
		path [2]geom.Point
	}{
		{"horizontal-east", [2]geom.Point{geom.Pt(16, 72), geom.Pt(304, 72)}},
		{"horizontal-west", [2]geom.Point{geom.Pt(304, 168), geom.Pt(16, 168)}},
		{"vertical-south", [2]geom.Point{geom.Pt(80, 12), geom.Pt(80, 228)}},
		{"vertical-north", [2]geom.Point{geom.Pt(240, 228), geom.Pt(240, 12)}},
	}
	for _, q := range queries {
		pts := geom.ResamplePath([]geom.Point{q.path[0], q.path[1]}, 20)
		seq := make(dist.Sequence, len(pts))
		for i, p := range pts {
			seq[i] = dist.Vec{p.X, p.Y}
		}
		// Skip classes the small stream happens not to contain.
		present := false
		for _, class := range stream.Classes {
			if class == q.name {
				present = true
			}
		}
		if !present {
			continue
		}
		matches := db.QueryTrajectoryExact(seq, 3)
		if len(matches) == 0 {
			t.Errorf("%s: no matches", q.name)
			continue
		}
		if got := stream.Classes[matches[0].Record.Label]; got != q.name {
			t.Errorf("%s: top match has class %q", q.name, got)
		}
	}
}

// TestEndToEndPersistenceAndRequery round-trips a whole database through
// Save/Load and requires byte-identical retrieval behavior.
func TestEndToEndPersistenceAndRequery(t *testing.T) {
	profile := video.StreamProfile{
		Name: "P", Kind: video.KindTraffic,
		NumObjects: 12, SegmentFrames: 24, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(profile, 77)
	if err != nil {
		t.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(&buf, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := dist.Sequence{{10, 90}, {160, 92}, {310, 94}}
	a := db.QueryTrajectory(q, 4)
	b := loaded.QueryTrajectory(q, 4)
	if len(a) != len(b) {
		t.Fatalf("match counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("match %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEndToEndQueryByExampleSegment ingests a stream, then queries with a
// video segment containing a known motion (Section 5.5's full flow) and
// checks the result classes.
func TestEndToEndQueryByExampleSegment(t *testing.T) {
	profile := video.StreamProfile{
		Name: "QBE", Kind: video.KindLab,
		NumObjects: 20, SegmentFrames: 24, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(profile, 555)
	if err != nil {
		t.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	// Query segment: one person walking the horizontal-east corridor.
	qseg, err := video.Generate(video.SceneConfig{
		Name: "q", Width: 320, Height: 240, FPS: 12, Frames: 24,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 9,
		Objects: []video.ObjectSpec{{
			Label: "probe",
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 110, Color: graph.Color{R: 0.7, G: 0.55, B: 0.45}},
				{Offset: geom.Vec(0, 0), Size: 340, Color: graph.Color{R: 0.3, G: 0.8, B: 0.3}},
				{Offset: geom.Vec(0, 17), Size: 260, Color: graph.Color{R: 0.25, G: 0.3, B: 0.5}},
			},
			Path:  []geom.Point{geom.Pt(16, 72), geom.Pt(304, 72)},
			Start: 0, End: 24,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	perOG, err := db.QuerySegment(qseg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(perOG) != 1 {
		t.Fatalf("query segment extracted %d OGs, want 1", len(perOG))
	}
	if len(perOG[0]) == 0 {
		t.Fatal("no matches for the probe")
	}
	// Relevance: the stream must contain horizontal-east objects for the
	// probe to match; verify the seed provides some, then check the hit.
	hasEast := false
	for _, class := range stream.Classes {
		if class == "horizontal-east" {
			hasEast = true
		}
	}
	if hasEast {
		if got := stream.Classes[perOG[0][0].Record.Label]; got != "horizontal-east" {
			t.Errorf("probe's top match class = %q, want horizontal-east", got)
		}
	}
}
