// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus micro-benchmarks of the hot operations underneath them.
// The experiment-level benchmarks use reduced scales so `go test -bench=.`
// completes in minutes; `cmd/strg-bench -scale full` runs the paper-sized
// versions.
package strgindex

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"strgindex/internal/cluster"
	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/experiments"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/index"
	"strgindex/internal/mtree"
	"strgindex/internal/query"
	"strgindex/internal/rtree"
	"strgindex/internal/shot"
	"strgindex/internal/strg"
	"strgindex/internal/synth"
	"strgindex/internal/video"
)

// benchScale is the reduced experiment scale used by the table/figure
// benchmarks.
func benchScale() experiments.Scale {
	return experiments.Scale{
		StreamDivisor:  40,
		Fig5PerPattern: 3,
		Fig5Noises:     []float64{0.15},
		Fig7Sizes:      []int{240},
		Fig7Queries:    8,
		Fig7Clusters:   48,
		Fig7Patterns:   12,
		MaxK:           6,
		EMMaxIter:      12,
		Seed:           1,
	}
}

// benchSequences returns a deterministic synthetic trajectory set.
func benchSequences(b *testing.B, perPattern int, patterns int) *synth.Dataset {
	b.Helper()
	ds, err := synth.Generate(synth.Config{
		PerPattern:  perPattern,
		NoisePct:    0.10,
		Seed:        7,
		NumPatterns: patterns,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// --- Micro-benchmarks: distance kernels -------------------------------

func benchPair(b *testing.B) (dist.Sequence, dist.Sequence) {
	b.Helper()
	ds := benchSequences(b, 1, 48)
	return ds.Items[3], ds.Items[29]
}

func BenchmarkEGED(b *testing.B) {
	x, y := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.EGED(x, y)
	}
}

func BenchmarkEGEDM(b *testing.B) {
	x, y := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.EGEDMZero(x, y)
	}
}

func BenchmarkDTW(b *testing.B) {
	x, y := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.DTW(x, y)
	}
}

func BenchmarkLCS(b *testing.B) {
	x, y := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.LCSLength(x, y, 12)
	}
}

// workerSweep is the worker-count axis of the parallel benchmarks: 1
// (the paper's sequential baseline), 2, 4 and one-per-CPU.
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// BenchmarkPairwiseMatrix measures the tentpole primitive: the full
// pairwise EGED matrix (upper triangle only) that dominates EM clustering
// and index construction, across worker counts.
func BenchmarkPairwiseMatrix(b *testing.B) {
	ds := benchSequences(b, 2, 48)
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dist.PairwiseMatrix(ds.Items, dist.EGED, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks: pipeline stages --------------------------------

// BenchmarkSTRGBuild measures RAG construction plus graph-based tracking
// (Algorithm 1) for one 24-frame segment with two moving objects.
func BenchmarkSTRGBuild(b *testing.B) {
	p := video.StreamProfile{Name: "B", Kind: video.KindLab, NumObjects: 2, SegmentFrames: 24, ObjectsPerSegment: 2}
	stream, err := video.GenerateStream(p, 3)
	if err != nil {
		b.Fatal(err)
	}
	seg := stream.Segments[0]
	cfg := strg.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strg.Build(seg, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTRGBuildParallel sweeps the Concurrency knob over a busier
// segment (eight objects), where the per-frame RAGs and Algorithm 1's
// candidate scoring carry enough work to fan out.
func BenchmarkSTRGBuildParallel(b *testing.B) {
	p := video.StreamProfile{Name: "B", Kind: video.KindLab, NumObjects: 8, SegmentFrames: 24, ObjectsPerSegment: 8}
	stream, err := video.GenerateStream(p, 3)
	if err != nil {
		b.Fatal(err)
	}
	seg := stream.Segments[0]
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := strg.DefaultConfig()
			cfg.Concurrency = workers
			for i := 0; i < b.N; i++ {
				if _, err := strg.Build(seg, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompose measures ORG extraction, OG merging and BG collapse.
func BenchmarkDecompose(b *testing.B) {
	p := video.StreamProfile{Name: "B", Kind: video.KindLab, NumObjects: 2, SegmentFrames: 24, ObjectsPerSegment: 2}
	stream, err := video.GenerateStream(p, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg := strg.DefaultConfig()
	s, err := strg.Build(stream.Segments[0], cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decompose(cfg)
	}
}

// --- Table 1: stream ingest through the full pipeline -----------------

func BenchmarkTable1Ingest(b *testing.B) {
	p := video.StreamProfile{Name: "Lab2", Kind: video.KindLab, NumObjects: 4, SegmentFrames: 24, ObjectsPerSegment: 2}
	stream, err := video.GenerateStream(p, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := core.Open(core.DefaultConfig())
		if err := db.IngestStream(stream); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: the clustering grid's dominant cell --------------------

func BenchmarkFigure5ClusteringGrid(b *testing.B) {
	ds := benchSequences(b, 3, 48)
	cfg := cluster.Config{K: 48, MaxIter: 12, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.EM(ds.Items, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6(b): cluster building under a fixed iteration budget -----

func BenchmarkFigure6ClusterBuild(b *testing.B) {
	ds := benchSequences(b, 3, 48)
	for _, tc := range []struct {
		name string
		run  func([]dist.Sequence, cluster.Config) (*cluster.Result, error)
	}{
		{"EM", cluster.EM},
		{"KM", cluster.KMeans},
		{"KHM", cluster.KHarmonicMeans},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := cluster.Config{K: 48, MaxIter: 8, Tol: 1e-12, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := tc.run(ds.Items, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6ClusterBuildParallel sweeps EM cluster building (the
// Figure 6(b) workload) over the worker pool.
func BenchmarkFigure6ClusterBuildParallel(b *testing.B) {
	ds := benchSequences(b, 3, 48)
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := cluster.Config{K: 48, MaxIter: 8, Tol: 1e-12, Seed: 1, Concurrency: workers}
			for i := 0; i < b.N; i++ {
				if _, err := cluster.EM(ds.Items, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7(a): index building --------------------------------------

func BenchmarkFigure7IndexBuild(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	b.Run("STRG-Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := index.New[int](index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1})
			if err := tr.AddSegment(nil, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tc := range []struct {
		name   string
		policy mtree.PromotePolicy
	}{
		{"MT-RA", mtree.PromoteRandom},
		{"MT-SA", mtree.PromoteSampling},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := mtree.New[int](mtree.Config{Metric: dist.EGEDMZero, Policy: tc.policy, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				for j, seq := range ds.Items {
					tr.Insert(seq, j)
				}
			}
		})
	}
}

// --- Figure 7(b): k-NN query cost --------------------------------------

func BenchmarkFigure7KNN(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	strgTree := index.New[int](index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1})
	if err := strgTree.AddSegment(nil, items); err != nil {
		b.Fatal(err)
	}
	mt, err := mtree.New[int](mtree.Config{Metric: dist.EGEDMZero, Policy: mtree.PromoteRandom, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for j, seq := range ds.Items {
		mt.Insert(seq, j)
	}
	queries := benchSequences(b, 1, 12).Items
	rng := rand.New(rand.NewSource(9))
	b.Run("STRG-Index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strgTree.KNN(nil, queries[rng.Intn(len(queries))], 10)
		}
	})
	b.Run("MT-RA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mt.KNN(queries[rng.Intn(len(queries))], 10)
		}
	})
	b.Run("STRG-Index-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strgTree.KNNExact(nil, queries[rng.Intn(len(queries))], 10)
		}
	})
}

// BenchmarkFigure7KNNParallel sweeps the exact k-NN search (the mode that
// scans several leaves and thus benefits from parallel leaf scans) over
// the worker pool. Each worker count builds its own tree so construction
// parallelism is exercised too; results are identical at every setting.
func BenchmarkFigure7KNNParallel(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	queries := benchSequences(b, 1, 12).Items
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tr := index.New[int](index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1, Concurrency: workers})
			if err := tr.AddSegment(nil, items); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.KNNExact(nil, queries[rng.Intn(len(queries))], 10)
			}
		})
	}
}

// --- Filter-and-refine distance cascade --------------------------------

// BenchmarkCascadeKNNExact measures the three-stage distance cascade on
// the exact k-NN workload over one tree layout:
//
//	stage=exact    cascade disabled — every surviving record pays the
//	               full DP (the pre-cascade baseline)
//	stage=cascade  lower bounds + early-abandoning kernels
//	stage=cached   cascade plus the distance cache, with queries repeating
//	               as real workloads do
//
// Beyond ns/op it reports DP cells evaluated and the per-stage record
// dispositions as custom /op metrics (benchjson collects them under
// "extra"), so BENCH_cascade.json records how much work each stage of
// the cascade eliminated.
func BenchmarkCascadeKNNExact(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	queries := benchSequences(b, 1, 12).Items
	for _, tc := range []struct {
		name string
		mut  func(*index.Config)
	}{
		{"stage=exact", func(c *index.Config) { c.DisableCascade = true }},
		{"stage=cascade", nil},
		{"stage=cached", func(c *index.Config) { c.Cache = core.NewDistCache(core.DefaultDistCacheSize) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1}
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			tr := index.New[int](cfg)
			if err := tr.AddSegment(nil, items); err != nil {
				b.Fatal(err)
			}
			var agg index.SearchStats
			cells := dist.DPCells()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := tr.KNNExactStats(nil, queries[i%len(queries)], 10)
				if err != nil {
					b.Fatal(err)
				}
				agg.Records += st.Records
				agg.CacheHits += st.CacheHits
				agg.LBQuickPruned += st.LBQuickPruned
				agg.LBEnvelopePruned += st.LBEnvelopePruned
				agg.DPEvaluated += st.DPEvaluated
				agg.DPAbandoned += st.DPAbandoned
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(dist.DPCells()-cells)/n, "dp_cells/op")
			b.ReportMetric(float64(agg.Records)/n, "records/op")
			b.ReportMetric(float64(agg.LBPruned())/n, "lb_pruned/op")
			b.ReportMetric(float64(agg.DPAbandoned)/n, "dp_abandoned/op")
			b.ReportMetric(float64(agg.DPEvaluated)/n, "dp_evaluated/op")
			b.ReportMetric(float64(agg.CacheHits)/n, "cache_hits/op")
		})
	}
}

// BenchmarkBatchedLeafDP isolates the columnar tentpole's kernel gain:
// the same query × candidate-set DP workload through the per-pair
// sequence kernel (a sync.Pool round-trip and three Norm calls per cell)
// and through the batched columnar kernel (one arena, hoisted gap costs,
// one Norm per cell). The results are bit-identical by construction; only
// the time may differ. benchjson enforces batched >= 1.5x per-pair from
// these two entries — a per-core property, so it holds on any box.
func BenchmarkBatchedLeafDP(b *testing.B) {
	ds := benchSequences(b, 8, 12)
	query := ds.Items[0]
	cands := ds.Items[1:]
	blocks := dist.FromSequences(cands)
	qb := dist.FromSequence(query)
	// A finite shared threshold so both kernels exercise the abandon path
	// the way a leaf scan does.
	ub := dist.EGEDM(query, cands[len(cands)/2], nil)

	b.Run("kernel=perpair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				dist.EGEDMUB(query, c, nil, ub)
			}
		}
	})
	b.Run("kernel=batched", func(b *testing.B) {
		arena := dist.NewBatchQuery(qb, nil).NewBatch()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range blocks {
				arena.DistanceUB(c, ub)
			}
		}
	})
}

// BenchmarkColumnarKNNExact measures the layout end to end on the exact
// k-NN workload: the pointer-chasing row layout against the columnar
// layout with its batched kernel and quantized 8-bit tier. Reports the
// quantized tier's hit rate (records killed by the 2-byte code before any
// column data was touched) as quant_pruned/op.
func BenchmarkColumnarKNNExact(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	queries := benchSequences(b, 1, 12).Items
	for _, tc := range []struct {
		name string
		mut  func(*index.Config)
	}{
		{"layout=row", func(c *index.Config) { c.DisableColumnar = true }},
		{"layout=columnar", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			// Few clusters leave each leaf holding several patterns, so the
			// record-level tiers (not leaf skipping) do the pruning — the
			// regime the quantized tier exists for.
			cfg := index.Config{NumClusters: 2, EMMaxIter: 12, Seed: 1}
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			tr := index.New[int](cfg)
			if err := tr.AddSegment(nil, items); err != nil {
				b.Fatal(err)
			}
			quant := index.QuantPruned()
			cells := dist.DPCells()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.KNNExactCtx(context.Background(), nil, queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(dist.DPCells()-cells)/n, "dp_cells/op")
			b.ReportMetric(float64(index.QuantPruned()-quant)/n, "quant_pruned/op")
		})
	}
}

// BenchmarkCascadeRange is the range-query counterpart: the fixed radius
// is a hard threshold for every cascade stage, so pruning is strongest
// here.
func BenchmarkCascadeRange(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	queries := benchSequences(b, 1, 12).Items
	for _, tc := range []struct {
		name string
		mut  func(*index.Config)
	}{
		{"stage=exact", func(c *index.Config) { c.DisableCascade = true }},
		{"stage=cascade", nil},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1}
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			tr := index.New[int](cfg)
			if err := tr.AddSegment(nil, items); err != nil {
				b.Fatal(err)
			}
			cells := dist.DPCells()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.RangeCtx(context.Background(), nil, queries[i%len(queries)], 120); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(dist.DPCells()-cells)/float64(b.N), "dp_cells/op")
		})
	}
}

// --- Figure 7(c) end-to-end + Figure 8 + Table 2 ----------------------

// BenchmarkFigure7EndToEnd runs the whole Figure 7 experiment (all three
// panels) at the bench scale.
func BenchmarkFigure7EndToEnd(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8BIC measures the BIC scan over K for one ingested
// stream.
func BenchmarkFigure8BIC(b *testing.B) {
	ds := benchSequences(b, 8, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.OptimalK(ds.Items, 1, 6, cluster.Config{MaxIter: 12, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SizeAccounting measures the decomposition size accounting
// path (Equations 9 and 10) over an ingested stream.
func BenchmarkTable2SizeAccounting(b *testing.B) {
	p := video.StreamProfile{Name: "Lab2", Kind: video.KindLab, NumObjects: 4, SegmentFrames: 24, ObjectsPerSegment: 2}
	stream, err := video.GenerateStream(p, 5)
	if err != nil {
		b.Fatal(err)
	}
	db := core.Open(core.DefaultConfig())
	if err := db.IngestStream(stream); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Stats()
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationLeafSearch compares Algorithm 3's key-pruned leaf
// search against a full linear scan of the database, isolating the value
// of the metric key.
func BenchmarkAblationLeafSearch(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	tr := index.New[int](index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1})
	if err := tr.AddSegment(nil, items); err != nil {
		b.Fatal(err)
	}
	q := benchSequences(b, 1, 12).Items[5]
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.KNN(nil, q, 10)
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			best := -1.0
			for _, it := range ds.Items {
				if d := dist.EGEDMZero(q, it); best < 0 || d < best {
					best = d
				}
			}
		}
	})
}

// BenchmarkAblationGapModels compares the three gap models of the EGED
// family on the same pair.
func BenchmarkAblationGapModels(b *testing.B) {
	x, y := benchPair(b)
	for _, tc := range []struct {
		name  string
		model dist.GapModel
	}{
		{"midpoint", dist.GapMidpoint},
		{"previous", dist.GapPrevious},
		{"constant", dist.GapConstant},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist.EGEDWith(x, y, tc.model, dist.Vec{0, 0})
			}
		})
	}
}

// BenchmarkAblation3DRTree quantifies the paper's Section 1 critique of
// the 3DR-tree: for motion-similarity queries it must generate and verify
// candidates, spending far more metric evaluations than the STRG-Index's
// clustered descent — while remaining excellent at the window queries it
// was built for.
func BenchmarkAblation3DRTree(b *testing.B) {
	ds := benchSequences(b, 20, 12)
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	strgTree := index.New[int](index.Config{NumClusters: 12, EMMaxIter: 12, Seed: 1})
	if err := strgTree.AddSegment(nil, items); err != nil {
		b.Fatal(err)
	}
	ti, err := rtree.NewTrajectoryIndex[int](16)
	if err != nil {
		b.Fatal(err)
	}
	for i, seq := range ds.Items {
		ti.Insert(seq, 0, i)
	}
	q := benchSequences(b, 1, 12).Items[5]
	b.Run("similar-strg-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strgTree.KNN(nil, q, 10)
		}
	})
	b.Run("similar-3dr-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ti.SimilarK(q, 0, 10, 60, dist.EGEDMZero)
		}
	})
	b.Run("window-3dr-tree", func(b *testing.B) {
		area := geom.Rect{Min: geom.Pt(100, 0), Max: geom.Pt(200, 240)}
		for i := 0; i < b.N; i++ {
			ti.Window(area, 0, 8)
		}
	})
}

// BenchmarkOnlineIngest measures the streaming builder's per-frame cost.
func BenchmarkOnlineIngest(b *testing.B) {
	p := video.StreamProfile{Name: "B", Kind: video.KindLab, NumObjects: 2, SegmentFrames: 24, ObjectsPerSegment: 2}
	stream, err := video.GenerateStream(p, 3)
	if err != nil {
		b.Fatal(err)
	}
	seg := stream.Segments[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ob := strg.NewOnlineBuilder(strg.DefaultConfig())
		for _, f := range seg.Frames {
			ob.AddFrame(f)
		}
		ob.Flush()
	}
}

// BenchmarkShotDetection measures boundary detection over a multi-scene
// recording.
func BenchmarkShotDetection(b *testing.B) {
	var parts []*video.Segment
	for i := 0; i < 3; i++ {
		seg, err := video.Generate(video.SceneConfig{
			Name: "s", Width: 320, Height: 240, FPS: 12, Frames: 16,
			BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8,
			BackgroundShade: float64(i) * 0.3, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		parts = append(parts, seg)
	}
	movie, err := video.Concat("m", parts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cuts := shot.DetectBoundaries(movie.Frames, shot.Config{}); len(cuts) != 2 {
			b.Fatalf("cuts = %d", len(cuts))
		}
	}
}

// BenchmarkAblationBridging compares tracking with and without occlusion
// gap bridging on an occlusion-heavy scene.
func BenchmarkAblationBridging(b *testing.B) {
	seg, err := video.Generate(video.SceneConfig{
		Name: "occl", Width: 320, Height: 240, FPS: 12, Frames: 16,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.3, Seed: 12,
		Occlusion: true,
		Objects: []video.ObjectSpec{
			{
				Label: "truck",
				Parts: []video.PartSpec{{Size: 5200, Color: graphColor(0.9, 0.8, 0.1)}},
				Path:  []geom.Point{geom.Pt(150, 120), geom.Pt(170, 120)},
				Start: 0, End: 16,
			},
			{
				Label: "runner",
				Parts: []video.PartSpec{{Size: 260, Color: graphColor(0.1, 0.9, 0.9)}},
				Path:  []geom.Point{geom.Pt(20, 122), geom.Pt(300, 122)},
				Start: 0, End: 16,
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		bridge int
	}{
		{"no-bridge", 0},
		{"bridge-5", 5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := strg.DefaultConfig()
			cfg.BridgeFrames = tc.bridge
			for i := 0; i < b.N; i++ {
				s, err := strg.Build(seg, cfg)
				if err != nil {
					b.Fatal(err)
				}
				s.Decompose(cfg)
			}
		})
	}
}

func graphColor(r, g, bl float64) graph.Color { return graph.Color{R: r, G: g, B: bl} }

// ringDB ingests a ring workload: walkers on short arcs spread around a
// circle, so a small query rect touches only the handful of trajectories
// near one ring position. This is the shape where the trajectory R-tree's
// pruning shows — and the one the planner perf floor is enforced on.
func ringDB(b testing.TB, disableTraj bool) *core.VideoDB {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Concurrency = 2
	cfg.DisableTrajIndex = disableTraj
	db := core.Open(cfg)
	const segments, perSeg = 192, 4
	for s := 0; s < segments; s++ {
		objs := make([]video.ObjectSpec, perSeg)
		for o := range objs {
			// Stride so one segment's objects sit on opposite sides of the
			// ring — adjacent ring positions are a few pixels apart and
			// would merge into one region.
			i := o*segments + s
			ang := 2 * math.Pi * float64(i) / float64(segments*perSeg)
			// Three concentric rings, so a rect near the outer ring's edge
			// leaves the inner rings' trajectories entirely outside the
			// probe. Radial gaps stay > 25px so same-segment walkers on
			// different rings never merge into one region.
			scale := []float64{1, 0.62, 0.3}[i%3]
			cx, cy := 160+100*scale*math.Cos(ang), 120+75*scale*math.Sin(ang)
			// A short chord along the ring's tangent: fast enough that the
			// tracker keeps the walker (too-slow objects collapse into the
			// background) but with a small spatial footprint, so a probe
			// only surfaces trajectories near one ring position.
			tx, ty := -12*math.Sin(ang), 12*math.Cos(ang)
			objs[o] = video.ObjectSpec{
				Label: fmt.Sprintf("ring-%d", i),
				Parts: []video.PartSpec{{Size: 300, Color: graphColor(0.8, 0.3, 0.3)}},
				Path:  []geom.Point{geom.Pt(cx-tx, cy-ty), geom.Pt(cx+tx, cy+ty)},
				Start: 0, End: 6,
			}
		}
		seg, err := video.Generate(video.SceneConfig{
			Name: fmt.Sprintf("ring-%d", s), Width: 320, Height: 240, FPS: 12, Frames: 6,
			BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.5, Seed: int64(1000 + s),
			Objects: objs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.IngestSegment("ring", seg); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// BenchmarkPlannerSelect pits the planner's rtree-assisted spatial select
// against the forced full scan (DisableTrajIndex) on the ring workload.
// `make bench-json` feeds both into cmd/benchjson -check, which enforces
// the floor: the rtree plan must run >= 2x faster than the scan. Both
// databases hold the identical corpus, so the answers are identical —
// only the work differs.
func BenchmarkPlannerSelect(b *testing.B) {
	rect := geom.Rect{Min: geom.Pt(254, 110), Max: geom.Pt(266, 128)}
	newQuery := func() *query.Query {
		return &query.Query{Where: query.SpatialNode{Kind: query.SpatialPasses, Rect: rect}}
	}
	run := func(b *testing.B, db *core.VideoDB, want query.Strategy) {
		res, err := db.QueryComposed(newQuery())
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan.Strategy != want {
			b.Fatalf("plan strategy = %s, want %s", res.Plan.Strategy, want)
		}
		if len(res.Matches) == 0 {
			b.Fatal("query matched nothing: the rect missed the ring")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryComposed(newQuery()); err != nil {
				b.Fatal(err)
			}
		}
	}
	withIndex := ringDB(b, false)
	fullScan := ringDB(b, true)
	b.Run("access=rtree", func(b *testing.B) { run(b, withIndex, query.StrategyRTree) })
	b.Run("access=scan", func(b *testing.B) { run(b, fullScan, query.StrategyScan) })
}
