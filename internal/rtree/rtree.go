// Package rtree implements the 3DR-tree of Theodoridis, Vazirgiannis and
// Sellis — the related-work baseline the paper's introduction critiques:
// an R-tree that "indexes salient objects by treating the time (temporal
// feature) as another dimension". Trajectories are decomposed into
// per-step (x, y, t) boxes inserted under one payload.
//
// The tree is a classic Guttman R-tree with quadratic split. It is very
// good at the spatio-temporal window queries it was designed for ("what
// passed through this region during this interval") and — as the paper
// argues — poorly matched to motion-similarity queries; the ablation
// benchmarks quantify that.
package rtree

import (
	"fmt"
	"math"
)

// Box is an axis-aligned 3-D box over (x, y, t).
type Box struct {
	Min, Max [3]float64
}

// NewBox normalizes the corner order.
func NewBox(a, b [3]float64) Box {
	var box Box
	for i := 0; i < 3; i++ {
		box.Min[i] = math.Min(a[i], b[i])
		box.Max[i] = math.Max(a[i], b[i])
	}
	return box
}

// Volume returns the box volume.
func (b Box) Volume() float64 {
	v := 1.0
	for i := 0; i < 3; i++ {
		v *= b.Max[i] - b.Min[i]
	}
	return v
}

// Union returns the smallest box covering both.
func (b Box) Union(o Box) Box {
	var out Box
	for i := 0; i < 3; i++ {
		out.Min[i] = math.Min(b.Min[i], o.Min[i])
		out.Max[i] = math.Max(b.Max[i], o.Max[i])
	}
	return out
}

// Intersects reports whether the boxes overlap (boundaries inclusive).
func (b Box) Intersects(o Box) bool {
	for i := 0; i < 3; i++ {
		if b.Min[i] > o.Max[i] || o.Min[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies fully inside b.
func (b Box) Contains(o Box) bool {
	for i := 0; i < 3; i++ {
		if o.Min[i] < b.Min[i] || o.Max[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// enlargement is the volume increase of b when extended to cover o.
func (b Box) enlargement(o Box) float64 {
	return b.Union(o).Volume() - b.Volume()
}

type entry[P any] struct {
	box     Box
	payload P        // leaf only
	child   *node[P] // routing only
}

type node[P any] struct {
	leaf    bool
	entries []*entry[P]
}

func (n *node[P]) boundingBox() Box {
	box := n.entries[0].box
	for _, e := range n.entries[1:] {
		box = box.Union(e.box)
	}
	return box
}

// Tree is a 3-D R-tree. Not safe for concurrent mutation.
type Tree[P any] struct {
	root       *node[P]
	maxEntries int
	minEntries int
	size       int
}

// New creates an empty tree with the given node capacity (minimum 4;
// zero means 16).
func New[P any](maxEntries int) (*Tree[P], error) {
	if maxEntries == 0 {
		maxEntries = 16
	}
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: maxEntries %d < 4", maxEntries)
	}
	return &Tree[P]{
		root:       &node[P]{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // Guttman's m ≈ 40% fill
	}, nil
}

// Len returns the number of indexed boxes.
func (t *Tree[P]) Len() int { return t.size }

// Insert adds one box.
func (t *Tree[P]) Insert(b Box, payload P) {
	e := &entry[P]{box: b, payload: payload}
	split := t.insert(t.root, e)
	if split != nil {
		t.root = &node[P]{leaf: false, entries: []*entry[P]{split[0], split[1]}}
	}
	t.size++
}

func (t *Tree[P]) insert(n *node[P], e *entry[P]) []*entry[P] {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	// Choose the child needing least enlargement (ties: smaller volume).
	var best *entry[P]
	bestEnl, bestVol := math.Inf(1), math.Inf(1)
	for _, r := range n.entries {
		enl := r.box.enlargement(e.box)
		vol := r.box.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = r, enl, vol
		}
	}
	best.box = best.box.Union(e.box)
	split := t.insert(best.child, e)
	if split == nil {
		return nil
	}
	for i, r := range n.entries {
		if r == best {
			n.entries[i] = split[0]
			n.entries = append(n.entries, split[1])
			break
		}
	}
	if len(n.entries) > t.maxEntries {
		return t.split(n)
	}
	return nil
}

// split is Guttman's quadratic split.
func (t *Tree[P]) split(n *node[P]) []*entry[P] {
	entries := n.entries
	// Pick the pair wasting the most volume as seeds.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].box.Union(entries[j].box).Volume() -
				entries[i].box.Volume() - entries[j].box.Volume()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 := &node[P]{leaf: n.leaf, entries: []*entry[P]{entries[s1]}}
	g2 := &node[P]{leaf: n.leaf, entries: []*entry[P]{entries[s2]}}
	b1, b2 := entries[s1].box, entries[s2].box

	rest := make([]*entry[P], 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment if one group must take all remaining to reach m.
		if len(g1.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				g1.entries = append(g1.entries, e)
				b1 = b1.Union(e.box)
			}
			break
		}
		if len(g2.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				g2.entries = append(g2.entries, e)
				b2 = b2.Union(e.box)
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := b1.enlargement(e.box)
			d2 := b2.enlargement(e.box)
			if diff := math.Abs(d1 - d2); diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1, d2 := b1.enlargement(e.box), b2.enlargement(e.box)
		if d1 < d2 || (d1 == d2 && len(g1.entries) <= len(g2.entries)) {
			g1.entries = append(g1.entries, e)
			b1 = b1.Union(e.box)
		} else {
			g2.entries = append(g2.entries, e)
			b2 = b2.Union(e.box)
		}
	}
	return []*entry[P]{
		{box: b1, child: g1},
		{box: b2, child: g2},
	}
}

// Search returns the payloads of every indexed box intersecting q. The
// second return value counts the nodes visited (the query's I/O cost).
func (t *Tree[P]) Search(q Box) ([]P, int) {
	return t.SearchAppend(q, nil)
}

// SearchAppend is Search reusing the caller's buffer: results are
// appended to out[:0] and the (possibly grown) buffer is returned, so a
// hot probe path can amortize the hit slice across queries.
func (t *Tree[P]) SearchAppend(q Box, out []P) ([]P, int) {
	out = out[:0]
	if t.size == 0 {
		return out, 0
	}
	return searchNode(t.root, q, out, 0)
}

func searchNode[P any](n *node[P], q Box, out []P, visited int) ([]P, int) {
	visited++
	for _, e := range n.entries {
		if !e.box.Intersects(q) {
			continue
		}
		if n.leaf {
			out = append(out, e.payload)
		} else {
			out, visited = searchNode(e.child, q, out, visited)
		}
	}
	return out, visited
}

// Bounds returns the bounding box of every indexed box. ok is false for
// an empty tree.
func (t *Tree[P]) Bounds() (Box, bool) {
	if t.size == 0 {
		return Box{}, false
	}
	return t.root.boundingBox(), true
}

// Height returns the tree height (1 for a single leaf root).
func (t *Tree[P]) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.entries[0].child
	}
	return h
}

// CheckInvariants verifies that every routing box covers its subtree.
func (t *Tree[P]) CheckInvariants() error {
	return t.check(t.root)
}

func (t *Tree[P]) check(n *node[P]) error {
	if n.leaf {
		return nil
	}
	for _, r := range n.entries {
		if len(r.child.entries) == 0 {
			return fmt.Errorf("rtree: empty child node")
		}
		if !r.box.Contains(r.child.boundingBox()) {
			return fmt.Errorf("rtree: routing box does not cover child")
		}
		if err := t.check(r.child); err != nil {
			return err
		}
	}
	return nil
}
