package rtree

import (
	"math/rand"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
)

// line builds a straight trajectory.
func line(x0, y0, x1, y1 float64, n int) dist.Sequence {
	s := make(dist.Sequence, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		s[i] = dist.Vec{x0 + (x1-x0)*t, y0 + (y1-y0)*t}
	}
	return s
}

func TestWindowQuery(t *testing.T) {
	ti, err := NewTrajectoryIndex[int](8)
	if err != nil {
		t.Fatal(err)
	}
	ti.Insert(line(0, 50, 300, 50, 20), 0, 1)   // east at y=50, frames 0..19
	ti.Insert(line(0, 150, 300, 150, 20), 0, 2) // east at y=150
	ti.Insert(line(0, 50, 300, 50, 20), 100, 3) // east at y=50 but later
	if ti.Len() != 3 {
		t.Fatalf("Len = %d", ti.Len())
	}

	tests := []struct {
		name   string
		area   geom.Rect
		t0, t1 float64
		want   map[int]bool
	}{
		{"y=50 corridor early", geom.Rect{Min: geom.Pt(100, 40), Max: geom.Pt(200, 60)}, 0, 20, map[int]bool{1: true}},
		{"y=50 corridor late", geom.Rect{Min: geom.Pt(100, 40), Max: geom.Pt(200, 60)}, 100, 120, map[int]bool{3: true}},
		{"whole frame early", geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(320, 240)}, 0, 20, map[int]bool{1: true, 2: true}},
		{"empty period", geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(320, 240)}, 50, 60, map[int]bool{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ti.Window(tt.area, tt.t0, tt.t1)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for _, p := range got {
				if !tt.want[p] {
					t.Errorf("unexpected payload %d", p)
				}
			}
		})
	}
}

func TestSimilarKFindsNearbyTrajectory(t *testing.T) {
	ti, err := NewTrajectoryIndex[int](8)
	if err != nil {
		t.Fatal(err)
	}
	ti.Insert(line(0, 50, 300, 50, 20), 0, 1)
	ti.Insert(line(0, 150, 300, 150, 20), 0, 2)
	ti.Insert(line(300, 50, 0, 50, 20), 0, 3) // reverse direction

	q := line(0, 52, 300, 48, 20)
	got, evals, cands := ti.SimilarK(q, 0, 1, 30, dist.EGEDMZero)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("SimilarK = %v, want [1]", got)
	}
	if evals == 0 || cands == 0 {
		t.Error("no cost recorded")
	}
	// The y=150 trajectory should not even be a candidate at slack 30.
	if cands >= 3 {
		t.Errorf("candidates = %d, expected spatial pruning", cands)
	}
}

func TestSimilarKSlackTradeoff(t *testing.T) {
	ti, _ := NewTrajectoryIndex[int](8)
	for i := 0; i < 20; i++ {
		ti.Insert(line(0, float64(10+i*11), 300, float64(10+i*11), 16), 0, i)
	}
	q := line(0, 120, 300, 120, 16)
	_, _, candTight := ti.SimilarK(q, 0, 3, 15, dist.EGEDMZero)
	_, _, candLoose := ti.SimilarK(q, 0, 3, 200, dist.EGEDMZero)
	if candLoose <= candTight {
		t.Errorf("loose slack (%d candidates) should exceed tight (%d)", candLoose, candTight)
	}
	if candLoose != 20 {
		t.Errorf("slack 200 should cover all 20 trajectories, got %d", candLoose)
	}
}

func TestSingleSampleTrajectory(t *testing.T) {
	ti, _ := NewTrajectoryIndex[int](8)
	ti.Insert(dist.Sequence{{50, 50}}, 7, 9)
	got := ti.Window(geom.Rect{Min: geom.Pt(40, 40), Max: geom.Pt(60, 60)}, 7, 7)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("Window = %v, want [9]", got)
	}
}

func TestWindowMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		ti, err := NewTrajectoryIndex[int](4 + rng.Intn(12))
		if err != nil {
			t.Fatal(err)
		}
		type traj struct {
			seq   dist.Sequence
			start int
		}
		n := 20 + rng.Intn(40)
		trajs := make([]traj, n)
		for i := range trajs {
			m := 2 + rng.Intn(10)
			seq := make(dist.Sequence, m)
			for j := range seq {
				seq[j] = dist.Vec{rng.Float64() * 320, rng.Float64() * 240}
			}
			trajs[i] = traj{seq, rng.Intn(50)}
			ti.Insert(seq, trajs[i].start, i)
		}
		area := geom.Rect{
			Min: geom.Pt(rng.Float64()*200, rng.Float64()*150),
			Max: geom.Pt(200+rng.Float64()*120, 150+rng.Float64()*90),
		}
		t0 := float64(rng.Intn(40))
		t1 := t0 + float64(rng.Intn(20))
		got := ti.Window(area, t0, t1)
		gotSet := map[int]bool{}
		for _, p := range got {
			gotSet[p] = true
		}
		// Brute force: any step box intersecting the window box.
		q := NewBox([3]float64{area.Min.X, area.Min.Y, t0}, [3]float64{area.Max.X, area.Max.Y, t1})
		for i, tr := range trajs {
			want := false
			for j := 0; j+1 < len(tr.seq); j++ {
				b := NewBox(
					[3]float64{tr.seq[j][0], tr.seq[j][1], float64(tr.start + j)},
					[3]float64{tr.seq[j+1][0], tr.seq[j+1][1], float64(tr.start + j + 1)},
				)
				if b.Intersects(q) {
					want = true
					break
				}
			}
			if gotSet[i] != want {
				t.Fatalf("trial %d traj %d: window=%v want %v", trial, i, gotSet[i], want)
			}
		}
	}
}
