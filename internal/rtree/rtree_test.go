package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func box(x0, y0, t0, x1, y1, t1 float64) Box {
	return NewBox([3]float64{x0, y0, t0}, [3]float64{x1, y1, t1})
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](3); err == nil {
		t.Error("maxEntries 3 accepted")
	}
	tr, err := New[int](0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.maxEntries != 16 {
		t.Errorf("default maxEntries = %d, want 16", tr.maxEntries)
	}
}

func TestBoxBasics(t *testing.T) {
	b := box(0, 0, 0, 2, 3, 4)
	if got := b.Volume(); got != 24 {
		t.Errorf("Volume = %v, want 24", got)
	}
	u := b.Union(box(-1, 0, 0, 1, 1, 1))
	if u.Min != [3]float64{-1, 0, 0} || u.Max != [3]float64{2, 3, 4} {
		t.Errorf("Union = %+v", u)
	}
	if !b.Intersects(box(1, 1, 1, 5, 5, 5)) {
		t.Error("overlapping boxes report no intersection")
	}
	if b.Intersects(box(3, 0, 0, 5, 1, 1)) {
		t.Error("disjoint boxes report intersection")
	}
	if !b.Contains(box(0.5, 0.5, 0.5, 1, 1, 1)) {
		t.Error("contained box not contained")
	}
	if b.Contains(box(0, 0, 0, 9, 9, 9)) {
		t.Error("larger box reported contained")
	}
	// NewBox normalizes reversed corners.
	n := NewBox([3]float64{5, 5, 5}, [3]float64{0, 0, 0})
	if n.Min != [3]float64{0, 0, 0} {
		t.Errorf("NewBox did not normalize: %+v", n)
	}
}

func TestInsertAndSearchExact(t *testing.T) {
	tr, _ := New[int](8)
	// A 10x10x10 grid of unit boxes.
	id := 0
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			for tt := 0; tt < 10; tt++ {
				tr.Insert(box(float64(x), float64(y), float64(tt),
					float64(x)+0.5, float64(y)+0.5, float64(tt)+0.5), id)
				id++
			}
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want >= 2", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Query a region covering exactly 2x2x2 cells.
	got, visited := tr.Search(box(3, 3, 3, 4.6, 4.6, 4.6))
	if len(got) != 8 {
		t.Errorf("Search returned %d, want 8", len(got))
	}
	if visited >= 1000 {
		t.Errorf("Search visited %d nodes — no pruning", visited)
	}
	// Empty region.
	if got, _ := tr.Search(box(100, 100, 100, 101, 101, 101)); len(got) != 0 {
		t.Errorf("empty region returned %d", len(got))
	}
}

func TestSearchMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, _ := New[int](4 + rng.Intn(12))
		n := 50 + rng.Intn(150)
		boxes := make([]Box, n)
		for i := range boxes {
			x, y, tt := rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
			boxes[i] = box(x, y, tt, x+rng.Float64()*10, y+rng.Float64()*10, tt+rng.Float64()*10)
			tr.Insert(boxes[i], i)
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		q := box(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		got, _ := tr.Search(q)
		want := map[int]bool{}
		for i, b := range boxes {
			if b.Intersects(q) {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr, _ := New[int](8)
	if got, _ := tr.Search(box(0, 0, 0, 1, 1, 1)); got != nil {
		t.Errorf("Search on empty tree = %v", got)
	}
	if tr.Height() != 1 {
		t.Errorf("empty Height = %d", tr.Height())
	}
}
