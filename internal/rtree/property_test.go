package rtree

import (
	"math"
	"math/rand"
	"testing"
)

// trajBoxes decomposes a random-walk trajectory into the per-step
// (x, y, t) segment boxes the core trajectory index inserts: each box
// spans two consecutive samples in space and time, so their union covers
// the walk's whole frame span.
func trajBoxes(rng *rand.Rand) []Box {
	n := 2 + rng.Intn(10)
	x, y := rng.Float64()*1000, rng.Float64()*1000
	f := float64(rng.Intn(900))
	boxes := make([]Box, 0, n-1)
	for i := 1; i < n; i++ {
		nx := x + rng.Float64()*40 - 20
		ny := y + rng.Float64()*40 - 20
		nf := f + 1 + float64(rng.Intn(3))
		boxes = append(boxes, NewBox([3]float64{x, y, f}, [3]float64{nx, ny, nf}))
		x, y, f = nx, ny, nf
	}
	return boxes
}

// TestTrajectorySearchMatchesBruteForce is the planner's soundness
// property stated directly against the R-tree: insert trajectories as
// per-step segment boxes, then for every probe shape the query planner
// emits — spatial (finite xy, infinite t), temporal (infinite xy, finite
// t), and full spatio-temporal windows — Search must return exactly the
// trajectories brute-force box filtering finds. Structural invariants are
// re-checked as the tree grows, not just at the end, so a split that
// transiently corrupts a routing box cannot hide behind later repairs.
func TestTrajectorySearchMatchesBruteForce(t *testing.T) {
	inf := math.Inf(1)
	for _, fanout := range []int{4, 9, 16} {
		rng := rand.New(rand.NewSource(int64(1000 + fanout)))
		tr, err := New[int](fanout)
		if err != nil {
			t.Fatal(err)
		}
		// owner[i] is the trajectory id of inserted box i.
		var all []Box
		var owner []int
		for id := 0; id < 120; id++ {
			for _, b := range trajBoxes(rng) {
				tr.Insert(b, id)
				all = append(all, b)
				owner = append(owner, id)
			}
			if id%17 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("fanout %d, after trajectory %d: %v", fanout, id, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("fanout %d, final: %v", fanout, err)
		}
		if tr.Len() != len(all) {
			t.Fatalf("fanout %d: Len = %d, want %d", fanout, tr.Len(), len(all))
		}

		probes := []Box{
			// Spatial probes: a rect crossed at any time.
			NewBox([3]float64{100, 100, -inf}, [3]float64{300, 300, inf}),
			NewBox([3]float64{499, 0, -inf}, [3]float64{501, 1000, inf}),
			// Temporal probes: anywhere, inside a frame window.
			NewBox([3]float64{-inf, -inf, 100}, [3]float64{inf, inf, 200}),
			NewBox([3]float64{-inf, -inf, 903}, [3]float64{inf, inf, 903}),
			// Spatio-temporal windows.
			NewBox([3]float64{0, 0, 0}, [3]float64{500, 500, 450}),
			NewBox([3]float64{700, 700, 400}, [3]float64{720, 720, 410}),
			// Degenerate: a single point, and a region outside the data.
			NewBox([3]float64{500, 500, 500}, [3]float64{500, 500, 500}),
			NewBox([3]float64{2000, 2000, 2000}, [3]float64{3000, 3000, 3000}),
		}
		for pi, q := range probes {
			got, _ := tr.Search(q)
			// Search returns one payload per intersecting box; distinct
			// trajectory ids are what the planner consumes, so compare sets.
			gotSet := map[int]bool{}
			for _, id := range got {
				gotSet[id] = true
			}
			want := map[int]bool{}
			hits := 0
			for i, b := range all {
				if b.Intersects(q) {
					want[owner[i]] = true
					hits++
				}
			}
			if len(got) != hits {
				t.Errorf("fanout %d probe %d: %d boxes returned, brute force finds %d",
					fanout, pi, len(got), hits)
			}
			if len(gotSet) != len(want) {
				t.Errorf("fanout %d probe %d: %d trajectories, want %d",
					fanout, pi, len(gotSet), len(want))
				continue
			}
			for id := range want {
				if !gotSet[id] {
					t.Errorf("fanout %d probe %d: trajectory %d missing", fanout, pi, id)
				}
			}
		}
	}
}
