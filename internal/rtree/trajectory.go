package rtree

import (
	"sort"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
)

// TrajectoryIndex indexes object trajectories the 3DR-tree way: each
// per-frame step becomes one small (x, y, t) box, all steps sharing the
// trajectory's payload. Window queries ("what moved through this region
// during this interval") resolve in one Search; similarity queries must
// fall back to candidate generation plus verification, which is the
// inefficiency the paper's introduction calls out.
type TrajectoryIndex[P comparable] struct {
	tree *Tree[P]
	// trajectories retained for the verification stage of SimilarK.
	seqs map[P]dist.Sequence
}

// NewTrajectoryIndex creates an empty index with the given node capacity
// (zero for the default).
func NewTrajectoryIndex[P comparable](maxEntries int) (*TrajectoryIndex[P], error) {
	t, err := New[P](maxEntries)
	if err != nil {
		return nil, err
	}
	return &TrajectoryIndex[P]{tree: t, seqs: make(map[P]dist.Sequence)}, nil
}

// Len returns the number of indexed trajectories.
func (ti *TrajectoryIndex[P]) Len() int { return len(ti.seqs) }

// Insert indexes a trajectory: sample i is taken at time startFrame + i.
func (ti *TrajectoryIndex[P]) Insert(seq dist.Sequence, startFrame int, payload P) {
	ti.seqs[payload] = seq
	for i := 0; i+1 < len(seq); i++ {
		t0 := float64(startFrame + i)
		ti.tree.Insert(NewBox(
			[3]float64{seq[i][0], seq[i][1], t0},
			[3]float64{seq[i+1][0], seq[i+1][1], t0 + 1},
		), payload)
	}
	if len(seq) == 1 {
		t0 := float64(startFrame)
		ti.tree.Insert(NewBox(
			[3]float64{seq[0][0], seq[0][1], t0},
			[3]float64{seq[0][0], seq[0][1], t0},
		), payload)
	}
}

// Window returns the payloads of trajectories intersecting the spatial
// rectangle during [t0, t1] — the query type the 3DR-tree excels at.
func (ti *TrajectoryIndex[P]) Window(area geom.Rect, t0, t1 float64) []P {
	hits, _ := ti.tree.Search(NewBox(
		[3]float64{area.Min.X, area.Min.Y, t0},
		[3]float64{area.Max.X, area.Max.Y, t1},
	))
	seen := make(map[P]bool, len(hits))
	var out []P
	for _, p := range hits {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// SimilarK approximates a motion-similarity query the only way an
// (x, y, t) R-tree can: generate candidates by probing boxes around the
// query trajectory, then verify every candidate with the metric. It
// returns the k best, the number of metric evaluations spent and the
// number of candidates generated — the costs Figure 7(b)'s STRG-Index
// comparison is about.
func (ti *TrajectoryIndex[P]) SimilarK(seq dist.Sequence, startFrame, k int, slack float64, metric dist.Metric) (payloads []P, metricEvals, candidates int) {
	cand := make(map[P]bool)
	for i := range seq {
		t0 := float64(startFrame + i)
		hits, _ := ti.tree.Search(NewBox(
			[3]float64{seq[i][0] - slack, seq[i][1] - slack, t0 - slack},
			[3]float64{seq[i][0] + slack, seq[i][1] + slack, t0 + slack},
		))
		for _, p := range hits {
			cand[p] = true
		}
	}
	type scored struct {
		p P
		d float64
	}
	results := make([]scored, 0, len(cand))
	for p := range cand {
		results = append(results, scored{p, metric(seq, ti.seqs[p])})
		metricEvals++
	}
	sort.Slice(results, func(i, j int) bool { return results[i].d < results[j].d })
	if len(results) > k {
		results = results[:k]
	}
	for _, r := range results {
		payloads = append(payloads, r.p)
	}
	return payloads, metricEvals, len(cand)
}
