package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		n := 137
		var hits atomic.Int64
		seen := make([]int32, n)
		err := ForEach(w, n, func(i int) error {
			atomic.AddInt32(&seen[i], 1)
			hits.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if hits.Load() != int64(n) {
			t.Errorf("workers=%d: %d calls, want %d", w, hits.Load(), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestMapDeterministicOrdering(t *testing.T) {
	for _, w := range []int{1, 4, 9} {
		got, err := Map(w, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		err := ForEach(w, 200, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Errorf("workers=%d: err = %v, want boom 3", w, err)
		}
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(w, 50, func(i int) error {
			if i == 5 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", w, err)
		}
		if pe.Index != 5 || pe.Value != "kaboom" {
			t.Errorf("workers=%d: PanicError = %+v", w, pe)
		}
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, 4, 10000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() >= 10000 {
		t.Errorf("cancellation did not stop dispatch (%d tasks ran)", ran.Load())
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal(err)
	}
}
