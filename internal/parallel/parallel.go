// Package parallel is the shared concurrency layer of the system: a
// bounded worker pool sized by GOMAXPROCS with deterministic error
// selection, plus ForEach/Map helpers whose output ordering is identical
// to a sequential run.
//
// Every parallel hot path in the repository (pairwise distance matrices,
// STRG frame matching, k-NN leaf scans) funnels through this package, so
// the concurrency contract lives in one place:
//
//   - A Concurrency knob of 0 means "auto" (GOMAXPROCS); 1 means the
//     exact sequential behavior the paper's experiments assume; n > 1
//     caps the pool at n workers.
//   - Work items are claimed in index order, results are written to
//     index-addressed slots, and the error returned is the one from the
//     lowest-indexed failing item — so a parallel run and a sequential
//     run of the same fallible loop report the same error.
//   - A panic inside a work item (for example dist.Norm's
//     dimension-mismatch panic) is recovered and surfaced as an error
//     instead of crashing the pool; the sequential path behaves the same
//     way, so error handling does not depend on the knob.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Concurrency knob into a worker count: n > 0 means
// exactly n workers, anything else means one worker per available CPU
// (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered from a work item.
type PanicError struct {
	Index int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// runTask executes fn(i), converting a panic into a *PanicError.
func runTask(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r}
		}
	}()
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and blocks until all claimed items finish. See ForEachCtx.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no further
// items are claimed and ctx.Err() is returned (unless a work-item error
// with a lower index also occurred, which wins).
//
// Items are claimed in index order. On failure the pool stops claiming
// new items, drains the in-flight ones, and returns the error of the
// lowest failing index — every index below it was already claimed and
// allowed to finish, so the reported error is the same one a sequential
// run would hit first.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(fn, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	// One closure shared by all workers (instead of one allocation per
	// goroutine): the loop body only reads the captured coordination
	// state, so every worker can run the same function value.
	worker := func() {
		defer wg.Done()
		for {
			if stop.Load() {
				return
			}
			select {
			case <-ctx.Done():
				stop.Store(true)
				return
			default:
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := runTask(fn, i); err != nil {
				fail(i, err)
				return
			}
		}
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go worker()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the results in index order — the deterministic
// MapReduce helper: reduce over the returned slice is order-independent
// of the scheduling. On error the slice is nil and the lowest-indexed
// error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: once ctx is done no further items are
// claimed, in-flight items drain, and ctx.Err() is returned (unless a
// lower-indexed work-item error wins). A cancelled call returns a nil
// slice — partial results are never exposed.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
