package query_test

import (
	"fmt"

	"strgindex/internal/geom"
	"strgindex/internal/query"
	"strgindex/internal/strg"
)

// Composing motion predicates: everything that crossed the doorway region
// heading east at walking speed.
func ExampleAnd() {
	walker := &strg.OG{
		Frames:    []int{0, 1, 2, 3},
		Centroids: []geom.Point{geom.Pt(100, 120), geom.Pt(120, 120), geom.Pt(140, 120), geom.Pt(160, 120)},
		Sizes:     []float64{300, 300, 300, 300},
	}
	doorway := geom.Rect{Min: geom.Pt(130, 100), Max: geom.Pt(150, 140)}
	pred := query.And(
		query.PassesThrough(doorway),
		query.Eastbound(0.3),
		query.SpeedBetween(10, 40),
	)
	fmt.Println(pred(walker))
	// Output: true
}
