// Package query provides a small predicate language over Object Graphs:
// the "various queries on moving objects" of the paper's motivation
// (which trajectories passed through this area, moved north, lingered,
// ...). Predicates compose with And/Or/Not and evaluate against the
// kinematics an OG carries — centroid trajectory, sizes, frame span.
package query

import (
	"math"

	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

// Predicate is a boolean condition on one Object Graph.
type Predicate func(og *strg.OG) bool

// And is satisfied when every predicate is (vacuously true when empty).
func And(ps ...Predicate) Predicate {
	return func(og *strg.OG) bool {
		for _, p := range ps {
			if !p(og) {
				return false
			}
		}
		return true
	}
}

// Or is satisfied when any predicate is (vacuously false when empty).
func Or(ps ...Predicate) Predicate {
	return func(og *strg.OG) bool {
		for _, p := range ps {
			if p(og) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return func(og *strg.OG) bool { return !p(og) }
}

// PassesThrough is satisfied when any centroid sample lies inside r.
func PassesThrough(r geom.Rect) Predicate {
	return func(og *strg.OG) bool {
		for _, c := range og.Centroids {
			if r.Contains(c) {
				return true
			}
		}
		return false
	}
}

// StartsIn is satisfied when the first sample lies inside r.
func StartsIn(r geom.Rect) Predicate {
	return func(og *strg.OG) bool {
		return og.Len() > 0 && r.Contains(og.Centroids[0])
	}
}

// EndsIn is satisfied when the last sample lies inside r.
func EndsIn(r geom.Rect) Predicate {
	return func(og *strg.OG) bool {
		return og.Len() > 0 && r.Contains(og.Centroids[og.Len()-1])
	}
}

// WithinDuring is satisfied when some centroid sample lies inside r at a
// frame in [f0, f1] — the spatio-temporal window predicate ("crossed this
// region during this interval") the 3DR-tree answers natively.
func WithinDuring(r geom.Rect, f0, f1 int) Predicate {
	return func(og *strg.OG) bool {
		for i, c := range og.Centroids {
			if og.Frames[i] >= f0 && og.Frames[i] <= f1 && r.Contains(c) {
				return true
			}
		}
		return false
	}
}

// During is satisfied when the OG's frame span overlaps [f0, f1].
func During(f0, f1 int) Predicate {
	return func(og *strg.OG) bool {
		if og.Len() == 0 {
			return false
		}
		return og.StartFrame() <= f1 && f0 <= og.EndFrame()
	}
}

// LongerThan is satisfied when the OG spans more than n samples.
func LongerThan(n int) Predicate {
	return func(og *strg.OG) bool { return og.Len() > n }
}

// MeanSpeed returns the OG's mean per-frame speed in pixels.
func MeanSpeed(og *strg.OG) float64 {
	if og.Len() < 2 {
		return 0
	}
	var total float64
	for i := 1; i < og.Len(); i++ {
		dt := og.Frames[i] - og.Frames[i-1]
		if dt <= 0 {
			dt = 1
		}
		total += og.Centroids[i].Dist(og.Centroids[i-1]) / float64(dt)
	}
	return total / float64(og.Len()-1)
}

// MeanDirection returns the displacement-weighted circular mean of the
// OG's motion direction, in [0, 2π).
func MeanDirection(og *strg.OG) float64 {
	var sx, sy float64
	for i := 1; i < og.Len(); i++ {
		d := og.Centroids[i].Sub(og.Centroids[i-1])
		sx += d.DX
		sy += d.DY
	}
	return geom.Vec(sx, sy).Angle()
}

// SpeedBetween is satisfied when the mean speed lies in [lo, hi].
func SpeedBetween(lo, hi float64) Predicate {
	return func(og *strg.OG) bool {
		v := MeanSpeed(og)
		return v >= lo && v <= hi
	}
}

// Stationary is satisfied when the mean speed is below maxSpeed.
func Stationary(maxSpeed float64) Predicate {
	return func(og *strg.OG) bool { return MeanSpeed(og) < maxSpeed }
}

// DirectionalCoherence returns the mean resultant length R ∈ [0, 1] of the
// OG's step directions: 1 for a dead-straight path, near 0 when the steps
// cancel (a U-turn's net displacement is just its turn gap).
func DirectionalCoherence(og *strg.OG) float64 {
	var sx, sy, total float64
	for i := 1; i < og.Len(); i++ {
		d := og.Centroids[i].Sub(og.Centroids[i-1])
		sx += d.DX
		sy += d.DY
		total += d.Len()
	}
	if total == 0 {
		return 0
	}
	return geom.Vec(sx, sy).Len() / total
}

// headingCoherence is the minimum directional coherence at which an OG has
// a meaningful heading at all; below it (U-turns, wandering) Heading never
// matches.
const headingCoherence = 0.6

// Heading is satisfied when the OG moves coherently (see
// DirectionalCoherence) in a direction within tol radians of angle.
func Heading(angle, tol float64) Predicate {
	return func(og *strg.OG) bool {
		if og.Len() < 2 {
			return false
		}
		if DirectionalCoherence(og) < headingCoherence {
			return false
		}
		return geom.AngleDiff(MeanDirection(og), angle) <= tol
	}
}

// Eastbound, Westbound, Southbound and Northbound are Heading shorthands
// (screen coordinates: y grows downward).
func Eastbound(tol float64) Predicate  { return Heading(0, tol) }
func Southbound(tol float64) Predicate { return Heading(math.Pi/2, tol) }
func Westbound(tol float64) Predicate  { return Heading(math.Pi, tol) }
func Northbound(tol float64) Predicate { return Heading(3*math.Pi/2, tol) }

// TurnsBy is satisfied when the direction change between the OG's first
// and last thirds is at least minTurn radians — a U-turn detector at
// minTurn near π.
func TurnsBy(minTurn float64) Predicate {
	return func(og *strg.OG) bool {
		n := og.Len()
		if n < 6 {
			return false
		}
		third := n / 3
		first := segmentDirection(og, 0, third)
		last := segmentDirection(og, n-third, n-1)
		return geom.AngleDiff(first, last) >= minTurn
	}
}

func segmentDirection(og *strg.OG, from, to int) float64 {
	return og.Centroids[to].Sub(og.Centroids[from]).Angle()
}

// AreaBetween is satisfied when the OG's mean region area lies in
// [lo, hi] pixels.
func AreaBetween(lo, hi float64) Predicate {
	return func(og *strg.OG) bool {
		if og.Len() == 0 {
			return false
		}
		var total float64
		for _, s := range og.Sizes {
			total += s
		}
		mean := total / float64(og.Len())
		return mean >= lo && mean <= hi
	}
}

// Filter returns the OGs satisfying p, preserving order.
func Filter(ogs []*strg.OG, p Predicate) []*strg.OG {
	var out []*strg.OG
	for _, og := range ogs {
		if p(og) {
			out = append(out, og)
		}
	}
	return out
}
