package query

import (
	"math/rand"
	"testing"
)

// FuzzParseQuery enforces the parser's contract on arbitrary bytes: it
// never panics, and whatever it accepts passes the validator, compiles,
// and evaluates (the accept/reject dichotomy — no half-parsed query can
// reach the planner).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"where": {"passes_through": {"x0": 100, "y0": 0, "x1": 200, "y1": 240}}}`,
		`{"where": {"and": [{"during": {"from": 0, "to": 120}}, {"speed": {"min": 2.5}}]}}`,
		`{"where": {"or": [{"heading": {"dir": "east"}}, {"not": {"u_turn": true}}]}}`,
		`{"where": {"within": {"x0": 0, "y0": 0, "x1": 50, "y1": 50, "from": 1, "to": 9}}}`,
		`{"similar": {"trajectory": [[20, 120], [160, 120]], "k": 5}, "limit": 10}`,
		`{"similar": {"trajectory": [[0, 0]], "radius": 100.5}}`,
		`{"where": {"area": {"min": 1}}, "similar": {"trajectory": [[1, 1]], "k": 2, "exact": true}}`,
		`{"where": {"longer_than": 3}}`,
		`{"where": {"u_turn": {"min_turn": 1.5}}}`,
		`{"where": {"heading": {"dir": "north", "tol": 3.14}}}`,
		`[1, 2, 3]`,
		`null`,
		`{"where": 7}`,
		`{"where": {"speed": {"min": 1e308, "max": 2e308}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Parse(data)
		if err != nil {
			if q != nil {
				t.Fatalf("Parse returned both a query and error %v", err)
			}
			return
		}
		if err := Validate(q); err != nil {
			t.Fatalf("parser accepted %q but validator rejects it: %v", data, err)
		}
		// Accepted queries must compile and evaluate without panicking.
		pred := Compile(q.Where)
		for _, og := range scatteredOGs(rand.New(rand.NewSource(1)), 3) {
			pred(og)
		}
	})
}
