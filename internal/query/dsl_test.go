package query

import (
	"math"
	"strings"
	"testing"
)

func mustParse(t *testing.T, doc string) *Query {
	t.Helper()
	q, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse(%s): %v", doc, err)
	}
	return q
}

func TestParseComposedDocument(t *testing.T) {
	q := mustParse(t, `{
		"where": {"and": [
			{"passes_through": {"x0": 200, "y0": 240, "x1": 100, "y1": 0}},
			{"during": {"from": 10, "to": 120}},
			{"speed": {"min": 2.5}},
			{"or": [{"heading": {"dir": "east"}}, {"heading": {"dir": "west", "tol": 0.2}}]}
		]},
		"similar": {"trajectory": [[20, 120], [160, 120]], "k": 5},
		"limit": 100
	}`)
	and, ok := q.Where.(AndNode)
	if !ok || len(and.Children) != 4 {
		t.Fatalf("where = %#v, want 4-way and", q.Where)
	}
	sp, ok := and.Children[0].(SpatialNode)
	if !ok || sp.Kind != SpatialPasses {
		t.Fatalf("child 0 = %#v", and.Children[0])
	}
	// Corners normalize regardless of input order.
	if sp.Rect.Min.X != 100 || sp.Rect.Min.Y != 0 || sp.Rect.Max.X != 200 || sp.Rect.Max.Y != 240 {
		t.Errorf("rect = %+v, want normalized [100,0]-[200,240]", sp.Rect)
	}
	if d := and.Children[1].(DuringNode); d.From != 10 || d.To != 120 {
		t.Errorf("during = %+v", d)
	}
	if s := and.Children[2].(SpeedNode); s.Lo != 2.5 || !math.IsInf(s.Hi, 1) {
		t.Errorf("speed = %+v, want [2.5, +Inf]", s)
	}
	or := and.Children[3].(OrNode)
	if h := or.Children[0].(HeadingNode); h.Angle != 0 || h.Tol != 0.4 {
		t.Errorf("east heading = %+v, want angle 0 tol 0.4", h)
	}
	if h := or.Children[1].(HeadingNode); h.Angle != math.Pi || h.Tol != 0.2 {
		t.Errorf("west heading = %+v", h)
	}
	if q.Similar == nil || q.Similar.K != 5 || len(q.Similar.Trajectory) != 2 {
		t.Errorf("similar = %+v", q.Similar)
	}
	if q.Limit != 100 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseDefaults(t *testing.T) {
	q := mustParse(t, `{"where": {"during": {"from": 5}}}`)
	if d := q.Where.(DuringNode); d.From != 5 || d.To != math.MaxInt32 {
		t.Errorf("during = %+v, want open upper bound", d)
	}
	q = mustParse(t, `{"where": {"u_turn": true}}`)
	if u := q.Where.(UTurnNode); u.MinTurn != DefaultUTurn {
		t.Errorf("u_turn = %+v, want default %g", u, DefaultUTurn)
	}
	q = mustParse(t, `{"where": {"u_turn": {"min_turn": 2.0}}}`)
	if u := q.Where.(UTurnNode); u.MinTurn != 2.0 {
		t.Errorf("u_turn = %+v", u)
	}
	q = mustParse(t, `{"where": {"within": {"x0": 0, "y0": 0, "x1": 10, "y1": 10, "to": 99}}}`)
	if w := q.Where.(WithinNode); w.From != 0 || w.To != 99 {
		t.Errorf("within = %+v", w)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		doc     string
		wantSub string
	}{
		{`{}`, "empty query"},
		{`not json`, "invalid character"},
		{`{"where": {"passes_through": {"x0": 0}}} trailing`, "trailing data"},
		{`{"bogus_top": 1}`, "unknown field"},
		{`{"where": {"frobnicate": {}}}`, `unknown predicate "frobnicate"`},
		{`{"where": {"and": [], "or": []}}`, "exactly one key"},
		{`{"where": {"passes_through": {"x0": 0, "zz": 1}}}`, "unknown field"},
		{`{"where": {"heading": {"dir": "up"}}}`, `unknown heading "up"`},
		{`{"where": {"heading": {"dir": "east", "tol": 7}}}`, "tolerance"},
		{`{"where": {"speed": {"min": 5, "max": 1}}}`, "min 5 > max 1"},
		{`{"where": {"u_turn": false}}`, "no meaning"},
		{`{"where": {"longer_than": -1}}`, "non-negative"},
		{`{"limit": -1, "where": {"u_turn": true}}`, "limit must be non-negative"},
		{`{"similar": {"trajectory": [[0,0]], "k": 2, "radius": 5}}`, "mutually exclusive"},
		{`{"similar": {"trajectory": [[0,0]]}}`, "one of k or radius"},
		{`{"similar": {"trajectory": [], "k": 2}}`, "empty trajectory"},
		{`{"similar": {"trajectory": [[0,0]], "radius": 3, "exact": true}}`, "k-NN only"},
		{`{"where": {"not": {"not": {"not": null}}}}`, "exactly one key"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("Parse(%s) accepted, want error containing %q", c.doc, c.wantSub)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%s) error %q, want substring %q", c.doc, err, c.wantSub)
		}
	}
}

func TestParseDepthBound(t *testing.T) {
	deep := `{"passes_through": {"x0":0,"y0":0,"x1":1,"y1":1}}`
	for i := 0; i < maxWhereDepth; i++ {
		deep = `{"not": ` + deep + `}`
	}
	if _, err := Parse([]byte(`{"where": ` + deep + `}`)); err == nil {
		t.Error("accepted a where tree past the depth bound")
	} else if !strings.Contains(err.Error(), "deeper than") {
		t.Errorf("error = %v, want depth rejection", err)
	}
}

// TestParsedQueriesValidate: everything the parser accepts must pass the
// validator (the fuzz target enforces the same dichotomy on arbitrary
// bytes).
func TestParsedQueriesValidate(t *testing.T) {
	docs := []string{
		`{"where": {"u_turn": true}}`,
		`{"where": {"area": {"min": 10, "max": 500}}}`,
		`{"where": {"within": {"x0": 0, "y0": 0, "x1": 5, "y1": 5}}}`,
		`{"where": {"longer_than": 3}}`,
		`{"similar": {"trajectory": [[1,2],[3,4]], "radius": 9.5}}`,
		`{"similar": {"trajectory": [[1,2]], "k": 1, "exact": true}}`,
		`{"where": {"during": {"from": 9, "to": 3}}}`,
	}
	for _, doc := range docs {
		q := mustParse(t, doc)
		if err := Validate(q); err != nil {
			t.Errorf("Validate(Parse(%s)) = %v", doc, err)
		}
	}
}
