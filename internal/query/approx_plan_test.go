package query

import (
	"math"
	"strings"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/strg"
)

// approxFakeSource decorates fakeSource with a configurable approximate
// tier, standing in for a database with the IVF index enabled.
type approxFakeSource struct {
	*fakeSource
	nlists, defNProbe int
	tierOK            bool
}

func (s *approxFakeSource) ApproxStats() (int, int, bool) {
	return s.nlists, s.defNProbe, s.tierOK
}

func TestNProbeForRecall(t *testing.T) {
	const nlists = 64
	if got := NProbeForRecall(1, nlists); got != nlists {
		t.Errorf("target 1 → %d probes, want every list (%d)", got, nlists)
	}
	if got := NProbeForRecall(0, nlists); got != 1 {
		t.Errorf("target 0 → %d probes, want 1", got)
	}
	if got := NProbeForRecall(-3, nlists); got != 1 {
		t.Errorf("negative target → %d probes, want 1", got)
	}
	if got := NProbeForRecall(0.999999, 4); got != 4 {
		t.Errorf("aggressive target → %d probes, want clamp to nlists", got)
	}
	if got := NProbeForRecall(0.5, 0); got != 1 {
		t.Errorf("degenerate nlists → %d probes, want 1", got)
	}
	prev := 0
	for _, target := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		n := NProbeForRecall(target, nlists)
		if n < prev {
			t.Errorf("NProbeForRecall(%.2f) = %d < %d: not monotone in target", target, n, prev)
		}
		prev = n
	}
}

func approxQuery(c SimilarClause) *Query {
	c.Trajectory = dist.Sequence{{0, 0}, {1, 1}}
	c.Mode = ModeApprox
	if c.K == 0 {
		c.K = 3
	}
	return &Query{Similar: &c}
}

func TestPlanApproxResolvesNProbe(t *testing.T) {
	src := &approxFakeSource{
		fakeSource: newFakeSource(t, []*strg.OG{lineOG(0, 0, 100, 0, 0, 8)}),
		nlists:     32, defNProbe: 4, tierOK: true,
	}
	cases := []struct {
		name   string
		clause SimilarClause
		want   int
	}{
		{"explicit nprobe wins", SimilarClause{NProbe: 7}, 7},
		{"explicit nprobe clamps to nlists", SimilarClause{NProbe: 99}, 32},
		{"default when nothing named", SimilarClause{}, 4},
		{"recall target 1 probes every list", SimilarClause{RecallTarget: 1}, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := BuildPlan(approxQuery(tc.clause), src)
			if p.Strategy != StrategyApprox {
				t.Fatalf("strategy = %s, want approx", p.Strategy)
			}
			if p.NProbe != tc.want {
				t.Errorf("NProbe = %d, want %d", p.NProbe, tc.want)
			}
		})
	}

	// A recall target routes through the miss-decay model.
	p := BuildPlan(approxQuery(SimilarClause{RecallTarget: 0.9}), src)
	if want := NProbeForRecall(0.9, 32); p.NProbe != want {
		t.Errorf("recall target 0.9 → NProbe %d, want %d", p.NProbe, want)
	}
	if p.EstSelectivity <= 0 || p.EstSelectivity > 1 {
		t.Errorf("EstSelectivity = %g, want a probed-fraction in (0, 1]", p.EstSelectivity)
	}
}

func TestPlanApproxWithoutTierLeavesNProbeZero(t *testing.T) {
	// A source without the capability interface, and one whose tier
	// reports disabled, both keep NProbe at 0 — the executor turns that
	// into the configuration error rather than silently degrading.
	plain := newFakeSource(t, []*strg.OG{lineOG(0, 0, 100, 0, 0, 8)})
	off := &approxFakeSource{fakeSource: plain, nlists: 8, defNProbe: 2, tierOK: false}
	for name, src := range map[string]Source{"no capability": plain, "tier disabled": off} {
		p := BuildPlan(approxQuery(SimilarClause{}), src)
		if p.Strategy != StrategyApprox {
			t.Errorf("%s: strategy = %s, want approx (mode is explicit)", name, p.Strategy)
		}
		if p.NProbe != 0 {
			t.Errorf("%s: NProbe = %d, want 0", name, p.NProbe)
		}
	}
}

func TestValidateSimilarApproxRejections(t *testing.T) {
	traj := dist.Sequence{{0, 0}, {1, 1}}
	cases := []struct {
		name string
		q    *Query
		frag string
	}{
		{"radius under approx", &Query{Similar: &SimilarClause{Trajectory: traj, Radius: 5, Mode: ModeApprox}}, "k-NN only"},
		{"exact contradicts approx", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Exact: true, Mode: ModeApprox}}, "contradicts"},
		{"negative nprobe", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox, NProbe: -1}}, "non-negative"},
		{"recall target above 1", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox, RecallTarget: 1.5}}, "(0, 1]"},
		{"recall target NaN", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox, RecallTarget: math.NaN()}}, "(0, 1]"},
		{"nprobe and recall together", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox, NProbe: 2, RecallTarget: 0.9}}, "mutually exclusive"},
		{"unknown mode", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: "fuzzy"}}, "unknown mode"},
		{"nprobe without approx mode", &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, NProbe: 2}}, "require mode"},
		{"approx with where tree", &Query{
			Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox},
			Where:   DuringNode{From: 0, To: 10},
		}, "where tree"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.q)
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}

	ok := &Query{Similar: &SimilarClause{Trajectory: traj, K: 3, Mode: ModeApprox, RecallTarget: 0.95}}
	if err := Validate(ok); err != nil {
		t.Errorf("valid approx query rejected: %v", err)
	}
}

func TestRtreeStageName(t *testing.T) {
	for _, src := range []string{"passes_through", "starts_in", "ends_in", "during", "within"} {
		if got, want := rtreeStageName(src), "rtree:"+src; got != want {
			t.Errorf("rtreeStageName(%q) = %q, want %q", src, got, want)
		}
	}
	if got := rtreeStageName("custom"); got != "rtree:custom" {
		t.Errorf("fallback = %q, want rtree:custom", got)
	}
}

func TestHeadingShorthands(t *testing.T) {
	down := lineOG(0, 0, 0, 100, 0, 8)  // +y: southbound in image coords
	left := lineOG(100, 0, 0, 0, 0, 8)  // -x: westbound
	right := lineOG(0, 0, 100, 0, 0, 8) // +x: eastbound
	tol := math.Pi / 4
	if !Southbound(tol)(down) || Southbound(tol)(right) {
		t.Error("Southbound should match the +y track and only it")
	}
	if !Westbound(tol)(left) || Westbound(tol)(down) {
		t.Error("Westbound should match the -x track and only it")
	}
}
