package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
)

// The JSON query DSL. One document composes predicate and similarity in a
// single declarative request:
//
//	{
//	  "where": {"and": [
//	    {"passes_through": {"x0": 100, "y0": 0, "x1": 200, "y1": 240}},
//	    {"during": {"from": 0, "to": 120}},
//	    {"speed": {"min": 2.5}},
//	    {"or": [{"heading": {"dir": "east"}}, {"heading": {"dir": "west"}}]}
//	  ]},
//	  "similar": {"trajectory": [[20, 120], [160, 120], [300, 120]], "k": 5},
//	  "limit": 100
//	}
//
// A where node is a JSON object with exactly one key: a combinator
// ("and", "or", "not") or a predicate ("passes_through", "starts_in",
// "ends_in", "within", "during", "speed", "heading", "u_turn",
// "longer_than", "area"). Unknown keys and malformed payloads are
// rejected with a descriptive error; Parse never panics on any input
// (fuzz-enforced).

// queryDoc is the top-level wire shape.
type queryDoc struct {
	Where   json.RawMessage `json:"where"`
	Similar *similarDoc     `json:"similar"`
	Limit   int             `json:"limit"`
}

type similarDoc struct {
	Trajectory [][2]float64 `json:"trajectory"`
	K          int          `json:"k"`
	Exact      bool         `json:"exact"`
	Radius     float64      `json:"radius"`
	// Mode "approx" opts into the approximate tier; "nprobe" and
	// "recall_target" tune it (mutually exclusive).
	Mode         string  `json:"mode"`
	NProbe       int     `json:"nprobe"`
	RecallTarget float64 `json:"recall_target"`
}

// rectDoc mirrors the rectangle shape of the legacy select endpoint;
// corners are normalized, so x0/x1 (and y0/y1) may come in either order.
type rectDoc struct {
	X0 float64 `json:"x0"`
	Y0 float64 `json:"y0"`
	X1 float64 `json:"x1"`
	Y1 float64 `json:"y1"`
}

func (r rectDoc) rect() geom.Rect {
	return geom.Rect{
		Min: geom.Pt(math.Min(r.X0, r.X1), math.Min(r.Y0, r.Y1)),
		Max: geom.Pt(math.Max(r.X0, r.X1), math.Max(r.Y0, r.Y1)),
	}
}

// Parse decodes and validates one DSL document.
func Parse(data []byte) (*Query, error) {
	var doc queryDoc
	if err := strictUnmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("query: %v", err)
	}
	q := &Query{Limit: doc.Limit}
	if len(doc.Where) > 0 && !bytes.Equal(bytes.TrimSpace(doc.Where), []byte("null")) {
		n, err := parseNode(doc.Where, 1)
		if err != nil {
			return nil, err
		}
		q.Where = n
	}
	if doc.Similar != nil {
		c := &SimilarClause{
			K: doc.Similar.K, Exact: doc.Similar.Exact, Radius: doc.Similar.Radius,
			Mode: doc.Similar.Mode, NProbe: doc.Similar.NProbe, RecallTarget: doc.Similar.RecallTarget,
		}
		c.Trajectory = make(dist.Sequence, len(doc.Similar.Trajectory))
		for i, p := range doc.Similar.Trajectory {
			c.Trajectory[i] = dist.Vec{p[0], p[1]}
		}
		q.Similar = c
	}
	if err := Validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// strictUnmarshal rejects unknown fields and trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after query document")
	}
	return nil
}

func parseNode(raw json.RawMessage, depth int) (Node, error) {
	if depth > maxWhereDepth {
		return nil, fmt.Errorf("query: where tree deeper than %d", maxWhereDepth)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, fmt.Errorf("query: where node must be an object: %v", err)
	}
	if len(obj) != 1 {
		return nil, fmt.Errorf("query: where node must have exactly one key, got %d", len(obj))
	}
	var key string
	var body json.RawMessage
	for k, v := range obj {
		key, body = k, v
	}
	switch key {
	case "and", "or":
		var kids []json.RawMessage
		if err := json.Unmarshal(body, &kids); err != nil {
			return nil, fmt.Errorf("query: %s expects an array: %v", key, err)
		}
		ns := make([]Node, len(kids))
		for i, kid := range kids {
			n, err := parseNode(kid, depth+1)
			if err != nil {
				return nil, err
			}
			ns[i] = n
		}
		if key == "and" {
			return AndNode{Children: ns}, nil
		}
		return OrNode{Children: ns}, nil
	case "not":
		child, err := parseNode(body, depth+1)
		if err != nil {
			return nil, err
		}
		return NotNode{Child: child}, nil
	case "passes_through", "starts_in", "ends_in":
		var r rectDoc
		if err := strictUnmarshal(body, &r); err != nil {
			return nil, fmt.Errorf("query: %s: %v", key, err)
		}
		kind := SpatialPasses
		switch key {
		case "starts_in":
			kind = SpatialStarts
		case "ends_in":
			kind = SpatialEnds
		}
		return SpatialNode{Kind: kind, Rect: r.rect()}, nil
	case "within":
		var w struct {
			rectDoc
			From *int `json:"from"`
			To   *int `json:"to"`
		}
		if err := strictUnmarshal(body, &w); err != nil {
			return nil, fmt.Errorf("query: within: %v", err)
		}
		from, to := 0, math.MaxInt32
		if w.From != nil {
			from = *w.From
		}
		if w.To != nil {
			to = *w.To
		}
		return WithinNode{Rect: w.rectDoc.rect(), From: from, To: to}, nil
	case "during":
		var d struct {
			From *int `json:"from"`
			To   *int `json:"to"`
		}
		if err := strictUnmarshal(body, &d); err != nil {
			return nil, fmt.Errorf("query: during: %v", err)
		}
		from, to := 0, math.MaxInt32
		if d.From != nil {
			from = *d.From
		}
		if d.To != nil {
			to = *d.To
		}
		return DuringNode{From: from, To: to}, nil
	case "speed":
		var s struct {
			Min *float64 `json:"min"`
			Max *float64 `json:"max"`
		}
		if err := strictUnmarshal(body, &s); err != nil {
			return nil, fmt.Errorf("query: speed: %v", err)
		}
		lo, hi := 0.0, math.Inf(1)
		if s.Min != nil {
			lo = *s.Min
		}
		if s.Max != nil {
			hi = *s.Max
		}
		return SpeedNode{Lo: lo, Hi: hi}, nil
	case "heading":
		var h struct {
			Dir string  `json:"dir"`
			Tol float64 `json:"tol"`
		}
		if err := strictUnmarshal(body, &h); err != nil {
			return nil, fmt.Errorf("query: heading: %v", err)
		}
		if h.Tol == 0 {
			h.Tol = 0.4
		}
		angle, err := headingAngle(h.Dir)
		if err != nil {
			return nil, err
		}
		return HeadingNode{Dir: h.Dir, Angle: angle, Tol: h.Tol}, nil
	case "u_turn":
		// Either `true` (default turn threshold) or {"min_turn": radians}.
		var b bool
		if err := json.Unmarshal(body, &b); err == nil {
			if !b {
				return nil, fmt.Errorf("query: u_turn: false has no meaning (use not)")
			}
			return UTurnNode{MinTurn: DefaultUTurn}, nil
		}
		var u struct {
			MinTurn float64 `json:"min_turn"`
		}
		if err := strictUnmarshal(body, &u); err != nil {
			return nil, fmt.Errorf("query: u_turn: %v", err)
		}
		if u.MinTurn == 0 {
			u.MinTurn = DefaultUTurn
		}
		return UTurnNode{MinTurn: u.MinTurn}, nil
	case "longer_than":
		var n int
		if err := json.Unmarshal(body, &n); err != nil {
			return nil, fmt.Errorf("query: longer_than expects an integer: %v", err)
		}
		return LengthNode{Min: n}, nil
	case "area":
		var a struct {
			Min *float64 `json:"min"`
			Max *float64 `json:"max"`
		}
		if err := strictUnmarshal(body, &a); err != nil {
			return nil, fmt.Errorf("query: area: %v", err)
		}
		lo, hi := 0.0, math.Inf(1)
		if a.Min != nil {
			lo = *a.Min
		}
		if a.Max != nil {
			hi = *a.Max
		}
		return AreaNode{Lo: lo, Hi: hi}, nil
	default:
		return nil, fmt.Errorf("query: unknown predicate %q", key)
	}
}

// DefaultUTurn is the turn threshold of a bare {"u_turn": true} predicate
// (and of the legacy select endpoint's u_turn flag).
const DefaultUTurn = math.Pi * 0.8

// headingAngle maps a DSL direction keyword to its screen-coordinate
// angle (y grows downward).
func headingAngle(dir string) (float64, error) {
	switch dir {
	case "east":
		return 0, nil
	case "south":
		return math.Pi / 2, nil
	case "west":
		return math.Pi, nil
	case "north":
		return 3 * math.Pi / 2, nil
	default:
		return 0, fmt.Errorf("query: unknown heading %q", dir)
	}
}
