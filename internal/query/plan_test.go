package query

import (
	"math"
	"math/rand"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/rtree"
	"strgindex/internal/strg"
)

// fakeSource is an in-memory Source over synthetic OGs with the same
// trajectory R-tree layout core maintains (per-step boxes keyed by OG
// ordinal). noIndex simulates a database without the spatial index.
type fakeSource struct {
	ogs     []*strg.OG
	tree    *rtree.Tree[int32]
	noIndex bool
}

func newFakeSource(t *testing.T, ogs []*strg.OG) *fakeSource {
	t.Helper()
	tree, err := rtree.New[int32](0)
	if err != nil {
		t.Fatal(err)
	}
	for id, og := range ogs {
		for i := 1; i < og.Len(); i++ {
			a, b := og.Centroids[i-1], og.Centroids[i]
			tree.Insert(rtree.NewBox(
				[3]float64{a.X, a.Y, float64(og.Frames[i-1])},
				[3]float64{b.X, b.Y, float64(og.Frames[i])},
			), int32(id))
		}
		if og.Len() == 1 {
			c, f := og.Centroids[0], float64(og.Frames[0])
			tree.Insert(rtree.NewBox([3]float64{c.X, c.Y, f}, [3]float64{c.X, c.Y, f}), int32(id))
		}
	}
	return &fakeSource{ogs: ogs, tree: tree}
}

func (s *fakeSource) NumOGs() int       { return len(s.ogs) }
func (s *fakeSource) OG(i int) *strg.OG { return s.ogs[i] }

func (s *fakeSource) SpatialStats() (rtree.Box, int, bool) {
	if s.noIndex {
		return rtree.Box{}, 0, false
	}
	b, ok := s.tree.Bounds()
	return b, s.tree.Len(), ok
}

func (s *fakeSource) SpatialCandidates(b rtree.Box) ([]int, int, bool) {
	if s.noIndex {
		return nil, 0, false
	}
	hits, visited := s.tree.Search(b)
	seen := map[int32]bool{}
	var ids []int
	for _, h := range hits {
		if !seen[h] {
			seen[h] = true
			ids = append(ids, int(h))
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids, visited, true
}

// DistanceUB sums pointwise Euclidean distances over the shorter prefix
// plus a per-extra-sample penalty — a cheap true metric stand-in. It
// abandons (soundly) when the running sum exceeds ub.
func (s *fakeSource) DistanceUB(q dist.Sequence, i int, ub float64) (float64, bool) {
	og := s.ogs[i]
	var d float64
	n := len(q)
	if og.Len() < n {
		n = og.Len()
	}
	for j := 0; j < n; j++ {
		dx := q[j][0] - og.Centroids[j].X
		dy := q[j][1] - og.Centroids[j].Y
		d += math.Sqrt(dx*dx + dy*dy)
	}
	d += 10 * float64(len(q)+og.Len()-2*n)
	if d > ub {
		return d, true
	}
	return d, false
}

// exact is DistanceUB without abandoning, for brute-force oracles.
func (s *fakeSource) exact(q dist.Sequence, i int) float64 {
	d, _ := s.DistanceUB(q, i, math.Inf(1))
	return d
}

// lineOG builds a straight-line OG from (x0,y0) to (x1,y1) over frames
// [f0, f0+n).
func lineOG(x0, y0, x1, y1 float64, f0, n int) *strg.OG {
	og := &strg.OG{}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		og.Centroids = append(og.Centroids, geom.Pt(x0+t*(x1-x0), y0+t*(y1-y0)))
		og.Frames = append(og.Frames, f0+i)
		og.Sizes = append(og.Sizes, 100)
	}
	return og
}

// scatteredOGs spreads n short random walks over [0,1000]² and frames
// [0, 1000].
func scatteredOGs(rng *rand.Rand, n int) []*strg.OG {
	ogs := make([]*strg.OG, n)
	for i := range ogs {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		f0 := rng.Intn(900)
		og := &strg.OG{}
		for j := 0; j < 8; j++ {
			og.Centroids = append(og.Centroids, geom.Pt(x, y))
			og.Frames = append(og.Frames, f0+j)
			og.Sizes = append(og.Sizes, 50+rng.Float64()*100)
			x += rng.Float64()*20 - 10
			y += rng.Float64()*20 - 10
		}
		ogs[i] = og
	}
	return ogs
}

func TestPlanSelectiveSpatialUsesRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := newFakeSource(t, scatteredOGs(rng, 300))
	q := &Query{Where: AndNode{Children: []Node{
		SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(140, 140)}},
		SpeedNode{Lo: 0, Hi: math.Inf(1)},
	}}}
	if err := Validate(q); err != nil {
		t.Fatal(err)
	}
	p := BuildPlan(q, src)
	if p.Strategy != StrategyRTree {
		t.Fatalf("strategy = %s, want rtree (sel=%g scan=%g rtree=%g)",
			p.Strategy, p.EstSelectivity, p.CostScan, p.CostRTree)
	}
	if p.ProbeSource != "passes_through" {
		t.Errorf("probe source = %q, want passes_through", p.ProbeSource)
	}
	if p.EstCandidates >= src.NumOGs() {
		t.Errorf("est candidates = %d, want < %d", p.EstCandidates, src.NumOGs())
	}
	if p.CostRTree >= p.CostScan {
		t.Errorf("cost rtree %g >= cost scan %g", p.CostRTree, p.CostScan)
	}
	// The probe's own conjunct is demoted: its candidates mostly satisfy
	// it already, so the cheaper-per-rejection speed test runs first.
	if len(p.Order) != 2 || p.Order[0] != "speed" {
		t.Errorf("order = %v, want speed first", p.Order)
	}
}

func TestPlanNonSelectiveSpatialScans(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := newFakeSource(t, scatteredOGs(rng, 300))
	q := &Query{Where: SpatialNode{
		Kind: SpatialPasses,
		Rect: geom.Rect{Min: geom.Pt(-1e6, -1e6), Max: geom.Pt(1e6, 1e6)},
	}}
	p := BuildPlan(q, src)
	if p.Strategy != StrategyScan {
		t.Errorf("strategy = %s, want scan for a bounds-covering rect", p.Strategy)
	}
	if p.EstSelectivity != 1 {
		t.Errorf("est selectivity = %g, want 1", p.EstSelectivity)
	}
}

func TestPlanWithoutIndexScans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := newFakeSource(t, scatteredOGs(rng, 100))
	src.noIndex = true
	q := &Query{Where: SpatialNode{
		Kind: SpatialPasses,
		Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)},
	}}
	if p := BuildPlan(q, src); p.Strategy != StrategyScan {
		t.Errorf("strategy = %s, want scan without a spatial index", p.Strategy)
	}
}

func TestPlanPureSimilarRoutesToIndex(t *testing.T) {
	src := newFakeSource(t, []*strg.OG{lineOG(0, 0, 100, 0, 0, 8)})
	q := &Query{Similar: &SimilarClause{Trajectory: dist.Sequence{{0, 0}, {1, 1}}, K: 3}}
	p := BuildPlan(q, src)
	if p.Strategy != StrategyIndex {
		t.Errorf("strategy = %s, want index for a pure similarity query", p.Strategy)
	}
	if p.Rank {
		t.Error("Rank = true, want false (the index ranks itself)")
	}
}

func TestPlanOrderPutsCheapSelectiveFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	src := newFakeSource(t, scatteredOGs(rng, 200))
	// during is O(1) and moderately selective; u_turn walks the sequence.
	// The window is wide enough that a probe cannot beat the scan, so
	// during keeps its geometric selectivity and must evaluate first (a
	// selective window would become the probe and be demoted instead —
	// see the selective-spatial test).
	q := &Query{Where: AndNode{Children: []Node{
		UTurnNode{MinTurn: math.Pi * 0.8},
		DuringNode{From: 0, To: 400},
	}}}
	p := BuildPlan(q, src)
	if p.Strategy != StrategyScan {
		t.Fatalf("strategy = %s, want scan (sel=%g)", p.Strategy, p.EstSelectivity)
	}
	if len(p.Order) != 2 || p.Order[0] != "during" {
		t.Errorf("order = %v, want during first", p.Order)
	}
}

// TestProbeBoxSuperset: every probe box derived from an indexable leaf
// must admit every OG satisfying that leaf (the soundness invariant the
// rtree strategy rests on).
func TestProbeBoxSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ogs := scatteredOGs(rng, 150)
	src := newFakeSource(t, ogs)
	leaves := []Node{
		SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(200, 200), Max: geom.Pt(600, 600)}},
		SpatialNode{Kind: SpatialStarts, Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(500, 500)}},
		SpatialNode{Kind: SpatialEnds, Rect: geom.Rect{Min: geom.Pt(300, 0), Max: geom.Pt(1000, 400)}},
		WithinNode{Rect: geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(700, 700)}, From: 50, To: 400},
		DuringNode{From: 100, To: 300},
	}
	for _, leaf := range leaves {
		pred := Compile(leaf)
		ids, _, ok := src.SpatialCandidates(probeBox(leaf))
		if !ok {
			t.Fatal("no index")
		}
		cand := map[int]bool{}
		for _, id := range ids {
			cand[id] = true
		}
		for i, og := range ogs {
			if pred(og) && !cand[i] {
				t.Errorf("%s: OG %d satisfies the leaf but the probe missed it", leaf.name(), i)
			}
		}
	}
}
