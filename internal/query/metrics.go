package query

import (
	"sync"

	"strgindex/internal/obs"
)

// Planner observability: which strategies the cost model picks and how
// many candidates each stage admits. Per-query detail rides in the
// response's stats; these aggregates make strategy drift visible on the
// /metrics scrape.
//
// Registry lookups canonicalise labels (sort + format) under a mutex —
// fine at scrape rates, not per query. Both label sets here are tiny and
// bounded (strategies; stage name × dir), so the resolved *obs.Counter
// handles are memoised and the hot path is one sync.Map read.

var (
	planCounters  sync.Map // Strategy -> *obs.Counter
	stageCounters sync.Map // stageKey -> *obs.Counter
)

// stageKey keys the stage-counter memo without concatenating strings on
// the per-query path.
type stageKey struct{ stage, dir string }

func plansTotal(strategy Strategy) *obs.Counter {
	if c, ok := planCounters.Load(strategy); ok {
		return c.(*obs.Counter)
	}
	c := obs.Default.Counter("strg_query_plans_total",
		"Declarative query plans built, by chosen strategy.",
		obs.Labels{"strategy": string(strategy)})
	planCounters.Store(strategy, c)
	return c
}

func stageCounter(stage, dir string) *obs.Counter {
	key := stageKey{stage, dir}
	if c, ok := stageCounters.Load(key); ok {
		return c.(*obs.Counter)
	}
	c := obs.Default.Counter("strg_query_stage_candidates_total",
		"Candidates entering (dir=in) and surviving (dir=out) each plan stage.",
		obs.Labels{"stage": stage, "dir": dir})
	stageCounters.Store(key, c)
	return c
}

// ObservePlan records a plan choice. BuildPlan does not call it directly
// so that planning stays side-effect free for tests; executors (Execute,
// and core's index-strategy path) do.
func ObservePlan(p Plan) {
	plansTotal(p.Strategy).Inc()
}

func observeStages(p Plan, res *Result) {
	ObservePlan(p)
	for _, s := range res.Stages {
		// Stage names include the probe source ("rtree:within"); strip it
		// to keep label cardinality bounded.
		name := s.Name
		for i := 0; i < len(name); i++ {
			if name[i] == ':' {
				name = name[:i]
				break
			}
		}
		stageCounter(name, "in").Add(int64(s.In))
		stageCounter(name, "out").Add(int64(s.Out))
	}
}
