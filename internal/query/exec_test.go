package query

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

// bruteFilter is the oracle: every OG index satisfying the where tree,
// ascending.
func bruteFilter(src *fakeSource, n Node) []int {
	pred := Compile(n)
	var out []int
	for i := range src.ogs {
		if pred(src.ogs[i]) {
			out = append(out, i)
		}
	}
	return out
}

// TestExecuteRTreeMatchesScan: for a spread of where trees, the rtree
// plan, the forced scan plan and the brute-force oracle must agree
// exactly — the probe is a superset and the residual re-checks, so the
// strategy can never change answers.
func TestExecuteRTreeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := newFakeSource(t, scatteredOGs(rng, 400))
	queries := []Node{
		SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(250, 250)}},
		WithinNode{Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(500, 500)}, From: 100, To: 400},
		AndNode{Children: []Node{
			SpatialNode{Kind: SpatialStarts, Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(400, 1000)}},
			DuringNode{From: 0, To: 500},
		}},
		AndNode{Children: []Node{
			SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(600, 600), Max: geom.Pt(680, 680)}},
			OrNode{Children: []Node{
				SpeedNode{Lo: 0, Hi: 5},
				LengthNode{Min: 4},
			}},
		}},
		NotNode{Child: SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(500, 500)}}},
	}
	for qi, where := range queries {
		q := &Query{Where: where}
		if err := Validate(q); err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := bruteFilter(src, where)

		pIdx := BuildPlan(q, src)
		rIdx, err := Execute(context.Background(), src, q, pIdx)
		if err != nil {
			t.Fatalf("query %d (indexed): %v", qi, err)
		}
		src.noIndex = true
		pScan := BuildPlan(q, src)
		rScan, err := Execute(context.Background(), src, q, pScan)
		src.noIndex = false
		if err != nil {
			t.Fatalf("query %d (scan): %v", qi, err)
		}
		if pScan.Strategy != StrategyScan {
			t.Fatalf("query %d: forced plan strategy = %s", qi, pScan.Strategy)
		}
		if !equalInts(rIdx.Indices, want) {
			t.Errorf("query %d: %s plan = %v, oracle = %v", qi, pIdx.Strategy, rIdx.Indices, want)
		}
		if !equalInts(rScan.Indices, want) {
			t.Errorf("query %d: scan plan = %v, oracle = %v", qi, rScan.Indices, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExecuteRankKNN: composed filter-then-rank must equal the brute
// force "filter, compute every distance, sort by (distance, index), take
// k" — including ties, which duplicate trajectories force.
func TestExecuteRankKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ogs := scatteredOGs(rng, 120)
	// Clones of OG 0 at the same coordinates: equal distances, so the
	// (distance, index) tie-break decides.
	for i := 0; i < 4; i++ {
		clone := &strg.OG{
			Centroids: append([]geom.Point(nil), ogs[0].Centroids...),
			Frames:    append([]int(nil), ogs[0].Frames...),
			Sizes:     append([]float64(nil), ogs[0].Sizes...),
		}
		ogs = append(ogs, clone)
	}
	src := newFakeSource(t, ogs)
	traj := dist.Sequence{{500, 500}, {510, 510}, {520, 500}}
	where := DuringNode{From: 0, To: 1 << 30}

	for _, k := range []int{1, 3, 7, 1000} {
		q := &Query{Where: where, Similar: &SimilarClause{Trajectory: traj, K: k}}
		p := BuildPlan(q, src)
		res, err := Execute(context.Background(), src, q, p)
		if err != nil {
			t.Fatal(err)
		}

		ids := bruteFilter(src, where)
		type hit struct {
			id int
			d  float64
		}
		hits := make([]hit, len(ids))
		for i, id := range ids {
			hits[i] = hit{id: id, d: src.exact(traj, id)}
		}
		sort.SliceStable(hits, func(a, b int) bool {
			if hits[a].d != hits[b].d {
				return hits[a].d < hits[b].d
			}
			return hits[a].id < hits[b].id
		})
		if len(hits) > k {
			hits = hits[:k]
		}
		want := make([]RankedMatch, len(hits))
		for i, h := range hits {
			want[i] = RankedMatch{Index: h.id, Distance: h.d}
		}
		if !reflect.DeepEqual(res.Ranked, want) {
			t.Errorf("k=%d: ranked = %v, want %v", k, res.Ranked, want)
		}
	}
}

// TestExecuteRankRange: radius semantics against the brute-force oracle.
func TestExecuteRankRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := newFakeSource(t, scatteredOGs(rng, 200))
	traj := dist.Sequence{{500, 500}, {510, 510}}
	where := SpeedNode{Lo: 0, Hi: 1e9}
	radius := 400.0

	q := &Query{Where: where, Similar: &SimilarClause{Trajectory: traj, Radius: radius}}
	p := BuildPlan(q, src)
	res, err := Execute(context.Background(), src, q, p)
	if err != nil {
		t.Fatal(err)
	}
	var want []RankedMatch
	for _, id := range bruteFilter(src, where) {
		if d := src.exact(traj, id); d <= radius {
			want = append(want, RankedMatch{Index: id, Distance: d})
		}
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].Distance < want[b].Distance })
	if !reflect.DeepEqual(res.Ranked, want) {
		t.Errorf("range = %v, want %v", res.Ranked, want)
	}
	if res.Total != len(want) {
		t.Errorf("total = %d, want %d", res.Total, len(want))
	}
}

// TestExecuteLimitAndStages: the limit truncates after Total is counted,
// and the stage chain's counts are consistent.
func TestExecuteLimitAndStages(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src := newFakeSource(t, scatteredOGs(rng, 100))
	q := &Query{Where: DuringNode{From: 0, To: 1 << 30}, Limit: 10}
	p := BuildPlan(q, src)
	res, err := Execute(context.Background(), src, q, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 10 || res.Total != 100 || !res.Truncated {
		t.Errorf("got %d/%d truncated=%v, want 10/100 true", len(res.Indices), res.Total, res.Truncated)
	}
	if len(res.Stages) < 2 {
		t.Fatalf("stages = %v, want access + filter", res.Stages)
	}
	for i := 1; i < len(res.Stages); i++ {
		if res.Stages[i].In != res.Stages[i-1].Out {
			t.Errorf("stage %d in = %d, want previous out %d", i, res.Stages[i].In, res.Stages[i-1].Out)
		}
	}
	last := res.Stages[len(res.Stages)-1]
	if last.Out != res.Total {
		t.Errorf("final stage out = %d, want total %d", last.Out, res.Total)
	}
}

// TestExecuteCancelled: a done context aborts with its error and no
// partial results.
func TestExecuteCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	src := newFakeSource(t, scatteredOGs(rng, 50))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := &Query{Where: DuringNode{From: 0, To: 1 << 30}}
	if res, err := Execute(ctx, src, q, BuildPlan(q, src)); err != context.Canceled || res != nil {
		t.Errorf("Execute(cancelled) = (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestExecuteIndexStrategyRefused: index plans belong to the caller.
func TestExecuteIndexStrategyRefused(t *testing.T) {
	src := newFakeSource(t, scatteredOGs(rand.New(rand.NewSource(26)), 5))
	q := &Query{Similar: &SimilarClause{Trajectory: dist.Sequence{{0, 0}}, K: 1}}
	p := BuildPlan(q, src)
	if p.Strategy != StrategyIndex {
		t.Fatalf("strategy = %s", p.Strategy)
	}
	if _, err := Execute(context.Background(), src, q, p); err == nil {
		t.Error("Execute accepted a StrategyIndex plan")
	}
}
