package query

import (
	"fmt"

	"strgindex/internal/dist"
	"strgindex/internal/strg"
)

// Matcher is one query compiled for repeated single-OG evaluation — the
// shape a standing query needs: as each commit's OG delta arrives, every
// subscription asks "does this new OG qualify, and how far is it?" without
// re-planning or rescanning the corpus. The where tree is compiled once to
// a closure predicate; the similar clause keeps its trajectory and a pinned
// exact metric.
type Matcher struct {
	pred   Predicate
	sim    *SimilarClause
	metric dist.Metric
}

// NewMatcher validates q and compiles it for incremental evaluation under
// metric (the index's key metric; nil means EGED_M with the zero gap, the
// index default). ModeApprox queries are rejected: the approximate tier
// defines its answers against a trained candidate index, which has no
// meaningful single-OG incremental form — standing queries are exact.
func NewMatcher(q *Query, metric dist.Metric) (*Matcher, error) {
	if err := Validate(q); err != nil {
		return nil, err
	}
	if q.Similar != nil && q.Similar.Mode == ModeApprox {
		return nil, fmt.Errorf("query: mode %q cannot stand: incremental evaluation is exact-only", ModeApprox)
	}
	if metric == nil {
		metric = dist.EGEDMZero
	}
	m := &Matcher{pred: Compile(q.Where), metric: metric}
	if q.Similar != nil {
		c := *q.Similar
		c.Trajectory = append(dist.Sequence(nil), q.Similar.Trajectory...)
		m.sim = &c
	}
	return m, nil
}

// Match reports whether og satisfies the where tree (vacuously true for a
// pure-similarity query). Safe for concurrent use.
func (m *Matcher) Match(og *strg.OG) bool { return m.pred(og) }

// Distance returns the metric distance from the similar clause's trajectory
// to og. It panics for a query with no similar clause — check HasSimilar.
func (m *Matcher) Distance(og *strg.OG) float64 {
	return m.metric(m.sim.Trajectory, og.Sequence())
}

// HasSimilar reports whether the query ranks by similarity at all.
func (m *Matcher) HasSimilar() bool { return m.sim != nil }

// K returns the k-NN result bound (0 for range or predicate-only queries).
func (m *Matcher) K() int {
	if m.sim == nil {
		return 0
	}
	return m.sim.K
}

// Radius returns the range bound (0 for k-NN or predicate-only queries).
func (m *Matcher) Radius() float64 {
	if m.sim == nil {
		return 0
	}
	return m.sim.Radius
}
