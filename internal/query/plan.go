package query

import (
	"math"
	"sort"

	"strgindex/internal/dist"
	"strgindex/internal/rtree"
	"strgindex/internal/strg"
)

// Source is the data a plan compiles against and executes over: the
// retained Object Graphs plus (optionally) the trajectory R-tree
// maintained at ingest and the metric kernel of the STRG-Index cascade.
// Implementations must present a consistent snapshot for the duration of
// one BuildPlan + Execute pair (core runs both under its read lock).
type Source interface {
	// NumOGs returns the number of retained Object Graphs.
	NumOGs() int
	// OG returns Object Graph i (0 <= i < NumOGs). Callers do not mutate.
	OG(i int) *strg.OG
	// SpatialStats describes the trajectory R-tree: the bounding box of
	// every indexed step and the number of indexed boxes. ok is false
	// when no spatial index is available (disabled, or empty).
	SpatialStats() (bounds rtree.Box, boxes int, ok bool)
	// SpatialCandidates returns the indices of OGs owning at least one
	// step box intersecting b, ascending, plus the tree nodes visited.
	// ok is false when no spatial index is available. The returned slice
	// is the executor's to own — implementations must hand out a fresh
	// (or otherwise unshared) slice per call, as Execute filters it in
	// place.
	SpatialCandidates(b rtree.Box) (ids []int, visited int, ok bool)
	// DistanceUB evaluates the key metric between q and OG i's attribute
	// sequence with early-abandoning threshold ub: abandoned reports that
	// the true distance provably exceeds ub (the value is then invalid).
	DistanceUB(q dist.Sequence, i int, ub float64) (d float64, abandoned bool)
}

// Strategy names the access path a plan starts from.
type Strategy string

const (
	// StrategyScan filters every retained OG through the where tree.
	StrategyScan Strategy = "scan"
	// StrategyRTree probes the trajectory R-tree with a box derived from
	// a required spatial/temporal conjunct, then filters only the
	// candidates (a provable superset, so answers match a scan exactly).
	StrategyRTree Strategy = "rtree"
	// StrategyIndex routes a pure-similarity query (no where tree)
	// straight to the STRG-Index lower-bound cascade; the caller executes
	// it (the index lives above this package).
	StrategyIndex Strategy = "index"
	// StrategyApprox routes an opted-in pure-similarity k-NN (mode
	// "approx") to the approximate tier: IVF candidate generation, exact
	// rerank. Never chosen by cost — only an explicit mode selects it,
	// and the executor rejects it cleanly when the tier is disabled.
	StrategyApprox Strategy = "approx"
)

// ApproxSource is optionally implemented by a Source whose database
// carries the approximate similarity tier. ok is false when the tier is
// disabled; the planner then leaves Plan.NProbe at 0 and the executor
// reports the configuration error.
type ApproxSource interface {
	// ApproxStats returns the tier's inverted-list count and the default
	// probe count for queries that do not name one.
	ApproxStats() (nlists, defaultNProbe int, ok bool)
}

// NProbeForRecall maps a recall target in (0, 1] to an IVF probe count
// under a geometric miss-decay model: each additional probed list roughly
// halves the chance the true neighbors were missed, so nprobe grows with
// log(1/(1-target)). A target of 1 probes every list, making the answer
// provably exact (the tier takes every member of a probed list as a
// candidate). A heuristic, not a guarantee — the experiment grid measures
// the real recall curve.
func NProbeForRecall(target float64, nlists int) int {
	if nlists < 1 {
		nlists = 1
	}
	if target >= 1 {
		return nlists
	}
	if target <= 0 {
		return 1
	}
	n := int(math.Ceil(2 * math.Log2(1/(1-target))))
	if n < 1 {
		n = 1
	}
	if n > nlists {
		n = nlists
	}
	return n
}

// Plan is a compiled query: the chosen access path, the residual
// predicate (with its top-level conjuncts reordered cheapest-and-most-
// selective first) and the cost-model bookkeeping that chose it.
type Plan struct {
	Strategy Strategy
	// Rank reports that a similarity rank stage follows the filter.
	Rank bool
	// Probe is the R-tree query box (valid for StrategyRTree) and
	// ProbeSource the DSL name of the conjunct it derives from.
	Probe       rtree.Box
	ProbeSource string
	// EstSelectivity and EstCandidates are the cost model's estimates for
	// the probe (1 and NumOGs for a scan).
	EstSelectivity float64
	EstCandidates  int
	// CostScan and CostRTree are the modeled stage costs (arbitrary
	// units; comparable to each other only).
	CostScan, CostRTree float64
	// NProbe is the resolved IVF probe count (StrategyApprox only; 0
	// when the serving database has the tier disabled) and CostApprox
	// the modeled cost of the probe plus rerank.
	NProbe     int
	CostApprox float64
	// Order lists the residual's top-level conjuncts in evaluation order.
	Order []string
	// residual is the compiled where tree (vacuous truth when nil).
	residual Predicate
}

// Stage cost constants of the cost model, in "one point-in-rect test"
// units. They only need to get the orders of magnitude right: the planner
// compares sums of them, never interprets them absolutely.
const (
	// costPerSample is charged per trajectory sample for predicates that
	// walk the whole centroid sequence.
	costPerSample = 1.0
	// estSamplesPerOG stands in for the unknown mean trajectory length.
	estSamplesPerOG = 32.0
	// costBoxTest is one R-tree box intersection test; a probe touches
	// roughly the matching fraction of all boxes plus their parents.
	costBoxTest = 2.0
	// costConst is the cost of an O(1) predicate (during, longer_than).
	costConst = 1.0
	// costProbeList is ranking one IVF centroid (a Dim-wide L2) and
	// costRerank one candidate's pass through the exact cascade (the
	// lower bounds usually dispose of it before the DP).
	costProbeList = 2.0
	costRerank    = costPerSample * estSamplesPerOG
)

// nodeCost estimates the evaluation cost of one where node per OG.
func nodeCost(n Node) float64 {
	switch v := n.(type) {
	case AndNode:
		return sumCosts(v.Children)
	case OrNode:
		return sumCosts(v.Children)
	case NotNode:
		return nodeCost(v.Child)
	case DuringNode, LengthNode:
		return costConst
	case UTurnNode:
		return costConst * 4 // two segment directions
	default:
		// Everything else walks the centroid sequence.
		return costPerSample * estSamplesPerOG
	}
}

func sumCosts(ns []Node) float64 {
	var c float64
	for _, n := range ns {
		c += nodeCost(n)
	}
	return c
}

// nodeSelectivity estimates the fraction of OGs satisfying one node.
// Spatial and temporal leaves get a geometric estimate against the
// indexed bounds; attribute leaves get fixed priors. Estimates feed the
// conjunct ordering and the scan-vs-rtree decision only — they never
// change answers.
func nodeSelectivity(n Node, bounds rtree.Box, haveBounds bool) float64 {
	switch v := n.(type) {
	case AndNode:
		s := 1.0
		for _, k := range v.Children {
			s *= nodeSelectivity(k, bounds, haveBounds)
		}
		return s
	case OrNode:
		miss := 1.0
		for _, k := range v.Children {
			miss *= 1 - nodeSelectivity(k, bounds, haveBounds)
		}
		return 1 - miss
	case NotNode:
		return 1 - nodeSelectivity(v.Child, bounds, haveBounds)
	case SpatialNode:
		return boxSelectivity(probeBox(n), bounds, haveBounds)
	case WithinNode:
		return boxSelectivity(probeBox(n), bounds, haveBounds)
	case DuringNode:
		return boxSelectivity(probeBox(n), bounds, haveBounds)
	case SpeedNode, AreaNode:
		return 0.5
	case HeadingNode:
		// Tol radians out of pi (absolute angle difference range).
		return math.Min(1, v.Tol/math.Pi)
	case UTurnNode:
		return 0.2
	case LengthNode:
		return 0.5
	default:
		return 1
	}
}

// probeBox derives the R-tree query box a leaf implies: a necessary
// condition for the predicate, so the probe's candidates are a superset
// of its matches. Non-indexable nodes return ok=false.
func probeBox(n Node) rtree.Box {
	inf := math.Inf(1)
	switch v := n.(type) {
	case SpatialNode:
		return rtree.Box{
			Min: [3]float64{v.Rect.Min.X, v.Rect.Min.Y, math.Inf(-1)},
			Max: [3]float64{v.Rect.Max.X, v.Rect.Max.Y, inf},
		}
	case WithinNode:
		return rtree.Box{
			Min: [3]float64{v.Rect.Min.X, v.Rect.Min.Y, float64(v.From)},
			Max: [3]float64{v.Rect.Max.X, v.Rect.Max.Y, float64(v.To)},
		}
	case DuringNode:
		return rtree.Box{
			Min: [3]float64{math.Inf(-1), math.Inf(-1), float64(v.From)},
			Max: [3]float64{inf, inf, float64(v.To)},
		}
	}
	return rtree.Box{}
}

func indexable(n Node) bool {
	switch n.(type) {
	case SpatialNode, WithinNode, DuringNode:
		return true
	}
	return false
}

// boxSelectivity is the per-dimension overlap fraction of probe against
// the indexed bounds, multiplied out — the classic uniform-independence
// estimate. It ignores each trajectory's own extent, so it skews low;
// the cost model's box constant absorbs some of that bias and the
// observed per-stage counts in the response stats let an operator see
// the real selectivity.
func boxSelectivity(probe, bounds rtree.Box, haveBounds bool) float64 {
	if !haveBounds {
		return 1
	}
	sel := 1.0
	for d := 0; d < 3; d++ {
		extent := bounds.Max[d] - bounds.Min[d]
		lo := math.Max(probe.Min[d], bounds.Min[d])
		hi := math.Min(probe.Max[d], bounds.Max[d])
		if hi < lo {
			return 0
		}
		if extent <= 0 {
			continue // degenerate dimension: overlap already proven
		}
		frac := (hi - lo) / extent
		if frac < 1 {
			sel *= frac
		}
	}
	return sel
}

// requiredConjuncts returns the leaves that every match must satisfy:
// the flattened top-level And chain. Or/Not subtrees contribute nothing
// (their members are not individually necessary).
func requiredConjuncts(n Node) []Node {
	switch v := n.(type) {
	case AndNode:
		var out []Node
		for _, k := range v.Children {
			out = append(out, requiredConjuncts(k)...)
		}
		return out
	case OrNode, NotNode, nil:
		return nil
	default:
		return []Node{n}
	}
}

// BuildPlan compiles a validated query against src: pick the cheapest
// access path under the cost model, and order the residual's top-level
// conjuncts by rejection power (cheapest cost per expected rejection
// first). Plans never change answers — the probe generates a superset
// and the full where tree is re-checked on every candidate.
func BuildPlan(q *Query, src Source) Plan {
	p := Plan{Strategy: StrategyScan, Rank: q.Similar != nil, EstSelectivity: 1}
	if q.Where == nil {
		if q.Similar != nil {
			p.Strategy = StrategyIndex
			p.Rank = false
			if q.Similar.Mode == ModeApprox {
				planApprox(q.Similar, src, &p)
			}
		}
		return p
	}

	bounds, boxes, haveIdx := src.SpatialStats()
	n := src.NumOGs()
	p.EstCandidates = n

	// Residual cost: every candidate runs the full where tree.
	residualCost := nodeCost(q.Where)
	p.CostScan = float64(n) * residualCost

	// Candidate probes: every required, indexable conjunct. The one with
	// the lowest estimated selectivity wins.
	var probe Node
	probeSel := math.Inf(1)
	if haveIdx {
		for _, leaf := range requiredConjuncts(q.Where) {
			if !indexable(leaf) {
				continue
			}
			if sel := boxSelectivity(probeBox(leaf), bounds, true); sel < probeSel {
				probe, probeSel = leaf, sel
			}
		}
	}
	if probe != nil {
		estCand := int(math.Ceil(probeSel * float64(n)))
		p.CostRTree = probeSel*float64(boxes)*costBoxTest +
			float64(estCand)*(costBoxTest+residualCost)
		if p.CostRTree < p.CostScan {
			p.Strategy = StrategyRTree
			p.Probe = probeBox(probe)
			p.ProbeSource = probe.name()
			p.EstSelectivity = probeSel
			p.EstCandidates = estCand
		}
	}

	ordered := orderConjuncts(q.Where, p, bounds, haveIdx)
	p.residual = Compile(ordered)
	if and, ok := ordered.(AndNode); ok {
		p.Order = make([]string, len(and.Children))
		for i, k := range and.Children {
			p.Order[i] = k.name()
		}
	} else {
		p.Order = []string{ordered.name()}
	}
	return p
}

// planApprox switches a pure-similarity plan to the approximate tier.
// The validator already guaranteed k-NN semantics and no where tree; here
// the probe count is resolved — explicit nprobe wins, then a recall
// target through the miss-decay model, then the database default — and
// the cost model fills the envelope the server reports. When the source
// carries no tier, NProbe stays 0 and the executor rejects the plan with
// the configuration error (an explicit mode never silently degrades to a
// different access path).
func planApprox(c *SimilarClause, src Source, p *Plan) {
	p.Strategy = StrategyApprox
	as, ok := src.(ApproxSource)
	if !ok {
		return
	}
	nlists, defNProbe, ok := as.ApproxStats()
	if !ok {
		return
	}
	nprobe := c.NProbe
	switch {
	case nprobe > 0:
	case c.RecallTarget > 0:
		nprobe = NProbeForRecall(c.RecallTarget, nlists)
	default:
		nprobe = defNProbe
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlists {
		nprobe = nlists
	}
	n := src.NumOGs()
	p.NProbe = nprobe
	p.EstSelectivity = float64(nprobe) / float64(nlists)
	p.EstCandidates = int(math.Ceil(p.EstSelectivity * float64(n)))
	p.CostApprox = float64(nlists)*costProbeList + float64(p.EstCandidates)*costRerank
	p.CostScan = float64(n) * costRerank
}

// orderConjuncts reorders a top-level And's children by ascending
// cost-per-rejection — the cheapest way to dispose of a non-match runs
// first. Predicates are pure, so reordering cannot change answers. When
// the plan probes the R-tree, the probe's own conjunct is demoted (its
// candidates mostly satisfy it already).
func orderConjuncts(n Node, p Plan, bounds rtree.Box, haveBounds bool) Node {
	and, ok := n.(AndNode)
	if !ok || len(and.Children) < 2 {
		return n
	}
	type scored struct {
		n    Node
		rank float64
		pos  int
	}
	kids := make([]scored, len(and.Children))
	for i, k := range and.Children {
		sel := nodeSelectivity(k, bounds, haveBounds)
		if p.Strategy == StrategyRTree && indexable(k) && probeBox(k) == p.Probe {
			// Conditional selectivity given the probe: candidates nearly
			// always satisfy the conjunct the probe derives from.
			sel = math.Max(sel, 0.9)
		}
		// Cost per expected rejection; a conjunct that rejects nothing
		// (sel ~ 1) is pure overhead and sorts last.
		kids[i] = scored{n: k, rank: nodeCost(k) / math.Max(1e-9, 1-sel), pos: i}
	}
	sort.SliceStable(kids, func(a, b int) bool { return kids[a].rank < kids[b].rank })
	out := AndNode{Children: make([]Node, len(kids))}
	for i, k := range kids {
		out.Children[i] = k.n
	}
	return out
}
