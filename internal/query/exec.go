package query

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"
)

// StageStat is one executed plan stage's accounting: candidates in,
// candidates out and wall time. The stage sequence in a Result is the
// response's per-stage cost breakdown.
type StageStat struct {
	Name     string        `json:"name"`
	In       int           `json:"in"`
	Out      int           `json:"out"`
	Duration time.Duration `json:"-"`
}

// RankedMatch is one similarity-ranked hit of a composed query.
type RankedMatch struct {
	// Index is the OG's position in the Source (its ingest ordinal).
	Index    int
	Distance float64
}

// Result is one executed plan.
type Result struct {
	// Indices lists the matching OGs ascending; for a ranked query it
	// lists them in rank order instead (aligned with Ranked).
	Indices []int
	// Ranked carries the distances of a similarity-ranked query; nil for
	// a filter-only query.
	Ranked []RankedMatch
	// Total is the match count before Limit truncation.
	Total     int
	Truncated bool
	Stages    []StageStat
}

// Execute runs a plan built by BuildPlan against the same Source. It
// checks ctx between evaluation chunks; a cancelled execution returns
// ctx.Err() and no partial results. StrategyIndex plans are the caller's
// job (the STRG-Index lives above this package) and return an error.
func Execute(ctx context.Context, src Source, q *Query, p Plan) (*Result, error) {
	if p.Strategy == StrategyIndex || p.Strategy == StrategyApprox {
		return nil, fmt.Errorf("query: %s plans execute through the index, not Execute", p.Strategy)
	}
	res := &Result{Stages: make([]StageStat, 0, 3)}
	n := src.NumOGs()

	// Access stage: candidate OG indices, ascending.
	var cands []int
	switch p.Strategy {
	case StrategyRTree:
		start := time.Now()
		ids, _, ok := src.SpatialCandidates(p.Probe)
		if !ok {
			// The index vanished between planning and execution (it
			// cannot under the read lock, but fail soft, not wrong).
			cands = allIndices(n)
			res.addStage("scan", n, n, time.Since(start))
			break
		}
		cands = ids
		res.addStage(rtreeStageName(p.ProbeSource), n, len(ids), time.Since(start))
	default:
		cands = allIndices(n)
		res.addStage("scan", n, n, 0)
	}

	// Filter stage: the residual predicate over every candidate, written
	// back into the candidate slice (both access paths hand over a fresh
	// slice, and the write cursor never passes the read cursor). The
	// probe generated a superset, so this re-check makes rtree and scan
	// plans answer identically.
	start := time.Now()
	matched := cands[:0]
	for i, id := range cands {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if p.residual(src.OG(id)) {
			matched = append(matched, id)
		}
	}
	res.addStage("filter", len(cands), len(matched), time.Since(start))

	if q.Similar == nil {
		res.Total = len(matched)
		if q.Limit > 0 && len(matched) > q.Limit {
			matched = matched[:q.Limit]
			res.Truncated = true
		}
		res.Indices = matched
		observeStages(p, res)
		return res, nil
	}

	// Rank stage: metric distance to the query trajectory over the
	// filtered set, with the cascade's early-abandoning kernel pruning
	// against the current threshold (heap worst for k-NN, the radius for
	// range). Candidates are visited in ascending index order and ties
	// break toward the lower index, so results are deterministic.
	start = time.Now()
	ranked, err := rank(ctx, src, q.Similar, matched)
	if err != nil {
		return nil, err
	}
	res.addStage("rank", len(matched), len(ranked), time.Since(start))
	res.Total = len(ranked)
	if q.Limit > 0 && len(ranked) > q.Limit {
		ranked = ranked[:q.Limit]
		res.Truncated = true
	}
	res.Ranked = ranked
	res.Indices = make([]int, len(ranked))
	for i, r := range ranked {
		res.Indices[i] = r.Index
	}
	observeStages(p, res)
	return res, nil
}

func (r *Result) addStage(name string, in, out int, d time.Duration) {
	r.Stages = append(r.Stages, StageStat{Name: name, In: in, Out: out, Duration: d})
}

// rtreeStageName resolves the access stage's display name without
// concatenating on the hot path: probe sources come from the closed set
// of box-deriving conjuncts, so every name is a constant.
func rtreeStageName(probeSource string) string {
	switch probeSource {
	case "passes_through":
		return "rtree:passes_through"
	case "starts_in":
		return "rtree:starts_in"
	case "ends_in":
		return "rtree:ends_in"
	case "during":
		return "rtree:during"
	case "within":
		return "rtree:within"
	}
	return "rtree:" + probeSource
}

func allIndices(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func rank(ctx context.Context, src Source, c *SimilarClause, ids []int) ([]RankedMatch, error) {
	if c.Radius > 0 {
		var hits []RankedMatch
		for i, id := range ids {
			if i&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			d, abandoned := src.DistanceUB(c.Trajectory, id, c.Radius)
			if abandoned || d > c.Radius {
				continue
			}
			hits = append(hits, RankedMatch{Index: id, Distance: d})
		}
		sort.SliceStable(hits, func(a, b int) bool { return hits[a].Distance < hits[b].Distance })
		return hits, nil
	}
	// k-NN: a max-heap of the k best (distance, index) pairs; the kernel
	// abandons strictly above the heap's worst, so a candidate tying the
	// worst is always fully evaluated and the index tie-break is exact.
	h := rankHeap{k: c.K}
	for i, id := range ids {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		thresh := math.Inf(1)
		if h.full() {
			thresh = h.worst()
		}
		d, abandoned := src.DistanceUB(c.Trajectory, id, thresh)
		if abandoned {
			continue
		}
		h.offer(RankedMatch{Index: id, Distance: d})
	}
	return h.sorted(), nil
}

// rankHeap is a max-heap by (distance, index) keeping the k best.
type rankHeap struct {
	k     int
	items []RankedMatch
}

func rankBefore(a, b RankedMatch) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Index < b.Index
}

func (h *rankHeap) full() bool { return len(h.items) >= h.k }

func (h *rankHeap) worst() float64 {
	if len(h.items) == 0 {
		return math.Inf(1)
	}
	return h.items[0].Distance
}

func (h *rankHeap) offer(m RankedMatch) {
	if h.full() && !rankBefore(m, h.items[0]) {
		return
	}
	h.items = append(h.items, m)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rankBefore(h.items[parent], h.items[i]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
	if len(h.items) > h.k {
		h.pop()
	}
}

func (h *rankHeap) pop() RankedMatch {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && rankBefore(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < last && rankBefore(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

func (h *rankHeap) sorted() []RankedMatch {
	out := make([]RankedMatch, len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}
