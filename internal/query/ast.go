package query

import (
	"fmt"
	"math"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

// This file is the typed AST of the declarative query DSL: a `where` tree
// of spatial / temporal / attribute predicate nodes plus an optional
// `similar` clause with k-NN or range semantics. The AST is what the
// parser produces, the validator checks, the planner introspects (to pick
// an index-assisted strategy and order conjuncts by selectivity) and the
// compiler lowers onto the closure predicates of query.go.

// Node is one node of a where tree. The set of implementations is closed:
// the planner type-switches over it.
type Node interface {
	// name is the node's stable DSL keyword (used in plan descriptions).
	name() string
}

// AndNode is satisfied when every child is (vacuously true when empty).
type AndNode struct{ Children []Node }

// OrNode is satisfied when any child is (vacuously false when empty).
type OrNode struct{ Children []Node }

// NotNode negates its child.
type NotNode struct{ Child Node }

// SpatialKind selects which trajectory samples a SpatialNode constrains.
type SpatialKind int

const (
	// SpatialPasses: any centroid sample lies inside the rectangle.
	SpatialPasses SpatialKind = iota
	// SpatialStarts: the first sample lies inside the rectangle.
	SpatialStarts
	// SpatialEnds: the last sample lies inside the rectangle.
	SpatialEnds
)

// SpatialNode is a rectangle predicate over the centroid trajectory.
type SpatialNode struct {
	Kind SpatialKind
	Rect geom.Rect
}

// WithinNode is the paper-motivated window predicate: some centroid
// sample lies inside Rect during frames [From, To] — the query shape the
// 3DR-tree answers natively.
type WithinNode struct {
	Rect     geom.Rect
	From, To int
}

// DuringNode is satisfied when the OG's frame span overlaps [From, To].
type DuringNode struct{ From, To int }

// SpeedNode is satisfied when the mean per-frame speed lies in [Lo, Hi].
type SpeedNode struct{ Lo, Hi float64 }

// HeadingNode is satisfied when the OG moves coherently within Tol
// radians of Angle.
type HeadingNode struct {
	// Dir is the DSL direction keyword the angle was derived from
	// ("east", "west", "north", "south"); informational.
	Dir        string
	Angle, Tol float64
}

// UTurnNode is satisfied when the direction change between the OG's first
// and last thirds is at least MinTurn radians.
type UTurnNode struct{ MinTurn float64 }

// LengthNode is satisfied when the OG spans more than Min samples.
type LengthNode struct{ Min int }

// AreaNode is satisfied when the OG's mean region area lies in [Lo, Hi].
type AreaNode struct{ Lo, Hi float64 }

func (AndNode) name() string     { return "and" }
func (OrNode) name() string      { return "or" }
func (NotNode) name() string     { return "not" }
func (DuringNode) name() string  { return "during" }
func (SpeedNode) name() string   { return "speed" }
func (HeadingNode) name() string { return "heading" }
func (UTurnNode) name() string   { return "u_turn" }
func (LengthNode) name() string  { return "longer_than" }
func (AreaNode) name() string    { return "area" }
func (WithinNode) name() string  { return "within" }

func (n SpatialNode) name() string {
	switch n.Kind {
	case SpatialStarts:
		return "starts_in"
	case SpatialEnds:
		return "ends_in"
	default:
		return "passes_through"
	}
}

// Similarity modes of the optional "mode" field. ModeExact is an explicit
// spelling of the default paths (it changes nothing — the pinning the
// byte-identity contract tests rely on); ModeApprox opts a pure-similarity
// k-NN into the approximate tier (IVF candidates, exact rerank).
const (
	ModeExact  = "exact"
	ModeApprox = "approx"
)

// SimilarClause ranks the where-tree's matches by metric distance to a
// query trajectory: k-NN semantics when K > 0, range semantics when
// Radius > 0 (exactly one must be set).
type SimilarClause struct {
	Trajectory dist.Sequence
	// K selects k-NN semantics; with a where tree the result is the K
	// nearest among the OGs satisfying it (filter-then-rank).
	K int
	// Exact selects the exact all-cluster search for a pure-similarity
	// k-NN (no where tree); composed ranking is always exact.
	Exact bool
	// Radius selects range semantics: every match within Radius.
	Radius float64
	// Mode is "", ModeExact or ModeApprox. ModeApprox requires k-NN
	// semantics, no where tree and no Exact flag; whether the serving
	// database has the tier enabled is checked at execution, not here.
	Mode string
	// NProbe overrides the approximate tier's probe count (ModeApprox
	// only); 0 defers to the database default. Mutually exclusive with
	// RecallTarget.
	NProbe int
	// RecallTarget asks the planner to pick a probe count aiming at this
	// recall@k in (0, 1] (ModeApprox only; 1 probes every list, making
	// the answer provably exact).
	RecallTarget float64
}

// Query is one parsed declarative query.
type Query struct {
	// Where is the predicate tree; nil means every OG qualifies.
	Where Node
	// Similar, when set, ranks the qualifying OGs by similarity.
	Similar *SimilarClause
	// Limit caps the number of returned matches; 0 means no cap (the
	// server applies its own default for predicate-only queries).
	Limit int
}

// Compile lowers a where tree onto the closure predicates. A nil node
// compiles to the vacuous truth.
func Compile(n Node) Predicate {
	if n == nil {
		return And()
	}
	switch v := n.(type) {
	case AndNode:
		return And(compileAll(v.Children)...)
	case OrNode:
		return Or(compileAll(v.Children)...)
	case NotNode:
		return Not(Compile(v.Child))
	case SpatialNode:
		switch v.Kind {
		case SpatialStarts:
			return StartsIn(v.Rect)
		case SpatialEnds:
			return EndsIn(v.Rect)
		default:
			return PassesThrough(v.Rect)
		}
	case WithinNode:
		return WithinDuring(v.Rect, v.From, v.To)
	case DuringNode:
		return During(v.From, v.To)
	case SpeedNode:
		return SpeedBetween(v.Lo, v.Hi)
	case HeadingNode:
		return Heading(v.Angle, v.Tol)
	case UTurnNode:
		return TurnsBy(v.MinTurn)
	case LengthNode:
		return LongerThan(v.Min)
	case AreaNode:
		return AreaBetween(v.Lo, v.Hi)
	default:
		// Unreachable for parser-produced trees; fail closed.
		return func(*strg.OG) bool { return false }
	}
}

func compileAll(ns []Node) []Predicate {
	ps := make([]Predicate, len(ns))
	for i, n := range ns {
		ps[i] = Compile(n)
	}
	return ps
}

// maxWhereDepth bounds where-tree nesting: deeper trees are rejected by
// the validator (and the parser), keeping recursive evaluation safe from
// adversarial inputs.
const maxWhereDepth = 32

// Validate checks a programmatically built query the same way the parser
// checks a parsed one. It is idempotent and does not mutate q.
func Validate(q *Query) error {
	if q == nil {
		return fmt.Errorf("query: nil query")
	}
	if q.Where == nil && q.Similar == nil {
		return fmt.Errorf("query: empty query (need where and/or similar)")
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: limit must be non-negative")
	}
	if q.Where != nil {
		if err := validateNode(q.Where, 1); err != nil {
			return err
		}
	}
	if q.Similar != nil {
		if err := validateSimilar(q.Similar); err != nil {
			return err
		}
		if q.Similar.Mode == ModeApprox && q.Where != nil {
			return fmt.Errorf("query: similar: mode %q cannot be composed with a where tree (the candidate set is approximate; filtered ranking is exact-only)", ModeApprox)
		}
	}
	return nil
}

func validateSimilar(c *SimilarClause) error {
	if len(c.Trajectory) == 0 {
		return fmt.Errorf("query: similar: empty trajectory")
	}
	for i, p := range c.Trajectory {
		if !finite(p[0]) || !finite(p[1]) {
			return fmt.Errorf("query: similar: trajectory sample %d is not finite", i)
		}
	}
	switch {
	case c.K > 0 && c.Radius > 0:
		return fmt.Errorf("query: similar: k and radius are mutually exclusive")
	case c.K <= 0 && c.Radius <= 0:
		return fmt.Errorf("query: similar: one of k or radius is required")
	case c.Radius > 0 && (math.IsNaN(c.Radius) || math.IsInf(c.Radius, 0)):
		return fmt.Errorf("query: similar: radius must be finite")
	case c.Radius > 0 && c.Exact:
		return fmt.Errorf("query: similar: exact applies to k-NN only")
	}
	switch c.Mode {
	case "", ModeExact:
		if c.NProbe != 0 || c.RecallTarget != 0 {
			return fmt.Errorf("query: similar: nprobe and recall_target require mode %q", ModeApprox)
		}
	case ModeApprox:
		if c.Radius > 0 {
			return fmt.Errorf("query: similar: mode %q is k-NN only (radius is exact)", ModeApprox)
		}
		if c.Exact {
			return fmt.Errorf("query: similar: exact contradicts mode %q", ModeApprox)
		}
		if c.NProbe < 0 {
			return fmt.Errorf("query: similar: nprobe must be non-negative")
		}
		if c.RecallTarget != 0 && (math.IsNaN(c.RecallTarget) || c.RecallTarget <= 0 || c.RecallTarget > 1) {
			return fmt.Errorf("query: similar: recall_target must be in (0, 1]")
		}
		if c.NProbe > 0 && c.RecallTarget > 0 {
			return fmt.Errorf("query: similar: nprobe and recall_target are mutually exclusive")
		}
	default:
		return fmt.Errorf("query: similar: unknown mode %q (want %q or %q)", c.Mode, ModeExact, ModeApprox)
	}
	return nil
}

func validateNode(n Node, depth int) error {
	if depth > maxWhereDepth {
		return fmt.Errorf("query: where tree deeper than %d", maxWhereDepth)
	}
	switch v := n.(type) {
	case AndNode:
		return validateAll(v.Children, depth+1)
	case OrNode:
		return validateAll(v.Children, depth+1)
	case NotNode:
		if v.Child == nil {
			return fmt.Errorf("query: not: missing operand")
		}
		return validateNode(v.Child, depth+1)
	case SpatialNode:
		return validateRect(v.name(), v.Rect)
	case WithinNode:
		return validateRect(v.name(), v.Rect)
	case DuringNode:
		return nil // an inverted window is legal and matches nothing
	case SpeedNode:
		if math.IsNaN(v.Lo) || math.IsNaN(v.Hi) || math.IsInf(v.Lo, 0) {
			return fmt.Errorf("query: speed: bounds must be finite (max may be +Inf)")
		}
		if v.Lo > v.Hi {
			return fmt.Errorf("query: speed: min %g > max %g", v.Lo, v.Hi)
		}
		return nil
	case HeadingNode:
		if !finite(v.Angle) || !finite(v.Tol) || v.Tol <= 0 || v.Tol > math.Pi {
			return fmt.Errorf("query: heading: tolerance must be in (0, pi]")
		}
		return nil
	case UTurnNode:
		if !finite(v.MinTurn) || v.MinTurn <= 0 {
			return fmt.Errorf("query: u_turn: min_turn must be positive")
		}
		return nil
	case LengthNode:
		if v.Min < 0 {
			return fmt.Errorf("query: longer_than: must be non-negative")
		}
		return nil
	case AreaNode:
		if math.IsNaN(v.Lo) || math.IsNaN(v.Hi) || math.IsInf(v.Lo, 0) {
			return fmt.Errorf("query: area: bounds must be finite (max may be +Inf)")
		}
		if v.Lo > v.Hi {
			return fmt.Errorf("query: area: min %g > max %g", v.Lo, v.Hi)
		}
		return nil
	case nil:
		return fmt.Errorf("query: nil node in where tree")
	default:
		return fmt.Errorf("query: unknown node type %T", n)
	}
}

func validateAll(ns []Node, depth int) error {
	for _, n := range ns {
		if n == nil {
			return fmt.Errorf("query: nil node in where tree")
		}
		if err := validateNode(n, depth); err != nil {
			return err
		}
	}
	return nil
}

func validateRect(kind string, r geom.Rect) error {
	if !finite(r.Min.X) || !finite(r.Min.Y) || !finite(r.Max.X) || !finite(r.Max.Y) {
		return fmt.Errorf("query: %s: rectangle must be finite", kind)
	}
	if r.Min.X > r.Max.X || r.Min.Y > r.Max.Y {
		return fmt.Errorf("query: %s: rectangle corners are not normalized", kind)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
