package query

import (
	"math"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
)

func TestMatcherPredicate(t *testing.T) {
	east := lineOG(0, 50, 100, 50, 0, 8)
	west := lineOG(100, 150, 0, 150, 0, 8)
	m, err := NewMatcher(&Query{Where: HeadingNode{Dir: "east", Angle: 0, Tol: 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Match(east) {
		t.Error("eastbound OG rejected by east heading")
	}
	if m.Match(west) {
		t.Error("westbound OG matched east heading")
	}
	if m.HasSimilar() || m.K() != 0 || m.Radius() != 0 {
		t.Error("predicate-only matcher reports a similar clause")
	}
}

func TestMatcherDistance(t *testing.T) {
	og := lineOG(0, 0, 100, 0, 0, 8)
	q := &Query{Similar: &SimilarClause{Trajectory: og.Sequence(), K: 3}}
	m, err := NewMatcher(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasSimilar() || m.K() != 3 {
		t.Fatalf("similar clause lost: HasSimilar=%v K=%d", m.HasSimilar(), m.K())
	}
	if d := m.Distance(og); d != 0 {
		t.Errorf("self-distance = %g, want 0", d)
	}
	far := lineOG(0, 500, 100, 500, 0, 8)
	if d := m.Distance(far); d <= 0 {
		t.Errorf("distance to a distant OG = %g, want > 0", d)
	}
	// The pinned metric must agree with the index default.
	if got, want := m.Distance(far), dist.EGEDMZero(og.Sequence(), far.Sequence()); got != want {
		t.Errorf("matcher distance %g != EGEDMZero %g", got, want)
	}
	// A pure-similarity matcher's predicate is vacuously true.
	if !m.Match(far) {
		t.Error("pure-similarity matcher rejected an OG")
	}
}

func TestMatcherCustomMetric(t *testing.T) {
	og := lineOG(0, 0, 10, 0, 0, 4)
	q := &Query{Similar: &SimilarClause{Trajectory: dist.Sequence{{0, 0}}, K: 1}}
	m, err := NewMatcher(q, func(a, b dist.Sequence) float64 { return 42 })
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Distance(og); d != 42 {
		t.Errorf("custom metric ignored: got %g", d)
	}
}

func TestMatcherTrajectoryCopied(t *testing.T) {
	traj := dist.Sequence{{0, 0}, {10, 0}}
	q := &Query{Similar: &SimilarClause{Trajectory: traj, K: 1}}
	m, err := NewMatcher(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	og := lineOG(0, 0, 10, 0, 0, 2)
	before := m.Distance(og)
	traj[0] = dist.Vec{1e6, 1e6} // caller scribbles on its slice
	if after := m.Distance(og); after != before {
		t.Error("matcher shares the caller's trajectory storage")
	}
}

func TestMatcherRejects(t *testing.T) {
	tests := []struct {
		name string
		q    *Query
	}{
		{"nil", nil},
		{"empty", &Query{}},
		{"invalid where", &Query{Where: SpeedNode{Lo: 5, Hi: 1}}},
		{"approx mode", &Query{Similar: &SimilarClause{
			Trajectory: dist.Sequence{{0, 0}}, K: 3, Mode: ModeApprox}}},
		{"nan trajectory", &Query{Similar: &SimilarClause{
			Trajectory: dist.Sequence{{math.NaN(), 0}}, K: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMatcher(tt.q, nil); err == nil {
				t.Error("invalid standing query accepted")
			}
		})
	}
}

func TestMatcherRangeClause(t *testing.T) {
	q := &Query{
		Where:   SpatialNode{Kind: SpatialPasses, Rect: geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(200, 200)}},
		Similar: &SimilarClause{Trajectory: dist.Sequence{{50, 50}}, Radius: 10},
	}
	m, err := NewMatcher(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 0 || m.Radius() != 10 {
		t.Errorf("K=%d Radius=%g, want 0/10", m.K(), m.Radius())
	}
}
