package query

import (
	"math"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

// og builds an OG from centroid waypoints, one frame apart, area 300.
func og(points ...geom.Point) *strg.OG {
	o := &strg.OG{}
	for i, p := range points {
		o.Frames = append(o.Frames, i)
		o.Centroids = append(o.Centroids, p)
		o.Sizes = append(o.Sizes, 300)
	}
	return o
}

func eastWalk() *strg.OG {
	return og(geom.Pt(0, 100), geom.Pt(20, 100), geom.Pt(40, 100), geom.Pt(60, 100), geom.Pt(80, 100))
}

func northWalk() *strg.OG {
	return og(geom.Pt(50, 200), geom.Pt(50, 180), geom.Pt(50, 160), geom.Pt(50, 140))
}

func uturnWalk() *strg.OG {
	return og(
		geom.Pt(0, 100), geom.Pt(30, 100), geom.Pt(60, 100),
		geom.Pt(80, 110),
		geom.Pt(60, 120), geom.Pt(30, 120), geom.Pt(0, 120),
	)
}

func TestCombinators(t *testing.T) {
	yes := Predicate(func(*strg.OG) bool { return true })
	no := Predicate(func(*strg.OG) bool { return false })
	o := eastWalk()
	tests := []struct {
		name string
		p    Predicate
		want bool
	}{
		{"and true", And(yes, yes), true},
		{"and false", And(yes, no), false},
		{"and empty", And(), true},
		{"or true", Or(no, yes), true},
		{"or false", Or(no, no), false},
		{"or empty", Or(), false},
		{"not", Not(no), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p(o); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSpatialPredicates(t *testing.T) {
	o := eastWalk()
	mid := geom.Rect{Min: geom.Pt(35, 90), Max: geom.Pt(45, 110)}
	if !PassesThrough(mid)(o) {
		t.Error("east walk does not pass through its own midpoint region")
	}
	elsewhere := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)}
	if PassesThrough(elsewhere)(o) {
		t.Error("east walk passes through a far corner")
	}
	if !StartsIn(geom.Rect{Min: geom.Pt(-5, 95), Max: geom.Pt(5, 105)})(o) {
		t.Error("StartsIn failed at the start point")
	}
	if !EndsIn(geom.Rect{Min: geom.Pt(75, 95), Max: geom.Pt(85, 105)})(o) {
		t.Error("EndsIn failed at the end point")
	}
	if StartsIn(elsewhere)(o) || EndsIn(elsewhere)(o) {
		t.Error("start/end matched a far corner")
	}
}

func TestTemporalPredicates(t *testing.T) {
	o := eastWalk() // frames 0..4
	if !During(2, 10)(o) {
		t.Error("During(2,10) rejected overlapping span")
	}
	if During(5, 10)(o) {
		t.Error("During(5,10) accepted disjoint span")
	}
	if !LongerThan(4)(o) || LongerThan(5)(o) {
		t.Error("LongerThan boundary wrong")
	}
	empty := &strg.OG{}
	if During(0, 10)(empty) {
		t.Error("empty OG matched During")
	}
}

func TestKinematicPredicates(t *testing.T) {
	east := eastWalk()   // speed 20 east
	north := northWalk() // speed 20 north
	if got := MeanSpeed(east); math.Abs(got-20) > 1e-9 {
		t.Errorf("MeanSpeed = %v, want 20", got)
	}
	if !Eastbound(0.2)(east) {
		t.Error("east walk not eastbound")
	}
	if Eastbound(0.2)(north) {
		t.Error("north walk eastbound")
	}
	if !Northbound(0.2)(north) {
		t.Error("north walk not northbound")
	}
	if !SpeedBetween(15, 25)(east) || SpeedBetween(25, 30)(east) {
		t.Error("SpeedBetween wrong")
	}
	if Stationary(5)(east) {
		t.Error("moving walk reported stationary")
	}
	still := og(geom.Pt(10, 10), geom.Pt(10.5, 10), geom.Pt(10, 10.5))
	if !Stationary(5)(still) {
		t.Error("still object not stationary")
	}
}

func TestTurnsBy(t *testing.T) {
	if !TurnsBy(2.5)(uturnWalk()) {
		t.Error("U-turn not detected")
	}
	if TurnsBy(2.5)(eastWalk()) {
		t.Error("straight walk detected as U-turn")
	}
	short := og(geom.Pt(0, 0), geom.Pt(1, 1))
	if TurnsBy(0.1)(short) {
		t.Error("too-short OG matched TurnsBy")
	}
}

func TestAreaBetween(t *testing.T) {
	o := eastWalk() // area 300
	if !AreaBetween(200, 400)(o) {
		t.Error("area 300 rejected by [200,400]")
	}
	if AreaBetween(400, 500)(o) {
		t.Error("area 300 accepted by [400,500]")
	}
	if AreaBetween(0, 1000)(&strg.OG{}) {
		t.Error("empty OG matched AreaBetween")
	}
}

func TestFilterComposition(t *testing.T) {
	ogs := []*strg.OG{eastWalk(), northWalk(), uturnWalk()}
	got := Filter(ogs, And(
		During(0, 100),
		Or(Eastbound(0.3), Northbound(0.3)),
	))
	if len(got) != 2 {
		t.Fatalf("filtered %d, want 2", len(got))
	}
	// U-turns only.
	got = Filter(ogs, TurnsBy(2.5))
	if len(got) != 1 || got[0] != ogs[2] {
		t.Errorf("U-turn filter returned %d", len(got))
	}
	// Nothing matches an impossible conjunction.
	got = Filter(ogs, And(Eastbound(0.1), Northbound(0.1)))
	if len(got) != 0 {
		t.Errorf("impossible filter matched %d", len(got))
	}
}
