package eval

// RecallAtK measures how much of a reference top-k an approximate result
// list recovered: |approx ∩ exact[:k]| / |exact[:k]|, with both lists
// truncated to their first k entries and duplicates within a list
// counted once. It is the recall@k of the approximate-search literature,
// where `exact` is the ground-truth ranking and `approx` the candidate
// ranking under evaluation.
//
// An empty reference yields 1: there was nothing to recall, so nothing
// was missed (the convention keeps averages over query batches from
// being poisoned by queries with no true hits).
func RecallAtK(approx, exact []int, k int) float64 {
	if k > 0 {
		if len(exact) > k {
			exact = exact[:k]
		}
		if len(approx) > k {
			approx = approx[:k]
		}
	}
	if len(exact) == 0 {
		return 1
	}
	want := make(map[int]bool, len(exact))
	for _, id := range exact {
		want[id] = true
	}
	hit := 0
	for _, id := range approx {
		if want[id] {
			hit++
			delete(want, id) // count each reference item at most once
		}
	}
	return float64(hit) / float64(len(exact))
}

// Overlap is the symmetric set overlap of two result lists:
// |a ∩ b| / max(|a|, |b|) over the distinct IDs of each. Two identical
// lists overlap at 1, disjoint lists at 0. Unlike RecallAtK it does not
// privilege either list as ground truth — the recall-proxy metric uses
// it to compare the answers at adjacent probe depths.
func Overlap(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	sa := make(map[int]bool, len(a))
	for _, id := range a {
		sa[id] = true
	}
	sb := make(map[int]bool, len(b))
	for _, id := range b {
		sb[id] = true
	}
	inter := 0
	for id := range sa {
		if sb[id] {
			inter++
		}
	}
	den := len(sa)
	if len(sb) > den {
		den = len(sb)
	}
	if den == 0 {
		return 1
	}
	return float64(inter) / float64(den)
}
