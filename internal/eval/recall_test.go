package eval

import "testing"

func TestRecallAtK(t *testing.T) {
	cases := []struct {
		name          string
		approx, exact []int
		k             int
		want          float64
	}{
		{"identical", []int{1, 2, 3}, []int{1, 2, 3}, 3, 1},
		{"order-insensitive", []int{3, 1, 2}, []int{1, 2, 3}, 3, 1},
		{"half", []int{1, 9}, []int{1, 2}, 2, 0.5},
		{"disjoint", []int{7, 8}, []int{1, 2}, 2, 0},
		{"truncates-exact", []int{1, 2}, []int{1, 2, 3, 4}, 2, 1},
		{"truncates-approx", []int{9, 9, 1}, []int{1, 2}, 2, 0},
		{"short-approx", []int{1}, []int{1, 2, 3}, 3, 1.0 / 3},
		{"dup-approx-counted-once", []int{1, 1, 1}, []int{1, 2, 3}, 3, 1.0 / 3},
		{"empty-exact", []int{1, 2}, nil, 5, 1},
		{"empty-approx", nil, []int{1, 2}, 2, 0},
		{"k-zero-means-whole-lists", []int{1, 2, 3, 4}, []int{1, 2, 3, 4}, 0, 1},
	}
	for _, c := range cases {
		if got := RecallAtK(c.approx, c.exact, c.k); got != c.want {
			t.Errorf("%s: RecallAtK = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		name string
		a, b []int
		want float64
	}{
		{"identical", []int{1, 2, 3}, []int{3, 2, 1}, 1},
		{"disjoint", []int{1, 2}, []int{3, 4}, 0},
		{"subset", []int{1, 2}, []int{1, 2, 3, 4}, 0.5},
		{"both-empty", nil, nil, 1},
		{"one-empty", []int{1}, nil, 0},
		{"dups-collapse", []int{1, 1, 2}, []int{1, 2, 2}, 1},
	}
	for _, c := range cases {
		if got := Overlap(c.a, c.b); got != c.want {
			t.Errorf("%s: Overlap = %v, want %v", c.name, got, c.want)
		}
		if got := Overlap(c.b, c.a); got != c.want {
			t.Errorf("%s (flipped): Overlap = %v, want %v", c.name, got, c.want)
		}
	}
}
