package eval

import (
	"math"
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

func TestErrorRatePerfect(t *testing.T) {
	// Permuted cluster IDs, same partition: error 0.
	assignments := []int{2, 2, 0, 0, 1, 1}
	labels := []int{0, 0, 1, 1, 2, 2}
	got, err := ErrorRate(assignments, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("ErrorRate = %v, want 0", got)
	}
}

func TestErrorRateHalf(t *testing.T) {
	assignments := []int{0, 0, 0, 0}
	labels := []int{0, 0, 1, 1}
	got, err := ErrorRate(assignments, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("ErrorRate = %v, want 50", got)
	}
}

func TestErrorRateMismatchedCounts(t *testing.T) {
	// More clusters than labels and vice versa must still work (padded
	// Hungarian).
	assignments := []int{0, 1, 2, 3}
	labels := []int{0, 0, 1, 1}
	got, err := ErrorRate(assignments, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("ErrorRate = %v, want 50", got)
	}
}

func TestErrorRateErrors(t *testing.T) {
	if _, err := ErrorRate([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ErrorRate(nil, nil); err == nil {
		t.Error("empty clustering accepted")
	}
}

func TestErrorRateBeatsGreedyTrap(t *testing.T) {
	// A case where greedy matching is suboptimal but Hungarian is exact:
	// cluster 0 has 3 of label A and 3 of label B; cluster 1 has 3 of
	// label A only. Optimal: 0->B, 1->A = 6 correct (error 33.3%).
	assignments := []int{0, 0, 0, 0, 0, 0, 1, 1, 1}
	labels := []int{0, 0, 0, 1, 1, 1, 0, 0, 0}
	got, err := ErrorRate(assignments, labels)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1 - 6.0/9.0) * 100; math.Abs(got-want) > 1e-9 {
		t.Errorf("ErrorRate = %v, want %v", got, want)
	}
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	match := Hungarian(cost)
	// Optimal assignment: 0->1 (1), 1->0 (2), 2->2 (2) = 5.
	var total float64
	seen := map[int]bool{}
	for i, j := range match {
		total += cost[i][j]
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
	if total != 5 {
		t.Errorf("Hungarian total = %v, want 5 (match %v)", total, match)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	perms := func(n int) [][]int {
		var out [][]int
		var rec func(cur []int, rest []int)
		rec = func(cur, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				rec(append(cur, rest[i]), next)
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		rec(nil, idx)
		return out
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 20)
			}
		}
		match := Hungarian(cost)
		var got float64
		for i, j := range match {
			got += cost[i][j]
		}
		best := math.Inf(1)
		for _, p := range perms(n) {
			var tot float64
			for i, j := range p {
				tot += cost[i][j]
			}
			best = math.Min(best, tot)
		}
		if math.Abs(got-best) > 1e-9 {
			t.Fatalf("trial %d: Hungarian %v, brute force %v (cost %v)", trial, got, best, cost)
		}
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("Hungarian(nil) = %v", got)
	}
}

func TestPrecisionRecall(t *testing.T) {
	relevant := map[int]bool{1: true, 2: true, 3: true, 4: true}
	tests := []struct {
		name      string
		retrieved []int
		wantP     float64
		wantR     float64
	}{
		{"perfect", []int{1, 2, 3, 4}, 1, 1},
		{"half precision", []int{1, 2, 8, 9}, 0.5, 0.5},
		{"low recall", []int{1}, 1, 0.25},
		{"duplicates collapse", []int{1, 1, 1}, 1, 0.25},
		{"nothing", nil, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := PrecisionRecall(tt.retrieved, relevant)
			if math.Abs(got.Precision-tt.wantP) > 1e-9 || math.Abs(got.Recall-tt.wantR) > 1e-9 {
				t.Errorf("PR = %+v, want P=%v R=%v", got, tt.wantP, tt.wantR)
			}
		})
	}
	if got := PrecisionRecall([]int{1}, nil); got.Precision != 0 || got.Recall != 0 {
		t.Errorf("PR with no relevant = %+v", got)
	}
}

func TestDistortionZeroWhenDetected(t *testing.T) {
	truth := []dist.Sequence{
		{dist.Vec{0, 0}, dist.Vec{10, 0}},
		{dist.Vec{100, 100}, dist.Vec{100, 110}},
	}
	if got := Distortion(truth, truth); got != 0 {
		t.Errorf("Distortion(x, x) = %v, want 0", got)
	}
}

func TestDistortionGrowsWithDisplacement(t *testing.T) {
	truth := []dist.Sequence{{dist.Vec{0, 0}, dist.Vec{10, 0}}}
	near := []dist.Sequence{{dist.Vec{1, 0}, dist.Vec{11, 0}}}
	far := []dist.Sequence{{dist.Vec{50, 0}, dist.Vec{60, 0}}}
	dNear := Distortion(near, truth)
	dFar := Distortion(far, truth)
	if math.Abs(dNear-1) > 1e-9 {
		t.Errorf("near distortion = %v, want 1", dNear)
	}
	if dFar <= dNear {
		t.Errorf("distortion did not grow: near %v, far %v", dNear, dFar)
	}
}

func TestDistortionEdgeCases(t *testing.T) {
	if got := Distortion(nil, nil); got != 0 {
		t.Errorf("Distortion(nil, nil) = %v", got)
	}
	// No detected centroids at all: treated as zero rather than infinite,
	// keeping sweep plots finite.
	truth := []dist.Sequence{{dist.Vec{0, 0}}}
	if got := Distortion(nil, truth); got != 0 {
		t.Errorf("Distortion(nil, truth) = %v, want 0", got)
	}
}

func TestDistortionDifferentLengths(t *testing.T) {
	truth := []dist.Sequence{{dist.Vec{0, 0}, dist.Vec{10, 0}, dist.Vec{20, 0}}}
	detected := []dist.Sequence{{dist.Vec{0, 0}, dist.Vec{20, 0}}}
	// The straight 2-point line resamples onto the 3-point line exactly.
	if got := Distortion(detected, truth); math.Abs(got) > 1e-9 {
		t.Errorf("Distortion across lengths = %v, want 0", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	relevant := map[int]bool{1: true, 2: true}
	tests := []struct {
		name   string
		ranked []int
		want   float64
	}{
		{"perfect", []int{1, 2, 9}, 1.0},
		{"relevant last", []int{9, 8, 1, 2}, (1.0/3 + 2.0/4) / 2},
		{"none found", []int{7, 8, 9}, 0},
		{"partial", []int{1, 9, 9, 2}, (1.0 + 2.0/3) / 2}, // dup 9 counted once
		{"empty ranking", nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AveragePrecision(tt.ranked, relevant); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("AP = %v, want %v", got, tt.want)
			}
		})
	}
	if got := AveragePrecision([]int{1}, nil); got != 0 {
		t.Errorf("AP with no relevant = %v", got)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	rankings := [][]int{{1, 9}, {9, 2}}
	relevants := []map[int]bool{{1: true}, {2: true}}
	got, err := MeanAveragePrecision(rankings, relevants)
	if err != nil {
		t.Fatal(err)
	}
	if want := (1.0 + 0.5) / 2; math.Abs(got-want) > 1e-9 {
		t.Errorf("mAP = %v, want %v", got, want)
	}
	if _, err := MeanAveragePrecision(rankings, relevants[:1]); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := MeanAveragePrecision(nil, nil); err == nil {
		t.Error("no queries accepted")
	}
}
