// Package eval implements the evaluation measures of Section 6: the
// clustering error rate of Equation 11 (with optimal cluster-to-label
// matching via the Hungarian algorithm), precision and recall for k-NN
// results (Figure 7(c)), and the centroid distortion of Figure 6(c).
package eval

import (
	"fmt"
	"math"

	"strgindex/internal/dist"
)

// ErrorRate computes Equation 11:
//
//	(1 − correctly clustered / total) × 100
//
// "Correctly clustered" is counted under the optimal one-to-one matching of
// cluster IDs to ground-truth labels (Hungarian algorithm over the
// contingency table), so the measure is permutation-invariant.
func ErrorRate(assignments, labels []int) (float64, error) {
	if len(assignments) != len(labels) {
		return 0, fmt.Errorf("eval: %d assignments vs %d labels", len(assignments), len(labels))
	}
	if len(assignments) == 0 {
		return 0, fmt.Errorf("eval: empty clustering")
	}
	correct := matchedAgreement(assignments, labels)
	return (1 - float64(correct)/float64(len(assignments))) * 100, nil
}

// matchedAgreement returns the number of items that land on the diagonal
// of the contingency table under the optimal cluster-to-label matching.
func matchedAgreement(assignments, labels []int) int {
	aIDs := indexOf(assignments)
	lIDs := indexOf(labels)
	n := len(aIDs)
	if len(lIDs) > n {
		n = len(lIDs)
	}
	// cost[i][j] = -count(cluster i, label j); Hungarian minimizes.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for idx := range assignments {
		i := aIDs[assignments[idx]]
		j := lIDs[labels[idx]]
		cost[i][j]--
	}
	match := Hungarian(cost)
	total := 0
	for i, j := range match {
		total -= int(cost[i][j])
	}
	return total
}

func indexOf(xs []int) map[int]int {
	out := make(map[int]int)
	for _, x := range xs {
		if _, ok := out[x]; !ok {
			out[x] = len(out)
		}
	}
	return out
}

// Hungarian solves the square assignment problem: given cost[i][j], it
// returns match[i] = j minimizing the total cost. It implements the
// O(n³) Jonker-style shortest augmenting path formulation.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	const inf = math.MaxFloat64
	// Potentials and matching, 1-indexed internally.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	match := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			match[p[j]-1] = j - 1
		}
	}
	return match
}

// PR is a precision/recall pair.
type PR struct {
	Precision float64
	Recall    float64
}

// PrecisionRecall scores a retrieved set against the relevant universe:
// precision = |retrieved ∩ relevant| / |retrieved|, recall = |retrieved ∩
// relevant| / |relevant|. Set semantics; duplicates in retrieved are
// counted once.
func PrecisionRecall(retrieved []int, relevant map[int]bool) PR {
	if len(retrieved) == 0 || len(relevant) == 0 {
		return PR{}
	}
	seen := make(map[int]bool, len(retrieved))
	hits := 0
	uniq := 0
	for _, r := range retrieved {
		if seen[r] {
			continue
		}
		seen[r] = true
		uniq++
		if relevant[r] {
			hits++
		}
	}
	return PR{
		Precision: float64(hits) / float64(uniq),
		Recall:    float64(hits) / float64(len(relevant)),
	}
}

// Distortion is Figure 6(c)'s measure: the sum over true centroids of the
// distance (mean per-sample pixel distance) to the closest detected
// centroid. A perfect clustering detects every prototype, giving a small
// sum; missed or displaced centroids inflate it.
func Distortion(detected, truth []dist.Sequence) float64 {
	if len(truth) == 0 {
		return 0
	}
	var total float64
	for _, tc := range truth {
		best := math.Inf(1)
		for _, dc := range detected {
			if d := centroidDist(dc, tc); d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		total += best
	}
	return total
}

// centroidDist is the mean per-sample Euclidean distance after resampling
// both centroids to a common length — a pixel-scale displacement measure.
func centroidDist(a, b dist.Sequence) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	ra, rb := dist.Resample(a, n), dist.Resample(b, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += dist.Norm(ra[i], rb[i])
	}
	return sum / float64(n)
}

// AveragePrecision computes AP for a ranked result list: the mean of the
// precision values at each rank where a relevant item appears, normalized
// by the number of relevant items. Duplicates in the ranking are counted
// once (first appearance).
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	seen := make(map[int]bool, len(ranked))
	hits := 0
	var sum float64
	rank := 0
	for _, r := range ranked {
		if seen[r] {
			continue
		}
		seen[r] = true
		rank++
		if relevant[r] {
			hits++
			sum += float64(hits) / float64(rank)
		}
	}
	return sum / float64(len(relevant))
}

// MeanAveragePrecision averages AP over queries; rankings and relevants
// are parallel.
func MeanAveragePrecision(rankings [][]int, relevants []map[int]bool) (float64, error) {
	if len(rankings) != len(relevants) {
		return 0, fmt.Errorf("eval: %d rankings vs %d relevance sets", len(rankings), len(relevants))
	}
	if len(rankings) == 0 {
		return 0, fmt.Errorf("eval: no queries")
	}
	var sum float64
	for i := range rankings {
		sum += AveragePrecision(rankings[i], relevants[i])
	}
	return sum / float64(len(rankings)), nil
}
