package feed

import (
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

// FuzzSubscriptionRegister enforces the standing-query front door's
// contract on arbitrary DSL documents: whatever the parser accepts either
// registers cleanly — delivering a well-formed subscription whose seeded
// events carry dense sequence numbers — or is rejected with an error;
// registration never panics and never wedges the engine.
func FuzzSubscriptionRegister(f *testing.F) {
	seeds := []string{
		`{"where": {"longer_than": 1}}`,
		`{"where": {"heading": {"dir": "east"}}}`,
		`{"similar": {"trajectory": [[20, 120], [160, 120]], "k": 3}}`,
		`{"similar": {"trajectory": [[0, 0]], "radius": 1e6}}`,
		`{"where": {"speed": {"min": 0.5}}, "similar": {"trajectory": [[50, 50], [100, 100]], "k": 2}}`,
		`{"similar": {"trajectory": [[1, 1]], "k": 2, "mode": "approx"}}`,
		`{"similar": {"trajectory": [[1, 1]], "k": 2, "exact": true}}`,
		`{}`,
		`{"where": 7}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: 4, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(p, 3)
	if err != nil {
		f.Fatal(err)
	}
	cfg := shardConfig(2)
	db := core.OpenShared(cfg)
	if _, err := db.IngestSegment("Mini", stream.Segments[0]); err != nil {
		f.Fatal(err)
	}
	svc, err := Open(Options{Dir: f.TempDir(), DB: db, STRG: &cfg.STRG})
	if err != nil {
		f.Fatal(err)
	}
	eng := svc.Engine()

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := query.Parse(data)
		if err != nil {
			return
		}
		sub, err := eng.Register(q)
		if err != nil {
			// Rejected standing queries (approx mode, etc.) must not
			// leave residue behind.
			for _, info := range eng.Subs() {
				if _, ok := eng.Get(info.ID); !ok {
					t.Fatalf("Subs lists %s but Get cannot find it", info.ID)
				}
			}
			return
		}
		if sub.ID() == "" {
			t.Fatal("registered subscription has no ID")
		}
		evs, gapped, _ := sub.EventsSince(0)
		if gapped {
			t.Fatal("fresh subscription reports a gap")
		}
		for i, ev := range evs {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("seed event %d has seq %d", i, ev.Seq)
			}
			if ev.Type != "enter" {
				t.Fatalf("seed event of type %q", ev.Type)
			}
		}
		if !eng.Unregister(sub.ID()) {
			t.Fatalf("Unregister(%s) failed for a live subscription", sub.ID())
		}
	})
}
