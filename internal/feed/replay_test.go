package feed

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/faultfs"
	"strgindex/internal/video"
)

// feedFrames generates a deterministic synthetic camera feed: a lab-style
// stream flattened to one contiguous frame sequence.
func feedFrames(t *testing.T, nObjects int, seed int64) ([]video.Frame, Meta) {
	t.Helper()
	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: nObjects, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	s, err := video.GenerateStream(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Segments[0]
	meta := Meta{Width: first.Width, Height: first.Height, FPS: first.FPS}
	var frames []video.Frame
	for _, seg := range s.Segments {
		for _, f := range seg.Frames {
			f.Index = len(frames)
			frames = append(frames, f)
		}
	}
	return frames, meta
}

func shardConfig(shards int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Index.Shards = shards
	return cfg
}

// querySig folds k-NN answers AND their SearchStats into one comparable
// string — the byte-identity witness of the replay-determinism contract.
func querySig(t *testing.T, db *core.SharedDB) string {
	t.Helper()
	var sig strings.Builder
	ctx := context.Background()
	for _, traj := range []dist.Sequence{
		{{20, 120}, {100, 120}, {180, 120}, {280, 120}},
		{{160, 20}, {160, 120}, {160, 220}},
		{{40, 40}, {120, 100}, {240, 200}},
	} {
		exact, est, err := db.QueryTrajectoryExactStatsCtx(ctx, traj, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range exact {
			fmt.Fprintf(&sig, "%d:%x;", m.Record.OGID, m.Distance)
		}
		fmt.Fprintf(&sig, "%+v|", est)
		appr, ast, err := db.QueryTrajectoryStatsCtx(ctx, traj, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range appr {
			fmt.Fprintf(&sig, "%d:%x;", m.Record.OGID, m.Distance)
		}
		fmt.Fprintf(&sig, "%+v|", ast)
	}
	return sig.String()
}

func snapshotBytes(t *testing.T, db *core.SharedDB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renumbered(frames []video.Frame) []video.Frame {
	out := make([]video.Frame, len(frames))
	copy(out, frames)
	for i := range out {
		out[i].Index = i
	}
	return out
}

// TestFeedReplayDeterminism is the tentpole contract at shard counts 1, 2
// and 4: a database fed frame batches through the live path is
// byte-identical — k-NN answers, SearchStats, Stats and snapshot bytes —
// to one that one-shot IngestSegments the same epoch slices.
func TestFeedReplayDeterminism(t *testing.T) {
	frames, meta := feedFrames(t, 8, 42)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := shardConfig(shards)
			dbA := core.OpenShared(cfg)
			svc, err := Open(Options{
				Dir: t.TempDir(), DB: dbA, STRG: &cfg.STRG,
				MinEpochFrames: 12, MaxEpochFrames: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			f, err := svc.Open("cam", meta)
			if err != nil {
				t.Fatal(err)
			}
			var bounds []int
			for i := 0; i < len(frames); i += 7 {
				end := min(i+7, len(frames))
				res, err := f.Append(frames[i:end])
				if err != nil {
					t.Fatal(err)
				}
				if res.Accepted != end-i || res.Duplicates != 0 {
					t.Fatalf("append [%d:%d): %+v", i, end, res)
				}
				if res.Flushed {
					bounds = append(bounds, res.NextFrame)
				}
			}
			if err := f.Flush(); err != nil {
				t.Fatal(err)
			}
			if len(bounds) == 0 || bounds[len(bounds)-1] != len(frames) {
				bounds = append(bounds, len(frames))
			}
			st := f.State()
			if st.Pending != 0 || st.NextFrame != len(frames) || st.Epoch != len(bounds) {
				t.Fatalf("post-flush state %+v, want %d epochs over %d frames", st, len(bounds), len(frames))
			}
			if got := dbA.SegmentsIn("cam"); got != len(bounds) {
				t.Fatalf("SegmentsIn = %d, want %d", got, len(bounds))
			}
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}

			dbB := core.OpenShared(cfg)
			last := 0
			for e, b := range bounds {
				seg := &video.Segment{
					Name:  fmt.Sprintf("cam/%06d", e),
					Width: meta.Width, Height: meta.Height, FPS: meta.FPS,
					Frames: renumbered(frames[last:b]),
				}
				if _, err := dbB.IngestSegment("cam", seg); err != nil {
					t.Fatal(err)
				}
				last = b
			}
			if got, want := querySig(t, dbA), querySig(t, dbB); got != want {
				t.Errorf("feed-ingested answers diverge from one-shot ingest:\nfeed: %s\nshot: %s", got, want)
			}
			if a, b := dbA.Stats(), dbB.Stats(); a != b {
				t.Errorf("Stats diverge: feed %+v, one-shot %+v", a, b)
			}
			if !bytes.Equal(snapshotBytes(t, dbA), snapshotBytes(t, dbB)) {
				t.Error("snapshot bytes diverge between feed and one-shot ingest")
			}
		})
	}
}

// TestFeedIdenticalRunsIdenticalBytes: two independent feed runs over the
// same frames and batching produce byte-identical snapshots.
func TestFeedIdenticalRunsIdenticalBytes(t *testing.T) {
	frames, meta := feedFrames(t, 6, 9)
	run := func() []byte {
		cfg := shardConfig(2)
		db := core.OpenShared(cfg)
		svc, err := Open(Options{Dir: t.TempDir(), DB: db, STRG: &cfg.STRG, MinEpochFrames: 10})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		f, err := svc.Open("cam", meta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(frames); i += 5 {
			if _, err := f.Append(frames[i:min(i+5, len(frames))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Flush(); err != nil {
			t.Fatal(err)
		}
		return snapshotBytes(t, db)
	}
	if !bytes.Equal(run(), run()) {
		t.Error("identical feed runs produced different snapshot bytes")
	}
}

// durableFeedRun drives a feed over a durable database, optionally
// closing and reopening everything mid-feed (restartAt is the batch index
// before which the restart happens; negative disables). The restarted run
// re-sends its last acknowledged batch to prove duplicate skipping.
func durableFeedRun(t *testing.T, frames []video.Frame, meta Meta, batch, restartAt int) ([]byte, string, core.Stats) {
	t.Helper()
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	open := func() (*core.SharedDB, *Service, *Feed) {
		db, _, err := core.OpenDurable(cfg, core.Durability{
			Dir: filepath.Join(dir, "db"), SnapshotOps: -1, SnapshotBytes: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := Open(Options{
			Dir: filepath.Join(dir, "feeds"), DB: db, STRG: &cfg.STRG,
			MinEpochFrames: 12, MaxEpochFrames: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := svc.Open("cam", meta)
		if err != nil {
			t.Fatal(err)
		}
		return db, svc, f
	}
	db, svc, f := open()
	for i := 0; i*batch < len(frames); i++ {
		if i == restartAt {
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, svc, f = open()
			st := f.State()
			if st.NextFrame != i*batch {
				t.Fatalf("restart resumed at frame %d, want %d", st.NextFrame, i*batch)
			}
			if got := db.SegmentsIn("cam"); got != st.Epoch {
				t.Fatalf("restart: SegmentsIn = %d, epoch = %d", got, st.Epoch)
			}
			if i > 0 {
				// The client re-sends its last batch after a reconnect;
				// every frame must be recognized as a duplicate.
				res, err := f.Append(frames[(i-1)*batch : i*batch])
				if err != nil {
					t.Fatal(err)
				}
				if res.Accepted != 0 || res.Duplicates != batch {
					t.Fatalf("duplicate re-send: %+v", res)
				}
			}
		}
		end := min((i+1)*batch, len(frames))
		if _, err := f.Append(frames[i*batch : end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, sig, stats := snapshotBytes(t, db), querySig(t, db), db.Stats()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return snap, sig, stats
}

// TestFeedDurableRestartResume: a durable restart mid-feed — mid-epoch,
// with journaled-but-uncommitted frames — resumes without duplicating or
// losing a single OG: the finished database is byte-identical to an
// uninterrupted run.
func TestFeedDurableRestartResume(t *testing.T) {
	frames, meta := feedFrames(t, 8, 7)
	const batch = 5
	refSnap, refSig, refStats := durableFeedRun(t, frames, meta, batch, -1)
	for _, restartAt := range []int{0, 3, 5} {
		snap, sig, stats := durableFeedRun(t, frames, meta, batch, restartAt)
		if sig != refSig {
			t.Errorf("restart at batch %d: answers diverge from uninterrupted run", restartAt)
		}
		if stats != refStats {
			t.Errorf("restart at batch %d: Stats %+v, want %+v", restartAt, stats, refStats)
		}
		if !bytes.Equal(snap, refSnap) {
			t.Errorf("restart at batch %d: snapshot bytes diverge", restartAt)
		}
	}
}

// TestFeedCrashMatrix kills the journal filesystem at every fsync of a
// feed run — mid-append, mid-intent, mid-rotation — and proves recovery
// holds the ledger invariants: no acknowledged frame is lost, no epoch is
// committed twice or dropped, and the run can always be completed.
func TestFeedCrashMatrix(t *testing.T) {
	frames, meta := feedFrames(t, 6, 13)
	const batch = 6
	cleanRuns := 0
	for n := 0; n < 300; n++ {
		cfg := core.DefaultConfig()
		db := core.OpenShared(cfg)
		dir := t.TempDir()
		fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: -1, FailSyncAfter: n})
		opts := Options{Dir: dir, FS: fsys, DB: db, STRG: &cfg.STRG,
			MinEpochFrames: 10, MaxEpochFrames: 24}

		acked, crashed := 0, false
		svc, err := Open(opts)
		if err != nil {
			t.Fatalf("sync budget %d: service open on a fresh dir wrote nothing durable, yet failed: %v", n, err)
		}
		f, err := svc.Open("cam", meta)
		if err != nil {
			crashed = true
		}
		if !crashed {
			for i := 0; i*batch < len(frames); i++ {
				res, aerr := f.Append(frames[i*batch : min((i+1)*batch, len(frames))])
				if res.NextFrame > acked {
					acked = res.NextFrame
				}
				if aerr != nil {
					crashed = true
					break
				}
			}
		}
		if !crashed {
			if err := f.Flush(); err != nil {
				crashed = true
			}
		}
		svc.Close() // best-effort; the dead disk may refuse the final syncs

		if !crashed {
			st := f.State()
			if st.NextFrame != len(frames) || st.Pending != 0 {
				t.Fatalf("sync budget %d: clean run ended at %+v", n, st)
			}
			if got := db.SegmentsIn("cam"); got != st.Epoch || db.Stats().Segments != st.Epoch {
				t.Fatalf("sync budget %d: %d segments for %d epochs", n, got, st.Epoch)
			}
			cleanRuns++
			if cleanRuns >= 3 {
				return // budget exceeds every fsync in a full run: matrix done
			}
			continue
		}

		// Recover on a healthy disk against the SAME database — the
		// in-memory state stands in for the durable store that survives
		// alongside the journal in production.
		svc2, err := Open(Options{Dir: dir, FS: faultfs.OS{}, DB: db, STRG: &cfg.STRG,
			MinEpochFrames: 10, MaxEpochFrames: 24})
		if err != nil {
			t.Fatalf("sync budget %d: recovery failed: %v", n, err)
		}
		f2, ok := svc2.Feed("cam")
		if !ok {
			// The crash predated a durable feed creation; nothing was
			// acknowledged, so recreating is the correct client move.
			if acked != 0 {
				t.Fatalf("sync budget %d: %d frames acked but feed gone", n, acked)
			}
			if f2, err = svc2.Open("cam", meta); err != nil {
				t.Fatal(err)
			}
		}
		st := f2.State()
		if st.NextFrame < acked {
			t.Fatalf("sync budget %d: acked %d frames, recovered only %d", n, acked, st.NextFrame)
		}
		if st.NextFrame > len(frames) {
			t.Fatalf("sync budget %d: recovered %d frames, only %d were ever sent", n, st.NextFrame, len(frames))
		}
		if got := db.SegmentsIn("cam"); got != st.Epoch {
			t.Fatalf("sync budget %d: SegmentsIn = %d but epoch = %d (lost or doubled commit)", n, got, st.Epoch)
		}
		// The client resumes from the probed cursor and finishes the feed.
		for i := st.NextFrame; i < len(frames); i += batch {
			if _, err := f2.Append(frames[i:min(i+batch, len(frames))]); err != nil {
				t.Fatalf("sync budget %d: resumed append: %v", n, err)
			}
		}
		if err := f2.Flush(); err != nil {
			t.Fatalf("sync budget %d: final flush: %v", n, err)
		}
		fin := f2.State()
		if fin.NextFrame != len(frames) || fin.Pending != 0 {
			t.Fatalf("sync budget %d: completed run state %+v", n, fin)
		}
		if got := db.SegmentsIn("cam"); got != fin.Epoch || db.Stats().Segments != fin.Epoch {
			t.Fatalf("sync budget %d: %d segments for %d epochs after completion", n, got, fin.Epoch)
		}
		if db.Stats().OGs == 0 {
			t.Fatalf("sync budget %d: completed feed produced no OGs", n)
		}
		if err := svc2.Close(); err != nil {
			t.Fatalf("sync budget %d: closing recovered service: %v", n, err)
		}
	}
	t.Fatal("crash matrix never reached a clean run; raise the sync cap")
}
