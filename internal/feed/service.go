package feed

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/faultfs"
	"strgindex/internal/strg"
	"strgindex/internal/wal"
)

// Options configures a feed service.
type Options struct {
	// Dir is the root under which each feed keeps its journal chain
	// (Dir/<feed-id>/journal-*.log).
	Dir string
	// FS is the filesystem the journals live on; nil means the real one.
	// Tests inject faults here.
	FS faultfs.FS
	// DB is the database feeds commit into and standing queries watch.
	DB *core.SharedDB
	// STRG configures the preview builders; it must match the
	// configuration DB was opened with, or epoch boundaries drift from
	// what ingest emits. Zero value means strg.DefaultConfig.
	STRG *strg.Config
	// MinEpochFrames is the soft epoch size: once pending reaches it and
	// the preview builder is quiescent, the epoch commits. Default 16.
	MinEpochFrames int
	// MaxEpochFrames is the hard cap forcing a commit. Default 512.
	MaxEpochFrames int
	// Metric pins the distance for standing similarity queries; nil means
	// the index default (EGED_M, zero gap).
	Metric dist.Metric
	// ReconcileEvery is how many commit deltas pass between full k-NN
	// re-evaluations of each standing query. Default 8.
	ReconcileEvery int
	// RingSize bounds each subscription's undelivered-event buffer.
	// Default 256.
	RingSize int
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Dir == "" {
		return opts, errors.New("feed: Options.Dir is required")
	}
	if opts.DB == nil {
		return opts, errors.New("feed: Options.DB is required")
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS{}
	}
	if opts.STRG == nil {
		cfg := strg.DefaultConfig()
		opts.STRG = &cfg
	}
	if opts.MinEpochFrames <= 0 {
		opts.MinEpochFrames = 16
	}
	if opts.MaxEpochFrames <= 0 {
		opts.MaxEpochFrames = 512
	}
	if opts.MaxEpochFrames < opts.MinEpochFrames {
		opts.MaxEpochFrames = opts.MinEpochFrames
	}
	if opts.ReconcileEvery <= 0 {
		opts.ReconcileEvery = 8
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 256
	}
	return opts, nil
}

// Service owns every live feed and the standing-query engine. It attaches
// to the database's commit-delta hook, so subscriptions observe every
// committed OG — from feeds and from offline ingest alike.
type Service struct {
	opts   Options
	engine *Engine

	mu     sync.Mutex
	feeds  map[string]*Feed
	closed bool
}

// Open starts a feed service: recovers every feed journaled under
// opts.Dir (redoing or acknowledging any in-flight epoch commit against
// the database) and attaches the standing-query engine to the database's
// commit hook.
func Open(o Options) (*Service, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("feed: creating %s: %w", opts.Dir, err)
	}
	s := &Service{opts: opts, feeds: make(map[string]*Feed)}

	entries, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("feed: scanning %s: %w", opts.Dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidID(e.Name()) {
			continue
		}
		f, err := s.recoverFeed(e.Name())
		if err != nil {
			s.closeFeeds()
			return nil, err
		}
		if f == nil {
			continue // creation crashed before anything was acknowledged
		}
		s.feeds[f.id] = f
	}
	feedsOpen.Set(int64(len(s.feeds)))

	s.engine = newEngine(opts.DB, opts.Metric, opts.ReconcileEvery, opts.RingSize)
	opts.DB.OnCommitDelta(s.engine.enqueueDelta)
	return s, nil
}

// Feed returns the open feed with the given ID.
func (s *Service) Feed(id string) (*Feed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.feeds[id]
	return f, ok
}

// Open returns the feed with the given ID, creating it if absent. An
// existing feed's geometry must match meta — a feed's identity is fixed
// at creation.
func (s *Service) Open(id string, meta Meta) (*Feed, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("feed: invalid feed ID %q", id)
	}
	if err := meta.validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("feed: service closed")
	}
	if f, ok := s.feeds[id]; ok {
		if f.meta != meta {
			return nil, fmt.Errorf("feed: %s exists with geometry %gx%g@%g, not %gx%g@%g",
				id, f.meta.Width, f.meta.Height, f.meta.FPS, meta.Width, meta.Height, meta.FPS)
		}
		return f, nil
	}
	f, err := s.createFeed(id, meta)
	if err != nil {
		return nil, err
	}
	s.feeds[id] = f
	feedsOpen.Set(int64(len(s.feeds)))
	return f, nil
}

// Feeds returns a snapshot of every open feed's state, sorted by ID.
func (s *Service) Feeds() []State {
	s.mu.Lock()
	feeds := make([]*Feed, 0, len(s.feeds))
	for _, f := range s.feeds {
		feeds = append(feeds, f)
	}
	s.mu.Unlock()
	states := make([]State, len(feeds))
	for i, f := range feeds {
		states[i] = f.State()
	}
	sort.Slice(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	return states
}

// Engine returns the standing-query engine.
func (s *Service) Engine() *Engine { return s.engine }

// Close detaches the commit hook, stops the engine and closes every
// journal. Pending frames stay journaled and recover on the next Open.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.opts.DB.OnCommitDelta(nil)
	s.engine.Close()
	return s.closeFeeds()
}

func (s *Service) closeFeeds() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.feeds {
		if err := f.close(); err != nil && first == nil {
			first = err
		}
	}
	feedsOpen.Set(0)
	return first
}

// createFeed initializes a fresh journal chain: directory, journal #1,
// checkpoint of a pristine builder.
func (s *Service) createFeed(id string, meta Meta) (*Feed, error) {
	dir := filepath.Join(s.opts.Dir, id)
	if err := s.opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("feed: creating %s: %w", dir, err)
	}
	f := &Feed{svc: s, id: id, meta: meta, b: strg.NewOnlineBuilder(*s.opts.STRG), seq: 1}
	log, err := wal.Create(s.opts.FS, filepath.Join(dir, journalFileName(1)))
	if err != nil {
		return nil, fmt.Errorf("feed: creating journal for %s: %w", id, err)
	}
	head, err := encodeRec(journalRec{Kind: recMeta, Meta: &metaRec{
		ID: id, Meta: meta, Builder: f.b.Checkpoint(),
	}})
	if err != nil {
		log.Close()
		return nil, err
	}
	if err := log.Append(head); err != nil {
		log.Close()
		return nil, fmt.Errorf("feed: writing checkpoint for %s: %w", id, err)
	}
	f.log = log
	return f, nil
}

// recoverFeed rebuilds one feed from its journal chain. Rotation leaves at
// most two journal files; the higher one wins if its checkpoint is
// readable (a higher journal torn before its checkpoint landed is the
// residue of a crash mid-rotation, superseded by the lower). Replay then
// walks the surviving journal: checkpoint, frame batches, and any commit
// intents — each intent resolved against the database, which knows
// whether the commit landed, so it is redone or acknowledged exactly
// once.
func (s *Service) recoverFeed(id string) (*Feed, error) {
	dir := filepath.Join(s.opts.Dir, id)
	entries, err := s.opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("feed: scanning %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseJournalName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return nil, nil // an empty directory: no feed was ever durable here
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })

	for i, seq := range seqs {
		f, err := s.replayJournal(id, dir, seq)
		if err == nil {
			// Winner. Any lower journals are sealed residue of an
			// interrupted rotation — their state is embedded in this
			// journal's checkpoint.
			for _, stale := range seqs[i+1:] {
				if rerr := s.opts.FS.Remove(filepath.Join(dir, journalFileName(stale))); rerr != nil {
					return nil, fmt.Errorf("feed: %s removing stale journal %d: %w", id, stale, rerr)
				}
			}
			return f, nil
		}
		var missing *headlessJournalError
		if !errors.As(err, &missing) {
			return nil, err
		}
		// The journal was created but crashed before its checkpoint
		// landed. A lower journal, if any, is authoritative; with none,
		// the feed's creation itself crashed before anything was
		// acknowledged — it never existed.
		if rerr := s.opts.FS.Remove(filepath.Join(dir, journalFileName(seq))); rerr != nil {
			return nil, fmt.Errorf("feed: %s removing headless journal %d: %w", id, seq, rerr)
		}
	}
	return nil, nil
}

// headlessJournalError marks a journal with no intact checkpoint record —
// recoverable by falling back to the previous journal in the chain.
type headlessJournalError struct{ path string }

func (e *headlessJournalError) Error() string {
	return fmt.Sprintf("feed: %s has no readable checkpoint", e.path)
}

// replayJournal rebuilds a feed from one journal file.
func (s *Service) replayJournal(id, dir string, seq uint64) (*Feed, error) {
	path := filepath.Join(dir, journalFileName(seq))
	f := &Feed{svc: s, id: id, seq: seq}
	intents := 0
	res, err := wal.Scan(s.opts.FS, path, func(off int64, payload []byte) error {
		rec, err := decodeRec(payload)
		if err != nil {
			if off == wal.HeaderSize {
				return &headlessJournalError{path: path}
			}
			return err
		}
		switch rec.Kind {
		case recMeta:
			if off != wal.HeaderSize {
				return fmt.Errorf("feed: %s has a checkpoint mid-journal", path)
			}
			m := rec.Meta
			if m == nil || m.ID != id {
				return fmt.Errorf("feed: %s checkpoint does not describe feed %s", path, id)
			}
			if err := m.Meta.validate(); err != nil {
				return err
			}
			b, err := strg.RestoreOnlineBuilder(*s.opts.STRG, m.Builder)
			if err != nil {
				return fmt.Errorf("feed: %s restoring builder: %w", path, err)
			}
			f.meta, f.epoch, f.next, f.b = m.Meta, m.Epoch, m.NextFrame, b
		case recFrames:
			if f.b == nil {
				return &headlessJournalError{path: path}
			}
			for i := range rec.Frames {
				fr := rec.Frames[i]
				if fr.Index != f.next {
					return fmt.Errorf("feed: %s journal frame %d where %d expected", path, fr.Index, f.next)
				}
				f.b.AddFrame(fr)
				f.pending = append(f.pending, fr)
				f.next++
			}
		case recIntent:
			if f.b == nil {
				return &headlessJournalError{path: path}
			}
			if rec.Epoch != f.epoch {
				return fmt.Errorf("feed: %s intent for epoch %d where %d expected", path, rec.Epoch, f.epoch)
			}
			if err := s.resolveIntent(f); err != nil {
				return err
			}
			intents++
		default:
			return fmt.Errorf("feed: %s has record of unknown kind %d", path, rec.Kind)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if f.b == nil {
		// Empty or torn-before-checkpoint journal.
		return nil, &headlessJournalError{path: path}
	}
	// A torn tail is the residue of a crash mid-append: those frames were
	// never acknowledged, so the client re-sends them. OpenAppend
	// truncates the tear.
	f.log, err = wal.OpenAppend(s.opts.FS, path, res.CommittedSize)
	if err != nil {
		return nil, err
	}
	if intents > 0 {
		// Commits resolved during replay are now checkpointed into a
		// fresh journal, restoring the sealed-chain invariant.
		f.mu.Lock()
		err = f.rotateLocked()
		f.mu.Unlock()
		if err != nil {
			f.log.Close()
			return nil, err
		}
	}
	return f, nil
}

// resolveIntent settles one journaled commit intent: the database's
// per-stream segment count says whether the commit landed before the
// crash. If it did not, the redo ingests the identical segment the
// original would have — frames and name are a pure function of the
// journal — so the database sees exactly one commit either way.
func (s *Service) resolveIntent(f *Feed) error {
	if s.opts.DB.SegmentsIn(f.id) <= f.epoch {
		seg := f.epochSegmentLocked()
		if _, err := s.opts.DB.IngestSegment(f.id, seg); err != nil {
			return fmt.Errorf("feed: %s redoing epoch %d commit: %w", f.id, f.epoch, err)
		}
	}
	f.epoch++
	f.pending = f.pending[:0]
	return nil
}
