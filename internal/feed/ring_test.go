package feed

import "testing"

func TestRingSequenceAndGap(t *testing.T) {
	r := newRing(4)
	if r.lastSeq() != 0 {
		t.Fatalf("fresh ring lastSeq = %d", r.lastSeq())
	}
	for i := 0; i < 10; i++ {
		if seq := r.append(Event{Type: "match", OGID: i}); seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	evs, gapped, missedFrom := r.eventsSince(0)
	if !gapped || missedFrom != 1 {
		t.Errorf("full-history read: gapped=%v missedFrom=%d, want true/1", gapped, missedFrom)
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Errorf("retained window = %+v, want seqs 7..10", evs)
	}
	if r.droppedCount() != 6 {
		t.Errorf("dropped = %d, want 6", r.droppedCount())
	}

	evs, gapped, _ = r.eventsSince(8)
	if gapped || len(evs) != 2 || evs[0].Seq != 9 {
		t.Errorf("in-window resume: gapped=%v evs=%+v", gapped, evs)
	}
	evs, gapped, _ = r.eventsSince(10)
	if gapped || len(evs) != 0 {
		t.Errorf("caught-up resume: gapped=%v evs=%+v", gapped, evs)
	}
	// A cursor from the future clamps to the present instead of
	// replaying events the client claims to have seen.
	evs, gapped, _ = r.eventsSince(99)
	if gapped || len(evs) != 0 {
		t.Errorf("future cursor: gapped=%v evs=%+v", gapped, evs)
	}
}

func TestRingWait(t *testing.T) {
	r := newRing(2)
	ch := r.wait()
	select {
	case <-ch:
		t.Fatal("wait channel closed before any append")
	default:
	}
	r.append(Event{Type: "match"})
	select {
	case <-ch:
	default:
		t.Fatal("wait channel not closed by append")
	}
	// The channel armed before a scan wakes for appends after it.
	ch2 := r.wait()
	if ch2 == ch {
		t.Fatal("wait channel not replaced after append")
	}
}
