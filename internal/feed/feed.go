package feed

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"strgindex/internal/strg"
	"strgindex/internal/video"
	"strgindex/internal/wal"
)

// Feed is one live camera stream: a journal chain for durability, a
// preview OnlineBuilder whose quiescence signal picks epoch boundaries,
// and a buffer of frames pending commit. Commits go through the owning
// database's ordinary IngestSegment path, one segment per epoch, so the
// WAL, replication and snapshot layers see a live feed as a sequence of
// plain ingests — byte-identical to replaying the same epoch slices
// offline.
type Feed struct {
	mu   sync.Mutex
	svc  *Service
	id   string
	meta Meta

	b   *strg.OnlineBuilder
	log *wal.Log
	// seq numbers the current journal file in the chain.
	seq uint64
	// epoch counts committed segments; next is the next expected
	// feed-global frame index.
	epoch int
	next  int
	// pending holds accepted frames not yet committed (the open epoch).
	pending []video.Frame
	closed  bool
}

// AppendResult reports one batch append.
type AppendResult struct {
	// Accepted counts frames journaled by this call; Duplicates counts
	// frames skipped because their index precedes NextFrame (idempotent
	// client retries).
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates"`
	// NextFrame is the next frame index the feed expects — the client's
	// resume cursor after a reconnect.
	NextFrame int `json:"next_frame"`
	// Epoch is the current (uncommitted) epoch; Flushed reports whether
	// this append triggered an epoch commit.
	Epoch   int  `json:"epoch"`
	Flushed bool `json:"flushed"`
}

// ID returns the feed identifier.
func (f *Feed) ID() string { return f.id }

// Meta returns the feed's fixed frame geometry.
func (f *Feed) Meta() Meta { return f.meta }

// State is a point-in-time snapshot of a feed's progress.
type State struct {
	ID        string `json:"id"`
	Meta      Meta   `json:"meta"`
	Epoch     int    `json:"epoch"`
	NextFrame int    `json:"next_frame"`
	Pending   int    `json:"pending_frames"`
	// OpenMoving is the preview builder's quiescence signal: open object
	// chains still in motion. Zero means an epoch boundary is imminent.
	OpenMoving int `json:"open_moving"`
}

// State returns the feed's current progress snapshot.
func (f *Feed) State() State {
	f.mu.Lock()
	defer f.mu.Unlock()
	return State{
		ID: f.id, Meta: f.meta, Epoch: f.epoch, NextFrame: f.next,
		Pending: len(f.pending), OpenMoving: f.b.OpenMoving(),
	}
}

// Append validates and journals a batch of frames. Frames whose index
// precedes the feed's cursor are duplicates (a client retrying after a
// lost ack) and are skipped; a frame beyond the cursor is a gap and
// rejects the whole batch with a *video.FrameOrderError before anything
// is journaled — a batch is all-or-nothing. Accepted frames are durable
// (one fsync) when Append returns. Crossing the epoch-size threshold
// while the preview builder is quiescent — or hitting the hard cap —
// commits the epoch inline.
func (f *Feed) Append(frames []video.Frame) (AppendResult, error) {
	start := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return AppendResult{}, fmt.Errorf("feed: %s is closed", f.id)
	}

	// Pass 1: validate the whole batch against the cursor and geometry.
	// Nothing is journaled until every frame checks out.
	res := AppendResult{NextFrame: f.next, Epoch: f.epoch}
	expect := f.next
	var accepted []video.Frame
	for i := range frames {
		fr := frames[i]
		switch {
		case fr.Index < expect:
			res.Duplicates++
		case fr.Index > expect:
			return AppendResult{}, &video.FrameOrderError{Segment: f.id, Index: fr.Index, Want: expect}
		default:
			if err := fr.Validate(f.meta.Width, f.meta.Height); err != nil {
				return AppendResult{}, fmt.Errorf("feed: %s frame %d: %w", f.id, fr.Index, err)
			}
			accepted = append(accepted, fr)
			expect++
		}
	}
	if len(accepted) == 0 {
		framesDuplicate.Add(int64(res.Duplicates))
		return res, nil
	}

	payload, err := encodeRec(journalRec{Kind: recFrames, Frames: accepted})
	if err != nil {
		return AppendResult{}, err
	}
	if err := f.log.Append(payload); err != nil {
		return AppendResult{}, err
	}
	for i := range accepted {
		f.b.AddFrame(accepted[i]) // preview emissions are discarded
	}
	f.pending = append(f.pending, accepted...)
	f.next = expect
	res.Accepted = len(accepted)
	res.NextFrame = f.next
	framesTotal.Add(int64(res.Accepted))
	framesDuplicate.Add(int64(res.Duplicates))

	if f.shouldFlushLocked() {
		if err := f.flushLocked(); err != nil {
			// The frames are durable; only the epoch commit failed. The
			// client's cursor still advances — a later append or explicit
			// flush retries the commit.
			return res, err
		}
		res.Flushed = true
		res.Epoch = f.epoch
	}
	appendSeconds.Observe(time.Since(start).Seconds())
	return res, nil
}

// shouldFlushLocked decides whether the open epoch commits now: at the
// soft threshold once the preview builder reports every tracked object
// quiescent (a natural cut — no chain is split mid-motion), and
// unconditionally at the hard cap.
func (f *Feed) shouldFlushLocked() bool {
	if len(f.pending) >= f.svc.opts.MaxEpochFrames {
		return true
	}
	return len(f.pending) >= f.svc.opts.MinEpochFrames && f.b.OpenMoving() == 0
}

// Flush commits the open epoch regardless of thresholds. A feed with no
// pending frames flushes to nothing, successfully.
func (f *Feed) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("feed: %s is closed", f.id)
	}
	if len(f.pending) == 0 {
		return nil
	}
	return f.flushLocked()
}

// flushLocked commits the open epoch through the database write path and
// rotates the journal. The crash windows:
//
//  1. intent appended, commit not reached — recovery sees the intent,
//     asks the database (SegmentsIn ≤ epoch) and redoes the commit.
//  2. commit landed, next journal not created — recovery sees the intent,
//     SegmentsIn > epoch says it landed, skips the redo.
//  3. next journal created, old not removed — recovery picks the higher
//     journal and removes the lower.
//
// Every redo ingests the identical segment (same frames, same name), so
// the database sees exactly one commit per epoch.
func (f *Feed) flushLocked() error {
	intent, err := encodeRec(journalRec{Kind: recIntent, Epoch: f.epoch})
	if err != nil {
		return err
	}
	preIntent := f.log.Size()
	if err := f.log.Append(intent); err != nil {
		return err
	}

	seg := f.epochSegmentLocked()
	if _, err := f.svc.opts.DB.IngestSegment(f.id, seg); err != nil {
		// The epoch is intact in memory and in the journal; withdraw the
		// intent so recovery does not redo a commit that never happened
		// with frames that may grow before the retry.
		if terr := f.log.TruncateTo(preIntent); terr != nil {
			return fmt.Errorf("feed: %s epoch %d commit failed (%v) and intent rollback failed: %w", f.id, f.epoch, err, terr)
		}
		return fmt.Errorf("feed: %s committing epoch %d: %w", f.id, f.epoch, err)
	}

	f.epoch++
	f.pending = f.pending[:0]
	flushesTotal.Inc()
	return f.rotateLocked()
}

// epochSegmentLocked builds the segment the open epoch commits as: the
// pending frames renumbered from zero under the epoch's name. Renumbering
// makes each epoch a self-contained segment — Validate-clean and
// byte-identical to an offline ingest of the same slice.
func (f *Feed) epochSegmentLocked() *video.Segment {
	frames := make([]video.Frame, len(f.pending))
	copy(frames, f.pending)
	for i := range frames {
		frames[i].Index = i
	}
	return &video.Segment{
		Name:   fmt.Sprintf("%s/%06d", f.id, f.epoch),
		Width:  f.meta.Width,
		Height: f.meta.Height,
		FPS:    f.meta.FPS,
		Frames: frames,
	}
}

// rotateLocked seals the journal chain after a commit: create journal
// seq+1 headed by a fresh checkpoint, then remove journal seq. A crash
// between the two leaves both files; recovery keeps the higher.
func (f *Feed) rotateLocked() error {
	dir := filepath.Join(f.svc.opts.Dir, f.id)
	nextPath := filepath.Join(dir, journalFileName(f.seq+1))
	nl, err := wal.Create(f.svc.opts.FS, nextPath)
	if err != nil {
		return fmt.Errorf("feed: %s rotating journal: %w", f.id, err)
	}
	meta, err := encodeRec(journalRec{Kind: recMeta, Meta: &metaRec{
		ID: f.id, Meta: f.meta, Epoch: f.epoch, NextFrame: f.next,
		Builder: f.b.Checkpoint(),
	}})
	if err != nil {
		nl.Close()
		return err
	}
	if err := nl.Append(meta); err != nil {
		nl.Close()
		return fmt.Errorf("feed: %s writing checkpoint: %w", f.id, err)
	}
	old := f.log
	f.log = nl
	f.seq++
	old.Close()
	if err := f.svc.opts.FS.Remove(filepath.Join(dir, journalFileName(f.seq-1))); err != nil {
		return fmt.Errorf("feed: %s removing sealed journal: %w", f.id, err)
	}
	return f.svc.opts.FS.SyncDir(dir)
}

// close releases the journal handle. Pending frames stay journaled and
// recover on the next open.
func (f *Feed) close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	return f.log.Close()
}
