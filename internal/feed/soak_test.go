package feed

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

// feedSoakDuration returns how long the storm runs: STRG_SOAK_MS in the
// environment overrides the short default (`make chaos-feed` stretches
// it).
func feedSoakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("STRG_SOAK_MS"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			t.Fatalf("bad STRG_SOAK_MS=%q", v)
		}
		return time.Duration(ms) * time.Millisecond
	}
	return 1500 * time.Millisecond
}

// TestFeedSoak storms one service with concurrent feed writers,
// subscription churn and event readers, under the invariants the live
// layer promises: per-subscription sequence numbers are dense and
// monotone (the ring is sized so nothing drops), a feed's committed
// epochs are immediately visible in the database (read-your-writes), and
// the engine drains to agreement with a one-shot query at the end. Run
// with -race (make chaos-feed) to make the memory model part of the
// assertion.
func TestFeedSoak(t *testing.T) {
	frames, meta := feedFrames(t, 8, 17)
	cfg := shardConfig(2)
	db := core.OpenShared(cfg)
	svc, err := Open(Options{
		Dir: t.TempDir(), DB: db, STRG: &cfg.STRG,
		MinEpochFrames: 10, MaxEpochFrames: 32,
		ReconcileEvery: 4, RingSize: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := svc.Engine()

	stop := make(chan struct{})
	time.AfterFunc(feedSoakDuration(t), func() { close(stop) })
	var wg sync.WaitGroup

	// Feed writers: each owns one feed and streams the frame corpus
	// cyclically, re-indexing so the feed never ends. After every flush
	// the writer asserts read-your-writes: the committed epoch count is
	// already visible through the database, not eventually.
	for w := 0; w < 2; w++ {
		id := fmt.Sprintf("cam-%d", w)
		f, err := svc.Open(id, meta)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			const batch = 5
			next := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf := make([]video.Frame, batch)
				for i := range buf {
					buf[i] = frames[(next+i)%len(frames)]
					buf[i].Index = next + i
				}
				res, err := f.Append(buf)
				if err != nil {
					t.Errorf("%s append at %d: %v", id, next, err)
					return
				}
				next = res.NextFrame
				if res.Flushed {
					if got, want := db.SegmentsIn(id), f.State().Epoch; got != want {
						t.Errorf("%s: committed epoch not readable: SegmentsIn=%d epoch=%d", id, got, want)
						return
					}
				}
			}
		}()
	}

	// Long-lived subscribers: one per query shape, each polling with a
	// cursor and asserting dense monotone sequence numbers.
	queries := []*query.Query{
		{Where: query.LengthNode{Min: 1}},
		{Similar: &query.SimilarClause{Trajectory: testTrajectory(), K: 3}},
		{Similar: &query.SimilarClause{Trajectory: testTrajectory(), Radius: 1e9}},
	}
	for qi, q := range queries {
		sub, err := eng.Register(q)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			for {
				wake := sub.Wait() // armed before the scan: no missed wakeups
				evs, gapped, _ := sub.EventsSince(cursor)
				if gapped {
					t.Errorf("subscriber %d: gap despite an oversized ring", qi)
					return
				}
				for _, ev := range evs {
					if ev.Seq != cursor+1 {
						t.Errorf("subscriber %d: seq %d after %d", qi, ev.Seq, cursor)
						return
					}
					cursor = ev.Seq
				}
				select {
				case <-stop:
					return
				case <-wake:
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}

	// Subscription churn: register/deliver/unregister in a loop while
	// commits race past.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sub, err := eng.Register(&query.Query{
				Similar: &query.SimilarClause{Trajectory: testTrajectory(), K: 2},
			})
			if err != nil {
				t.Errorf("churn register: %v", err)
				return
			}
			evs, gapped, _ := sub.EventsSince(0)
			if gapped {
				t.Error("churn: fresh subscription gapped")
				return
			}
			for i, ev := range evs {
				if ev.Seq != uint64(i+1) {
					t.Errorf("churn: seed seq %d at position %d", ev.Seq, i)
					return
				}
			}
			if !eng.Unregister(sub.ID()) {
				t.Error("churn: unregister failed")
				return
			}
		}
	}()

	wg.Wait()
	eng.Quiesce()

	// Drained, the k-NN subscription's event ledger must equal a one-shot
	// query of the final database.
	knnSub, err := eng.Register(&query.Query{
		Similar: &query.SimilarClause{Trajectory: testTrajectory(), K: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, _, _ := knnSub.EventsSince(0)
	if !equalMembership(applyMembership(t, evs), knnGroundTruth(t, db, testTrajectory(), 3)) {
		t.Error("post-storm k-NN seed diverges from one-shot query")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
