package feed

import "strgindex/internal/obs"

// Live-feed and standing-query instrumentation, registered against the
// process-global registry and exposed by the HTTP server at GET /metrics.
//
//	strg_feed_open                       live feeds currently open
//	strg_feed_frames_total               frames accepted across all feeds
//	strg_feed_duplicate_frames_total     idempotent retry frames skipped
//	strg_feed_flushes_total              epochs committed to the database
//	strg_feed_append_seconds             journal fsync + preview time per batch
//	strg_feed_subscriptions              standing queries currently registered
//	strg_feed_events_total               events appended to subscriber rings
//	strg_feed_events_dropped_total       ring evictions (slow consumers)
//	strg_feed_delta_queue                work items waiting for the dispatcher
//	strg_feed_reconciles_total           periodic full k-NN re-evaluations
//	strg_feed_reconcile_diffs_total      corrections those re-evaluations found
var (
	feedsOpen = obs.Default.Gauge("strg_feed_open",
		"live feeds currently open", nil)
	framesTotal = obs.Default.Counter("strg_feed_frames_total",
		"frames accepted across all live feeds", nil)
	framesDuplicate = obs.Default.Counter("strg_feed_duplicate_frames_total",
		"duplicate frames skipped (idempotent client retries)", nil)
	flushesTotal = obs.Default.Counter("strg_feed_flushes_total",
		"feed epochs committed to the database", nil)
	appendSeconds = obs.Default.Histogram("strg_feed_append_seconds",
		"journal append + preview time of one frame batch in seconds", nil, nil)
	subsActive = obs.Default.Gauge("strg_feed_subscriptions",
		"standing queries currently registered", nil)
	eventsTotal = obs.Default.Counter("strg_feed_events_total",
		"standing-query events appended to subscriber rings", nil)
	eventsDropped = obs.Default.Counter("strg_feed_events_dropped_total",
		"events evicted from subscriber rings before delivery (slow consumers)", nil)
	deltaQueue = obs.Default.Gauge("strg_feed_delta_queue",
		"commit deltas and registrations waiting for the dispatcher", nil)
	reconcilesTotal = obs.Default.Counter("strg_feed_reconciles_total",
		"periodic full re-evaluations of standing k-NN queries", nil)
	reconcileDiffs = obs.Default.Counter("strg_feed_reconcile_diffs_total",
		"membership corrections found by periodic k-NN re-evaluation", nil)
)
