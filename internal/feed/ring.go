package feed

import "sync"

// Event is one standing-query notification. Seq numbers are per
// subscription, dense and monotone from 1 — the delivery order proof a
// subscriber checks, and the resume cursor SSE's Last-Event-ID carries.
type Event struct {
	Seq uint64 `json:"seq"`
	// Type is "match" (predicate or range subscription), or "enter"/"leave"
	// (k-NN result-set membership change). The initial k-NN result set at
	// registration arrives as "enter" events.
	Type   string `json:"type"`
	OGID   int    `json:"og_id"`
	Stream string `json:"stream"`
	Clip   string `json:"clip"`
	Label  string `json:"label,omitempty"`
	// Distance is set for range and k-NN subscriptions.
	Distance float64 `json:"distance,omitempty"`
}

// ring is a bounded drop-oldest event buffer. Appends never block — a
// stalled consumer loses the oldest undelivered events (counted, and
// surfaced to it as an SSE gap event), never the feed's ingest latency.
type ring struct {
	mu  sync.Mutex
	buf []Event
	// start indexes the oldest retained event; n counts retained.
	start, n int
	// next is the sequence number the next append assigns (first is 1).
	next    uint64
	dropped int64
	// notify is closed and replaced on every append; readers arm it before
	// scanning so no append can slip between scan and wait.
	notify chan struct{}
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &ring{buf: make([]Event, capacity), next: 1, notify: make(chan struct{})}
}

// append stamps the event's sequence number, stores it (evicting the
// oldest if full) and wakes waiting readers.
func (r *ring) append(ev Event) uint64 {
	r.mu.Lock()
	ev.Seq = r.next
	r.next++
	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.n--
		r.dropped++
		eventsDropped.Inc()
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
	eventsTotal.Inc()
	return ev.Seq
}

// eventsSince returns the retained events with Seq > after in order. When
// the ring has already evicted events the cursor missed, gapped is true and
// missedFrom is the first lost sequence number — the reader owes its
// consumer an explicit gap notice before the returned events.
func (r *ring) eventsSince(after uint64) (evs []Event, gapped bool, missedFrom uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if after >= r.next {
		// A cursor from the future (stale ring, client bug): clamp to the
		// present rather than replaying history it claims to have seen.
		after = r.next - 1
	}
	lowest := r.next - uint64(r.n) // oldest retained (r.next when empty)
	if after+1 < lowest {
		gapped = true
		missedFrom = after + 1
		after = lowest - 1
	}
	for i := 0; i < r.n; i++ {
		ev := r.buf[(r.start+i)%len(r.buf)]
		if ev.Seq > after {
			evs = append(evs, ev)
		}
	}
	return evs, gapped, missedFrom
}

// wait returns a channel closed by the next append.
func (r *ring) wait() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notify
}

// lastSeq returns the most recently assigned sequence number (0 if none).
func (r *ring) lastSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - 1
}

// droppedCount returns how many events this ring has evicted undelivered.
func (r *ring) droppedCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
