package feed

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/query"
	"strgindex/internal/strg"
)

// Engine evaluates standing queries incrementally. It attaches to the
// database's commit-delta hook: every index version swap hands it exactly
// the OGs that commit added, and a single dispatcher goroutine evaluates
// each subscription against only that delta — no rescans. The hook runs
// under the database's write lock, so it only enqueues; all evaluation
// (which takes database read locks for seeding and reconciliation)
// happens on the dispatcher, which never holds the queue lock while
// touching the database. Exactly-once delivery rests on OGIDs: they are
// dense and monotone in commit order, so a per-subscription watermark —
// set from the database's OG count at registration, when the
// registration's queue position guarantees every queued delta's OGs are
// already visible to the seeding query — cleanly splits "seen by the
// seed" from "owed by deltas".
type Engine struct {
	db             *core.SharedDB
	metric         dist.Metric
	reconcileEvery int
	ringSize       int

	qmu     sync.Mutex
	cond    *sync.Cond
	queue   []any // core.CommitDelta | *regOp, in arrival order
	pending int   // queued plus in-flight work items
	closed  bool
	done    chan struct{}

	smu    sync.Mutex
	subs   map[string]*Subscription
	nextID int
}

// Subscription is one registered standing query.
type Subscription struct {
	id      string
	q       *query.Query
	matcher *query.Matcher
	ring    *ring
	closed  chan struct{}
	once    sync.Once

	// Dispatcher-owned evaluation state.
	seeded    bool
	watermark int // highest OGID covered by seed or reconcile
	topk      []topEntry
	member    map[int]bool
	sinceRec  int
}

// topEntry is one member of a k-NN subscription's current result set,
// kept sorted by (distance, OGID) — the deterministic ranking order.
type topEntry struct {
	ogID int
	dist float64
	rec  core.ClipRecord
}

// SubInfo is a subscription's public summary.
type SubInfo struct {
	ID      string  `json:"id"`
	Kind    string  `json:"kind"` // "predicate", "range" or "knn"
	K       int     `json:"k,omitempty"`
	Radius  float64 `json:"radius,omitempty"`
	LastSeq uint64  `json:"last_seq"`
	Dropped int64   `json:"dropped"`
}

type regOp struct {
	sub  *Subscription
	done chan error
}

func newEngine(db *core.SharedDB, metric dist.Metric, reconcileEvery, ringSize int) *Engine {
	e := &Engine{
		db: db, metric: metric, reconcileEvery: reconcileEvery, ringSize: ringSize,
		done: make(chan struct{}), subs: make(map[string]*Subscription),
	}
	e.cond = sync.NewCond(&e.qmu)
	go e.run()
	return e
}

// enqueueDelta is the database commit hook. It runs under the database
// write lock and must only enqueue.
func (e *Engine) enqueueDelta(d core.CommitDelta) {
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		return
	}
	e.queue = append(e.queue, d)
	e.pending++
	deltaQueue.Set(int64(e.pending))
	e.cond.Broadcast()
	e.qmu.Unlock()
}

// Register compiles q as a standing query and returns the live
// subscription. A k-NN subscription's initial result set is delivered as
// "enter" events (sequence numbers start at 1); predicate and range
// subscriptions are forward-only — they match OGs committed after
// registration, never history.
func (e *Engine) Register(q *query.Query) (*Subscription, error) {
	m, err := query.NewMatcher(q, e.metric)
	if err != nil {
		return nil, err
	}
	qc := *q
	if q.Similar != nil {
		c := *q.Similar
		c.Trajectory = append(dist.Sequence(nil), q.Similar.Trajectory...)
		qc.Similar = &c
	}
	sub := &Subscription{
		q: &qc, matcher: m, ring: newRing(e.ringSize),
		closed: make(chan struct{}), member: make(map[int]bool),
	}
	e.smu.Lock()
	e.nextID++
	sub.id = fmt.Sprintf("sub-%06d", e.nextID)
	e.smu.Unlock()

	op := &regOp{sub: sub, done: make(chan error, 1)}
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		return nil, errors.New("feed: engine closed")
	}
	// In the map before the op so Unregister works immediately; the
	// dispatcher skips unseeded subscriptions until the op runs.
	e.smu.Lock()
	e.subs[sub.id] = sub
	e.smu.Unlock()
	e.queue = append(e.queue, op)
	e.pending++
	deltaQueue.Set(int64(e.pending))
	e.cond.Broadcast()
	e.qmu.Unlock()

	if err := <-op.done; err != nil {
		e.Unregister(sub.id)
		return nil, err
	}
	subsActive.Set(int64(e.subCount()))
	return sub, nil
}

// Unregister removes a subscription and closes its event stream.
func (e *Engine) Unregister(id string) bool {
	e.smu.Lock()
	sub, ok := e.subs[id]
	if ok {
		delete(e.subs, id)
	}
	e.smu.Unlock()
	if !ok {
		return false
	}
	sub.once.Do(func() { close(sub.closed) })
	subsActive.Set(int64(e.subCount()))
	return true
}

// Get returns the subscription with the given ID.
func (e *Engine) Get(id string) (*Subscription, bool) {
	e.smu.Lock()
	defer e.smu.Unlock()
	sub, ok := e.subs[id]
	return sub, ok
}

// Subs returns every live subscription's summary, sorted by ID.
func (e *Engine) Subs() []SubInfo {
	e.smu.Lock()
	subs := make([]*Subscription, 0, len(e.subs))
	for _, sub := range e.subs {
		subs = append(subs, sub)
	}
	e.smu.Unlock()
	infos := make([]SubInfo, len(subs))
	for i, sub := range subs {
		infos[i] = sub.Info()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

func (e *Engine) subCount() int {
	e.smu.Lock()
	defer e.smu.Unlock()
	return len(e.subs)
}

// Quiesce blocks until every enqueued delta and registration has been
// fully evaluated — after it returns, events for every commit that
// preceded the call have been appended to their rings (read-your-writes
// for tests and graceful shutdown).
func (e *Engine) Quiesce() {
	e.qmu.Lock()
	for e.pending > 0 && !e.closed {
		e.cond.Wait()
	}
	e.qmu.Unlock()
}

// Close drains the queue, stops the dispatcher and closes every
// subscription's event stream.
func (e *Engine) Close() {
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.qmu.Unlock()
	<-e.done
	e.smu.Lock()
	subs := make([]*Subscription, 0, len(e.subs))
	for _, sub := range e.subs {
		subs = append(subs, sub)
	}
	e.smu.Unlock()
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.closed) })
	}
}

func (e *Engine) run() {
	for {
		e.qmu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 && e.closed {
			e.qmu.Unlock()
			close(e.done)
			return
		}
		item := e.queue[0]
		e.queue[0] = nil
		e.queue = e.queue[1:]
		e.qmu.Unlock()

		switch v := item.(type) {
		case core.CommitDelta:
			e.applyDelta(v)
		case *regOp:
			v.done <- e.seed(v.sub)
		}

		e.qmu.Lock()
		e.pending--
		deltaQueue.Set(int64(e.pending))
		e.cond.Broadcast()
		e.qmu.Unlock()
	}
}

// seed runs on the dispatcher at a subscription's queue position: every
// delta already enqueued was committed before this moment (the hook fires
// after the commit lands), so the database's OG count here is a valid
// watermark — the seeding query sees everything at or below it, deltas
// deliver everything above it, and nothing is delivered twice.
func (e *Engine) seed(sub *Subscription) error {
	sub.watermark = e.db.Stats().OGs - 1
	if k := sub.matcher.K(); k > 0 {
		matches, err := e.standingQuery(sub)
		if err != nil {
			return err
		}
		for _, m := range matches {
			sub.topk = append(sub.topk, topEntry{m.Record.OGID, m.Distance, m.Record})
			sub.member[m.Record.OGID] = true
		}
		sortTopk(sub.topk)
		for _, t := range sub.topk {
			sub.ring.append(matchEvent("enter", t.rec, t.dist))
		}
	}
	sub.seeded = true
	return nil
}

// standingQuery runs the subscription's full k-NN query against the
// current index — the seed, and the periodic reconciliation ground truth.
func (e *Engine) standingQuery(sub *Subscription) ([]core.Match, error) {
	sq := &query.Query{Where: sub.q.Where, Similar: &query.SimilarClause{
		Trajectory: sub.q.Similar.Trajectory,
		K:          sub.q.Similar.K,
		// The exact all-cluster search; composed (filtered) ranking is
		// always exact already.
		Exact: sub.q.Where == nil,
	}}
	res, err := e.db.QueryComposedCtx(context.Background(), sq)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// applyDelta evaluates one commit's OGs against every seeded
// subscription.
func (e *Engine) applyDelta(d core.CommitDelta) {
	e.smu.Lock()
	subs := make([]*Subscription, 0, len(e.subs))
	for _, sub := range e.subs {
		subs = append(subs, sub)
	}
	e.smu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })

	for _, sub := range subs {
		if !sub.seeded {
			continue
		}
		for i, rec := range d.Records {
			if rec.OGID <= sub.watermark {
				continue // already covered by seed or reconcile
			}
			e.evaluate(sub, rec, d.OGs[i])
		}
		if sub.matcher.K() > 0 {
			sub.sinceRec++
			if sub.sinceRec >= e.reconcileEvery {
				sub.sinceRec = 0
				e.reconcile(sub)
			}
		}
	}
}

// evaluate applies one new OG to one subscription.
func (e *Engine) evaluate(sub *Subscription, rec core.ClipRecord, og *strg.OG) {
	if !sub.matcher.Match(og) {
		return
	}
	switch {
	case sub.matcher.K() > 0:
		if sub.member[rec.OGID] {
			return
		}
		d := sub.matcher.Distance(og)
		k := sub.matcher.K()
		cand := topEntry{rec.OGID, d, rec}
		if len(sub.topk) >= k && !lessTop(cand, sub.topk[len(sub.topk)-1]) {
			return // not close enough to enter the result set
		}
		sub.topk = append(sub.topk, cand)
		sortTopk(sub.topk)
		sub.member[rec.OGID] = true
		if len(sub.topk) > k {
			evicted := sub.topk[len(sub.topk)-1]
			sub.topk = sub.topk[:len(sub.topk)-1]
			delete(sub.member, evicted.ogID)
			sub.ring.append(matchEvent("leave", evicted.rec, evicted.dist))
		}
		sub.ring.append(matchEvent("enter", rec, d))
	case sub.matcher.Radius() > 0:
		if d := sub.matcher.Distance(og); d <= sub.matcher.Radius() {
			sub.ring.append(matchEvent("match", rec, d))
		}
	default:
		sub.ring.append(matchEvent("match", rec, 0))
	}
}

// reconcile re-runs a k-NN subscription's full query and reconciles the
// incrementally maintained result set against it. Incremental maintenance
// is conservative — it only ever inserts new OGs — so after an eviction
// the set can hold a slightly-too-far member that a full query would
// replace; reconciliation emits the corrective enter/leave pairs. The
// watermark advances to the database's current OG count, which the fresh
// query covers, so deltas still queued behind this one skip what the
// query already delivered: exactly-once is preserved across the re-seed.
func (e *Engine) reconcile(sub *Subscription) {
	reconcilesTotal.Inc()
	wm := e.db.Stats().OGs - 1
	matches, err := e.standingQuery(sub)
	if err != nil {
		return // transient; the next reconcile retries
	}
	fresh := make([]topEntry, 0, len(matches))
	freshMember := make(map[int]bool, len(matches))
	for _, m := range matches {
		fresh = append(fresh, topEntry{m.Record.OGID, m.Distance, m.Record})
		freshMember[m.Record.OGID] = true
	}
	sortTopk(fresh)

	diffs := 0
	for _, t := range sub.topk {
		if !freshMember[t.ogID] {
			diffs++
			sub.ring.append(matchEvent("leave", t.rec, t.dist))
		}
	}
	for _, t := range fresh {
		if !sub.member[t.ogID] {
			diffs++
			sub.ring.append(matchEvent("enter", t.rec, t.dist))
		}
	}
	reconcileDiffs.Add(int64(diffs))
	sub.topk, sub.member = fresh, freshMember
	if wm > sub.watermark {
		sub.watermark = wm
	}
}

func matchEvent(typ string, rec core.ClipRecord, d float64) Event {
	return Event{
		Type: typ, OGID: rec.OGID, Stream: rec.Stream,
		Clip: rec.Clip.String(), Label: rec.Label, Distance: d,
	}
}

func sortTopk(t []topEntry) {
	sort.Slice(t, func(i, j int) bool { return lessTop(t[i], t[j]) })
}

// lessTop is the result-set order: nearest first, OGID breaking ties —
// deterministic across runs and shard counts.
func lessTop(a, b topEntry) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.ogID < b.ogID
}

// ID returns the subscription identifier.
func (s *Subscription) ID() string { return s.id }

// EventsSince returns buffered events after the given sequence number;
// see ring.eventsSince for the gap contract.
func (s *Subscription) EventsSince(after uint64) ([]Event, bool, uint64) {
	return s.ring.eventsSince(after)
}

// Wait returns a channel closed when the next event arrives.
func (s *Subscription) Wait() <-chan struct{} { return s.ring.wait() }

// Done returns a channel closed when the subscription is unregistered.
func (s *Subscription) Done() <-chan struct{} { return s.closed }

// LastSeq returns the most recent event sequence number (0 if none).
func (s *Subscription) LastSeq() uint64 { return s.ring.lastSeq() }

// Dropped returns how many events were evicted before delivery.
func (s *Subscription) Dropped() int64 { return s.ring.droppedCount() }

// Info returns the subscription's public summary.
func (s *Subscription) Info() SubInfo {
	info := SubInfo{ID: s.id, Kind: "predicate",
		LastSeq: s.ring.lastSeq(), Dropped: s.ring.droppedCount()}
	switch {
	case s.matcher.K() > 0:
		info.Kind, info.K = "knn", s.matcher.K()
	case s.matcher.Radius() > 0:
		info.Kind, info.Radius = "range", s.matcher.Radius()
	}
	return info
}
