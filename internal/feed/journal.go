package feed

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"regexp"

	"strgindex/internal/strg"
	"strgindex/internal/video"
)

// The feed journal is a chain of sequence-numbered write-ahead files, one
// directory per feed:
//
//	<dir>/<feed-id>/journal-00000001.log
//
// Each file begins with a meta record — the feed's identity plus a full
// checkpoint of its state at the epoch boundary the file starts at — and
// then accumulates one frames record per accepted batch (one fsync per
// HTTP request). An epoch flush appends an intent record, commits the
// epoch's segment through the database write path, seals the chain by
// creating the next journal (whose meta checkpoint embeds the post-flush
// state) and removes the old file. Recovery reads the highest journal with
// a readable meta record and replays it; an intent with no following
// journal is resolved against core.SegmentsIn — the database says whether
// the commit landed, so the flush is redone or acknowledged but never
// doubled.
const (
	journalNameFmt = "journal-%08d.log"

	recMeta   = int8(1)
	recFrames = int8(2)
	recIntent = int8(3)
)

func journalFileName(seq uint64) string { return fmt.Sprintf(journalNameFmt, seq) }

// parseJournalName extracts the sequence from a journal file name,
// reporting whether the name is one.
func parseJournalName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, journalNameFmt, &seq); n == 1 && err == nil && name == journalFileName(seq) {
		return seq, true
	}
	return 0, false
}

// feedIDPattern is the set of feed IDs accepted: they name directories and
// appear in URLs, so they stay conservative.
var feedIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// ValidID reports whether id is an acceptable feed identifier.
func ValidID(id string) bool { return feedIDPattern.MatchString(id) }

// Meta is a feed's fixed identity: the frame geometry every batch is
// validated against and every committed segment carries.
type Meta struct {
	Width  float64 `json:"width"`
	Height float64 `json:"height"`
	FPS    float64 `json:"fps"`
}

func (m Meta) validate() error {
	if m.Width <= 0 || m.Height <= 0 {
		return fmt.Errorf("feed: non-positive frame dimensions %gx%g", m.Width, m.Height)
	}
	if m.FPS <= 0 {
		return fmt.Errorf("feed: non-positive FPS %g", m.FPS)
	}
	return nil
}

// metaRec is the checkpoint heading every journal file: everything needed
// to resume the feed exactly at the epoch boundary the file starts at.
type metaRec struct {
	ID   string
	Meta Meta
	// Epoch is the next epoch to commit; NextFrame the next expected
	// feed-global frame index.
	Epoch     int
	NextFrame int
	// Builder is the preview builder's checkpoint (see strg.BuilderState);
	// frames records replayed on top of it reproduce the live state.
	Builder *strg.BuilderState
}

// journalRec is the single gob-framed record shape; Kind selects which
// fields are meaningful.
type journalRec struct {
	Kind   int8
	Meta   *metaRec      // recMeta
	Frames []video.Frame // recFrames
	Epoch  int           // recIntent: the epoch about to commit
}

func encodeRec(rec journalRec) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return nil, fmt.Errorf("feed: encoding journal record: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRec(payload []byte) (journalRec, error) {
	var rec journalRec
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("feed: decoding journal record: %w", err)
	}
	return rec, nil
}
