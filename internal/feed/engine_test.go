package feed

import (
	"context"
	"testing"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

// engineHarness is a database + service pair plus the stream segments the
// tests ingest on demand. Standing queries observe every ingest path, not
// only feeds, so these tests drive IngestSegment directly.
type engineHarness struct {
	db   *core.SharedDB
	svc  *Service
	segs []*video.Segment
}

func newEngineHarness(t *testing.T, reconcileEvery int) *engineHarness {
	t.Helper()
	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: 8, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	stream, err := video.GenerateStream(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Segments) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(stream.Segments))
	}
	cfg := shardConfig(2)
	db := core.OpenShared(cfg)
	svc, err := Open(Options{
		Dir: t.TempDir(), DB: db, STRG: &cfg.STRG, ReconcileEvery: reconcileEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return &engineHarness{db: db, svc: svc, segs: stream.Segments}
}

func (h *engineHarness) ingest(t *testing.T, i int) {
	t.Helper()
	if _, err := h.db.IngestSegment("Mini", h.segs[i]); err != nil {
		t.Fatal(err)
	}
}

// drain reads every buffered event, asserting dense monotone sequence
// numbers from the cursor.
func drain(t *testing.T, sub *Subscription, after uint64) []Event {
	t.Helper()
	evs, gapped, _ := sub.EventsSince(after)
	if gapped {
		t.Fatalf("unexpected gap reading from %d", after)
	}
	for i, ev := range evs {
		if ev.Seq != after+uint64(i)+1 {
			t.Fatalf("event %d has seq %d, want dense from %d: %+v", i, ev.Seq, after+1, evs)
		}
	}
	return evs
}

func testTrajectory() dist.Sequence {
	return dist.Sequence{{20, 120}, {100, 120}, {180, 120}, {280, 120}}
}

func TestEnginePredicateForwardOnly(t *testing.T) {
	h := newEngineHarness(t, 0)
	eng := h.svc.Engine()
	h.ingest(t, 0)
	eng.Quiesce()
	before := h.db.Stats().OGs

	sub, err := eng.Register(&query.Query{Where: query.LengthNode{Min: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.LastSeq() != 0 {
		t.Errorf("predicate subscription delivered %d historical events; it is forward-only", sub.LastSeq())
	}
	h.ingest(t, 1)
	eng.Quiesce()
	added := h.db.Stats().OGs - before
	evs := drain(t, sub, 0)
	if len(evs) != added {
		t.Fatalf("got %d match events for %d new OGs", len(evs), added)
	}
	for _, ev := range evs {
		if ev.Type != "match" {
			t.Errorf("predicate event type %q", ev.Type)
		}
		if ev.OGID < before {
			t.Errorf("event for OG %d, which predates registration (watermark %d)", ev.OGID, before-1)
		}
		if ev.Stream != "Mini" || ev.Clip == "" {
			t.Errorf("event missing provenance: %+v", ev)
		}
	}
	if !eng.Unregister(sub.ID()) {
		t.Error("Unregister returned false for a live subscription")
	}
	select {
	case <-sub.Done():
	default:
		t.Error("Done channel open after Unregister")
	}
	if eng.Unregister(sub.ID()) {
		t.Error("second Unregister returned true")
	}
}

// knnGroundTruth runs the subscription's query one-shot against the
// current database — the membership the engine must converge to.
func knnGroundTruth(t *testing.T, db *core.SharedDB, traj dist.Sequence, k int) map[int]float64 {
	t.Helper()
	res, err := db.QueryComposedCtx(context.Background(), &query.Query{
		Similar: &query.SimilarClause{Trajectory: traj, K: k, Exact: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]float64, len(res.Matches))
	for _, m := range res.Matches {
		want[m.Record.OGID] = m.Distance
	}
	return want
}

// applyMembership folds enter/leave events into the implied result set.
func applyMembership(t *testing.T, evs []Event) map[int]float64 {
	t.Helper()
	got := make(map[int]float64)
	for _, ev := range evs {
		switch ev.Type {
		case "enter":
			if _, ok := got[ev.OGID]; ok {
				t.Fatalf("OG %d entered twice without leaving", ev.OGID)
			}
			got[ev.OGID] = ev.Distance
		case "leave":
			if _, ok := got[ev.OGID]; !ok {
				t.Fatalf("OG %d left without entering", ev.OGID)
			}
			delete(got, ev.OGID)
		default:
			t.Fatalf("k-NN subscription got %q event", ev.Type)
		}
	}
	return got
}

func equalMembership(a, b map[int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for id, d := range a {
		if bd, ok := b[id]; !ok || bd != d {
			return false
		}
	}
	return true
}

func TestEngineKNNSeedAndLive(t *testing.T) {
	for _, reconcileEvery := range []int{0, 1} { // 0 = default cadence; 1 = reconcile after every delta
		h := newEngineHarness(t, reconcileEvery)
		eng := h.svc.Engine()
		traj := testTrajectory()
		const k = 3
		h.ingest(t, 0)
		h.ingest(t, 1)
		eng.Quiesce()

		sub, err := eng.Register(&query.Query{
			Similar: &query.SimilarClause{Trajectory: traj, K: k},
		})
		if err != nil {
			t.Fatal(err)
		}
		seed := drain(t, sub, 0)
		if !equalMembership(applyMembership(t, seed), knnGroundTruth(t, h.db, traj, k)) {
			t.Fatalf("reconcile=%d: seed membership diverges from one-shot query", reconcileEvery)
		}
		for i, ev := range seed {
			if ev.Type != "enter" {
				t.Fatalf("seed event %d is %q, want enter", i, ev.Type)
			}
			if i > 0 && lessTop(topEntry{ev.OGID, ev.Distance, core.ClipRecord{}},
				topEntry{seed[i-1].OGID, seed[i-1].Distance, core.ClipRecord{}}) {
				t.Fatalf("seed events out of (distance, OGID) order: %+v", seed)
			}
		}

		h.ingest(t, 2)
		eng.Quiesce()
		all := drain(t, sub, 0)
		if !equalMembership(applyMembership(t, all), knnGroundTruth(t, h.db, traj, k)) {
			t.Fatalf("reconcile=%d: live membership diverges from one-shot query", reconcileEvery)
		}
	}
}

func TestEngineReconcileFindsNoPhantomDiffs(t *testing.T) {
	// Incremental top-K maintenance sees every OG exactly once, so a
	// serial run's reconciliation must agree with it: no corrective
	// events beyond what the deltas already delivered.
	h := newEngineHarness(t, 1)
	eng := h.svc.Engine()
	sub, err := eng.Register(&query.Query{
		Similar: &query.SimilarClause{Trajectory: testTrajectory(), K: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.segs {
		h.ingest(t, i)
	}
	eng.Quiesce()
	evs := drain(t, sub, 0)
	net := applyMembership(t, evs)
	if !equalMembership(net, knnGroundTruth(t, h.db, testTrajectory(), 2)) {
		t.Fatal("membership diverges from ground truth under per-delta reconciliation")
	}
	// Each OGID may enter at most once and leave at most once — a
	// reconcile that re-delivered existing members would violate this.
	seen := map[string]int{}
	for _, ev := range evs {
		seen[ev.Type]++
	}
	if seen["enter"]-seen["leave"] != len(net) {
		t.Fatalf("event ledger does not balance: %+v vs %d members", seen, len(net))
	}
}

func TestEngineRangeSubscription(t *testing.T) {
	h := newEngineHarness(t, 0)
	eng := h.svc.Engine()
	sub, err := eng.Register(&query.Query{
		Where:   query.LengthNode{Min: 1},
		Similar: &query.SimilarClause{Trajectory: testTrajectory(), Radius: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.ingest(t, 0)
	eng.Quiesce()
	added := h.db.Stats().OGs
	evs := drain(t, sub, 0)
	if len(evs) != added {
		t.Fatalf("got %d range matches for %d OGs inside an all-covering radius", len(evs), added)
	}
	for _, ev := range evs {
		if ev.Type != "match" || ev.Distance < 0 {
			t.Errorf("range event %+v", ev)
		}
	}
	info := sub.Info()
	if info.Kind != "range" || info.Radius != 1e9 {
		t.Errorf("Info = %+v", info)
	}
}

func TestEngineRegisterRejectsAndClose(t *testing.T) {
	h := newEngineHarness(t, 0)
	eng := h.svc.Engine()
	if _, err := eng.Register(&query.Query{}); err == nil {
		t.Error("empty standing query accepted")
	}
	if _, err := eng.Register(&query.Query{Similar: &query.SimilarClause{
		Trajectory: testTrajectory(), K: 2, Mode: query.ModeApprox,
	}}); err == nil {
		t.Error("approx-mode standing query accepted")
	}
	sub, err := eng.Register(&query.Query{Where: query.LengthNode{Min: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Subs(); len(got) != 1 || got[0].ID != sub.ID() || got[0].Kind != "predicate" {
		t.Errorf("Subs = %+v", got)
	}
	h.svc.Close()
	select {
	case <-sub.Done():
	default:
		t.Error("subscription still open after service close")
	}
	if _, err := eng.Register(&query.Query{Where: query.LengthNode{Min: 1}}); err == nil {
		t.Error("Register succeeded on a closed engine")
	}
}
