package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/faultfs"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 10, 21)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := db.Stats(), loaded.Stats()
	if a != b {
		t.Errorf("stats differ after round trip:\n  saved:  %+v\n  loaded: %+v", a, b)
	}
	// Queries must return identical results.
	q := make(dist.Sequence, 10)
	for i := range q {
		q[i] = dist.Vec{20 + float64(i)*28, 120}
	}
	got1 := db.QueryTrajectory(q, 3)
	got2 := loaded.QueryTrajectory(q, 3)
	if len(got1) != len(got2) {
		t.Fatalf("result counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i].Record.OGID != got2[i].Record.OGID || got1[i].Distance != got2[i].Distance {
			t.Errorf("result %d differs: %+v vs %+v", i, got1[i], got2[i])
		}
	}
	if err := loaded.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbageFails(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("not a gob stream, not a snapshot either")), DefaultConfig())
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("loading garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestLoadEmptyDatabase(t *testing.T) {
	db := Open(DefaultConfig())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().OGs != 0 {
		t.Errorf("empty round trip has %d OGs", loaded.Stats().OGs)
	}
}

// savedDB returns the serialized container of a small ingested database.
func savedDB(t *testing.T) []byte {
	t.Helper()
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 6, 9)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadEmptyFileIsCorrupt(t *testing.T) {
	_, err := Load(bytes.NewReader(nil), DefaultConfig())
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Error("CorruptError does not match ErrCorrupt")
	}
}

func TestLoadTruncatedIsCorrupt(t *testing.T) {
	data := savedDB(t)
	// Every kind of truncation: inside the header, inside the payload,
	// inside the trailer, and one byte short.
	for _, cut := range []int{1, snapshotHeaderSize - 2, len(data) / 2, len(data) - snapshotTrailerSize + 3, len(data) - 1} {
		_, err := Load(bytes.NewReader(data[:cut]), DefaultConfig())
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut at %d/%d: err = %v, want ErrCorrupt", cut, len(data), err)
		}
	}
}

func TestLoadBitFlipIsCorrupt(t *testing.T) {
	data := savedDB(t)
	// Flip one bit in the payload, in the stored CRC, and in the magic.
	for _, off := range []int{0, snapshotHeaderSize + 10, len(data)/2 + 1, len(data) - 2} {
		flipped := bytes.Clone(data)
		flipped[off] ^= 0x10
		_, err := Load(bytes.NewReader(flipped), DefaultConfig())
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flip at %d/%d: err = %v, want ErrCorrupt", off, len(data), err)
		}
	}
}

func TestLoadTrailingGarbageIsCorrupt(t *testing.T) {
	data := append(savedDB(t), []byte("extra")...)
	if _, err := Load(bytes.NewReader(data), DefaultConfig()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing garbage: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveFileLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.strg")
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 6, 11)); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveFile(nil, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary file left behind: %v", err)
	}
	loaded, err := LoadFile(nil, path, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != db.Stats() {
		t.Errorf("stats differ after file round trip")
	}

	// A torn rewrite must leave the previous file intact.
	fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: 64, FailSyncAfter: -1})
	if err := db.SaveFile(fsys, path); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn SaveFile err = %v", err)
	}
	if _, err := LoadFile(nil, path, DefaultConfig()); err != nil {
		t.Errorf("previous snapshot damaged by torn rewrite: %v", err)
	}
}
