package core

import (
	"bytes"
	"testing"

	"strgindex/internal/dist"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 10, 21)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, b := db.Stats(), loaded.Stats()
	if a != b {
		t.Errorf("stats differ after round trip:\n  saved:  %+v\n  loaded: %+v", a, b)
	}
	// Queries must return identical results.
	q := make(dist.Sequence, 10)
	for i := range q {
		q[i] = dist.Vec{20 + float64(i)*28, 120}
	}
	got1 := db.QueryTrajectory(q, 3)
	got2 := loaded.QueryTrajectory(q, 3)
	if len(got1) != len(got2) {
		t.Fatalf("result counts differ: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i].Record.OGID != got2[i].Record.OGID || got1[i].Distance != got2[i].Distance {
			t.Errorf("result %d differs: %+v vs %+v", i, got1[i], got2[i])
		}
	}
	if err := loaded.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream")), DefaultConfig()); err == nil {
		t.Error("loading garbage did not error")
	}
}

func TestLoadEmptyDatabase(t *testing.T) {
	db := Open(DefaultConfig())
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().OGs != 0 {
		t.Errorf("empty round trip has %d OGs", loaded.Stats().OGs)
	}
}
