package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/video"
)

// wrapSnapshotPayload frames arbitrary bytes as a structurally valid
// snapshot container: correct magic, version, length, and CRC. This gets
// the fuzzer past the checksum gate so it exercises the gob decoder and
// the post-decode index invariant checks, not just the framing.
func wrapSnapshotPayload(payload []byte) []byte {
	out := make([]byte, 0, snapshotHeaderSize+len(payload)+snapshotTrailerSize)
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, snapshotVersion)
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, snapshotCRC))
	return out
}

// FuzzSnapshotLoad feeds arbitrary bytes to Load twice — once raw
// (exercising the container framing) and once wrapped in a valid
// container (exercising the gob decoder and restore path) — and checks
// the recovery contract: Load either returns a *CorruptError matching
// ErrCorrupt, or a database whose index passes its structural
// invariants and answers queries without panicking.
func FuzzSnapshotLoad(f *testing.F) {
	cfg := DefaultConfig()

	// Seed with real snapshots: empty and small-ingested.
	var empty bytes.Buffer
	if err := Open(cfg).Save(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	small := Open(cfg)
	stream, err := video.GenerateStream(video.StreamProfile{
		Name: "Fuzz", Kind: video.KindLab, NumObjects: 6,
		SegmentFrames: 16, ObjectsPerSegment: 2,
	}, 7)
	if err != nil {
		f.Fatal(err)
	}
	if err := small.IngestStream(stream); err != nil {
		f.Fatal(err)
	}
	var filled bytes.Buffer
	if err := small.Save(&filled); err != nil {
		f.Fatal(err)
	}
	f.Add(filled.Bytes())
	f.Add(filled.Bytes()[:len(filled.Bytes())-5]) // truncated trailer
	f.Add(snapshotMagic[:])                       // header only
	f.Add([]byte{})

	check := func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data), cfg)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				return
			}
			// Post-decode restore failures (impossible snapshot shapes) are
			// also acceptable refusals; only panics and silent garbage are
			// bugs.
			return
		}
		if err := db.Index().CheckInvariants(); err != nil {
			t.Fatalf("loaded database fails index invariants: %v", err)
		}
		q := dist.Sequence{{10, 10}, {40, 40}}
		if got := db.QueryTrajectoryExact(q, 3); len(got) > db.Index().Len() {
			t.Fatalf("query returned %d matches from %d items", len(got), db.Index().Len())
		}
		st := db.Stats()
		if st.OGs != db.Index().Len() {
			t.Fatalf("Stats.OGs = %d, index holds %d", st.OGs, db.Index().Len())
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the input well above the seed snapshots (~5 KB) but low
		// enough that a mutated payload cannot smuggle in multi-thousand-
		// point sequences — leaf-key verification runs a quadratic DP per
		// member, and unbounded inputs drop fuzz throughput to single
		// digits per second.
		if len(data) > 1<<13 {
			t.Skip("oversized input")
		}
		check(t, data)
		check(t, wrapSnapshotPayload(data))
	})
}
