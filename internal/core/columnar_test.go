package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"testing"
)

// TestGoldenColumnarOff runs the golden end-to-end corpus with the
// columnar layout disabled, at every pinned shard count: the committed
// corpus file was produced by the (default) columnar path, so a byte-equal
// answer set here is the system-level proof that the layout never moves a
// bit of any query answer.
func TestGoldenColumnarOff(t *testing.T) {
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run TestGoldenE2E -update-golden first): %v", err)
	}
	for _, shards := range []int{1, 2, 4} {
		db := goldenBuildCfg(t, shards, func(c *Config) { c.Index.DisableColumnar = true })
		got := goldenQueries(t, db)
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, '\n')
		if string(raw) != string(want) {
			t.Fatalf("columnar-off corpus differs from golden at %d shards", shards)
		}
	}
}

// TestV1SnapshotStillLoads: a version-1 container — nested per-record
// Seqs, written before the packed columnar encoding existed — must load
// into a current (columnar-on) database and answer queries identically.
// The v1 bytes are produced honestly: a columnar-off tree emits exactly
// the v1 payload shape (gob omits the absent ColData/ColLens/ColDim
// fields), and the header version is rewritten to 1, which the CRC does
// not cover.
func TestV1SnapshotStillLoads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Index.MaxLeafEntries = 8
	cfg.Index.NumClusters = 2

	oldCfg := cfg
	oldCfg.Index.DisableColumnar = true
	old := Open(oldCfg)
	for i, seed := range []int64{201, 202} {
		stream := miniStream(t, 6, seed)
		for _, seg := range stream.Segments {
			if _, err := old.IngestSegment("v1", seg); err != nil {
				t.Fatalf("ingest stream %d: %v", i, err)
			}
		}
	}
	var buf bytes.Buffer
	if err := old.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if v := binary.LittleEndian.Uint32(data[8:]); v != snapshotVersion {
		t.Fatalf("saved version = %d, want %d", v, snapshotVersion)
	}
	binary.LittleEndian.PutUint32(data[8:], 1)

	db, err := Load(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatalf("v1 container rejected: %v", err)
	}
	q := toSeq([][2]float64{{20, 20}, {60, 60}, {100, 100}})
	want := old.QueryTrajectoryExact(q, 5)
	got := db.QueryTrajectoryExact(q, 5)
	if len(got) != len(want) {
		t.Fatalf("loaded db returned %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Distance != want[i].Distance || got[i].Record != want[i].Record {
			t.Fatalf("match %d differs after v1 load: %+v vs %+v", i, got[i], want[i])
		}
	}

	// A version beyond the writer's must still be refused.
	binary.LittleEndian.PutUint32(data[8:], snapshotVersion+1)
	if _, err := Load(bytes.NewReader(data), cfg); err == nil {
		t.Fatal("future snapshot version accepted")
	}
}
