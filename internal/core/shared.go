package core

import (
	"context"
	"io"
	"sync"

	"strgindex/internal/dist"
	"strgindex/internal/index"
	"strgindex/internal/query"
	"strgindex/internal/shot"
	"strgindex/internal/video"
)

// SharedDB wraps a VideoDB for concurrent use: similarity and predicate
// queries run in parallel with each other; ingest and persistence take the
// write lock. A live deployment ingests from one camera goroutine while
// serving queries from many.
//
// A SharedDB opened with OpenDurable is additionally crash-safe: every
// ingest is appended to a write-ahead log before it mutates state, and
// snapshots fold the log down in the background (see durable.go).
type SharedDB struct {
	mu  sync.RWMutex
	db  *VideoDB
	dur *durable
	// replica seals the external ingest surface: mutations arrive only
	// through ApplyReplicated (see replication.go).
	replica bool
}

// OpenShared creates an empty concurrent database.
func OpenShared(cfg Config) *SharedDB {
	return &SharedDB{db: Open(cfg)}
}

// LoadShared reads a database persisted with Save.
func LoadShared(r io.Reader, cfg Config) (*SharedDB, error) {
	db, err := Load(r, cfg)
	if err != nil {
		return nil, err
	}
	return &SharedDB{db: db}, nil
}

// IngestSegment runs the pipeline on one segment under the write lock.
// On a durable database the segment is write-ahead logged before any
// state mutates.
func (s *SharedDB) IngestSegment(stream string, seg *video.Segment) (*IngestStats, error) {
	if s.replica {
		return nil, ErrReplica
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.db.IngestSegment(stream, seg)
	s.afterIngestLocked(err)
	return st, err
}

// IngestStream ingests a whole stream under the write lock.
func (s *SharedDB) IngestStream(stream *video.Stream) error {
	if s.replica {
		return ErrReplica
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.db.IngestStream(stream)
	s.afterIngestLocked(err)
	return err
}

// IngestVideo shot-parses and ingests a long recording under the write
// lock.
func (s *SharedDB) IngestVideo(stream string, seg *video.Segment, shotCfg shot.Config) (int, error) {
	if s.replica {
		return 0, ErrReplica
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.db.IngestVideo(stream, seg, shotCfg)
	s.afterIngestLocked(err)
	return n, err
}

// Similarity queries do not take the database lock: the sharded index
// publishes immutable copy-on-write snapshots, so each search assembles a
// consistent lock-free view and never waits on an in-flight ingest (the
// distance cache is independently concurrency-safe). Only the scan-based
// Select and the multi-field Stats/Save still synchronize with writers.

// QueryTrajectory is VideoDB.QueryTrajectory, lock-free.
func (s *SharedDB) QueryTrajectory(seq dist.Sequence, k int) []Match {
	return s.db.QueryTrajectory(seq, k)
}

// QueryTrajectoryCtx is VideoDB.QueryTrajectoryCtx, lock-free.
func (s *SharedDB) QueryTrajectoryCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, error) {
	return s.db.QueryTrajectoryCtx(ctx, seq, k)
}

// QueryTrajectoryStatsCtx is VideoDB.QueryTrajectoryStatsCtx, lock-free.
func (s *SharedDB) QueryTrajectoryStatsCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, index.SearchStats, error) {
	return s.db.QueryTrajectoryStatsCtx(ctx, seq, k)
}

// QueryTrajectoryExact is VideoDB.QueryTrajectoryExact, lock-free.
func (s *SharedDB) QueryTrajectoryExact(seq dist.Sequence, k int) []Match {
	return s.db.QueryTrajectoryExact(seq, k)
}

// QueryTrajectoryExactCtx is VideoDB.QueryTrajectoryExactCtx, lock-free.
func (s *SharedDB) QueryTrajectoryExactCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, error) {
	return s.db.QueryTrajectoryExactCtx(ctx, seq, k)
}

// QueryTrajectoryExactStatsCtx is VideoDB.QueryTrajectoryExactStatsCtx,
// lock-free.
func (s *SharedDB) QueryTrajectoryExactStatsCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, index.SearchStats, error) {
	return s.db.QueryTrajectoryExactStatsCtx(ctx, seq, k)
}

// QueryRange is VideoDB.QueryRange, lock-free.
func (s *SharedDB) QueryRange(seq dist.Sequence, radius float64) []Match {
	return s.db.QueryRange(seq, radius)
}

// QueryRangeCtx is VideoDB.QueryRangeCtx, lock-free.
func (s *SharedDB) QueryRangeCtx(ctx context.Context, seq dist.Sequence, radius float64) ([]Match, error) {
	return s.db.QueryRangeCtx(ctx, seq, radius)
}

// QueryRangeStatsCtx is VideoDB.QueryRangeStatsCtx, lock-free.
func (s *SharedDB) QueryRangeStatsCtx(ctx context.Context, seq dist.Sequence, radius float64) ([]Match, index.SearchStats, error) {
	return s.db.QueryRangeStatsCtx(ctx, seq, radius)
}

// QueryComposedCtx plans and executes one declarative query. A pure
// similarity query (no where tree) stays lock-free — its plan routes to
// the sharded index's copy-on-write snapshots exactly like the dedicated
// QueryTrajectory*/QueryRange surfaces. Anything with a where tree scans
// retained OGs (directly or through the trajectory R-tree) and takes the
// read lock.
func (s *SharedDB) QueryComposedCtx(ctx context.Context, q *query.Query) (*QueryResult, error) {
	if err := query.Validate(q); err != nil {
		return nil, err
	}
	if q.Where == nil {
		return s.db.QueryComposedCtx(ctx, q)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.QueryComposedCtx(ctx, q)
}

// CheckSpatialIndex is VideoDB.CheckSpatialIndex under a read lock.
func (s *SharedDB) CheckSpatialIndex() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.CheckSpatialIndex()
}

// Select is VideoDB.Select under a read lock.
func (s *SharedDB) Select(p query.Predicate) []Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Select(p)
}

// SelectCtx is VideoDB.SelectCtx under a read lock.
func (s *SharedDB) SelectCtx(ctx context.Context, p query.Predicate) ([]Match, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.SelectCtx(ctx, p)
}

// Stats is VideoDB.Stats under a read lock.
func (s *SharedDB) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Stats()
}

// Save persists the database under the write lock (the snapshot must not
// race with ingest).
func (s *SharedDB) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Save(w)
}

// IndexVersions returns each index shard's published snapshot version
// (lock-free; see VideoDB.IndexVersions).
func (s *SharedDB) IndexVersions() []uint64 { return s.db.IndexVersions() }

// QuiesceIndex waits out in-flight asynchronous split evaluations.
func (s *SharedDB) QuiesceIndex() { s.db.QuiesceIndex() }
