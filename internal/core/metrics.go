package core

import (
	"strgindex/internal/dist"
	"strgindex/internal/obs"
)

// The distance engine owns its eval counter (dist.TotalEvals) and DP-cell
// counter (dist.DPCells); the bridges into the exposition live here
// because core is the package that always links both sides.
func init() {
	obs.Default.CounterFunc("strg_dist_evals_total",
		"sequence distance evaluations (EGED/EGED_M/DTW/LCS/edit/Lp)", nil,
		func() float64 { return float64(dist.TotalEvals()) })
	obs.Default.CounterFunc("strg_dist_dp_cells_total",
		"dynamic-programming cells evaluated by the distance kernels", nil,
		func() float64 { return float64(dist.DPCells()) })
}

// Pipeline instrumentation, registered against the default observability
// registry and exposed by the HTTP server at GET /metrics.
//
//	strg_ingest_seconds          full pipeline time of one segment ingest
//	                             (RAG build, tracking, decompose, index)
//	strg_ingest_segments_total   segments committed to the index
//	strg_ingest_ogs_total        Object Graphs committed to the index
//	strg_query_seconds{kind}     end-to-end query time inside the database,
//	                             by query kind
var (
	ingestSeconds = obs.Default.Histogram("strg_ingest_seconds",
		"segment ingest pipeline duration in seconds", nil, nil)
	ingestSegments = obs.Default.Counter("strg_ingest_segments_total",
		"segments committed to the index", nil)
	ingestOGs = obs.Default.Counter("strg_ingest_ogs_total",
		"object graphs committed to the index", nil)
	queryKNNSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "knn"}, nil)
	queryKNNExactSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "knn_exact"}, nil)
	queryRangeSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "range"}, nil)
	querySelectSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "select"}, nil)
	queryComposedSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "composed"}, nil)
)

// Distance-cache instrumentation (see distcache.go for the protocol).
//
//	strg_dist_cache_hits_total       lookups answered from the cache
//	strg_dist_cache_misses_total     lookups that fell through to the
//	                                 cascade (including stale-generation
//	                                 entries)
//	strg_dist_cache_evictions_total  entries dropped by LRU pressure or
//	                                 generation invalidation
var (
	cacheHits = obs.Default.Counter("strg_dist_cache_hits_total",
		"distance-cache lookups answered from the cache", nil)
	cacheMisses = obs.Default.Counter("strg_dist_cache_misses_total",
		"distance-cache lookups that fell through to the cascade", nil)
	cacheEvictions = obs.Default.Counter("strg_dist_cache_evictions_total",
		"distance-cache entries dropped by LRU pressure or invalidation", nil)
)

// Durability instrumentation (see durable.go and persist.go).
//
//	strg_snapshot_saves_total              snapshot files durably written
//	strg_snapshot_save_failures_total      snapshot writes that failed
//	                                       (the previous snapshot + WAL
//	                                       chain stays authoritative)
//	strg_snapshot_checksum_failures_total  snapshot loads rejected by the
//	                                       container checksum
//	strg_wal_rotations_total               WAL rotations (a new log opened
//	                                       by a snapshot cycle)
//	strg_recovery_seconds                  duration of crash recovery
//	                                       (snapshot load + WAL replay)
//	strg_recovery_replayed_total           WAL records re-applied during
//	                                       recovery
var (
	snapshotSaves = obs.Default.Counter("strg_snapshot_saves_total",
		"snapshot files durably written", nil)
	snapshotSaveFailures = obs.Default.Counter("strg_snapshot_save_failures_total",
		"snapshot writes that failed, leaving the WAL chain authoritative", nil)
	snapshotChecksumFailures = obs.Default.Counter("strg_snapshot_checksum_failures_total",
		"snapshot loads rejected by the container checksum", nil)
	walRotations = obs.Default.Counter("strg_wal_rotations_total",
		"write-ahead log rotations", nil)
	recoverySeconds = obs.Default.Histogram("strg_recovery_seconds",
		"crash recovery duration in seconds (snapshot load + WAL replay)", nil, nil)
	recoveryReplayed = obs.Default.Counter("strg_recovery_replayed_total",
		"write-ahead log records re-applied during recovery", nil)
)
