package core

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"strgindex/internal/faultfs"
	"strgindex/internal/video"
	"strgindex/internal/wal"
)

// TestCrashRecoveryMatrix is the durability property test: for every
// interesting prefix length of the write-ahead log — record boundaries
// and tears inside the length prefix, the CRC, the payload, and one byte
// short of commit — a crash at that point recovers to a database whose
// k-NN results are byte-identical to one that ingested only the
// operations that were acknowledged before the crash.
func TestCrashRecoveryMatrix(t *testing.T) {
	stream := miniStream(t, 6, 61)
	n := len(stream.Segments)
	if n < 2 {
		t.Fatalf("need at least 2 segments, got %d", n)
	}

	refSigs := make([]string, n+1)
	refStats := make([]Stats, n+1)
	{
		db := Open(DefaultConfig())
		refSigs[0], refStats[0] = plainSig(t, db), db.Stats()
		for k, seg := range stream.Segments {
			if _, err := db.IngestSegment("Mini", seg); err != nil {
				t.Fatal(err)
			}
			refSigs[k+1], refStats[k+1] = plainSig(t, db), db.Stats()
		}
	}

	// A clean baseline run records the WAL offset at which each operation
	// became durable; boundaries[k] is the file size once op k committed
	// (boundaries[0] is the file header).
	boundaries := make([]int64, n+1)
	{
		s, _, err := OpenDurable(DefaultConfig(), noRotate(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		boundaries[0] = s.WALSize()
		for k, seg := range stream.Segments {
			if _, err := s.IngestSegment("Mini", seg); err != nil {
				t.Fatal(err)
			}
			boundaries[k+1] = s.WALSize()
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cutSet := map[int64]bool{}
	for k := 0; k <= n; k++ {
		cutSet[boundaries[k]] = true
	}
	for k := 1; k <= n; k++ {
		prev, cur := boundaries[k-1], boundaries[k]
		for _, c := range []int64{prev + 1, prev + 5, prev + 8 + (cur-prev-8)/2, cur - 1} {
			if c > prev && c < cur {
				cutSet[c] = true
			}
		}
	}
	cuts := make([]int64, 0, len(cutSet))
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	for _, cut := range cuts {
		acked := 0
		for acked < n && boundaries[acked+1] <= cut {
			acked++
		}

		// Run against a disk that dies after exactly `cut` durable bytes.
		dir := t.TempDir()
		fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: cut, FailSyncAfter: -1})
		s, _, err := OpenDurable(DefaultConfig(), Durability{Dir: dir, FS: fsys, SnapshotOps: -1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := 0
		var ingestErr error
		for _, seg := range stream.Segments {
			if _, err := s.IngestSegment("Mini", seg); err != nil {
				ingestErr = err
				break
			}
			got++
		}
		_ = s.Close() // the process "dies"; errors on the dead disk are moot
		if got != acked {
			t.Fatalf("cut %d: %d ops acknowledged, want %d", cut, got, acked)
		}
		if got < n && !errors.Is(ingestErr, faultfs.ErrInjected) {
			t.Fatalf("cut %d: ingest failed with %v, want injected fault", cut, ingestErr)
		}

		// A fresh process recovers from the real on-disk state.
		r, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		if rec.ReplayedRecords != acked {
			t.Errorf("cut %d: replayed %d records, want %d", cut, rec.ReplayedRecords, acked)
		}
		if wantTorn := cut > boundaries[acked]; rec.TornTail != wantTorn {
			t.Errorf("cut %d: TornTail = %v, want %v", cut, rec.TornTail, wantTorn)
		}
		if sig := sharedSig(t, r); sig != refSigs[acked] {
			t.Errorf("cut %d: recovered k-NN results differ from the %d-op reference", cut, acked)
		}
		if st := r.Stats(); st != refStats[acked] {
			t.Errorf("cut %d: recovered stats %+v, want %+v", cut, st, refStats[acked])
		}

		// The recovered database must keep working: ingesting the segments
		// the crash swallowed lands on the full-database answer.
		for _, seg := range stream.Segments[acked:] {
			if _, err := r.IngestSegment("Mini", seg); err != nil {
				t.Fatalf("cut %d: ingest after recovery: %v", cut, err)
			}
		}
		if sig := sharedSig(t, r); sig != refSigs[n] {
			t.Errorf("cut %d: catch-up after recovery diverges from reference", cut)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestCrashDuringSnapshotWrite kills the disk while a checkpoint is
// writing the snapshot: the torn temporary file must be swept and the
// previous snapshot + full log chain stay authoritative.
func TestCrashDuringSnapshotWrite(t *testing.T) {
	stream := miniStream(t, 6, 63)
	refSigs, _ := crashRefs(t, stream.Segments, "Mini")
	n := len(stream.Segments)

	// Clean baseline: bytes the first two appends cost.
	var s2size int64
	{
		s, _, err := OpenDurable(DefaultConfig(), noRotate(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		for _, seg := range stream.Segments[:2] {
			if _, err := s.IngestSegment("Mini", seg); err != nil {
				t.Fatal(err)
			}
		}
		s2size = s.WALSize()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Budget: both appends and the rotated-in log's header fit; the
	// snapshot body tears partway.
	budget := s2size + int64(wal.HeaderSize) + 100
	dir := t.TempDir()
	fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: budget, FailSyncAfter: -1})
	s, _, err := OpenDurable(DefaultConfig(), Durability{Dir: dir, FS: fsys, SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments[:2] {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a dying disk reported success")
	}
	_ = s.Close()
	if !fsys.Crashed() {
		t.Fatal("fault budget was never reached")
	}

	r, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatalf("recovery after torn snapshot: %v", err)
	}
	if rec.SnapshotLoaded {
		t.Error("a torn snapshot was loaded")
	}
	if rec.ReplayedRecords != 2 || rec.ReplayedLogs != 2 {
		t.Errorf("replayed %d records over %d logs, want 2 over 2", rec.ReplayedRecords, rec.ReplayedLogs)
	}
	if sig := sharedSig(t, r); sig != refSigs[2] {
		t.Error("recovered k-NN results differ from the 2-op reference")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("torn snapshot temporary not swept: %v", err)
	}
	for _, seg := range stream.Segments[2:] {
		if _, err := r.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if sig := sharedSig(t, r); sig != refSigs[n] {
		t.Error("catch-up after torn snapshot diverges from reference")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashAroundRotationStates reconstructs the two on-disk states a
// crash can leave between "snapshot renamed into place" and "old logs
// removed", and proves both recover to the same database.
func TestCrashAroundRotationStates(t *testing.T) {
	stream := miniStream(t, 6, 65)
	refSigs, _ := crashRefs(t, stream.Segments, "Mini")
	n := len(stream.Segments)

	dir := t.TempDir()
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments[:2] {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the pre-rotation log so we can resurrect it.
	wal1, err := os.ReadFile(filepath.Join(dir, walFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments[2:] {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// State A — crash after the snapshot rename, before the subsumed log
	// was removed: snapshot + stale wal-1 + wal-2.
	t.Run("AfterRename", func(t *testing.T) {
		d := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(d, walFileName(1)), wal1, 0o644); err != nil {
			t.Fatal(err)
		}
		r, rec, err := OpenDurable(DefaultConfig(), noRotate(d))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if !rec.SnapshotLoaded || rec.ReplayedRecords != n-2 {
			t.Errorf("recovery = %+v, want snapshot + %d replayed", rec, n-2)
		}
		if _, err := os.Stat(filepath.Join(d, walFileName(1))); !os.IsNotExist(err) {
			t.Errorf("stale log not removed: %v", err)
		}
		if sig := sharedSig(t, r); sig != refSigs[n] {
			t.Error("recovered k-NN results differ from reference")
		}
	})

	// State B — crash before the snapshot rename: no snapshot, full
	// wal-1 + wal-2 chain.
	t.Run("BeforeRename", func(t *testing.T) {
		d := copyDir(t, dir)
		if err := os.WriteFile(filepath.Join(d, walFileName(1)), wal1, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(d, snapshotName)); err != nil {
			t.Fatal(err)
		}
		r, rec, err := OpenDurable(DefaultConfig(), noRotate(d))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if rec.SnapshotLoaded || rec.ReplayedRecords != n {
			t.Errorf("recovery = %+v, want no snapshot + %d replayed", rec, n)
		}
		if sig := sharedSig(t, r); sig != refSigs[n] {
			t.Error("recovered k-NN results differ from reference")
		}
	})

	// Temporary-file residue from an interrupted atomic write is swept.
	t.Run("TmpResidue", func(t *testing.T) {
		d := copyDir(t, dir)
		for _, tmp := range []string{snapshotName + ".tmp", walFileName(9) + ".tmp"} {
			if err := os.WriteFile(filepath.Join(d, tmp), []byte("partial garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, _, err := OpenDurable(DefaultConfig(), noRotate(d))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for _, tmp := range []string{snapshotName + ".tmp", walFileName(9) + ".tmp"} {
			if _, err := os.Stat(filepath.Join(d, tmp)); !os.IsNotExist(err) {
				t.Errorf("%s not swept: %v", tmp, err)
			}
		}
		if sig := sharedSig(t, r); sig != refSigs[n] {
			t.Error("recovered k-NN results differ from reference")
		}
	})
}

// TestCrashWALBitFlipRefused proves a flipped bit in a committed WAL
// record is detected by the record checksum and refused — never silently
// replayed.
func TestCrashWALBitFlipRefused(t *testing.T) {
	stream := miniStream(t, 4, 67)
	dir := t.TempDir()
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// On-media corruption: rewrite the file with one bit flipped.
	path := filepath.Join(dir, walFileName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[wal.HeaderSize+12] ^= 0x04
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurable(DefaultConfig(), noRotate(dir)); !errors.Is(err, wal.ErrCorrupt) {
		t.Errorf("on-media flip: err = %v, want wal.ErrCorrupt", err)
	}

	// Read-path corruption: the disk returns a flipped byte on read.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{
		WriteBudget:   -1,
		FailSyncAfter: -1,
		Flips:         []faultfs.BitFlip{{Name: walFileName(1), Offset: wal.HeaderSize + 20, Mask: 0x80}},
	})
	_, _, err = OpenDurable(DefaultConfig(), Durability{Dir: dir, FS: fsys, SnapshotOps: -1, SnapshotBytes: -1})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Errorf("read-path flip: err = %v, want wal.ErrCorrupt", err)
	}

	// Pristine bytes still recover.
	r, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if rec.ReplayedRecords != len(stream.Segments) {
		t.Errorf("replayed %d, want %d", rec.ReplayedRecords, len(stream.Segments))
	}
}

// TestCrashSnapshotBitFlipRefused is the same property for the snapshot
// container checksum.
func TestCrashSnapshotBitFlipRefused(t *testing.T) {
	stream := miniStream(t, 4, 69)
	dir := t.TempDir()
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurable(DefaultConfig(), noRotate(dir)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("snapshot flip: err = %v, want ErrCorrupt", err)
	}

	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !rec.SnapshotLoaded {
		t.Error("pristine snapshot not loaded")
	}
}

// crashRefs builds the per-prefix reference signatures used by the
// rotation tests.
func crashRefs(t *testing.T, segs []*video.Segment, stream string) ([]string, []Stats) {
	t.Helper()
	sigs := make([]string, len(segs)+1)
	stats := make([]Stats, len(segs)+1)
	db := Open(DefaultConfig())
	sigs[0], stats[0] = plainSig(t, db), db.Stats()
	for k, seg := range segs {
		if _, err := db.IngestSegment(stream, seg); err != nil {
			t.Fatal(err)
		}
		sigs[k+1], stats[k+1] = plainSig(t, db), db.Stats()
	}
	return sigs, stats
}

// copyDir clones a data directory into a fresh temp dir.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}
