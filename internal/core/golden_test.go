package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"strgindex/internal/dist"
)

// updateGolden regenerates testdata/golden_e2e.json from the current
// pipeline output: go test ./internal/core/ -run TestGoldenE2E -update-golden
// (or `make golden-update`). Review the diff before committing — the file
// IS the spec of what every query answers.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden e2e corpus file")

const goldenPath = "testdata/golden_e2e.json"

// goldenMatch is one query hit with the distance pinned bit-for-bit: hex
// float formatting (%x) round-trips float64 exactly, so any kernel,
// cascade, clustering, or index change that moves an answer by even one
// ulp shows up as a diff instead of sliding under a tolerance.
type goldenMatch struct {
	Stream   string `json:"stream"`
	Segment  string `json:"segment"`
	Frames   [2]int `json:"frames"`
	Label    string `json:"label,omitempty"`
	OGID     int    `json:"og_id"`
	Distance string `json:"distance_hex"`
	// DistanceDec is informational (human-readable); comparison uses the
	// hex form.
	DistanceDec float64 `json:"distance_dec"`
}

type goldenQuery struct {
	Name    string        `json:"name"`
	Kind    string        `json:"kind"` // knn | knn_exact | range
	Query   [][2]float64  `json:"query"`
	K       int           `json:"k,omitempty"`
	Radius  float64       `json:"radius,omitempty"`
	Matches []goldenMatch `json:"matches"`
}

type goldenCorpus struct {
	// Comment documents the file's provenance for reviewers.
	Comment  string        `json:"_comment"`
	Segments int           `json:"segments"`
	OGs      int           `json:"ogs"`
	Roots    int           `json:"roots"`
	Clusters int           `json:"clusters"`
	Queries  []goldenQuery `json:"queries"`
}

func toGoldenMatches(ms []Match) []goldenMatch {
	out := make([]goldenMatch, len(ms))
	for i, m := range ms {
		out[i] = goldenMatch{
			Stream:      m.Record.Stream,
			Segment:     m.Record.Clip.Segment,
			Frames:      [2]int{m.Record.Clip.FrameStart, m.Record.Clip.FrameEnd},
			Label:       m.Record.Label,
			OGID:        m.Record.OGID,
			Distance:    strconv.FormatFloat(m.Distance, 'x', -1, 64),
			DistanceDec: m.Distance,
		}
	}
	return out
}

func toSeq(q [][2]float64) dist.Sequence {
	s := make(dist.Sequence, len(q))
	for i, v := range q {
		s[i] = dist.Vec{v[0], v[1]}
	}
	return s
}

// goldenBuild ingests the fixed corpus into a database at the given shard
// count. Everything is pinned: stream seeds, ingest order, cluster seed
// (via DefaultConfig), worker count.
func goldenBuild(t *testing.T, shards int) *VideoDB {
	return goldenBuildCfg(t, shards, nil)
}

// goldenBuildCfg is goldenBuild with a config hook, for variants (such as
// the columnar-off ablation) that must reproduce the same corpus.
func goldenBuildCfg(t *testing.T, shards int, mut func(*Config)) *VideoDB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Concurrency = 2
	cfg.Index.Shards = shards
	// A tight leaf budget and fixed K=2 give the corpus real cluster
	// structure to pin (descent ordering, leaf pruning), not just a flat
	// scan of one cluster.
	cfg.Index.MaxLeafEntries = 8
	cfg.Index.NumClusters = 2
	if mut != nil {
		mut(&cfg)
	}
	db := Open(cfg)
	for i, seed := range []int64{101, 102, 103} {
		stream := miniStream(t, 8, seed)
		for j, seg := range stream.Segments {
			if _, err := db.IngestSegment(fmt.Sprintf("golden-%d", i), seg); err != nil {
				t.Fatalf("ingest stream %d segment %d: %v", i, j, err)
			}
		}
		// The trajectory R-tree must track the retained OGs exactly after
		// every ingest batch — the planner's probes are only sound if it
		// does.
		if err := db.CheckSpatialIndex(); err != nil {
			t.Fatalf("after stream %d: %v", i, err)
		}
	}
	return db
}

// goldenQueries runs the fixed query set and captures every answer.
func goldenQueries(t *testing.T, db *VideoDB) goldenCorpus {
	t.Helper()
	type spec struct {
		name   string
		kind   string
		query  [][2]float64
		k      int
		radius float64
	}
	specs := []spec{
		{name: "east-lane-knn", kind: "knn", k: 5,
			query: [][2]float64{{16, 120}, {46, 120}, {76, 120}, {106, 120}, {136, 120}}},
		{name: "east-lane-exact", kind: "knn_exact", k: 5,
			query: [][2]float64{{16, 120}, {46, 120}, {76, 120}, {106, 120}, {136, 120}}},
		{name: "south-drift-exact", kind: "knn_exact", k: 7,
			query: [][2]float64{{200, 30}, {200, 70}, {200, 110}, {200, 150}}},
		{name: "diagonal-knn", kind: "knn", k: 4,
			query: [][2]float64{{40, 40}, {80, 80}, {120, 120}, {160, 160}}},
		{name: "tight-range", kind: "range", radius: 950,
			query: [][2]float64{{16, 120}, {46, 120}, {76, 120}, {106, 120}}},
		{name: "wide-range", kind: "range", radius: 1200,
			query: [][2]float64{{100, 100}, {140, 100}, {180, 100}}},
	}
	st := db.Stats()
	out := goldenCorpus{
		Comment: "Golden end-to-end corpus: fixed synthetic streams (seeds 101-103) " +
			"ingested in order, then fixed queries; distances are hex floats and must " +
			"match bit-for-bit. Regenerate with -update-golden and review the diff.",
		Segments: st.Segments,
		OGs:      st.OGs,
		Roots:    st.Roots,
		Clusters: st.Clusters,
	}
	for _, sp := range specs {
		q := goldenQuery{Name: sp.name, Kind: sp.kind, Query: sp.query, K: sp.k, Radius: sp.radius}
		switch sp.kind {
		case "knn":
			q.Matches = toGoldenMatches(db.QueryTrajectory(toSeq(sp.query), sp.k))
		case "knn_exact":
			q.Matches = toGoldenMatches(db.QueryTrajectoryExact(toSeq(sp.query), sp.k))
		case "range":
			q.Matches = toGoldenMatches(db.QueryRange(toSeq(sp.query), sp.radius))
		}
		out.Queries = append(out.Queries, q)
	}
	return out
}

// TestGoldenE2E pins the whole pipeline end to end: deterministic
// synthetic video in, bit-exact query answers out, byte-compared against
// the committed corpus file. The corpus is also required to be identical
// at shard counts 1, 2, and 4 — the copy-on-write partitioning must never
// change an answer.
func TestGoldenE2E(t *testing.T) {
	db := goldenBuild(t, 1)
	got := goldenQueries(t, db)
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(raw))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if string(raw) != string(want) {
		// Decode both for a targeted diff before failing with the blob.
		var wantC goldenCorpus
		if err := json.Unmarshal(want, &wantC); err == nil {
			for i := range wantC.Queries {
				if i >= len(got.Queries) {
					break
				}
				g, w := got.Queries[i], wantC.Queries[i]
				if len(g.Matches) != len(w.Matches) {
					t.Errorf("query %q: %d matches, golden has %d", g.Name, len(g.Matches), len(w.Matches))
					continue
				}
				for j := range w.Matches {
					if g.Matches[j] != w.Matches[j] {
						t.Errorf("query %q match %d:\n  got  %+v\n  want %+v", g.Name, j, g.Matches[j], w.Matches[j])
					}
				}
			}
		}
		t.Fatalf("golden corpus drifted (rerun with -update-golden only if the change is intended)")
	}

	// Shard-count invariance: the identical corpus must come out of 2- and
	// 4-shard builds, byte for byte.
	for _, shards := range []int{2, 4} {
		sdb := goldenBuild(t, shards)
		sgot := goldenQueries(t, sdb)
		sraw, err := json.MarshalIndent(sgot, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		sraw = append(sraw, '\n')
		if string(sraw) != string(raw) {
			t.Fatalf("corpus differs at %d shards", shards)
		}
	}
}
