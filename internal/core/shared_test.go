package core

import (
	"bytes"
	"sync"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/query"
	"strgindex/internal/video"
)

func TestSharedDBConcurrentQueriesDuringIngest(t *testing.T) {
	s := OpenShared(DefaultConfig())
	streams := make([]*video.Stream, 3)
	for i := range streams {
		p := video.StreamProfile{
			Name: "S", Kind: video.KindLab,
			NumObjects: 6, SegmentFrames: 16, ObjectsPerSegment: 2,
		}
		st, err := video.GenerateStream(p, int64(40+i))
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}
	// Seed with one stream so queries have something to chew on.
	if err := s.IngestStream(streams[0]); err != nil {
		t.Fatal(err)
	}
	q := dist.Sequence{{20, 72}, {160, 72}, {300, 72}}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.QueryTrajectory(q, 3)
				s.QueryRange(q, 500)
				s.Select(query.LongerThan(2))
				s.Stats()
			}
		}()
	}
	for _, st := range streams[1:] {
		wg.Add(1)
		go func(st *video.Stream) {
			defer wg.Done()
			if err := s.IngestStream(st); err != nil {
				t.Error(err)
			}
		}(st)
	}
	wg.Wait()

	want := 0
	for _, st := range streams {
		want += st.NumObjects()
	}
	got := s.Stats().OGs
	// Tracking merges/fragments a little; the count must be close.
	if got < want*7/10 || got > want*13/10 {
		t.Errorf("OGs after concurrent ingest = %d, want ~%d", got, want)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadShared(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats().OGs != got {
		t.Errorf("round trip lost OGs: %d vs %d", loaded.Stats().OGs, got)
	}
}
