package core

import (
	"bytes"
	"testing"
)

// TestCommitDelta ingests a stream with the delta hook installed and checks
// that the deltas exactly tile the database: every OG appears in exactly one
// delta, OGIDs are dense and monotone across deltas, and the per-delta
// records match the retained corpus.
func TestCommitDelta(t *testing.T) {
	db := Open(DefaultConfig())
	var deltas []CommitDelta
	db.OnCommitDelta(func(d CommitDelta) { deltas = append(deltas, d) })
	stream := miniStream(t, 12, 7)
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(stream.Segments) {
		t.Fatalf("got %d deltas for %d segments", len(deltas), len(stream.Segments))
	}
	next := 0
	for i, d := range deltas {
		if d.Stream != "Mini" {
			t.Errorf("delta %d stream = %q", i, d.Stream)
		}
		if d.Segment != stream.Segments[i].Name {
			t.Errorf("delta %d segment = %q, want %q", i, d.Segment, stream.Segments[i].Name)
		}
		if len(d.Records) != len(d.OGs) {
			t.Fatalf("delta %d: %d records vs %d OGs", i, len(d.Records), len(d.OGs))
		}
		if len(d.Versions) != db.Stats().Shards {
			t.Errorf("delta %d carries %d versions for %d shards", i, len(d.Versions), db.Stats().Shards)
		}
		for j, r := range d.Records {
			if r.OGID != next {
				t.Fatalf("delta %d record %d OGID = %d, want %d (dense monotone)", i, j, r.OGID, next)
			}
			if db.records[r.OGID] != r {
				t.Errorf("delta %d record %d differs from retained corpus", i, j)
			}
			if db.ogs[r.OGID] != d.OGs[j] {
				t.Errorf("delta %d OG %d is not the retained graph", i, j)
			}
			next++
		}
	}
	if next != db.Stats().OGs {
		t.Errorf("deltas covered %d OGs, database holds %d", next, db.Stats().OGs)
	}
}

// TestSegmentsIn checks the per-stream commit counter, including across a
// save/load round trip — a feed's crash reconciliation depends on the count
// surviving restart.
func TestSegmentsIn(t *testing.T) {
	db := Open(DefaultConfig())
	stream := miniStream(t, 8, 9)
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	if got := db.SegmentsIn("Mini"); got != len(stream.Segments) {
		t.Errorf("SegmentsIn(Mini) = %d, want %d", got, len(stream.Segments))
	}
	if got := db.SegmentsIn("absent"); got != 0 {
		t.Errorf("SegmentsIn(absent) = %d, want 0", got)
	}
	other := miniStream(t, 4, 10)
	if _, err := db.IngestSegment("cam-2", other.Segments[0]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.SegmentsIn("Mini"); got != len(stream.Segments) {
		t.Errorf("after load SegmentsIn(Mini) = %d, want %d", got, len(stream.Segments))
	}
	if got := loaded.SegmentsIn("cam-2"); got != 1 {
		t.Errorf("after load SegmentsIn(cam-2) = %d, want 1", got)
	}
}

// TestSnapshotBytesDeterministicWithStreams guards the replication digests:
// two databases built by the same ingest sequence must snapshot to identical
// bytes even with multiple streams in the count table.
func TestSnapshotBytesDeterministicWithStreams(t *testing.T) {
	build := func() []byte {
		db := Open(DefaultConfig())
		stream := miniStream(t, 6, 11)
		for i, seg := range stream.Segments {
			name := []string{"cam-b", "cam-a", "cam-c"}[i%3]
			if _, err := db.IngestSegment(name, seg); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("snapshot bytes differ between identical ingest sequences")
	}
}
