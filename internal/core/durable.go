package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strgindex/internal/faultfs"
	"strgindex/internal/video"
	"strgindex/internal/wal"
)

// Durability configures crash-safe persistence for a SharedDB: every
// ingest is appended to a write-ahead log (fsynced) before it mutates the
// in-memory database, and the log is periodically folded into a
// checksummed snapshot.
//
// The directory holds one current snapshot plus a chain of sequence-
// numbered logs:
//
//	snapshot.strg       versioned, checksummed, atomically renamed
//	wal-00000001.log    ingest operations since (or before) the snapshot
//	wal-00000002.log    ...
//
// The snapshot records the first log sequence it does NOT cover; recovery
// loads the snapshot and replays the remaining logs in order, truncating
// a torn final record.
type Durability struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// FS is the filesystem to operate on. Nil means the real one; tests
	// inject faults here.
	FS faultfs.FS
	// SnapshotOps triggers a background snapshot + log rotation once this
	// many operations have accumulated in the log chain since the last
	// snapshot. 0 means the 256 default; negative disables the trigger.
	SnapshotOps int
	// SnapshotBytes triggers the same once the current log exceeds this
	// size. 0 means the 64 MiB default; negative disables the trigger.
	SnapshotBytes int64
}

// DefaultSnapshotOps and DefaultSnapshotBytes are the rotation thresholds
// selected by zero Durability fields.
const (
	DefaultSnapshotOps   = 256
	DefaultSnapshotBytes = 64 << 20
)

const (
	snapshotName = "snapshot.strg"
	walNameFmt   = "wal-%08d.log"
)

func walFileName(seq uint64) string { return fmt.Sprintf(walNameFmt, seq) }

// parseWALName extracts the sequence from a wal file name, reporting
// whether the name is one.
func parseWALName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, walNameFmt, &seq); n == 1 && err == nil && name == walFileName(seq) {
		return seq, true
	}
	return 0, false
}

// RecoveryStats reports what OpenDurable did to reach a servable state.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot file was found and loaded.
	SnapshotLoaded bool
	// ReplayedLogs and ReplayedRecords count the WAL chain re-applied on
	// top of the snapshot.
	ReplayedLogs    int
	ReplayedRecords int
	// TornTail reports whether the final log ended in a partial record
	// (the residue of a crash mid-append) that was measured off and
	// truncated.
	TornTail bool
	// Duration is the wall time of recovery.
	Duration time.Duration
}

// walOp is one logged ingest operation. Replay re-runs the deterministic
// pipeline on the segment, reproducing the exact database state.
type walOp struct {
	Stream  string
	Segment *video.Segment
	// Shard records the index shard the commit routed to — diagnostic
	// (replay re-derives the route deterministically, so a recovery under
	// a different shard count still works). Logs written before sharding
	// decode with Shard zero.
	Shard int
	// SrcSeq/SrcOff are set only on a replica: the primary WAL position
	// immediately after this operation's record — the position replication
	// resumes from once this record is locally durable. Persisting the
	// resume point inside the record itself makes resume crash-safe with
	// no sidecar file: a torn local tail truncates the record AND its
	// position together, so the operation is re-fetched, never skipped or
	// doubled. Zero on a primary, so gob omits them and primary WAL bytes
	// are unchanged.
	SrcSeq uint64
	SrcOff int64
}

func encodeOp(op walOp) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&op); err != nil {
		return nil, fmt.Errorf("core: encoding wal op: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeOp(payload []byte) (walOp, error) {
	var op walOp
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&op); err != nil {
		return op, fmt.Errorf("core: decoding wal op: %w", err)
	}
	return op, nil
}

// durable is the persistence state hanging off a SharedDB. All fields
// except the background-goroutine coordination are guarded by the
// SharedDB write lock.
type durable struct {
	fsys faultfs.FS
	dir  string
	cfg  Durability

	log *wal.Log
	// seq is the sequence number of the current log.
	seq uint64
	// ops counts records in the log chain since the last snapshot.
	ops int
	// pendingStart is the log offset before the in-flight append, or -1;
	// a failed commit rolls the log back to it.
	pendingStart int64

	// srcPos is, on a replica, the primary WAL position after the last
	// applied operation (the replication resume point); applySrc stages
	// the position of the operation currently being applied so append can
	// stamp it into the record. Both zero on a primary.
	srcPos   WALPos
	applySrc WALPos
	// retain is the lowest WAL sequence rotation must preserve for
	// replication readers (MaxUint64 = no floor). Stored atomically so
	// the primary-side replication service can move it without the
	// database lock.
	retain atomic.Uint64

	// snapshotting single-flights background snapshots; inflight tracks
	// the running one so Close and Checkpoint can wait without holding
	// the database lock.
	snapshotting atomic.Bool
	inflight     chan struct{}
	// errMu guards lastSnapErr, the most recent snapshot failure.
	errMu       sync.Mutex
	lastSnapErr error
	closed      bool
}

func (d *durable) setSnapErr(err error) {
	d.errMu.Lock()
	d.lastSnapErr = err
	d.errMu.Unlock()
}

func (d *durable) takeSnapErr() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	err := d.lastSnapErr
	d.lastSnapErr = nil
	return err
}

func (d *durable) path(name string) string { return filepath.Join(d.dir, name) }

// OpenDurable opens (or creates) a crash-safe database in d.Dir:
// recovery loads the last good snapshot, replays the write-ahead log
// chain on top of it, truncates a torn final record, and leaves the log
// open for appending. A checksum failure in the snapshot or in a
// non-final log record aborts with an error matching ErrCorrupt — damaged
// state is never silently loaded.
func OpenDurable(cfg Config, d Durability) (*SharedDB, RecoveryStats, error) {
	return openDurable(cfg, d, false)
}

// OpenReplica opens a crash-safe database in replica mode: the same
// recovery path as OpenDurable, but the external ingest surface is
// sealed (IngestSegment/IngestStream/IngestVideo return ErrReplica) and
// mutations arrive only through ApplyReplicated, which stamps each local
// WAL record with the primary position it came from. ReplicaPos reports
// the crash-safe resume point recovered from the snapshot and log chain.
func OpenReplica(cfg Config, d Durability) (*SharedDB, RecoveryStats, error) {
	return openDurable(cfg, d, true)
}

func openDurable(cfg Config, d Durability, replica bool) (*SharedDB, RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats
	if d.Dir == "" {
		return nil, stats, fmt.Errorf("core: durability requires a data directory")
	}
	if d.FS == nil {
		d.FS = faultfs.OS{}
	}
	if d.SnapshotOps == 0 {
		d.SnapshotOps = DefaultSnapshotOps
	}
	if d.SnapshotBytes == 0 {
		d.SnapshotBytes = DefaultSnapshotBytes
	}
	fsys := d.FS
	if err := fsys.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("core: creating data directory: %w", err)
	}

	dur := &durable{fsys: fsys, dir: d.Dir, cfg: d, pendingStart: -1}
	dur.retain.Store(^uint64(0))

	// Sweep leftovers of an interrupted atomic write: a *.tmp never
	// renamed into place is dead weight.
	entries, err := fsys.ReadDir(d.Dir)
	if err != nil {
		return nil, stats, fmt.Errorf("core: reading data directory: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = fsys.Remove(dur.path(e.Name()))
		}
	}

	// Phase 1: last good snapshot.
	db := Open(cfg)
	startSeq := uint64(1)
	if _, serr := fsys.Stat(dur.path(snapshotName)); serr == nil {
		img, lerr := snapshotImage(fsys, dur.path(snapshotName))
		if lerr != nil {
			return nil, stats, fmt.Errorf("core: recovering %s: %w", dur.path(snapshotName), lerr)
		}
		if rerr := db.restore(img); rerr != nil {
			return nil, stats, rerr
		}
		if img.WALSeq > 0 {
			startSeq = img.WALSeq
		}
		dur.srcPos = WALPos{Seq: img.SrcSeq, Off: img.SrcOff}
		stats.SnapshotLoaded = true
	}

	// Phase 2: the log chain. Logs below startSeq are subsumed by the
	// snapshot (a crash can interleave the snapshot rename and their
	// removal); logs at or above it must be contiguous.
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseWALName(e.Name()); ok {
			if seq < startSeq {
				_ = fsys.Remove(dur.path(e.Name()))
				continue
			}
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i, seq := range seqs {
		if want := startSeq + uint64(i); seq != want {
			return nil, stats, fmt.Errorf("core: write-ahead log chain has a gap: found %s, want %s: %w",
				walFileName(seq), walFileName(want), ErrCorrupt)
		}
	}

	replay := func(_ int64, payload []byte) error {
		op, err := decodeOp(payload)
		if err != nil {
			return err
		}
		if _, err := db.IngestSegment(op.Stream, op.Segment); err != nil {
			return err
		}
		if op.SrcSeq != 0 {
			// Replica record: its source position is the resume point once
			// this record is re-applied. A torn final record never reaches
			// here, so the recovered position is exactly the durable one.
			dur.srcPos = WALPos{Seq: op.SrcSeq, Off: op.SrcOff}
		}
		stats.ReplayedRecords++
		return nil
	}
	lastCommitted := int64(0)
	for i, seq := range seqs {
		res, err := wal.Scan(fsys, dur.path(walFileName(seq)), replay)
		if err != nil {
			return nil, stats, fmt.Errorf("core: replaying %s: %w", walFileName(seq), err)
		}
		if res.Torn {
			if i != len(seqs)-1 {
				// Only the final log may end mid-record: earlier logs
				// were sealed by a completed rotation.
				return nil, stats, fmt.Errorf("core: %s torn at offset %d but is not the final log: %w",
					walFileName(seq), res.TornOffset, ErrCorrupt)
			}
			stats.TornTail = true
		}
		stats.ReplayedLogs++
		lastCommitted = res.CommittedSize
	}

	// Phase 3: reopen the final log for appending (truncating the torn
	// tail), or start the chain.
	if len(seqs) > 0 {
		dur.seq = seqs[len(seqs)-1]
		dur.log, err = wal.OpenAppend(fsys, dur.path(walFileName(dur.seq)), lastCommitted)
	} else {
		dur.seq = startSeq
		dur.log, err = wal.Create(fsys, dur.path(walFileName(dur.seq)))
	}
	if err != nil {
		return nil, stats, fmt.Errorf("core: opening write-ahead log: %w", err)
	}
	dur.ops = stats.ReplayedRecords

	s := &SharedDB{db: db, dur: dur, replica: replica}
	db.onCommit = dur.append
	stats.Duration = time.Since(start)
	recoverySeconds.Observe(stats.Duration.Seconds())
	recoveryReplayed.Add(int64(stats.ReplayedRecords))
	return s, stats, nil
}

// snapshotImage reads just the container image of a snapshot file.
func snapshotImage(fsys faultfs.FS, path string) (dbImage, error) {
	f, err := fsys.OpenFile(path, 0, 0)
	if err != nil {
		return dbImage{}, err
	}
	defer f.Close()
	return readSnapshot(f)
}

// append is the write-ahead hook: it durably logs the operation before
// the commit mutates any state.
func (d *durable) append(stream string, seg *video.Segment, shard int) error {
	if d.closed {
		return fmt.Errorf("core: database closed")
	}
	payload, err := encodeOp(walOp{Stream: stream, Segment: seg, Shard: shard,
		SrcSeq: d.applySrc.Seq, SrcOff: d.applySrc.Off})
	if err != nil {
		return err
	}
	d.pendingStart = d.log.Size()
	if err := d.log.Append(payload); err != nil {
		return err
	}
	d.ops++
	return nil
}

// rollbackPending undoes the in-flight append after a failed ingest,
// restoring WAL == memory. On a dead disk the truncate fails too; the
// next recovery measures the torn bytes off instead.
func (d *durable) rollbackPending() {
	if d.pendingStart < 0 {
		return
	}
	appended := d.log.Size() > d.pendingStart
	if err := d.log.TruncateTo(d.pendingStart); err == nil && appended {
		d.ops--
	}
	d.pendingStart = -1
}

// afterIngestLocked settles the WAL after an ingest call: rollback on
// failure, snapshot-threshold check on success. Called with the write
// lock held.
func (s *SharedDB) afterIngestLocked(err error) {
	d := s.dur
	if d == nil {
		return
	}
	if err != nil {
		d.rollbackPending()
		return
	}
	d.pendingStart = -1
	if (d.cfg.SnapshotOps > 0 && d.ops >= d.cfg.SnapshotOps) ||
		(d.cfg.SnapshotBytes > 0 && d.log.Size() >= d.cfg.SnapshotBytes) {
		s.rotateLocked(false)
	}
}

// rotateLocked starts a snapshot + log rotation: under the held write
// lock it captures the state image and switches appends to a fresh log;
// the expensive encode + fsync of the snapshot then runs in the
// background (or synchronously for Checkpoint). On snapshot failure the
// previous snapshot + full log chain stay authoritative — nothing is
// deleted until the new snapshot is durably in place.
func (s *SharedDB) rotateLocked(sync bool) {
	d := s.dur
	if !d.snapshotting.CompareAndSwap(false, true) {
		return
	}
	img := s.db.image()
	img.WALSeq = d.seq + 1
	img.SrcSeq, img.SrcOff = d.srcPos.Seq, d.srcPos.Off
	newLog, err := wal.Create(d.fsys, d.path(walFileName(d.seq+1)))
	if err != nil {
		d.setSnapErr(fmt.Errorf("core: rotating write-ahead log: %w", err))
		snapshotSaveFailures.Inc()
		d.snapshotting.Store(false)
		return
	}
	oldLog := d.log
	d.log = newLog
	d.seq++
	d.ops = 0
	d.pendingStart = -1
	walRotations.Inc()

	done := make(chan struct{})
	d.inflight = done
	write := func() {
		defer close(done)
		defer d.snapshotting.Store(false)
		_ = oldLog.Close()
		err := faultfs.WriteAtomic(d.fsys, d.path(snapshotName), func(w io.Writer) error {
			return writeSnapshot(w, img)
		})
		if err != nil {
			d.setSnapErr(fmt.Errorf("core: writing snapshot: %w", err))
			snapshotSaveFailures.Inc()
			return
		}
		snapshotSaves.Inc()
		// The snapshot now covers every log below img.WALSeq — but logs a
		// registered replication reader has not acked yet are kept (the
		// retention floor). A later rotation, with the floor advanced,
		// removes them.
		floor := d.retain.Load()
		if entries, err := d.fsys.ReadDir(d.dir); err == nil {
			for _, e := range entries {
				if seq, ok := parseWALName(e.Name()); ok && seq < img.WALSeq && seq < floor {
					_ = d.fsys.Remove(d.path(e.Name()))
				}
			}
		}
	}
	if sync {
		write()
	} else {
		go write()
	}
}

// Checkpoint forces a synchronous snapshot + log rotation, waiting out
// any background snapshot first. A clean shutdown checkpoints so the next
// boot loads one file instead of replaying the log chain.
func (s *SharedDB) Checkpoint() error {
	if s.dur == nil {
		return fmt.Errorf("core: Checkpoint on a non-durable database")
	}
	for {
		s.waitSnapshot()
		s.mu.Lock()
		if s.dur.closed {
			s.mu.Unlock()
			return fmt.Errorf("core: database closed")
		}
		if s.dur.snapshotting.Load() {
			// A background rotation slipped in; wait it out and retry.
			s.mu.Unlock()
			continue
		}
		// Clear any stale failure so the error returned is this
		// checkpoint's own outcome.
		s.dur.takeSnapErr()
		s.rotateLocked(true)
		err := s.dur.takeSnapErr()
		s.mu.Unlock()
		return err
	}
}

// waitSnapshot blocks until no background snapshot is in flight.
func (s *SharedDB) waitSnapshot() {
	for {
		s.mu.RLock()
		ch := s.dur.inflight
		s.mu.RUnlock()
		if ch == nil {
			return
		}
		<-ch
		s.mu.RLock()
		same := s.dur.inflight == ch
		s.mu.RUnlock()
		if same {
			return
		}
	}
}

// SnapshotErr returns (and clears) the most recent background snapshot
// failure, nil if none. Monitoring should alarm on it: while snapshots
// fail the log chain only grows.
func (s *SharedDB) SnapshotErr() error {
	if s.dur == nil {
		return nil
	}
	return s.dur.takeSnapErr()
}

// WALSize returns the committed size of the current write-ahead log, or 0
// for a non-durable database.
func (s *SharedDB) WALSize() int64 {
	if s.dur == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dur.log.Size()
}

// Close flushes and closes the write-ahead log after waiting for any
// background snapshot. Further ingests fail; queries keep working off the
// in-memory state. A nil receiver or non-durable database is a no-op.
func (s *SharedDB) Close() error {
	if s == nil || s.dur == nil {
		return nil
	}
	s.waitSnapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur.closed {
		return nil
	}
	s.dur.closed = true
	return s.dur.log.Close()
}
