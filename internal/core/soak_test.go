package core

import (
	"context"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/index"
	"strgindex/internal/video"
)

// soakDuration returns how long the soak loops run: STRG_SOAK_MS in the
// environment overrides the default (short by design so `go test -race`
// stays fast; CI or a manual run can stretch it to minutes).
func soakDuration(t *testing.T) time.Duration {
	if v := os.Getenv("STRG_SOAK_MS"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms <= 0 {
			t.Fatalf("bad STRG_SOAK_MS=%q", v)
		}
		return time.Duration(ms) * time.Millisecond
	}
	return 1500 * time.Millisecond
}

// checkSearchStats asserts the cascade accounting identity: every record
// that enters the cascade is dispatched to exactly one fate.
func checkSearchStats(t *testing.T, kind string, st index.SearchStats) {
	t.Helper()
	if got := st.CacheHits + st.LBQuickPruned + st.LBEnvelopePruned + st.DPEvaluated + st.DPAbandoned; got != st.Records {
		t.Errorf("%s: SearchStats fates %d != Records %d (%+v)", kind, got, st.Records, st)
	}
	if st.ScannedLeaves > st.CandidateLeaves {
		t.Errorf("%s: scanned %d of %d candidate leaves", kind, st.ScannedLeaves, st.CandidateLeaves)
	}
}

// TestSharedDBSoak hammers one durable SharedDB from concurrent ingest,
// k-NN, exact k-NN, range, freshness, and checkpoint goroutines for the
// soak duration, then verifies the survivors. It is the -race witness for
// the copy-on-write index: queries run lock-free against published shard
// snapshots while ingest, background splits, and checkpoints mutate and
// persist state.
//
// Invariants enforced while the storm runs:
//   - every SearchStats block satisfies the cascade accounting identity;
//   - matches arrive sorted by distance, never exceeding k or the radius;
//   - shard versions only ever increase (snapshots are monotone);
//   - reads are never stale past a completed write: once IngestSegment
//     returns, an exact query must see every committed item (stronger
//     than the two-version staleness budget — the lag is zero).
//
// After the storm: a final checkpoint, reopen, and byte-identity check of
// query answers against the pre-close database.
func TestSharedDBSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Concurrency = 2
	cfg.Index.Shards = 3
	cfg.Index.AsyncSplit = true
	db, _, err := OpenDurable(cfg, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-generate the ingest diet: segments from several lab streams,
	// fed round-robin under distinct stream names so roots and clusters
	// keep growing (and splitting) for the whole soak.
	type feedItem struct {
		stream string
		seg    *video.Segment
	}
	var feed []feedItem
	for s := 0; s < 4; s++ {
		stream := miniStream(t, 6, int64(40+s))
		name := "soak-" + strconv.Itoa(s)
		for _, seg := range stream.Segments {
			feed = append(feed, feedItem{name, seg})
		}
	}

	deadline := time.After(soakDuration(t))
	stop := make(chan struct{})
	go func() { <-deadline; close(stop) }()

	queries := []dist.Sequence{
		{{16, 120}, {46, 120}, {76, 120}, {106, 120}},
		{{200, 40}, {200, 80}, {200, 120}},
		{{60, 60}, {90, 90}, {120, 120}, {150, 150}, {180, 180}},
	}
	var (
		wg        sync.WaitGroup
		committed atomic.Int64 // items acked by IngestSegment so far
		ingested  atomic.Int64 // segments acked
		searches  atomic.Int64
	)

	// Ingest: one writer, the paper's incremental-insertion path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			it := feed[i%len(feed)]
			st, err := db.IngestSegment(it.stream, it.seg)
			if err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			committed.Add(int64(st.OGs))
			ingested.Add(1)
		}
	}()

	// Freshness: reads must never be stale past a completed write. Every
	// round captures the committed item count, then demands an exact
	// query return at least that many matches — a dropped item means a
	// query served a snapshot older than an acknowledged commit.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			floor := committed.Load()
			got, st, err := db.QueryTrajectoryExactStatsCtx(context.Background(), queries[0], int(floor)+64)
			if err != nil {
				t.Errorf("freshness query: %v", err)
				return
			}
			checkSearchStats(t, "freshness", st)
			if int64(len(got)) < floor {
				t.Errorf("stale read: %d matches, but %d items were committed before the query", len(got), floor)
				return
			}
			searches.Add(1)
			time.Sleep(300 * time.Microsecond)
		}
	}()

	// Version monotonicity: published shard snapshots only move forward.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := make([]uint64, cfg.Index.Shards)
		for {
			select {
			case <-stop:
				return
			default:
			}
			vs := db.IndexVersions()
			for i, v := range vs {
				if v < last[i] {
					t.Errorf("shard %d version went backwards: %d -> %d", i, last[i], v)
					return
				}
				last[i] = v
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Approximate k-NN readers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(w+i)%len(queries)]
				got, st, err := db.QueryTrajectoryStatsCtx(context.Background(), q, 5)
				if err != nil {
					t.Errorf("knn: %v", err)
					return
				}
				checkSearchStats(t, "knn", st)
				if len(got) > 5 {
					t.Errorf("knn returned %d > k=5 matches", len(got))
					return
				}
				for j := 1; j < len(got); j++ {
					if got[j].Distance < got[j-1].Distance {
						t.Errorf("knn matches unsorted: %v after %v", got[j].Distance, got[j-1].Distance)
						return
					}
				}
				searches.Add(1)
				// Light pacing: a reader saturating every core would starve
				// the (fsync-bound) ingest path out of the soak entirely.
				time.Sleep(300 * time.Microsecond)
			}
		}(w)
	}

	// Range reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			const radius = 900.0
			got, st, err := db.QueryRangeStatsCtx(context.Background(), queries[i%len(queries)], radius)
			if err != nil {
				t.Errorf("range: %v", err)
				return
			}
			checkSearchStats(t, "range", st)
			for _, m := range got {
				if m.Distance > radius {
					t.Errorf("range match at distance %v > radius %v", m.Distance, radius)
					return
				}
			}
			searches.Add(1)
			time.Sleep(300 * time.Microsecond)
		}
	}()

	// Spatial-index auditor: the trajectory R-tree must stay structurally
	// sound and exactly cover the retained OGs while ingest keeps
	// mutating it (runs under the read lock, interleaved with writes).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.CheckSpatialIndex(); err != nil {
				t.Errorf("spatial index: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Checkpointer: periodically folds the WAL into a snapshot while
	// everything above keeps running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if ingested.Load() == 0 || searches.Load() == 0 {
		t.Fatalf("soak did no work: %d segments, %d searches", ingested.Load(), searches.Load())
	}
	t.Logf("soak: %d segments ingested, %d items, %d searches", ingested.Load(), committed.Load(), searches.Load())

	// Settle and take final answers.
	db.QuiesceIndex()
	if err := db.CheckSpatialIndex(); err != nil {
		t.Fatalf("spatial index after soak: %v", err)
	}
	want := make([][]Match, len(queries))
	for i, q := range queries {
		want[i] = db.QueryTrajectoryExact(q, 20)
	}
	st := db.Stats()
	if int64(st.OGs) != committed.Load() {
		t.Errorf("Stats.OGs = %d, committed %d", st.OGs, committed.Load())
	}
	// Fold the whole log into a final snapshot so the reopen below is a
	// deterministic snapshot load, not a replay racing async splits.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must reconstruct the identical database.
	re, _, err := OpenDurable(cfg, Durability{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	re.QuiesceIndex()
	if err := re.CheckSpatialIndex(); err != nil {
		t.Fatalf("spatial index after recovery: %v", err)
	}
	if got := re.Stats(); got != st {
		t.Fatalf("recovered Stats = %+v, want %+v", got, st)
	}
	for i, q := range queries {
		got := re.QueryTrajectoryExact(q, 20)
		if len(got) != len(want[i]) {
			t.Fatalf("query %d: %d matches after recovery, want %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("query %d match %d = %+v after recovery, want %+v", i, j, got[j], want[i][j])
			}
		}
	}
}
