package core

import (
	"math"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/query"
	"strgindex/internal/shot"
	"strgindex/internal/video"
)

func TestSelectByMotionPredicates(t *testing.T) {
	db := Open(DefaultConfig())
	stream := miniStream(t, 14, 31)
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	if len(db.OGs()) != db.Stats().OGs {
		t.Fatalf("retained %d OGs, stats say %d", len(db.OGs()), db.Stats().OGs)
	}

	all := db.Select(query.And())
	if len(all) != db.Stats().OGs {
		t.Fatalf("Select(all) = %d, want %d", len(all), db.Stats().OGs)
	}

	// Eastbound selection must agree with the ground-truth classes.
	east := db.Select(query.Eastbound(0.4))
	for _, m := range east {
		class := stream.Classes[m.Record.Label]
		if class != "horizontal-east" && class != "uturn-east" {
			// uturn-east's net direction is near-east only in its first
			// half; with a 0.4 tolerance it should not slip in, but a
			// merged OG can. Accept only exact matches here.
			t.Errorf("eastbound Select returned class %q", class)
		}
	}

	// Everything is moving; nothing should be stationary.
	if still := db.Select(query.Stationary(1)); len(still) != 0 {
		t.Errorf("Stationary matched %d moving objects", len(still))
	}

	// Region + direction composition: things crossing the center region.
	center := geom.Rect{Min: geom.Pt(140, 0), Max: geom.Pt(180, 240)}
	crossers := db.Select(query.And(
		query.PassesThrough(center),
		query.Or(query.Eastbound(0.4), query.Westbound(0.4)),
	))
	for _, m := range crossers {
		class := stream.Classes[m.Record.Label]
		switch class {
		case "horizontal-east", "horizontal-west", "uturn-east", "diagonal-se", "diagonal-nw":
		default:
			t.Errorf("center-crossing horizontal Select returned %q", class)
		}
	}

	// U-turn detection against ground truth.
	uturns := db.Select(query.TurnsBy(math.Pi * 0.8))
	for _, m := range uturns {
		class := stream.Classes[m.Record.Label]
		if class != "uturn-east" && class != "uturn-south" {
			t.Errorf("TurnsBy returned class %q", class)
		}
	}
}

func TestIngestVideoSplitsShots(t *testing.T) {
	mk := func(shade float64, seed int64, label string, y float64) *video.Segment {
		seg, err := video.Generate(video.SceneConfig{
			Name: "scene", Width: 320, Height: 240, FPS: 12, Frames: 16,
			BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8,
			BackgroundShade: shade, Seed: seed,
			Objects: []video.ObjectSpec{{
				Label: label,
				Parts: []video.PartSpec{{Size: 400, Color: graph.Color{R: 0.9, G: 0.1, B: 0.1}}},
				Path:  []geom.Point{geom.Pt(10, y), geom.Pt(310, y)},
				Start: 0, End: 16,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return seg
	}
	movie, err := video.Concat("movie", mk(0, 1, "a", 80), mk(0.3, 2, "b", 160))
	if err != nil {
		t.Fatal(err)
	}
	db := Open(DefaultConfig())
	shots, err := db.IngestVideo("cam", movie, shot.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if shots != 2 {
		t.Fatalf("shots = %d, want 2", shots)
	}
	st := db.Stats()
	if st.Segments != 2 {
		t.Errorf("segments = %d, want 2", st.Segments)
	}
	if st.Roots != 2 {
		t.Errorf("roots = %d, want 2 (distinct backgrounds)", st.Roots)
	}
	if st.OGs != 2 {
		t.Errorf("OGs = %d, want 2", st.OGs)
	}
}
