package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/index"
	"strgindex/internal/query"
	"strgindex/internal/rtree"
	"strgindex/internal/strg"
)

// trajIndex is the trajectory R-tree maintained at ingest: each OG's
// centroid path decomposed into per-step (x, y, t) boxes, all carrying
// the OG's ingest ordinal. A step box spans two consecutive samples in
// space and time, so the union of an OG's boxes covers its whole frame
// span — the superset guarantee every planner probe relies on (spatial
// probes use the full t-range, temporal probes the full xy-range, and
// `within` both; see query.probeBox).
type trajIndex struct {
	tree *rtree.Tree[int32]
	// maxID is one past the highest inserted ordinal; candidates uses it
	// to dedup hits with a bitmap instead of sorting (a probe can return
	// many step boxes per OG, and the sort dominated probe cost).
	maxID int
}

func newTrajIndex() *trajIndex {
	t, err := rtree.New[int32](0)
	if err != nil {
		panic(err) // unreachable: default capacity is always valid
	}
	return &trajIndex{tree: t}
}

// insert indexes one OG under its ingest ordinal.
func (ti *trajIndex) insert(id int, og *strg.OG) {
	n := og.Len()
	if n == 0 {
		return
	}
	if id >= ti.maxID {
		ti.maxID = id + 1
	}
	if n == 1 {
		c, f := og.Centroids[0], float64(og.Frames[0])
		ti.tree.Insert(rtree.NewBox(
			[3]float64{c.X, c.Y, f},
			[3]float64{c.X, c.Y, f},
		), int32(id))
		return
	}
	for i := 1; i < n; i++ {
		a, b := og.Centroids[i-1], og.Centroids[i]
		ti.tree.Insert(rtree.NewBox(
			[3]float64{a.X, a.Y, float64(og.Frames[i-1])},
			[3]float64{b.X, b.Y, float64(og.Frames[i])},
		), int32(id))
	}
}

// probeScratch is the per-probe working set candidates reuses across
// queries: the raw hit buffer and the dedup bitmap. Pooled (not hung off
// trajIndex) because SharedDB runs composed queries concurrently under
// its read lock.
type probeScratch struct {
	hits []int32
	seen []bool
}

var probePool = sync.Pool{New: func() any { return new(probeScratch) }}

// candidates returns the distinct OG ordinals owning a box intersecting
// b, ascending, plus the tree nodes visited. Hits arrive one per step
// box; a bitmap over the ordinal space dedups and orders them in O(hits
// + maxID), cheaper than sorting when a probe crosses many step boxes.
func (ti *trajIndex) candidates(b rtree.Box) ([]int, int) {
	sc := probePool.Get().(*probeScratch)
	defer probePool.Put(sc)
	var visited int
	sc.hits, visited = ti.tree.SearchAppend(b, sc.hits)
	if len(sc.hits) == 0 {
		return nil, visited
	}
	if cap(sc.seen) < ti.maxID {
		sc.seen = make([]bool, ti.maxID)
	}
	seen := sc.seen[:ti.maxID]
	n := 0
	for _, h := range sc.hits {
		if !seen[h] {
			seen[h] = true
			n++
		}
	}
	ids := make([]int, 0, n)
	for id, ok := range seen {
		if ok {
			ids = append(ids, id)
		}
	}
	// Scrub only the bits this probe set (O(hits), not O(maxID)) so the
	// pooled bitmap comes back clean.
	for _, h := range sc.hits {
		seen[h] = false
	}
	return ids, visited
}

// querySource adapts a VideoDB to the planner's Source interface. It is
// only valid while the database cannot mutate (VideoDB is single-writer;
// SharedDB runs composed queries under its read lock).
type querySource struct{ db *VideoDB }

func (s querySource) NumOGs() int       { return len(s.db.ogs) }
func (s querySource) OG(i int) *strg.OG { return s.db.ogs[i] }

func (s querySource) SpatialStats() (rtree.Box, int, bool) {
	if s.db.traj == nil {
		return rtree.Box{}, 0, false
	}
	b, ok := s.db.traj.tree.Bounds()
	return b, s.db.traj.tree.Len(), ok
}

func (s querySource) SpatialCandidates(b rtree.Box) ([]int, int, bool) {
	if s.db.traj == nil {
		return nil, 0, false
	}
	ids, visited := s.db.traj.candidates(b)
	return ids, visited, true
}

func (s querySource) DistanceUB(q dist.Sequence, i int, ub float64) (float64, bool) {
	return s.db.tree.Cascade().DistanceUB(q, s.db.ogs[i].Sequence(), ub)
}

// ApproxStats implements query.ApproxSource: the planner reads the tier's
// IVF geometry to resolve probe counts and fill the plan envelope.
func (s querySource) ApproxStats() (nlists, defaultNProbe int, ok bool) {
	if s.db.vec == nil {
		return 0, 0, false
	}
	nlists, defaultNProbe = s.db.ApproxLists()
	return nlists, defaultNProbe, true
}

// QueryResult is one executed declarative query: the matches plus the
// plan that produced them and its per-stage accounting. For a plan routed
// through the STRG-Index (pure similarity) Search carries the
// filter-and-refine accounting; planner-executed plans report per-stage
// candidate counts in Stages instead.
type QueryResult struct {
	Matches []Match
	Search  index.SearchStats
	Plan    query.Plan
	Stages  []query.StageStat
	// Approx carries the approximate tier's probe accounting (nil for
	// every other strategy).
	Approx *ApproxInfo
	// Total counts matches before Limit truncation; Limit echoes the
	// effective cap (0 = none).
	Total     int
	Truncated bool
	Limit     int
}

// QueryComposed is QueryComposedCtx without cancellation.
func (db *VideoDB) QueryComposed(q *query.Query) (*QueryResult, error) {
	return db.QueryComposedCtx(context.Background(), q)
}

// QueryComposedCtx plans and executes one declarative query: a pure
// similarity query routes to the STRG-Index lower-bound cascade
// (byte-identical to the QueryTrajectory*/QueryRange surfaces); anything
// with a where tree runs the cost-based planner, probing the trajectory
// R-tree when a selective spatial/temporal conjunct makes that cheaper
// than a scan. Plans never change answers — only the work done.
func (db *VideoDB) QueryComposedCtx(ctx context.Context, q *query.Query) (*QueryResult, error) {
	if err := query.Validate(q); err != nil {
		return nil, err
	}
	src := querySource{db: db}
	p := query.BuildPlan(q, src)

	if p.Strategy == query.StrategyApprox {
		if db.vec == nil {
			return nil, fmt.Errorf("query: mode %q: %w", query.ModeApprox, ErrApproxDisabled)
		}
		query.ObservePlan(p)
		c := q.Similar
		ms, st, info, err := db.QueryTrajectoryApproxStatsCtx(ctx, c.Trajectory, c.K, p.NProbe)
		if err != nil {
			return nil, err
		}
		res := &QueryResult{Matches: ms, Search: st, Plan: p, Approx: info, Total: len(ms), Limit: q.Limit}
		if q.Limit > 0 && len(ms) > q.Limit {
			res.Matches = ms[:q.Limit]
			res.Truncated = true
		}
		return res, nil
	}

	if p.Strategy == query.StrategyIndex {
		query.ObservePlan(p)
		c := q.Similar
		var ms []Match
		var st index.SearchStats
		var err error
		switch {
		case c.Radius > 0:
			ms, st, err = db.QueryRangeStatsCtx(ctx, c.Trajectory, c.Radius)
		case c.Exact:
			ms, st, err = db.QueryTrajectoryExactStatsCtx(ctx, c.Trajectory, c.K)
		default:
			ms, st, err = db.QueryTrajectoryStatsCtx(ctx, c.Trajectory, c.K)
		}
		if err != nil {
			return nil, err
		}
		res := &QueryResult{Matches: ms, Search: st, Plan: p, Total: len(ms), Limit: q.Limit}
		if q.Limit > 0 && len(ms) > q.Limit {
			res.Matches = ms[:q.Limit]
			res.Truncated = true
		}
		return res, nil
	}

	start := time.Now()
	er, err := query.Execute(ctx, src, q, p)
	if err != nil {
		return nil, err
	}
	if q.Similar == nil {
		querySelectSeconds.Observe(time.Since(start).Seconds())
	} else {
		queryComposedSeconds.Observe(time.Since(start).Seconds())
	}
	res := &QueryResult{
		Plan:      p,
		Stages:    er.Stages,
		Total:     er.Total,
		Truncated: er.Truncated,
		Limit:     q.Limit,
		Matches:   make([]Match, len(er.Indices)),
	}
	for i, id := range er.Indices {
		res.Matches[i] = Match{Record: db.records[id]}
		if er.Ranked != nil {
			res.Matches[i].Distance = er.Ranked[i].Distance
		}
	}
	return res, nil
}

// CheckSpatialIndex cross-checks the trajectory R-tree against the
// retained OGs: structural invariants, full coverage (every OG with
// samples is reachable through a whole-bounds probe) and no phantoms.
// The golden and soak harnesses call it after every mutation batch.
func (db *VideoDB) CheckSpatialIndex() error {
	if db.traj == nil {
		return nil
	}
	if err := db.traj.tree.CheckInvariants(); err != nil {
		return err
	}
	bounds, ok := db.traj.tree.Bounds()
	if !ok {
		if len(db.ogs) > 0 {
			for i, og := range db.ogs {
				if og.Len() > 0 {
					return fmt.Errorf("core: spatial index empty but OG %d has %d samples", i, og.Len())
				}
			}
		}
		return nil
	}
	ids, _ := db.traj.candidates(bounds)
	want := 0
	for _, og := range db.ogs {
		if og.Len() > 0 {
			want++
		}
	}
	if len(ids) != want {
		return fmt.Errorf("core: spatial index covers %d OGs, want %d", len(ids), want)
	}
	for _, id := range ids {
		if id < 0 || id >= len(db.ogs) {
			return fmt.Errorf("core: spatial index holds phantom OG %d (have %d)", id, len(db.ogs))
		}
	}
	return nil
}
