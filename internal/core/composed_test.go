package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/query"
)

// composedDB ingests one deterministic lab stream (the same corpus the
// legacy Select tests use) into a database with the trajectory index on.
func composedDB(t *testing.T, mut func(*Config)) *VideoDB {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	db := Open(cfg)
	if err := db.IngestStream(miniStream(t, 14, 31)); err != nil {
		t.Fatal(err)
	}
	return db
}

// composed runs one declarative query and fails the test on error.
func composed(t *testing.T, db *VideoDB, q *query.Query) *QueryResult {
	t.Helper()
	res, err := db.QueryComposed(q)
	if err != nil {
		t.Fatalf("QueryComposed: %v", err)
	}
	return res
}

// TestQueryComposedMatchesLegacySelect: for every where-tree shape, the
// planner-executed query must return exactly what the legacy predicate
// scan returns — same records, same ingest order. The planner only
// changes how much work is done, never the answer.
func TestQueryComposedMatchesLegacySelect(t *testing.T) {
	db := composedDB(t, nil)
	if err := db.CheckSpatialIndex(); err != nil {
		t.Fatal(err)
	}
	center := geom.Rect{Min: geom.Pt(140, 0), Max: geom.Pt(180, 240)}
	corner := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(60, 60)}
	cases := []struct {
		name   string
		where  query.Node
		legacy query.Predicate
	}{
		{"passes", query.SpatialNode{Kind: query.SpatialPasses, Rect: center},
			query.PassesThrough(center)},
		{"starts", query.SpatialNode{Kind: query.SpatialStarts, Rect: corner},
			query.StartsIn(corner)},
		{"ends", query.SpatialNode{Kind: query.SpatialEnds, Rect: corner},
			query.EndsIn(corner)},
		{"within", query.WithinNode{Rect: center, From: 0, To: 40},
			query.WithinDuring(center, 0, 40)},
		{"during", query.DuringNode{From: 10, To: 40},
			query.During(10, 40)},
		{"speed", query.SpeedNode{Lo: 2, Hi: math.Inf(1)},
			query.SpeedBetween(2, math.Inf(1))},
		{"u-turn", query.UTurnNode{MinTurn: math.Pi * 0.8},
			query.TurnsBy(math.Pi * 0.8)},
		{"not", query.NotNode{Child: query.SpatialNode{Kind: query.SpatialPasses, Rect: center}},
			query.Not(query.PassesThrough(center))},
		{"composed", query.AndNode{Children: []query.Node{
			query.SpatialNode{Kind: query.SpatialPasses, Rect: center},
			query.OrNode{Children: []query.Node{
				query.HeadingNode{Dir: "east", Angle: 0, Tol: 0.4},
				query.HeadingNode{Dir: "west", Angle: math.Pi, Tol: 0.4},
			}},
		}}, query.And(
			query.PassesThrough(center),
			query.Or(query.Eastbound(0.4), query.Westbound(0.4)),
		)},
	}
	for _, c := range cases {
		res := composed(t, db, &query.Query{Where: c.where})
		want := db.Select(c.legacy)
		if !reflect.DeepEqual(res.Matches, want) {
			t.Errorf("%s (%s plan): %d matches, legacy Select %d",
				c.name, res.Plan.Strategy, len(res.Matches), len(want))
		}
		if res.Total != len(want) || res.Truncated {
			t.Errorf("%s: total %d truncated %v, want %d false",
				c.name, res.Total, res.Truncated, len(want))
		}
	}
}

// TestQueryComposedPrunesCandidates is the fix for the select full-scan:
// a selective spatial query must route through the trajectory R-tree and
// hand the residual filter strictly fewer candidates than a full scan
// would examine — while still returning the full scan's exact answer.
func TestQueryComposedPrunesCandidates(t *testing.T) {
	db := composedDB(t, nil)
	scanDB := composedDB(t, func(c *Config) { c.DisableTrajIndex = true })

	q := &query.Query{Where: query.SpatialNode{
		Kind: query.SpatialPasses,
		Rect: geom.Rect{Min: geom.Pt(5, 5), Max: geom.Pt(25, 25)},
	}}
	res := composed(t, db, q)
	if res.Plan.Strategy != query.StrategyRTree {
		t.Fatalf("strategy = %s (sel=%g scan=%g rtree=%g), want rtree",
			res.Plan.Strategy, res.Plan.EstSelectivity, res.Plan.CostScan, res.Plan.CostRTree)
	}
	total := db.Stats().OGs
	var filterIn = -1
	for _, st := range res.Stages {
		if st.Name == "filter" {
			filterIn = st.In
		}
	}
	if filterIn < 0 {
		t.Fatalf("no filter stage in %v", res.Stages)
	}
	if filterIn >= total {
		t.Errorf("filter examined %d candidates, no better than scanning all %d OGs", filterIn, total)
	}

	scanRes := composed(t, scanDB, q)
	if scanRes.Plan.Strategy != query.StrategyScan {
		t.Fatalf("DisableTrajIndex plan = %s, want scan", scanRes.Plan.Strategy)
	}
	if !reflect.DeepEqual(res.Matches, scanRes.Matches) {
		t.Errorf("pruned plan returned %d matches, full scan %d — answers must not depend on the index",
			len(res.Matches), len(scanRes.Matches))
	}
}

// TestQueryComposedPureSimilarByteIdentity: a query with no where tree
// must route to the STRG-Index and produce byte-identical matches AND
// byte-identical search accounting to the dedicated legacy surfaces.
func TestQueryComposedPureSimilarByteIdentity(t *testing.T) {
	db := composedDB(t, nil)
	traj := dist.Sequence{{16, 120}, {46, 120}, {76, 120}, {106, 120}}
	cases := []struct {
		name string
		sim  query.SimilarClause
	}{
		{"knn", query.SimilarClause{Trajectory: traj, K: 5}},
		{"knn-exact", query.SimilarClause{Trajectory: traj, K: 5, Exact: true}},
		{"range", query.SimilarClause{Trajectory: traj, Radius: 950}},
	}
	for _, c := range cases {
		sim := c.sim
		res := composed(t, db, &query.Query{Similar: &sim})
		if res.Plan.Strategy != query.StrategyIndex {
			t.Fatalf("%s: strategy = %s, want index", c.name, res.Plan.Strategy)
		}
		var want []Match
		var wantStats any
		switch {
		case sim.Radius > 0:
			m, st, err := db.QueryRangeStatsCtx(t.Context(), traj, sim.Radius)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats = m, st
		case sim.Exact:
			m, st, err := db.QueryTrajectoryExactStatsCtx(t.Context(), traj, sim.K)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats = m, st
		default:
			m, st, err := db.QueryTrajectoryStatsCtx(t.Context(), traj, sim.K)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats = m, st
		}
		if !reflect.DeepEqual(res.Matches, want) {
			t.Errorf("%s: composed matches differ from the legacy surface", c.name)
		}
		if !reflect.DeepEqual(res.Search, wantStats) {
			t.Errorf("%s: SearchStats %+v, legacy %+v", c.name, res.Search, wantStats)
		}
	}
}

// TestQueryComposedLimitOnIndexPath: the limit truncates index-routed
// answers after Total is counted, exactly like planner-executed ones.
func TestQueryComposedLimitOnIndexPath(t *testing.T) {
	db := composedDB(t, nil)
	traj := dist.Sequence{{16, 120}, {106, 120}}
	res := composed(t, db, &query.Query{
		Similar: &query.SimilarClause{Trajectory: traj, K: 5},
		Limit:   2,
	})
	if len(res.Matches) != 2 || res.Total != 5 || !res.Truncated {
		t.Errorf("got %d/%d truncated=%v, want 2/5 true", len(res.Matches), res.Total, res.Truncated)
	}
}

// TestQueryComposedSurvivesSaveLoad: a Save/Load round trip must keep
// predicate queries working — the snapshot carries the retained OGs and
// clip records, and Load rebuilds the trajectory R-tree from them, so a
// loaded database answers (and plans) exactly like the one that was
// saved. Regression test: the image used to drop ogs/records, so every
// where query against a loaded database silently scanned nothing.
func TestQueryComposedSurvivesSaveLoad(t *testing.T) {
	db := composedDB(t, nil)
	rect := geom.Rect{Min: geom.Pt(140, 0), Max: geom.Pt(180, 240)}
	q := &query.Query{Where: query.SpatialNode{Kind: query.SpatialPasses, Rect: rect}}
	want := composed(t, db, q)
	if len(want.Matches) == 0 {
		t.Fatal("seed query matched nothing; test rect misses the corpus")
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := Load(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := re.CheckSpatialIndex(); err != nil {
		t.Fatalf("spatial index after load: %v", err)
	}
	got := composed(t, re, q)
	if got.Plan.Strategy != want.Plan.Strategy {
		t.Errorf("plan after load = %s, before = %s", got.Plan.Strategy, want.Plan.Strategy)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Errorf("loaded db returned %d matches, original %d", len(got.Matches), len(want.Matches))
	}

	legacy := re.Select(query.PassesThrough(rect))
	if !reflect.DeepEqual(db.Select(query.PassesThrough(rect)), legacy) {
		t.Error("legacy Select differs across the save/load round trip")
	}
}

// TestCheckSpatialIndexDetectsCorruption: the auditor must actually
// catch a phantom entry, not just bless healthy trees.
func TestCheckSpatialIndexDetectsCorruption(t *testing.T) {
	db := composedDB(t, nil)
	if err := db.CheckSpatialIndex(); err != nil {
		t.Fatalf("healthy index rejected: %v", err)
	}
	db.traj.insert(len(db.ogs)+7, db.ogs[0])
	if err := db.CheckSpatialIndex(); err == nil {
		t.Error("phantom OG entry went undetected")
	}
}
