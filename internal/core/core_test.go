package core

import (
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// miniStream generates a small lab-style stream for fast end-to-end tests.
func miniStream(t *testing.T, n int, seed int64) *video.Stream {
	t.Helper()
	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: n, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	s, err := video.GenerateStream(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIngestAndStats(t *testing.T) {
	db := Open(DefaultConfig())
	stream := miniStream(t, 12, 1)
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Segments != len(stream.Segments) {
		t.Errorf("Segments = %d, want %d", st.Segments, len(stream.Segments))
	}
	// Tracking may fragment an object under jitter, but the OG count must
	// be in the right ballpark: at least one OG per generated object's
	// segment and not wildly more.
	if st.OGs < 8 || st.OGs > 3*12 {
		t.Errorf("OGs = %d, want within [8, 36] for 12 objects", st.OGs)
	}
	if st.Roots < 1 {
		t.Error("no root records")
	}
	if st.Clusters < 1 {
		t.Error("no cluster records")
	}
	// The headline size claim: index is far smaller than the raw STRG and
	// smaller than the per-frame-background STRG form (Equation 9 vs 10).
	if st.IndexBytes <= 0 || st.STRGBytes <= 0 || st.RawSTRGBytes <= 0 {
		t.Fatalf("degenerate sizes: %+v", st)
	}
	if st.IndexBytes*5 > st.STRGBytes {
		t.Errorf("index %d bytes not well below STRG %d bytes", st.IndexBytes, st.STRGBytes)
	}
	if err := db.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryTrajectory(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 16, 2)); err != nil {
		t.Fatal(err)
	}
	// Query with an eastbound mid-field trajectory.
	q := make(dist.Sequence, 12)
	for i := range q {
		x := 16 + float64(i)*(288.0/11.0)
		q[i] = dist.Vec{x, 120}
	}
	got := db.QueryTrajectory(q, 3)
	if len(got) == 0 {
		t.Fatal("no matches")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Error("matches not sorted by distance")
		}
	}
	if got[0].Record.Clip.Stream != "Mini" {
		t.Errorf("clip stream = %q, want Mini", got[0].Record.Clip.Stream)
	}
	exact := db.QueryTrajectoryExact(q, 3)
	if len(exact) != 3 {
		t.Fatalf("exact returned %d", len(exact))
	}
	if exact[0].Distance > got[0].Distance+1e-9 {
		t.Error("exact nearest worse than approximate nearest")
	}
}

func TestQueryRange(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 10, 3)); err != nil {
		t.Fatal(err)
	}
	all := db.QueryRange(dist.Sequence{{160, 120}}, 1e9)
	if len(all) != db.Stats().OGs {
		t.Errorf("huge-radius range returned %d, want all %d", len(all), db.Stats().OGs)
	}
	none := db.QueryRange(dist.Sequence{{160, 120}}, 1e-6)
	if len(none) != 0 {
		t.Errorf("tiny-radius range returned %d", len(none))
	}
}

func TestQuerySegment(t *testing.T) {
	db := Open(DefaultConfig())
	if err := db.IngestStream(miniStream(t, 12, 4)); err != nil {
		t.Fatal(err)
	}
	// Build a fresh query segment with one eastbound walker.
	cfg := video.SceneConfig{
		Name: "query", Width: 320, Height: 240, FPS: 12, Frames: 16,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8, Seed: 99,
		Objects: []video.ObjectSpec{{
			Label: "q",
			Parts: []video.PartSpec{
				{Offset: geom.Vec(0, -16), Size: 100, Color: graph.Color{R: 0.85, G: 0.68, B: 0.55}},
				{Offset: geom.Vec(0, 0), Size: 350, Color: graph.Color{R: 0.5, G: 0.25, B: 0.5}},
				{Offset: geom.Vec(0, 17), Size: 250, Color: graph.Color{R: 0.2, G: 0.22, B: 0.28}},
			},
			Path:  []geom.Point{geom.Pt(20, 120), geom.Pt(300, 120)},
			Start: 0, End: 16,
		}},
	}
	qseg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := db.QuerySegment(qseg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("query segment produced no OGs")
	}
	for _, perOG := range matches {
		if len(perOG) == 0 {
			t.Error("an extracted query OG matched nothing")
		}
	}
}

func TestIngestEmptySegmentFails(t *testing.T) {
	db := Open(DefaultConfig())
	if _, err := db.IngestSegment("x", &video.Segment{}); err == nil {
		t.Error("ingesting empty segment did not error")
	}
}

func TestOpenZeroConfigUsesDefaults(t *testing.T) {
	db := Open(Config{})
	if err := db.IngestStream(miniStream(t, 4, 5)); err != nil {
		t.Fatal(err)
	}
	if db.Stats().OGs == 0 {
		t.Error("zero-config database indexed nothing")
	}
}

func TestQuerySegmentErrors(t *testing.T) {
	db := Open(DefaultConfig())
	if _, err := db.QuerySegment(&video.Segment{}, 3); err == nil {
		t.Error("QuerySegment on empty segment did not error")
	}
}

func TestIngestStreamPropagatesErrors(t *testing.T) {
	db := Open(DefaultConfig())
	bad := &video.Stream{Segments: []*video.Segment{{}}}
	if err := db.IngestStream(bad); err == nil {
		t.Error("IngestStream with empty segment did not error")
	}
}

func TestStatsOnEmptyDatabase(t *testing.T) {
	db := Open(DefaultConfig())
	st := db.Stats()
	if st.OGs != 0 || st.Segments != 0 || st.Roots != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	if got := db.QueryTrajectory(dist.Sequence{{1, 1}}, 3); len(got) != 0 {
		t.Errorf("query on empty db = %v", got)
	}
	if got := db.OGs(); len(got) != 0 {
		t.Errorf("OGs on empty db = %d", len(got))
	}
}
