package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/embed"
	"strgindex/internal/index"
	"strgindex/internal/obs"
	"strgindex/internal/strg"
)

// The approximate similarity tier: a deterministic 20-dim embedding per
// indexed Object Graph, organized in an IVF-flat vector index (see
// internal/embed). A query probes the nprobe nearest inverted lists,
// takes every member of every probed list as a candidate, and reranks the
// candidates with the exact EGED_M cascade — the same LBQuick /
// LBEnvelope / early-abandoning DP pipeline the tree search runs, with
// the same SearchStats accounting. Returned distances are therefore
// exact; only the candidate set is approximate. Probing every list
// degenerates to an exact scan, so recall is 1.0 by construction at
// nprobe >= NLists and monotone below it.
//
// The tier is strictly opt-in: it never changes the default query paths,
// and it is only consulted by QueryTrajectoryApprox* (or a declarative
// query that says `"mode": "approx"`).

// ApproxConfig enables and parameterizes the approximate similarity tier.
type ApproxConfig struct {
	// Enabled builds the tier at Open: every ingested OG is embedded and
	// added to the IVF index. Off by default — the tier costs ~Dim
	// float32s per OG plus the cached rerank summaries.
	Enabled bool
	// NLists is the number of IVF inverted lists (coarse k-means
	// centroids). Zero means the embed package default (64). Scale with
	// the corpus: ~sqrt(N) to a few multiples of it.
	NLists int
	// NProbe is the default probe count for queries that do not specify
	// one. Zero means ceil(sqrt(NLists)).
	NProbe int
	// TrainSize is the number of vectors buffered before the one-shot
	// k-means training. Zero means 64·NLists. Until trained, the index
	// is a single flat list and probing it is exact.
	TrainSize int
	// KMeansIters and TrainAttempts tune the one-shot training (zero
	// means the embed defaults: 6 Lloyd iterations, best of 3 seedings).
	KMeansIters   int
	TrainAttempts int
	// Seed drives the k-means++ seeding; the same seed and ingest order
	// always produce the same index.
	Seed int64
}

// ErrApproxDisabled is returned (wrapped) by every approximate-tier entry
// point when the database was opened without Config.Approx.Enabled. The
// HTTP layer maps it to a 400 with a stable error code, not a 500: asking
// for a tier that is switched off is a client error.
var ErrApproxDisabled = errors.New("core: approximate similarity tier disabled (set Config.Approx.Enabled)")

// vecTier is the per-database state of the approximate tier: the IVF
// index over the OG embeddings plus per-ordinal caches of what the exact
// rerank needs (og.Sequence() allocates per call; the cascade summary is
// pure precomputation).
type vecTier struct {
	ivf  *embed.IVF
	seqs []dist.Sequence
	sums []dist.Summary
	// mirror[l] carries list l's members' summaries and end elements in
	// the IVF's member order, pendMirror the untrained flat buffer's. The
	// rerank's admissible quick bound reads these flat arrays instead of
	// chasing seqs[ord] per candidate — list members are scattered across
	// the ordinal space, and the pointer chase dominated rerank cost.
	mirror     [][]lbRec
	pendMirror []lbRec
}

// lbRec is one candidate's compact lower-bound state (dist.CompactLBer).
type lbRec struct {
	sum         dist.Summary
	first, last dist.Vec
}

func makeLBRec(seq dist.Sequence, sum dist.Summary) lbRec {
	r := lbRec{sum: sum}
	if len(seq) > 0 {
		r.first, r.last = seq[0], seq[len(seq)-1]
	}
	return r
}

func newVecTier(cfg ApproxConfig) *vecTier {
	return &vecTier{ivf: embed.NewIVF(embed.Config{
		NLists:        cfg.NLists,
		TrainSize:     cfg.TrainSize,
		KMeansIters:   cfg.KMeansIters,
		TrainAttempts: cfg.TrainAttempts,
		Seed:          cfg.Seed,
	})}
}

// insert embeds one OG under its ingest ordinal. Embed is a pure function
// of the attribute sequence, so the tier is identical across worker
// counts, shard counts and rebuilds.
func (vt *vecTier) insert(id int, og *strg.OG, cas dist.Cascade) {
	seq := og.Sequence()
	sum := cas.Summarize(seq)
	vt.seqs = append(vt.seqs, seq)
	vt.sums = append(vt.sums, sum)
	list, retrained := vt.ivf.Add(int32(id), embed.Embed(seq))
	switch {
	case retrained:
		vt.rebuildMirror()
	case list < 0:
		vt.pendMirror = append(vt.pendMirror, makeLBRec(seq, sum))
	default:
		vt.mirror[list] = append(vt.mirror[list], makeLBRec(seq, sum))
	}
}

// rebuildMirror re-derives the per-list compact LB arrays from the IVF's
// current member order — after training redistributes the flat buffer,
// or after a snapshot load.
func (vt *vecTier) rebuildMirror() {
	vt.pendMirror = nil
	vt.mirror = make([][]lbRec, vt.ivf.NLists())
	vt.ivf.VisitLists(func(list int, ids []int32) {
		recs := make([]lbRec, len(ids))
		for i, id := range ids {
			ord := int(id)
			recs[i] = makeLBRec(vt.seqs[ord], vt.sums[ord])
		}
		if list < 0 {
			vt.pendMirror = recs
			return
		}
		vt.mirror[list] = recs
	})
}

// ApproxInfo reports what one approximate query did, alongside the exact
// SearchStats of its rerank.
type ApproxInfo struct {
	// NProbe is the effective probe count (after defaulting and clamping
	// to Lists); Probed is the number of lists actually visited (fewer
	// than NProbe only when the index holds fewer lists).
	NProbe int
	Lists  int
	Probed int
	// Candidates is the number of OGs the probed lists yielded — each
	// entered the exact rerank cascade (== SearchStats.Records).
	Candidates int
	// RecallProxy estimates convergence without ground truth: the
	// fraction of the final answers NOT contributed by the last probed
	// list (1 when every list was probed — provably exact). A low value
	// means the frontier was still moving when probing stopped; raise
	// nprobe.
	RecallProxy float64
}

// defaultNProbe resolves the probe count for queries that do not name one.
func (db *VideoDB) defaultNProbe() int {
	if db.cfg.Approx.NProbe > 0 {
		return db.cfg.Approx.NProbe
	}
	return int(math.Ceil(math.Sqrt(float64(db.vec.ivf.NLists()))))
}

// ApproxEnabled reports whether the approximate tier is available.
func (db *VideoDB) ApproxEnabled() bool { return db.vec != nil }

// ApproxLists returns the tier's inverted-list count and default probe
// count (0, 0 when the tier is disabled). The planner's cost model reads
// these through the query.ApproxSource interface.
func (db *VideoDB) ApproxLists() (nlists, defaultNProbe int) {
	if db.vec == nil {
		return 0, 0
	}
	return db.vec.ivf.NLists(), db.defaultNProbe()
}

// QueryTrajectoryApprox is QueryTrajectoryApproxStatsCtx without
// cancellation or accounting. nprobe <= 0 selects the configured default.
func (db *VideoDB) QueryTrajectoryApprox(seq dist.Sequence, k, nprobe int) ([]Match, error) {
	ms, _, _, err := db.QueryTrajectoryApproxStatsCtx(context.Background(), seq, k, nprobe)
	return ms, err
}

// QueryTrajectoryApproxStatsCtx answers a k-NN query through the
// approximate tier: embed the query, probe the nprobe nearest IVF lists,
// rerank every candidate with the exact EGED_M cascade. Distances in the
// result are exact; results are ordered by (distance, OGID). The returned
// SearchStats follow the tree-search invariant — Records == CacheHits +
// LBQuickPruned + LBEnvelopePruned + DPEvaluated + DPAbandoned — with
// CandidateLeaves = total lists and ScannedLeaves = lists probed.
func (db *VideoDB) QueryTrajectoryApproxStatsCtx(ctx context.Context, seq dist.Sequence, k, nprobe int) ([]Match, index.SearchStats, *ApproxInfo, error) {
	var st index.SearchStats
	if db.vec == nil {
		return nil, st, nil, ErrApproxDisabled
	}
	start := time.Now()
	vt := db.vec
	info := &ApproxInfo{Lists: vt.ivf.NLists()}
	if nprobe <= 0 {
		nprobe = db.defaultNProbe()
	}
	if nprobe > info.Lists {
		nprobe = info.Lists
	}
	info.NProbe = nprobe
	st.CandidateLeaves = info.Lists
	if k <= 0 || vt.ivf.Len() == 0 {
		info.RecallProxy = 1
		return nil, st, info, nil
	}

	cas := db.tree.Cascade()
	qsum := cas.Summarize(seq)
	qv := embed.Embed(seq)

	// best holds the running top-k ordered by (distance, OGID) — the
	// deterministic tie-break the contract tests pin down.
	type hit struct {
		ord  int
		d    float64
		rank int // probe rank of the contributing list (recall proxy)
	}
	best := make([]hit, 0, k)
	push := func(h hit) {
		i := sort.Search(len(best), func(i int) bool {
			if best[i].d != h.d {
				return best[i].d > h.d
			}
			return best[i].ord > h.ord
		})
		if i == k {
			return
		}
		best = append(best, hit{})
		copy(best[i+1:], best[i:])
		best[i] = h
		if len(best) > k {
			best = best[:k]
		}
	}

	// The quick bound reads the per-list compact mirror (sequential
	// memory) when the cascade supports it; prune decisions are
	// bit-identical to the seqs/sums path either way.
	compact, hasCompact := cas.(dist.CompactLBer)

	rerankStart := time.Now()
	var ctxErr error
	rank := 0
	vt.ivf.Probe(qv, nprobe, func(list int, ids []int32) {
		if ctxErr != nil {
			return
		}
		recs := vt.pendMirror
		if list >= 0 {
			recs = vt.mirror[list]
		}
		for i, id := range ids {
			if st.Records&0xff == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return
				}
			}
			st.Records++
			ord := int(id)
			ub := math.Inf(1)
			if len(best) == k {
				ub = best[k-1].d
				if hasCompact {
					r := &recs[i]
					if compact.LBQuickCompact(seq, qsum, r.first, r.last, r.sum) > ub {
						st.LBQuickPruned++
						continue
					}
					if cas.LBEnvelope(seq, r.sum) > ub {
						st.LBEnvelopePruned++
						continue
					}
				} else {
					if cas.LBQuick(seq, vt.seqs[ord], qsum, vt.sums[ord]) > ub {
						st.LBQuickPruned++
						continue
					}
					if cas.LBEnvelope(seq, vt.sums[ord]) > ub {
						st.LBEnvelopePruned++
						continue
					}
				}
			}
			d, abandoned := cas.DistanceUB(seq, vt.seqs[ord], ub)
			if abandoned {
				st.DPAbandoned++
				continue
			}
			st.DPEvaluated++
			push(hit{ord: ord, d: d, rank: rank})
		}
		rank++
	})
	if ctxErr != nil {
		return nil, st, nil, ctxErr
	}
	st.ScannedLeaves = rank
	info.Probed = rank
	info.Candidates = st.Records

	ms := make([]Match, len(best))
	fromLast := 0
	for i, h := range best {
		ms[i] = Match{Record: db.records[h.ord], Distance: h.d}
		if h.rank == rank-1 {
			fromLast++
		}
	}
	info.RecallProxy = 1
	if rank < info.Lists && len(best) > 0 {
		info.RecallProxy = 1 - float64(fromLast)/float64(len(best))
	}

	approxQueries.Inc()
	approxProbedLists.Add(int64(rank))
	approxCandidates.Add(int64(st.Records))
	approxRerankSeconds.Observe(time.Since(rerankStart).Seconds())
	approxRecallProxy.Observe(info.RecallProxy)
	queryApproxSeconds.Observe(time.Since(start).Seconds())
	return ms, st, info, nil
}

// IngestTrajectories bulk-loads pre-decomposed Object Graphs under one
// stream name, bypassing the video pipeline (RAG construction, tracking,
// decomposition) — the load path of the million-OG experiment grid, fed
// by synth.AsOG. One call commits as one segment on the root a nil
// background resolves to; large corpora should arrive in batches of a few
// tens of thousands so the copy-on-write commit granularity stays
// reasonable. Not supported on durable databases: raw OGs have no
// write-ahead representation.
func (db *VideoDB) IngestTrajectories(stream string, ogs []*strg.OG) error {
	if db.onCommit != nil {
		return fmt.Errorf("core: IngestTrajectories is not supported on a durable database (no WAL record for raw OGs)")
	}
	if len(ogs) == 0 {
		return nil
	}
	shard := db.tree.RouteShard(nil)
	items := make([]index.Item[ClipRecord], len(ogs))
	for i, og := range ogs {
		clip := og.Clip
		clip.Stream = stream
		items[i] = index.Item[ClipRecord]{
			Seq: og.Sequence(),
			Payload: ClipRecord{
				Stream: stream,
				Clip:   clip,
				Label:  og.Label,
				OGID:   db.ogCount + i,
			},
		}
	}
	if err := db.tree.AddSegment(nil, items); err != nil {
		return fmt.Errorf("core: bulk-indexing %d trajectories: %w", len(ogs), err)
	}
	if db.cache != nil {
		db.cache.BumpShard(uint32(shard))
	}
	for i, og := range ogs {
		if db.traj != nil {
			db.traj.insert(len(db.ogs), og)
		}
		if db.vec != nil {
			db.vec.insert(len(db.ogs), og, db.tree.Cascade())
		}
		db.ogs = append(db.ogs, og)
		db.records = append(db.records, items[i].Payload)
	}
	db.segments++
	db.ogCount += len(ogs)
	ingestSegments.Inc()
	ingestOGs.Add(int64(len(ogs)))
	return nil
}

// Approximate-tier instrumentation.
//
//	strg_query_seconds{kind="knn_approx"}  end-to-end approximate query time
//	strg_approx_queries_total              approximate queries answered
//	strg_approx_probed_lists_total         IVF lists visited
//	strg_approx_candidates_total           candidates reranked by the cascade
//	strg_approx_rerank_seconds             probe + exact rerank duration
//	strg_approx_recall_proxy               per-query convergence proxy
var (
	queryApproxSeconds = obs.Default.Histogram("strg_query_seconds",
		"database query duration in seconds, by kind", obs.Labels{"kind": "knn_approx"}, nil)
	approxQueries = obs.Default.Counter("strg_approx_queries_total",
		"approximate similarity queries answered", nil)
	approxProbedLists = obs.Default.Counter("strg_approx_probed_lists_total",
		"IVF inverted lists visited by approximate queries", nil)
	approxCandidates = obs.Default.Counter("strg_approx_candidates_total",
		"candidate OGs reranked by the exact cascade", nil)
	approxRerankSeconds = obs.Default.Histogram("strg_approx_rerank_seconds",
		"IVF probe plus exact rerank duration in seconds", nil, nil)
	approxRecallProxy = obs.Default.Histogram("strg_approx_recall_proxy",
		"fraction of final answers not contributed by the last probed list",
		nil, []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99})
)
