package core

import (
	"sync"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/video"
)

// TestSharedDBConcurrentSearchDuringIngest hammers a SharedDB with
// similarity queries from several goroutines while another goroutine
// ingests segments — the live deployment shape (one camera writer, many
// query readers). Run under -race (the Makefile's test-race target) this
// proves the read/write locking composes with the worker pools inside
// search and ingest: pool goroutines must never outlive the lock scope
// that spawned them.
func TestSharedDBConcurrentSearchDuringIngest(t *testing.T) {
	prof := video.StreamProfiles()[0]
	prof.NumObjects = 6
	stream, err := video.GenerateStream(prof, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.Segments) < 2 {
		t.Fatalf("stream too short: %d segments", len(stream.Segments))
	}

	cfg := DefaultConfig()
	cfg.Concurrency = 4
	db := OpenShared(cfg)
	// Seed the index so queries have something to hit from the start.
	if _, err := db.IngestSegment(prof.Name, stream.Segments[0]); err != nil {
		t.Fatal(err)
	}

	q := dist.Sequence{{10, 10}, {30, 30}, {50, 50}, {70, 70}}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch (g + i) % 3 {
				case 0:
					db.QueryTrajectory(q, 3)
				case 1:
					db.QueryTrajectoryExact(q, 3)
				default:
					db.QueryRange(q, 200)
				}
			}
		}(g)
	}
	for _, seg := range stream.Segments[1:] {
		if _, err := db.IngestSegment(prof.Name, seg); err != nil {
			close(done)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	st := db.Stats()
	if st.Segments != len(stream.Segments) {
		t.Fatalf("ingested %d segments, want %d", st.Segments, len(stream.Segments))
	}
	if st.OGs == 0 {
		t.Fatal("no OGs indexed")
	}
}
