package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"strgindex/internal/embed"
	"strgindex/internal/faultfs"
	"strgindex/internal/index"
	"strgindex/internal/strg"
)

// Snapshot container format. A saved database is
//
//	[8]byte magic "STRGSNP\x01" | uint32 LE version | gob payload |
//	uint64 LE payload length | uint32 LE CRC32C(payload)
//
// The trailer makes truncation detectable (the length never matches) and
// the checksum makes bit rot detectable; Load refuses both with a
// *CorruptError instead of handing gob a poisoned stream.
var snapshotMagic = [8]byte{'S', 'T', 'R', 'G', 'S', 'N', 'P', 1}

const (
	// snapshotVersion is the version stamped into new snapshots. Version
	// 2 added the packed columnar encoding of leaf sequences
	// (index.ClusterSnapshot.ColData/ColLens/ColDim); version 1 files —
	// per-record nested Seqs — still load, since gob tolerates the absent
	// fields and the index restore accepts either encoding. Version 3
	// added the optional approximate-tier vector index (dbImage.Vec);
	// older files load with Vec nil and the tier — when enabled — is
	// rebuilt from the retained OGs, bit-identically (the embedding and
	// the one-shot IVF training are both deterministic in ingest order).
	snapshotVersion     = 3
	snapshotMinVersion  = 1
	snapshotHeaderSize  = 12 // magic + version
	snapshotTrailerSize = 12 // payload length + CRC32C
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel matched (via errors.Is) by every error Load
// reports for a damaged database file: truncation, bad magic, checksum
// mismatch, or an undecodable payload. A file that fails this way must be
// restored from a snapshot or rebuilt by re-ingesting; see the recovery
// runbook in the README.
var ErrCorrupt = errors.New("core: corrupt database file")

// CorruptError carries where and why a database file was rejected.
type CorruptError struct {
	// Offset is the byte offset the damage was detected at (0 for header
	// problems, the payload start for checksum and decode failures).
	Offset int64
	// Reason is a human-readable diagnosis.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("core: corrupt database file at offset %d: %s", e.Offset, e.Reason)
}

// Is matches ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// dbImage is the gob-encoded form of a VideoDB.
type dbImage struct {
	Segments  int
	OGCount   int
	STRGBytes int
	RawBytes  int
	Index     index.Snapshot[ClipRecord]
	// OGs and Records are the retained Object Graphs and their clip
	// records in ingest order — the corpus predicate queries (the where
	// tree) filter and the source the trajectory R-tree is rebuilt from
	// at load. Files written before these fields existed decode with both
	// nil: similarity queries still work off the index, predicate queries
	// see an empty corpus (the old behavior). Still container version 2 —
	// gob tolerates the added fields in both directions.
	OGs     []*strg.OG
	Records []ClipRecord
	// Vec is the approximate tier's IVF index (nil when the tier was
	// disabled in the saving process, and in pre-v3 files). Loading under
	// a tier-enabled Config prefers it — the snapshot's own trained
	// centroids win over the loading Config's IVF geometry — and falls
	// back to a deterministic rebuild from OGs when absent. A tier-
	// disabled load ignores it.
	Vec *embed.Snapshot
	// StreamSegs is the per-stream committed-segment count, flattened into
	// a stream-name-sorted slice so snapshot bytes stay deterministic (a
	// gob map would encode in random order and break the replication
	// digests' byte-identity). Pre-existing files decode with it nil, which
	// restores an empty count table — SegmentsIn then reports zero, exactly
	// what those databases reported before the field existed.
	StreamSegs []streamSegCount
	// WALSeq is the sequence number of the first write-ahead log NOT
	// covered by this snapshot; recovery replays logs from WALSeq on.
	// Zero for databases saved outside a durable directory.
	WALSeq uint64
	// SrcSeq/SrcOff are set only on a replica (and in replication
	// bootstrap snapshots): the primary WAL position immediately after
	// the last operation this image covers — the position replication
	// resumes from. Zero on a primary, so gob omits them and primary
	// snapshot bytes are unchanged.
	SrcSeq uint64
	SrcOff int64
}

// streamSegCount is one stream's committed-segment count.
type streamSegCount struct {
	Stream string
	Count  int
}

// image captures the persistable state. Asynchronous split evaluations
// are quiesced first so the image is a settled tree, not a moving target
// (the snapshot itself is shard-count independent either way).
func (db *VideoDB) image() dbImage {
	db.tree.Quiesce()
	img := dbImage{
		Segments:  db.segments,
		OGCount:   db.ogCount,
		STRGBytes: db.strgBytes,
		RawBytes:  db.rawBytes,
		Index:     db.tree.Snapshot(),
		OGs:       db.ogs,
		Records:   db.records,
	}
	for stream, n := range db.streamSegs {
		img.StreamSegs = append(img.StreamSegs, streamSegCount{Stream: stream, Count: n})
	}
	sort.Slice(img.StreamSegs, func(i, j int) bool {
		return img.StreamSegs[i].Stream < img.StreamSegs[j].Stream
	})
	if db.vec != nil {
		img.Vec = db.vec.ivf.Snapshot()
	}
	return img
}

// restore installs a decoded image into a freshly opened database. Roots
// are re-homed across the configured shard count, which may differ from
// the saving process's — the snapshot is shard-layout independent.
func (db *VideoDB) restore(img dbImage) error {
	tree, err := index.NewShardedFromSnapshot(img.Index, db.cfg.Index)
	if err != nil {
		return err
	}
	db.tree = tree
	db.segments = img.Segments
	for _, sc := range img.StreamSegs {
		db.streamSegs[sc.Stream] = sc.Count
	}
	db.ogCount = img.OGCount
	db.strgBytes = img.STRGBytes
	db.rawBytes = img.RawBytes
	if len(img.OGs) != len(img.Records) {
		return &CorruptError{Offset: snapshotHeaderSize,
			Reason: fmt.Sprintf("payload holds %d OGs but %d records", len(img.OGs), len(img.Records))}
	}
	db.ogs = img.OGs
	db.records = img.Records
	if db.traj != nil {
		for i, og := range db.ogs {
			db.traj.insert(i, og)
		}
	}
	if db.vec != nil {
		if img.Vec != nil {
			ivf, err := embed.FromSnapshot(img.Vec)
			if err != nil {
				return &CorruptError{Offset: snapshotHeaderSize,
					Reason: fmt.Sprintf("vector index: %v", err)}
			}
			if ivf.Len() != len(db.ogs) {
				return &CorruptError{Offset: snapshotHeaderSize,
					Reason: fmt.Sprintf("vector index holds %d vectors for %d OGs", ivf.Len(), len(db.ogs))}
			}
			db.vec.ivf = ivf
			// The rerank caches are derived state, never persisted.
			cas := db.tree.Cascade()
			for _, og := range db.ogs {
				seq := og.Sequence()
				db.vec.seqs = append(db.vec.seqs, seq)
				db.vec.sums = append(db.vec.sums, cas.Summarize(seq))
			}
			db.vec.rebuildMirror()
		} else {
			// Pre-v3 file (or one saved with the tier off): rebuild from
			// the OG stream. Deterministic embedding + one-shot training
			// make this bit-identical to an incrementally maintained tier.
			for i, og := range db.ogs {
				db.vec.insert(i, og, db.tree.Cascade())
			}
		}
	}
	return nil
}

// Save writes the database to w in the versioned, checksummed snapshot
// container. The configuration is not persisted — metrics are functions —
// so Load must be given the same Config the database was built with.
func (db *VideoDB) Save(w io.Writer) error {
	return writeSnapshot(w, db.image())
}

// writeSnapshot encodes one image into the container format.
func writeSnapshot(w io.Writer, img dbImage) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&img); err != nil {
		return fmt.Errorf("core: encoding database: %w", err)
	}
	var header [snapshotHeaderSize]byte
	copy(header[:], snapshotMagic[:])
	binary.LittleEndian.PutUint32(header[8:], snapshotVersion)
	var trailer [snapshotTrailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(trailer[8:], crc32.Checksum(payload.Bytes(), snapshotCRC))
	for _, chunk := range [][]byte{header[:], payload.Bytes(), trailer[:]} {
		if _, err := w.Write(chunk); err != nil {
			return fmt.Errorf("core: writing database: %w", err)
		}
	}
	return nil
}

// readSnapshot validates the container and decodes the image.
func readSnapshot(r io.Reader) (dbImage, error) {
	var img dbImage
	data, err := io.ReadAll(r)
	if err != nil {
		return img, fmt.Errorf("core: reading database: %w", err)
	}
	if len(data) == 0 {
		return img, &CorruptError{Offset: 0, Reason: "empty file"}
	}
	if len(data) < snapshotHeaderSize+snapshotTrailerSize {
		return img, &CorruptError{Offset: int64(len(data)), Reason: "truncated: shorter than container framing"}
	}
	if [8]byte(data[:8]) != snapshotMagic {
		return img, &CorruptError{Offset: 0, Reason: "bad magic (not a strgindex snapshot)"}
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v < snapshotMinVersion || v > snapshotVersion {
		return img, &CorruptError{Offset: 8, Reason: fmt.Sprintf("unsupported snapshot version %d", v)}
	}
	payload := data[snapshotHeaderSize : len(data)-snapshotTrailerSize]
	trailer := data[len(data)-snapshotTrailerSize:]
	if got := binary.LittleEndian.Uint64(trailer); got != uint64(len(payload)) {
		return img, &CorruptError{Offset: int64(len(data) - snapshotTrailerSize),
			Reason: fmt.Sprintf("truncated: trailer claims %d payload bytes, file holds %d", got, len(payload))}
	}
	if got, want := crc32.Checksum(payload, snapshotCRC), binary.LittleEndian.Uint32(trailer[8:]); got != want {
		snapshotChecksumFailures.Inc()
		return img, &CorruptError{Offset: snapshotHeaderSize, Reason: "checksum mismatch"}
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&img); err != nil {
		return img, &CorruptError{Offset: snapshotHeaderSize, Reason: fmt.Sprintf("decoding payload: %v", err)}
	}
	return img, nil
}

// Load reads a database previously written by Save, under cfg (which must
// match the saving configuration — leaf keys are verified against the
// configured metric). Damaged input — truncated, bit-flipped, empty, or
// not a snapshot at all — is reported as a *CorruptError matching
// ErrCorrupt, never silently loaded.
func Load(r io.Reader, cfg Config) (*VideoDB, error) {
	img, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	db := Open(cfg)
	if err := db.restore(img); err != nil {
		return nil, err
	}
	return db, nil
}

// SaveFile durably writes the database to path: the container goes to
// path+".tmp", is fsynced, atomically renamed into place, and the
// directory is fsynced — a crash at any point leaves either the old file
// or the new one, never a torn mix.
func (db *VideoDB) SaveFile(fsys faultfs.FS, path string) error {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	return faultfs.WriteAtomic(fsys, path, db.Save)
}

// LoadFile reads a database from path (see Load).
func LoadFile(fsys faultfs.FS, path string, cfg Config) (*VideoDB, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, cfg)
}
