package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"strgindex/internal/index"
)

// dbImage is the gob-encoded form of a VideoDB.
type dbImage struct {
	Segments  int
	OGCount   int
	STRGBytes int
	RawBytes  int
	Index     index.Snapshot[ClipRecord]
}

// Save writes the database to w (gob encoding). The configuration is not
// persisted — metrics are functions — so Load must be given the same
// Config the database was built with.
func (db *VideoDB) Save(w io.Writer) error {
	img := dbImage{
		Segments:  db.segments,
		OGCount:   db.ogCount,
		STRGBytes: db.strgBytes,
		RawBytes:  db.rawBytes,
		Index:     db.tree.Snapshot(),
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("core: encoding database: %w", err)
	}
	return nil
}

// Load reads a database previously written by Save, under cfg (which must
// match the saving configuration — leaf keys are verified against the
// configured metric).
func Load(r io.Reader, cfg Config) (*VideoDB, error) {
	var img dbImage
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("core: decoding database: %w", err)
	}
	db := Open(cfg)
	tree, err := index.FromSnapshot(img.Index, db.cfg.Index)
	if err != nil {
		return nil, err
	}
	db.tree = tree
	db.segments = img.Segments
	db.ogCount = img.OGCount
	db.strgBytes = img.STRGBytes
	db.rawBytes = img.RawBytes
	return db, nil
}
