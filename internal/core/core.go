// Package core exposes the system's high-level API: a VideoDB that ingests
// video segments through the full STRG pipeline (RAG construction, graph
// tracking, decomposition into Object Graphs and a Background Graph,
// EM clustering) into an STRG-Index, and answers similarity queries over
// object motion (Algorithm 3).
//
// This is the surface a downstream application uses; the papers' internals
// live in the substrate packages (rag, strg, dist, cluster, index).
package core

import (
	"context"
	"fmt"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
	"strgindex/internal/index"
	"strgindex/internal/parallel"
	"strgindex/internal/query"
	"strgindex/internal/shot"
	"strgindex/internal/strg"
	"strgindex/internal/video"
)

// ClipRecord is the leaf payload: where the matched object graph lives.
type ClipRecord struct {
	Stream string
	Clip   video.ClipRef
	// Label is the OG's dominant ground-truth label when the source
	// provides one; retrieval never reads it.
	Label string
	// OGID numbers the OG within the database ingest order.
	OGID int
}

// Match is one similarity query hit.
type Match struct {
	Record   ClipRecord
	Distance float64
}

// Config assembles the pipeline configuration.
type Config struct {
	// STRG controls RAG construction, tracking and decomposition.
	STRG strg.Config
	// Index controls clustering and the STRG-Index tree.
	Index index.Config
	// Concurrency is the database-wide worker budget. A nonzero value
	// fills any zero STRG/Index Concurrency at Open and bounds the
	// segment-level pipeline of IngestStream. 0 means one worker per CPU;
	// 1 reproduces the fully sequential pipeline. Results are identical
	// at every setting.
	Concurrency int
	// DistCacheSize bounds the distance cache in entries: searches memoize
	// fully evaluated query-to-record distances under content-hash
	// identity, so repeated or overlapping queries skip the DP entirely.
	// 0 (the default) disables the cache; negative selects
	// DefaultDistCacheSize. Cached values are bit-identical to
	// re-evaluation, so results are unchanged at every setting.
	DistCacheSize int
	// DisableTrajIndex turns off the trajectory R-tree maintained at
	// ingest. The declarative planner then always scans; answers are
	// unchanged (the R-tree only prunes candidates, never filters them).
	DisableTrajIndex bool
	// Approx enables the opt-in approximate similarity tier (see vec.go):
	// deterministic OG embeddings in an IVF index, probed for candidates
	// that the exact cascade reranks. Default paths are untouched.
	Approx ApproxConfig
}

// DefaultDistCacheSize is the cache bound selected by a negative
// Config.DistCacheSize: 64k entries ≈ 4 MB of entries plus map overhead.
const DefaultDistCacheSize = 1 << 16

// DefaultConfig is the configuration used by the examples and experiments.
func DefaultConfig() Config {
	return Config{STRG: strg.DefaultConfig()}
}

// Stats summarizes database contents and the size accounting of
// Section 5.4.
type Stats struct {
	Segments int
	OGs      int
	Roots    int
	Clusters int
	// Shards is the number of copy-on-write index partitions. Snapshot
	// versions are runtime state, not content — read them via
	// IndexVersions or the shard metrics, not here, so that two databases
	// with identical contents report identical Stats.
	Shards int
	// STRGBytes is Equation 9 aggregated over segments: the decomposed
	// STRG with the background repeated per frame.
	STRGBytes int
	// RawSTRGBytes is the undecomposed STRG footprint (every frame's RAG).
	RawSTRGBytes int
	// IndexBytes is Equation 10: the STRG-Index footprint.
	IndexBytes int
}

// IngestStats reports one segment's ingest.
type IngestStats struct {
	Frames        int
	TemporalEdges int
	OGs           int
	BGNodes       int
}

// VideoDB is an indexed video database. Not safe for concurrent use.
type VideoDB struct {
	cfg       Config
	cache     *distCache
	tree      *index.Sharded[ClipRecord]
	segments  int
	ogCount   int
	strgBytes int
	rawBytes  int
	// ogs retains the decomposed Object Graphs (aligned with their
	// ClipRecords) for predicate queries.
	ogs     []*strg.OG
	records []ClipRecord
	// traj is the trajectory R-tree over the retained OGs (nil when
	// Config.DisableTrajIndex is set); see spatial.go.
	traj *trajIndex
	// vec is the approximate similarity tier (nil unless
	// Config.Approx.Enabled); see vec.go.
	vec *vecTier
	// streamSegs counts committed segments per stream — the feed layer's
	// read-your-writes reconciliation point (see delta.go).
	streamSegs map[string]int
	// onCommit, when set, runs at the top of every segment commit, before
	// any database state mutates — the write-ahead hook of the durability
	// layer (see durable.go). shard is the index shard the segment will
	// land on (resolved before the commit, so the log can record the
	// route). An error aborts the commit.
	onCommit func(stream string, seg *video.Segment, shard int) error
	// onDelta, when set, runs at the end of every segment commit with the
	// commit's OG delta (see delta.go).
	onDelta func(CommitDelta)
}

// Open creates an empty database.
func Open(cfg Config) *VideoDB {
	if cfg.STRG.SimThreshold <= 0 {
		cfg.STRG = strg.DefaultConfig()
	}
	if cfg.Concurrency != 0 {
		if cfg.STRG.Concurrency == 0 {
			cfg.STRG.Concurrency = cfg.Concurrency
		}
		if cfg.Index.Concurrency == 0 {
			cfg.Index.Concurrency = cfg.Concurrency
		}
	}
	if cfg.DistCacheSize < 0 {
		cfg.DistCacheSize = DefaultDistCacheSize
	}
	db := &VideoDB{cfg: cfg, streamSegs: make(map[string]int)}
	if cfg.DistCacheSize > 0 && cfg.Index.Cache == nil {
		db.cache = newDistCache(cfg.DistCacheSize)
		db.cfg.Index.Cache = db.cache
	}
	db.tree = index.NewSharded[ClipRecord](db.cfg.Index)
	if !cfg.DisableTrajIndex {
		db.traj = newTrajIndex()
	}
	if cfg.Approx.Enabled {
		db.vec = newVecTier(cfg.Approx)
	}
	return db
}

// builtSegment is the side-effect-free part of one segment's ingest: the
// STRG and its decomposition, ready for sequential indexing.
type builtSegment struct {
	seg *video.Segment
	s   *strg.STRG
	d   *strg.Decomposition
}

// buildSegment runs the pure pipeline stages (RAG construction, tracking,
// decomposition). It touches no database state, so independent segments
// can build concurrently.
func (db *VideoDB) buildSegment(seg *video.Segment) (*builtSegment, error) {
	s, err := strg.Build(seg, db.cfg.STRG)
	if err != nil {
		return nil, fmt.Errorf("core: building STRG for %s: %w", seg.Name, err)
	}
	return &builtSegment{seg: seg, s: s, d: s.Decompose(db.cfg.STRG)}, nil
}

// IngestSegment runs the full pipeline on one segment and indexes its OGs.
func (db *VideoDB) IngestSegment(stream string, seg *video.Segment) (*IngestStats, error) {
	start := time.Now()
	b, err := db.buildSegment(seg)
	if err != nil {
		return nil, err
	}
	stats, err := db.commitSegment(stream, b)
	if err == nil {
		ingestSeconds.Observe(time.Since(start).Seconds())
	}
	return stats, err
}

// commitSegment indexes a built segment. OG IDs, tree mutation and the
// size accounting all depend on ingest order, so commits stay sequential.
func (db *VideoDB) commitSegment(stream string, b *builtSegment) (*IngestStats, error) {
	seg, s, d := b.seg, b.s, b.d
	// Resolve the shard before anything mutates: the route is pure, and
	// commits are serialized, so this is exactly where AddSegment lands.
	shard := db.tree.RouteShard(d.BG)
	if db.onCommit != nil {
		if err := db.onCommit(stream, seg, shard); err != nil {
			return nil, fmt.Errorf("core: write-ahead log for %s: %w", seg.Name, err)
		}
	}
	items := make([]index.Item[ClipRecord], len(d.OGs))
	for i, og := range d.OGs {
		clip := og.Clip
		clip.Stream = stream
		items[i] = index.Item[ClipRecord]{
			Seq: og.Sequence(),
			Payload: ClipRecord{
				Stream: stream,
				Clip:   clip,
				Label:  og.Label,
				OGID:   db.ogCount + i,
			},
		}
	}
	if err := db.tree.AddSegment(d.BG, items); err != nil {
		return nil, fmt.Errorf("core: indexing %s: %w", seg.Name, err)
	}
	if db.cache != nil {
		// Invalidate cached distances for the shard this commit touched:
		// content hashing already makes entries immune to staleness, but
		// bumping the generation keeps the cache protocol independent of
		// the key scheme — and scoping the bump to one shard preserves the
		// warm entries of every shard the commit could not have changed.
		db.cache.BumpShard(uint32(shard))
	}
	for i, og := range d.OGs {
		if db.traj != nil {
			db.traj.insert(len(db.ogs), og)
		}
		if db.vec != nil {
			db.vec.insert(len(db.ogs), og, db.tree.Cascade())
		}
		db.ogs = append(db.ogs, og)
		db.records = append(db.records, items[i].Payload)
	}
	db.segments++
	db.streamSegs[stream]++
	db.ogCount += len(d.OGs)
	db.strgBytes += d.STRGSizeBytes()
	db.rawBytes += s.MemoryBytes()
	ingestSegments.Inc()
	ingestOGs.Add(int64(len(d.OGs)))
	if db.onDelta != nil {
		recs := make([]ClipRecord, len(items))
		for i := range items {
			recs[i] = items[i].Payload
		}
		db.onDelta(CommitDelta{
			Stream:   stream,
			Segment:  seg.Name,
			Shard:    shard,
			Versions: db.tree.Versions(),
			Records:  recs,
			OGs:      d.OGs,
		})
	}
	return &IngestStats{
		Frames:        len(seg.Frames),
		TemporalEdges: s.NumTemporalEdges(),
		OGs:           len(d.OGs),
		BGNodes:       d.BG.Order(),
	}, nil
}

// IngestVideo parses a long recording into single-background shots
// (Section 1's "issue 1") and ingests each shot as its own segment. It
// returns the number of shots.
func (db *VideoDB) IngestVideo(stream string, seg *video.Segment, shotCfg shot.Config) (int, error) {
	shots := shot.Split(seg, shotCfg)
	for _, s := range shots {
		if _, err := db.IngestSegment(stream, s); err != nil {
			return 0, err
		}
	}
	return len(shots), nil
}

// IngestStream ingests every segment of a generated stream. The pure
// pipeline stages (RAG construction, tracking, decomposition) of all
// segments run across the worker pool; indexing then commits the built
// segments in stream order, so the resulting database is identical to a
// segment-by-segment sequential ingest.
func (db *VideoDB) IngestStream(s *video.Stream) error {
	built, err := parallel.Map(db.cfg.Concurrency, len(s.Segments), func(i int) (*builtSegment, error) {
		return db.buildSegment(s.Segments[i])
	})
	if err != nil {
		return fmt.Errorf("core: ingesting stream %s: %w", s.Profile.Name, err)
	}
	for _, b := range built {
		if _, err := db.commitSegment(s.Profile.Name, b); err != nil {
			return err
		}
	}
	return nil
}

// QuerySegment extracts the query segment's OGs and background (Section
// 5.5: "From a query video segment q, we extract the background graph BG_q
// and object graphs OG_q") and returns the k nearest indexed OGs for each
// extracted query OG.
func (db *VideoDB) QuerySegment(seg *video.Segment, k int) ([][]Match, error) {
	s, err := strg.Build(seg, db.cfg.STRG)
	if err != nil {
		return nil, fmt.Errorf("core: building query STRG: %w", err)
	}
	d := s.Decompose(db.cfg.STRG)
	out := make([][]Match, len(d.OGs))
	for i, og := range d.OGs {
		out[i] = db.knn(d.BG, og.Sequence(), k, false)
	}
	return out, nil
}

// QueryTrajectory returns the k indexed OGs most similar to a raw
// trajectory, ignoring backgrounds (Algorithm 3's background-less mode).
func (db *VideoDB) QueryTrajectory(seq dist.Sequence, k int) []Match {
	return mustMatches(db.QueryTrajectoryCtx(context.Background(), seq, k))
}

// QueryTrajectoryCtx is QueryTrajectory with cancellation: a done ctx
// stops the search's worker pool from claiming further distance
// evaluations, drains the in-flight ones, and returns ctx.Err() — so a
// disconnected HTTP client cancels its search instead of burning workers.
func (db *VideoDB) QueryTrajectoryCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, error) {
	ms, _, err := db.QueryTrajectoryStatsCtx(ctx, seq, k)
	return ms, err
}

// QueryTrajectoryStatsCtx is QueryTrajectoryCtx returning the search's
// filter-and-refine accounting.
func (db *VideoDB) QueryTrajectoryStatsCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, index.SearchStats, error) {
	return db.knnStatsCtx(ctx, nil, seq, k, false)
}

// QueryTrajectoryExact is QueryTrajectory with the exact (all-cluster)
// search instead of Algorithm 3's single-cluster descent.
func (db *VideoDB) QueryTrajectoryExact(seq dist.Sequence, k int) []Match {
	return mustMatches(db.QueryTrajectoryExactCtx(context.Background(), seq, k))
}

// QueryTrajectoryExactCtx is QueryTrajectoryExact with cancellation.
func (db *VideoDB) QueryTrajectoryExactCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, error) {
	ms, _, err := db.QueryTrajectoryExactStatsCtx(ctx, seq, k)
	return ms, err
}

// QueryTrajectoryExactStatsCtx is QueryTrajectoryExactCtx returning the
// search's filter-and-refine accounting.
func (db *VideoDB) QueryTrajectoryExactStatsCtx(ctx context.Context, seq dist.Sequence, k int) ([]Match, index.SearchStats, error) {
	return db.knnStatsCtx(ctx, nil, seq, k, true)
}

// QueryRange returns every indexed OG within radius of the trajectory.
func (db *VideoDB) QueryRange(seq dist.Sequence, radius float64) []Match {
	return mustMatches(db.QueryRangeCtx(context.Background(), seq, radius))
}

// QueryRangeCtx is QueryRange with cancellation.
func (db *VideoDB) QueryRangeCtx(ctx context.Context, seq dist.Sequence, radius float64) ([]Match, error) {
	ms, _, err := db.QueryRangeStatsCtx(ctx, seq, radius)
	return ms, err
}

// QueryRangeStatsCtx is QueryRangeCtx returning the search's
// filter-and-refine accounting.
func (db *VideoDB) QueryRangeStatsCtx(ctx context.Context, seq dist.Sequence, radius float64) ([]Match, index.SearchStats, error) {
	start := time.Now()
	rs, st, err := db.tree.RangeStatsCtx(ctx, nil, seq, radius)
	if err != nil {
		return nil, st, err
	}
	queryRangeSeconds.Observe(time.Since(start).Seconds())
	return toMatches(rs), st, nil
}

func (db *VideoDB) knn(bg *graph.Graph, seq dist.Sequence, k int, exact bool) []Match {
	ms, _, err := db.knnStatsCtx(context.Background(), bg, seq, k, exact)
	return mustMatches(ms, err)
}

func (db *VideoDB) knnStatsCtx(ctx context.Context, bg *graph.Graph, seq dist.Sequence, k int, exact bool) ([]Match, index.SearchStats, error) {
	start := time.Now()
	var rs []index.Result[ClipRecord]
	var st index.SearchStats
	var err error
	if exact {
		rs, st, err = db.tree.KNNExactStatsCtx(ctx, bg, seq, k)
	} else {
		rs, st, err = db.tree.KNNStatsCtx(ctx, bg, seq, k)
	}
	if err != nil {
		return nil, st, err
	}
	if exact {
		queryKNNExactSeconds.Observe(time.Since(start).Seconds())
	} else {
		queryKNNSeconds.Observe(time.Since(start).Seconds())
	}
	return toMatches(rs), st, nil
}

// mustMatches adapts a Ctx query to the context-free legacy surface: with
// context.Background() the only possible error is a recovered worker
// panic, which the sequential code path would have let escape.
func mustMatches(ms []Match, err error) []Match {
	if err != nil {
		panic(err)
	}
	return ms
}

// Stats returns the current database statistics.
func (db *VideoDB) Stats() Stats {
	return Stats{
		Segments:     db.segments,
		OGs:          db.tree.Len(),
		Roots:        db.tree.NumRoots(),
		Clusters:     db.tree.NumClusters(),
		Shards:       db.tree.NumShards(),
		STRGBytes:    db.strgBytes,
		RawSTRGBytes: db.rawBytes,
		IndexBytes:   db.tree.MemoryBytes(),
	}
}

// Index returns a read-only merged view of the STRG-Index for advanced
// use (experiments, invariant checks). The view is a consistent snapshot:
// later ingests do not appear in it. Callers must not mutate it.
func (db *VideoDB) Index() *index.Tree[ClipRecord] { return db.tree.View() }

// IndexSharded exposes the sharded index itself (concurrent-safe) for
// tooling that needs shard versions or quiescing.
func (db *VideoDB) IndexSharded() *index.Sharded[ClipRecord] { return db.tree }

// IndexVersions returns each index shard's published snapshot version.
func (db *VideoDB) IndexVersions() []uint64 { return db.tree.Versions() }

// QuiesceIndex waits for any in-flight asynchronous split evaluations
// (a no-op unless Config.Index.AsyncSplit is set).
func (db *VideoDB) QuiesceIndex() { db.tree.Quiesce() }

// Select returns the clip records of every indexed Object Graph satisfying
// the predicate — the "queries on moving objects" surface (e.g. everything
// that passed through a region heading east). Scans the retained OGs;
// unlike the similarity queries it does not use the index. Records are
// returned in ingest order with distance 0.
func (db *VideoDB) Select(p query.Predicate) []Match {
	return mustMatches(db.SelectCtx(context.Background(), p))
}

// SelectCtx is Select with cancellation, checked every few hundred OGs so
// an abandoned full-database scan stops promptly. A cancelled scan returns
// ctx.Err() and no partial results.
func (db *VideoDB) SelectCtx(ctx context.Context, p query.Predicate) ([]Match, error) {
	start := time.Now()
	var out []Match
	for i, og := range db.ogs {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if p(og) {
			out = append(out, Match{Record: db.records[i]})
		}
	}
	querySelectSeconds.Observe(time.Since(start).Seconds())
	return out, nil
}

// OGs exposes the retained Object Graphs (aligned with Records order) for
// analysis tooling. Callers must not mutate them.
func (db *VideoDB) OGs() []*strg.OG { return db.ogs }

func toMatches(rs []index.Result[ClipRecord]) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = Match{Record: r.Payload, Distance: r.Distance}
	}
	return out
}
