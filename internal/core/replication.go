package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"strgindex/internal/faultfs"
	"strgindex/internal/index"
	"strgindex/internal/wal"
)

// This file is the core side of WAL-streaming replication (the wire
// protocol and connection loop live in internal/replica):
//
//   - the primary exposes its WAL as an offset-addressed record stream
//     (WALFrames), a bootstrap snapshot stamped with the resume position
//     (ReplicationSnapshot), a retention floor so rotation never deletes
//     frames an attached replica has not acked (SetWALRetainFloor), and
//     a deterministic state digest for anti-entropy (ReplicationDigest);
//   - a replica (OpenReplica) applies fetched records through
//     ApplyReplicated, which write-ahead logs each one locally with its
//     primary position before mutating state, so the existing recovery
//     path restores both the data AND the exact resume point after a
//     crash — no gaps, no duplicates.

// ErrReplica is returned by the ingest surface of a database opened with
// OpenReplica: replicas are read-only, mutations arrive only from the
// primary's WAL stream.
var ErrReplica = errors.New("core: read-only replica")

// ErrNotDurable is returned by replication surfaces on a database without
// a durability directory — there is no WAL to stream.
var ErrNotDurable = errors.New("core: replication requires a durable database")

// ErrWALGone reports that a requested WAL position is no longer served by
// the primary (rotated away before the reader registered, ahead of the
// committed end, or from a previous incarnation). The reader must
// re-bootstrap from a fresh snapshot.
var ErrWALGone = errors.New("core: wal position no longer available")

// WALPos addresses a byte position in a durable database's write-ahead
// log chain: the sequence number of a log file and a byte offset within
// it (record boundaries only — wal.HeaderSize or an offset after a
// record's frame).
type WALPos struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// IsZero reports the zero position (no position recorded).
func (p WALPos) IsZero() bool { return p.Seq == 0 && p.Off == 0 }

// Before orders positions: first by log sequence, then by offset.
func (p WALPos) Before(q WALPos) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

// String formats the position for logs.
func (p WALPos) String() string { return fmt.Sprintf("%d:%d", p.Seq, p.Off) }

// WALFrame is one record read from the primary's WAL: the payload plus
// the position immediately after its frame — the point a replica resumes
// from once the record is applied.
type WALFrame struct {
	Payload []byte
	Next    WALPos
}

// Durable reports whether the database persists through a WAL (and can
// therefore act as a replication primary or replica).
func (s *SharedDB) Durable() bool { return s.dur != nil }

// WALPos returns the committed end of the write-ahead log chain.
func (s *SharedDB) WALPos() (WALPos, error) {
	if s.dur == nil {
		return WALPos{}, ErrNotDurable
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return WALPos{Seq: s.dur.seq, Off: s.dur.log.Size()}, nil
}

// SetWALRetainFloor sets the lowest WAL sequence log rotation must
// preserve (the minimum acked position across registered replicas).
// math.MaxUint64 restores the default: delete everything a snapshot
// covers.
func (s *SharedDB) SetWALRetainFloor(seq uint64) error {
	if s.dur == nil {
		return ErrNotDurable
	}
	s.dur.retain.Store(seq)
	return nil
}

// WALFrames reads committed WAL records starting at from, stopping after
// roughly maxBytes of payload (at least one record is returned when any
// is available). It returns the frames with their per-record resume
// positions, the position to fetch from next, and the committed end of
// the chain at read time (next == end means the reader is caught up).
//
// Only the position capture takes the database lock: sealed logs are
// immutable and the live log is read up to its committed size, which
// appends only grow and rollbacks never shrink below. A position the
// primary no longer serves (rotated away, ahead of the end, or below a
// record boundary) fails with ErrWALGone — the reader re-bootstraps.
func (s *SharedDB) WALFrames(from WALPos, maxBytes int64) (frames []WALFrame, next, end WALPos, err error) {
	if s.dur == nil {
		return nil, from, end, ErrNotDurable
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	s.mu.RLock()
	curSeq, curSize := s.dur.seq, s.dur.log.Size()
	s.mu.RUnlock()
	end = WALPos{Seq: curSeq, Off: curSize}
	if from.Seq == 0 || from.Off < wal.HeaderSize {
		return nil, from, end, fmt.Errorf("core: position %v predates the log chain: %w", from, ErrWALGone)
	}
	if from.Seq > curSeq || (from.Seq == curSeq && from.Off > curSize) {
		return nil, from, end, fmt.Errorf("core: position %v is ahead of the committed end %v: %w", from, end, ErrWALGone)
	}

	d := s.dur
	next = from
	var total int64
	for {
		limit := int64(-1)
		if next.Seq == curSeq {
			limit = curSize
		}
		res, serr := wal.ScanRange(d.fsys, d.path(walFileName(next.Seq)), next.Off, limit,
			func(off int64, payload []byte) error {
				if total >= maxBytes && len(frames) > 0 {
					return wal.ErrStopScan
				}
				p := bytes.Clone(payload)
				total += int64(len(p))
				frames = append(frames, WALFrame{
					Payload: p,
					Next:    WALPos{Seq: next.Seq, Off: off + wal.FrameOverhead + int64(len(p))},
				})
				return nil
			})
		if serr != nil {
			if os.IsNotExist(serr) {
				return nil, from, end, fmt.Errorf("core: %s rotated away: %w", walFileName(next.Seq), ErrWALGone)
			}
			if errors.Is(serr, wal.ErrCorrupt) {
				// A sealed log cannot legitimately fail its checksums, the
				// live log is only read up to its committed size, and a bad
				// reader offset (e.g. one that now lands mid-record because
				// a restarted primary wrote different bytes past it) parses
				// as garbage. Either way the reader cannot resume from this
				// position — answer ErrWALGone so it re-bootstraps instead
				// of retrying a permanent failure forever.
				return nil, from, end, fmt.Errorf("core: reading %s: %v: %w", walFileName(next.Seq), serr, ErrWALGone)
			}
			return nil, from, end, serr
		}
		if res.Torn && next.Seq < curSeq {
			return nil, from, end, fmt.Errorf("core: sealed log %s is torn at %d: %w",
				walFileName(next.Seq), res.TornOffset, ErrCorrupt)
		}
		next.Off = res.CommittedSize
		if res.Stopped || total >= maxBytes {
			return frames, next, end, nil
		}
		if next.Seq == curSeq {
			return frames, next, end, nil
		}
		// Sealed log exhausted: advance to the next log in the chain.
		next = WALPos{Seq: next.Seq + 1, Off: wal.HeaderSize}
	}
}

// WALBytesBetween estimates the committed bytes between from and the
// chain end (framing included) — the lag a reader at from is behind by.
// Positions outside the chain clamp to zero.
func (s *SharedDB) WALBytesBetween(from, end WALPos) int64 {
	if s.dur == nil || !from.Before(end) {
		return 0
	}
	var total int64
	for seq := from.Seq; seq <= end.Seq; seq++ {
		var size int64
		if seq == end.Seq {
			size = end.Off
		} else if fi, err := s.dur.fsys.Stat(s.dur.path(walFileName(seq))); err == nil {
			size = fi.Size()
		}
		start := int64(wal.HeaderSize)
		if seq == from.Seq {
			start = from.Off
		}
		if size > start {
			total += size - start
		}
	}
	return total
}

// ReplicationSnapshot writes a bootstrap snapshot for a new replica: the
// current state image stamped with the WAL position it is current to
// (SrcSeq/SrcOff) and WALSeq 1, so the replica starts a fresh local log
// chain and resumes streaming exactly after the image. The position is
// captured under the write lock; the encode runs outside it, off a
// consistent image (the same discipline as background rotation).
func (s *SharedDB) ReplicationSnapshot(w io.Writer) (WALPos, error) {
	if s.dur == nil {
		return WALPos{}, ErrNotDurable
	}
	s.mu.Lock()
	if s.dur.closed {
		s.mu.Unlock()
		return WALPos{}, fmt.Errorf("core: database closed")
	}
	img := s.db.image()
	pos := WALPos{Seq: s.dur.seq, Off: s.dur.log.Size()}
	s.mu.Unlock()
	img.WALSeq = 1
	img.SrcSeq, img.SrcOff = pos.Seq, pos.Off
	if err := writeSnapshot(w, img); err != nil {
		return WALPos{}, err
	}
	return pos, nil
}

// InspectSnapshotFile validates a snapshot container on disk (a replica
// verifies a downloaded bootstrap before installing it) and returns the
// source position it is current to plus the segment count it covers.
func InspectSnapshotFile(fsys faultfs.FS, path string) (WALPos, int, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	img, err := snapshotImage(fsys, path)
	if err != nil {
		return WALPos{}, 0, err
	}
	return WALPos{Seq: img.SrcSeq, Off: img.SrcOff}, img.Segments, nil
}

// ReplicaPos returns, on a replica, the primary WAL position after the
// last applied operation — the crash-safe replication resume point.
func (s *SharedDB) ReplicaPos() WALPos {
	if s.dur == nil {
		return WALPos{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dur.srcPos
}

// AppliedSegments returns the number of committed segment operations —
// the version token replicas and tests compare answers at.
func (s *SharedDB) AppliedSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.segments
}

// IsReplica reports whether the database was opened with OpenReplica.
func (s *SharedDB) IsReplica() bool { return s.replica }

// ApplyReplicated applies one fetched WAL record on a replica: the
// payload is decoded, write-ahead logged locally with its source
// position src (the primary position after the record's frame), and
// applied — the exact commit discipline of a primary ingest, so a crash
// at any byte recovers byte-identical with the matching resume point.
// Records must arrive in stream order: src must advance.
func (s *SharedDB) ApplyReplicated(payload []byte, src WALPos) error {
	if !s.replica {
		return fmt.Errorf("core: ApplyReplicated on a non-replica database")
	}
	if s.dur == nil {
		return ErrNotDurable
	}
	op, err := decodeOp(payload)
	if err != nil {
		return err
	}
	if src.IsZero() {
		return fmt.Errorf("core: replicated record carries no source position")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur.closed {
		return fmt.Errorf("core: database closed")
	}
	if !s.dur.srcPos.IsZero() && !s.dur.srcPos.Before(src) {
		return fmt.Errorf("core: replicated record at %v does not advance the applied position %v",
			src, s.dur.srcPos)
	}
	s.dur.applySrc = src
	_, err = s.db.IngestSegment(op.Stream, op.Segment)
	s.dur.applySrc = WALPos{}
	if err == nil {
		// Advance the resume point BEFORE settling the WAL: settling can
		// trigger a rotation whose snapshot already contains this record,
		// so it must be stamped with this record's position — stamping the
		// previous one would make a post-crash recovery re-fetch and
		// re-apply the record, silently diverging from the primary.
		s.dur.srcPos = src
	}
	s.afterIngestLocked(err)
	return err
}

// StateDigest is the anti-entropy fingerprint of a database: per-shard
// hashes of the canonically renumbered index snapshot plus a corpus hash
// over the retained records and OG sequences, all at a specific position.
// Two databases whose positions match must produce identical digests;
// a mismatch means silent divergence and the replica must re-bootstrap.
// Hashes are canonical across build paths (incremental vs. restored) but
// assume both sides run the same binary (gob encodings are compared).
type StateDigest struct {
	// Pos is the position the digest was taken at: the committed WAL end
	// on a primary, the applied source position on a replica. Digests are
	// only comparable at equal positions.
	Pos WALPos `json:"pos"`
	// Segments is the applied-operation count at Pos.
	Segments int `json:"segments"`
	// Shards holds one hex SHA-256 per index shard, so a mismatch names
	// the diverged shard.
	Shards []string `json:"shards"`
	// Corpus fingerprints the retained clip records and OG trajectories.
	Corpus string `json:"corpus"`
}

// ReplicationDigest computes the anti-entropy digest. In-flight
// asynchronous split evaluations are quiesced first so the tree is
// settled — split timing must not masquerade as divergence.
func (s *SharedDB) ReplicationDigest() (StateDigest, error) {
	if s.dur == nil {
		return StateDigest{}, ErrNotDurable
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.db.tree.Quiesce()

	var dig StateDigest
	if s.replica {
		dig.Pos = s.dur.srcPos
	} else {
		dig.Pos = WALPos{Seq: s.dur.seq, Off: s.dur.log.Size()}
	}
	dig.Segments = s.db.segments

	// Per-shard hashes over the canonical snapshot: Snapshot() renumbers
	// roots by directory position and clusters sequentially, so two trees
	// holding the same logical state hash identically regardless of how
	// they were built; the root → shard assignment is the deterministic
	// ShardOfRoot.
	snap := s.db.tree.Snapshot()
	nShards := s.db.tree.NumShards()
	groups := make([][]index.RootSnapshot[ClipRecord], nShards)
	for i := range snap.Roots {
		si := s.db.tree.ShardOfRoot(snap.Roots[i].ID)
		groups[si] = append(groups[si], snap.Roots[i])
	}
	dig.Shards = make([]string, nShards)
	for i, g := range groups {
		h := sha256.New()
		if err := gob.NewEncoder(h).Encode(g); err != nil {
			return StateDigest{}, fmt.Errorf("core: hashing shard %d: %w", i, err)
		}
		dig.Shards[i] = hex.EncodeToString(h.Sum(nil))
	}

	ch := sha256.New()
	if err := gob.NewEncoder(ch).Encode(s.db.records); err != nil {
		return StateDigest{}, fmt.Errorf("core: hashing records: %w", err)
	}
	var buf [8]byte
	for _, og := range s.db.ogs {
		for _, v := range og.Sequence() {
			for _, x := range v {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
				ch.Write(buf[:])
			}
		}
	}
	dig.Corpus = hex.EncodeToString(ch.Sum(nil))
	return dig, nil
}
