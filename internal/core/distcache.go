package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"strgindex/internal/index"
)

// NewDistCache returns a standalone bounded distance cache implementing
// index.DistCache, for callers assembling an index.Config directly
// (benchmarks, embedders). A VideoDB manages its own instance — including
// the per-ingest generation bump — via Config.DistCacheSize.
func NewDistCache(capacity int) index.DistCache {
	if capacity <= 0 {
		capacity = DefaultDistCacheSize
	}
	return newDistCache(capacity)
}

// distCache is the database's bounded, sharded LRU distance cache,
// implementing index.DistCache. Entries are keyed by the pair of content
// hashes (query sequence, stored sequence); the key metric is fixed per
// cache instance — each VideoDB owns one cache scoped to its tree's key
// metric, so the effective cache identity is the ISSUE's (query hash,
// sequence id, metric) triple.
//
// Correctness: content hashing makes entries self-validating — a stored
// value is the deterministic kernel's output for exactly those float64
// bits, so a hit is bit-identical to re-evaluating and results cannot go
// stale even across ingests. The generation counter is belt and braces on
// top of that: every ingest bumps it, and entries written under an older
// generation are treated as misses (and evicted on contact), so even a
// future non-content-addressed key scheme could not serve a stale value.
//
// Concurrency: the tree calls Get/Put from its worker pool, so the cache
// shards by key hash and serializes each shard under its own mutex. A
// race between two workers computing the same pair is benign — both write
// the identical bits.
//
// Generations are tracked per index shard (the cache implements
// index.ShardAwareDistCache, so entries carry the shard their record
// lives in): an ingest bumps only the shard it committed to, keeping
// every other shard's warm entries servable. The table is sized to
// index.MaxShards; entries written through the plain Put (non-sharded
// callers) live in generation slot 0.
type distCache struct {
	gens   [index.MaxShards]atomic.Uint64
	shards []cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[cacheKey]*list.Element
	lru *list.List // front = most recent
}

type cacheKey struct {
	q, s uint64
}

type cacheEntry struct {
	key   cacheKey
	d     float64
	gen   uint64
	shard uint32
}

// cacheShards is the fixed shard count — a small power of two; the worker
// pool never exceeds the CPU count by much, so 16 shards keep contention
// negligible without scattering the LRU too thin.
const cacheShards = 16

// newDistCache builds a cache bounded at capacity entries (spread over the
// shards). Capacity must be positive.
func newDistCache(capacity int) *distCache {
	per := (capacity + cacheShards - 1) / cacheShards
	if per < 1 {
		per = 1
	}
	c := &distCache{shards: make([]cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap: per,
			m:   make(map[cacheKey]*list.Element),
			lru: list.New(),
		}
	}
	return c
}

func (c *distCache) shard(k cacheKey) *cacheShard {
	// Mix the two hashes; they are already FNV-1a outputs, so the low bits
	// of their XOR spread well across 16 shards.
	return &c.shards[(k.q^k.s)&(cacheShards-1)]
}

// Bump advances every shard generation, invalidating every cached entry.
func (c *distCache) Bump() {
	for i := range c.gens {
		c.gens[i].Add(1)
	}
}

// BumpShard advances one index shard's generation, invalidating only the
// entries whose records live there. Called after each ingest commit with
// the shard the commit routed to.
func (c *distCache) BumpShard(shard uint32) {
	c.gens[shard%index.MaxShards].Add(1)
}

// Get implements index.DistCache.
func (c *distCache) Get(query, seq uint64) (float64, bool) {
	k := cacheKey{q: query, s: seq}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[k]
	if !ok {
		cacheMisses.Inc()
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != c.gens[e.shard%index.MaxShards].Load() {
		// Stale generation: drop it rather than refresh it, so the slot is
		// reusable and the invalidation protocol is observable.
		sh.lru.Remove(el)
		delete(sh.m, k)
		cacheEvictions.Inc()
		cacheMisses.Inc()
		return 0, false
	}
	sh.lru.MoveToFront(el)
	cacheHits.Inc()
	return e.d, true
}

// Put implements index.DistCache (entries land in generation slot 0).
func (c *distCache) Put(query, seq uint64, d float64) {
	c.PutShard(query, seq, d, 0)
}

// PutShard implements index.ShardAwareDistCache: the entry is stamped
// with its record's index shard, so only that shard's ingests invalidate
// it.
func (c *distCache) PutShard(query, seq uint64, d float64, shard uint32) {
	k := cacheKey{q: query, s: seq}
	shard %= index.MaxShards
	gen := c.gens[shard].Load()
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[k]; ok {
		e := el.Value.(*cacheEntry)
		e.d, e.gen, e.shard = d, gen, shard
		sh.lru.MoveToFront(el)
		return
	}
	if sh.lru.Len() >= sh.cap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.m, oldest.Value.(*cacheEntry).key)
		cacheEvictions.Inc()
	}
	sh.m[k] = sh.lru.PushFront(&cacheEntry{key: k, d: d, gen: gen, shard: shard})
}

// Len reports the current number of cached entries (for tests and stats).
func (c *distCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
