package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/video"
)

// noRotate disables automatic snapshots so a test controls rotation.
func noRotate(dir string) Durability {
	return Durability{Dir: dir, SnapshotOps: -1, SnapshotBytes: -1}
}

// querySig fingerprints a database's k-NN behaviour: exact bit patterns
// of the distances and the matched OG identities for a few trajectories.
func querySig(t *testing.T, q func(dist.Sequence, int) []Match) string {
	t.Helper()
	var sig string
	for _, traj := range []dist.Sequence{
		{{20, 120}, {100, 120}, {180, 120}, {280, 120}},
		{{160, 20}, {160, 120}, {160, 220}},
		{{40, 40}, {120, 100}, {240, 200}},
	} {
		for _, m := range q(traj, 5) {
			sig += fmt.Sprintf("%d:%x;", m.Record.OGID, m.Distance)
		}
		sig += "|"
	}
	return sig
}

func sharedSig(t *testing.T, s *SharedDB) string {
	return querySig(t, s.QueryTrajectoryExact) + querySig(t, s.QueryTrajectory)
}

func plainSig(t *testing.T, db *VideoDB) string {
	return querySig(t, db.QueryTrajectoryExact) + querySig(t, db.QueryTrajectory)
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 8, 31)

	s, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotLoaded || rec.ReplayedRecords != 0 {
		t.Errorf("fresh dir recovery = %+v", rec)
	}
	for _, seg := range stream.Segments {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	want := sharedSig(t, s)
	wantStats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything comes back from WAL replay alone.
	s2, rec2, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.SnapshotLoaded {
		t.Error("no snapshot was written, but recovery loaded one")
	}
	if rec2.ReplayedRecords != len(stream.Segments) {
		t.Errorf("replayed %d records, want %d", rec2.ReplayedRecords, len(stream.Segments))
	}
	if rec2.TornTail {
		t.Error("clean shutdown reported a torn tail")
	}
	if got := s2.Stats(); got != wantStats {
		t.Errorf("stats after recovery:\n  got  %+v\n  want %+v", got, wantStats)
	}
	if got := sharedSig(t, s2); got != want {
		t.Error("k-NN results differ after WAL-only recovery")
	}

	// And they equal a plain in-memory database fed the same segments.
	ref := Open(DefaultConfig())
	for _, seg := range stream.Segments {
		if _, err := ref.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if got := plainSig(t, ref); got != want {
		t.Error("durable database diverges from in-memory reference")
	}
}

func TestDurableCheckpointAndRotation(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 8, 33)
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments[:2] {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint folded the first log into the snapshot and removed it.
	if _, err := os.Stat(filepath.Join(dir, "snapshot.strg")); err != nil {
		t.Fatalf("no snapshot after checkpoint: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walFileName(1))); !os.IsNotExist(err) {
		t.Errorf("rotated-out log still present: %v", err)
	}
	// One more op lands in the new log.
	if _, err := s.IngestSegment("Mini", stream.Segments[2]); err != nil {
		t.Fatal(err)
	}
	want := sharedSig(t, s)
	wantStats := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.SnapshotLoaded {
		t.Error("recovery ignored the snapshot")
	}
	if rec.ReplayedRecords != 1 {
		t.Errorf("replayed %d records on top of snapshot, want 1", rec.ReplayedRecords)
	}
	if got := s2.Stats(); got != wantStats {
		t.Errorf("stats after snapshot+WAL recovery:\n  got  %+v\n  want %+v", got, wantStats)
	}
	if got := sharedSig(t, s2); got != want {
		t.Error("k-NN results differ after snapshot+WAL recovery")
	}
}

func TestDurableAutomaticRotation(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 8, 35)
	d := Durability{Dir: dir, SnapshotOps: 2, SnapshotBytes: -1}
	s, _, err := OpenDurable(DefaultConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range stream.Segments {
		if _, err := s.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	want := sharedSig(t, s)
	if err := s.SnapshotErr(); err != nil {
		t.Fatalf("background snapshot failed: %v", err)
	}
	// Close waits out the background snapshot, so the reopen below sees
	// its effect deterministically.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := OpenDurable(DefaultConfig(), d)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !rec.SnapshotLoaded {
		t.Error("automatic rotation never wrote a snapshot")
	}
	if rec.ReplayedRecords >= len(stream.Segments) {
		t.Errorf("replayed %d records; snapshot subsumed nothing", rec.ReplayedRecords)
	}
	if got := sharedSig(t, s2); got != want {
		t.Error("k-NN results differ after automatic-rotation recovery")
	}
}

func TestDurableIngestStreamAndVideo(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 8, 37)
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	want := sharedSig(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.ReplayedRecords != len(stream.Segments) {
		t.Errorf("stream ingest logged %d ops, want one per segment (%d)",
			rec.ReplayedRecords, len(stream.Segments))
	}
	if got := sharedSig(t, s2); got != want {
		t.Error("k-NN results differ after stream-ingest recovery")
	}
}

func TestDurableIngestAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 4, 39)
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestSegment("Mini", stream.Segments[0]); err == nil {
		t.Error("ingest after Close did not error")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint after Close did not error")
	}
}

func TestDurableFailedIngestLeavesWALConsistent(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 4, 41)
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestSegment("Mini", stream.Segments[0]); err != nil {
		t.Fatal(err)
	}
	size := s.WALSize()
	// An invalid segment fails in the build stage, before the WAL hook.
	if _, err := s.IngestSegment("Mini", &video.Segment{}); err == nil {
		t.Fatal("empty segment ingested")
	}
	if got := s.WALSize(); got != size {
		t.Errorf("failed ingest moved the WAL: %d -> %d", size, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec.ReplayedRecords != 1 {
		t.Errorf("replayed %d records, want 1", rec.ReplayedRecords)
	}
}

// TestDurableConcurrentIngestAndQuery exercises the durable write path
// under -race: queries stream against one writer goroutine appending to
// the WAL and rotating snapshots.
func TestDurableConcurrentIngestAndQuery(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 10, 43)
	s, _, err := OpenDurable(DefaultConfig(), Durability{Dir: dir, SnapshotOps: 2, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, seg := range stream.Segments {
			if _, err := s.IngestSegment("Mini", seg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	q := dist.Sequence{{20, 120}, {160, 120}, {300, 120}}
	for i := 0; i < 50; i++ {
		s.QueryTrajectory(q, 3)
		s.Stats()
		s.WALSize()
	}
	wg.Wait()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseWALName(t *testing.T) {
	if got := walFileName(7); got != "wal-00000007.log" {
		t.Errorf("walFileName(7) = %q", got)
	}
	for name, want := range map[string]uint64{
		"wal-00000001.log": 1,
		"wal-12345678.log": 12345678,
	} {
		if seq, ok := parseWALName(name); !ok || seq != want {
			t.Errorf("parseWALName(%q) = %d, %v", name, seq, ok)
		}
	}
	for _, name := range []string{"snapshot.strg", "wal-1.log", "wal-00000001.log.tmp", "wal-xxxxxxxx.log"} {
		if _, ok := parseWALName(name); ok {
			t.Errorf("parseWALName(%q) accepted", name)
		}
	}
}

func TestOpenDurableRequiresDir(t *testing.T) {
	if _, _, err := OpenDurable(DefaultConfig(), Durability{}); err == nil {
		t.Error("OpenDurable without a directory did not error")
	}
}

func TestDurableWALChainGapRefused(t *testing.T) {
	dir := t.TempDir()
	stream := miniStream(t, 4, 45)
	s, _, err := OpenDurable(DefaultConfig(), noRotate(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestSegment("Mini", stream.Segments[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Remove the log the snapshot points at and plant a later one: a gap.
	if err := os.Remove(filepath.Join(dir, walFileName(2))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFileName(3)), []byte("STRGWAL\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurable(DefaultConfig(), noRotate(dir)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("gapped WAL chain: err = %v, want ErrCorrupt", err)
	}
}
