package core

import "strgindex/internal/strg"

// CommitDelta describes one segment commit: exactly the Object Graphs (and
// their clip records) that entered the index in that commit's version swap.
// The standing-query engine (internal/feed) consumes these to evaluate
// subscriptions incrementally — per-OG predicate matching against only the
// delta instead of rescanning the corpus.
type CommitDelta struct {
	// Stream and Segment identify the commit.
	Stream  string
	Segment string
	// Shard is the index shard the segment's cluster landed on.
	Shard int
	// Versions is each shard's published snapshot version immediately after
	// the swap — the evaluation point the delta corresponds to.
	Versions []uint64
	// Records and OGs are aligned: Records[i] is the clip record indexed for
	// OGs[i], and Records[i].OGID is the database ID. OGIDs are dense and
	// globally monotone in commit order, which is what lets a consumer prove
	// exactly-once processing by watermark. The OG pointers are the retained
	// graphs themselves — treat them as immutable.
	Records []ClipRecord
	OGs     []*strg.OG
}

// SegmentsIn returns how many segments have been committed under stream —
// the read-your-writes primitive a feed uses to reconcile its journal
// against the database after a crash (was epoch N's commit applied?).
func (db *VideoDB) SegmentsIn(stream string) int { return db.streamSegs[stream] }

// OnCommitDelta registers fn to run at the end of every segment commit,
// inside the commit's critical section. fn must be fast and must not call
// back into the database (on a SharedDB the write lock is held); the
// intended use is handing the delta to a queue that a dispatcher goroutine
// drains.
func (db *VideoDB) OnCommitDelta(fn func(CommitDelta)) { db.onDelta = fn }

// OnCommitDelta is VideoDB.OnCommitDelta under the write lock.
func (s *SharedDB) OnCommitDelta(fn func(CommitDelta)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.OnCommitDelta(fn)
}

// SegmentsIn is VideoDB.SegmentsIn under a read lock.
func (s *SharedDB) SegmentsIn(stream string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.SegmentsIn(stream)
}
