package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/eval"
	"strgindex/internal/index"
	"strgindex/internal/query"
	"strgindex/internal/strg"
	"strgindex/internal/synth"
	"strgindex/internal/video"
)

// approxDB ingests the lab stream into a database with the approximate
// tier on, with an IVF small enough that the mini corpus actually trains
// it (the default TrainSize would leave it a single flat list).
func approxDB(t *testing.T, mut func(*Config)) *VideoDB {
	t.Helper()
	return composedDB(t, func(c *Config) {
		c.Approx = ApproxConfig{Enabled: true, NLists: 4, TrainSize: 16}
		if mut != nil {
			mut(c)
		}
	})
}

// checkStatsInvariant: every record that entered the rerank cascade must
// be accounted for exactly once — the same invariant the tree search
// holds.
func checkStatsInvariant(t *testing.T, st index.SearchStats) {
	t.Helper()
	if sum := st.CacheHits + st.LBQuickPruned + st.LBEnvelopePruned + st.DPEvaluated + st.DPAbandoned; st.Records != sum {
		t.Errorf("stats invariant broken: Records=%d but cascade outcomes sum to %d (%+v)", st.Records, sum, st)
	}
}

// TestApproxDisabledSentinel: without Config.Approx.Enabled, both the
// direct API and a declarative "mode": "approx" query must fail with
// ErrApproxDisabled — a configuration error the server maps to 400, never
// a silent fallback to a different access path.
func TestApproxDisabledSentinel(t *testing.T) {
	db := composedDB(t, nil)
	traj := dist.Sequence{{16, 120}, {46, 120}, {76, 120}, {106, 120}}
	if _, err := db.QueryTrajectoryApprox(traj, 5, 0); !errors.Is(err, ErrApproxDisabled) {
		t.Errorf("direct API: err = %v, want ErrApproxDisabled", err)
	}
	_, err := db.QueryComposed(&query.Query{
		Similar: &query.SimilarClause{Trajectory: traj, K: 5, Mode: query.ModeApprox},
	})
	if !errors.Is(err, ErrApproxDisabled) {
		t.Errorf("composed: err = %v, want ErrApproxDisabled", err)
	}
}

// TestApproxFullProbeIsExact: probing every list makes the candidate set
// the whole corpus, so recall against the exact all-cluster search must
// be 1.0 — by construction, not by luck. Distances must agree exactly
// (the rerank runs the same cascade).
func TestApproxFullProbeIsExact(t *testing.T) {
	db := approxDB(t, nil)
	queries := []dist.Sequence{
		{{16, 120}, {46, 120}, {76, 120}, {106, 120}},
		{{160, 10}, {160, 120}, {160, 230}},
		{{300, 240}, {200, 150}, {100, 60}},
	}
	nlists := db.vec.ivf.NLists()
	if nlists < 2 {
		t.Fatalf("IVF did not train (%d lists); the contract test needs a real probe decision", nlists)
	}
	const k = 7
	for qi, traj := range queries {
		approx, st, info, err := db.QueryTrajectoryApproxStatsCtx(t.Context(), traj, k, nlists)
		if err != nil {
			t.Fatal(err)
		}
		checkStatsInvariant(t, st)
		if info.Probed != nlists || info.RecallProxy != 1 {
			t.Errorf("query %d: probed %d/%d lists, proxy %g; want all and 1.0", qi, info.Probed, nlists, info.RecallProxy)
		}
		if st.Records != db.Stats().OGs {
			t.Errorf("query %d: full probe reranked %d of %d OGs", qi, st.Records, db.Stats().OGs)
		}
		exact, _, err := db.QueryTrajectoryExactStatsCtx(t.Context(), traj, k)
		if err != nil {
			t.Fatal(err)
		}
		ids := func(ms []Match) []int {
			out := make([]int, len(ms))
			for i, m := range ms {
				out[i] = m.Record.OGID
			}
			return out
		}
		if r := eval.RecallAtK(ids(approx), ids(exact), k); r != 1 {
			t.Errorf("query %d: recall@%d = %g with every list probed, want 1", qi, k, r)
		}
		for i := range approx {
			if approx[i].Distance != exact[i].Distance {
				t.Errorf("query %d rank %d: approx distance %v, exact %v", qi, i, approx[i].Distance, exact[i].Distance)
			}
		}
	}
}

// TestApproxRecallMonotoneNProbe: widening the probe can only improve (or
// keep) recall — the candidate set at nprobe+1 is a superset.
func TestApproxRecallMonotoneNProbe(t *testing.T) {
	db := approxDB(t, nil)
	traj := dist.Sequence{{16, 120}, {106, 120}, {200, 120}}
	const k = 5
	exact, _, err := db.QueryTrajectoryExactStatsCtx(t.Context(), traj, k)
	if err != nil {
		t.Fatal(err)
	}
	exactIDs := make([]int, len(exact))
	for i, m := range exact {
		exactIDs[i] = m.Record.OGID
	}
	prev := -1.0
	for nprobe := 1; nprobe <= db.vec.ivf.NLists(); nprobe++ {
		ms, st, _, err := db.QueryTrajectoryApproxStatsCtx(t.Context(), traj, k, nprobe)
		if err != nil {
			t.Fatal(err)
		}
		checkStatsInvariant(t, st)
		ids := make([]int, len(ms))
		for i, m := range ms {
			ids[i] = m.Record.OGID
		}
		r := eval.RecallAtK(ids, exactIDs, k)
		if r < prev {
			t.Errorf("nprobe %d: recall %g dropped below %g", nprobe, r, prev)
		}
		prev = r
	}
	if prev != 1 {
		t.Errorf("recall at full probe = %g, want 1", prev)
	}
}

// TestExactPathsByteIdenticalWithTierOn: compiling the tier in (and
// feeding it every ingest) must not change one byte of the exact
// surfaces — answers and SearchStats — at any shard count. This is the
// "default paths untouched" half of the tier's contract.
func TestExactPathsByteIdenticalWithTierOn(t *testing.T) {
	traj := dist.Sequence{{16, 120}, {46, 120}, {76, 120}, {106, 120}}
	for _, shards := range []int{1, 2, 4} {
		mut := func(on bool) func(*Config) {
			return func(c *Config) {
				c.Index.Shards = shards
				c.Approx = ApproxConfig{Enabled: on, NLists: 4, TrainSize: 16}
			}
		}
		plain := composedDB(t, mut(false))
		tiered := composedDB(t, mut(true))

		type run func(db *VideoDB) ([]Match, index.SearchStats, error)
		cases := []struct {
			name string
			run  run
		}{
			{"knn", func(db *VideoDB) ([]Match, index.SearchStats, error) {
				return db.QueryTrajectoryStatsCtx(t.Context(), traj, 5)
			}},
			{"knn-exact", func(db *VideoDB) ([]Match, index.SearchStats, error) {
				return db.QueryTrajectoryExactStatsCtx(t.Context(), traj, 5)
			}},
			{"range", func(db *VideoDB) ([]Match, index.SearchStats, error) {
				return db.QueryRangeStatsCtx(t.Context(), traj, 950)
			}},
		}
		for _, c := range cases {
			wantM, wantSt, err := c.run(plain)
			if err != nil {
				t.Fatal(err)
			}
			gotM, gotSt, err := c.run(tiered)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotM, wantM) {
				t.Errorf("shards=%d %s: matches differ with the tier compiled in", shards, c.name)
			}
			if gotSt != wantSt {
				t.Errorf("shards=%d %s: SearchStats %+v with tier, %+v without", shards, c.name, gotSt, wantSt)
			}
		}

		// The declarative surface: "mode": "exact" (and no mode at all)
		// must route identically on both databases.
		for _, mode := range []string{"", query.ModeExact} {
			q := func() *query.Query {
				return &query.Query{Similar: &query.SimilarClause{Trajectory: traj, K: 5, Mode: mode}}
			}
			want := composed(t, plain, q())
			got := composed(t, tiered, q())
			if got.Plan.Strategy != query.StrategyIndex || want.Plan.Strategy != query.StrategyIndex {
				t.Fatalf("shards=%d mode=%q: strategies %s/%s, want index", shards, mode, got.Plan.Strategy, want.Plan.Strategy)
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) || got.Search != want.Search {
				t.Errorf("shards=%d mode=%q: composed exact path differs with the tier on", shards, mode)
			}
		}
	}
}

// TestApproxComposedFlow: the declarative opt-in end to end — strategy
// "approx", resolved nprobe in the plan, probe accounting in the result,
// and a recall_target of 1 probing every list (provably exact).
func TestApproxComposedFlow(t *testing.T) {
	db := approxDB(t, nil)
	traj := dist.Sequence{{16, 120}, {46, 120}, {76, 120}, {106, 120}}

	res := composed(t, db, &query.Query{
		Similar: &query.SimilarClause{Trajectory: traj, K: 5, Mode: query.ModeApprox, RecallTarget: 1},
	})
	if res.Plan.Strategy != query.StrategyApprox {
		t.Fatalf("strategy = %s, want approx", res.Plan.Strategy)
	}
	if res.Plan.NProbe != db.vec.ivf.NLists() {
		t.Errorf("recall_target 1 resolved nprobe %d, want all %d lists", res.Plan.NProbe, db.vec.ivf.NLists())
	}
	if res.Approx == nil || res.Approx.Probed != db.vec.ivf.NLists() || res.Approx.RecallProxy != 1 {
		t.Errorf("approx info = %+v, want full probe with proxy 1", res.Approx)
	}
	checkStatsInvariant(t, res.Search)
	exact, _, err := db.QueryTrajectoryExactStatsCtx(t.Context(), traj, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(exact) {
		t.Fatalf("%d matches, exact %d", len(res.Matches), len(exact))
	}
	for i := range exact {
		if res.Matches[i].Distance != exact[i].Distance {
			t.Errorf("rank %d: distance %v, exact %v", i, res.Matches[i].Distance, exact[i].Distance)
		}
	}

	// An explicit nprobe lands in the plan and the limit still applies.
	res = composed(t, db, &query.Query{
		Similar: &query.SimilarClause{Trajectory: traj, K: 5, Mode: query.ModeApprox, NProbe: 2},
		Limit:   2,
	})
	if res.Plan.NProbe != 2 || res.Approx.Probed != 2 {
		t.Errorf("nprobe 2 resolved to plan %d / probed %d", res.Plan.NProbe, res.Approx.Probed)
	}
	if len(res.Matches) != 2 || res.Total != 5 || !res.Truncated {
		t.Errorf("limit: got %d/%d truncated=%v, want 2/5 true", len(res.Matches), res.Total, res.Truncated)
	}
}

// TestEmbeddingTierDeterministic: the tier is a pure function of the
// ingest stream — worker counts must not leak into it, and a snapshot
// round trip must restore it bit-identically.
func TestEmbeddingTierDeterministic(t *testing.T) {
	build := func(conc int) *VideoDB {
		return composedDB(t, func(c *Config) {
			c.Concurrency = conc
			c.Approx = ApproxConfig{Enabled: true, NLists: 4, TrainSize: 16}
		})
	}
	seq := build(1)
	par := build(4)
	if !reflect.DeepEqual(seq.vec.ivf.Snapshot(), par.vec.ivf.Snapshot()) {
		t.Error("IVF state differs between Concurrency 1 and 4")
	}

	var buf bytes.Buffer
	if err := seq.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Approx = ApproxConfig{Enabled: true, NLists: 4, TrainSize: 16}
	re, err := Load(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.vec.ivf.Snapshot(), seq.vec.ivf.Snapshot()) {
		t.Error("IVF state differs across the save/load round trip")
	}
	if len(re.vec.seqs) != len(seq.vec.seqs) || len(re.vec.sums) != len(seq.vec.sums) {
		t.Errorf("rerank caches hold %d/%d entries after load, want %d", len(re.vec.seqs), len(re.vec.sums), len(seq.vec.seqs))
	}
}

// TestApproxSnapshotCrossCompat: the four corners of the version-3
// container — saved with/without the tier, loaded with/without it — plus
// a version-byte-2 file (the pre-tier format) loaded under a tier-enabled
// config, which must rebuild deterministically from the OG stream.
func TestApproxSnapshotCrossCompat(t *testing.T) {
	tierCfg := func() Config {
		cfg := DefaultConfig()
		cfg.Approx = ApproxConfig{Enabled: true, NLists: 4, TrainSize: 16}
		return cfg
	}
	withTier := approxDB(t, nil)
	withoutTier := composedDB(t, nil)
	traj := dist.Sequence{{16, 120}, {46, 120}, {76, 120}, {106, 120}}

	save := func(db *VideoDB) []byte {
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	tierBytes, plainBytes := save(withTier), save(withoutTier)

	// Tier-enabled snapshot under a tier-disabled config: Vec is ignored.
	re, err := Load(bytes.NewReader(tierBytes), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if re.vec != nil {
		t.Error("tier-disabled load materialized a vector tier")
	}
	if _, err := re.QueryTrajectoryApprox(traj, 5, 0); !errors.Is(err, ErrApproxDisabled) {
		t.Errorf("approx query on tier-disabled load: %v, want ErrApproxDisabled", err)
	}

	// Tier-disabled snapshot under a tier-enabled config: rebuilt from
	// OGs, bit-identical to the incrementally maintained tier.
	re, err = Load(bytes.NewReader(plainBytes), tierCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.vec.ivf.Snapshot(), withTier.vec.ivf.Snapshot()) {
		t.Error("tier rebuilt from a Vec-less snapshot differs from the maintained one")
	}

	// A version-2 container (the previous format, byte-patched the way
	// TestV1SnapshotStillLoads emulates old files) still loads either way.
	v2 := append([]byte(nil), plainBytes...)
	binary.LittleEndian.PutUint32(v2[8:], 2)
	if _, err := Load(bytes.NewReader(v2), DefaultConfig()); err != nil {
		t.Fatalf("v2 container under default config: %v", err)
	}
	re, err = Load(bytes.NewReader(v2), tierCfg())
	if err != nil {
		t.Fatalf("v2 container under tier config: %v", err)
	}
	ms, st, _, err := re.QueryTrajectoryApproxStatsCtx(t.Context(), traj, 5, re.vec.ivf.NLists())
	if err != nil {
		t.Fatal(err)
	}
	checkStatsInvariant(t, st)
	exact, _, err := re.QueryTrajectoryExactStatsCtx(t.Context(), traj, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if ms[i].Distance != exact[i].Distance {
			t.Errorf("rank %d after v2 load: approx %v, exact %v", i, ms[i].Distance, exact[i].Distance)
		}
	}

	// A corrupt vector index must be rejected as corruption, not loaded.
	img, err := readSnapshot(bytes.NewReader(tierBytes))
	if err != nil {
		t.Fatal(err)
	}
	img.Vec.Count++ // lists no longer sum to Count
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), tierCfg()); !errors.Is(err, ErrCorrupt) {
		t.Errorf("poisoned vector index loaded: err = %v, want ErrCorrupt", err)
	}
}

// TestIngestTrajectories: the bulk path must build the same queryable
// state the segment pipeline would — indexed, predicate-visible,
// embedded, spatially indexed — and refuse durable databases.
func TestIngestTrajectories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Approx = ApproxConfig{Enabled: true, NLists: 4, TrainSize: 16}
	db := Open(cfg)

	rng := rand.New(rand.NewSource(9))
	const n = 60
	ogs := make([]*strg.OG, n)
	for i := range ogs {
		seq := make(dist.Sequence, 12)
		x, y := rng.Float64()*320, rng.Float64()*240
		for j := range seq {
			x += rng.NormFloat64() * 5
			y += rng.NormFloat64() * 5
			seq[j] = dist.Vec{x, y}
		}
		ogs[i] = synth.AsOG(i, seq, fmt.Sprintf("lab-%d", i%4))
	}
	if err := db.IngestTrajectories("cam0", ogs[:40]); err != nil {
		t.Fatal(err)
	}
	if err := db.IngestTrajectories("cam0", ogs[40:]); err != nil {
		t.Fatal(err)
	}

	if got := db.Stats().OGs; got != n {
		t.Fatalf("indexed %d OGs, want %d", got, n)
	}
	if len(db.ogs) != n || len(db.records) != n || db.vec.ivf.Len() != n {
		t.Fatalf("retained %d OGs / %d records / %d vectors, want %d each", len(db.ogs), len(db.records), db.vec.ivf.Len(), n)
	}
	for i, r := range db.records {
		if r.OGID != i || r.Stream != "cam0" {
			t.Fatalf("record %d = %+v, want OGID %d on cam0", i, r, i)
		}
	}
	if err := db.CheckSpatialIndex(); err != nil {
		t.Fatal(err)
	}

	q := ogs[17].Sequence()
	exact, _, err := db.QueryTrajectoryExactStatsCtx(t.Context(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 3 || exact[0].Record.OGID != 17 || exact[0].Distance != 0 {
		t.Errorf("self-query top hit = %+v, want OG 17 at distance 0", exact[0])
	}
	approx, st, _, err := db.QueryTrajectoryApproxStatsCtx(t.Context(), q, 3, db.vec.ivf.NLists())
	if err != nil {
		t.Fatal(err)
	}
	checkStatsInvariant(t, st)
	if approx[0].Record.OGID != 17 || approx[0].Distance != 0 {
		t.Errorf("approx self-query top hit = %+v, want OG 17 at distance 0", approx[0])
	}

	// Durable databases must refuse: raw OGs have no WAL representation,
	// so acknowledging them would lose data on the next recovery.
	db.onCommit = func(string, *video.Segment, int) error { return nil }
	if err := db.IngestTrajectories("cam0", ogs[:1]); err == nil {
		t.Error("bulk ingest on a durable database was accepted")
	}
}
