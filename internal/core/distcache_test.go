package core

import (
	"math"
	"sync"
	"testing"

	"strgindex/internal/dist"
)

func TestDistCacheGetPut(t *testing.T) {
	c := newDistCache(64)
	if _, ok := c.Get(1, 2); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, 2, 3.5)
	if d, ok := c.Get(1, 2); !ok || d != 3.5 {
		t.Fatalf("Get = (%v, %v), want (3.5, true)", d, ok)
	}
	// Bit-exactness for special values.
	c.Put(4, 5, math.Inf(1))
	if d, ok := c.Get(4, 5); !ok || !math.IsInf(d, 1) {
		t.Fatalf("Get(+Inf entry) = (%v, %v)", d, ok)
	}
	// Overwrite keeps a single entry.
	c.Put(1, 2, 7.0)
	if d, _ := c.Get(1, 2); d != 7.0 {
		t.Fatalf("overwrite lost: %v", d)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
}

func TestDistCacheLRUEviction(t *testing.T) {
	// Capacity 16 over 16 shards = 1 entry per shard: inserting two keys
	// mapping to the same shard evicts the older one.
	c := newDistCache(16)
	// Keys (0, s) land in shard s&15; use the same shard twice.
	c.Put(0, 16, 1) // shard 0
	c.Put(0, 32, 2) // shard 0 again -> evicts (0, 16)
	if _, ok := c.Get(0, 16); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if d, ok := c.Get(0, 32); !ok || d != 2 {
		t.Fatalf("newest entry missing: (%v, %v)", d, ok)
	}
}

func TestDistCacheLRURecency(t *testing.T) {
	// Two entries per shard: touching the older one flips the eviction
	// order.
	c := newDistCache(32)
	c.Put(0, 16, 1)
	c.Put(0, 32, 2)
	c.Get(0, 16) // refresh the older entry
	c.Put(0, 48, 3)
	if _, ok := c.Get(0, 16); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(0, 32); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestDistCacheGenerationInvalidation(t *testing.T) {
	c := newDistCache(64)
	c.Put(1, 2, 3)
	c.Bump()
	if _, ok := c.Get(1, 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("stale entry retained after contact: Len = %d", n)
	}
	// A fresh Put under the new generation works.
	c.Put(1, 2, 4)
	if d, ok := c.Get(1, 2); !ok || d != 4 {
		t.Fatalf("post-bump Put lost: (%v, %v)", d, ok)
	}
}

func TestDistCacheConcurrent(t *testing.T) {
	c := newDistCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := uint64(i % 64)
				c.Put(k, k*31, float64(k))
				if d, ok := c.Get(k, k*31); ok && d != float64(k) {
					t.Errorf("worker %d: wrong value %v for key %d", w, d, k)
				}
				if i%97 == 0 {
					c.Bump()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestVideoDBDistCache wires the cache through the full database surface:
// repeated queries return identical matches, and an ingest invalidates via
// the generation bump without changing results.
func TestVideoDBDistCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Concurrency = 2
	cfg.DistCacheSize = -1 // DefaultDistCacheSize
	db := Open(cfg)
	if db.cache == nil {
		t.Fatal("negative DistCacheSize did not enable the cache")
	}
	plain := Open(DefaultConfig())

	stream := miniStream(t, 12, 21)
	if err := db.IngestStream(stream); err != nil {
		t.Fatal(err)
	}
	if err := plain.IngestStream(stream); err != nil {
		t.Fatal(err)
	}

	q := make(dist.Sequence, 10)
	for i := range q {
		q[i] = dist.Vec{16 + float64(i)*30, 120}
	}
	want := plain.QueryTrajectoryExact(q, 5)
	for round := 0; round < 3; round++ {
		got := db.QueryTrajectoryExact(q, 5)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d matches, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d match %d = %+v, want %+v", round, i, got[i], want[i])
			}
		}
	}
	if db.cache.Len() == 0 {
		t.Fatal("cache empty after repeated queries")
	}

	// Ingest bumps the touched shard's generation: the next query
	// repopulates rather than serving stale entries, and results still
	// match a cache-free database.
	genSum := func() uint64 {
		var n uint64
		for i := range db.cache.gens {
			n += db.cache.gens[i].Load()
		}
		return n
	}
	gen := genSum()
	extra := miniStream(t, 4, 22)
	if err := db.IngestStream(extra); err != nil {
		t.Fatal(err)
	}
	if err := plain.IngestStream(extra); err != nil {
		t.Fatal(err)
	}
	if genSum() == gen {
		t.Fatal("ingest did not bump any cache shard generation")
	}
	got := db.QueryTrajectoryExact(q, 5)
	want = plain.QueryTrajectoryExact(q, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-ingest match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
