package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/faultfs"
)

// resyncMarker, present in the data directory, records that the local
// state was found divergent (or behind the primary's retained WAL) and
// must be discarded: the next Open wipes the directory and bootstraps
// fresh. Crash-only repair — the running process never swaps its
// database out from under lock-free readers.
const resyncMarker = "RESYNC"

// ErrResyncNeeded is returned by Run when the replica can no longer
// follow the primary incrementally: its position fell off the primary's
// retained WAL, or anti-entropy detected divergence. The process should
// exit and restart; Open sees the persisted marker, wipes the local
// state, and re-bootstraps.
var ErrResyncNeeded = errors.New("replica: local state requires re-bootstrap")

// Config configures a replica.
type Config struct {
	// Primary is the base URL of the primary's HTTP API. Required.
	Primary string
	// ID identifies this replica in the primary's registry (retention is
	// held per ID). Required.
	ID string
	// Dir is the local data directory. Required.
	Dir string
	// DB is the core configuration — it must match the primary's (shard
	// count included) for byte-identity.
	DB core.Config
	// Durability tunes the local WAL/snapshot thresholds; Dir and FS are
	// taken from here when set.
	Durability core.Durability
	// LagMax flips Healthy to an error once the replica trails the
	// primary by more than this many committed WAL bytes. 0 means 64 MiB;
	// negative disables the bound.
	LagMax int64
	// PollInterval is the idle wait between fetches when caught up.
	// 0 means 250ms.
	PollInterval time.Duration
	// BatchBytes asks the primary for roughly this many payload bytes per
	// batch. 0 accepts the primary's default.
	BatchBytes int64
	// AntiEntropyInterval paces digest comparisons against the primary
	// (only run when caught up at a matched position). 0 means 30s;
	// negative disables them.
	AntiEntropyInterval time.Duration
	// BackoffMin/BackoffMax bound the exponential retry backoff of the
	// connection loop. 0 means 100ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// Client is the HTTP client; nil means a 30s-timeout client.
	Client *http.Client
	// Logger receives connection-loop events; nil discards them.
	Logger *slog.Logger
}

func (c *Config) fs() faultfs.FS {
	if c.Durability.FS != nil {
		return c.Durability.FS
	}
	return faultfs.OS{}
}

func (c *Config) withDefaults() error {
	if c.Primary == "" || c.ID == "" || c.Dir == "" {
		return fmt.Errorf("replica: Primary, ID and Dir are required")
	}
	if _, err := url.Parse(c.Primary); err != nil {
		return fmt.Errorf("replica: primary URL: %w", err)
	}
	if c.LagMax == 0 {
		c.LagMax = 64 << 20
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 30 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c.Durability.Dir = c.Dir
	if c.Durability.FS == nil {
		c.Durability.FS = faultfs.OS{}
	}
	return nil
}

// Replica is a read replica: a replica-mode SharedDB kept in sync by a
// connection loop that fetches Merkle-verified WAL batches from the
// primary.
type Replica struct {
	cfg Config
	db  *core.SharedDB

	lag      atomic.Int64
	synced   atomic.Bool // one full catch-up has completed
	diverged atomic.Bool
	lastSeen atomic.Int64 // unix nanos of the last successful primary contact
}

// Open prepares a replica: if the directory holds no usable state (or a
// resync marker from a previous incarnation), it registers with the
// primary, downloads and verifies a bootstrap snapshot, and installs it;
// then it opens the replica-mode database through the normal crash
// recovery path. A corrupt local state is treated like a resync marker —
// replica state is derived, so the repair is always wipe + re-fetch.
func Open(ctx context.Context, cfg Config) (*Replica, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	fsys := cfg.fs()
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: creating %s: %w", cfg.Dir, err)
	}
	r := &Replica{cfg: cfg}

	if _, err := fsys.Stat(join(cfg.Dir, resyncMarker)); err == nil {
		cfg.Logger.Warn("resync marker found; discarding local state", "dir", cfg.Dir)
		if err := r.wipeDir(); err != nil {
			return nil, err
		}
	}
	empty, err := r.dirEmpty()
	if err != nil {
		return nil, err
	}
	if empty {
		if err := r.bootstrap(ctx); err != nil {
			return nil, err
		}
	}

	db, _, err := core.OpenReplica(cfg.DB, cfg.Durability)
	if errors.Is(err, core.ErrCorrupt) {
		// Local state is derived and re-fetchable: wipe and bootstrap
		// rather than refusing to start.
		cfg.Logger.Warn("local replica state corrupt; re-bootstrapping", "err", err)
		if werr := r.wipeDir(); werr != nil {
			return nil, werr
		}
		if berr := r.bootstrap(ctx); berr != nil {
			return nil, berr
		}
		db, _, err = core.OpenReplica(cfg.DB, cfg.Durability)
	}
	if err != nil {
		return nil, err
	}
	r.db = db
	// Re-assert registration and the recovered position so the primary
	// pins retention from our true resume point.
	_ = r.ack(ctx, db.ReplicaPos())
	return r, nil
}

func join(dir, name string) string { return dir + string(os.PathSeparator) + name }

func (r *Replica) dirEmpty() (bool, error) {
	entries, err := r.cfg.fs().ReadDir(r.cfg.Dir)
	if err != nil {
		return false, fmt.Errorf("replica: reading %s: %w", r.cfg.Dir, err)
	}
	return len(entries) == 0, nil
}

func (r *Replica) wipeDir() error {
	fsys := r.cfg.fs()
	entries, err := fsys.ReadDir(r.cfg.Dir)
	if err != nil {
		return fmt.Errorf("replica: reading %s: %w", r.cfg.Dir, err)
	}
	for _, e := range entries {
		if err := fsys.Remove(join(r.cfg.Dir, e.Name())); err != nil {
			return fmt.Errorf("replica: clearing %s: %w", r.cfg.Dir, err)
		}
	}
	return fsys.SyncDir(r.cfg.Dir)
}

// markResync persists the resync decision so the next Open repairs even
// if this process dies immediately after. Best effort: losing the marker
// only means divergence is re-detected on the next run.
func (r *Replica) markResync() {
	fsys := r.cfg.fs()
	if f, err := fsys.OpenFile(join(r.cfg.Dir, resyncMarker), os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
		f.Close()
		_ = fsys.SyncDir(r.cfg.Dir)
	}
}

// bootstrap registers with the primary (pinning WAL retention before the
// snapshot position exists), downloads the snapshot to a temp file,
// verifies the container checksum, and installs it atomically.
func (r *Replica) bootstrap(ctx context.Context) error {
	if err := r.register(ctx); err != nil {
		return err
	}
	fsys := r.cfg.fs()
	tmp := join(r.cfg.Dir, "bootstrap.strg.tmp")
	final := join(r.cfg.Dir, "snapshot.strg")

	// The replica id rides along so the primary Touches our registration
	// as it serves the stream.
	resp, err := r.get(ctx, "/v1/replication/snapshot", url.Values{"replica": {r.cfg.ID}})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("bootstrap", resp)
	}
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("replica: creating %s: %w", tmp, err)
	}
	// Re-register periodically while the snapshot streams: a download
	// longer than the primary's replica TTL would otherwise expire the
	// registration mid-bootstrap, letting rotation delete the WAL between
	// the snapshot position and our first ack.
	kctx, kcancel := context.WithCancel(ctx)
	kdone := make(chan struct{})
	go func() {
		defer close(kdone)
		t := time.NewTicker(30 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-kctx.Done():
				return
			case <-t.C:
				_ = r.register(kctx)
			}
		}
	}()
	_, cerr := io.Copy(f, resp.Body)
	kcancel()
	<-kdone
	if serr := f.Sync(); cerr == nil {
		cerr = serr
	}
	if clerr := f.Close(); cerr == nil {
		cerr = clerr
	}
	if cerr != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("replica: downloading bootstrap: %w", cerr)
	}
	// Verify before install: a torn or bit-flipped download fails the
	// container CRC here and is re-fetched, never loaded.
	pos, _, err := core.InspectSnapshotFile(fsys, tmp)
	if err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("replica: bootstrap verification: %w", err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("replica: installing bootstrap: %w", err)
	}
	if err := fsys.SyncDir(r.cfg.Dir); err != nil {
		return err
	}
	mBootstraps.Inc()
	r.cfg.Logger.Info("bootstrap installed", "pos", pos.String())
	return r.ack(ctx, pos)
}

// DB exposes the replica-mode database for serving queries.
func (r *Replica) DB() *core.SharedDB { return r.db }

// Lag returns the last reported lag in committed primary WAL bytes.
func (r *Replica) Lag() int64 { return r.lag.Load() }

// Healthy implements the readiness contract: nil while the replica is
// serving verified, fresh-enough state. It fails when anti-entropy found
// divergence, before the first full catch-up, and when lag exceeds
// LagMax. A dead primary does NOT fail it — the replica keeps serving
// reads at its last verified version (lag freezes at the last report).
func (r *Replica) Healthy() error {
	if r.diverged.Load() {
		return fmt.Errorf("replica: state diverged from primary; awaiting re-bootstrap")
	}
	if !r.synced.Load() {
		return fmt.Errorf("replica: initial sync not complete")
	}
	if lag := r.lag.Load(); r.cfg.LagMax > 0 && lag > r.cfg.LagMax {
		return fmt.Errorf("replica: lag %d bytes exceeds bound %d", lag, r.cfg.LagMax)
	}
	return nil
}

// Status is the replica's replication status report.
type Status struct {
	Role     string      `json:"role"`
	Primary  string      `json:"primary"`
	Applied  core.WALPos `json:"applied"`
	Segments int         `json:"segments"`
	LagBytes int64       `json:"lag_bytes"`
	Synced   bool        `json:"synced"`
	Diverged bool        `json:"diverged"`
	// LastContact is seconds since the last successful primary exchange
	// (-1 before the first).
	LastContact float64 `json:"last_contact_seconds"`
}

// Status reports the replica's applied position, lag and health.
func (r *Replica) Status() Status {
	st := Status{
		Role:     "replica",
		Primary:  r.cfg.Primary,
		Applied:  r.db.ReplicaPos(),
		Segments: r.db.AppliedSegments(),
		LagBytes: r.lag.Load(),
		Synced:   r.synced.Load(),
		Diverged: r.diverged.Load(),
	}
	st.LastContact = -1
	if ns := r.lastSeen.Load(); ns > 0 {
		st.LastContact = time.Since(time.Unix(0, ns)).Seconds()
	}
	return st
}

// Close checkpoints and closes the local database.
func (r *Replica) Close() error {
	if err := r.db.Checkpoint(); err != nil {
		r.cfg.Logger.Warn("final replica checkpoint failed", "err", err)
	}
	return r.db.Close()
}

// Run drives the connection loop until ctx is canceled or the replica
// needs a re-bootstrap (ErrResyncNeeded — the caller should exit and
// restart; Open repairs). Transient errors — primary down, shed requests,
// torn or corrupt batches — are retried with exponential backoff and
// jitter; corrupt batches are never applied, only re-fetched.
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.cfg.BackoffMin
	lastAE := time.Now()
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		n, retryAfter, err := r.syncOnce(ctx)
		switch {
		case err == nil:
			backoff = r.cfg.BackoffMin
			caughtUp := n == 0
			if caughtUp {
				r.synced.Store(true)
				if r.cfg.AntiEntropyInterval > 0 && time.Since(lastAE) >= r.cfg.AntiEntropyInterval {
					lastAE = time.Now()
					if err := r.antiEntropy(ctx); err != nil {
						if errors.Is(err, ErrResyncNeeded) {
							return err
						}
						r.cfg.Logger.Warn("anti-entropy check failed", "err", err)
					}
				}
				if !sleep(ctx, r.cfg.PollInterval) {
					return ctx.Err()
				}
			}
		case errors.Is(err, ErrResyncNeeded):
			return err
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fallthrough
		default:
			mReconnects.Inc()
			wait := backoff + time.Duration(rand.Int64N(int64(backoff)+1))
			if retryAfter > wait {
				// A shed primary told us when to come back; its hint is
				// already jittered server-side.
				wait = retryAfter
			}
			r.cfg.Logger.Warn("replication fetch failed; backing off",
				"err", err, "wait", wait.String())
			if !sleep(ctx, wait) {
				return ctx.Err()
			}
			if backoff *= 2; backoff > r.cfg.BackoffMax {
				backoff = r.cfg.BackoffMax
			}
		}
	}
}

func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// syncOnce fetches and applies one batch. It returns the number of
// records applied (0 = caught up), and on a 429 the primary's
// Retry-After hint.
func (r *Replica) syncOnce(ctx context.Context) (int, time.Duration, error) {
	from := r.db.ReplicaPos()
	if from.IsZero() {
		return 0, 0, fmt.Errorf("replica: no recovered position; %w", ErrResyncNeeded)
	}
	q := url.Values{
		"replica": {r.cfg.ID},
		"seq":     {strconv.FormatUint(from.Seq, 10)},
		"off":     {strconv.FormatInt(from.Off, 10)},
	}
	if r.cfg.BatchBytes > 0 {
		q.Set("max", strconv.FormatInt(r.cfg.BatchBytes, 10))
	}
	resp, err := r.get(ctx, "/v1/replication/wal", q)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Our position fell off the primary's retained WAL (e.g. the
		// primary restarted and lost the registry). Incremental catch-up
		// is impossible; persist the decision and ask for a restart.
		r.markResync()
		r.diverged.Store(true)
		return 0, 0, fmt.Errorf("replica: position %v no longer retained by primary: %w", from, ErrResyncNeeded)
	case http.StatusTooManyRequests:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return 0, time.Duration(ra) * time.Second, fmt.Errorf("replica: primary shed the fetch (429)")
	default:
		return 0, 0, httpError("wal fetch", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// The connection died mid-body: indistinguishable from a torn
		// batch, and handled the same way — count and re-fetch.
		mRejectedTruncated.Inc()
		return 0, 0, fmt.Errorf("replica: reading batch: %w", err)
	}
	b, err := DecodeBatch(data)
	if err != nil {
		switch {
		case errors.Is(err, ErrTruncated):
			mRejectedTruncated.Inc()
		default:
			mRejectedCorrupt.Inc()
		}
		return 0, 0, err
	}
	if b.Start != from {
		mRejectedCorrupt.Inc()
		return 0, 0, fmt.Errorf("%w: batch starts at %v, requested %v", ErrCorrupt, b.Start, from)
	}
	r.lastSeen.Store(time.Now().UnixNano())
	for _, f := range b.Frames {
		if err := r.db.ApplyReplicated(f.Payload, f.Next); err != nil {
			// The failed record was rolled back; ReplicaPos still names
			// it, so the retry re-fetches from exactly here.
			return 0, 0, fmt.Errorf("replica: applying record at %v: %w", f.Next, err)
		}
		mRecordsApplied.Inc()
	}
	r.lag.Store(b.Lag)
	mLagBytes.Set(b.Lag)
	if len(b.Frames) > 0 {
		mBatchesApplied.Inc()
		if err := r.ack(ctx, b.Next); err != nil {
			// Retention lags but replication is unaffected.
			r.cfg.Logger.Warn("ack failed", "err", err)
		}
	}
	return len(b.Frames), 0, nil
}

// antiEntropy compares state digests with the primary. Digests are only
// comparable at equal positions, so the check is skipped (without
// counting) unless the primary is idle at exactly our applied position.
func (r *Replica) antiEntropy(ctx context.Context) error {
	resp, err := r.get(ctx, "/v1/replication/digest", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("digest", resp)
	}
	var theirs core.StateDigest
	if err := json.NewDecoder(resp.Body).Decode(&theirs); err != nil {
		return fmt.Errorf("replica: decoding digest: %w", err)
	}
	if theirs.Pos != r.db.ReplicaPos() {
		return nil // not at a matched position; nothing to compare
	}
	ours, err := r.db.ReplicationDigest()
	if err != nil {
		return err
	}
	if ours.Pos != theirs.Pos {
		return nil // we moved while computing; skip
	}
	mAntiEntropyChecks.Inc()
	mismatch := ours.Corpus != theirs.Corpus || len(ours.Shards) != len(theirs.Shards)
	if !mismatch {
		for i := range ours.Shards {
			if ours.Shards[i] != theirs.Shards[i] {
				r.cfg.Logger.Error("anti-entropy: shard diverged", "shard", i, "pos", ours.Pos.String())
				mismatch = true
			}
		}
	}
	if mismatch {
		mAntiEntropyRepairs.Inc()
		r.markResync()
		r.diverged.Store(true)
		return fmt.Errorf("replica: state digest mismatch at %v: %w", ours.Pos, ErrResyncNeeded)
	}
	return nil
}

func (r *Replica) register(ctx context.Context) error {
	body, _ := json.Marshal(map[string]string{"replica": r.cfg.ID})
	resp, err := r.post(ctx, "/v1/replication/register", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("register", resp)
	}
	return nil
}

func (r *Replica) ack(ctx context.Context, pos core.WALPos) error {
	body, _ := json.Marshal(struct {
		Replica string `json:"replica"`
		Seq     uint64 `json:"seq"`
		Off     int64  `json:"off"`
	}{r.cfg.ID, pos.Seq, pos.Off})
	resp, err := r.post(ctx, "/v1/replication/ack", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("ack", resp)
	}
	return nil
}

func (r *Replica) get(ctx context.Context, path string, q url.Values) (*http.Response, error) {
	u := r.cfg.Primary + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return r.cfg.Client.Do(req)
}

func (r *Replica) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.Primary+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return r.cfg.Client.Do(req)
}

// httpError folds a non-OK response (and the server's JSON error
// envelope, if present) into one error.
func httpError(what string, resp *http.Response) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Errorf("replica: %s: primary returned %s: %s", what, resp.Status, bytes.TrimSpace(snippet))
}
