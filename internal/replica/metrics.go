package replica

import "strgindex/internal/obs"

// Replication metrics, exposed through the shared registry on /metrics:
//
//	strg_repl_batches_sent_total           batches served by the primary
//	strg_repl_bytes_sent_total             batch bytes served by the primary
//	strg_repl_registered_replicas          live entries in the primary's registry
//	strg_repl_bootstraps_served_total      bootstrap snapshots streamed
//	strg_repl_batches_applied_total        batches verified and applied by a replica
//	strg_repl_records_applied_total        WAL records applied by a replica
//	strg_repl_batches_rejected_total       batches refused before apply, by reason
//	strg_repl_reconnects_total             connection-loop retries after an error
//	strg_repl_lag_bytes                    committed primary bytes this replica trails
//	strg_repl_bootstraps_total             snapshot bootstraps performed by a replica
//	strg_repl_anti_entropy_checks_total    digest comparisons completed at matched positions
//	strg_repl_anti_entropy_repairs_total   divergences detected (each forces a re-bootstrap)
var (
	mBatchesSent = obs.Default.Counter("strg_repl_batches_sent_total",
		"replication batches served by the primary", nil)
	mBytesSent = obs.Default.Counter("strg_repl_bytes_sent_total",
		"replication batch bytes served by the primary", nil)
	mRegistered = obs.Default.Gauge("strg_repl_registered_replicas",
		"replicas currently registered with the primary", nil)
	mBootstrapsServed = obs.Default.Counter("strg_repl_bootstraps_served_total",
		"bootstrap snapshots streamed to replicas", nil)

	mBatchesApplied = obs.Default.Counter("strg_repl_batches_applied_total",
		"replication batches verified and applied", nil)
	mRecordsApplied = obs.Default.Counter("strg_repl_records_applied_total",
		"replicated WAL records applied", nil)
	mRejectedCorrupt = obs.Default.Counter("strg_repl_batches_rejected_total",
		"replication batches refused before apply", obs.Labels{"reason": "corrupt"})
	mRejectedTruncated = obs.Default.Counter("strg_repl_batches_rejected_total",
		"replication batches refused before apply", obs.Labels{"reason": "truncated"})
	mReconnects = obs.Default.Counter("strg_repl_reconnects_total",
		"replica connection-loop retries after an error", nil)
	mLagBytes = obs.Default.Gauge("strg_repl_lag_bytes",
		"committed primary WAL bytes this replica has not applied", nil)
	mBootstraps = obs.Default.Counter("strg_repl_bootstraps_total",
		"snapshot bootstraps performed by this replica", nil)
	mAntiEntropyChecks = obs.Default.Counter("strg_repl_anti_entropy_checks_total",
		"anti-entropy digest comparisons completed at matched positions", nil)
	mAntiEntropyRepairs = obs.Default.Counter("strg_repl_anti_entropy_repairs_total",
		"anti-entropy divergences detected (each forces a re-bootstrap)", nil)
)
