package replica_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strgindex/internal/server"

	"net/http/httptest"
)

// TestReplicaSoak tails a primary under continuous ingest while readers
// hammer the replica, and checks the two live invariants the design
// demands: the applied version never moves backwards, and whenever the
// replica is observed at a stable version its answers are byte-identical
// to a database that ingested exactly that prefix. Run under -race this
// also shakes out apply/read synchronization bugs.
func TestReplicaSoak(t *testing.T) {
	cfg := testCfg(4)
	stream := miniStream(t, 28, 103)
	n := len(stream.Segments)
	sigs := refSigs(t, cfg, stream.Segments)

	pdb := startPrimary(t, t.TempDir(), 4)
	rep := openReplicaAt(t, pdb.ts.URL, t.TempDir(), 4, nil)
	defer rep.Close()
	rts := httptest.NewServer(server.NewShared(rep.DB(), server.Options{Replica: rep, Logger: discardLog()}))
	defer rts.Close()
	stop := runReplica(rep)
	defer stop()

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest trickles in so the replica is observed at many versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for _, seg := range stream.Segments {
			if _, err := pdb.db.IngestSegment("Mini", seg); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: queries on the replica must always answer, never block on
	// apply, and return internally consistent results.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				traj := sigTrajs[worker%len(sigTrajs)]
				ms := rep.DB().QueryTrajectory(traj, 5)
				for j := 1; j < len(ms); j++ {
					if ms[j].Distance < ms[j-1].Distance {
						t.Errorf("replica k-NN out of order under concurrent apply")
						return
					}
				}
				if _, err := rep.DB().QueryTrajectoryExactCtx(context.Background(), traj, 5); err != nil {
					t.Errorf("exact query under apply: %v", err)
					return
				}
			}
		}(i)
	}

	// Monitor: the applied version is monotone — position and segment
	// count never regress.
	wg.Add(1)
	go func() {
		defer wg.Done()
		prevSegs := 0
		prevPos := rep.DB().ReplicaPos()
		for {
			segs := rep.DB().AppliedSegments()
			pos := rep.DB().ReplicaPos()
			if segs < prevSegs {
				t.Errorf("applied segments went backwards: %d -> %d", prevSegs, segs)
				return
			}
			if pos.Before(prevPos) {
				t.Errorf("applied position went backwards: %v -> %v", prevPos, pos)
				return
			}
			prevSegs, prevPos = segs, pos
			select {
			case <-done:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Checker: whenever a full signature is computed with the version
	// stable across it, the answers must match the reference for exactly
	// that prefix — byte identity at matched versions, observed live.
	var matched atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			k1 := rep.DB().AppliedSegments()
			sig := sharedSig(t, rep.DB())
			if k2 := rep.DB().AppliedSegments(); k1 == k2 {
				if sig != sigs[k1] {
					t.Errorf("replica answers at stable version %d differ from reference", k1)
					return
				}
				matched.Add(1)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	wg.Wait()
	waitCaughtUp(t, rep, pdb.db)
	// The final state is fully identical, and the live checker really did
	// observe matched versions along the way.
	if sig := sharedSig(t, rep.DB()); sig != sigs[n] {
		t.Error("soak end state diverges from reference")
	}
	expectIdentical(t, rep, pdb.db)
	if matched.Load() == 0 {
		t.Error("checker never observed a stable version; soak proves nothing")
	}
}
