package replica

import (
	"bytes"
	"errors"
	"testing"

	"strgindex/internal/core"
)

// FuzzReplicaBatchDecode feeds arbitrary bytes to the batch decoder and
// checks the contract the connection loop depends on: it never panics,
// every failure is exactly one of ErrTruncated or ErrCorrupt, a strict
// prefix of a valid encoding is always truncated (retryable), and a
// successful decode round-trips — re-encoding reproduces the input
// byte-for-byte, so nothing the decoder accepted was silently ignored.
func FuzzReplicaBatchDecode(f *testing.F) {
	valid := EncodeBatch(&Batch{
		Start: core.WALPos{Seq: 1, Off: 8},
		Next:  core.WALPos{Seq: 1, Off: 64},
		End:   core.WALPos{Seq: 2, Off: 8},
		Lag:   512,
		Frames: []core.WALFrame{
			{Payload: []byte("seed payload"), Next: core.WALPos{Seq: 1, Off: 36}},
			{Payload: []byte{0, 1, 2, 3}, Next: core.WALPos{Seq: 1, Off: 64}},
		},
	})
	empty := EncodeBatch(&Batch{Start: core.WALPos{Seq: 3, Off: 40}, Next: core.WALPos{Seq: 3, Off: 40}, End: core.WALPos{Seq: 3, Off: 40}})
	f.Add([]byte{})
	f.Add(batchMagic[:])
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)-5])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error outside the dichotomy: %v", err)
			}
			return
		}
		if !bytes.Equal(EncodeBatch(b), data) {
			t.Fatal("accepted batch does not re-encode to the input bytes")
		}
		// Any strict prefix of an accepted encoding must be truncated —
		// the retry path, never the refusal path, never a smaller batch.
		for _, cut := range []int{0, 4, len(data) / 2, len(data) - 1} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if _, perr := DecodeBatch(data[:cut]); !errors.Is(perr, ErrTruncated) {
				t.Fatalf("prefix %d of a valid batch: err = %v, want ErrTruncated", cut, perr)
			}
		}
	})
}
