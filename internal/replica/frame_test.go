package replica

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"testing"

	"strgindex/internal/core"
)

func testBatch() *Batch {
	return &Batch{
		Start: core.WALPos{Seq: 1, Off: 8},
		Next:  core.WALPos{Seq: 2, Off: 77},
		End:   core.WALPos{Seq: 3, Off: 1024},
		Lag:   947,
		Frames: []core.WALFrame{
			{Payload: []byte("alpha"), Next: core.WALPos{Seq: 1, Off: 21}},
			{Payload: []byte{}, Next: core.WALPos{Seq: 1, Off: 29}},
			{Payload: bytes.Repeat([]byte{0xAB}, 300), Next: core.WALPos{Seq: 2, Off: 77}},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := testBatch()
	enc := EncodeBatch(want)
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Start != want.Start || got.Next != want.Next || got.End != want.End || got.Lag != want.Lag {
		t.Errorf("positions: got %+v %+v %+v %d", got.Start, got.Next, got.End, got.Lag)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("frames: got %d, want %d", len(got.Frames), len(want.Frames))
	}
	for i := range want.Frames {
		if !bytes.Equal(got.Frames[i].Payload, want.Frames[i].Payload) {
			t.Errorf("frame %d payload differs", i)
		}
		if got.Frames[i].Next != want.Frames[i].Next {
			t.Errorf("frame %d next = %v, want %v", i, got.Frames[i].Next, want.Frames[i].Next)
		}
	}
	// The encoding is canonical: re-encoding the decoded batch reproduces
	// the bytes (the fuzz target leans on this).
	if !bytes.Equal(EncodeBatch(got), enc) {
		t.Error("re-encoding the decoded batch changed the bytes")
	}
}

func TestBatchEmptyRoundTrip(t *testing.T) {
	pos := core.WALPos{Seq: 4, Off: 99}
	enc := EncodeBatch(&Batch{Start: pos, Next: pos, End: pos})
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(got.Frames) != 0 || got.Start != pos || got.Next != pos || got.End != pos || got.Lag != 0 {
		t.Errorf("empty batch decoded to %+v", got)
	}
}

// TestBatchDecodeDichotomy is the wire-level torn/corrupt contract:
// every strict prefix of a valid encoding is ErrTruncated, and every
// single-byte corruption of the full encoding is refused (never decoded
// to a batch, never reported as merely truncated once the declared
// length is present and intact).
func TestBatchDecodeDichotomy(t *testing.T) {
	enc := EncodeBatch(testBatch())

	for cut := 0; cut < len(enc); cut++ {
		_, err := DecodeBatch(enc[:cut])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTruncated", cut, len(enc), err)
		}
	}

	for i := 0; i < len(enc); i++ {
		for _, mask := range []byte{0x01, 0x80} {
			flipped := append([]byte(nil), enc...)
			flipped[i] ^= mask
			if b, err := DecodeBatch(flipped); err == nil {
				t.Fatalf("flip at %d (mask %#x) decoded successfully to %+v", i, mask, b)
			}
			// A flip outside the magic and length fields leaves a
			// full-length buffer, so it must be corruption, not a retryable
			// truncation.
			if i >= batchMagicSize+batchLenSize {
				if _, err := DecodeBatch(flipped); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %d (mask %#x): err = %v, want ErrCorrupt", i, mask, err)
				}
			}
		}
	}

	// Trailing garbage after the declared length is corruption: a batch
	// is a complete message, not a stream.
	if _, err := DecodeBatch(append(append([]byte(nil), enc...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeBatchDeclaredLengthBounds: the wire bound must leave room
// above the payload budget — a batch carrying a single maximum-size WAL
// record legally declares more than MaxBatchBytes (framing plus the
// one-record overshoot WALFrames permits), and refusing it as corrupt
// would wedge the replica behind that record forever.
func TestDecodeBatchDeclaredLengthBounds(t *testing.T) {
	hdr := make([]byte, batchMagicSize+batchLenSize)
	copy(hdr, batchMagic[:])

	over := MaxBatchBytes + batchFixedSize + frameFixedSize + batchTrailer
	binary.LittleEndian.PutUint32(hdr[batchMagicSize:], uint32(over))
	if _, err := DecodeBatch(hdr); !errors.Is(err, ErrTruncated) {
		t.Errorf("declared length just past the payload budget: err = %v, want ErrTruncated", err)
	}

	binary.LittleEndian.PutUint32(hdr[batchMagicSize:], uint32(maxBatchWireBytes+1))
	if _, err := DecodeBatch(hdr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("declared length above the wire bound: err = %v, want ErrCorrupt", err)
	}
}

func TestMerkleRoot(t *testing.T) {
	if got, want := MerkleRoot(nil), sha256.Sum256(nil); got != want {
		t.Error("empty Merkle root is not SHA-256 of nothing")
	}
	frames := testBatch().Frames
	root := MerkleRoot(frames)
	if root == MerkleRoot(frames[:2]) {
		t.Error("dropping a frame did not change the root")
	}
	swapped := []core.WALFrame{frames[1], frames[0], frames[2]}
	if root == MerkleRoot(swapped) {
		t.Error("reordering frames did not change the root")
	}
	tampered := []core.WALFrame{{Payload: []byte("alphA"), Next: frames[0].Next}, frames[1], frames[2]}
	if root == MerkleRoot(tampered) {
		t.Error("tampering a payload did not change the root")
	}
	// Odd/even reductions are both exercised: 1, 2, 3 and 4 leaves all
	// produce distinct roots.
	seen := map[[sha256.Size]byte]bool{}
	for n := 1; n <= 4; n++ {
		fs := make([]core.WALFrame, n)
		for i := range fs {
			fs[i] = core.WALFrame{Payload: []byte{byte(i)}}
		}
		r := MerkleRoot(fs)
		if seen[r] {
			t.Errorf("%d-leaf root collides with a smaller tree", n)
		}
		seen[r] = true
	}
}
