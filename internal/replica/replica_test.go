// End-to-end replication tests: a real primary served over HTTP, real
// replicas bootstrapping and tailing it, and fault injection at both the
// transport (tampering proxies) and the local disk (faultfs budgets).
// External test package: the fixtures wrap internal/server, which itself
// imports internal/replica.
package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/faultfs"
	"strgindex/internal/replica"
	"strgindex/internal/server"
	"strgindex/internal/video"
	"strgindex/internal/wal"
)

func discardLog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// miniStream generates a small lab-style stream (NumObjects/2 segments).
func miniStream(t *testing.T, n int, seed int64) *video.Stream {
	t.Helper()
	p := video.StreamProfile{
		Name: "Mini", Kind: video.KindLab,
		NumObjects: n, SegmentFrames: 16, ObjectsPerSegment: 2,
	}
	s, err := video.GenerateStream(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testCfg(shards int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Index.Shards = shards
	return cfg
}

var sigTrajs = []dist.Sequence{
	{{20, 120}, {100, 120}, {180, 120}, {280, 120}},
	{{160, 20}, {160, 120}, {160, 220}},
	{{40, 40}, {120, 100}, {240, 200}},
}

// querySig fingerprints k-NN behaviour: exact bit patterns of distances
// and matched OG identities, plus the full SearchStats accounting — the
// byte-identity contract a replica must honour at a matched version.
func querySig(t *testing.T, exact, approx func(context.Context, dist.Sequence, int) ([]core.Match, error)) string {
	t.Helper()
	var sb strings.Builder
	for _, traj := range sigTrajs {
		for _, q := range []func(context.Context, dist.Sequence, int) ([]core.Match, error){exact, approx} {
			ms, err := q(context.Background(), traj, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				fmt.Fprintf(&sb, "%d:%x;", m.Record.OGID, m.Distance)
			}
			sb.WriteByte('|')
		}
	}
	return sb.String()
}

func sharedSig(t *testing.T, s *core.SharedDB) string {
	t.Helper()
	return querySig(t, s.QueryTrajectoryExactCtx, s.QueryTrajectoryCtx)
}

func plainSig(t *testing.T, db *core.VideoDB) string {
	t.Helper()
	exact := func(_ context.Context, seq dist.Sequence, k int) ([]core.Match, error) {
		return db.QueryTrajectoryExact(seq, k), nil
	}
	approx := func(_ context.Context, seq dist.Sequence, k int) ([]core.Match, error) {
		return db.QueryTrajectory(seq, k), nil
	}
	return querySig(t, exact, approx)
}

// statsSig captures the SearchStats of every signature query — the "AND
// SearchStats" half of the byte-identity claim.
func statsSig(t *testing.T, s *core.SharedDB) string {
	t.Helper()
	var sb strings.Builder
	for _, traj := range sigTrajs {
		_, st, err := s.QueryTrajectoryExactStatsCtx(context.Background(), traj, 5)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%+v|", st)
		_, st, err = s.QueryTrajectoryStatsCtx(context.Background(), traj, 5)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%+v|", st)
		_, st, err = s.QueryRangeStatsCtx(context.Background(), traj, 150)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%+v|", st)
	}
	return sb.String()
}

// refSigs ingests the stream prefix by prefix into a plain database and
// records the signature after each — the ground truth every recovered or
// replicated state is compared against.
func refSigs(t *testing.T, cfg core.Config, segs []*video.Segment) []string {
	t.Helper()
	sigs := make([]string, len(segs)+1)
	db := core.Open(cfg)
	sigs[0] = plainSig(t, db)
	for k, seg := range segs {
		if _, err := db.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
		sigs[k+1] = plainSig(t, db)
	}
	return sigs
}

type primaryFixture struct {
	dir  string
	db   *core.SharedDB
	prim *replica.Primary
	ts   *httptest.Server
}

func (p *primaryFixture) close() {
	p.ts.Close()
	p.prim.Close()
	_ = p.db.Close()
}

func (p *primaryFixture) ingest(t *testing.T, segs []*video.Segment) {
	t.Helper()
	for _, seg := range segs {
		if _, err := p.db.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
}

// startPrimary recovers (or creates) a durable primary in dir and serves
// it with the replication endpoints mounted. Automatic snapshots are off:
// tests drive rotation explicitly with Checkpoint.
func startPrimary(t *testing.T, dir string, shards int) *primaryFixture {
	t.Helper()
	db, _, err := core.OpenDurable(testCfg(shards), core.Durability{Dir: dir, SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := replica.NewPrimary(db, replica.PrimaryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewShared(db, server.Options{Replication: prim, Logger: discardLog()}))
	p := &primaryFixture{dir: dir, db: db, prim: prim, ts: ts}
	t.Cleanup(p.close)
	return p
}

// openReplicaAt opens a replica with test-speed timings in a fixed local
// directory (so tests can close and reopen it).
func openReplicaAt(t *testing.T, primaryURL, dir string, shards int, mod func(*replica.Config)) *replica.Replica {
	t.Helper()
	rc := replica.Config{
		Primary:             primaryURL,
		ID:                  "r1",
		Dir:                 dir,
		DB:                  testCfg(shards),
		PollInterval:        2 * time.Millisecond,
		BackoffMin:          2 * time.Millisecond,
		BackoffMax:          50 * time.Millisecond,
		AntiEntropyInterval: -1,
		Logger:              discardLog(),
	}
	if mod != nil {
		mod(&rc)
	}
	rep, err := replica.Open(context.Background(), rc)
	if err != nil {
		t.Fatalf("replica open: %v", err)
	}
	return rep
}

// runReplica starts the connection loop; the returned stop cancels it
// and reports how it ended.
func runReplica(rep *replica.Replica) (stop func() error) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	return func() error {
		cancel()
		return <-done
	}
}

// waitCaughtUp polls until the replica's applied position equals the
// primary's committed WAL end and the initial sync has completed.
func waitCaughtUp(t *testing.T, rep *replica.Replica, primary *core.SharedDB) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		end, err := primary.WALPos()
		if err != nil {
			t.Fatal(err)
		}
		if st := rep.Status(); st.Synced && st.Applied == end {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica never caught up: status %+v", rep.Status())
}

// expectIdentical asserts the full byte-identity contract between a
// caught-up replica and its primary: k-NN answers, SearchStats, database
// stats, and the anti-entropy digests (per-shard and corpus hashes) at
// the matched position.
func expectIdentical(t *testing.T, rep *replica.Replica, primary *core.SharedDB) {
	t.Helper()
	primary.QuiesceIndex()
	rep.DB().QuiesceIndex()
	if got, want := sharedSig(t, rep.DB()), sharedSig(t, primary); got != want {
		t.Errorf("replica answers differ from primary at matched version")
	}
	if got, want := statsSig(t, rep.DB()), statsSig(t, primary); got != want {
		t.Errorf("replica SearchStats differ from primary:\n got %s\nwant %s", got, want)
	}
	if got, want := rep.DB().Stats(), primary.Stats(); got != want {
		t.Errorf("replica Stats = %+v, want %+v", got, want)
	}
	pd, err := primary.ReplicationDigest()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := rep.DB().ReplicationDigest()
	if err != nil {
		t.Fatal(err)
	}
	if pd.Pos != rd.Pos {
		t.Fatalf("digest positions differ: primary %v, replica %v", pd.Pos, rd.Pos)
	}
	if pd.Corpus != rd.Corpus {
		t.Errorf("corpus digests differ at %v", pd.Pos)
	}
	if len(pd.Shards) != len(rd.Shards) {
		t.Fatalf("shard digest counts differ: %d vs %d", len(pd.Shards), len(rd.Shards))
	}
	for i := range pd.Shards {
		if pd.Shards[i] != rd.Shards[i] {
			t.Errorf("shard %d digests differ at %v", i, pd.Pos)
		}
	}
}

// TestReplicaByteIdentity is the headline property at every shard count
// the acceptance list names: a replica that bootstrapped from a snapshot
// mid-stream and tailed the WAL answers byte-identically to the primary.
func TestReplicaByteIdentity(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			stream := miniStream(t, 8, 81)
			p := startPrimary(t, t.TempDir(), shards)
			half := len(stream.Segments) / 2
			p.ingest(t, stream.Segments[:half])

			rep := openReplicaAt(t, p.ts.URL, t.TempDir(), shards, nil)
			defer rep.Close()
			stop := runReplica(rep)
			defer stop()

			p.ingest(t, stream.Segments[half:])
			waitCaughtUp(t, rep, p.db)
			expectIdentical(t, rep, p.db)
			if got := rep.DB().AppliedSegments(); got != len(stream.Segments) {
				t.Errorf("AppliedSegments = %d, want %d", got, len(stream.Segments))
			}
			if !rep.DB().IsReplica() {
				t.Error("replica database does not report IsReplica")
			}
		})
	}
}

// tamperProxy forwards requests to upstream, letting the test rewrite
// response bodies per path — transport-level fault injection.
func tamperProxy(t *testing.T, upstream func() string, tamper func(path string, body []byte) []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, upstream()+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if tamper != nil {
			body = tamper(r.URL.Path, body)
		}
		for k, vs := range resp.Header {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestReplicaCorruptBatchRefusedAndRefetched flips a byte inside the
// first WAL batch on the wire: the replica must refuse it (Merkle/CRC),
// re-fetch, and still converge byte-identically.
func TestReplicaCorruptBatchRefusedAndRefetched(t *testing.T) {
	stream := miniStream(t, 6, 83)
	p := startPrimary(t, t.TempDir(), 2)
	p.ingest(t, stream.Segments)

	var walFetches, tampered atomic.Int32
	proxy := tamperProxy(t, func() string { return p.ts.URL }, func(path string, body []byte) []byte {
		if path != "/v1/replication/wal" {
			return body
		}
		if walFetches.Add(1) == 1 && len(body) > 100 {
			tampered.Add(1)
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x20
		}
		return body
	})

	rep := openReplicaAt(t, proxy.URL, t.TempDir(), 2, nil)
	defer rep.Close()
	stop := runReplica(rep)
	defer stop()
	waitCaughtUp(t, rep, p.db)

	if tampered.Load() != 1 {
		t.Fatalf("tampered %d batches, want 1", tampered.Load())
	}
	if walFetches.Load() < 2 {
		t.Errorf("refused batch was not re-fetched (%d fetches)", walFetches.Load())
	}
	expectIdentical(t, rep, p.db)
}

// TestReplicaTornBatchRefusedAndRefetched truncates the first WAL batch
// mid-body — the dropped-connection shape — and expects the same refuse
// and re-fetch behaviour.
func TestReplicaTornBatchRefusedAndRefetched(t *testing.T) {
	stream := miniStream(t, 6, 85)
	p := startPrimary(t, t.TempDir(), 2)
	p.ingest(t, stream.Segments)

	var walFetches atomic.Int32
	proxy := tamperProxy(t, func() string { return p.ts.URL }, func(path string, body []byte) []byte {
		if path == "/v1/replication/wal" && walFetches.Add(1) == 1 && len(body) > 40 {
			return body[:len(body)-25]
		}
		return body
	})

	rep := openReplicaAt(t, proxy.URL, t.TempDir(), 2, nil)
	defer rep.Close()
	stop := runReplica(rep)
	defer stop()
	waitCaughtUp(t, rep, p.db)

	if walFetches.Load() < 2 {
		t.Errorf("torn batch was not re-fetched (%d fetches)", walFetches.Load())
	}
	expectIdentical(t, rep, p.db)
}

// TestReplicaCrashApplyMatrix is the replica-side durability matrix: for
// every interesting local-WAL prefix, a disk that dies at that point
// during replicated apply recovers to exactly the acknowledged ops —
// byte-identical answers, the right resume position, replayed records
// refused, and a clean resume to the full state with no gaps or
// duplicates.
func TestReplicaCrashApplyMatrix(t *testing.T) {
	cfg := testCfg(1)
	stream := miniStream(t, 6, 87)
	n := len(stream.Segments)
	sigs := refSigs(t, cfg, stream.Segments)

	// Primary with every segment; its WAL frames are the replication feed.
	pdb, _, err := core.OpenDurable(cfg, core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	for _, seg := range stream.Segments {
		if _, err := pdb.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	start := core.WALPos{Seq: 1, Off: wal.HeaderSize}
	frames, next, end, err := pdb.WALFrames(start, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != n || next != end {
		t.Fatalf("WALFrames returned %d frames to %v (end %v), want %d", len(frames), next, end, n)
	}

	// A bootstrap snapshot of an empty primary positions replicas at the
	// start of the feed.
	var snap bytes.Buffer
	edb, _, err := core.OpenDurable(cfg, core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	bootPos, err := edb.ReplicationSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	_ = edb.Close()
	if bootPos != start {
		t.Fatalf("empty-primary snapshot position = %v, want %v", bootPos, start)
	}
	seedDir := func() string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "snapshot.strg"), snap.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Clean baseline: the local-WAL size after each applied record.
	boundaries := make([]int64, n+1)
	{
		rdb, rec, err := core.OpenReplica(cfg, core.Durability{Dir: seedDir(), SnapshotOps: -1, SnapshotBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !rec.SnapshotLoaded {
			t.Fatal("bootstrap snapshot not loaded")
		}
		boundaries[0] = rdb.WALSize()
		for k, f := range frames {
			if err := rdb.ApplyReplicated(f.Payload, f.Next); err != nil {
				t.Fatal(err)
			}
			boundaries[k+1] = rdb.WALSize()
		}
		if rdb.ReplicaPos() != end {
			t.Fatalf("baseline replica at %v, want %v", rdb.ReplicaPos(), end)
		}
		if sig := sharedSig(t, rdb); sig != sigs[n] {
			t.Fatal("baseline replicated apply diverges from direct ingest")
		}
		_ = rdb.Close()
	}

	cutSet := map[int64]bool{}
	for k := 0; k <= n; k++ {
		cutSet[boundaries[k]] = true
	}
	for k := 1; k <= n; k++ {
		prev, cur := boundaries[k-1], boundaries[k]
		for _, c := range []int64{prev + 1, prev + 5, prev + 8 + (cur-prev-8)/2, cur - 1} {
			if c > prev && c < cur {
				cutSet[c] = true
			}
		}
	}
	cuts := make([]int64, 0, len(cutSet))
	for c := range cutSet {
		cuts = append(cuts, c)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	for _, cut := range cuts {
		acked := 0
		for acked < n && boundaries[acked+1] <= cut {
			acked++
		}

		dir := seedDir()
		fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: cut, FailSyncAfter: -1})
		rdb, _, err := core.OpenReplica(cfg, core.Durability{Dir: dir, FS: fsys, SnapshotOps: -1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		applied := 0
		var applyErr error
		for _, f := range frames {
			if err := rdb.ApplyReplicated(f.Payload, f.Next); err != nil {
				applyErr = err
				break
			}
			applied++
		}
		_ = rdb.Close() // the process "dies"
		if applied != acked {
			t.Fatalf("cut %d: %d ops acknowledged, want %d", cut, applied, acked)
		}
		if applied < n && !errors.Is(applyErr, faultfs.ErrInjected) {
			t.Fatalf("cut %d: apply failed with %v, want injected fault", cut, applyErr)
		}

		// A fresh process recovers from the real on-disk residue.
		r2, _, err := core.OpenReplica(cfg, core.Durability{Dir: dir, SnapshotOps: -1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		wantPos := bootPos
		if acked > 0 {
			wantPos = frames[acked-1].Next
		}
		if got := r2.ReplicaPos(); got != wantPos {
			t.Errorf("cut %d: recovered position %v, want %v", cut, got, wantPos)
		}
		if sig := sharedSig(t, r2); sig != sigs[acked] {
			t.Errorf("cut %d: recovered answers differ from the %d-op reference", cut, acked)
		}
		// No duplicates: re-offering the already-applied record is refused.
		if acked > 0 {
			if err := r2.ApplyReplicated(frames[acked-1].Payload, frames[acked-1].Next); err == nil {
				t.Errorf("cut %d: replaying an applied record was not refused", cut)
			}
		}
		// No gaps: resuming from the recovered position reaches the full
		// state.
		for _, f := range frames[acked:] {
			if err := r2.ApplyReplicated(f.Payload, f.Next); err != nil {
				t.Fatalf("cut %d: resume apply: %v", cut, err)
			}
		}
		if r2.ReplicaPos() != end {
			t.Errorf("cut %d: resumed to %v, want %v", cut, r2.ReplicaPos(), end)
		}
		if sig := sharedSig(t, r2); sig != sigs[n] {
			t.Errorf("cut %d: resumed answers differ from the full reference", cut)
		}
		_ = r2.Close()
	}
}

// TestReplicaResumePrimaryRestart kills the primary mid-stream and
// restarts it on the same data directory: the replica keeps serving (and
// stays healthy) while the primary is dead, then resumes exactly where
// it stopped — no gaps, no duplicates.
func TestReplicaResumePrimaryRestart(t *testing.T) {
	stream := miniStream(t, 8, 93)
	n := len(stream.Segments)
	sigs := refSigs(t, testCfg(2), stream.Segments)
	pdir := t.TempDir()

	p1 := startPrimary(t, pdir, 2)
	half := n / 2
	p1.ingest(t, stream.Segments[:half])

	var target atomic.Value
	target.Store(p1.ts.URL)
	proxy := tamperProxy(t, func() string { return target.Load().(string) }, nil)

	rep := openReplicaAt(t, proxy.URL, t.TempDir(), 2, nil)
	defer rep.Close()
	stop := runReplica(rep)
	defer stop()
	waitCaughtUp(t, rep, p1.db)

	// Primary dies. The replica keeps answering at its last verified
	// version and does not flip unhealthy — a dead primary is degraded
	// freshness, not a broken replica.
	p1.close()
	time.Sleep(20 * time.Millisecond) // let a few fetches fail
	if err := rep.Healthy(); err != nil {
		t.Errorf("dead primary flipped replica health: %v", err)
	}
	if sig := sharedSig(t, rep.DB()); sig != sigs[half] {
		t.Error("replica answers changed while the primary was down")
	}

	// Primary restarts on the same directory and keeps ingesting.
	p2 := startPrimary(t, pdir, 2)
	p2.ingest(t, stream.Segments[half:])
	target.Store(p2.ts.URL)

	waitCaughtUp(t, rep, p2.db)
	if got := rep.DB().AppliedSegments(); got != n {
		t.Errorf("AppliedSegments = %d after resume, want %d (gap or duplicate)", got, n)
	}
	if sig := sharedSig(t, rep.DB()); sig != sigs[n] {
		t.Error("post-restart catch-up diverges from reference")
	}
	expectIdentical(t, rep, p2.db)
}

// TestReplicaWALGoneRebootstraps rotates the replica's resume position
// off the primary's retained WAL (registry lost to a primary restart):
// the fetch answers 410, Run demands a re-bootstrap, and the restarted
// replica repairs itself by wiping and bootstrapping fresh.
func TestReplicaWALGoneRebootstraps(t *testing.T) {
	stream := miniStream(t, 8, 95)
	n := len(stream.Segments)
	pdir, rdir := t.TempDir(), t.TempDir()

	p1 := startPrimary(t, pdir, 2)
	p1.ingest(t, stream.Segments[:n/2])

	var target atomic.Value
	target.Store(p1.ts.URL)
	proxy := tamperProxy(t, func() string { return target.Load().(string) }, nil)

	rep := openReplicaAt(t, proxy.URL, rdir, 2, nil)
	stop := runReplica(rep)
	waitCaughtUp(t, rep, p1.db)
	if err := stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stop: %v", err)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	p1.close()

	// The restarted primary has an empty registry; a checkpoint rotates
	// the old logs away.
	p2 := startPrimary(t, pdir, 2)
	p2.ingest(t, stream.Segments[n/2:])
	if err := p2.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(pdir, "wal-00000001.log")); !os.IsNotExist(err) {
		t.Fatalf("rotation kept wal-1: %v", err)
	}
	target.Store(p2.ts.URL)

	// The old replica state resumes from a position the primary no longer
	// serves: Run must refuse to continue and demand a re-bootstrap.
	rep2 := openReplicaAt(t, proxy.URL, rdir, 2, nil)
	errc := make(chan error, 1)
	go func() { errc <- rep2.Run(context.Background()) }()
	select {
	case err := <-errc:
		if !errors.Is(err, replica.ErrResyncNeeded) {
			t.Fatalf("Run = %v, want ErrResyncNeeded", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Run did not detect the lost WAL position")
	}
	if !rep2.Status().Diverged {
		t.Error("replica does not report divergence")
	}
	if err := rep2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(rdir, "RESYNC")); err != nil {
		t.Fatalf("resync marker not persisted: %v", err)
	}

	// Restart repairs: wipe, bootstrap, converge.
	rep3 := openReplicaAt(t, proxy.URL, rdir, 2, nil)
	defer rep3.Close()
	stop3 := runReplica(rep3)
	defer stop3()
	waitCaughtUp(t, rep3, p2.db)
	expectIdentical(t, rep3, p2.db)
}

// TestReplicaAntiEntropyDivergence plants silently divergent state (the
// same segments applied in a different order, ending at the same WAL
// position) and expects the digest comparison to catch it and force a
// re-bootstrap that repairs the replica.
func TestReplicaAntiEntropyDivergence(t *testing.T) {
	cfg := testCfg(2)
	stream := miniStream(t, 6, 97)
	p := startPrimary(t, t.TempDir(), 2)
	p.ingest(t, stream.Segments)
	realEnd, err := p.db.WALPos()
	if err != nil {
		t.Fatal(err)
	}

	// An "evil twin" primary ingests the first two segments swapped; its
	// WAL reaches the same end position with different contents.
	edb, _, err := core.OpenDurable(cfg, core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer edb.Close()
	swapped := append([]*video.Segment{stream.Segments[1], stream.Segments[0]}, stream.Segments[2:]...)
	for _, seg := range swapped {
		if _, err := edb.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	start := core.WALPos{Seq: 1, Off: wal.HeaderSize}
	evilFrames, _, evilEnd, err := edb.WALFrames(start, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if evilEnd != realEnd {
		t.Fatalf("evil twin ends at %v, real primary at %v — cannot plant matched-position divergence", evilEnd, realEnd)
	}

	// Seed a replica directory with the evil state via the normal apply
	// path: empty-primary snapshot, then the evil frames.
	var snap bytes.Buffer
	bdb, _, err := core.OpenDurable(cfg, core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bdb.ReplicationSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	_ = bdb.Close()
	rdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(rdir, "snapshot.strg"), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rdb, _, err := core.OpenReplica(cfg, core.Durability{Dir: rdir, SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range evilFrames {
		if err := rdb.ApplyReplicated(f.Payload, f.Next); err != nil {
			t.Fatal(err)
		}
	}
	_ = rdb.Close()

	// Tail the REAL primary from the divergent state: the position
	// matches, so fetches return empty batches and anti-entropy runs.
	rep := openReplicaAt(t, p.ts.URL, rdir, 2, func(c *replica.Config) {
		c.AntiEntropyInterval = time.Millisecond
	})
	errc := make(chan error, 1)
	go func() { errc <- rep.Run(context.Background()) }()
	select {
	case err := <-errc:
		if !errors.Is(err, replica.ErrResyncNeeded) {
			t.Fatalf("Run = %v, want ErrResyncNeeded", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("anti-entropy never detected the divergence")
	}
	if !rep.Status().Diverged {
		t.Error("replica does not report divergence")
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart repairs via re-bootstrap.
	rep2 := openReplicaAt(t, p.ts.URL, rdir, 2, nil)
	defer rep2.Close()
	stop := runReplica(rep2)
	defer stop()
	waitCaughtUp(t, rep2, p.db)
	expectIdentical(t, rep2, p.db)
}

// TestPrimaryRetentionFloorPinsWAL proves registration pins the log
// chain before the bootstrap fetch: rotation keeps every log a
// registered-but-unacked replica still needs, and releases them once the
// replica acks past.
func TestPrimaryRetentionFloorPinsWAL(t *testing.T) {
	stream := miniStream(t, 6, 99)
	p := startPrimary(t, t.TempDir(), 1)
	p.ingest(t, stream.Segments[:1])

	if err := p.prim.Register("pinner"); err != nil {
		t.Fatal(err)
	}
	p.ingest(t, stream.Segments[1:2])
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wal1 := filepath.Join(p.dir, "wal-00000001.log")
	if _, err := os.Stat(wal1); err != nil {
		t.Fatalf("rotation deleted a log pinned by an unacked replica: %v", err)
	}

	// Acking to the end releases the floor; the next rotation reclaims it.
	end, err := p.db.WALPos()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.prim.Ack("pinner", end); err != nil {
		t.Fatal(err)
	}
	p.ingest(t, stream.Segments[2:3])
	if err := p.db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal1); !os.IsNotExist(err) {
		t.Fatalf("acked log not reclaimed by rotation: %v", err)
	}

	// The registry reports over HTTP.
	var st replica.PrimaryStatus
	resp, err := http.Get(p.ts.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" || len(st.Replicas) != 1 || st.Replicas[0].ID != "pinner" {
		t.Errorf("primary status = %+v", st)
	}
}

// TestReplicaLagFlipsReadyz drives the graceful-degradation contract
// over HTTP: a replica past its lag bound answers 503 on /readyz (with
// the JSON envelope) while still serving queries, ingest is refused with
// 403 read_only_replica, and catching back up restores 200.
func TestReplicaLagFlipsReadyz(t *testing.T) {
	stream := miniStream(t, 8, 101)
	p := startPrimary(t, t.TempDir(), 2)
	p.ingest(t, stream.Segments[:2])

	// Gate WAL fetches: -1 unlimited, 0 blocked, n>0 allows n fetches.
	var walAllow atomic.Int64
	walAllow.Store(-1)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/replication/wal" {
			for {
				v := walAllow.Load()
				if v < 0 {
					break
				}
				if v == 0 {
					http.Error(w, "gated", http.StatusServiceUnavailable)
					return
				}
				if walAllow.CompareAndSwap(v, v-1) {
					break
				}
			}
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, p.ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	rep := openReplicaAt(t, proxy.URL, t.TempDir(), 2, func(c *replica.Config) {
		c.LagMax = 1
		c.BatchBytes = 1 // one frame per batch, so lag is observable
	})
	defer rep.Close()
	rts := httptest.NewServer(server.NewShared(rep.DB(), server.Options{Replica: rep, Logger: discardLog()}))
	defer rts.Close()

	readyzStatus := func() (int, string) {
		resp, err := http.Get(rts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Error.Code
	}

	// Before the first catch-up the replica is not ready.
	if code, ec := readyzStatus(); code != http.StatusServiceUnavailable || ec != "unavailable" {
		t.Errorf("pre-sync readyz = %d %q, want 503 unavailable", code, ec)
	}

	stop := runReplica(rep)
	defer stop()
	waitCaughtUp(t, rep, p.db)
	waitFor(t, "readyz 200 after catch-up", func() bool {
		code, _ := readyzStatus()
		return code == http.StatusOK
	})

	// Block the stream, grow the primary, allow exactly one more fetch:
	// the replica learns its lag and must drop out of rotation.
	walAllow.Store(0)
	p.ingest(t, stream.Segments[2:])
	walAllow.Store(1)
	waitFor(t, "lag flips health", func() bool { return rep.Healthy() != nil })
	if err := rep.Healthy(); err == nil || !strings.Contains(err.Error(), "lag") {
		t.Errorf("Healthy = %v, want a lag error", err)
	}
	if code, _ := readyzStatus(); code != http.StatusServiceUnavailable {
		t.Errorf("lagging readyz = %d, want 503", code)
	}

	// Still serving queries, still refusing writes.
	if ms := rep.DB().QueryTrajectory(sigTrajs[0], 3); len(ms) == 0 {
		t.Error("lagging replica stopped answering queries")
	}
	body, _ := json.Marshal(map[string]any{"stream": "Mini", "segment": stream.Segments[0]})
	resp, err := http.Post(rts.URL+"/v1/segments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || env.Error.Code != "read_only_replica" {
		t.Errorf("replica ingest = %d %q, want 403 read_only_replica", resp.StatusCode, env.Error.Code)
	}

	// The replica's own status endpoint reports its role and lag.
	var rst replica.Status
	sresp, err := http.Get(rts.URL + "/v1/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if rst.Role != "replica" || rst.LagBytes <= 1 {
		t.Errorf("replica status = %+v, want role=replica with visible lag", rst)
	}

	// Unblock: catch up, healthy again, identical again.
	walAllow.Store(-1)
	waitCaughtUp(t, rep, p.db)
	waitFor(t, "readyz 200 after recovery", func() bool {
		code, _ := readyzStatus()
		return code == http.StatusOK
	})
	expectIdentical(t, rep, p.db)
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicaSnapshotDuringApplyStampsAppliedPosition: a rotation
// triggered by the apply itself (SnapshotOps=1 makes every apply one)
// captures a snapshot that already contains the record, so it must be
// stamped with that record's source position. A stale stamp would make
// recovery resume one record back, re-fetch and re-apply it, and
// silently diverge from the primary.
func TestReplicaSnapshotDuringApplyStampsAppliedPosition(t *testing.T) {
	cfg := testCfg(1)
	stream := miniStream(t, 6, 41)
	sigs := refSigs(t, cfg, stream.Segments)

	pdb, _, err := core.OpenDurable(cfg, core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	for _, seg := range stream.Segments {
		if _, err := pdb.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, _, err := pdb.WALFrames(core.WALPos{Seq: 1, Off: wal.HeaderSize}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	// Close waits the background snapshot out, so each reopen recovers
	// from a snapshot captured DURING the apply of the latest record.
	dir := t.TempDir()
	for k, f := range frames {
		rdb, _, err := core.OpenReplica(cfg, core.Durability{Dir: dir, SnapshotOps: 1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("record %d: open: %v", k, err)
		}
		if err := rdb.ApplyReplicated(f.Payload, f.Next); err != nil {
			t.Fatalf("record %d: apply: %v", k, err)
		}
		_ = rdb.Close()

		r2, _, err := core.OpenReplica(cfg, core.Durability{Dir: dir, SnapshotOps: -1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("record %d: recovery: %v", k, err)
		}
		if got := r2.ReplicaPos(); got != f.Next {
			t.Fatalf("record %d: recovered position %v, want %v", k, got, f.Next)
		}
		if got := r2.AppliedSegments(); got != k+1 {
			t.Fatalf("record %d: recovered %d applied segments, want %d", k, got, k+1)
		}
		if sig := sharedSig(t, r2); sig != sigs[k+1] {
			t.Errorf("record %d: recovered answers differ from the reference", k)
		}
		_ = r2.Close()
	}
}

// TestWALFramesMidRecordOffsetInLiveLog: a fetch offset that lands
// mid-record in the CURRENT log must answer ErrWALGone (the server's
// 410, the replica's cue to re-bootstrap), not a raw corruption error
// the replica would retry forever. The scenario: a primary crash loses
// an unsynced WAL tail and the restarted primary writes different bytes
// past a replica's old offset.
func TestWALFramesMidRecordOffsetInLiveLog(t *testing.T) {
	stream := miniStream(t, 4, 43)
	pdb, _, err := core.OpenDurable(testCfg(1), core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pdb.Close()
	for _, seg := range stream.Segments {
		if _, err := pdb.IngestSegment("Mini", seg); err != nil {
			t.Fatal(err)
		}
	}
	end, err := pdb.WALPos()
	if err != nil {
		t.Fatal(err)
	}
	bad := core.WALPos{Seq: end.Seq, Off: wal.HeaderSize + 3} // inside the live log's first record
	if _, _, _, err := pdb.WALFrames(bad, 1<<20); !errors.Is(err, core.ErrWALGone) {
		t.Fatalf("mid-record live-log offset: err = %v, want ErrWALGone", err)
	}
}

// TestPrimaryExpiresDeadReplicaWithoutTraffic: expiry must run on a
// timer, not only inside Register/Ack/Touch — a permanently dead
// replica sends no further calls, and without the sweep its last acked
// sequence would pin WAL retention (and primary disk) forever.
func TestPrimaryExpiresDeadReplicaWithoutTraffic(t *testing.T) {
	db, _, err := core.OpenDurable(testCfg(1), core.Durability{Dir: t.TempDir(), SnapshotOps: -1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	prim, err := replica.NewPrimary(db, replica.PrimaryOptions{ReplicaTTL: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	if err := prim.Register("doomed"); err != nil {
		t.Fatal(err)
	}
	if err := prim.Ack("doomed", core.WALPos{Seq: 1, Off: wal.HeaderSize}); err != nil {
		t.Fatal(err)
	}
	// No further replication calls: only the background sweep can expire it.
	waitFor(t, "dead replica expiry", func() bool { return len(prim.Status().Replicas) == 0 })
}

// TestBootstrapSnapshotFetchCarriesReplicaID: the snapshot GET names the
// replica so the primary refreshes its registration while the
// (potentially TTL-exceeding) download streams — otherwise rotation
// could delete the WAL between the snapshot position and the first ack.
func TestBootstrapSnapshotFetchCarriesReplicaID(t *testing.T) {
	stream := miniStream(t, 4, 47)
	p := startPrimary(t, t.TempDir(), 1)
	p.ingest(t, stream.Segments)

	var snapID atomic.Value
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/replication/snapshot" {
			snapID.Store(r.URL.Query().Get("replica"))
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, p.ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	rep := openReplicaAt(t, proxy.URL, t.TempDir(), 1, nil)
	defer rep.Close()
	if got, ok := snapID.Load().(string); !ok || got != "r1" {
		t.Fatalf("snapshot fetch carried replica id %q, want %q", got, "r1")
	}
}
