package replica

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"strgindex/internal/core"
)

// PrimaryOptions tunes the primary-side replication service.
type PrimaryOptions struct {
	// MaxBatchBytes bounds the payload bytes packed into one batch.
	// 0 means 4 MiB; values above the protocol limit (the package-level
	// MaxBatchBytes) are clamped to it so every batch stays decodable.
	MaxBatchBytes int64
	// ReplicaTTL expires a registered replica that has neither acked nor
	// fetched for this long, releasing its WAL retention. 0 means 10
	// minutes; negative disables expiry.
	ReplicaTTL time.Duration
	// now is injectable for tests.
	now func() time.Time
}

// Primary is the primary-side replication service over a durable
// SharedDB: it serves bootstrap snapshots, builds Merkle-rooted WAL
// batches, tracks each registered replica's acked position, and holds
// the WAL retention floor at the minimum acked sequence so rotation
// never deletes frames a live replica still needs.
type Primary struct {
	db   *core.SharedDB
	opts PrimaryOptions

	mu       sync.Mutex
	replicas map[string]*replicaEntry

	stop     chan struct{}
	stopOnce sync.Once
}

type replicaEntry struct {
	acked core.WALPos
	seen  time.Time
}

// NewPrimary wraps db (which must be durable — replication streams its
// WAL) as a replication primary.
func NewPrimary(db *core.SharedDB, opts PrimaryOptions) (*Primary, error) {
	if !db.Durable() {
		return nil, core.ErrNotDurable
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 4 << 20
	}
	if opts.MaxBatchBytes > MaxBatchBytes {
		opts.MaxBatchBytes = MaxBatchBytes
	}
	if opts.ReplicaTTL == 0 {
		opts.ReplicaTTL = 10 * time.Minute
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	p := &Primary{db: db, opts: opts, replicas: make(map[string]*replicaEntry), stop: make(chan struct{})}
	if opts.ReplicaTTL > 0 {
		go p.sweep()
	}
	return p, nil
}

// sweep expires dead replicas on a timer. Expiry otherwise runs only
// inside Register/Ack/Touch: if the sole replica dies permanently, no
// replication call ever arrives again and its last acked sequence would
// pin WAL retention forever, growing the primary's disk without bound.
func (p *Primary) sweep() {
	interval := p.opts.ReplicaTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.mu.Lock()
			p.updateFloorLocked()
			p.mu.Unlock()
		}
	}
}

// Close stops the background expiry sweeper. The registry itself needs
// no teardown.
func (p *Primary) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// Register adds (or refreshes) a replica with an acked position of zero,
// pinning the entire retained WAL chain. Registration happens BEFORE the
// bootstrap fetch so rotation cannot delete the logs between the
// snapshot position and the replica's first ack.
func (p *Primary) Register(id string) error {
	if id == "" {
		return fmt.Errorf("replica: empty replica id")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.replicas[id]; !ok {
		p.replicas[id] = &replicaEntry{}
	}
	p.replicas[id].seen = p.opts.now()
	p.updateFloorLocked()
	return nil
}

// Ack records that the replica has durably applied everything before
// pos. Acks never move backwards — a stale or replayed ack cannot
// re-pin released logs.
func (p *Primary) Ack(id string, pos core.WALPos) error {
	if id == "" {
		return fmt.Errorf("replica: empty replica id")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.replicas[id]
	if !ok {
		e = &replicaEntry{}
		p.replicas[id] = e
	}
	if e.acked.Before(pos) {
		e.acked = pos
	}
	e.seen = p.opts.now()
	p.updateFloorLocked()
	return nil
}

// Touch refreshes a replica's liveness without changing its ack (called
// on every fetch).
func (p *Primary) Touch(id string) {
	if id == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.replicas[id]; ok {
		e.seen = p.opts.now()
	}
	p.updateFloorLocked()
}

// updateFloorLocked prunes expired replicas and pushes the minimum acked
// sequence into the core retention floor.
func (p *Primary) updateFloorLocked() {
	now := p.opts.now()
	floor := uint64(math.MaxUint64)
	for id, e := range p.replicas {
		if p.opts.ReplicaTTL > 0 && now.Sub(e.seen) > p.opts.ReplicaTTL {
			delete(p.replicas, id)
			continue
		}
		if e.acked.Seq < floor {
			floor = e.acked.Seq
		}
	}
	mRegistered.Set(int64(len(p.replicas)))
	_ = p.db.SetWALRetainFloor(floor)
}

// Batch builds one encoded batch starting at from: frames read off the
// WAL chain, positions for resume, the primary's committed end, the
// remaining lag after Next, all under a Merkle root and CRC. An empty
// batch (Start == Next == End, no frames) means the reader is caught up.
func (p *Primary) Batch(from core.WALPos, maxBytes int64) ([]byte, error) {
	if maxBytes <= 0 || maxBytes > p.opts.MaxBatchBytes {
		maxBytes = p.opts.MaxBatchBytes
	}
	frames, next, end, err := p.db.WALFrames(from, maxBytes)
	if err != nil {
		return nil, err
	}
	b := &Batch{
		Start:  from,
		Next:   next,
		End:    end,
		Lag:    p.db.WALBytesBetween(next, end),
		Frames: frames,
	}
	out := EncodeBatch(b)
	mBatchesSent.Inc()
	mBytesSent.Add(int64(len(out)))
	return out, nil
}

// WriteSnapshot streams a bootstrap snapshot to w and reports the WAL
// position it is current to.
func (p *Primary) WriteSnapshot(w io.Writer) (core.WALPos, error) {
	pos, err := p.db.ReplicationSnapshot(w)
	if err == nil {
		mBootstrapsServed.Inc()
	}
	return pos, err
}

// Digest computes the primary's anti-entropy state digest.
func (p *Primary) Digest() (core.StateDigest, error) {
	return p.db.ReplicationDigest()
}

// ReplicaStatus is one registry entry in a Status report.
type ReplicaStatus struct {
	ID    string      `json:"id"`
	Acked core.WALPos `json:"acked"`
	// SeenAgo is how long ago the replica last registered, acked, or
	// fetched, in seconds.
	SeenAgo float64 `json:"seen_ago_seconds"`
}

// PrimaryStatus is the primary's replication status report.
type PrimaryStatus struct {
	Role     string          `json:"role"`
	WALEnd   core.WALPos     `json:"wal_end"`
	Segments int             `json:"segments"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status reports the registry and the committed WAL end.
func (p *Primary) Status() PrimaryStatus {
	end, _ := p.db.WALPos()
	st := PrimaryStatus{Role: "primary", WALEnd: end, Segments: p.db.AppliedSegments()}
	now := p.opts.now()
	p.mu.Lock()
	for id, e := range p.replicas {
		st.Replicas = append(st.Replicas, ReplicaStatus{
			ID: id, Acked: e.acked, SeenAgo: now.Sub(e.seen).Seconds(),
		})
	}
	p.mu.Unlock()
	sort.Slice(st.Replicas, func(i, j int) bool { return st.Replicas[i].ID < st.Replicas[j].ID })
	return st
}
