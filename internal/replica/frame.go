// Package replica implements WAL-streaming replication: a primary-side
// service that ships snapshot bootstrap plus live WAL frames over HTTP
// to N read replicas, and a replica-side connection loop that verifies
// each batch under a Merkle root before applying it through the core
// recovery path — so a replica's answers are byte-identical to the
// primary's at the same applied version.
//
// # Batch wire format
//
// A batch is a self-contained binary message:
//
//	[8]byte magic "STRGRPL\x01"
//	uint32 LE total length of everything after this field
//	uint64 LE start seq | uint64 LE start off      (position of frame 0)
//	uint64 LE next seq  | uint64 LE next off       (resume position)
//	uint64 LE end seq   | uint64 LE end off        (primary committed end)
//	uint64 LE lag bytes                            (committed bytes after next)
//	uint32 LE frame count
//	frame count × ( uint64 LE next seq | uint64 LE next off |
//	                uint32 LE payload length | payload )
//	[32]byte Merkle root (SHA-256 leaf hashes, pairwise reduction)
//	uint32 LE CRC32C over everything after the total-length field
//
// The declared total length makes the torn/corrupt dichotomy of the WAL
// scanner work over the wire: a buffer shorter than declared is
// ErrTruncated (retryable — fetch again), while a full-length buffer
// that fails the CRC, the Merkle root, or structural validation is
// ErrCorrupt (refused — re-fetch from the last applied position).
package replica

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"strgindex/internal/core"
	"strgindex/internal/wal"
)

// batchMagic identifies a replication batch; the last byte is the
// protocol version.
var batchMagic = [8]byte{'S', 'T', 'R', 'G', 'R', 'P', 'L', 1}

const (
	batchMagicSize = 8
	batchLenSize   = 4
	// batchFixedSize is the fixed part after the length field: three
	// positions (16 bytes each), the lag, and the frame count.
	batchFixedSize = 3*16 + 8 + 4
	// frameFixedSize is the per-frame header: resume position + length.
	frameFixedSize = 16 + 4
	batchTrailer   = sha256.Size + 4
	// MaxBatchBytes bounds the frame payload budget a primary packs into
	// one batch (NewPrimary clamps its option to it).
	MaxBatchBytes = 256 << 20
	// maxBatchWireBytes bounds a declared batch length on the wire;
	// anything above it can only be corruption. A legal batch can exceed
	// the payload budget: WALFrames keeps the record that crosses it —
	// up to one maximum-size WAL record (wal.MaxRecordBytes) — and
	// framing adds a fixed header plus frameFixedSize per record, so the
	// bound leaves headroom for both rather than sitting exactly at the
	// budget (which would wedge a replica behind a maximum-size record).
	maxBatchWireBytes = MaxBatchBytes + wal.MaxRecordBytes + MaxBatchBytes/2
)

// ErrTruncated reports a batch cut short relative to its declared
// length — the residue of a dropped connection or a torn read. The
// fetch is simply retried.
var ErrTruncated = errors.New("replica: truncated batch")

// ErrCorrupt reports a full-length batch that failed CRC, Merkle, or
// structural validation — refused, never applied.
var ErrCorrupt = errors.New("replica: corrupt batch")

var batchCRC = crc32.MakeTable(crc32.Castagnoli)

// Batch is a verified group of WAL frames plus the stream positions a
// replica needs to apply and resume.
type Batch struct {
	// Start is the position frame 0 was read from (must equal the
	// position the replica requested).
	Start core.WALPos
	// Next is the position to fetch from after applying every frame.
	Next core.WALPos
	// End is the primary's committed WAL end when the batch was built.
	End core.WALPos
	// Lag is the primary-computed committed byte count after Next —
	// how far a replica that applies this batch still trails.
	Lag int64
	// Frames are the records in stream order with per-record resume
	// positions.
	Frames []core.WALFrame
}

// MerkleRoot reduces the frame payloads to one root: SHA-256 leaf
// hashes, then pairwise parent hashes (an odd node is carried up), so a
// replica verifies a whole batch with one comparison. An empty batch
// hashes to SHA-256 of nothing.
func MerkleRoot(frames []core.WALFrame) [sha256.Size]byte {
	if len(frames) == 0 {
		return sha256.Sum256(nil)
	}
	level := make([][sha256.Size]byte, len(frames))
	for i := range frames {
		level[i] = sha256.Sum256(frames[i].Payload)
	}
	for len(level) > 1 {
		next := level[:0:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				var pair [2 * sha256.Size]byte
				copy(pair[:], level[i][:])
				copy(pair[sha256.Size:], level[i+1][:])
				next = append(next, sha256.Sum256(pair[:]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

func putPos(b []byte, p core.WALPos) {
	binary.LittleEndian.PutUint64(b, p.Seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(p.Off))
}

func getPos(b []byte) core.WALPos {
	return core.WALPos{
		Seq: binary.LittleEndian.Uint64(b),
		Off: int64(binary.LittleEndian.Uint64(b[8:])),
	}
}

// EncodeBatch serializes a batch.
func EncodeBatch(b *Batch) []byte {
	inner := batchFixedSize
	for _, f := range b.Frames {
		inner += frameFixedSize + len(f.Payload)
	}
	inner += batchTrailer
	out := make([]byte, batchMagicSize+batchLenSize+inner)
	copy(out, batchMagic[:])
	binary.LittleEndian.PutUint32(out[batchMagicSize:], uint32(inner))
	p := out[batchMagicSize+batchLenSize:]
	putPos(p, b.Start)
	putPos(p[16:], b.Next)
	putPos(p[32:], b.End)
	binary.LittleEndian.PutUint64(p[48:], uint64(b.Lag))
	binary.LittleEndian.PutUint32(p[56:], uint32(len(b.Frames)))
	off := batchFixedSize
	for _, f := range b.Frames {
		putPos(p[off:], f.Next)
		binary.LittleEndian.PutUint32(p[off+16:], uint32(len(f.Payload)))
		copy(p[off+frameFixedSize:], f.Payload)
		off += frameFixedSize + len(f.Payload)
	}
	root := MerkleRoot(b.Frames)
	copy(p[off:], root[:])
	off += sha256.Size
	binary.LittleEndian.PutUint32(p[off:], crc32.Checksum(p[:off], batchCRC))
	return out
}

// DecodeBatch parses and verifies one batch. The error dichotomy is the
// contract the connection loop and the fuzz target lean on: a strict
// prefix of a valid encoding is ErrTruncated; a full-length buffer that
// fails any check is ErrCorrupt; trailing bytes beyond the declared
// length are ErrCorrupt (a batch is a complete message, not a stream).
func DecodeBatch(data []byte) (*Batch, error) {
	n := len(data)
	if n < batchMagicSize {
		if bytes.Equal(data, batchMagic[:n]) {
			return nil, fmt.Errorf("%w: %d bytes of magic", ErrTruncated, n)
		}
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if [batchMagicSize]byte(data[:batchMagicSize]) != batchMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if n < batchMagicSize+batchLenSize {
		return nil, fmt.Errorf("%w: header cut at %d bytes", ErrTruncated, n)
	}
	total := int64(binary.LittleEndian.Uint32(data[batchMagicSize:]))
	if total > maxBatchWireBytes || total < batchFixedSize+batchTrailer {
		return nil, fmt.Errorf("%w: declared length %d out of range", ErrCorrupt, total)
	}
	body := data[batchMagicSize+batchLenSize:]
	if int64(len(body)) < total {
		return nil, fmt.Errorf("%w: %d of %d declared bytes", ErrTruncated, len(body), total)
	}
	if int64(len(body)) > total {
		return nil, fmt.Errorf("%w: %d trailing bytes after declared length", ErrCorrupt, int64(len(body))-total)
	}

	// Full-length from here on: every failure is corruption.
	crcAt := total - 4
	if got, want := crc32.Checksum(body[:crcAt], batchCRC), binary.LittleEndian.Uint32(body[crcAt:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	b := &Batch{
		Start: getPos(body),
		Next:  getPos(body[16:]),
		End:   getPos(body[32:]),
		Lag:   int64(binary.LittleEndian.Uint64(body[48:])),
	}
	count := binary.LittleEndian.Uint32(body[56:])
	if int64(count) > (total-batchFixedSize-batchTrailer)/frameFixedSize {
		return nil, fmt.Errorf("%w: frame count %d exceeds body", ErrCorrupt, count)
	}
	off := int64(batchFixedSize)
	limit := total - batchTrailer
	for i := uint32(0); i < count; i++ {
		if off+frameFixedSize > limit {
			return nil, fmt.Errorf("%w: frame %d header overruns body", ErrCorrupt, i)
		}
		next := getPos(body[off:])
		plen := int64(binary.LittleEndian.Uint32(body[off+16:]))
		if off+frameFixedSize+plen > limit {
			return nil, fmt.Errorf("%w: frame %d payload overruns body", ErrCorrupt, i)
		}
		payload := body[off+frameFixedSize : off+frameFixedSize+plen : off+frameFixedSize+plen]
		b.Frames = append(b.Frames, core.WALFrame{Payload: payload, Next: next})
		off += frameFixedSize + plen
	}
	if off != limit {
		return nil, fmt.Errorf("%w: %d undeclared bytes between frames and trailer", ErrCorrupt, limit-off)
	}
	root := MerkleRoot(b.Frames)
	if [sha256.Size]byte(body[limit:limit+sha256.Size]) != root {
		return nil, fmt.Errorf("%w: merkle root mismatch", ErrCorrupt)
	}
	return b, nil
}
