// Package embed maps Object Graph trajectories to fixed-dimension
// float32 feature vectors and indexes them with an IVF-flat coarse
// quantizer — the approximate candidate-generation tier in front of the
// exact EGED_M cascade.
//
// The embedding is a pure, deterministic function of the trajectory
// signal: no randomness, no training, no dependence on worker counts,
// shard layout or ingest batching. Two processes that ingest the same
// OGs in the same order hold bit-identical vectors, which is what makes
// the tier's snapshots optional — a vector index can always be rebuilt
// from the retained OGs and come out identical.
//
// Nothing in this package is admissible with respect to EGED_M: vector
// distance is a heuristic proxy used only to choose candidates. Every
// answer the tier returns is reranked by the exact cascade, so answers
// are always true distances — only completeness (recall) is traded.
package embed

import (
	"math"

	"strgindex/internal/dist"
)

// Dim is the embedding dimension. The budget is deliberately small: the
// IVF centroid scan is O(NLists·Dim) per query and list assignment is
// O(NLists·Dim) per ingested OG, so every extra dimension is paid at
// both ends of the pipeline.
const Dim = 20

// shapePoints is how many resampled waypoints the embedding keeps; they
// occupy the first 2·shapePoints dimensions.
const shapePoints = 6

// headingBins is the number of direction-histogram bins (quadrants).
const headingBins = 4

// Embed computes the Dim-dimensional feature vector of one trajectory:
//
//	[ 0..11]  the path resampled to 6 waypoints (x, y interleaved) —
//	          coarse shape and absolute position;
//	[12..15]  heading histogram: total step length moved in each of the
//	          four direction quadrants — turn structure that survives
//	          positional noise;
//	[16]      total path length;
//	[17]      net start→end displacement (separates U-turns from lines
//	          of the same length);
//	[18..19]  per-axis standard deviation — spatial extent.
//
// All accumulation runs in float64 in index order and is truncated to
// float32 once at the end, so the result is deterministic everywhere.
// An empty trajectory embeds to the zero vector.
func Embed(s dist.Sequence) []float32 {
	v := make([]float32, Dim)
	if len(s) == 0 {
		return v
	}
	rs := dist.Resample(s, shapePoints)
	for i, p := range rs {
		v[2*i] = float32(p[0])
		v[2*i+1] = float32(p[1])
	}

	var hist [headingBins]float64
	var total float64
	for i := 1; i < len(s); i++ {
		dx := s[i][0] - s[i-1][0]
		dy := s[i][1] - s[i-1][1]
		step := math.Sqrt(dx*dx + dy*dy)
		if step == 0 {
			continue
		}
		total += step
		// Quadrant of the step direction; the bin boundaries are the
		// diagonals so that axis-aligned motion lands mid-bin.
		ang := math.Atan2(dy, dx) // (-π, π]
		bin := int(math.Floor((ang + math.Pi + math.Pi/4) / (math.Pi / 2)))
		hist[bin%headingBins] += step
	}
	off := 2 * shapePoints
	for i, h := range hist {
		v[off+i] = float32(h)
	}
	v[off+headingBins] = float32(total)

	dx := s[len(s)-1][0] - s[0][0]
	dy := s[len(s)-1][1] - s[0][1]
	v[off+headingBins+1] = float32(math.Sqrt(dx*dx + dy*dy))

	var mx, my float64
	for _, p := range s {
		mx += p[0]
		my += p[1]
	}
	n := float64(len(s))
	mx /= n
	my /= n
	var sx, sy float64
	for _, p := range s {
		sx += (p[0] - mx) * (p[0] - mx)
		sy += (p[1] - my) * (p[1] - my)
	}
	v[off+headingBins+2] = float32(math.Sqrt(sx / n))
	v[off+headingBins+3] = float32(math.Sqrt(sy / n))
	return v
}

// l2sq is the squared Euclidean distance between two Dim-length vectors,
// unrolled 4-wide over the contiguous float32 storage (the scan kernel
// of both the centroid ranking and k-means training).
func l2sq(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}
