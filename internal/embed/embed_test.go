package embed

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"strgindex/internal/dist"
)

func randSeq(rng *rand.Rand, n int) dist.Sequence {
	s := make(dist.Sequence, n)
	x, y := rng.Float64()*320, rng.Float64()*240
	for i := range s {
		x += rng.NormFloat64() * 8
		y += rng.NormFloat64() * 8
		s[i] = dist.Vec{x, y}
	}
	return s
}

func TestEmbedDeterministicAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s := randSeq(rng, 2+rng.Intn(30))
		a := Embed(s)
		b := Embed(s.Clone())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("embedding not deterministic on case %d", i)
		}
		if len(a) != Dim {
			t.Fatalf("dim %d, want %d", len(a), Dim)
		}
		for j, f := range a {
			if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				t.Fatalf("case %d dim %d = %v", i, j, f)
			}
		}
	}
}

func TestEmbedEdgeCases(t *testing.T) {
	if got := Embed(nil); !reflect.DeepEqual(got, make([]float32, Dim)) {
		t.Errorf("empty sequence embeds to %v, want zeros", got)
	}
	one := Embed(dist.Sequence{{7, 9}})
	for i := 0; i < 2*shapePoints; i += 2 {
		if one[i] != 7 || one[i+1] != 9 {
			t.Fatalf("singleton shape dims = %v", one[:2*shapePoints])
		}
	}
	// A stationary trajectory has zero length, displacement and spread.
	flat := Embed(dist.Sequence{{5, 5}, {5, 5}, {5, 5}})
	for i := 2 * shapePoints; i < Dim; i++ {
		if flat[i] != 0 {
			t.Errorf("stationary dim %d = %v, want 0", i, flat[i])
		}
	}
}

// TestEmbedSeparatesDirections: the heading histogram must distinguish a
// path from its reversal even though shape-by-position is symmetric at
// the bounding-box level.
func TestEmbedSeparatesDirections(t *testing.T) {
	fwd := dist.Sequence{{0, 100}, {100, 100}, {200, 100}, {300, 100}}
	rev := dist.Sequence{{300, 100}, {200, 100}, {100, 100}, {0, 100}}
	a, b := Embed(fwd), Embed(rev)
	if l2sq(a, b) == 0 {
		t.Error("a path and its reversal embed identically")
	}
}

func TestIVFFlatBeforeTraining(t *testing.T) {
	x := NewIVF(Config{NLists: 4, TrainSize: 1000})
	rng := rand.New(rand.NewSource(2))
	var want []int32
	for i := 0; i < 50; i++ {
		x.Add(int32(i), Embed(randSeq(rng, 10)))
		want = append(want, int32(i))
	}
	if x.Trained() || x.NLists() != 1 || x.Len() != 50 {
		t.Fatalf("trained=%v nlists=%d len=%d, want untrained flat list of 50", x.Trained(), x.NLists(), x.Len())
	}
	var got []int32
	x.Probe(Embed(randSeq(rng, 10)), 1, func(_ int, ids []int32) { got = append(got, ids...) })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flat probe returned %d ids, want all %d in insertion order", len(got), len(want))
	}
}

// TestIVFProbeAllCoversCorpus: with nprobe >= NLists every vector comes
// back exactly once — the property the recall==1.0 tier contract rests on.
func TestIVFProbeAllCoversCorpus(t *testing.T) {
	x := NewIVF(Config{NLists: 8, TrainSize: 64, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	const n = 300
	for i := 0; i < n; i++ {
		x.Add(int32(i), Embed(randSeq(rng, 12)))
	}
	if !x.Trained() {
		t.Fatal("index should have trained at 64 vectors")
	}
	var got []int32
	probes := 0
	x.Probe(Embed(randSeq(rng, 12)), 1<<30, func(_ int, ids []int32) { probes++; got = append(got, ids...) })
	if probes != 8 {
		t.Errorf("probed %d lists, want 8", probes)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != n {
		t.Fatalf("probing all lists yielded %d ids, want %d", len(got), n)
	}
	for i, id := range got {
		if id != int32(i) {
			t.Fatalf("id %d missing or duplicated (slot %d holds %d)", i, i, id)
		}
	}
}

// TestIVFProbeMonotone: growing nprobe only adds candidates, and the
// probe order (hence the candidate set at every nprobe) is deterministic.
func TestIVFProbeMonotone(t *testing.T) {
	x := NewIVF(Config{NLists: 8, TrainSize: 64, Seed: 4})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		x.Add(int32(i), Embed(randSeq(rng, 12)))
	}
	q := Embed(randSeq(rng, 12))
	collect := func(nprobe int) []int32 {
		var ids []int32
		x.Probe(q, nprobe, func(_ int, l []int32) { ids = append(ids, l...) })
		return ids
	}
	prev := collect(1)
	for nprobe := 2; nprobe <= 8; nprobe++ {
		cur := collect(nprobe)
		if len(cur) < len(prev) || !reflect.DeepEqual(cur[:len(prev)], prev) {
			t.Fatalf("nprobe=%d candidates are not a prefix-extension of nprobe=%d", nprobe, nprobe-1)
		}
		prev = cur
	}
	if !reflect.DeepEqual(collect(3), collect(3)) {
		t.Error("probe not deterministic")
	}
}

// TestIVFTrainingDeterministicAcrossRebuild: re-adding the same stream
// to a fresh index reproduces the trained state bit-for-bit — the
// property that lets snapshots omit the vector index and rebuild it.
func TestIVFTrainingDeterministicAcrossRebuild(t *testing.T) {
	build := func() *IVF {
		x := NewIVF(Config{NLists: 6, TrainSize: 100, Seed: 7})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 250; i++ {
			x.Add(int32(i), Embed(randSeq(rng, 9)))
		}
		return x
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Error("two identical ingest streams trained different indexes")
	}
}

func TestIVFSnapshotRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{{"untrained", 20}, {"trained", 300}} {
		t.Run(tc.name, func(t *testing.T) {
			x := NewIVF(Config{NLists: 5, TrainSize: 80, Seed: 9})
			rng := rand.New(rand.NewSource(6))
			for i := 0; i < tc.n; i++ {
				x.Add(int32(i), Embed(randSeq(rng, 11)))
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(x.Snapshot()); err != nil {
				t.Fatal(err)
			}
			var snap Snapshot
			if err := gob.NewDecoder(&buf).Decode(&snap); err != nil {
				t.Fatal(err)
			}
			re, err := FromSnapshot(&snap)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(re.Snapshot(), x.Snapshot()) {
				t.Error("snapshot round trip changed the index")
			}
			// The restored index keeps answering and ingesting.
			q := Embed(randSeq(rng, 11))
			var a, b []int32
			x.Probe(q, 2, func(_ int, ids []int32) { a = append(a, ids...) })
			re.Probe(q, 2, func(_ int, ids []int32) { b = append(b, ids...) })
			if !reflect.DeepEqual(a, b) {
				t.Error("restored index probes differently")
			}
			re.Add(int32(tc.n), q)
			if re.Len() != tc.n+1 {
				t.Errorf("post-restore Add: len %d, want %d", re.Len(), tc.n+1)
			}
		})
	}
}

func TestIVFSnapshotRejectsCorrupt(t *testing.T) {
	x := NewIVF(Config{NLists: 4, TrainSize: 50, Seed: 1})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 120; i++ {
		x.Add(int32(i), Embed(randSeq(rng, 8)))
	}
	for name, mut := range map[string]func(*Snapshot){
		"centroids":  func(s *Snapshot) { s.Centroids = s.Centroids[:len(s.Centroids)-1] },
		"list-skew":  func(s *Snapshot) { s.ListIDs[0] = s.ListIDs[0][:0] },
		"count":      func(s *Snapshot) { s.Count += 3 },
		"list-count": func(s *Snapshot) { s.ListVecs = s.ListVecs[:2] },
	} {
		s := x.Snapshot()
		mut(s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
	u := NewIVF(Config{NLists: 4, TrainSize: 50})
	u.Add(1, make([]float32, Dim))
	s := u.Snapshot()
	s.Pending = s.Pending[:Dim-1]
	if _, err := FromSnapshot(s); err == nil {
		t.Error("torn pending buffer accepted")
	}
}

// TestIVFGroupsNeighbors: vectors from the same tight cluster should
// land in the same list, so probing the query's list finds its
// neighbors — the geometric property candidate generation relies on.
func TestIVFGroupsNeighbors(t *testing.T) {
	x := NewIVF(Config{NLists: 4, TrainSize: 200, Seed: 11})
	rng := rand.New(rand.NewSource(11))
	// Four well-separated motion prototypes, 100 noisy copies each.
	protos := []dist.Sequence{
		{{10, 10}, {300, 10}},
		{{10, 230}, {300, 230}},
		{{10, 10}, {10, 230}},
		{{310, 10}, {310, 230}},
	}
	noisy := func(p dist.Sequence) dist.Sequence {
		s := make(dist.Sequence, 12)
		for i := range s {
			f := float64(i) / 11
			s[i] = dist.Vec{
				p[0][0] + (p[1][0]-p[0][0])*f + rng.NormFloat64()*3,
				p[0][1] + (p[1][1]-p[0][1])*f + rng.NormFloat64()*3,
			}
		}
		return s
	}
	// Interleave the four patterns, as a live camera stream would: the
	// training buffer must see every mode, not just the first pattern.
	id := int32(0)
	for i := 0; i < 100; i++ {
		for c, p := range protos {
			x.Add(int32(c)<<16|id, Embed(noisy(p)))
			id++
		}
	}
	hits := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		c := i % len(protos)
		var first []int32
		x.Probe(Embed(noisy(protos[c])), 1, func(_ int, ids []int32) {
			if first == nil {
				first = ids
			}
		})
		same := 0
		for _, got := range first {
			if int(got>>16) == c {
				same++
			}
		}
		if len(first) > 0 && same*2 > len(first) {
			hits++
		}
	}
	if hits < trials*3/4 {
		t.Errorf("first probed list was majority-same-cluster on only %d/%d queries", hits, trials)
	}
}
