package embed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config parameterizes an IVF index. The zero value gets defaults.
type Config struct {
	// NLists is the number of coarse k-means centroids (inverted lists).
	// Zero means 64.
	NLists int
	// TrainSize is how many vectors are buffered before the one-shot
	// k-means training runs. Until then the index is a single flat list
	// (probing it scans everything — exact candidate generation). Zero
	// means 64·NLists. Training happens exactly once; the coarse
	// centroids never move afterwards, so an index rebuilt from the same
	// vector stream is bit-identical to one maintained incrementally.
	TrainSize int
	// KMeansIters is the number of Lloyd iterations. Zero means 6.
	KMeansIters int
	// TrainAttempts is how many independent k-means++ seedings are run;
	// the lowest-quantization-error result wins (ties keep the earlier
	// attempt). Lloyd can never merge or split clusters after seeding,
	// so restarts are the cheap insurance against a bad draw. Zero
	// means 3.
	TrainAttempts int
	// Seed drives the k-means++ seeding. The same seed and vector stream
	// always produce the same index.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NLists <= 0 {
		c.NLists = 64
	}
	if c.TrainSize <= 0 {
		c.TrainSize = 64 * c.NLists
	}
	if c.TrainSize < c.NLists {
		c.TrainSize = c.NLists
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 6
	}
	if c.TrainAttempts <= 0 {
		c.TrainAttempts = 3
	}
	return c
}

// IVF is an inverted-file flat vector index: NLists coarse centroids,
// each owning a contiguous float32 block of the vectors assigned to it.
// A query ranks the centroids by L2 and visits the nprobe nearest lists;
// every member of a probed list is a candidate — there is no within-list
// cut, so probing all lists yields the whole corpus and downstream
// recall against the exact reranker is monotone in nprobe.
//
// IVF is not safe for concurrent use; the owner serializes access (the
// core database guards it with the ingest lock and snapshots it for
// queries).
type IVF struct {
	cfg     Config
	trained bool
	// centroids is NLists·Dim, row-major; nil until trained.
	centroids []float32
	// vecs[l] is the contiguous block of list l's vectors; ids[l] the
	// matching external IDs in insertion order.
	vecs [][]float32
	ids  [][]int32
	// pending buffers the pre-training stream in insertion order.
	pending    []float32
	pendingIDs []int32
	count      int
}

// NewIVF creates an empty index.
func NewIVF(cfg Config) *IVF {
	return &IVF{cfg: cfg.withDefaults()}
}

// Len returns the number of indexed vectors.
func (x *IVF) Len() int { return x.count }

// Trained reports whether the coarse quantizer has been built.
func (x *IVF) Trained() bool { return x.trained }

// NLists returns the number of probeable lists: 1 while the index is an
// untrained flat buffer, the configured list count afterwards.
func (x *IVF) NLists() int {
	if !x.trained {
		return 1
	}
	return x.cfg.NLists
}

// Add appends one vector under an external ID. Vectors must be Dim
// long. Crossing TrainSize triggers the one-shot k-means build.
//
// The return values let callers maintain per-list sidecar state aligned
// with the member order Probe reports: list is the inverted list the
// vector joined (-1 while the index is an untrained flat buffer), and
// retrained reports that this Add fired the one-shot training — every
// buffered vector was just redistributed, so any sidecar must be rebuilt
// from VisitLists.
func (x *IVF) Add(id int32, v []float32) (list int, retrained bool) {
	if len(v) != Dim {
		panic(fmt.Sprintf("embed: Add vector of dim %d, want %d", len(v), Dim))
	}
	if x.trained {
		l := x.nearestCentroid(v)
		x.vecs[l] = append(x.vecs[l], v...)
		x.ids[l] = append(x.ids[l], id)
		x.count++
		return l, false
	}
	x.pending = append(x.pending, v...)
	x.pendingIDs = append(x.pendingIDs, id)
	x.count++
	if x.count >= x.cfg.TrainSize {
		x.train()
		return -1, true
	}
	return -1, false
}

// Probe ranks the lists by centroid distance to v and calls visit once
// per probed list, nearest first, with the list's index and member IDs
// in insertion order (an untrained index reports its flat buffer as
// list -1). The slice is a view into the index — callers must not
// retain or mutate it. Ties rank by list ID ascending, so the probe
// order is deterministic. nprobe < 1 probes one list; nprobe beyond the
// list count probes everything.
func (x *IVF) Probe(v []float32, nprobe int, visit func(list int, ids []int32)) {
	if nprobe < 1 {
		nprobe = 1
	}
	if !x.trained {
		visit(-1, x.pendingIDs)
		return
	}
	if nprobe > x.cfg.NLists {
		nprobe = x.cfg.NLists
	}
	order := x.rankLists(v, nprobe)
	for _, l := range order {
		visit(int(l), x.ids[l])
	}
}

// VisitLists calls visit once per inverted list with its members in
// insertion order — the full-index counterpart of Probe, for rebuilding
// sidecar state after training or a snapshot load. An untrained index
// reports its flat buffer as list -1. Slices are views; callers must not
// retain or mutate them.
func (x *IVF) VisitLists(visit func(list int, ids []int32)) {
	if !x.trained {
		visit(-1, x.pendingIDs)
		return
	}
	for l := range x.ids {
		visit(l, x.ids[l])
	}
}

// rankLists returns the nprobe nearest list indices, nearest first,
// ties by list ID. The selection is a bounded insertion sort — nprobe
// is small, so this beats sorting all NLists distances.
func (x *IVF) rankLists(v []float32, nprobe int) []int32 {
	type cand struct {
		d float32
		l int32
	}
	best := make([]cand, 0, nprobe)
	for l := 0; l < x.cfg.NLists; l++ {
		d := l2sq(v, x.centroids[l*Dim:(l+1)*Dim])
		if len(best) == nprobe && d >= best[nprobe-1].d {
			continue
		}
		i := sort.Search(len(best), func(i int) bool {
			return best[i].d > d // ties keep earlier (lower) list IDs first
		})
		if len(best) < nprobe {
			best = append(best, cand{})
		}
		copy(best[i+1:], best[i:])
		best[i] = cand{d: d, l: int32(l)}
	}
	out := make([]int32, len(best))
	for i, c := range best {
		out[i] = c.l
	}
	return out
}

// ListVec returns list l's i-th vector as a view (rerank scoring).
func (x *IVF) ListVec(l, i int) []float32 {
	if !x.trained {
		return x.pending[i*Dim : (i+1)*Dim]
	}
	return x.vecs[l][i*Dim : (i+1)*Dim]
}

func (x *IVF) nearestCentroid(v []float32) int {
	best, bd := 0, l2sq(v, x.centroids[:Dim])
	for l := 1; l < x.cfg.NLists; l++ {
		if d := l2sq(v, x.centroids[l*Dim:(l+1)*Dim]); d < bd {
			best, bd = l, d
		}
	}
	return best
}

// train runs the one-shot coarse k-means over the pending buffer:
// TrainAttempts independent seedings, each k-means++ D² sampling plus
// KMeansIters Lloyd rounds (assignment ties to the lower centroid,
// empty centroids re-seeded from the vector farthest from its
// assignment), lowest total quantization error wins; then the buffer is
// flushed into the lists in insertion order. Everything is driven by
// Config.Seed — the same stream always trains the same quantizer.
func (x *IVF) train() {
	n := len(x.pendingIDs)
	k := x.cfg.NLists
	rng := rand.New(rand.NewSource(x.cfg.Seed))
	vec := func(i int) []float32 { return x.pending[i*Dim : (i+1)*Dim] }

	var best []float32
	bestSSE := math.Inf(1)
	for a := 0; a < x.cfg.TrainAttempts; a++ {
		cents, sse := x.trainOnce(rng, n, vec)
		if sse < bestSSE {
			best, bestSSE = cents, sse
		}
	}

	x.centroids = best
	x.vecs = make([][]float32, k)
	x.ids = make([][]int32, k)
	x.trained = true
	for i := 0; i < n; i++ {
		l := x.nearestCentroid(vec(i))
		x.vecs[l] = append(x.vecs[l], vec(i)...)
		x.ids[l] = append(x.ids[l], x.pendingIDs[i])
	}
	x.pending = nil
	x.pendingIDs = nil
}

// trainOnce is one seeding + Lloyd run; it returns the centroids and
// their total quantization error over the training buffer.
func (x *IVF) trainOnce(rng *rand.Rand, n int, vec func(int) []float32) ([]float32, float64) {
	k := x.cfg.NLists
	cents := make([]float32, k*Dim)
	copy(cents[:Dim], vec(rng.Intn(n)))
	minD := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		minD[i] = float64(l2sq(vec(i), cents[:Dim]))
		sum += minD[i]
	}
	for c := 1; c < k; c++ {
		pick := n - 1
		if sum > 0 {
			r := rng.Float64() * sum
			var acc float64
			for i := 0; i < n; i++ {
				acc += minD[i]
				if acc >= r {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		copy(cents[c*Dim:(c+1)*Dim], vec(pick))
		if c == k-1 {
			break
		}
		sum = 0
		for i := 0; i < n; i++ {
			if d := float64(l2sq(vec(i), cents[c*Dim:(c+1)*Dim])); d < minD[i] {
				minD[i] = d
			}
			sum += minD[i]
		}
	}

	assign := make([]int32, n)
	counts := make([]int32, k)
	acc := make([]float64, k*Dim)
	var sse float64
	for iter := 0; iter < x.cfg.KMeansIters; iter++ {
		for i := range counts {
			counts[i] = 0
		}
		for i := range acc {
			acc[i] = 0
		}
		sse = 0
		for i := 0; i < n; i++ {
			v := vec(i)
			best, bd := 0, l2sq(v, cents[:Dim])
			for l := 1; l < k; l++ {
				if d := l2sq(v, cents[l*Dim:(l+1)*Dim]); d < bd {
					best, bd = l, d
				}
			}
			assign[i] = int32(best)
			counts[best]++
			sse += float64(bd)
			row := acc[best*Dim : (best+1)*Dim]
			for j, f := range v {
				row[j] += float64(f)
			}
		}
		for l := 0; l < k; l++ {
			if counts[l] == 0 {
				// Re-seed from the vector farthest from its centroid —
				// deterministic, and it peels a point off the densest
				// spread instead of leaving a dead list.
				far, fd := 0, float32(-1)
				for i := 0; i < n; i++ {
					c := assign[i]
					if d := l2sq(vec(i), cents[int(c)*Dim:(int(c)+1)*Dim]); d > fd {
						far, fd = i, d
					}
				}
				copy(cents[l*Dim:(l+1)*Dim], vec(far))
				continue
			}
			row := acc[l*Dim : (l+1)*Dim]
			out := cents[l*Dim : (l+1)*Dim]
			inv := 1 / float64(counts[l])
			for j := range out {
				out[j] = float32(row[j] * inv)
			}
		}
	}
	return cents, sse
}

// Snapshot is the persistable form of an IVF index (gob-friendly:
// exported fields, flat slices).
type Snapshot struct {
	Config    Config
	Trained   bool
	Centroids []float32
	ListVecs  [][]float32
	ListIDs   [][]int32
	Pending   []float32
	PendingID []int32
	Count     int
}

// Snapshot deep-copies the index state.
func (x *IVF) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:    x.cfg,
		Trained:   x.trained,
		Centroids: append([]float32(nil), x.centroids...),
		Pending:   append([]float32(nil), x.pending...),
		PendingID: append([]int32(nil), x.pendingIDs...),
		Count:     x.count,
	}
	if x.trained {
		s.ListVecs = make([][]float32, len(x.vecs))
		s.ListIDs = make([][]int32, len(x.ids))
		for l := range x.vecs {
			s.ListVecs[l] = append([]float32(nil), x.vecs[l]...)
			s.ListIDs[l] = append([]int32(nil), x.ids[l]...)
		}
	}
	return s
}

// FromSnapshot reconstructs an IVF index.
func FromSnapshot(s *Snapshot) (*IVF, error) {
	cfg := s.Config.withDefaults()
	x := &IVF{cfg: cfg, trained: s.Trained, count: s.Count}
	if s.Trained {
		if len(s.Centroids) != cfg.NLists*Dim {
			return nil, fmt.Errorf("embed: snapshot holds %d centroid floats, want %d", len(s.Centroids), cfg.NLists*Dim)
		}
		if len(s.ListVecs) != cfg.NLists || len(s.ListIDs) != cfg.NLists {
			return nil, fmt.Errorf("embed: snapshot holds %d/%d lists, want %d", len(s.ListVecs), len(s.ListIDs), cfg.NLists)
		}
		x.centroids = append([]float32(nil), s.Centroids...)
		x.vecs = make([][]float32, cfg.NLists)
		x.ids = make([][]int32, cfg.NLists)
		total := 0
		for l := range s.ListVecs {
			if len(s.ListVecs[l]) != len(s.ListIDs[l])*Dim {
				return nil, fmt.Errorf("embed: snapshot list %d: %d floats for %d ids", l, len(s.ListVecs[l]), len(s.ListIDs[l]))
			}
			x.vecs[l] = append([]float32(nil), s.ListVecs[l]...)
			x.ids[l] = append([]int32(nil), s.ListIDs[l]...)
			total += len(s.ListIDs[l])
		}
		if total != s.Count {
			return nil, fmt.Errorf("embed: snapshot lists hold %d vectors, count says %d", total, s.Count)
		}
		return x, nil
	}
	if len(s.Pending) != len(s.PendingID)*Dim || len(s.PendingID) != s.Count {
		return nil, fmt.Errorf("embed: snapshot pending buffer %d floats / %d ids / count %d disagree", len(s.Pending), len(s.PendingID), s.Count)
	}
	x.pending = append([]float32(nil), s.Pending...)
	x.pendingIDs = append([]int32(nil), s.PendingID...)
	return x, nil
}
