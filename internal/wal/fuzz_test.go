package wal_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"strgindex/internal/faultfs"
	"strgindex/internal/wal"
)

// fuzzFrame builds one valid record frame for seeding.
func fuzzFrame(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(frame[8:], payload)
	return frame
}

// FuzzWALScan feeds arbitrary bytes to the replay scanner and checks its
// contract: it never panics, it either reports corruption (ErrCorrupt) or
// returns a consistent Result — the committed prefix ends at a record
// boundary, a torn tail starts exactly there, and rescanning the
// committed prefix is idempotent (same records, nothing torn). This is
// the property recovery depends on: Scan → truncate to CommittedSize →
// Scan must converge.
func FuzzWALScan(f *testing.F) {
	valid := append([]byte{}, wal.Magic[:]...)
	valid = append(valid, fuzzFrame([]byte("first record"))...)
	valid = append(valid, fuzzFrame([]byte("second"))...)
	f.Add([]byte{})
	f.Add(wal.Magic[:])
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte{}, valid...)
	flipped[wal.HeaderSize+10] ^= 0x40 // corrupt first payload
	f.Add(flipped)
	f.Add(append(append([]byte{}, wal.Magic[:]...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)) // absurd length

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		applied := 0
		res, err := wal.Scan(faultfs.OS{}, path, func(_ int64, p []byte) error { applied++; return nil })
		if err != nil {
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("Scan error is not corruption: %v", err)
			}
			// Even a refused log reports how far the intact prefix ran.
			if res.CommittedSize < 0 || res.CommittedSize > int64(len(data)) {
				t.Fatalf("corrupt scan: CommittedSize %d outside [0, %d]", res.CommittedSize, len(data))
			}
			return
		}
		if res.Records != applied {
			t.Fatalf("Records = %d but apply ran %d times", res.Records, applied)
		}
		if res.CommittedSize < 0 || res.CommittedSize > int64(len(data)) {
			t.Fatalf("CommittedSize %d outside [0, %d]", res.CommittedSize, len(data))
		}
		if res.Torn {
			if res.TornOffset != res.CommittedSize {
				t.Fatalf("Torn but TornOffset %d != CommittedSize %d", res.TornOffset, res.CommittedSize)
			}
			if res.CommittedSize == int64(len(data)) {
				t.Fatal("Torn with nothing after the committed prefix")
			}
		}
		// Idempotence: the committed prefix must rescan clean — exactly the
		// state recovery leaves behind after truncating the tear.
		prefix := filepath.Join(dir, "prefix.log")
		if err := os.WriteFile(prefix, data[:res.CommittedSize], 0o644); err != nil {
			t.Fatal(err)
		}
		res2, err := wal.Scan(faultfs.OS{}, prefix, func(_ int64, p []byte) error { return nil })
		if err != nil {
			t.Fatalf("rescan of committed prefix failed: %v", err)
		}
		if res2.Torn || res2.Records != res.Records || res2.CommittedSize != res.CommittedSize {
			t.Fatalf("rescan of committed prefix diverged: %+v, want %+v", res2, res)
		}
	})
}
