// Package wal implements the write-ahead log of the durability layer: an
// append-only file of length-prefixed, CRC32C-checksummed records, fsynced
// on every append, with a replay scanner that distinguishes a torn tail
// (the normal residue of a crash mid-append, repaired by truncation) from
// checksum corruption (bad media, refused).
//
// # File format
//
// A log starts with the 8-byte magic "STRGWAL\x01" (the final byte is the
// format version). Each record is then
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// with CRC32C the Castagnoli polynomial. Records are written with one
// Write call followed by one fsync, so a crash persists a prefix of the
// frame: replay sees a record whose bytes run past the end of the file
// and truncates it. A record whose bytes are all present but whose CRC
// does not match cannot be a tear under prefix-persistence — it is
// corruption, and Scan refuses the log rather than silently loading or
// skipping it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"strgindex/internal/faultfs"
	"strgindex/internal/obs"
)

// Magic identifies a WAL file; the last byte is the format version.
var Magic = [8]byte{'S', 'T', 'R', 'G', 'W', 'A', 'L', 1}

// HeaderSize is the byte length of the file header.
const HeaderSize = 8

// FrameOverhead is the per-record framing: length + CRC. Exported so the
// replication layer can compute resume offsets from record payloads.
const FrameOverhead = 8

// MaxRecordBytes bounds a single record payload. A length prefix above it
// can only come from corruption (ingest bodies are far smaller), so the
// scanner reports it instead of attempting a multi-gigabyte read.
const MaxRecordBytes = 256 << 20

// ErrCorrupt is the sentinel matched (via errors.Is) by every corruption
// error the scanner reports.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrStopScan, returned by a scan callback, ends the scan cleanly: the
// Result covers the records applied so far (Stopped is set) and Scan
// returns a nil error. Used by readers that page through a log in
// bounded batches.
var ErrStopScan = errors.New("wal: stop scan")

// CorruptError reports where and why a log was rejected.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Is matches ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Observability: the durability layer's health is judged from these.
var (
	walAppends = obs.Default.Counter("strg_wal_appends_total",
		"records appended to the write-ahead log", nil)
	walAppendBytes = obs.Default.Counter("strg_wal_append_bytes_total",
		"bytes appended to the write-ahead log (framing included)", nil)
	walFsyncs = obs.Default.Counter("strg_wal_fsyncs_total",
		"fsync calls issued by the write-ahead log", nil)
	walTornTails = obs.Default.Counter("strg_wal_torn_tails_total",
		"torn trailing records discarded during replay", nil)
	walChecksumFailures = obs.Default.Counter("strg_wal_checksum_failures_total",
		"checksummed records rejected during replay (corruption, not tears)", nil)
)

// Result summarizes one Scan.
type Result struct {
	// Records is the number of intact records.
	Records int
	// CommittedSize is the byte offset of the end of the last intact
	// record — the size the file should be truncated to before appending.
	CommittedSize int64
	// Torn reports whether a trailing partial record (or partial header)
	// was found and measured off.
	Torn bool
	// TornOffset is the offset the torn bytes start at (== CommittedSize
	// when Torn).
	TornOffset int64
	// Stopped reports that the scan ended early because apply returned
	// ErrStopScan; records may remain after CommittedSize.
	Stopped bool
}

// Scan reads the log at path, calling apply for each intact record in
// order; off is the byte offset the record's frame starts at. A torn tail
// (file ends inside a record frame, or inside the file header) is
// reported in the Result, not as an error; corruption (bad magic,
// oversized length, CRC mismatch on a fully present record) aborts with a
// *CorruptError. An apply error aborts the scan and is returned wrapped,
// except ErrStopScan which ends it cleanly.
//
// The payload slice passed to apply aliases the scan buffer and is only
// valid for the duration of the call.
func Scan(fsys faultfs.FS, path string, apply func(off int64, payload []byte) error) (Result, error) {
	return ScanRange(fsys, path, HeaderSize, -1, apply)
}

// ScanRange is Scan restricted to a byte window: records are read
// starting at offset from (which must be a record boundary — HeaderSize
// or an offset previously reported by Scan), and bytes at or beyond
// limit are treated as absent (limit < 0 means the whole file). The
// replication reader uses the limit to page a live log up to its
// committed size without seeing an append in flight.
func ScanRange(fsys faultfs.FS, path string, from, limit int64, apply func(off int64, payload []byte) error) (Result, error) {
	data, err := faultfs.ReadFile(fsys, path)
	if err != nil {
		return Result{}, err
	}
	if limit >= 0 && int64(len(data)) > limit {
		data = data[:limit]
	}
	var res Result
	if len(data) < HeaderSize {
		// A crash during log creation persisted a prefix of the header.
		res.Torn = len(data) > 0
		res.TornOffset = 0
		res.CommittedSize = 0
		if res.Torn {
			walTornTails.Inc()
		}
		return res, nil
	}
	if [8]byte(data[:8]) != Magic {
		return res, &CorruptError{Path: path, Offset: 0, Reason: "bad magic"}
	}
	if from < HeaderSize {
		from = HeaderSize
	}
	if from > int64(len(data)) {
		return res, &CorruptError{Path: path, Offset: from,
			Reason: fmt.Sprintf("start offset beyond %d available bytes", len(data))}
	}
	off := from
	res.CommittedSize = off
	for {
		remaining := int64(len(data)) - off
		if remaining == 0 {
			return res, nil
		}
		if remaining < FrameOverhead {
			res.Torn, res.TornOffset = true, off
			walTornTails.Inc()
			return res, nil
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxRecordBytes {
			walChecksumFailures.Inc()
			return res, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds limit", length)}
		}
		if remaining < FrameOverhead+length {
			res.Torn, res.TornOffset = true, off
			walTornTails.Inc()
			return res, nil
		}
		payload := data[off+FrameOverhead : off+FrameOverhead+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			walChecksumFailures.Inc()
			return res, &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
		}
		if err := apply(off, payload); err != nil {
			if errors.Is(err, ErrStopScan) {
				res.Stopped = true
				return res, nil
			}
			return res, fmt.Errorf("wal: applying record %d of %s: %w", res.Records, path, err)
		}
		off += FrameOverhead + length
		res.Records++
		res.CommittedSize = off
	}
}

// Log is an open write-ahead log positioned for appending.
type Log struct {
	fsys faultfs.FS
	f    faultfs.File
	path string
	size int64
}

// Create creates (or truncates) a fresh log at path, writes the header
// and fsyncs both the file and its directory.
func Create(fsys faultfs.FS, path string) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{fsys: fsys, f: f, path: path}
	if _, err := f.Write(Magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing header of %s: %w", path, err)
	}
	if err := l.sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncParent(fsys, path); err != nil {
		f.Close()
		return nil, err
	}
	l.size = HeaderSize
	return l, nil
}

// OpenAppend opens an existing log for appending, truncating it to
// committedSize first (discarding a torn tail measured by Scan). A
// committedSize of 0 — a log whose header itself was torn — rewrites the
// file from scratch.
func OpenAppend(fsys faultfs.FS, path string, committedSize int64) (*Log, error) {
	if committedSize < HeaderSize {
		return Create(fsys, path)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	l := &Log{fsys: fsys, f: f, path: path, size: committedSize}
	if err := l.truncate(committedSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(committedSize, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	return l, nil
}

// Append frames, writes and fsyncs one record. When it returns nil the
// record is durable; on error the file may hold a torn frame, which the
// caller either truncates with TruncateTo or leaves for the next Scan to
// measure off.
func (l *Log) Append(payload []byte) error {
	frame := make([]byte, FrameOverhead+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[FrameOverhead:], payload)
	n, err := l.f.Write(frame)
	if err != nil {
		return fmt.Errorf("wal: appending to %s after %d/%d bytes: %w", l.path, n, len(frame), err)
	}
	if err := l.sync(); err != nil {
		return err
	}
	l.size += int64(len(frame))
	walAppends.Inc()
	walAppendBytes.Add(int64(len(frame)))
	return nil
}

// Size returns the committed size in bytes (header included).
func (l *Log) Size() int64 { return l.size }

// Path returns the file path of the log.
func (l *Log) Path() string { return l.path }

// TruncateTo rolls the log back to size (an offset previously returned by
// Size), discarding any bytes after it — the undo for an append whose
// apply step failed.
func (l *Log) TruncateTo(size int64) error {
	if err := l.truncate(size); err != nil {
		return err
	}
	if _, err := l.f.Seek(size, 0); err != nil {
		return fmt.Errorf("wal: seeking %s: %w", l.path, err)
	}
	if err := l.sync(); err != nil {
		return err
	}
	l.size = size
	return nil
}

func (l *Log) truncate(size int64) error {
	if err := l.f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating %s to %d: %w", l.path, size, err)
	}
	return nil
}

func (l *Log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	walFsyncs.Inc()
	return nil
}

// Sync forces an fsync (appends already sync; this flushes after an
// external Truncate or before close).
func (l *Log) Sync() error { return l.sync() }

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// syncParent fsyncs the directory containing path so a freshly created
// file survives a crash.
func syncParent(fsys faultfs.FS, path string) error {
	return fsys.SyncDir(filepath.Dir(path))
}
