package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"strgindex/internal/faultfs"
)

func noFaults() faultfs.Config {
	return faultfs.Config{WriteBudget: -1, FailSyncAfter: -1}
}

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 5+i*7)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		out[i] = p
	}
	return out
}

func writeLog(t *testing.T, path string, payloads [][]byte) {
	t.Helper()
	l, err := Create(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func scanAll(t *testing.T, fsys faultfs.FS, path string) ([][]byte, Result, error) {
	t.Helper()
	var got [][]byte
	var wantOff int64 = HeaderSize
	res, err := Scan(fsys, path, func(off int64, p []byte) error {
		if off != wantOff {
			t.Errorf("record %d offset = %d, want %d", len(got), off, wantOff)
		}
		wantOff = off + FrameOverhead + int64(len(p))
		got = append(got, bytes.Clone(p))
		return nil
	})
	return got, res, err
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	payloads := testPayloads(5)
	writeLog(t, path, payloads)
	got, res, err := scanAll(t, faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Error("clean log reported torn")
	}
	if res.Records != len(payloads) {
		t.Fatalf("Records = %d, want %d", res.Records, len(payloads))
	}
	info, _ := os.Stat(path)
	if res.CommittedSize != info.Size() {
		t.Errorf("CommittedSize = %d, file is %d", res.CommittedSize, info.Size())
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

// TestScanEveryPrefix is the torn-write property: for EVERY byte-length
// prefix of a log — including cuts inside the file header, inside a
// record's length/CRC frame and inside a payload — Scan returns exactly
// the records that were fully persisted, flags the tear, and never
// reports corruption.
func TestScanEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	payloads := testPayloads(4)
	writeLog(t, full, payloads)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// recordEnd[i] = offset after record i; boundaries[k] = number of
	// complete records in a prefix of length k.
	ends := []int64{HeaderSize}
	off := int64(HeaderSize)
	for _, p := range payloads {
		off += FrameOverhead + int64(len(p))
		ends = append(ends, off)
	}

	for cut := 0; cut <= len(data); cut++ {
		prefix := filepath.Join(dir, "prefix.log")
		if err := os.WriteFile(prefix, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res, err := scanAll(t, faultfs.OS{}, prefix)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecords := 0
		for i := 1; i < len(ends); i++ {
			if int64(cut) >= ends[i] {
				wantRecords = i
			}
		}
		if res.Records != wantRecords || len(got) != wantRecords {
			t.Fatalf("cut %d: Records = %d, want %d", cut, res.Records, wantRecords)
		}
		for i := 0; i < wantRecords; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
		wantCommitted := ends[wantRecords]
		if int64(cut) < HeaderSize {
			wantCommitted = 0
		}
		if res.CommittedSize != wantCommitted {
			t.Fatalf("cut %d: CommittedSize = %d, want %d", cut, res.CommittedSize, wantCommitted)
		}
		wantTorn := int64(cut) != wantCommitted
		if res.Torn != wantTorn {
			t.Fatalf("cut %d: Torn = %v, want %v", cut, res.Torn, wantTorn)
		}
		// Recovery contract: truncating to CommittedSize and appending
		// must yield a valid log.
		l, err := OpenAppend(faultfs.OS{}, prefix, res.CommittedSize)
		if err != nil {
			t.Fatalf("cut %d: OpenAppend: %v", cut, err)
		}
		if err := l.Append([]byte("tail")); err != nil {
			t.Fatalf("cut %d: post-recovery append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got2, res2, err := scanAll(t, faultfs.OS{}, prefix)
		if err != nil || res2.Torn {
			t.Fatalf("cut %d: rescan after append: %v torn=%v", cut, err, res2.Torn)
		}
		if res2.Records != wantRecords+1 || !bytes.Equal(got2[wantRecords], []byte("tail")) {
			t.Fatalf("cut %d: rescan got %d records", cut, res2.Records)
		}
	}
}

// TestBitFlipDetected proves a checksum failure is reported as corruption
// — never silently loaded, never mistaken for a tear — wherever the flip
// lands in a record's CRC or payload.
func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	payloads := testPayloads(3)
	writeLog(t, path, payloads)

	// Flip one bit in the middle record's payload, then in its CRC field.
	rec1Start := int64(HeaderSize + FrameOverhead + len(payloads[0]))
	for name, offset := range map[string]int64{
		"payload": rec1Start + FrameOverhead + 2,
		"crc":     rec1Start + 5,
	} {
		t.Run(name, func(t *testing.T) {
			cfg := noFaults()
			cfg.Flips = []faultfs.BitFlip{{Name: "wal.log", Offset: offset, Mask: 0x40}}
			fsys := faultfs.NewInject(faultfs.OS{}, cfg)
			got, res, err := scanAll(t, fsys, path)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) || ce.Offset != rec1Start {
				t.Fatalf("corrupt error = %+v, want offset %d", err, rec1Start)
			}
			// The intact prefix was still delivered.
			if res.Records != 1 || len(got) != 1 || !bytes.Equal(got[0], payloads[0]) {
				t.Errorf("prefix delivery: %d records", res.Records)
			}
		})
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("GARBAGE!moredata"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := scanAll(t, faultfs.OS{}, path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	frame := make([]byte, HeaderSize+FrameOverhead+4)
	copy(frame, Magic[:])
	// Length field far beyond MaxRecordBytes.
	frame[HeaderSize] = 0xff
	frame[HeaderSize+1] = 0xff
	frame[HeaderSize+2] = 0xff
	frame[HeaderSize+3] = 0xff
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := scanAll(t, faultfs.OS{}, path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncateToRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	mark := l.Size()
	if err := l.Append([]byte("drop")); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(mark); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, res, err := scanAll(t, faultfs.OS{}, path)
	if err != nil || res.Torn {
		t.Fatalf("scan: %v torn=%v", err, res.Torn)
	}
	if len(got) != 2 || string(got[0]) != "keep" || string(got[1]) != "after" {
		t.Fatalf("records = %q", got)
	}
}

func TestAppendFailsCleanlyOnCrashedDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	// Budget covers the header plus one full record, then tears.
	payload := []byte("0123456789")
	budget := int64(HeaderSize + FrameOverhead + len(payload) + 5)
	fsys := faultfs.NewInject(faultfs.OS{}, faultfs.Config{WriteBudget: budget, FailSyncAfter: -1})
	l, err := Create(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(payload); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := l.Append(payload); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("torn append err = %v", err)
	}
	l.Close()
	// Recovery on the real filesystem sees one intact record and a tear.
	got, res, err := scanAll(t, faultfs.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || !res.Torn || !bytes.Equal(got[0], payload) {
		t.Fatalf("post-crash scan: %+v", res)
	}
}

func TestScanApplyErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, testPayloads(3))
	calls := 0
	boom := fmt.Errorf("boom")
	_, err := Scan(faultfs.OS{}, path, func(_ int64, p []byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("apply called %d times", calls)
	}
}
