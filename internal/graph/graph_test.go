package graph

import (
	"math"
	"testing"

	"strgindex/internal/geom"
)

// buildTriangle returns a 3-node triangle graph with distinct sizes.
func buildTriangle(t *testing.T, base NodeID) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 3; i++ {
		g.MustAddNode(Node{
			ID: base + NodeID(i),
			Attr: NodeAttr{
				Size:     float64(100 * (i + 1)),
				Color:    Gray(float64(i) * 0.3),
				Centroid: geom.Pt(float64(i*10), 0),
			},
		})
	}
	edges := []struct {
		u, v NodeID
		attr SpatialAttr
	}{
		{base, base + 1, SpatialAttr{Dist: 10, Orient: 0}},
		{base + 1, base + 2, SpatialAttr{Dist: 10, Orient: 0}},
		{base, base + 2, SpatialAttr{Dist: 20, Orient: 0}},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.attr); err != nil {
			t.Fatalf("AddEdge(%d, %d): %v", e.u, e.v, err)
		}
	}
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: 1}); err != nil {
		t.Fatalf("first AddNode: %v", err)
	}
	if err := g.AddNode(Node{ID: 1}); err == nil {
		t.Error("duplicate AddNode did not error")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: 1})
	g.MustAddNode(Node{ID: 2})
	tests := []struct {
		name string
		u, v NodeID
	}{
		{"self edge", 1, 1},
		{"missing u", 7, 2},
		{"missing v", 1, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v, SpatialAttr{}); err == nil {
				t.Error("AddEdge did not error")
			}
		})
	}
	if err := g.AddEdge(1, 2, SpatialAttr{}); err != nil {
		t.Fatalf("valid AddEdge: %v", err)
	}
	if err := g.AddEdge(2, 1, SpatialAttr{}); err == nil {
		t.Error("duplicate edge (reversed) did not error")
	}
}

func TestOrderAndSize(t *testing.T) {
	g := buildTriangle(t, 0)
	if g.Order() != 3 {
		t.Errorf("Order = %d, want 3", g.Order())
	}
	if g.Size() != 3 {
		t.Errorf("Size = %d, want 3", g.Size())
	}
}

func TestEdgeAttrReverseOrientation(t *testing.T) {
	g := New()
	g.MustAddNode(Node{ID: 1})
	g.MustAddNode(Node{ID: 2})
	if err := g.AddEdge(1, 2, SpatialAttr{Dist: 5, Orient: math.Pi / 4}); err != nil {
		t.Fatal(err)
	}
	fwd, ok := g.EdgeAttr(1, 2)
	if !ok || fwd.Orient != math.Pi/4 {
		t.Errorf("forward orient = %v, want pi/4", fwd.Orient)
	}
	rev, ok := g.EdgeAttr(2, 1)
	if !ok {
		t.Fatal("reverse edge missing")
	}
	if want := math.Pi/4 + math.Pi; math.Abs(rev.Orient-want) > 1e-9 {
		t.Errorf("reverse orient = %v, want %v", rev.Orient, want)
	}
	if rev.Dist != 5 {
		t.Errorf("reverse dist = %v, want 5", rev.Dist)
	}
}

func TestNeighbors(t *testing.T) {
	g := buildTriangle(t, 0)
	got := g.Neighbors(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", got)
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", g.Degree(1))
	}
	if got := g.Neighbors(99); got != nil {
		t.Errorf("Neighbors of missing node = %v, want nil", got)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := buildTriangle(t, 0)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 3 {
		t.Fatalf("len(Edges) = %d, want 3", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Errorf("Edges not deterministic at %d: %v vs %v", i, e1[i], e2[i])
		}
		if e1[i].U >= e1[i].V {
			t.Errorf("edge %v not normalized U < V", e1[i])
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := buildTriangle(t, 0)
	sub := g.Subgraph([]NodeID{0, 1})
	if sub.Order() != 2 {
		t.Errorf("Order = %d, want 2", sub.Order())
	}
	if sub.Size() != 1 {
		t.Errorf("Size = %d, want 1", sub.Size())
	}
	if !sub.HasEdge(0, 1) {
		t.Error("induced edge (0,1) missing")
	}
	// Unknown and duplicate IDs are tolerated.
	sub2 := g.Subgraph([]NodeID{0, 0, 42})
	if sub2.Order() != 1 {
		t.Errorf("Order with dup/missing IDs = %d, want 1", sub2.Order())
	}
}

func TestNeighborhoodGraphIsStar(t *testing.T) {
	g := buildTriangle(t, 0)
	star := g.NeighborhoodGraph(0)
	if star.Order() != 3 {
		t.Errorf("Order = %d, want 3", star.Order())
	}
	// Only edges incident to the center — the (1,2) edge must be absent.
	if star.Size() != 2 {
		t.Errorf("Size = %d, want 2", star.Size())
	}
	if star.HasEdge(1, 2) {
		t.Error("star contains non-center edge (1,2)")
	}
	if g.NeighborhoodGraph(99) != nil {
		t.Error("NeighborhoodGraph of missing node != nil")
	}
}

func TestClone(t *testing.T) {
	g := buildTriangle(t, 0)
	c := g.Clone()
	if c.Order() != g.Order() || c.Size() != g.Size() {
		t.Fatalf("clone shape mismatch: %d/%d vs %d/%d", c.Order(), c.Size(), g.Order(), g.Size())
	}
	// Mutating the clone must not affect the original.
	c.MustAddNode(Node{ID: 99})
	if g.Has(99) {
		t.Error("mutating clone affected original")
	}
}

func TestColorDist(t *testing.T) {
	if got := (Color{0, 0, 0}).Dist(Color{1, 1, 1}); math.Abs(got-math.Sqrt(3)) > 1e-9 {
		t.Errorf("Dist(black, white) = %v, want sqrt(3)", got)
	}
	if got := Gray(0.5).Dist(Gray(0.5)); got != 0 {
		t.Errorf("Dist(gray, same gray) = %v, want 0", got)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	small := buildTriangle(t, 0)
	big := buildTriangle(t, 0)
	big.MustAddNode(Node{ID: 50})
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Error("MemoryBytes did not grow with node count")
	}
}
