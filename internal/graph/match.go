package graph

import (
	"sort"

	"strgindex/internal/geom"
)

// Tolerance bounds how much two attribute values may differ and still be
// considered equal during matching. Segmented regions jitter between frames
// (illumination, segmentation instability), so exact attribute equality is
// useless in practice; every matching entry point takes a Tolerance.
//
// A zero tolerance demands exact equality. DefaultTolerance is tuned for
// the synthetic video substrate.
type Tolerance struct {
	// SizeRel is the maximum allowed relative size difference,
	// |a-b| / max(a, b, 1).
	SizeRel float64
	// Color is the maximum allowed RGB distance (0 .. sqrt(3)).
	Color float64
	// Centroid is the maximum allowed centroid displacement in pixels.
	// Zero means "do not compare centroids" — tracking must tolerate
	// motion, so centroid equality is usually not wanted.
	Centroid float64
	// Dist is the maximum allowed difference of spatial edge lengths.
	Dist float64
	// Orient is the maximum allowed orientation difference in radians.
	Orient float64
}

// DefaultTolerance is a reasonable tolerance for the synthetic video
// substrate: regions keep their size and color up to jitter while moving
// freely.
func DefaultTolerance() Tolerance {
	return Tolerance{
		SizeRel: 0.35,
		Color:   0.18,
		Dist:    12,
		Orient:  0.6,
	}
}

// NodesCompatible reports whether two node attribute sets are equal up to
// the tolerance.
func (t Tolerance) NodesCompatible(a, b NodeAttr) bool {
	maxSize := a.Size
	if b.Size > maxSize {
		maxSize = b.Size
	}
	if maxSize < 1 {
		maxSize = 1
	}
	if absf(a.Size-b.Size)/maxSize > t.SizeRel {
		return false
	}
	if a.Color.Dist(b.Color) > t.Color {
		return false
	}
	if t.Centroid > 0 && a.Centroid.Dist(b.Centroid) > t.Centroid {
		return false
	}
	return true
}

// EdgesCompatible reports whether two spatial edge attribute sets are equal
// up to the tolerance.
func (t Tolerance) EdgesCompatible(a, b SpatialAttr) bool {
	if absf(a.Dist-b.Dist) > t.Dist {
		return false
	}
	if geom.AngleDiff(a.Orient, b.Orient) > t.Orient {
		return false
	}
	return true
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Matcher bundles a tolerance with the matching algorithms. The zero value
// uses exact attribute equality.
type Matcher struct {
	Tol Tolerance
}

// NewMatcher returns a Matcher with the given tolerance.
func NewMatcher(tol Tolerance) *Matcher { return &Matcher{Tol: tol} }

// Mapping is a node correspondence from one graph into another.
type Mapping map[NodeID]NodeID

// Isomorphic reports whether a and b are isomorphic per Definition 4 and, if
// so, returns a witnessing bijection from a's nodes to b's nodes.
func (m *Matcher) Isomorphic(a, b *Graph) (Mapping, bool) {
	if a.Order() != b.Order() || a.Size() != b.Size() {
		return nil, false
	}
	return m.matchInto(a, b, true)
}

// SubgraphIsomorphic reports whether a is subgraph-isomorphic to b per
// Definition 5 — there is an induced subgraph of b isomorphic to a — and
// returns the injection from a's nodes into b's nodes.
func (m *Matcher) SubgraphIsomorphic(a, b *Graph) (Mapping, bool) {
	if a.Order() > b.Order() || a.Size() > b.Size() {
		return nil, false
	}
	return m.matchInto(a, b, false)
}

// matchInto backtracks over candidate assignments of a's nodes onto b's
// nodes. With exact set, degrees must match exactly (full isomorphism on
// induced edges in both directions); otherwise a's adjacency must embed
// into b's (induced: non-edges must map to non-edges, per Definition 3's
// node-induced subgraph semantics).
func (m *Matcher) matchInto(a, b *Graph, exact bool) (Mapping, bool) {
	aIDs := a.NodeIDs()
	// Order a's nodes by descending degree: high-constraint nodes first
	// prunes much faster.
	sort.Slice(aIDs, func(i, j int) bool { return a.Degree(aIDs[i]) > a.Degree(aIDs[j]) })

	bIDs := b.NodeIDs()
	assign := make(Mapping, len(aIDs))
	used := make(map[NodeID]bool, len(bIDs))

	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(aIDs) {
			return true
		}
		u := aIDs[i]
		ua, _ := a.Node(u)
		for _, v := range bIDs {
			if used[v] {
				continue
			}
			vb, _ := b.Node(v)
			if exact && a.Degree(u) != b.Degree(v) {
				continue
			}
			if !exact && a.Degree(u) > b.Degree(v) {
				continue
			}
			if !m.Tol.NodesCompatible(ua.Attr, vb.Attr) {
				continue
			}
			if !m.consistent(a, b, assign, u, v, exact) {
				continue
			}
			assign[u] = v
			used[v] = true
			if rec(i + 1) {
				return true
			}
			delete(assign, u)
			used[v] = false
		}
		return false
	}
	if rec(0) {
		return assign, true
	}
	return nil, false
}

// consistent checks that mapping u -> v preserves (non-)adjacency and edge
// attributes against every node already assigned.
func (m *Matcher) consistent(a, b *Graph, assign Mapping, u, v NodeID, exact bool) bool {
	_ = exact // induced semantics apply in both modes
	for au, bv := range assign {
		ae, aok := a.EdgeAttr(u, au)
		be, bok := b.EdgeAttr(v, bv)
		if aok != bok {
			return false
		}
		if aok && !m.Tol.EdgesCompatible(ae, be) {
			return false
		}
	}
	return true
}

// CommonPair is one node correspondence inside a common subgraph.
type CommonPair struct {
	A, B NodeID
}

// MostCommonSubgraph returns a maximum common node-induced subgraph of a and
// b per Definition 6, as a list of node correspondences. It reduces the
// problem to maximum clique detection on the association graph (Levi 1972),
// which is how the paper computes G_C for SimGraph.
//
// The association graph has one vertex per attribute-compatible node pair
// (u ∈ a, v ∈ b); two vertices (u1,v1), (u2,v2) are adjacent when u1≠u2,
// v1≠v2, and the pairs preserve (non-)adjacency with compatible edge
// attributes. A maximum clique is a maximum common subgraph.
func (m *Matcher) MostCommonSubgraph(a, b *Graph) []CommonPair {
	type vertex struct {
		u, v NodeID
	}
	var verts []vertex
	for _, an := range a.Nodes() {
		for _, bn := range b.Nodes() {
			if m.Tol.NodesCompatible(an.Attr, bn.Attr) {
				verts = append(verts, vertex{an.ID, bn.ID})
			}
		}
	}
	n := len(verts)
	if n == 0 {
		return nil
	}
	// Dense adjacency over association-graph vertices.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			vi, vj := verts[i], verts[j]
			if vi.u == vj.u || vi.v == vj.v {
				continue
			}
			ae, aok := a.EdgeAttr(vi.u, vj.u)
			be, bok := b.EdgeAttr(vi.v, vj.v)
			if aok != bok {
				continue
			}
			if aok && !m.Tol.EdgesCompatible(ae, be) {
				continue
			}
			adj[i][j] = true
			adj[j][i] = true
		}
	}
	best := maxClique(adj)
	out := make([]CommonPair, len(best))
	for i, vi := range best {
		out[i] = CommonPair{A: verts[vi].u, B: verts[vi].v}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].A < out[j].A })
	return out
}

// SimGraph computes Equation (1): |G_C| / min(|G_N(v)|, |G_N(v')|) where
// G_C is the most common subgraph of the two (neighborhood) graphs. It
// returns 0 when either graph is empty.
func (m *Matcher) SimGraph(a, b *Graph) float64 {
	minOrder := a.Order()
	if b.Order() < minOrder {
		minOrder = b.Order()
	}
	if minOrder == 0 {
		return 0
	}
	common := m.MostCommonSubgraph(a, b)
	return float64(len(common)) / float64(minOrder)
}
