package graph

import "fmt"

// Snapshot is a serializable image of a Graph: plain exported slices with
// no internal maps, suitable for encoding/gob or encoding/json.
type Snapshot struct {
	Nodes []Node
	Edges []SpatialEdge
}

// Snapshot captures the graph's current state. Edges appear once each with
// U < V.
func (g *Graph) Snapshot() Snapshot {
	return Snapshot{Nodes: append([]Node(nil), g.nodes...), Edges: g.Edges()}
}

// FromSnapshot reconstructs a graph from a snapshot.
func FromSnapshot(s Snapshot) (*Graph, error) {
	g := New()
	for _, n := range s.Nodes {
		if err := g.AddNode(n); err != nil {
			return nil, fmt.Errorf("graph: restoring snapshot: %w", err)
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e.U, e.V, e.Attr); err != nil {
			return nil, fmt.Errorf("graph: restoring snapshot: %w", err)
		}
	}
	return g, nil
}
