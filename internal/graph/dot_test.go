package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := buildTriangle(t, 0)
	var b strings.Builder
	if err := g.WriteDOT(&b, "frame105"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`graph "frame105" {`,
		"n0 [label=",
		"n0 -- n1",
		"n1 -- n2",
		"n0 -- n2",
		"fillcolor=\"#",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Three node lines, three edge lines.
	if got := strings.Count(out, " -- "); got != 3 {
		t.Errorf("edges in DOT = %d, want 3", got)
	}
}

func TestWriteDOTEmptyGraph(t *testing.T) {
	var b strings.Builder
	if err := New().WriteDOT(&b, "empty"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "graph \"empty\" {") {
		t.Error("empty DOT header missing")
	}
}

func TestColorByteClamps(t *testing.T) {
	if colorByte(-1) != 0 || colorByte(2) != 255 || colorByte(0.5) != 127 {
		t.Error("colorByte clamping wrong")
	}
}
