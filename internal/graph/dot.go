package graph

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT format: one node per region
// (labelled with size and colored by its mean RGB), one edge per spatial
// adjacency (labelled with the centroid distance). Node positions pin the
// layout to the frame geometry via pos attributes (use neato -n to honor
// them).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle style=filled];\n", name); err != nil {
		return err
	}
	ids := g.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n, _ := g.Node(id)
		label := fmt.Sprintf("%d", id)
		if n.Attr.Label != "" {
			label = n.Attr.Label
		}
		_, err := fmt.Fprintf(w, "  n%d [label=%q fillcolor=\"#%02x%02x%02x\" pos=\"%.0f,%.0f\"];\n",
			id, label,
			colorByte(n.Attr.Color.R), colorByte(n.Attr.Color.G), colorByte(n.Attr.Color.B),
			n.Attr.Centroid.X, -n.Attr.Centroid.Y)
		if err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [label=\"%.0f\"];\n", e.U, e.V, e.Attr.Dist); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func colorByte(v float64) int {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return int(v * 255)
}
