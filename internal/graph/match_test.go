package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"strgindex/internal/geom"
)

func exactMatcher() *Matcher { return NewMatcher(Tolerance{}) }

func looseMatcher() *Matcher { return NewMatcher(DefaultTolerance()) }

// path builds a path graph v0 - v1 - ... - v(n-1) with uniform attributes.
func path(n int, base NodeID) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.MustAddNode(Node{ID: base + NodeID(i), Attr: NodeAttr{Size: 100, Color: Gray(0.5)}})
	}
	for i := 0; i+1 < n; i++ {
		_ = g.AddEdge(base+NodeID(i), base+NodeID(i+1), SpatialAttr{Dist: 10})
	}
	return g
}

func TestToleranceNodesCompatible(t *testing.T) {
	tol := Tolerance{SizeRel: 0.2, Color: 0.1, Centroid: 5}
	base := NodeAttr{Size: 100, Color: Gray(0.5), Centroid: geom.Pt(0, 0)}
	tests := []struct {
		name string
		b    NodeAttr
		want bool
	}{
		{"identical", base, true},
		{"size within", NodeAttr{Size: 115, Color: Gray(0.5)}, true},
		{"size beyond", NodeAttr{Size: 150, Color: Gray(0.5)}, false},
		{"color within", NodeAttr{Size: 100, Color: Gray(0.55)}, true},
		{"color beyond", NodeAttr{Size: 100, Color: Gray(0.8)}, false},
		{"centroid within", NodeAttr{Size: 100, Color: Gray(0.5), Centroid: geom.Pt(3, 0)}, true},
		{"centroid beyond", NodeAttr{Size: 100, Color: Gray(0.5), Centroid: geom.Pt(30, 0)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tol.NodesCompatible(base, tt.b); got != tt.want {
				t.Errorf("NodesCompatible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestToleranceCentroidZeroMeansIgnore(t *testing.T) {
	tol := Tolerance{SizeRel: 0.2, Color: 0.1} // Centroid == 0
	a := NodeAttr{Size: 100, Color: Gray(0.5), Centroid: geom.Pt(0, 0)}
	b := NodeAttr{Size: 100, Color: Gray(0.5), Centroid: geom.Pt(500, 500)}
	if !tol.NodesCompatible(a, b) {
		t.Error("zero centroid tolerance should ignore centroid displacement")
	}
}

func TestToleranceEdgesCompatible(t *testing.T) {
	tol := Tolerance{Dist: 2, Orient: 0.3}
	base := SpatialAttr{Dist: 10, Orient: 0}
	tests := []struct {
		name string
		b    SpatialAttr
		want bool
	}{
		{"identical", base, true},
		{"dist within", SpatialAttr{Dist: 11.5, Orient: 0}, true},
		{"dist beyond", SpatialAttr{Dist: 13, Orient: 0}, false},
		{"orient within", SpatialAttr{Dist: 10, Orient: 0.2}, true},
		{"orient beyond", SpatialAttr{Dist: 10, Orient: 1.0}, false},
		{"orient wraps", SpatialAttr{Dist: 10, Orient: 2*math.Pi - 0.1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tol.EdgesCompatible(base, tt.b); got != tt.want {
				t.Errorf("EdgesCompatible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsomorphicIdentical(t *testing.T) {
	a := buildTriangle(t, 0)
	b := buildTriangle(t, 100)
	mapping, ok := exactMatcher().Isomorphic(a, b)
	if !ok {
		t.Fatal("identical triangles not isomorphic")
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping size = %d, want 3", len(mapping))
	}
	// Sizes are distinct, so the mapping is forced: 0->100, 1->101, 2->102.
	for u, v := range mapping {
		if v != u+100 {
			t.Errorf("mapping[%d] = %d, want %d", u, v, u+100)
		}
	}
}

func TestIsomorphicRejectsDifferentShape(t *testing.T) {
	tri := buildTriangle(t, 0)
	p := path(3, 0)
	if _, ok := looseMatcher().Isomorphic(tri, p); ok {
		t.Error("triangle isomorphic to path")
	}
}

func TestIsomorphicRejectsDifferentOrder(t *testing.T) {
	if _, ok := looseMatcher().Isomorphic(path(3, 0), path(4, 0)); ok {
		t.Error("P3 isomorphic to P4")
	}
}

func TestIsomorphicUnderRelabeling(t *testing.T) {
	// Property: any relabeling of a random graph stays isomorphic.
	// Seeded trials rather than quick.Check so failures reproduce directly.
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := 3 + rng.Intn(5)
		a := New()
		for i := 0; i < n; i++ {
			a.MustAddNode(Node{ID: NodeID(i), Attr: NodeAttr{Size: float64(50 + 10*i), Color: Gray(0.4)}})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					_ = a.AddEdge(NodeID(i), NodeID(j), SpatialAttr{Dist: float64(5 + rng.Intn(3))})
				}
			}
		}
		perm := rng.Perm(n)
		b := New()
		for i := 0; i < n; i++ {
			orig, _ := a.Node(NodeID(i))
			b.MustAddNode(Node{ID: NodeID(1000 + perm[i]), Attr: orig.Attr})
		}
		for _, e := range a.Edges() {
			attr, _ := a.EdgeAttr(e.U, e.V)
			_ = b.AddEdge(NodeID(1000+perm[int(e.U)]), NodeID(1000+perm[int(e.V)]), attr)
		}
		if _, ok := exactMatcher().Isomorphic(a, b); !ok {
			t.Fatalf("trial %d: relabeled graph not isomorphic (n=%d)", trial, n)
		}
	}
}

func TestSubgraphIsomorphic(t *testing.T) {
	tri := buildTriangle(t, 0)
	// A single node of matching attributes embeds.
	single := New()
	single.MustAddNode(Node{ID: 7, Attr: NodeAttr{Size: 100, Color: Gray(0)}})
	if _, ok := looseMatcher().SubgraphIsomorphic(single, tri); !ok {
		t.Error("single node does not embed into triangle")
	}
	// The whole triangle embeds into itself.
	if _, ok := exactMatcher().SubgraphIsomorphic(tri, tri.Clone()); !ok {
		t.Error("triangle does not embed into itself")
	}
	// A 4-node path cannot embed into a 3-node triangle.
	if _, ok := looseMatcher().SubgraphIsomorphic(path(4, 0), tri); ok {
		t.Error("P4 embeds into triangle")
	}
}

func TestSubgraphIsomorphicInduced(t *testing.T) {
	// Induced semantics: P3 (path on 3 nodes, 2 edges) must NOT embed into
	// K3 (triangle) because the missing edge maps onto an existing edge.
	tri := New()
	for i := 0; i < 3; i++ {
		tri.MustAddNode(Node{ID: NodeID(i), Attr: NodeAttr{Size: 100, Color: Gray(0.5)}})
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			_ = tri.AddEdge(NodeID(i), NodeID(j), SpatialAttr{Dist: 10})
		}
	}
	if _, ok := looseMatcher().SubgraphIsomorphic(path(3, 10), tri); ok {
		t.Error("P3 embedded into K3 despite induced-subgraph semantics")
	}
}

func TestMostCommonSubgraphIdentical(t *testing.T) {
	a := buildTriangle(t, 0)
	b := buildTriangle(t, 100)
	common := exactMatcher().MostCommonSubgraph(a, b)
	if len(common) != 3 {
		t.Fatalf("|G_C| = %d, want 3", len(common))
	}
}

func TestMostCommonSubgraphPartial(t *testing.T) {
	// a: triangle with sizes 100, 200, 300. b: same but third node has a
	// wildly different size -> common subgraph has 2 nodes.
	a := buildTriangle(t, 0)
	b := New()
	sizes := []float64{100, 200, 9000}
	for i := 0; i < 3; i++ {
		b.MustAddNode(Node{ID: NodeID(100 + i), Attr: NodeAttr{Size: sizes[i], Color: Gray(float64(i) * 0.3)}})
	}
	_ = b.AddEdge(100, 101, SpatialAttr{Dist: 10})
	_ = b.AddEdge(101, 102, SpatialAttr{Dist: 10})
	_ = b.AddEdge(100, 102, SpatialAttr{Dist: 20})
	common := looseMatcher().MostCommonSubgraph(a, b)
	if len(common) != 2 {
		t.Fatalf("|G_C| = %d, want 2 (got %v)", len(common), common)
	}
}

func TestMostCommonSubgraphDisjointAttrs(t *testing.T) {
	a := New()
	a.MustAddNode(Node{ID: 0, Attr: NodeAttr{Size: 10, Color: Gray(0)}})
	b := New()
	b.MustAddNode(Node{ID: 1, Attr: NodeAttr{Size: 100000, Color: Gray(1)}})
	if got := looseMatcher().MostCommonSubgraph(a, b); len(got) != 0 {
		t.Errorf("common subgraph of incompatible nodes = %v, want empty", got)
	}
}

func TestSimGraph(t *testing.T) {
	a := buildTriangle(t, 0)
	b := buildTriangle(t, 100)
	if got := exactMatcher().SimGraph(a, b); got != 1 {
		t.Errorf("SimGraph(identical) = %v, want 1", got)
	}
	empty := New()
	if got := exactMatcher().SimGraph(a, empty); got != 0 {
		t.Errorf("SimGraph(a, empty) = %v, want 0", got)
	}
}

func TestSimGraphRange(t *testing.T) {
	// Property: SimGraph is always within [0, 1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(base NodeID) *Graph {
			g := New()
			n := 1 + rng.Intn(5)
			for i := 0; i < n; i++ {
				g.MustAddNode(Node{ID: base + NodeID(i), Attr: NodeAttr{
					Size:  float64(rng.Intn(300)),
					Color: Gray(rng.Float64()),
				}})
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 0.4 {
						_ = g.AddEdge(base+NodeID(i), base+NodeID(j), SpatialAttr{Dist: rng.Float64() * 30})
					}
				}
			}
			return g
		}
		a, b := mk(0), mk(100)
		s := looseMatcher().SimGraph(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimGraphSymmetric(t *testing.T) {
	a := buildTriangle(t, 0)
	b := path(3, 100)
	m := looseMatcher()
	if s1, s2 := m.SimGraph(a, b), m.SimGraph(b, a); math.Abs(s1-s2) > 1e-9 {
		t.Errorf("SimGraph not symmetric: %v vs %v", s1, s2)
	}
}

func TestMaxCliqueDirect(t *testing.T) {
	// 5-vertex graph: {0,1,2} is a triangle, 3-4 is an edge.
	adj := make([][]bool, 5)
	for i := range adj {
		adj[i] = make([]bool, 5)
	}
	set := func(u, v int) { adj[u][v], adj[v][u] = true, true }
	set(0, 1)
	set(1, 2)
	set(0, 2)
	set(3, 4)
	got := maxClique(adj)
	if len(got) != 3 {
		t.Fatalf("maxClique size = %d, want 3 (%v)", len(got), got)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, v := range got {
		if !want[v] {
			t.Errorf("clique contains %d, want subset of {0,1,2}", v)
		}
	}
}

func TestMaxCliqueEmpty(t *testing.T) {
	if got := maxClique(nil); got != nil {
		t.Errorf("maxClique(nil) = %v, want nil", got)
	}
	// Edgeless graph: any single vertex is a maximum clique.
	adj := [][]bool{{false, false}, {false, false}}
	if got := maxClique(adj); len(got) != 1 {
		t.Errorf("maxClique(edgeless) size = %d, want 1", len(got))
	}
}
