package graph

import (
	"container/heap"
	"math"
)

// EditCosts prices the elementary graph edit operations for GED. The
// paper's Section 3 builds EGED on top of graph edit distance ("the
// minimum cost of graph edit operations such as adding, deleting, and
// changing nodes, to transform one graph to the other"); this is the
// general-graph realization, usable on RAGs and neighborhood graphs
// directly.
type EditCosts struct {
	// NodeSub returns the cost of substituting node attributes a with b.
	NodeSub func(a, b NodeAttr) float64
	// NodeIns is the cost of inserting or deleting a node.
	NodeIns func(a NodeAttr) float64
	// EdgeSub returns the cost of substituting edge attributes.
	EdgeSub func(a, b SpatialAttr) float64
	// EdgeIns is the cost of inserting or deleting an edge.
	EdgeIns func(a SpatialAttr) float64
}

// DefaultEditCosts prices operations on the region-attribute scales used
// throughout the pipeline: node substitution combines relative size,
// color and centroid displacement; insertion/deletion is a unit cost.
func DefaultEditCosts() EditCosts {
	return EditCosts{
		NodeSub: func(a, b NodeAttr) float64 {
			maxSize := math.Max(math.Max(a.Size, b.Size), 1)
			return math.Abs(a.Size-b.Size)/maxSize + a.Color.Dist(b.Color)
		},
		NodeIns: func(NodeAttr) float64 { return 1 },
		EdgeSub: func(a, b SpatialAttr) float64 {
			return math.Abs(a.Dist-b.Dist) / 100
		},
		EdgeIns: func(SpatialAttr) float64 { return 0.5 },
	}
}

// gedState is one node of the A* search tree: a partial assignment of a's
// first `depth` nodes.
type gedState struct {
	depth   int
	mapping []int // mapping[i] = index into bIDs, or -1 for deletion
	g       float64
	f       float64
}

type gedQueue []*gedState

func (q gedQueue) Len() int            { return len(q) }
func (q gedQueue) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q gedQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *gedQueue) Push(x interface{}) { *q = append(*q, x.(*gedState)) }
func (q *gedQueue) Pop() interface{} {
	old := *q
	n := len(old)
	s := old[n-1]
	*q = old[:n-1]
	return s
}

// GED computes the exact graph edit distance between a and b under the
// given costs, using A* over node assignments with an admissible
// unmatched-nodes heuristic. Exponential in the worst case — intended for
// the small graphs of this pipeline (RAGs, neighborhood graphs, BGs).
// A budget caps the explored states; if exhausted, the best f-value found
// is returned as a lower bound along with ok = false.
func GED(a, b *Graph, costs EditCosts, budget int) (distance float64, ok bool) {
	if costs.NodeSub == nil || costs.NodeIns == nil || costs.EdgeSub == nil || costs.EdgeIns == nil {
		costs = DefaultEditCosts()
	}
	if budget <= 0 {
		budget = 200_000
	}
	aIDs := sortedNodeIDs(a)
	bIDs := sortedNodeIDs(b)
	n, m := len(aIDs), len(bIDs)

	attrA := make([]NodeAttr, n)
	for i, id := range aIDs {
		node, _ := a.Node(id)
		attrA[i] = node.Attr
	}
	attrB := make([]NodeAttr, m)
	for j, id := range bIDs {
		node, _ := b.Node(id)
		attrB[j] = node.Attr
	}

	// h: admissible completion estimate — by counting alone, any
	// completion must insert max(0, remainingB - remainingA) b-nodes, each
	// costing at least the cheapest node insertion.
	minIns := math.Inf(1)
	for _, attr := range attrB {
		minIns = math.Min(minIns, costs.NodeIns(attr))
	}
	if math.IsInf(minIns, 1) {
		minIns = 0
	}
	h := func(depth int, used int) float64 {
		excess := (m - used) - (n - depth)
		if excess <= 0 {
			return 0
		}
		return float64(excess) * minIns
	}

	start := &gedState{mapping: []int{}}
	pq := &gedQueue{start}
	heap.Init(pq)
	explored := 0
	bestBound := math.Inf(1)

	for pq.Len() > 0 {
		s := heap.Pop(pq).(*gedState)
		explored++
		if explored > budget {
			return math.Min(bestBound, s.f), false
		}
		if s.depth == n {
			// Complete: pay for unmatched b-nodes and their edges.
			total := s.g
			usedB := make(map[int]bool, len(s.mapping))
			for _, j := range s.mapping {
				if j >= 0 {
					usedB[j] = true
				}
			}
			for j := 0; j < m; j++ {
				if !usedB[j] {
					total += costs.NodeIns(attrB[j])
				}
			}
			total += unmatchedEdgeCost(b, bIDs, usedB, costs)
			return total, true
		}
		i := s.depth
		usedB := make(map[int]bool, len(s.mapping))
		for _, j := range s.mapping {
			if j >= 0 {
				usedB[j] = true
			}
		}
		// Option 1: substitute a[i] with each unused b[j].
		for j := 0; j < m; j++ {
			if usedB[j] {
				continue
			}
			g := s.g + costs.NodeSub(attrA[i], attrB[j]) + edgeDelta(a, b, aIDs, bIDs, s.mapping, i, j, costs)
			child := &gedState{
				depth:   i + 1,
				mapping: append(append([]int{}, s.mapping...), j),
				g:       g,
			}
			child.f = g + h(child.depth, len(usedB)+1)
			if child.f < bestBound {
				heap.Push(pq, child)
			}
		}
		// Option 2: delete a[i] (and its edges to already-mapped nodes).
		g := s.g + costs.NodeIns(attrA[i]) + deletedEdgeCost(a, aIDs, s.mapping, i, costs)
		child := &gedState{
			depth:   i + 1,
			mapping: append(append([]int{}, s.mapping...), -1),
			g:       g,
		}
		child.f = g + h(child.depth, len(usedB))
		heap.Push(pq, child)
	}
	return bestBound, false
}

// edgeDelta prices the edge edits implied by mapping a[i] -> b[j], against
// every previously assigned a-node.
func edgeDelta(a, b *Graph, aIDs, bIDs []NodeID, mapping []int, i, j int, costs EditCosts) float64 {
	var total float64
	for prev, pj := range mapping {
		ae, aok := a.EdgeAttr(aIDs[i], aIDs[prev])
		if pj < 0 {
			// Partner was deleted: a's edge (if any) dies with it — priced
			// in deletedEdgeCost at deletion time? No: deletion happened
			// before i existed in the mapping, so price a's edge here.
			if aok {
				total += costs.EdgeIns(ae)
			}
			continue
		}
		be, bok := b.EdgeAttr(bIDs[j], bIDs[pj])
		switch {
		case aok && bok:
			total += costs.EdgeSub(ae, be)
		case aok && !bok:
			total += costs.EdgeIns(ae)
		case !aok && bok:
			total += costs.EdgeIns(be)
		}
	}
	return total
}

// deletedEdgeCost prices deleting a[i]'s edges toward already-processed
// a-nodes.
func deletedEdgeCost(a *Graph, aIDs []NodeID, mapping []int, i int, costs EditCosts) float64 {
	var total float64
	for prev := range mapping {
		if ae, ok := a.EdgeAttr(aIDs[i], aIDs[prev]); ok {
			total += costs.EdgeIns(ae)
		}
	}
	return total
}

// unmatchedEdgeCost prices inserting the edges of b incident to inserted
// (unmatched) b-nodes, counting each edge once.
func unmatchedEdgeCost(b *Graph, bIDs []NodeID, usedB map[int]bool, costs EditCosts) float64 {
	idx := make(map[NodeID]int, len(bIDs))
	for j, id := range bIDs {
		idx[id] = j
	}
	var total float64
	for _, e := range b.Edges() {
		ui, vi := idx[e.U], idx[e.V]
		if !usedB[ui] || !usedB[vi] {
			total += costs.EdgeIns(e.Attr)
		}
	}
	return total
}

func sortedNodeIDs(g *Graph) []NodeID {
	ids := g.NodeIDs()
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}
