package graph

// maxClique returns one maximum clique of the graph given by the dense
// adjacency matrix adj, as a list of vertex indices. It runs Bron–Kerbosch
// with pivoting, keeping only the largest clique found.
//
// The association graphs produced by MostCommonSubgraph are small (the
// neighborhood graphs of Definition 7 are stars of a region and its
// adjacent regions), so exponential worst case is not a concern in
// practice; a work cap still bounds pathological inputs.
func maxClique(adj [][]bool) []int {
	n := len(adj)
	if n == 0 {
		return nil
	}
	var best []int
	r := make([]int, 0, n)
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x := make([]int, 0, n)

	const workCap = 2_000_000
	work := 0

	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		work++
		if work > workCap {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			if len(r) > len(best) {
				best = append(best[:0], r...)
			}
			return
		}
		if len(r)+len(p) <= len(best) {
			return // cannot beat the incumbent
		}
		// Pivot: vertex from p ∪ x with most neighbors in p.
		pivot, maxDeg := -1, -1
		for _, u := range p {
			d := countNeighbors(adj, u, p)
			if d > maxDeg {
				pivot, maxDeg = u, d
			}
		}
		for _, u := range x {
			d := countNeighbors(adj, u, p)
			if d > maxDeg {
				pivot, maxDeg = u, d
			}
		}
		for i := 0; i < len(p); i++ {
			v := p[i]
			if pivot >= 0 && adj[pivot][v] {
				continue // skip neighbors of the pivot
			}
			var p2, x2 []int
			for _, w := range p {
				if adj[v][w] {
					p2 = append(p2, w)
				}
			}
			for _, w := range x {
				if adj[v][w] {
					x2 = append(x2, w)
				}
			}
			bk(append(r, v), p2, x2)
			// Move v from p to x.
			p = append(p[:i], p[i+1:]...)
			i--
			x = append(x, v)
		}
	}
	bk(r, p, x)
	return best
}

func countNeighbors(adj [][]bool, u int, set []int) int {
	c := 0
	for _, v := range set {
		if adj[u][v] {
			c++
		}
	}
	return c
}
