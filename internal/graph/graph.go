// Package graph implements attributed region graphs and the graph matching
// primitives the STRG pipeline is built on: graph isomorphism, subgraph
// isomorphism and the most-common-subgraph computation used by SimGraph
// (Equation 1 of the paper).
//
// Nodes carry the region attributes of Definition 1 (size, color, centroid);
// spatial edges carry distance and orientation between region centroids.
// Attribute equality is always checked through a Tolerance, because segmented
// regions jitter from frame to frame.
package graph

import (
	"fmt"
	"math"
	"sort"

	"strgindex/internal/geom"
)

// NodeID identifies a node. IDs are assigned by the caller and must be
// unique within a graph; the STRG layer keeps them unique across a whole
// video segment so nodes can be referenced from temporal edges.
type NodeID int

// Color is a mean region color with components in [0, 1].
type Color struct {
	R, G, B float64
}

// Dist returns the Euclidean distance between two colors in RGB space.
// Its maximum value is sqrt(3).
func (c Color) Dist(d Color) float64 {
	dr, dg, db := c.R-d.R, c.G-d.G, c.B-d.B
	return math.Sqrt(dr*dr + dg*dg + db*db)
}

// Gray returns the gray color with all components set to v.
func Gray(v float64) Color { return Color{v, v, v} }

// NodeAttr holds the attributes ν(v) of a region node per Definition 1:
// size (pixel count), mean color and centroid location. Label carries the
// ground-truth object identity where one is known (synthetic data); it is
// never consulted by matching.
type NodeAttr struct {
	Size     float64
	Color    Color
	Centroid geom.Point
	Label    string
}

// Node is a region node.
type Node struct {
	ID   NodeID
	Attr NodeAttr
}

// SpatialAttr holds the attributes ξ(e_S) of a spatial edge: the distance
// and orientation between the centroids of the two adjacent regions.
type SpatialAttr struct {
	Dist   float64
	Orient float64
}

// SpatialEdge pairs two node IDs with the edge attributes. Spatial edges
// are undirected; the orientation is stored for the (U, V) direction.
type SpatialEdge struct {
	U, V NodeID
	Attr SpatialAttr
}

// Graph is an attributed undirected graph over region nodes — a Region
// Adjacency Graph in the paper's terms. The zero value is not usable; call
// New.
type Graph struct {
	nodes []Node
	index map[NodeID]int
	adj   map[NodeID]map[NodeID]SpatialAttr
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		index: make(map[NodeID]int),
		adj:   make(map[NodeID]map[NodeID]SpatialAttr),
	}
}

// AddNode inserts n. It returns an error if a node with the same ID
// already exists.
func (g *Graph) AddNode(n Node) error {
	if _, ok := g.index[n.ID]; ok {
		return fmt.Errorf("graph: duplicate node %d", n.ID)
	}
	g.index[n.ID] = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return nil
}

// MustAddNode is AddNode that panics on error; for use in construction code
// where IDs are generated and collisions are bugs.
func (g *Graph) MustAddNode(n Node) {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
}

// AddEdge inserts an undirected spatial edge between u and v. It returns an
// error if either endpoint is missing, u == v, or the edge already exists.
func (g *Graph) AddEdge(u, v NodeID, attr SpatialAttr) error {
	if u == v {
		return fmt.Errorf("graph: self edge on node %d", u)
	}
	if _, ok := g.index[u]; !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", u)
	}
	if _, ok := g.index[v]; !ok {
		return fmt.Errorf("graph: edge endpoint %d not in graph", v)
	}
	if _, ok := g.adj[u][v]; ok {
		return fmt.Errorf("graph: duplicate edge (%d, %d)", u, v)
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[NodeID]SpatialAttr)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[NodeID]SpatialAttr)
	}
	g.adj[u][v] = attr
	// Store the reverse direction with the orientation flipped so that
	// EdgeAttr(v, u) reads consistently.
	rev := attr
	rev.Orient = geom.NormalizeAngle(attr.Orient + math.Pi)
	g.adj[v][u] = rev
	return nil
}

// Order returns the number of nodes.
func (g *Graph) Order() int { return len(g.nodes) }

// Size returns the number of undirected edges.
func (g *Graph) Size() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	i, ok := g.index[id]
	if !ok {
		return Node{}, false
	}
	return g.nodes[i], true
}

// Has reports whether the node exists.
func (g *Graph) Has(id NodeID) bool {
	_, ok := g.index[id]
	return ok
}

// Nodes returns the nodes in insertion order. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Nodes() []Node { return g.nodes }

// NodeIDs returns the IDs of all nodes in insertion order.
func (g *Graph) NodeIDs() []NodeID {
	ids := make([]NodeID, len(g.nodes))
	for i, n := range g.nodes {
		ids[i] = n.ID
	}
	return ids
}

// Neighbors returns the IDs adjacent to id, sorted ascending.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	m := g.adj[id]
	if len(m) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// EdgeAttr returns the attributes of the edge (u, v), oriented from u to v.
func (g *Graph) EdgeAttr(u, v NodeID) (SpatialAttr, bool) {
	attr, ok := g.adj[u][v]
	return attr, ok
}

// HasEdge reports whether the edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Edges returns every undirected edge exactly once, with U < V, sorted.
func (g *Graph) Edges() []SpatialEdge {
	var out []SpatialEdge
	for u, m := range g.adj {
		for v, attr := range m {
			if u < v {
				out = append(out, SpatialEdge{U: u, V: v, Attr: attr})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Subgraph returns the node-induced subgraph on ids (Definition 3). IDs not
// present in g are ignored.
func (g *Graph) Subgraph(ids []NodeID) *Graph {
	sub := New()
	keep := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		if n, ok := g.Node(id); ok && !keep[id] {
			keep[id] = true
			sub.MustAddNode(n)
		}
	}
	for u := range keep {
		for v, attr := range g.adj[u] {
			if keep[v] && u < v {
				if err := sub.AddEdge(u, v, attr); err != nil {
					panic(err) // unreachable: endpoints verified above
				}
			}
		}
	}
	return sub
}

// NeighborhoodGraph returns G_N(v) per Definition 7: the star consisting of
// v, its adjacent nodes, and the edges (v, u) only. It returns nil if v is
// not in g.
func (g *Graph) NeighborhoodGraph(v NodeID) *Graph {
	center, ok := g.Node(v)
	if !ok {
		return nil
	}
	star := New()
	star.MustAddNode(center)
	for u, attr := range g.adj[v] {
		n, _ := g.Node(u)
		star.MustAddNode(n)
		if err := star.AddEdge(v, u, attr); err != nil {
			panic(err) // unreachable
		}
	}
	return star
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		c.MustAddNode(n)
	}
	for u, m := range g.adj {
		for v, attr := range m {
			if u < v {
				if err := c.AddEdge(u, v, attr); err != nil {
					panic(err) // unreachable
				}
			}
		}
	}
	return c
}

// MemoryBytes estimates the in-memory footprint of the graph, used by the
// STRG vs STRG-Index size accounting of Section 5.4. The estimate counts
// node and edge payloads, not Go map overhead, so it is stable across
// runtimes.
func (g *Graph) MemoryBytes() int {
	const nodeBytes = 8 + 8 + 24 + 16 // ID + size + color + centroid
	const edgeBytes = 8 + 8 + 16      // two IDs + dist/orient
	return g.Order()*nodeBytes + g.Size()*edgeBytes
}
