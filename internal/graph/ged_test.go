package graph

import (
	"math"
	"math/rand"
	"testing"

	"strgindex/internal/geom"
)

// unitCosts makes every operation cost 1 (edges 0.5) so expected values
// are countable by hand.
func unitCosts() EditCosts {
	return EditCosts{
		NodeSub: func(a, b NodeAttr) float64 {
			if a.Size == b.Size && a.Color == b.Color {
				return 0
			}
			return 1
		},
		NodeIns: func(NodeAttr) float64 { return 1 },
		EdgeSub: func(a, b SpatialAttr) float64 {
			if a.Dist == b.Dist {
				return 0
			}
			return 1
		},
		EdgeIns: func(SpatialAttr) float64 { return 0.5 },
	}
}

func gedNode(id NodeID, size float64) Node {
	return Node{ID: id, Attr: NodeAttr{Size: size, Color: Gray(0.5), Centroid: geom.Pt(0, 0)}}
}

func TestGEDIdenticalGraphsIsZero(t *testing.T) {
	a := buildTriangle(t, 0)
	b := buildTriangle(t, 100)
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok {
		t.Fatal("budget exhausted on tiny graphs")
	}
	if got != 0 {
		t.Errorf("GED(identical) = %v, want 0", got)
	}
}

func TestGEDSingleNodeSubstitution(t *testing.T) {
	a := New()
	a.MustAddNode(gedNode(0, 100))
	b := New()
	b.MustAddNode(gedNode(1, 200))
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok || got != 1 {
		t.Errorf("GED = %v (ok=%v), want 1 (one substitution)", got, ok)
	}
}

func TestGEDInsertion(t *testing.T) {
	a := New()
	a.MustAddNode(gedNode(0, 100))
	b := New()
	b.MustAddNode(gedNode(1, 100))
	b.MustAddNode(gedNode(2, 100))
	_ = b.AddEdge(1, 2, SpatialAttr{Dist: 10})
	// Match the identical node free, insert one node (1) and one edge (0.5).
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok || math.Abs(got-1.5) > 1e-9 {
		t.Errorf("GED = %v (ok=%v), want 1.5", got, ok)
	}
}

func TestGEDDeletion(t *testing.T) {
	a := New()
	a.MustAddNode(gedNode(0, 100))
	a.MustAddNode(gedNode(1, 100))
	_ = a.AddEdge(0, 1, SpatialAttr{Dist: 10})
	b := New()
	b.MustAddNode(gedNode(5, 100))
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok || math.Abs(got-1.5) > 1e-9 {
		t.Errorf("GED = %v (ok=%v), want 1.5 (delete node + edge)", got, ok)
	}
}

func TestGEDEmptyGraphs(t *testing.T) {
	a, b := New(), New()
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok || got != 0 {
		t.Errorf("GED(empty, empty) = %v (ok=%v), want 0", got, ok)
	}
	c := New()
	c.MustAddNode(gedNode(0, 100))
	c.MustAddNode(gedNode(1, 50))
	got, ok = GED(a, c, unitCosts(), 0)
	if !ok || got != 2 {
		t.Errorf("GED(empty, 2 nodes) = %v (ok=%v), want 2", got, ok)
	}
	got, ok = GED(c, a, unitCosts(), 0)
	if !ok || got != 2 {
		t.Errorf("GED(2 nodes, empty) = %v (ok=%v), want 2", got, ok)
	}
}

func TestGEDEdgeSubstitution(t *testing.T) {
	a := New()
	a.MustAddNode(gedNode(0, 100))
	a.MustAddNode(gedNode(1, 200))
	_ = a.AddEdge(0, 1, SpatialAttr{Dist: 10})
	b := New()
	b.MustAddNode(gedNode(5, 100))
	b.MustAddNode(gedNode(6, 200))
	_ = b.AddEdge(5, 6, SpatialAttr{Dist: 99})
	// Nodes match free; the edge attribute differs -> one edge sub.
	got, ok := GED(a, b, unitCosts(), 0)
	if !ok || got != 1 {
		t.Errorf("GED = %v (ok=%v), want 1", got, ok)
	}
}

func TestGEDSymmetricOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(base NodeID) *Graph {
		g := New()
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			g.MustAddNode(gedNode(base+NodeID(i), float64(50*(1+rng.Intn(4)))))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					_ = g.AddEdge(base+NodeID(i), base+NodeID(j), SpatialAttr{Dist: float64(10 * (1 + rng.Intn(3)))})
				}
			}
		}
		return g
	}
	for trial := 0; trial < 20; trial++ {
		a, b := mk(0), mk(100)
		d1, ok1 := GED(a, b, unitCosts(), 0)
		d2, ok2 := GED(b, a, unitCosts(), 0)
		if !ok1 || !ok2 {
			t.Fatalf("trial %d: budget exhausted", trial)
		}
		if math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("trial %d: GED not symmetric: %v vs %v", trial, d1, d2)
		}
	}
}

func TestGEDTriangleInequalityOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func(base NodeID) *Graph {
		g := New()
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			g.MustAddNode(gedNode(base+NodeID(i), float64(50*(1+rng.Intn(3)))))
		}
		if n >= 2 && rng.Float64() < 0.6 {
			_ = g.AddEdge(base, base+1, SpatialAttr{Dist: 10})
		}
		return g
	}
	for trial := 0; trial < 20; trial++ {
		a, b, c := mk(0), mk(100), mk(200)
		dab, _ := GED(a, b, unitCosts(), 0)
		dbc, _ := GED(b, c, unitCosts(), 0)
		dac, _ := GED(a, c, unitCosts(), 0)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("trial %d: triangle violation %v > %v + %v", trial, dac, dab, dbc)
		}
	}
}

func TestGEDBudgetExhaustion(t *testing.T) {
	// Two 7-node graphs with identical attributes force a wide search;
	// budget 1 must bail out with ok=false and a finite bound.
	mk := func(base NodeID) *Graph {
		g := New()
		for i := 0; i < 7; i++ {
			g.MustAddNode(gedNode(base+NodeID(i), 100))
		}
		return g
	}
	_, ok := GED(mk(0), mk(100), unitCosts(), 1)
	if ok {
		t.Error("budget 1 reported an exact result")
	}
}

func TestGEDDefaultCosts(t *testing.T) {
	a := buildTriangle(t, 0)
	b := buildTriangle(t, 100)
	got, ok := GED(a, b, EditCosts{}, 0) // zero costs fall back to defaults
	if !ok {
		t.Fatal("budget exhausted")
	}
	if got != 0 {
		t.Errorf("GED(identical, default costs) = %v, want 0", got)
	}
}
