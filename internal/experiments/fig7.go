package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/eval"
	"strgindex/internal/index"
	"strgindex/internal/mtree"
	"strgindex/internal/synth"
)

// indexName labels the three contenders of Figure 7.
const (
	nameSTRG = "STRG-Index"
	nameMTRA = "MT-RA"
	nameMTSA = "MT-SA"
)

// Fig7BuildPoint is one point of Figure 7(a). BuildEvals records the
// distance computations spent building — the hardware-independent cost
// the paper's own query model argues from.
type Fig7BuildPoint struct {
	Index      string
	Size       int
	BuildTime  time.Duration
	BuildEvals int64
}

// Fig7KNNPoint is one point of Figure 7(b): mean distance computations per
// k-NN query.
type Fig7KNNPoint struct {
	Index        string
	K            int
	DistanceEval float64
}

// Fig7PRPoint is one point of Figure 7(c): precision and recall at a
// retrieval depth.
type Fig7PRPoint struct {
	Index     string
	K         int
	Precision float64
	Recall    float64
}

// Fig7Result carries all three panels.
type Fig7Result struct {
	Build []Fig7BuildPoint
	KNN   []Fig7KNNPoint
	PR    []Fig7PRPoint
}

// fig7DB bundles one built index pair (items live outside).
type fig7DB struct {
	strg *index.Tree[int]
	ra   *mtree.Tree[int]
	sa   *mtree.Tree[int]
	// counters observe each structure's metric evaluations.
	strgC, raC, saC *dist.Counter
}

// buildFig7DB constructs all three indexes over the same items, returning
// build times through the result slice.
func buildFig7DB(items []dist.Sequence, clusters int, emIter int, seed int64, size int, res *Fig7Result) (*fig7DB, error) {
	db := &fig7DB{strgC: &dist.Counter{}, raC: &dist.Counter{}, saC: &dist.Counter{}}

	// Both the metric (leaf keys, EGED_M) and the clustering distance
	// (EM build, Algorithm 3's centroid descent, non-metric EGED) count
	// toward the STRG-Index's evaluations — anything less would
	// under-report its costs.
	strgTree := index.New[int](index.Config{
		Metric:          dist.Counted(dist.EGEDMZero, db.strgC),
		ClusterDistance: dist.Counted(dist.EGED, db.strgC),
		NumClusters:     clusters,
		EMMaxIter:       emIter,
		Seed:            seed,
		// The panels report distance-evaluation counts, the paper's
		// hardware-independent cost model; sequential search keeps the
		// counts comparable to it (parallel exact search trades extra
		// evaluations for wall-clock speed).
		Concurrency: 1,
	})
	batch := make([]index.Item[int], len(items))
	for i, seq := range items {
		batch[i] = index.Item[int]{Seq: seq, Payload: i}
	}
	db.strgC.Reset()
	buildTime := timed(func() {
		if err := strgTree.AddSegment(nil, batch); err != nil {
			panic(err) // surfaced below via recover-free design: AddSegment only fails on clustering config
		}
	})
	res.Build = append(res.Build, Fig7BuildPoint{
		Index: nameSTRG, Size: size, BuildTime: buildTime, BuildEvals: db.strgC.Count(),
	})
	db.strg = strgTree

	mk := func(policy mtree.PromotePolicy, c *dist.Counter, name string) (*mtree.Tree[int], error) {
		tr, err := mtree.New[int](mtree.Config{
			Metric:     dist.Counted(dist.EGEDMZero, c),
			MaxEntries: 16,
			Policy:     policy,
			Seed:       seed,
		})
		if err != nil {
			return nil, err
		}
		c.Reset()
		elapsed := timed(func() {
			for i, seq := range items {
				tr.Insert(seq, i)
			}
		})
		res.Build = append(res.Build, Fig7BuildPoint{
			Index: name, Size: size, BuildTime: elapsed, BuildEvals: c.Count(),
		})
		return tr, nil
	}
	var err error
	if db.ra, err = mk(mtree.PromoteRandom, db.raC, nameMTRA); err != nil {
		return nil, err
	}
	if db.sa, err = mk(mtree.PromoteSampling, db.saC, nameMTSA); err != nil {
		return nil, err
	}
	return db, nil
}

// Figure7 runs the indexing comparison: build time across database sizes
// (panel a), distance computations per k-NN query for k = 5..30 (panel b)
// and precision/recall (panel c) on the largest database.
func Figure7(scale Scale) (*Fig7Result, error) {
	res := &Fig7Result{}
	var largest *fig7DB
	var largestDS *synth.Dataset
	patterns := scale.Fig7Patterns
	if patterns <= 0 || patterns > 48 {
		patterns = 48
	}
	for _, size := range scale.Fig7Sizes {
		per := size / patterns
		if per < 1 {
			per = 1
		}
		ds, err := synth.Generate(synth.Config{
			PerPattern:  per,
			NoisePct:    0.10,
			Seed:        scale.Seed,
			NumPatterns: patterns,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 7 data (size %d): %w", size, err)
		}
		clusters := ds.NumClusters()
		if scale.Fig7Clusters > 0 && clusters > scale.Fig7Clusters {
			clusters = scale.Fig7Clusters
		}
		buildIter := scale.Fig7BuildIter
		if buildIter <= 0 {
			buildIter = 8
		}
		db, err := buildFig7DB(ds.Items, clusters, buildIter, scale.Seed, ds.Len(), res)
		if err != nil {
			return nil, err
		}
		largest, largestDS = db, ds
	}

	// Panels (b) and (c) on the largest database, fresh query objects not
	// present in the data (the paper: "query data is composed of OGs that
	// are not presented in the data sets").
	qds, err := synth.Generate(synth.Config{
		PerPattern:  1,
		NoisePct:    0.10,
		Seed:        scale.Seed + 999,
		NumPatterns: patterns,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(scale.Seed + 7))
	queries := make([]int, 0, scale.Fig7Queries)
	for len(queries) < scale.Fig7Queries {
		queries = append(queries, rng.Intn(qds.Len()))
	}

	for k := 5; k <= 30; k += 5 {
		largest.strgC.Reset()
		largest.raC.Reset()
		largest.saC.Reset()
		for _, qi := range queries {
			largest.strg.KNN(nil, qds.Items[qi], k)
		}
		strgCost := float64(largest.strgC.Count()) / float64(len(queries))
		for _, qi := range queries {
			largest.ra.KNN(qds.Items[qi], k)
		}
		raCost := float64(largest.raC.Count()) / float64(len(queries))
		for _, qi := range queries {
			largest.sa.KNN(qds.Items[qi], k)
		}
		saCost := float64(largest.saC.Count()) / float64(len(queries))
		res.KNN = append(res.KNN,
			Fig7KNNPoint{Index: nameSTRG, K: k, DistanceEval: strgCost},
			Fig7KNNPoint{Index: nameMTRA, K: k, DistanceEval: raCost},
			Fig7KNNPoint{Index: nameMTSA, K: k, DistanceEval: saCost},
		)
	}

	// Panel (c): precision/recall against pattern-label relevance.
	relevant := func(qi int) map[int]bool {
		out := make(map[int]bool)
		for i, l := range largestDS.Labels {
			if l == qds.Labels[qi] {
				out[i] = true
			}
		}
		return out
	}
	for _, k := range prDepths(largestDS) {
		var sums = map[string]eval.PR{}
		for _, qi := range queries {
			rel := relevant(qi)
			add := func(name string, ids []int) {
				pr := eval.PrecisionRecall(ids, rel)
				s := sums[name]
				s.Precision += pr.Precision
				s.Recall += pr.Recall
				sums[name] = s
			}
			add(nameSTRG, payloadsSTRG(largest.strg.KNN(nil, qds.Items[qi], k)))
			add(nameMTRA, payloadsMT(largest.ra.KNN(qds.Items[qi], k)))
			add(nameMTSA, payloadsMT(largest.sa.KNN(qds.Items[qi], k)))
		}
		for _, name := range []string{nameSTRG, nameMTRA, nameMTSA} {
			s := sums[name]
			n := float64(len(queries))
			res.PR = append(res.PR, Fig7PRPoint{
				Index:     name,
				K:         k,
				Precision: s.Precision / n,
				Recall:    s.Recall / n,
			})
		}
	}
	return res, nil
}

// prDepths picks retrieval depths spanning under- to over-retrieval of a
// pattern's cluster size, tracing the PR curve.
func prDepths(ds *synth.Dataset) []int {
	per := ds.Len() / ds.NumClusters()
	if per < 1 {
		per = 1
	}
	depths := []int{per / 2, per, 2 * per, 4 * per}
	out := depths[:0]
	for _, d := range depths {
		if d >= 1 {
			out = append(out, d)
		}
	}
	return out
}

func payloadsSTRG(rs []index.Result[int]) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Payload
	}
	return out
}

func payloadsMT(rs []mtree.Result[int]) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Payload
	}
	return out
}

// Render prints the three panels of Figure 7.
func (r *Fig7Result) Render() string {
	a := Table{
		Title:  "Figure 7(a): index building time (ms) and distance evals vs database size",
		Header: []string{"size", nameSTRG + " ms", nameMTRA + " ms", nameMTSA + " ms", nameSTRG + " evals", nameMTRA + " evals", nameMTSA + " evals"},
	}
	sizes := []int{}
	seen := map[int]bool{}
	for _, p := range r.Build {
		if !seen[p.Size] {
			seen[p.Size] = true
			sizes = append(sizes, p.Size)
		}
	}
	buildFor := func(name string, size int) (string, string) {
		for _, p := range r.Build {
			if p.Index == name && p.Size == size {
				return f2(float64(p.BuildTime.Microseconds()) / 1000), fmt.Sprintf("%d", p.BuildEvals)
			}
		}
		return "-", "-"
	}
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		var evalCells []string
		for _, name := range []string{nameSTRG, nameMTRA, nameMTSA} {
			ms, evals := buildFor(name, size)
			row = append(row, ms)
			evalCells = append(evalCells, evals)
		}
		row = append(row, evalCells...)
		a.Rows = append(a.Rows, row)
	}

	b := Table{
		Title:  "Figure 7(b): mean #distance computations per k-NN query",
		Header: []string{"k", nameSTRG, nameMTRA, nameMTSA},
	}
	knnFor := func(name string, k int) string {
		for _, p := range r.KNN {
			if p.Index == name && p.K == k {
				return f1(p.DistanceEval)
			}
		}
		return "-"
	}
	for k := 5; k <= 30; k += 5 {
		b.Rows = append(b.Rows, []string{
			fmt.Sprintf("%d", k),
			knnFor(nameSTRG, k), knnFor(nameMTRA, k), knnFor(nameMTSA, k),
		})
	}

	c := Table{
		Title:  "Figure 7(c): precision / recall of k-NN results",
		Header: []string{"k", nameSTRG + " P", nameSTRG + " R", nameMTRA + " P", nameMTRA + " R", nameMTSA + " P", nameMTSA + " R"},
	}
	depths := []int{}
	seenD := map[int]bool{}
	for _, p := range r.PR {
		if !seenD[p.K] {
			seenD[p.K] = true
			depths = append(depths, p.K)
		}
	}
	prFor := func(name string, k int) (string, string) {
		for _, p := range r.PR {
			if p.Index == name && p.K == k {
				return f2(p.Precision), f2(p.Recall)
			}
		}
		return "-", "-"
	}
	for _, k := range depths {
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range []string{nameSTRG, nameMTRA, nameMTSA} {
			p, rec := prFor(name, k)
			row = append(row, p, rec)
		}
		c.Rows = append(c.Rows, row)
	}
	return a.Render() + "\n" + b.Render() + "\n" + c.Render()
}
