package experiments

import (
	"fmt"

	"strgindex/internal/cluster"
	"strgindex/internal/eval"
)

// Fig8Curve is one stream's BIC-vs-K curve (Figure 8).
type Fig8Curve struct {
	Stream string
	Ks     []int
	BICs   []float64
	BestK  int
}

// Fig8Result carries every stream's curve.
type Fig8Result struct {
	Curves []Fig8Curve
}

// Figure8 computes the BIC value for K = 1..MaxK per stream and reports
// the maximizing K — the paper's optimal-cluster-count selection.
func Figure8(streams []*StreamData, scale Scale) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, s := range streams {
		maxK := scale.MaxK
		if maxK > len(s.Seqs) {
			maxK = len(s.Seqs)
		}
		scan, err := cluster.OptimalK(s.Seqs, 1, maxK, cluster.Config{
			MaxIter:     scale.EMMaxIter,
			Seed:        scale.Seed,
			Concurrency: scale.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 8 scan for %s: %w", s.Profile.Name, err)
		}
		res.Curves = append(res.Curves, Fig8Curve{
			Stream: s.Profile.Name,
			Ks:     scan.Ks,
			BICs:   scan.BICs,
			BestK:  scan.BestK,
		})
	}
	return res, nil
}

// Render prints the BIC curves, one column per stream.
func (r *Fig8Result) Render() string {
	if len(r.Curves) == 0 {
		return "Figure 8: no curves\n"
	}
	t := Table{
		Title:  "Figure 8: BIC value vs number of clusters (peak = chosen K)",
		Header: []string{"K"},
	}
	for _, c := range r.Curves {
		t.Header = append(t.Header, c.Stream)
	}
	maxLen := 0
	for _, c := range r.Curves {
		if len(c.Ks) > maxLen {
			maxLen = len(c.Ks)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, c := range r.Curves {
			if i < len(c.BICs) {
				cell := f1(c.BICs[i])
				if c.Ks[i] == c.BestK {
					cell += " *"
				}
				row = append(row, cell)
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t.Render()
}

// Table2Row is one stream's row of Table 2.
type Table2Row struct {
	Stream       string
	ErrorRate    float64
	OptimalK     int // ground-truth class count
	FoundK       int // BIC-selected K
	STRGBytes    int
	IndexBytes   int
	RawSTRGBytes int
}

// Table2Result carries the Table 2 rows.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 regenerates the paper's Table 2: per-stream EM-EGED clustering
// error rate, the true vs BIC-found cluster counts, and the STRG vs
// STRG-Index sizes.
func Table2(streams []*StreamData, fig8 *Fig8Result, scale Scale) (*Table2Result, error) {
	res := &Table2Result{}
	for i, s := range streams {
		foundK := fig8.Curves[i].BestK
		cr, err := cluster.EM(s.Seqs, cluster.Config{
			K:           min(foundK, len(s.Seqs)),
			MaxIter:     scale.EMMaxIter,
			Seed:        scale.Seed,
			Concurrency: scale.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: table 2 clustering for %s: %w", s.Profile.Name, err)
		}
		rate, err := eval.ErrorRate(cr.Assignments, s.ClassIDs)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table2Row{
			Stream:       s.Profile.Name,
			ErrorRate:    rate,
			OptimalK:     s.NumClasses(),
			FoundK:       foundK,
			STRGBytes:    s.Stats.STRGBytes,
			IndexBytes:   s.Stats.IndexBytes,
			RawSTRGBytes: s.Stats.RawSTRGBytes,
		})
	}
	return res, nil
}

// Render prints Table 2.
func (r *Table2Result) Render() string {
	t := Table{
		Title: "Table 2: clustering error rate, cluster counts and index sizes",
		Header: []string{
			"Video", "EM-EGED", "Optimal K", "Found K", "STRG size", "STRG-Idx size", "ratio",
		},
	}
	for _, row := range r.Rows {
		ratio := "-"
		if row.IndexBytes > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(row.STRGBytes)/float64(row.IndexBytes))
		}
		t.Rows = append(t.Rows, []string{
			row.Stream,
			pct(row.ErrorRate),
			fmt.Sprintf("%d", row.OptimalK),
			fmt.Sprintf("%d", row.FoundK),
			formatBytes(row.STRGBytes),
			formatBytes(row.IndexBytes),
			ratio,
		})
	}
	return t.Render()
}

func formatBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
