package experiments

import (
	"fmt"
	"time"

	"strgindex/internal/cluster"
	"strgindex/internal/synth"
)

// Fig6bPoint is one point of Figure 6(b): cluster building time after a
// fixed number of iterations.
type Fig6bPoint struct {
	Algo       string
	Iterations int
	BuildTime  time.Duration
}

// Fig6Result carries the EM vs KM vs KHM comparison of Figure 6. Panels
// (a) and (c) reuse the EGED column of the Figure 5 grid; panel (b) is the
// iteration sweep.
type Fig6Result struct {
	Grid  *Fig5Result
	TimeB []Fig6bPoint
}

// Figure6 runs the EM-EGED vs KM-EGED vs KHM-EGED comparison. grid may be
// a previously computed Figure5 result to avoid rerunning it; pass nil to
// compute it here.
func Figure6(scale Scale, grid *Fig5Result) (*Fig6Result, error) {
	if grid == nil {
		var err error
		grid, err = Figure5(scale)
		if err != nil {
			return nil, err
		}
	}
	res := &Fig6Result{Grid: grid}
	// Panel (b): building time vs iteration budget on a fixed mid-noise
	// dataset (the paper plots 2..16 iterations).
	ds, err := synth.Generate(synth.Config{
		PerPattern: scale.Fig5PerPattern,
		NoisePct:   0.15,
		Seed:       scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 6(b) data: %w", err)
	}
	k := ds.NumClusters()
	for _, iters := range []int{2, 4, 8, 12, 16} {
		for _, algo := range clusterAlgos() {
			cfg := cluster.Config{
				K:           k,
				MaxIter:     iters,
				ForceIter:   true, // measure exactly `iters` rounds
				Seed:        scale.Seed,
				Concurrency: scale.Workers,
			}
			var runErr error
			elapsed := timed(func() { _, runErr = algo.run(ds.Items, cfg) })
			if runErr != nil {
				return nil, fmt.Errorf("experiments: figure 6(b) %s: %w", algo.name, runErr)
			}
			res.TimeB = append(res.TimeB, Fig6bPoint{Algo: algo.name, Iterations: iters, BuildTime: elapsed})
		}
	}
	return res, nil
}

// timeFor returns panel (b)'s build time for (algo, iterations).
func (r *Fig6Result) timeFor(algo string, iters int) (time.Duration, bool) {
	for _, p := range r.TimeB {
		if p.Algo == algo && p.Iterations == iters {
			return p.BuildTime, true
		}
	}
	return 0, false
}

// Render prints the three panels of Figure 6.
func (r *Fig6Result) Render() string {
	a := Table{
		Title:  "Figure 6(a): clustering error rate (%) — EM vs KM vs KHM, all with EGED",
		Header: []string{"noise", "EM-EGED", "KM-EGED", "KHM-EGED"},
	}
	c := Table{
		Title:  "Figure 6(c): distortion (px) — EM vs KM vs KHM, all with EGED",
		Header: []string{"noise", "EM-EGED", "KM-EGED", "KHM-EGED"},
	}
	for _, noise := range r.Grid.Noises {
		rowA := []string{pct(noise * 100)}
		rowC := []string{pct(noise * 100)}
		for _, algo := range []string{"EM", "KM", "KHM"} {
			if cell, ok := r.Grid.Cell(algo, "EGED", noise); ok {
				rowA = append(rowA, f1(cell.ErrorRate))
				rowC = append(rowC, f1(cell.Distortion))
			} else {
				rowA = append(rowA, "-")
				rowC = append(rowC, "-")
			}
		}
		a.Rows = append(a.Rows, rowA)
		c.Rows = append(c.Rows, rowC)
	}
	b := Table{
		Title:  "Figure 6(b): cluster building time (ms) vs iterations",
		Header: []string{"iterations", "EM-EGED", "KM-EGED", "KHM-EGED"},
	}
	for _, iters := range []int{2, 4, 8, 12, 16} {
		row := []string{fmt.Sprintf("%d", iters)}
		for _, algo := range []string{"EM", "KM", "KHM"} {
			if d, ok := r.timeFor(algo, iters); ok {
				row = append(row, f2(float64(d.Microseconds())/1000))
			} else {
				row = append(row, "-")
			}
		}
		b.Rows = append(b.Rows, row)
	}
	return a.Render() + "\n" + b.Render() + "\n" + c.Render()
}
