package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// testScale is even smaller than QuickScale: experiment tests must stay
// fast while still exercising every code path.
func testScale() Scale {
	return Scale{
		StreamDivisor:  40,
		Fig5PerPattern: 3,
		Fig5Noises:     []float64{0.05, 0.30},
		Fig7Sizes:      []int{120, 240},
		Fig7Queries:    6,
		Fig7Clusters:   48,
		Fig7Patterns:   12,
		MaxK:           6,
		EMMaxIter:      12,
		Seed:           1,
	}
}

func TestFigure5GridComplete(t *testing.T) {
	res, err := Figure5(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 algos x 3 distances x 2 noise levels.
	if len(res.Cells) != 18 {
		t.Fatalf("cells = %d, want 18", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.ErrorRate < 0 || c.ErrorRate > 100 {
			t.Errorf("%s-%s@%v: error rate %v outside [0, 100]", c.Algo, c.Distance, c.Noise, c.ErrorRate)
		}
		if c.BuildTime <= 0 {
			t.Errorf("%s-%s@%v: no build time", c.Algo, c.Distance, c.Noise)
		}
	}
	out := res.RenderPanels()
	for _, want := range []string{"EM-EGED", "KM-LCS", "KHM-DTW", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure5EGEDBeatsBaselinesUnderNoise(t *testing.T) {
	// The paper's headline Figure 5 shape: at high noise, EM-EGED has a
	// lower error rate than EM-DTW.
	res, err := Figure5(testScale())
	if err != nil {
		t.Fatal(err)
	}
	eged, _ := res.Cell("EM", "EGED", 0.30)
	dtw, _ := res.Cell("EM", "DTW", 0.30)
	if eged.ErrorRate > dtw.ErrorRate {
		t.Errorf("EM-EGED error %.1f%% exceeds EM-DTW %.1f%% at 30%% noise", eged.ErrorRate, dtw.ErrorRate)
	}
}

func TestFigure6Panels(t *testing.T) {
	scale := testScale()
	grid, err := Figure5(scale)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Figure6(scale, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TimeB) != 15 { // 5 iteration points x 3 algos
		t.Fatalf("TimeB points = %d, want 15", len(res.TimeB))
	}
	out := res.Render()
	for _, want := range []string{"Figure 6(a)", "Figure 6(b)", "Figure 6(c)", "iterations"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	// Build time grows with the iteration budget for EM.
	t2, _ := res.timeFor("EM", 2)
	t16, _ := res.timeFor("EM", 16)
	if t16 <= t2 {
		t.Errorf("EM time did not grow with iterations: %v at 2 vs %v at 16", t2, t16)
	}
}

func TestFigure7Shapes(t *testing.T) {
	res, err := Figure7(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Build) != 6 { // 2 sizes x 3 indexes
		t.Fatalf("build points = %d, want 6", len(res.Build))
	}
	if len(res.KNN) != 18 { // 6 k values x 3 indexes
		t.Fatalf("knn points = %d, want 18", len(res.KNN))
	}
	if len(res.PR) == 0 {
		t.Fatal("no PR points")
	}
	// Headline shape: STRG-Index performs fewer distance computations per
	// query than both M-tree variants at every k.
	for k := 5; k <= 30; k += 5 {
		var strgCost, raCost float64
		for _, p := range res.KNN {
			if p.K != k {
				continue
			}
			switch p.Index {
			case nameSTRG:
				strgCost = p.DistanceEval
			case nameMTRA:
				raCost = p.DistanceEval
			}
		}
		if strgCost >= raCost {
			t.Errorf("k=%d: STRG-Index %v distance evals >= MT-RA %v", k, strgCost, raCost)
		}
	}
	// Precision shape: STRG-Index precision at the cluster-size depth is
	// at least that of MT-RA.
	out := res.Render()
	for _, want := range []string{"Figure 7(a)", "Figure 7(b)", "Figure 7(c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestStreamExperiments(t *testing.T) {
	scale := testScale()
	streams, err := IngestStreams(scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 4 {
		t.Fatalf("streams = %d, want 4", len(streams))
	}
	for _, s := range streams {
		if s.Stats.OGs == 0 {
			t.Fatalf("%s: no OGs extracted", s.Profile.Name)
		}
		if len(s.Seqs) != s.Stats.OGs {
			t.Errorf("%s: %d seqs vs %d OGs", s.Profile.Name, len(s.Seqs), s.Stats.OGs)
		}
		if s.NumClasses() < 2 {
			t.Errorf("%s: only %d classes", s.Profile.Name, s.NumClasses())
		}
		// Size shape: index far smaller than per-frame STRG.
		if s.Stats.IndexBytes*3 > s.Stats.STRGBytes {
			t.Errorf("%s: index %d not well below STRG %d", s.Profile.Name, s.Stats.IndexBytes, s.Stats.STRGBytes)
		}
	}

	t1 := Table1(streams)
	out := t1.Render()
	for _, want := range []string{"Lab1", "Traffic2", "411", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}

	fig8, err := Figure8(streams, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(fig8.Curves))
	}
	for _, c := range fig8.Curves {
		if c.BestK < 1 || c.BestK > scale.MaxK {
			t.Errorf("%s: BestK = %d outside [1, %d]", c.Stream, c.BestK, scale.MaxK)
		}
	}
	if !strings.Contains(fig8.Render(), "Figure 8") {
		t.Error("Figure 8 render broken")
	}

	t2, err := Table2(streams, fig8, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4 {
		t.Fatalf("table 2 rows = %d, want 4", len(t2.Rows))
	}
	for _, row := range t2.Rows {
		if row.ErrorRate < 0 || row.ErrorRate > 100 {
			t.Errorf("%s: error rate %v", row.Stream, row.ErrorRate)
		}
		if row.STRGBytes <= row.IndexBytes {
			t.Errorf("%s: STRG %d not larger than index %d", row.Stream, row.STRGBytes, row.IndexBytes)
		}
	}
	if !strings.Contains(t2.Render(), "Table 2") {
		t.Error("Table 2 render broken")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxx", "1"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header and separator width differ: %q vs %q", lines[1], lines[2])
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{QuickScale(), FullScale()} {
		if s.Fig5PerPattern <= 0 || len(s.Fig7Sizes) == 0 || s.MaxK < 2 {
			t.Errorf("degenerate scale: %+v", s)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		in   int
		want string
	}{
		{100, "100B"},
		{2048, "2.0KB"},
		{3 << 20, "3.0MB"},
	}
	for _, tt := range tests {
		if got := formatBytes(tt.in); got != tt.want {
			t.Errorf("formatBytes(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(testScale())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{
		"gap model", "midpoint (paper", "Algorithm 3", "exact",
		"split on", "split off", "STRG-Index", "3DR-tree",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation render missing %q", want)
		}
	}
	if len(res.GapModels.Rows) != 3 {
		t.Errorf("gap model rows = %d, want 3", len(res.GapModels.Rows))
	}
	// The non-metric midpoint gap should not lose to the metric constant
	// gap on noisy data (the reason the paper uses it for clustering).
	parse := func(s string) float64 {
		var v float64
		if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
			t.Fatalf("bad rate %q", s)
		}
		return v
	}
	midpoint := parse(res.GapModels.Rows[0][1])
	constant := parse(res.GapModels.Rows[2][1])
	if midpoint > constant+10 {
		t.Errorf("midpoint gap error %.1f%% much worse than constant %.1f%%", midpoint, constant)
	}
	// Algorithm 3 must be dramatically cheaper than exact search.
	a3 := res.SearchPolicy.Rows[0][1]
	ex := res.SearchPolicy.Rows[1][1]
	var a3v, exv float64
	fmt.Sscanf(a3, "%f", &a3v)
	fmt.Sscanf(ex, "%f", &exv)
	if a3v >= exv {
		t.Errorf("Algorithm 3 evals %v not below exact %v", a3v, exv)
	}
}
