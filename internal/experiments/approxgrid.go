package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"strgindex/internal/core"
	"strgindex/internal/eval"
	"strgindex/internal/strg"
	"strgindex/internal/synth"
)

// ApproxGridSpec parameterizes one run of the approximate-tier experiment
// grid: a synthetic corpus of the given size is bulk-loaded with the IVF
// tier enabled, ground truth is established with the exact all-cluster
// search, and every probe width in NProbes is swept against it. Specs are
// plain JSON files (see internal/experiments/grids/) so the million-OG
// configuration that produced BENCH_approx.json is committed next to the
// smoke-sized one CI replays.
type ApproxGridSpec struct {
	// Name tags the run in the rendered table.
	Name string `json:"name"`
	// OGs is the corpus size (synthetic trajectories over the 48 paper
	// patterns, converted to Object Graphs).
	OGs int `json:"ogs"`
	// Queries is the number of held-out query trajectories averaged per
	// measurement; they are drawn from the same generator under a
	// different seed, so every query has true neighbors in the corpus.
	Queries int `json:"queries"`
	// K is the k of both the exact ground truth and recall@k.
	K int `json:"k"`
	// NLists is the IVF coarse-quantizer size.
	NLists int `json:"nlists"`
	// NProbes are the probe widths swept (each a separate grid row).
	NProbes []int `json:"nprobes"`
	// TrainSize overrides the tier's training buffer (0 = its default).
	TrainSize int `json:"train_size,omitempty"`
	// NoisePct is the synthetic noise level (0 = generator default).
	NoisePct float64 `json:"noise_pct,omitempty"`
	// Batch is the bulk-load commit granularity (0 = 50000).
	Batch int `json:"batch,omitempty"`
	// Seed drives corpus generation; Seed+1 drives the queries.
	Seed int64 `json:"seed"`
}

func (s ApproxGridSpec) validate() error {
	switch {
	case s.OGs <= 0:
		return fmt.Errorf("approx grid: ogs must be positive")
	case s.Queries <= 0:
		return fmt.Errorf("approx grid: queries must be positive")
	case s.K <= 0:
		return fmt.Errorf("approx grid: k must be positive")
	case s.NLists <= 0:
		return fmt.Errorf("approx grid: nlists must be positive")
	case len(s.NProbes) == 0:
		return fmt.Errorf("approx grid: nprobes must name at least one probe width")
	}
	for _, np := range s.NProbes {
		if np <= 0 {
			return fmt.Errorf("approx grid: nprobe %d must be positive", np)
		}
	}
	return nil
}

// LoadApproxGridSpec reads a JSON grid spec from disk.
func LoadApproxGridSpec(path string) (ApproxGridSpec, error) {
	var spec ApproxGridSpec
	raw, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(raw, &spec); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	if err := spec.validate(); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// ApproxGridRow is one probe width's measurement.
type ApproxGridRow struct {
	NProbe int
	// Probed is the per-query mean of lists actually visited (== NProbe
	// clamped to the trained list count).
	Probed float64
	// Candidates is the per-query mean rerank set size.
	Candidates float64
	// NsPerQuery is the mean wall time per query.
	NsPerQuery float64
	// Recall is the mean recall@K against the exact ground truth.
	Recall float64
	// Speedup is exact ns/query over this row's ns/query.
	Speedup float64
}

// ApproxGridResult is one executed grid.
type ApproxGridResult struct {
	Spec ApproxGridSpec
	// GenTime and LoadTime split corpus preparation from bulk ingest
	// (which includes embedding and IVF training).
	GenTime  time.Duration
	LoadTime time.Duration
	// ExactNsPerQuery is the ground-truth baseline: the mean per-query
	// wall time of the exact all-cluster search over the same corpus.
	ExactNsPerQuery float64
	Rows            []ApproxGridRow
}

// ApproxGrid runs one grid spec end to end. Progress lines go to progress
// when non-nil (the million-OG run takes minutes; silence reads as a hang).
func ApproxGrid(spec ApproxGridSpec, progress func(format string, args ...any)) (*ApproxGridResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	say := func(format string, args ...any) {
		if progress != nil {
			progress(format, args...)
		}
	}
	res := &ApproxGridResult{Spec: spec}

	// Corpus: the 48 synthetic patterns at whatever per-pattern count
	// covers the requested size, truncated exactly.
	perPattern := (spec.OGs + 47) / 48
	start := time.Now()
	corpus, err := synth.Generate(synth.Config{
		PerPattern: perPattern,
		NoisePct:   spec.NoisePct,
		Seed:       spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	items := corpus.Items
	labels := corpus.Labels
	// The generator emits pattern-major order; a corpus sorted by class
	// would bias the tier's training buffer (the first TrainSize arrivals)
	// toward a handful of patterns and skew the inverted lists. Shuffle
	// deterministically so arrivals look like real interleaved traffic.
	rng := rand.New(rand.NewSource(spec.Seed + 2))
	rng.Shuffle(len(items), func(i, j int) {
		items[i], items[j] = items[j], items[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
	if len(items) > spec.OGs {
		items = items[:spec.OGs]
	}
	res.GenTime = time.Since(start)
	say("generated %d trajectories in %v", len(items), res.GenTime.Round(time.Millisecond))

	// Queries: a fresh draw under Seed+1 — same distribution, held out.
	qset, err := synth.Generate(synth.Config{
		PerPattern: (spec.Queries + 47) / 48,
		NoisePct:   spec.NoisePct,
		Seed:       spec.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	queries := qset.Items
	if len(queries) > spec.Queries {
		queries = queries[:spec.Queries]
	}

	// One flat leaf, no splits, no trajectory R-tree: the grid measures
	// the similarity tiers, not cluster navigation, and bulk load at this
	// scale needs the deferred-split append path.
	cfg := core.DefaultConfig()
	cfg.DisableTrajIndex = true
	cfg.Index.Shards = 1
	cfg.Index.AsyncSplit = true
	cfg.Index.MaxLeafEntries = spec.OGs + 1
	cfg.Approx = core.ApproxConfig{
		Enabled:   true,
		NLists:    spec.NLists,
		TrainSize: spec.TrainSize,
		Seed:      spec.Seed,
	}
	db := core.Open(cfg)

	batch := spec.Batch
	if batch <= 0 {
		batch = 50000
	}
	start = time.Now()
	for lo := 0; lo < len(items); {
		hi := lo + batch
		if lo == 0 && batch > 512 {
			// The first segment seeds the tree's cluster structure (a BIC
			// scan over its items); keep it small so the scan stays cheap
			// and let every later batch ride the deferred-split append
			// path.
			hi = 512
		}
		if hi > len(items) {
			hi = len(items)
		}
		ogs := make([]*strg.OG, hi-lo)
		for i := range ogs {
			ogs[i] = synth.AsOG(lo+i, items[lo+i], corpus.Patterns[labels[lo+i]].Name)
		}
		if err := db.IngestTrajectories("grid", ogs); err != nil {
			return nil, err
		}
		say("loaded %d/%d (%v)", hi, len(items), time.Since(start).Round(time.Millisecond))
		lo = hi
	}
	res.LoadTime = time.Since(start)

	// Ground truth: the exact cascade over every OG, timed as the
	// baseline the speedup column divides against.
	ctx := context.Background()
	truth := make([][]int, len(queries))
	start = time.Now()
	for qi, q := range queries {
		ms, _, err := db.QueryTrajectoryExactStatsCtx(ctx, q, spec.K)
		if err != nil {
			return nil, err
		}
		truth[qi] = matchIDs(ms)
	}
	exactTotal := time.Since(start)
	res.ExactNsPerQuery = float64(exactTotal.Nanoseconds()) / float64(len(queries))
	say("exact ground truth: %d queries in %v (%.2f ms/query)",
		len(queries), exactTotal.Round(time.Millisecond), res.ExactNsPerQuery/1e6)

	for _, nprobe := range spec.NProbes {
		var row ApproxGridRow
		row.NProbe = nprobe
		var recallSum, probedSum, candSum, dpSum float64
		var lbqSum, lbeSum, abSum float64
		start = time.Now()
		for qi, q := range queries {
			ms, st, info, err := db.QueryTrajectoryApproxStatsCtx(ctx, q, spec.K, nprobe)
			if err != nil {
				return nil, err
			}
			recallSum += eval.RecallAtK(matchIDs(ms), truth[qi], spec.K)
			probedSum += float64(info.Probed)
			candSum += float64(info.Candidates)
			dpSum += float64(st.DPEvaluated)
			lbqSum += float64(st.LBQuickPruned)
			lbeSum += float64(st.LBEnvelopePruned)
			abSum += float64(st.DPAbandoned)
		}
		total := time.Since(start)
		n := float64(len(queries))
		row.NsPerQuery = float64(total.Nanoseconds()) / n
		row.Recall = recallSum / n
		row.Probed = probedSum / n
		row.Candidates = candSum / n
		row.Speedup = res.ExactNsPerQuery / row.NsPerQuery
		res.Rows = append(res.Rows, row)
		say("nprobe %d: recall@%d %.3f, %.2f ms/query (%.1fx exact, lbq %.0f lbe %.0f ab %.0f dp %.0f)",
			nprobe, spec.K, row.Recall, row.NsPerQuery/1e6, row.Speedup, lbqSum/n, lbeSum/n, abSum/n, dpSum/n)
	}
	return res, nil
}

func matchIDs(ms []core.Match) []int {
	ids := make([]int, len(ms))
	for i, m := range ms {
		ids[i] = m.Record.OGID
	}
	return ids
}

// Render prints the grid as an aligned table.
func (r *ApproxGridResult) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Approximate tier grid %q: %d OGs, %d lists, %d queries, k=%d (gen %v, load %v)",
			r.Spec.Name, r.Spec.OGs, r.Spec.NLists, r.Spec.Queries, r.Spec.K,
			r.GenTime.Round(time.Millisecond), r.LoadTime.Round(time.Millisecond)),
		Header: []string{"nprobe", "probed", "candidates", "ms/query", fmt.Sprintf("recall@%d", r.Spec.K), "speedup"},
	}
	t.Rows = append(t.Rows, []string{
		"exact", "-", fmt.Sprintf("%d", r.Spec.OGs),
		fmt.Sprintf("%.2f", r.ExactNsPerQuery/1e6), "1.000", "1.0x",
	})
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.NProbe),
			fmt.Sprintf("%.0f", row.Probed),
			fmt.Sprintf("%.0f", row.Candidates),
			fmt.Sprintf("%.2f", row.NsPerQuery/1e6),
			fmt.Sprintf("%.3f", row.Recall),
			fmt.Sprintf("%.1fx", row.Speedup),
		})
	}
	return t.Render()
}

// BenchPoint mirrors cmd/benchjson's Point schema so grid results land in
// the same BENCH_*.json shape the perf floors read. Custom columns ride
// in Extra exactly like testing.B.ReportMetric units would.
type BenchPoint struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// BenchPoints flattens the grid into benchjson points: one exact baseline
// plus one point per probe width, each carrying recall@k and the mean
// rerank set size as custom metrics.
func (r *ApproxGridResult) BenchPoints() []BenchPoint {
	recallKey := fmt.Sprintf("recall@%d/op", r.Spec.K)
	pts := []BenchPoint{{
		Name:       "BenchmarkApproxGrid/mode=exact",
		Iterations: int64(r.Spec.Queries),
		NsPerOp:    r.ExactNsPerQuery,
		Extra:      map[string]float64{recallKey: 1, "ogs/op": float64(r.Spec.OGs)},
	}}
	for _, row := range r.Rows {
		pts = append(pts, BenchPoint{
			Name:       fmt.Sprintf("BenchmarkApproxGrid/mode=approx/nprobe=%d", row.NProbe),
			Iterations: int64(r.Spec.Queries),
			NsPerOp:    row.NsPerQuery,
			Extra: map[string]float64{
				recallKey:  row.Recall,
				"cand/op":  row.Candidates,
				"lists/op": row.Probed,
			},
		})
	}
	return pts
}

// WriteBenchJSON writes the grid's points as a BENCH_*.json file.
func (r *ApproxGridResult) WriteBenchJSON(path string) error {
	raw, err := json.MarshalIndent(r.BenchPoints(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
