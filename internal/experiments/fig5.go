package experiments

import (
	"fmt"
	"time"

	"strgindex/internal/cluster"
	"strgindex/internal/eval"
	"strgindex/internal/synth"
)

// Fig5Cell is one grid point of the clustering comparison: algorithm ×
// distance × noise level.
type Fig5Cell struct {
	Algo      string
	Distance  string
	Noise     float64
	ErrorRate float64
	// BuildTime and Iterations feed Figure 6(b).
	BuildTime  time.Duration
	Iterations int
	// Distortion feeds Figure 6(c).
	Distortion float64
}

// Fig5Result carries the whole grid; Figures 5 and 6(a,c) are slices of
// it.
type Fig5Result struct {
	Noises []float64
	Cells  []Fig5Cell
}

// Cell returns the grid point for (algo, distance, noise).
func (r *Fig5Result) Cell(algo, distance string, noise float64) (Fig5Cell, bool) {
	for _, c := range r.Cells {
		if c.Algo == algo && c.Distance == distance && c.Noise == noise {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// Figure5 runs the clustering error-rate grid of Figure 5: {EM, KM, KHM} ×
// {EGED, LCS, DTW} over the synthetic 48-pattern data at each noise level.
// K is fixed to the true pattern count, as in the paper's synthetic setup.
func Figure5(scale Scale) (*Fig5Result, error) {
	res := &Fig5Result{Noises: scale.Fig5Noises}
	for _, noise := range scale.Fig5Noises {
		ds, err := synth.Generate(synth.Config{
			PerPattern: scale.Fig5PerPattern,
			NoisePct:   noise,
			Seed:       scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 5 data at noise %v: %w", noise, err)
		}
		k := ds.NumClusters()
		truth := ds.TrueCentroids(12)
		for _, algo := range clusterAlgos() {
			for _, dc := range distanceChoices() {
				cfg := cluster.Config{
					K:           k,
					MaxIter:     scale.EMMaxIter,
					Seed:        scale.Seed,
					Distance:    dc.metric,
					Concurrency: scale.Workers,
				}
				var cr *cluster.Result
				var runErr error
				elapsed := timed(func() { cr, runErr = algo.run(ds.Items, cfg) })
				if runErr != nil {
					return nil, fmt.Errorf("experiments: %s-%s at noise %v: %w", algo.name, dc.name, noise, runErr)
				}
				rate, err := eval.ErrorRate(cr.Assignments, ds.Labels)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Fig5Cell{
					Algo:       algo.name,
					Distance:   dc.name,
					Noise:      noise,
					ErrorRate:  rate,
					BuildTime:  elapsed,
					Iterations: cr.Iterations,
					Distortion: eval.Distortion(cr.Centroids, truth),
				})
			}
		}
	}
	return res, nil
}

// RenderPanels prints the three panels of Figure 5 (one per algorithm,
// distances as columns, noise levels as rows).
func (r *Fig5Result) RenderPanels() string {
	var out string
	for _, algo := range []string{"EM", "KM", "KHM"} {
		t := Table{
			Title:  fmt.Sprintf("Figure 5: clustering error rate (%%) — %s with EGED vs LCS vs DTW", algo),
			Header: []string{"noise", algo + "-EGED", algo + "-LCS", algo + "-DTW"},
		}
		for _, noise := range r.Noises {
			row := []string{pct(noise * 100)}
			for _, d := range []string{"EGED", "LCS", "DTW"} {
				if c, ok := r.Cell(algo, d, noise); ok {
					row = append(row, f1(c.ErrorRate))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
		out += t.Render() + "\n"
	}
	return out
}
