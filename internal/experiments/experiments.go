// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner returns a structured result with a
// Render method that prints the same rows/series the paper reports; the
// strg-bench binary and the repository's benchmark suite drive them.
//
// Hardware-bound absolute numbers (the paper ran a Pentium 4 at 2.6 GHz)
// are not expected to match; the shapes — which method wins, by what
// factor, where curves cross — are.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
)

// Scale sizes the experiments. The paper's full magnitudes take minutes;
// the quick scale keeps every experiment's shape while staying test-sized.
type Scale struct {
	// StreamDivisor divides the Table 1 per-stream object counts.
	StreamDivisor int
	// Fig5PerPattern is the number of items per synthetic pattern for the
	// clustering experiments (Figures 5 and 6).
	Fig5PerPattern int
	// Fig5Noises are the noise levels swept (fractions, e.g. 0.05).
	Fig5Noises []float64
	// Fig7Sizes are the database sizes for the indexing experiments.
	Fig7Sizes []int
	// Fig7Queries is the number of k-NN queries averaged per measurement.
	Fig7Queries int
	// Fig7Clusters caps K for index construction in Figure 7; the actual
	// K is the dataset's true pattern count (48 at full scale).
	Fig7Clusters int
	// Fig7Patterns restricts the Figure 7 data to the first N synthetic
	// patterns, keeping items-per-cluster sane at reduced scales. Zero
	// means all 48.
	Fig7Patterns int
	// Fig7BuildIter bounds the EM iterations during index construction
	// (Figure 7(a) measures build time; the warm-started EM converges in
	// a handful of iterations). Zero means 8.
	Fig7BuildIter int
	// MaxK bounds the BIC scans of Figure 8 / Table 2.
	MaxK int
	// EMMaxIter bounds clustering iterations.
	EMMaxIter int
	// Seed drives all randomness.
	Seed int64
	// Workers is the worker budget for the parallel distance engine during
	// clustering and ingest (0 = one per CPU, 1 = sequential). Experiment
	// outputs are identical at every setting; only wall-clock timings
	// change. Paths that report distance-evaluation counts pin their own
	// concurrency to 1 so the paper's sequential cost model is reproduced
	// regardless of this knob.
	Workers int
}

// QuickScale is small enough for tests and CI while preserving every
// experimental shape.
func QuickScale() Scale {
	return Scale{
		StreamDivisor:  8,
		Fig5PerPattern: 4,
		Fig5Noises:     []float64{0.05, 0.15, 0.30},
		Fig7Sizes:      []int{240, 480, 960},
		Fig7Queries:    12,
		Fig7Clusters:   48,
		Fig7BuildIter:  8,
		MaxK:           8,
		EMMaxIter:      25,
		Seed:           1,
	}
}

// FullScale approaches the paper's magnitudes (minutes of runtime).
func FullScale() Scale {
	return Scale{
		StreamDivisor:  1,
		Fig5PerPattern: 10,
		Fig5Noises:     []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Fig7Sizes:      []int{1000, 2000, 4000, 6000, 8000, 10000},
		Fig7Queries:    50,
		Fig7Clusters:   48,
		Fig7BuildIter:  8,
		MaxK:           15,
		EMMaxIter:      50,
		Seed:           1,
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// clusterAlgo names one clustering algorithm of the Figure 5 grid.
type clusterAlgo struct {
	name string
	run  func(items []dist.Sequence, cfg cluster.Config) (*cluster.Result, error)
}

func clusterAlgos() []clusterAlgo {
	return []clusterAlgo{
		{"EM", cluster.EM},
		{"KM", cluster.KMeans},
		{"KHM", cluster.KHarmonicMeans},
	}
}

// distanceChoice names one distance of the Figure 5 grid. LCS matching
// epsilon: twice the synthetic cluster spread, the scale at which two
// samples of the same pattern count as "common".
type distanceChoice struct {
	name   string
	metric dist.Metric
}

func distanceChoices() []distanceChoice {
	return []distanceChoice{
		{"EGED", dist.EGED},
		{"LCS", dist.LCSMetric(12)},
		{"DTW", dist.DTW},
	}
}

// timed runs f and returns its duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
