package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestApproxGridSpecValidate(t *testing.T) {
	good := ApproxGridSpec{Name: "t", OGs: 100, Queries: 4, K: 5, NLists: 4, NProbes: []int{1, 2}}
	if err := good.validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, mutate := range map[string]func(*ApproxGridSpec){
		"zero ogs":     func(s *ApproxGridSpec) { s.OGs = 0 },
		"zero queries": func(s *ApproxGridSpec) { s.Queries = 0 },
		"zero k":       func(s *ApproxGridSpec) { s.K = 0 },
		"zero nlists":  func(s *ApproxGridSpec) { s.NLists = 0 },
		"no nprobes":   func(s *ApproxGridSpec) { s.NProbes = nil },
		"nprobe zero":  func(s *ApproxGridSpec) { s.NProbes = []int{1, 0} },
	} {
		s := good
		s.NProbes = append([]int(nil), good.NProbes...)
		mutate(&s)
		if err := s.validate(); err == nil {
			t.Errorf("%s: validate() = nil, want error", name)
		}
	}
}

func TestLoadApproxGridSpecCommittedFiles(t *testing.T) {
	// The committed specs must stay loadable — CI replays the smoke one
	// and BENCH_approx.json documents its provenance via the million one.
	for _, path := range []string{"grids/approx-smoke.json", "grids/approx-1m.json"} {
		if _, err := LoadApproxGridSpec(path); err != nil {
			t.Errorf("LoadApproxGridSpec(%s): %v", path, err)
		}
	}
}

func TestApproxGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("grid ingest is seconds of work")
	}
	spec := ApproxGridSpec{
		Name: "test", OGs: 1200, Queries: 8, K: 5,
		NLists: 4, NProbes: []int{1, 2, 4}, TrainSize: 256,
		Batch: 400, Seed: 7,
	}
	res, err := ApproxGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(spec.NProbes) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(spec.NProbes))
	}
	if res.ExactNsPerQuery <= 0 {
		t.Error("exact baseline has non-positive ns/query")
	}
	prev := -1.0
	for _, row := range res.Rows {
		if row.Recall < prev-1e-9 {
			t.Errorf("recall not monotone in nprobe: %.3f after %.3f", row.Recall, prev)
		}
		prev = row.Recall
		if row.Candidates <= 0 || row.Candidates > float64(spec.OGs) {
			t.Errorf("nprobe %d: candidates %.0f out of range", row.NProbe, row.Candidates)
		}
	}
	// Probing every list makes the tier provably exact.
	last := res.Rows[len(res.Rows)-1]
	if last.NProbe != spec.NLists {
		t.Fatalf("last row probes %d lists, want %d", last.NProbe, spec.NLists)
	}
	if last.Recall != 1.0 {
		t.Errorf("recall at nprobe == nlists = %.3f, want exactly 1", last.Recall)
	}

	if !strings.Contains(res.Render(), "recall@5") {
		t.Error("Render() lacks the recall column header")
	}

	pts := res.BenchPoints()
	if len(pts) != 1+len(spec.NProbes) {
		t.Fatalf("got %d bench points, want %d", len(pts), 1+len(spec.NProbes))
	}
	if pts[0].Name != "BenchmarkApproxGrid/mode=exact" {
		t.Errorf("first point = %q, want the exact baseline", pts[0].Name)
	}
	raw, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchPoint
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back[1].Extra["recall@5/op"] != res.Rows[0].Recall {
		t.Error("recall metric did not round-trip through JSON")
	}
}
