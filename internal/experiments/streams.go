package experiments

import (
	"fmt"
	"sort"

	"strgindex/internal/core"
	"strgindex/internal/dist"
	"strgindex/internal/video"
)

// StreamData is one ingested real-data stream: the database it was
// ingested into plus the per-OG ground truth needed for evaluation.
type StreamData struct {
	Profile video.StreamProfile
	DB      *core.VideoDB
	Stats   core.Stats
	// Seqs and ClassIDs are parallel: the indexed OG sequences and their
	// ground-truth motion class indices into ClassNames.
	Seqs       []dist.Sequence
	ClassIDs   []int
	ClassNames []string
}

// NumClasses returns the number of distinct motion classes observed.
func (s *StreamData) NumClasses() int { return len(s.ClassNames) }

// IngestStreams generates the four Table 1 streams (object counts divided
// by scale.StreamDivisor) and runs each through the full pipeline into its
// own VideoDB.
func IngestStreams(scale Scale) ([]*StreamData, error) {
	var out []*StreamData
	for i, p := range video.StreamProfiles() {
		if scale.StreamDivisor > 1 {
			p.NumObjects = p.NumObjects / scale.StreamDivisor
			if p.NumObjects < 4 {
				p.NumObjects = 4
			}
		}
		stream, err := video.GenerateStream(p, scale.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", p.Name, err)
		}
		cfg := core.DefaultConfig()
		cfg.Index.EMMaxIter = scale.EMMaxIter
		cfg.Index.MaxClusters = scale.MaxK
		cfg.Index.Seed = scale.Seed
		cfg.Concurrency = scale.Workers
		db := core.Open(cfg)
		if err := db.IngestStream(stream); err != nil {
			return nil, fmt.Errorf("experiments: ingesting %s: %w", p.Name, err)
		}
		sd := &StreamData{Profile: p, DB: db, Stats: db.Stats()}
		classIdx := map[string]int{}
		for _, it := range db.Index().Items() {
			class, ok := stream.Classes[it.Payload.Label]
			if !ok {
				// An OG whose label did not match any generated object
				// (background leak or merge artifact) gets its own class.
				class = "unknown"
			}
			id, ok := classIdx[class]
			if !ok {
				id = len(classIdx)
				classIdx[class] = id
			}
			sd.Seqs = append(sd.Seqs, it.Seq)
			sd.ClassIDs = append(sd.ClassIDs, id)
		}
		sd.ClassNames = make([]string, len(classIdx))
		names := make([]string, 0, len(classIdx))
		for name := range classIdx {
			names = append(names, name)
		}
		sort.Strings(names)
		// Re-map class IDs to the sorted order for determinism.
		remap := map[int]int{}
		for newID, name := range names {
			remap[classIdx[name]] = newID
			sd.ClassNames[newID] = name
		}
		for j, id := range sd.ClassIDs {
			sd.ClassIDs[j] = remap[id]
		}
		out = append(out, sd)
	}
	return out, nil
}

// Table1 regenerates the paper's Table 1: the description of the four
// streams. The duration column reports the paper's wall-clock values (the
// synthetic streams are time-scaled); the OG column reports what the
// pipeline actually extracted.
func Table1(streams []*StreamData) *Table {
	t := &Table{
		Title:  "Table 1: description of (synthetic) real data",
		Header: []string{"Video", "# of OGs (paper)", "# of OGs (extracted)", "Duration (paper)"},
	}
	totalPaper, totalGot := 0, 0
	for _, s := range streams {
		paperCount := paperOGCount(s.Profile.Name)
		t.Rows = append(t.Rows, []string{
			s.Profile.Name,
			fmt.Sprintf("%d", paperCount),
			fmt.Sprintf("%d", s.Stats.OGs),
			s.Profile.ReportedDuration,
		})
		totalPaper += paperCount
		totalGot += s.Stats.OGs
	}
	t.Rows = append(t.Rows, []string{"Total", fmt.Sprintf("%d", totalPaper), fmt.Sprintf("%d", totalGot), "45 hour 7 min"})
	return t
}

func paperOGCount(name string) int {
	switch name {
	case "Lab1":
		return 411
	case "Lab2":
		return 147
	case "Traffic1":
		return 195
	case "Traffic2":
		return 203
	default:
		return 0
	}
}
