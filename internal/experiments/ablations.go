package experiments

import (
	"fmt"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
	"strgindex/internal/eval"
	"strgindex/internal/index"
	"strgindex/internal/mtree"
	"strgindex/internal/rtree"
	"strgindex/internal/synth"
)

// AblationResult carries the rendered ablation tables.
type AblationResult struct {
	GapModels    Table
	SearchPolicy Table
	LeafSplit    Table
	Indexes      Table
}

// Ablations runs the design-choice studies DESIGN.md calls out:
//
//   - gap models: clustering error under the midpoint (paper), previous
//     (DTW-flavored) and constant (metric) gap references;
//   - search policy: Algorithm 3's single-cluster descent vs the exact
//     all-cluster search — distance evaluations against recall;
//   - leaf split: Section 5.3's BIC-driven split on vs off;
//   - index comparison: metric evaluations per similarity query across
//     STRG-Index, M-tree and the 3DR-tree's candidate generation.
func Ablations(scale Scale) (*AblationResult, error) {
	res := &AblationResult{}
	if err := ablateGapModels(scale, res); err != nil {
		return nil, err
	}
	if err := ablateSearchAndSplit(scale, res); err != nil {
		return nil, err
	}
	return res, nil
}

func ablateGapModels(scale Scale, res *AblationResult) error {
	ds, err := synth.Generate(synth.Config{
		PerPattern: scale.Fig5PerPattern,
		NoisePct:   0.15,
		Seed:       scale.Seed,
	})
	if err != nil {
		return fmt.Errorf("experiments: gap ablation data: %w", err)
	}
	res.GapModels = Table{
		Title:  "Ablation: EGED gap model vs clustering error (EM, 15% noise)",
		Header: []string{"gap model", "error rate"},
	}
	for _, tc := range []struct {
		name  string
		model dist.GapModel
	}{
		{"midpoint (paper, non-metric)", dist.GapMidpoint},
		{"previous (DTW-flavored)", dist.GapPrevious},
		{"constant zero (metric EGED_M)", dist.GapConstant},
	} {
		model := tc.model
		metric := func(a, b dist.Sequence) float64 {
			return dist.EGEDWith(a, b, model, nil)
		}
		cr, err := cluster.EM(ds.Items, cluster.Config{
			K: ds.NumClusters(), MaxIter: scale.EMMaxIter, Seed: scale.Seed, Distance: metric,
		})
		if err != nil {
			return err
		}
		rate, err := eval.ErrorRate(cr.Assignments, ds.Labels)
		if err != nil {
			return err
		}
		res.GapModels.Rows = append(res.GapModels.Rows, []string{tc.name, pct(rate)})
	}
	return nil
}

func ablateSearchAndSplit(scale Scale, res *AblationResult) error {
	patterns := scale.Fig7Patterns
	if patterns <= 0 || patterns > 48 {
		patterns = 48
	}
	per := 20
	ds, err := synth.Generate(synth.Config{
		PerPattern: per, NoisePct: 0.10, Seed: scale.Seed, NumPatterns: patterns,
	})
	if err != nil {
		return fmt.Errorf("experiments: search ablation data: %w", err)
	}
	qds, err := synth.Generate(synth.Config{
		PerPattern: 1, NoisePct: 0.10, Seed: scale.Seed + 17, NumPatterns: patterns,
	})
	if err != nil {
		return err
	}
	items := make([]index.Item[int], len(ds.Items))
	for i, seq := range ds.Items {
		items[i] = index.Item[int]{Seq: seq, Payload: i}
	}

	build := func(maxLeaf int) (*index.Tree[int], *dist.Counter) {
		c := &dist.Counter{}
		tr := index.New[int](index.Config{
			Metric:          dist.Counted(dist.EGEDMZero, c),
			ClusterDistance: dist.Counted(dist.EGED, c),
			NumClusters:     patterns,
			EMMaxIter:       scale.EMMaxIter,
			MaxLeafEntries:  maxLeaf,
			Seed:            scale.Seed,
			// This ablation compares distance-evaluation counts, so the
			// search must run the paper's sequential cost model (parallel
			// exact search spends extra evaluations to win wall clock).
			Concurrency: 1,
		})
		if err := tr.AddSegment(nil, items); err != nil {
			panic(err) // config is static and valid; a failure here is a bug
		}
		return tr, c
	}

	// --- Search policy: Algorithm 3 vs exact --------------------------
	tr, counter := build(0)
	const k = 10
	var approxEvals, exactEvals int64
	var approxRecall float64
	for qi := range qds.Items {
		exact := tr.KNNExact(nil, qds.Items[qi], k)
		counter.Reset()
		approx := tr.KNN(nil, qds.Items[qi], k)
		approxEvals += counter.Count()
		counter.Reset()
		tr.KNNExact(nil, qds.Items[qi], k)
		exactEvals += counter.Count()
		ids := func(rs []index.Result[int]) []int {
			out := make([]int, len(rs))
			for i, r := range rs {
				out[i] = r.Payload
			}
			return out
		}
		approxRecall += eval.RecallAtK(ids(approx), ids(exact), k)
	}
	n := float64(len(qds.Items))
	res.SearchPolicy = Table{
		Title:  "Ablation: Algorithm 3 (single-cluster) vs exact all-cluster k-NN (k=10)",
		Header: []string{"policy", "mean distance evals", "recall vs exact"},
		Rows: [][]string{
			{"Algorithm 3", f1(float64(approxEvals) / n), f2(approxRecall / n)},
			{"exact", f1(float64(exactEvals) / n), "1.00"},
		},
	}

	// --- Leaf split on/off ---------------------------------------------
	// The Section 5.3 split fires when a leaf's one-step BIC gain clears
	// the mixture-weight penalty (σ must shrink by more than ~2x), so the
	// demonstration workload is deliberately bimodal: two far-apart motion
	// patterns forced into a single initial cluster. With splitting on the
	// overfull leaf is carved apart and queries touch one half; with it
	// off every query scans the whole leaf.
	res.LeafSplit = Table{
		Title:  "Ablation: Section 5.3 leaf split on a bimodal leaf (k-NN evals at k=10)",
		Header: []string{"configuration", "clusters", "mean distance evals"},
	}
	biDS, err := synth.Generate(synth.Config{PerPattern: 40, NoisePct: 0.05, Seed: scale.Seed, NumPatterns: 24})
	if err != nil {
		return err
	}
	var biItems []index.Item[int]
	var biQueries []dist.Sequence
	for i, seq := range biDS.Items {
		// Pattern 0: a vertical lane. Pattern 13: a horizontal lane.
		// Their trajectories share no part of the field.
		switch biDS.Labels[i] {
		case 0, 13:
			biItems = append(biItems, index.Item[int]{Seq: seq, Payload: i})
			if len(biQueries) < 10 {
				biQueries = append(biQueries, seq)
			}
		}
	}
	for _, tc := range []struct {
		name    string
		maxLeaf int
	}{
		{"split on (default occupancy)", 0},
		{"split off (unbounded leaves)", 1 << 30},
	} {
		c := &dist.Counter{}
		tr := index.New[int](index.Config{
			Metric:         dist.Counted(dist.EGEDMZero, c),
			NumClusters:    1,
			EMMaxIter:      scale.EMMaxIter,
			MaxLeafEntries: tc.maxLeaf,
			Seed:           scale.Seed,
			Concurrency:    1, // eval-count comparison: sequential cost model
		})
		if err := tr.AddSegment(nil, biItems); err != nil {
			return err
		}
		c.Reset()
		for _, q := range biQueries {
			tr.KNN(nil, q, k)
		}
		res.LeafSplit.Rows = append(res.LeafSplit.Rows, []string{
			tc.name,
			fmt.Sprintf("%d", tr.NumClusters()),
			f1(float64(c.Count()) / float64(len(biQueries))),
		})
	}

	// --- Index comparison on similarity queries ------------------------
	strgTree, strgC := build(0)
	mtC := &dist.Counter{}
	mt, err := mtree.New[int](mtree.Config{
		Metric: dist.Counted(dist.EGEDMZero, mtC), Seed: scale.Seed,
	})
	if err != nil {
		return err
	}
	for i, seq := range ds.Items {
		mt.Insert(seq, i)
	}
	ti, err := rtree.NewTrajectoryIndex[int](16)
	if err != nil {
		return err
	}
	for i, seq := range ds.Items {
		ti.Insert(seq, 0, i)
	}
	strgC.Reset()
	mtC.Reset()
	var rtreeEvals int
	for qi := range qds.Items {
		strgTree.KNN(nil, qds.Items[qi], k)
		mt.KNN(qds.Items[qi], k)
		_, evals, _ := ti.SimilarK(qds.Items[qi], 0, k, 60, dist.EGEDMZero)
		rtreeEvals += evals
	}
	res.Indexes = Table{
		Title:  "Ablation: metric evaluations per similarity query (k=10)",
		Header: []string{"index", "mean distance evals"},
		Rows: [][]string{
			{"STRG-Index (Algorithm 3)", f1(float64(strgC.Count()) / n)},
			{"M-tree (RANDOM)", f1(float64(mtC.Count()) / n)},
			{"3DR-tree (candidates + verify)", f1(float64(rtreeEvals) / n)},
		},
	}
	return nil
}

// Render prints the four ablation tables.
func (r *AblationResult) Render() string {
	return r.GapModels.Render() + "\n" + r.SearchPolicy.Render() + "\n" +
		r.LeafSplit.Render() + "\n" + r.Indexes.Render()
}
