// Package cluster implements the clustering machinery of Section 4: the
// Expectation–Maximization algorithm over the one-dimensional Gaussian
// mixture with EGED in place of the Mahalanobis distance (Equations 3–7),
// the K-Means and K-Harmonic-Means baselines, and BIC model selection
// (Equation 8).
//
// All algorithms cluster Object Graphs through their attribute sequences
// (dist.Sequence) and accept any dist.Metric, so the experiment grid of
// Figure 5 — {EM, KM, KHM} × {EGED, LCS, DTW} — is a parameter sweep.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"strgindex/internal/dist"
)

// Config parameterizes one clustering run.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIter bounds the EM/KM/KHM iterations. Zero means 100.
	MaxIter int
	// Tol is the convergence threshold: EM stops when every mixture weight
	// changes by less than Tol (the paper's "w_k is converged" test);
	// KM stops when assignments stop changing; KHM when the performance
	// function improves by less than Tol relatively.
	Tol float64
	// Seed drives centroid initialization.
	Seed int64
	// ForceIter disables early convergence: exactly MaxIter iterations
	// run. Used by timing sweeps that measure cost per iteration budget.
	ForceIter bool
	// Distance is the sequence dissimilarity; nil means the non-metric
	// EGED, as in Section 4.1.
	Distance dist.Metric
	// Concurrency bounds the worker pool used for the distance-matrix
	// passes (the dominant cost of every algorithm here): 0 means one
	// worker per CPU, 1 reproduces the paper's sequential evaluation
	// exactly, n > 1 caps the pool at n. Results are identical at every
	// setting — only wall-clock changes.
	Concurrency int
}

func (c Config) withDefaults(n int) (Config, error) {
	if c.K <= 0 {
		return c, fmt.Errorf("cluster: K = %d must be positive", c.K)
	}
	if n == 0 {
		return c, fmt.Errorf("cluster: no items")
	}
	if c.K > n {
		return c, fmt.Errorf("cluster: K = %d exceeds %d items", c.K, n)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.Distance == nil {
		c.Distance = dist.EGED
	}
	return c, nil
}

// Result is the outcome of a clustering run.
type Result struct {
	K           int
	Assignments []int // item index -> cluster in [0, K)
	Centroids   []dist.Sequence
	// Weights are the mixture weights w_k (EM) or cluster fractions
	// (KM/KHM).
	Weights []float64
	// Sigmas are the per-component standard deviations σ_k (EM only;
	// populated with sample deviations for KM/KHM).
	Sigmas []float64
	// LogLikelihood is Equation 4 under the fitted model (EM; for KM/KHM
	// it is evaluated on the induced mixture so BIC remains comparable).
	LogLikelihood float64
	// Iterations actually performed.
	Iterations int
}

// Members returns the item indices assigned to cluster k.
func (r *Result) Members(k int) []int {
	var out []int
	for i, a := range r.Assignments {
		if a == k {
			out = append(out, i)
		}
	}
	return out
}

// sigmaFloor keeps components from collapsing onto a single point, which
// would break the mixture density (the covariance-singularity problem the
// paper's Section 4.1 discusses).
const sigmaFloor = 1e-3

// initCentroids seeds K centroids with k-means++-style D² sampling: the
// first centroid is a uniform random item, each further centroid is drawn
// with probability proportional to the squared distance to the nearest
// centroid chosen so far. ("OGs are selected randomly" in Section 4.1 —
// plain uniform seeding routinely drops two seeds into one cluster and
// stalls EM in a local optimum, so all three algorithms use the spread-out
// variant.)
func initCentroids(items []dist.Sequence, k int, rng *rand.Rand, metric dist.Metric, workers int) ([]dist.Sequence, error) {
	cents := make([]dist.Sequence, 0, k)
	cents = append(cents, items[rng.Intn(len(items))].Clone())
	// Each distance pass against the newest centroid fans out over the
	// worker pool; the D² sampling itself stays sequential so the rng
	// stream (and therefore the chosen seeds) is identical at any
	// concurrency.
	col, err := dist.CrossMatrix(items, cents[:1], metric, workers)
	if err != nil {
		return nil, err
	}
	minD := make([]float64, len(items))
	for j := range items {
		minD[j] = col[j][0]
	}
	for len(cents) < k {
		var total float64
		for _, d := range minD {
			total += d * d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(len(items))
		} else {
			r := rng.Float64() * total
			for j, d := range minD {
				r -= d * d
				if r < 0 {
					next = j
					break
				}
			}
		}
		cents = append(cents, items[next].Clone())
		col, err = dist.CrossMatrix(items, cents[len(cents)-1:], metric, workers)
		if err != nil {
			return nil, err
		}
		for j := range items {
			if d := col[j][0]; d < minD[j] {
				minD[j] = d
			}
		}
	}
	return cents, nil
}

// EM fits the K-component mixture of Equation 3 with the EM algorithm of
// Section 4.1 and returns hard assignments by maximum posterior
// (Equation 7).
func EM(items []dist.Sequence, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(len(items))
	if err != nil {
		return nil, err
	}
	m := len(items)
	k := cfg.K
	// Initialize the mixture from a short hard-clustering pass (the
	// model-based clustering practice of the paper's own citation,
	// Fraley & Raftery: EM is a refiner, not a from-scratch searcher).
	// K-Means++ seeding happens inside KMeans.
	warm := cfg
	warm.MaxIter = 4
	kmRes, err := KMeans(items, warm)
	if err != nil {
		return nil, err
	}
	cents := kmRes.Centroids
	weights := make([]float64, k)
	sigmas := make([]float64, k)

	// Initial σ: mean distance from items to their nearest centroid.
	// d[j][c] = Distance(Y_j, µ_c); the m × k pass is the dominant cost of
	// every EM iteration and fans out over the worker pool.
	var d [][]float64
	computeDistances := func() error {
		var err error
		d, err = dist.CrossMatrix(items, cents, cfg.Distance, cfg.Concurrency)
		return err
	}
	if err := computeDistances(); err != nil {
		return nil, err
	}
	var sumMin float64
	for j := 0; j < m; j++ {
		minD := d[j][0]
		for c := 1; c < k; c++ {
			minD = math.Min(minD, d[j][c])
		}
		sumMin += minD
	}
	sigma0 := math.Max(sumMin/float64(m), sigmaFloor)
	// Components are kept from growing wider than the initial global
	// spread: a component whose responsibilities straddle two clusters
	// averages into a meaningless mid-air centroid, its σ inflates, and —
	// unchecked — it swallows the whole dataset within a few iterations
	// (the mixture over non-negative distances has no mechanism of its own
	// to stop that runaway).
	sigmaCap := sigma0
	for c := 0; c < k; c++ {
		weights[c] = 1 / float64(k)
		sigmas[c] = sigma0
	}

	h := make([][]float64, m) // responsibilities h_jk (Equation 5)
	for j := range h {
		h[j] = make([]float64, k)
	}
	prevAssign := make([]int, m)
	for j := range prevAssign {
		prevAssign[j] = -1
	}
	var logLik float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// E-step: posteriors in log domain for numerical stability. The
		// responsibilities use UNIFORM mixing weights; the fitted w_k enter
		// the reported likelihood (Equation 4) but not the assignment.
		// With w_k in the posterior, the 1-D distance mixture has a
		// rich-get-richer feedback loop — a component that grows gains
		// prior mass, absorbs its neighbors' boundary items, grows its σ,
		// and within tens of iterations owns half the dataset.
		logLik = 0
		for j := 0; j < m; j++ {
			logp := make([]float64, k)
			logpW := make([]float64, k)
			for c := 0; c < k; c++ {
				base := -math.Log(sigmas[c]) - 0.5*math.Log(2*math.Pi) -
					d[j][c]*d[j][c]/(2*sigmas[c]*sigmas[c])
				logp[c] = base - math.Log(float64(k))
				logpW[c] = base + math.Log(weights[c]+1e-300)
			}
			logLik += logSumExp(logpW)
			lse := logSumExp(logp)
			for c := 0; c < k; c++ {
				h[j][c] = math.Exp(logp[c] - lse)
			}
		}
		// M-step (Equation 6).
		maxDelta := 0.0
		reseeded := false
		for c := 0; c < k; c++ {
			var hw float64
			for j := 0; j < m; j++ {
				hw += h[j][c]
			}
			newW := hw / float64(m)
			maxDelta = math.Max(maxDelta, math.Abs(newW-weights[c]))
			weights[c] = newW
			if newW < 1e-3/float64(k) && iter < 3 {
				// Dead component: reseed on the item farthest from its
				// nearest centroid AND restore a workable mixture weight —
				// a reseeded component with w ≈ 0 would receive no
				// responsibility and die again immediately, letting one
				// wide component swallow the data. Reseeding is confined
				// to the first iterations: a component still dead after
				// that reflects the data (fewer real clusters than K), and
				// perpetual reseeding just churns the fit.
				cents[c] = items[farthestItem(d)].Clone()
				sigmas[c] = sigma0
				weights[c] = 1 / float64(k)
				reseeded = true
				continue
			}
			// Classification-EM centroid update (Celeux & Govaert): the
			// barycenter is taken over max-posterior members only. A fully
			// soft update has no fixed point in this non-Euclidean sequence
			// space — fractional responsibilities leaking into the
			// barycenter drag centroids between clusters until one
			// component absorbs its neighbors. Weights, σ and the
			// likelihood remain soft (Equations 4–6).
			colW := make([]float64, m)
			any := false
			for j := 0; j < m; j++ {
				if maxPosterior(h[j]) == c && h[j][c] > 0 {
					colW[j] = 1
					any = true
				}
			}
			if any {
				cents[c] = Barycenter(items, colW)
			}
		}
		// One distance pass serves both the σ update below and the next
		// E-step.
		if err := computeDistances(); err != nil {
			return nil, err
		}
		// Per-component variance over the hard (max-posterior) members,
		// consistent with the classification-EM centroid update. Soft
		// responsibilities would let a component straddling two clusters
		// inflate its σ and snowball until it owns the whole dataset; hard
		// membership plus the σ cap keeps each component's variance an
		// honest estimate of its own cluster's spread — which matters for
		// BIC: a single heavy-tailed cluster must not drag every other
		// component's likelihood down, as a tied variance would force.
		for c := 0; c < k; c++ {
			var s2 float64
			var n int
			for j := 0; j < m; j++ {
				if maxPosterior(h[j]) != c {
					continue
				}
				s2 += d[j][c] * d[j][c]
				n++
			}
			if n > 0 {
				sigmas[c] = math.Min(math.Max(math.Sqrt(s2/float64(n)), sigmaFloor), sigmaCap)
			}
		}
		if reseeded {
			var wsum float64
			for _, w := range weights {
				wsum += w
			}
			for c := range weights {
				weights[c] /= wsum
			}
		}
		// Convergence: the paper stops "when w_k is converged"; with the
		// classification-EM centroid update the equivalent fixed point is
		// reached exactly when the hard assignments stop moving.
		stable := true
		for j := 0; j < m; j++ {
			a := maxPosterior(h[j])
			if a != prevAssign[j] {
				stable = false
			}
			prevAssign[j] = a
		}
		if !cfg.ForceIter && !reseeded && (stable || maxDelta < cfg.Tol) {
			iter++
			break
		}
	}
	res := &Result{
		K:             k,
		Assignments:   make([]int, m),
		Centroids:     cents,
		Weights:       weights,
		Sigmas:        sigmas,
		LogLikelihood: logLik,
		Iterations:    iter,
	}
	// Hard assignment by maximum posterior (Equation 7, uniform priors as
	// in the E-step).
	for j := 0; j < m; j++ {
		best, bestVal := 0, math.Inf(-1)
		for c := 0; c < k; c++ {
			v := -math.Log(sigmas[c]) - d[j][c]*d[j][c]/(2*sigmas[c]*sigmas[c])
			if v > bestVal {
				best, bestVal = c, v
			}
		}
		res.Assignments[j] = best
	}
	return res, nil
}

// maxPosterior returns the component with the largest responsibility.
func maxPosterior(row []float64) int {
	best, bestV := 0, row[0]
	for c, v := range row {
		if v > bestV {
			best, bestV = c, v
		}
	}
	return best
}

// farthestItem returns the index of the item with the largest distance to
// its nearest centroid, given the current distance matrix.
func farthestItem(d [][]float64) int {
	best, bestVal := 0, -1.0
	for j := range d {
		minD := math.Inf(1)
		for _, v := range d[j] {
			minD = math.Min(minD, v)
		}
		if minD > bestVal {
			best, bestVal = j, minD
		}
	}
	return best
}

func logSumExp(xs []float64) float64 {
	maxV := math.Inf(-1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// KMeans is Lloyd's algorithm over sequences with barycentric centroid
// updates — the KM baseline of Section 6.2.
func KMeans(items []dist.Sequence, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(len(items))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cents, err := initCentroids(items, cfg.K, rng, cfg.Distance, cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	assign, cents, iter, err := lloyd(items, cents, cfg)
	if err != nil {
		return nil, err
	}
	return finalizeHard(items, cents, assign, cfg, iter)
}

// lloyd runs assignment/update rounds from the given centroids until
// assignments stabilize (unless cfg.ForceIter) or cfg.MaxIter is reached.
// The nearest-centroid pass — the O(m·k) distance matrix — runs on the
// worker pool; the argmin itself compares matrix entries (no repeated
// metric evaluation, and for the point-level comparisons inside the DP
// kernels dist.NormSq already keeps sqrt off the comparison path).
func lloyd(items []dist.Sequence, cents []dist.Sequence, cfg Config) ([]int, []dist.Sequence, int, error) {
	m, k := len(items), len(cents)
	assign := make([]int, m)
	for i := range assign {
		assign[i] = -1
	}
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		d, err := dist.CrossMatrix(items, cents, cfg.Distance, cfg.Concurrency)
		if err != nil {
			return nil, nil, 0, err
		}
		changed := false
		for j := 0; j < m; j++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := d[j][c]; dd < bestD {
					best, bestD = c, dd
				}
			}
			if assign[j] != best {
				assign[j] = best
				changed = true
			}
		}
		if !changed && !cfg.ForceIter {
			iter++
			break
		}
		for c := 0; c < k; c++ {
			w := make([]float64, m)
			any := false
			for j := 0; j < m; j++ {
				if assign[j] == c {
					w[j] = 1
					any = true
				}
			}
			if !any {
				// Empty cluster: reseed on the globally farthest item.
				// Deliberately re-evaluated (not read from this round's
				// matrix): centroids with index below c were already
				// replaced by their barycenters, and the reseed choice
				// must see those updates, exactly as it always has.
				far, farD := 0, -1.0
				for j, it := range items {
					dd := cfg.Distance(it, cents[assign[j]])
					if dd > farD {
						far, farD = j, dd
					}
				}
				cents[c] = items[far].Clone()
				continue
			}
			cents[c] = Barycenter(items, w)
		}
	}
	return assign, cents, iter, nil
}

// khmPower is the p exponent of the K-Harmonic-Means performance function;
// Hamerly & Elkan recommend p ≈ 3.5.
const khmPower = 3.5

// KHarmonicMeans implements the KHM baseline (Hamerly & Elkan 2002): soft
// memberships m(c_k|x_j) ∝ d_jk^{-p-2} and data weights
// w(x_j) = Σ_k d_jk^{-p-2} / (Σ_k d_jk^{-p})².
func KHarmonicMeans(items []dist.Sequence, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(len(items))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m, k := len(items), cfg.K
	cents, err := initCentroids(items, k, rng, cfg.Distance, cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	prevPerf := math.Inf(1)
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		d, err := dist.CrossMatrix(items, cents, cfg.Distance, cfg.Concurrency)
		if err != nil {
			return nil, err
		}
		perf := 0.0
		for j := 0; j < m; j++ {
			var invSum float64
			for c := 0; c < k; c++ {
				dd := math.Max(d[j][c], 1e-9)
				d[j][c] = dd
				invSum += math.Pow(dd, -khmPower)
			}
			perf += float64(k) / invSum
		}
		// Membership × weight per item/cluster, then barycentric update.
		for c := 0; c < k; c++ {
			w := make([]float64, m)
			var total float64
			for j := 0; j < m; j++ {
				var sumP2, sumP float64
				for cc := 0; cc < k; cc++ {
					sumP2 += math.Pow(d[j][cc], -khmPower-2)
					sumP += math.Pow(d[j][cc], -khmPower)
				}
				membership := math.Pow(d[j][c], -khmPower-2) / sumP2
				weight := sumP2 / (sumP * sumP)
				w[j] = membership * weight
				total += w[j]
			}
			if total > 1e-12 {
				cents[c] = Barycenter(items, w)
			}
		}
		if prevPerf-perf < cfg.Tol*math.Abs(prevPerf) && !cfg.ForceIter {
			iter++
			break
		}
		prevPerf = perf
	}
	// Hard assignment by nearest centroid (one parallel matrix pass).
	d, err := dist.CrossMatrix(items, cents, cfg.Distance, cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	assign := make([]int, m)
	for j := 0; j < m; j++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if dd := d[j][c]; dd < bestD {
				best, bestD = c, dd
			}
		}
		assign[j] = best
	}
	return finalizeHard(items, cents, assign, cfg, iter)
}

// finalizeHard builds a Result from hard assignments, deriving weights,
// sample sigmas and the induced-mixture log-likelihood so BIC comparisons
// work across algorithms. One parallel m × k distance pass feeds both the
// sigma accumulation and the likelihood.
func finalizeHard(items []dist.Sequence, cents []dist.Sequence, assign []int, cfg Config, iters int) (*Result, error) {
	m, k := len(items), cfg.K
	d, err := dist.CrossMatrix(items, cents, cfg.Distance, cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, k)
	sigmas := make([]float64, k)
	counts := make([]int, k)
	for j, a := range assign {
		counts[a]++
		dd := d[j][a]
		sigmas[a] += dd * dd
	}
	for c := 0; c < k; c++ {
		weights[c] = float64(counts[c]) / float64(m)
		if counts[c] > 0 {
			sigmas[c] = math.Max(math.Sqrt(sigmas[c]/float64(counts[c])), sigmaFloor)
		} else {
			sigmas[c] = sigmaFloor
		}
	}
	var logLik float64
	for j := 0; j < m; j++ {
		logp := make([]float64, 0, k)
		for c := 0; c < k; c++ {
			if weights[c] == 0 {
				continue
			}
			dd := d[j][c]
			logp = append(logp, math.Log(weights[c])-math.Log(sigmas[c])-
				0.5*math.Log(2*math.Pi)-dd*dd/(2*sigmas[c]*sigmas[c]))
		}
		logLik += logSumExp(logp)
	}
	return &Result{
		K:             k,
		Assignments:   assign,
		Centroids:     cents,
		Weights:       weights,
		Sigmas:        sigmas,
		LogLikelihood: logLik,
		Iterations:    iters,
	}, nil
}

// Barycenter computes a weighted mean sequence: members are resampled to
// the weighted median length and averaged pointwise. This realizes the
// paper's µ_k update (Equation 6) for variable-length OGs, where the paper
// itself is silent on how to average sequences of different lengths.
// Zero or negative total weight falls back to uniform weights. It panics
// if items is empty or lengths differ from weights.
func Barycenter(items []dist.Sequence, weights []float64) dist.Sequence {
	if len(items) == 0 {
		panic("cluster: Barycenter of no items")
	}
	if len(items) != len(weights) {
		panic("cluster: Barycenter weight count mismatch")
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		weights = make([]float64, len(items))
		for i := range weights {
			weights[i] = 1
		}
		total = float64(len(items))
	}
	length := weightedMedianLength(items, weights, total)
	d := 0
	for _, it := range items {
		if len(it) > 0 {
			d = it.Dim()
			break
		}
	}
	out := make(dist.Sequence, length)
	norm := make([]float64, length)
	for i := range out {
		out[i] = make(dist.Vec, d)
	}
	for j, it := range items {
		w := weights[j]
		if w <= 0 || len(it) == 0 {
			continue
		}
		rs := dist.Resample(it, length)
		for i := 0; i < length; i++ {
			for x := 0; x < d; x++ {
				out[i][x] += w * rs[i][x]
			}
			norm[i] += w
		}
	}
	for i := range out {
		if norm[i] > 0 {
			for x := range out[i] {
				out[i][x] /= norm[i]
			}
		}
	}
	return out
}

// weightedMedianLength returns the weighted median of the item lengths
// (minimum 1).
func weightedMedianLength(items []dist.Sequence, weights []float64, total float64) int {
	type lw struct {
		l int
		w float64
	}
	ls := make([]lw, 0, len(items))
	for i, it := range items {
		if weights[i] > 0 {
			ls = append(ls, lw{len(it), weights[i]})
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].l < ls[j].l })
	var cum float64
	for _, e := range ls {
		cum += e.w
		if cum >= total/2 {
			if e.l < 1 {
				return 1
			}
			return e.l
		}
	}
	return 1
}

// Score returns an anomaly score for an arbitrary sequence against the
// fitted model: the distance to the nearest centroid divided by that
// component's σ. Scores near or below 1 are ordinary members; scores far
// above 1 are motions unlike anything clustered — the surveillance
// "unusual trajectory" signal.
func (r *Result) Score(item dist.Sequence, metric dist.Metric) float64 {
	if metric == nil {
		metric = dist.EGED
	}
	best := math.Inf(1)
	for c, cent := range r.Centroids {
		d := metric(item, cent)
		sigma := sigmaFloor
		if c < len(r.Sigmas) && r.Sigmas[c] > sigma {
			sigma = r.Sigmas[c]
		}
		if v := d / sigma; v < best {
			best = v
		}
	}
	return best
}

// Outliers returns the indices of items whose Score exceeds threshold.
func (r *Result) Outliers(items []dist.Sequence, metric dist.Metric, threshold float64) []int {
	var out []int
	for i, it := range items {
		if r.Score(it, metric) > threshold {
			out = append(out, i)
		}
	}
	return out
}
