package cluster

import (
	"fmt"

	"strgindex/internal/dist"
)

// XMeans implements Pelleg & Moore's X-means — the optimal-K method the
// paper cites ([24]) alongside its own BIC scan. Structure improvement
// alternates with parameter improvement: starting from kMin centroids,
// every cluster is test-split in two and the split is kept when the local
// BIC (computed on the cluster's own members) improves; Lloyd iterations
// then re-stabilize the global model. The search stops when no split
// survives or kMax is reached.
//
// Compared with OptimalK's exhaustive scan, X-means fits far fewer models
// (each split decision sees only one cluster's members), at the price of a
// greedier search.
func XMeans(items []dist.Sequence, kMin, kMax int, cfg Config) (*Result, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: invalid K range [%d, %d]", kMin, kMax)
	}
	if kMin > len(items) {
		return nil, fmt.Errorf("cluster: kMin %d exceeds %d items", kMin, len(items))
	}
	if kMax > len(items) {
		kMax = len(items)
	}
	cfg.K = kMin
	cfg, err := cfg.withDefaults(len(items))
	if err != nil {
		return nil, err
	}

	km, err := KMeans(items, cfg)
	if err != nil {
		return nil, err
	}
	cents := km.Centroids
	assign := km.Assignments
	totalIter := km.Iterations

	for len(cents) < kMax {
		split := false
		var next []dist.Sequence
		for c := 0; c < len(cents); c++ {
			var members []dist.Sequence
			for j, a := range assign {
				if a == c {
					members = append(members, items[j])
				}
			}
			if len(members) < 4 || len(cents)+boolToInt(split) >= kMax {
				next = append(next, cents[c])
				continue
			}
			if child1, child2, ok := trySplit(members, cfg); ok {
				next = append(next, child1, child2)
				split = true
			} else {
				next = append(next, cents[c])
			}
			if len(next) >= kMax {
				// Absorb remaining clusters unchanged.
				for cc := c + 1; cc < len(cents); cc++ {
					next = append(next, cents[cc])
				}
				break
			}
		}
		if !split {
			break
		}
		cents = next
		lcfg := cfg
		lcfg.K = len(cents)
		assign, cents, _, err = lloyd(items, cents, lcfg)
		if err != nil {
			return nil, err
		}
		totalIter++
	}
	fcfg := cfg
	fcfg.K = len(cents)
	return finalizeHard(items, cents, assign, fcfg, totalIter)
}

// trySplit fits one- and two-component models to a cluster's members and
// returns the two child centroids when the split's local BIC wins.
func trySplit(members []dist.Sequence, cfg Config) (dist.Sequence, dist.Sequence, bool) {
	one := cfg
	one.K = 1
	res1, err1 := EM(members, one)
	two := cfg
	two.K = 2
	res2, err2 := EM(members, two)
	if err1 != nil || err2 != nil {
		return nil, nil, false
	}
	if BIC(res2, len(members)) <= BIC(res1, len(members)) {
		return nil, nil, false
	}
	if len(res2.Members(0)) == 0 || len(res2.Members(1)) == 0 {
		return nil, nil, false
	}
	return res2.Centroids[0], res2.Centroids[1], true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
