package cluster

import (
	"testing"
)

func TestXMeansRecoversBlobs(t *testing.T) {
	items, labels := threeBlobsLen(90, 1, 61, false)
	res, err := XMeans(items, 1, 8, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 4 {
		t.Errorf("XMeans K = %d, want 3 or 4", res.K)
	}
	if got := agreement(res.Assignments, labels, res.K); got < 0.9 {
		t.Errorf("agreement = %.2f, want >= 0.9", got)
	}
}

func TestXMeansStopsAtKMax(t *testing.T) {
	items, _ := threeBlobs(60, 1, 62)
	res, err := XMeans(items, 1, 2, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("K = %d exceeds kMax 2", res.K)
	}
}

func TestXMeansSingleClusterData(t *testing.T) {
	// Homogeneous data: no split should survive the local BIC test.
	items, _ := threeBlobsLen(30, 1, 63, false)
	onlyFlat := items[:0:0]
	for i := range items {
		if i%3 == 0 { // keep one blob only
			onlyFlat = append(onlyFlat, items[i])
		}
	}
	res, err := XMeans(onlyFlat, 1, 6, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("single-cluster data split into %d", res.K)
	}
}

func TestXMeansValidation(t *testing.T) {
	items, _ := threeBlobs(9, 1, 64)
	if _, err := XMeans(items, 0, 3, Config{}); err == nil {
		t.Error("kMin 0 accepted")
	}
	if _, err := XMeans(items, 5, 3, Config{}); err == nil {
		t.Error("kMax < kMin accepted")
	}
	if _, err := XMeans(items, 99, 99, Config{}); err == nil {
		t.Error("kMin > items accepted")
	}
	// kMax beyond item count is clamped.
	res, err := XMeans(items, 1, 99, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 9 {
		t.Errorf("K = %d exceeds item count", res.K)
	}
}

func TestXMeansAgreesWithOptimalKOnCleanData(t *testing.T) {
	items, _ := threeBlobsLen(90, 1, 65, false)
	xm, err := XMeans(items, 1, 8, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := OptimalK(items, 1, 8, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if diff := xm.K - scan.BestK; diff < -1 || diff > 1 {
		t.Errorf("X-means K=%d vs BIC scan K=%d differ by more than 1", xm.K, scan.BestK)
	}
}
