package cluster

import (
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

// blob generates n short sequences jittered around a base value.
func blob(rng *rand.Rand, n int, base float64) []dist.Sequence {
	out := make([]dist.Sequence, n)
	for i := range out {
		s := make(dist.Sequence, 6)
		for j := range s {
			s[j] = dist.Vec{base + rng.Float64(), base + rng.Float64()}
		}
		out[i] = s
	}
	return out
}

// TestSplitEvalAdoptsSeparatedBlobs: two well-separated groups should beat
// the single-component model under BIC and carry both memberships.
func TestSplitEvalAdoptsSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := append(blob(rng, 20, 0), blob(rng, 20, 500)...)
	dec, err := SplitEval(seqs, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Adopt {
		t.Fatalf("Adopt = false (gain %v) on two separated blobs", dec.Gain)
	}
	if dec.Gain <= 0 {
		t.Fatalf("Adopt without positive gain: %v", dec.Gain)
	}
	m0, m1 := dec.Two.Members(0), dec.Two.Members(1)
	if len(m0) == 0 || len(m1) == 0 {
		t.Fatalf("degenerate split memberships: %d / %d", len(m0), len(m1))
	}
	if len(m0)+len(m1) != len(seqs) {
		t.Fatalf("memberships cover %d of %d items", len(m0)+len(m1), len(seqs))
	}
}

// TestSplitEvalDeclinesSingleBlob: one tight group gains nothing from a
// second component once the BIC parameter penalty is paid.
func TestSplitEvalDeclinesSingleBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seqs := blob(rng, 40, 10)
	dec, err := SplitEval(seqs, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Adopt {
		t.Fatalf("Adopt = true (gain %v) on a single tight blob", dec.Gain)
	}
}

// TestSplitEvalDeterministic: identical input and seed reproduce the exact
// verdict, gain bits and memberships — the property that keeps inline and
// deferred split evaluations interchangeable.
func TestSplitEvalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seqs := append(blob(rng, 18, 0), blob(rng, 18, 200)...)
	a, err := SplitEval(seqs, Config{Seed: 5, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitEval(seqs, Config{Seed: 5, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Adopt != b.Adopt || a.Gain != b.Gain {
		t.Fatalf("verdicts diverged: (%v, %v) vs (%v, %v)", a.Adopt, a.Gain, b.Adopt, b.Gain)
	}
	for i := range a.Two.Assignments {
		if a.Two.Assignments[i] != b.Two.Assignments[i] {
			t.Fatalf("assignment %d diverged: %d vs %d", i, a.Two.Assignments[i], b.Two.Assignments[i])
		}
	}
}

// TestSplitEvalTooFewItems: a membership of one cannot fit K = 2; the
// evaluation must error rather than fabricate a verdict.
func TestSplitEvalTooFewItems(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	if _, err := SplitEval(blob(rng, 1, 0), Config{Seed: 1}); err == nil {
		t.Fatal("expected an error for a single-member evaluation")
	}
}
