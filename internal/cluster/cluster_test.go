package cluster

import (
	"math"
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

// threeBlobs generates n sequences around three well-separated 1-D
// trajectory prototypes, returning items and ground-truth labels.
func threeBlobs(n int, noise float64, seed int64) ([]dist.Sequence, []int) {
	return threeBlobsLen(n, noise, seed, true)
}

// threeBlobsLen optionally varies sequence lengths. Length variation makes
// the ramp blob genuinely bimodal under EGED (gap costs scale with the
// step size), which is useful for robustness tests but not for BIC model
// recovery.
func threeBlobsLen(n int, noise float64, seed int64, varyLen bool) ([]dist.Sequence, []int) {
	rng := rand.New(rand.NewSource(seed))
	protos := [][]float64{
		{0, 0, 0, 0, 0},
		{100, 100, 100, 100, 100},
		{0, 50, 100, 150, 200},
	}
	items := make([]dist.Sequence, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		length := len(protos[c])
		if varyLen {
			length += rng.Intn(3)
		}
		base := make(dist.Sequence, len(protos[c]))
		for j, v := range protos[c] {
			base[j] = dist.Vec{v + rng.NormFloat64()*noise}
		}
		items[i] = dist.Resample(base, length)
	}
	return items, labels
}

// agreement measures how well assignments recover labels under the best
// greedy cluster-to-label mapping (sufficient for these tiny fixtures).
func agreement(assign, labels []int, k int) float64 {
	counts := make(map[[2]int]int)
	for i := range assign {
		counts[[2]int{assign[i], labels[i]}]++
	}
	usedA, usedL := map[int]bool{}, map[int]bool{}
	correct := 0
	for range make([]struct{}, k) {
		best, bestC := [2]int{-1, -1}, -1
		for key, c := range counts {
			if usedA[key[0]] || usedL[key[1]] {
				continue
			}
			if c > bestC {
				best, bestC = key, c
			}
		}
		if bestC < 0 {
			break
		}
		usedA[best[0]], usedL[best[1]] = true, true
		correct += bestC
	}
	return float64(correct) / float64(len(assign))
}

func TestConfigValidation(t *testing.T) {
	items, _ := threeBlobs(9, 1, 1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero K", Config{K: 0}},
		{"negative K", Config{K: -2}},
		{"K exceeds items", Config{K: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EM(items, tt.cfg); err == nil {
				t.Error("EM did not error")
			}
			if _, err := KMeans(items, tt.cfg); err == nil {
				t.Error("KMeans did not error")
			}
			if _, err := KHarmonicMeans(items, tt.cfg); err == nil {
				t.Error("KHarmonicMeans did not error")
			}
		})
	}
	if _, err := EM(nil, Config{K: 1}); err == nil {
		t.Error("EM with no items did not error")
	}
}

func TestEMRecoversBlobs(t *testing.T) {
	items, labels := threeBlobs(60, 2, 42)
	res, err := EM(items, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := agreement(res.Assignments, labels, 3); got < 0.95 {
		t.Errorf("EM agreement = %.2f, want >= 0.95", got)
	}
	if res.Iterations <= 0 {
		t.Error("Iterations not recorded")
	}
	var wsum float64
	for _, w := range res.Weights {
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-6 {
		t.Errorf("mixture weights sum to %v, want 1", wsum)
	}
	for _, s := range res.Sigmas {
		if s < sigmaFloor {
			t.Errorf("sigma %v below floor", s)
		}
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	items, labels := threeBlobs(60, 2, 43)
	res, err := KMeans(items, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := agreement(res.Assignments, labels, 3); got < 0.95 {
		t.Errorf("KMeans agreement = %.2f, want >= 0.95", got)
	}
}

func TestKHMRecoversBlobs(t *testing.T) {
	items, labels := threeBlobs(60, 2, 44)
	res, err := KHarmonicMeans(items, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := agreement(res.Assignments, labels, 3); got < 0.95 {
		t.Errorf("KHM agreement = %.2f, want >= 0.95", got)
	}
}

func TestEMWithAlternativeDistances(t *testing.T) {
	items, labels := threeBlobs(45, 2, 45)
	for _, tc := range []struct {
		name string
		m    dist.Metric
	}{
		{"DTW", dist.DTW},
		{"LCS", dist.LCSMetric(10)},
		{"EGEDM", dist.EGEDMZero},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := EM(items, Config{K: 3, Seed: 7, Distance: tc.m})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Assignments) != len(items) {
				t.Fatal("assignment count mismatch")
			}
			_ = labels
		})
	}
}

func TestResultMembers(t *testing.T) {
	items, _ := threeBlobs(12, 1, 46)
	res, err := KMeans(items, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for k := 0; k < 3; k++ {
		total += len(res.Members(k))
	}
	if total != 12 {
		t.Errorf("members across clusters = %d, want 12", total)
	}
}

func TestBarycenterUniform(t *testing.T) {
	items := []dist.Sequence{
		{dist.Vec{0}, dist.Vec{0}},
		{dist.Vec{10}, dist.Vec{10}},
	}
	got := Barycenter(items, []float64{1, 1})
	if len(got) != 2 {
		t.Fatalf("barycenter length = %d, want 2", len(got))
	}
	for _, v := range got {
		if math.Abs(v[0]-5) > 1e-9 {
			t.Errorf("barycenter value = %v, want 5", v[0])
		}
	}
}

func TestBarycenterWeighted(t *testing.T) {
	items := []dist.Sequence{
		{dist.Vec{0}},
		{dist.Vec{10}},
	}
	got := Barycenter(items, []float64{3, 1})
	if math.Abs(got[0][0]-2.5) > 1e-9 {
		t.Errorf("weighted barycenter = %v, want 2.5", got[0][0])
	}
}

func TestBarycenterZeroWeightsFallBackToUniform(t *testing.T) {
	items := []dist.Sequence{
		{dist.Vec{0}},
		{dist.Vec{10}},
	}
	got := Barycenter(items, []float64{0, 0})
	if math.Abs(got[0][0]-5) > 1e-9 {
		t.Errorf("zero-weight barycenter = %v, want 5", got[0][0])
	}
}

func TestBarycenterMedianLength(t *testing.T) {
	items := []dist.Sequence{
		dist.Resample(dist.Sequence{dist.Vec{0}, dist.Vec{10}}, 3),
		dist.Resample(dist.Sequence{dist.Vec{0}, dist.Vec{10}}, 5),
		dist.Resample(dist.Sequence{dist.Vec{0}, dist.Vec{10}}, 9),
	}
	got := Barycenter(items, []float64{1, 1, 1})
	if len(got) != 5 {
		t.Errorf("barycenter length = %d, want weighted median 5", len(got))
	}
}

func TestBarycenterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Barycenter with no items did not panic")
		}
	}()
	Barycenter(nil, nil)
}

func TestBICPrefersTrueK(t *testing.T) {
	items, _ := threeBlobsLen(90, 1, 47, false)
	scan, err := OptimalK(items, 1, 6, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The 1-D EGED mixture measures non-negative distances, so an extra
	// component can always buy a sliver of likelihood by modeling the
	// distance shell; BIC lands within one of the true K. The paper sees
	// the same slack (Table 2: Lab2's found K is off by one).
	if scan.BestK < 3 || scan.BestK > 4 {
		t.Errorf("BestK = %d, want 3 or 4 (BICs: %v)", scan.BestK, scan.BICs)
	}
	// The under-fitted models must be clearly rejected.
	bicAt := func(k int) float64 { return scan.BICs[k-1] }
	if bicAt(3) <= bicAt(1) || bicAt(3) <= bicAt(2) {
		t.Errorf("BIC(3) = %v does not dominate BIC(1) = %v, BIC(2) = %v",
			bicAt(3), bicAt(1), bicAt(2))
	}
	if len(scan.Ks) != 6 || len(scan.BICs) != 6 {
		t.Errorf("scan lengths = %d/%d, want 6", len(scan.Ks), len(scan.BICs))
	}
}

func TestBICPenalizesParameters(t *testing.T) {
	items, _ := threeBlobs(30, 2, 48)
	res, err := EM(items, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b := BIC(res, len(items))
	if b >= res.LogLikelihood {
		t.Errorf("BIC %v not below log-likelihood %v", b, res.LogLikelihood)
	}
	// η = 3K−1 = 8 parameters at K=3 over 30 items.
	want := res.LogLikelihood - 8*math.Log(30)
	if math.Abs(b-want) > 1e-9 {
		t.Errorf("BIC = %v, want %v", b, want)
	}
}

func TestOptimalKValidation(t *testing.T) {
	items, _ := threeBlobs(9, 1, 49)
	if _, err := OptimalK(items, 0, 3, Config{}); err == nil {
		t.Error("kMin 0 did not error")
	}
	if _, err := OptimalK(items, 5, 3, Config{}); err == nil {
		t.Error("kMax < kMin did not error")
	}
	// kMax beyond a third of the item count is clamped (the scan would
	// otherwise run into the K -> M sigma-floor overfit spike).
	scan, err := OptimalK(items, 1, 20, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Ks[len(scan.Ks)-1] != 3 {
		t.Errorf("kMax not clamped to M/3: %v", scan.Ks)
	}
}

func TestEMDeterministicForSeed(t *testing.T) {
	items, _ := threeBlobs(30, 2, 50)
	a, err := EM(items, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EM(items, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("EM not deterministic for fixed seed")
		}
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	items, _ := threeBlobs(10, 1, 51)
	res, err := KMeans(items, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("K=1 produced non-zero assignment")
		}
	}
	if math.Abs(res.Weights[0]-1) > 1e-9 {
		t.Errorf("K=1 weight = %v, want 1", res.Weights[0])
	}
}

func TestEMKEqualsItems(t *testing.T) {
	// Degenerate: every item its own cluster. Must not crash or produce
	// NaNs.
	items, _ := threeBlobs(6, 1, 52)
	res, err := EM(items, Config{K: 6, Seed: 1, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LogLikelihood) {
		t.Error("log-likelihood is NaN")
	}
	for _, s := range res.Sigmas {
		if math.IsNaN(s) {
			t.Error("sigma is NaN")
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := logSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if math.Abs(got-math.Log(6)) > 1e-9 {
		t.Errorf("logSumExp = %v, want log 6", got)
	}
	if v := logSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(v, -1) {
		t.Errorf("logSumExp of -Infs = %v, want -Inf", v)
	}
	// Extreme values must not overflow.
	if v := logSumExp([]float64{-1e9, -1e9 + 1}); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("logSumExp underflow produced %v", v)
	}
}

func TestScoreAndOutliers(t *testing.T) {
	items, _ := threeBlobsLen(60, 1, 71, false)
	res, err := EM(items, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Members score low.
	var maxMember float64
	for _, it := range items {
		if s := res.Score(it, nil); s > maxMember {
			maxMember = s
		}
	}
	// A wild trajectory scores far above any member.
	wild := dist.Sequence{{500}, {-300}, {900}, {-100}, {700}}
	if s := res.Score(wild, nil); s < 3*maxMember {
		t.Errorf("wild score %v not well above member max %v", s, maxMember)
	}
	// Outliers finds exactly the planted anomaly.
	all := append(append([]dist.Sequence{}, items...), wild)
	threshold := maxMember * 2
	got := res.Outliers(all, nil, threshold)
	if len(got) != 1 || got[0] != len(all)-1 {
		t.Errorf("Outliers = %v, want [%d]", got, len(all)-1)
	}
}
