package cluster

import (
	"fmt"
	"math"

	"strgindex/internal/dist"
)

// BIC evaluates Equation 8 for a fitted model:
//
//	BIC(M_K) = l̂_K(Y) − η_MK · log(M)
//
// η_MK counts the independent parameters of the fitted model: the paper's
// formula η = (K−1) + K·d(d+3)/2 with d = 1 (Section 4.2) gives 3K−1 —
// K−1 mixture weights plus one mean and one variance per component, which
// is exactly what EM fits here. Larger BIC is better under this sign
// convention (the paper maximizes).
func BIC(r *Result, numItems int) float64 {
	const d = 1
	eta := float64(r.K-1) + float64(r.K)*d*(d+3)/2
	return r.LogLikelihood - eta*math.Log(float64(numItems))
}

// KScan holds the BIC curve of an OptimalK scan.
type KScan struct {
	Ks      []int
	BICs    []float64
	Results []*Result
	// BestK is the K maximizing BIC.
	BestK int
}

// OptimalK fits EM models for K = kMin..kMax and picks the K with maximal
// BIC (Section 4.2, Figure 8). cfg.K is ignored.
func OptimalK(items []dist.Sequence, kMin, kMax int, cfg Config) (*KScan, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("cluster: invalid K range [%d, %d]", kMin, kMax)
	}
	// Cap the scan well below the item count: as K approaches M each
	// component holds a single item, σ collapses to the floor and the
	// likelihood spikes into a meaningless overfit peak.
	if cap := len(items) / 3; kMax > cap {
		kMax = cap
	}
	if kMax < 1 {
		kMax = 1
	}
	if kMax < kMin {
		kMax = kMin
		if kMax > len(items) {
			return nil, fmt.Errorf("cluster: only %d items for kMin %d", len(items), kMin)
		}
	}
	scan := &KScan{}
	bestBIC := math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		res, err := EM(items, c)
		if err != nil {
			return nil, fmt.Errorf("cluster: EM with K=%d: %w", k, err)
		}
		b := BIC(res, len(items))
		scan.Ks = append(scan.Ks, k)
		scan.BICs = append(scan.BICs, b)
		scan.Results = append(scan.Results, res)
		if b > bestBIC {
			bestBIC = b
			scan.BestK = k
		}
	}
	return scan, nil
}
