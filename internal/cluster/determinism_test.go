package cluster

import (
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

func detSequences(n int, seed int64) []dist.Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dist.Sequence, n)
	for i := range out {
		l := 4 + rng.Intn(8)
		s := make(dist.Sequence, l)
		for j := range s {
			s[j] = dist.Vec{rng.Float64() * 100, rng.Float64() * 100}
		}
		out[i] = s
	}
	return out
}

// TestClusteringDeterministicUnderConcurrency verifies the tentpole
// contract: every clustering algorithm produces byte-identical models at
// any worker count, because parallelism only reschedules distance
// evaluations (all order-sensitive reductions stay sequential).
func TestClusteringDeterministicUnderConcurrency(t *testing.T) {
	items := detSequences(40, 23)
	algos := []struct {
		name string
		run  func(cfg Config) (*Result, error)
	}{
		{"EM", func(cfg Config) (*Result, error) { return EM(items, cfg) }},
		{"KMeans", func(cfg Config) (*Result, error) { return KMeans(items, cfg) }},
		{"KHarmonicMeans", func(cfg Config) (*Result, error) { return KHarmonicMeans(items, cfg) }},
	}
	for _, algo := range algos {
		base := Config{K: 4, MaxIter: 20, Seed: 7, Concurrency: 1}
		want, err := algo.run(base)
		if err != nil {
			t.Fatalf("%s sequential: %v", algo.name, err)
		}
		for _, workers := range []int{0, 2, 4} {
			cfg := base
			cfg.Concurrency = workers
			got, err := algo.run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo.name, workers, err)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("%s workers=%d: %d iterations, want %d", algo.name, workers, got.Iterations, want.Iterations)
			}
			if got.LogLikelihood != want.LogLikelihood {
				t.Errorf("%s workers=%d: logLik %v, want %v (not byte-identical)",
					algo.name, workers, got.LogLikelihood, want.LogLikelihood)
			}
			for i := range want.Assignments {
				if got.Assignments[i] != want.Assignments[i] {
					t.Fatalf("%s workers=%d: assignment[%d] = %d, want %d",
						algo.name, workers, i, got.Assignments[i], want.Assignments[i])
				}
			}
			for k := range want.Centroids {
				a, b := got.Centroids[k], want.Centroids[k]
				if len(a) != len(b) {
					t.Fatalf("%s workers=%d: centroid %d length %d, want %d", algo.name, workers, k, len(a), len(b))
				}
				for j := range b {
					for d := range b[j] {
						if a[j][d] != b[j][d] {
							t.Fatalf("%s workers=%d: centroid %d[%d][%d] = %v, want %v (not byte-identical)",
								algo.name, workers, k, j, d, a[j][d], b[j][d])
						}
					}
				}
			}
		}
	}
}

// TestXMeansDeterministicUnderConcurrency covers the split-search loop,
// whose lloyd re-stabilization and per-cluster EM fits all ride the
// parallel matrices.
func TestXMeansDeterministicUnderConcurrency(t *testing.T) {
	items := detSequences(48, 31)
	run := func(workers int) *Result {
		res, err := XMeans(items, 2, 6, Config{MaxIter: 15, Seed: 3, Concurrency: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	want := run(1)
	got := run(4)
	if got.K != want.K {
		t.Fatalf("K = %d, want %d", got.K, want.K)
	}
	for i := range want.Assignments {
		if got.Assignments[i] != want.Assignments[i] {
			t.Fatalf("assignment[%d] = %d, want %d", i, got.Assignments[i], want.Assignments[i])
		}
	}
}
