package cluster

import "strgindex/internal/dist"

// SplitDecision is the outcome of one Section 5.3 occupancy-split
// evaluation over the members of an overfull cluster node.
type SplitDecision struct {
	// Adopt reports whether the two-component model improves BIC over the
	// single-component model (Eq. 8) — the paper's split trigger.
	Adopt bool
	// Gain is BIC(M_2) − BIC(M_1); positive iff Adopt.
	Gain float64
	// One and Two are the fitted models. Two carries the new centroids and
	// memberships the caller re-keys the leaf records against when the
	// split is adopted.
	One, Two *Result
}

// SplitEval fits the one- and two-component EGED mixture models to the
// members of a cluster node and applies the BIC gate of Section 5.3:
// split iff BIC(M_2) > BIC(M_1). cfg.K is ignored (the evaluation fixes
// K = 1 and K = 2); the remaining fields — seed, distance, iteration
// budget, concurrency — parameterize both fits identically.
//
// The evaluation is deterministic for a fixed cfg.Seed and membership, so
// an inline split on the ingest path and a deferred evaluation by the
// sharded index's background maintenance reach the same verdict and the
// same post-split structure for the same leaf — the property the
// byte-identity test matrix relies on. An error from either fit means the
// caller should simply not split (splitting is an optimization; it must
// never fail an insert).
func SplitEval(seqs []dist.Sequence, cfg Config) (SplitDecision, error) {
	one := cfg
	one.K = 1
	res1, err := EM(seqs, one)
	if err != nil {
		return SplitDecision{}, err
	}
	two := cfg
	two.K = 2
	res2, err := EM(seqs, two)
	if err != nil {
		return SplitDecision{}, err
	}
	gain := BIC(res2, len(seqs)) - BIC(res1, len(seqs))
	return SplitDecision{Adopt: gain > 0, Gain: gain, One: res1, Two: res2}, nil
}
