package video

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
)

func simpleConfig() SceneConfig {
	return SceneConfig{
		Name:           "test",
		Width:          320,
		Height:         240,
		FPS:            12,
		Frames:         10,
		BackgroundRows: 2,
		BackgroundCols: 3,
		Jitter:         0,
		Seed:           1,
		Objects: []ObjectSpec{{
			Label: "obj0",
			Parts: []PartSpec{{Offset: geom.Vec(0, 0), Size: 300, Color: graph.Color{R: 1}}},
			Path:  []geom.Point{geom.Pt(10, 120), geom.Pt(310, 120)},
			Start: 0,
			End:   10,
		}},
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SceneConfig)
		wantOK bool
	}{
		{"valid", func(c *SceneConfig) {}, true},
		{"zero width", func(c *SceneConfig) { c.Width = 0 }, false},
		{"zero frames", func(c *SceneConfig) { c.Frames = 0 }, false},
		{"negative grid", func(c *SceneConfig) { c.BackgroundRows = -1 }, false},
		{"object no parts", func(c *SceneConfig) { c.Objects[0].Parts = nil }, false},
		{"object no path", func(c *SceneConfig) { c.Objects[0].Path = nil }, false},
		{"object bad range", func(c *SceneConfig) { c.Objects[0].End = 99 }, false},
		{"object empty range", func(c *SceneConfig) { c.Objects[0].Start = 5; c.Objects[0].End = 5 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := simpleConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.wantOK {
				t.Errorf("Validate() error = %v, wantOK = %v", err, tt.wantOK)
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	seg, err := Generate(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Frames) != 10 {
		t.Fatalf("frames = %d, want 10", len(seg.Frames))
	}
	for i, f := range seg.Frames {
		if f.Index != i {
			t.Errorf("frame %d has Index %d", i, f.Index)
		}
		// 6 background + 1 object region.
		if len(f.Regions) != 7 {
			t.Errorf("frame %d has %d regions, want 7", i, len(f.Regions))
		}
		seen := map[int]bool{}
		for _, r := range f.Regions {
			if seen[r.ID] {
				t.Errorf("frame %d has duplicate region ID %d", i, r.ID)
			}
			seen[r.ID] = true
		}
	}
}

func TestGenerateObjectMoves(t *testing.T) {
	seg, err := Generate(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	find := func(f Frame) Region {
		for _, r := range f.Regions {
			if r.Label == "obj0" {
				return r
			}
		}
		t.Fatal("object region not found")
		return Region{}
	}
	first := find(seg.Frames[0])
	last := find(seg.Frames[9])
	if last.Centroid.X <= first.Centroid.X {
		t.Errorf("object did not move east: %v -> %v", first.Centroid, last.Centroid)
	}
	if first.Centroid.X != 10 {
		t.Errorf("first centroid X = %v, want 10", first.Centroid.X)
	}
	if last.Centroid.X != 310 {
		t.Errorf("last centroid X = %v, want 310", last.Centroid.X)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := simpleConfig()
	cfg.Jitter = 2
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Regions {
			if a.Frames[i].Regions[j] != b.Frames[i].Regions[j] {
				t.Fatalf("frame %d region %d differs between identical configs", i, j)
			}
		}
	}
}

func TestGenerateJitterStaysInBounds(t *testing.T) {
	cfg := simpleConfig()
	cfg.Jitter = 10
	seg, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(cfg.Width, cfg.Height)}
	for _, f := range seg.Frames {
		for _, r := range f.Regions {
			if !bounds.Contains(r.Centroid) {
				t.Fatalf("region centroid %v outside frame bounds", r.Centroid)
			}
			if r.Size < 1 {
				t.Fatalf("region size %v below 1", r.Size)
			}
			for _, c := range []float64{r.Color.R, r.Color.G, r.Color.B} {
				if c < 0 || c > 1 {
					t.Fatalf("color component %v outside [0,1]", c)
				}
			}
		}
	}
}

func TestGenerateObjectActiveRange(t *testing.T) {
	cfg := simpleConfig()
	cfg.Objects[0].Start = 3
	cfg.Objects[0].End = 7
	seg, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range seg.Frames {
		has := false
		for _, r := range f.Regions {
			if r.Label == "obj0" {
				has = true
			}
		}
		want := i >= 3 && i < 7
		if has != want {
			t.Errorf("frame %d: object present = %v, want %v", i, has, want)
		}
	}
}

func TestSegmentDuration(t *testing.T) {
	seg, err := Generate(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := seg.Duration(), 10.0/12.0; got != want {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	empty := &Segment{}
	if empty.Duration() != 0 {
		t.Errorf("Duration with FPS=0 should be 0")
	}
}

func TestClipRefString(t *testing.T) {
	c := ClipRef{Stream: "Lab1", Segment: "seg001", FrameStart: 3, FrameEnd: 20}
	if got := c.String(); got != "Lab1/seg001[3:20]" {
		t.Errorf("String = %q", got)
	}
}

func TestStreamProfilesMatchTable1(t *testing.T) {
	want := map[string]int{"Lab1": 411, "Lab2": 147, "Traffic1": 195, "Traffic2": 203}
	profiles := StreamProfiles()
	if len(profiles) != 4 {
		t.Fatalf("got %d profiles, want 4", len(profiles))
	}
	for _, p := range profiles {
		if want[p.Name] != p.NumObjects {
			t.Errorf("%s: NumObjects = %d, want %d", p.Name, p.NumObjects, want[p.Name])
		}
	}
}

func TestGenerateStreamObjectCount(t *testing.T) {
	p := StreamProfile{Name: "Mini", Kind: KindLab, NumObjects: 10, SegmentFrames: 12, ObjectsPerSegment: 3}
	s, err := GenerateStream(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumObjects() != 10 {
		t.Errorf("NumObjects = %d, want 10", s.NumObjects())
	}
	// ceil(10 / 3) == 4 segments.
	if len(s.Segments) != 4 {
		t.Errorf("segments = %d, want 4", len(s.Segments))
	}
	for label, class := range s.Classes {
		if !strings.HasPrefix(label, "Mini-obj") {
			t.Errorf("unexpected label %q", label)
		}
		if class == "" {
			t.Errorf("label %q has empty class", label)
		}
	}
}

func TestGenerateStreamTrafficUsesLanes(t *testing.T) {
	p := StreamProfile{Name: "T", Kind: KindTraffic, NumObjects: 40, SegmentFrames: 12, ObjectsPerSegment: 4}
	s, err := GenerateStream(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, class := range s.Classes {
		counts[class]++
	}
	if counts["lane-east"]+counts["lane-west"] < counts["cross-south"] {
		t.Errorf("traffic lanes should dominate: %v", counts)
	}
	for class := range counts {
		switch class {
		case "lane-east", "lane-west", "cross-south":
		default:
			t.Errorf("unexpected traffic class %q", class)
		}
	}
}

func TestGenerateStreamErrors(t *testing.T) {
	if _, err := GenerateStream(StreamProfile{Name: "bad"}, 1); err == nil {
		t.Error("GenerateStream with zero objects did not error")
	}
}

func TestStreamKindString(t *testing.T) {
	if KindLab.String() != "lab" || KindTraffic.String() != "traffic" {
		t.Error("StreamKind.String mismatch")
	}
	if got := StreamKind(9).String(); got != "StreamKind(9)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestSampleIndexDistribution(t *testing.T) {
	// All weight on index 1 -> always 1.
	weights := []float64{0, 1, 0}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		if got := sampleIndex(rng, weights); got != 1 {
			t.Fatalf("sampleIndex = %d, want 1", got)
		}
	}
}

func TestApplyOcclusion(t *testing.T) {
	big := Region{Label: "truck", Size: 5000, Centroid: geom.Pt(100, 100), Color: graph.Gray(0.5)}
	hiddenBehind := Region{Label: "runner", Size: 200, Centroid: geom.Pt(110, 100)}
	clear := Region{Label: "runner", Size: 200, Centroid: geom.Pt(250, 100)}
	samePart := Region{Label: "truck", Size: 100, Centroid: geom.Pt(100, 102)}

	got := applyOcclusion([]Region{big, hiddenBehind, clear, samePart})
	if len(got) != 3 {
		t.Fatalf("regions after occlusion = %d, want 3", len(got))
	}
	for _, r := range got {
		if r.Centroid == hiddenBehind.Centroid && r.Label == "runner" {
			t.Error("hidden region survived occlusion")
		}
	}
	// Same-object parts never occlude each other; the clear region stays.
	labels := map[string]int{}
	for _, r := range got {
		labels[r.Label]++
	}
	if labels["truck"] != 2 || labels["runner"] != 1 {
		t.Errorf("labels after occlusion = %v", labels)
	}
}

func TestGenerateWithOcclusionDisabledKeepsAll(t *testing.T) {
	cfg := simpleConfig()
	cfg.Objects = append(cfg.Objects, ObjectSpec{
		Label: "blocker",
		Parts: []PartSpec{{Size: 9000, Color: graph.Gray(0.9)}},
		Path:  []geom.Point{geom.Pt(160, 120), geom.Pt(161, 120)},
		Start: 0, End: 10,
	})
	seg, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without Occlusion, both objects' regions exist in every frame.
	for _, f := range seg.Frames {
		count := 0
		for _, r := range f.Regions {
			if r.Label != "" {
				count++
			}
		}
		if count != 2 {
			t.Fatalf("object regions = %d, want 2 (occlusion off)", count)
		}
	}
}

func TestSegmentJSONRoundTrip(t *testing.T) {
	cfg := simpleConfig()
	cfg.Jitter = 1
	seg, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != seg.Name || len(got.Frames) != len(seg.Frames) {
		t.Fatalf("round trip shape: %s/%d vs %s/%d", got.Name, len(got.Frames), seg.Name, len(seg.Frames))
	}
	for i := range seg.Frames {
		for j := range seg.Frames[i].Regions {
			if got.Frames[i].Regions[j] != seg.Frames[i].Regions[j] {
				t.Fatalf("frame %d region %d differs after round trip", i, j)
			}
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"garbage", "not json"},
		{"no frames", `{"Name":"x","Width":10,"Height":10,"FPS":1,"Frames":[]}`},
		{"bad dims", `{"Name":"x","Width":0,"Height":10,"Frames":[{"Index":0}]}`},
		{"bad index", `{"Name":"x","Width":10,"Height":10,"Frames":[{"Index":3}]}`},
		{"dup region id", `{"Name":"x","Width":10,"Height":10,"Frames":[{"Index":0,"Regions":[
			{"ID":1,"Size":5,"Centroid":{"X":1,"Y":1}},{"ID":1,"Size":5,"Centroid":{"X":2,"Y":2}}]}]}`},
		{"zero size region", `{"Name":"x","Width":10,"Height":10,"Frames":[{"Index":0,"Regions":[
			{"ID":1,"Size":0,"Centroid":{"X":1,"Y":1}}]}]}`},
		{"out of bounds", `{"Name":"x","Width":10,"Height":10,"Frames":[{"Index":0,"Regions":[
			{"ID":1,"Size":5,"Centroid":{"X":99,"Y":1}}]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.body)); err == nil {
				t.Error("invalid segment accepted")
			}
		})
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat("x"); err == nil {
		t.Error("Concat of nothing did not error")
	}
	a, err := Generate(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := simpleConfig()
	cfg.Width = 640 // dimension mismatch
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Concat("x", a, b); err == nil {
		t.Error("Concat with mismatched dimensions did not error")
	}
}

func TestConcatRenumbersFrames(t *testing.T) {
	a, _ := Generate(simpleConfig())
	b, _ := Generate(simpleConfig())
	joined, err := Concat("j", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Frames) != 20 {
		t.Fatalf("frames = %d, want 20", len(joined.Frames))
	}
	for i, f := range joined.Frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
	}
}
