package video

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// ErrFrameOrder is the sentinel wrapped by every frame-numbering violation:
// out-of-order, duplicated, or gapped frame indices. Callers that stream
// frames (the feed API) branch on it with errors.Is to map the failure to a
// protocol-level error rather than a generic bad-request.
var ErrFrameOrder = errors.New("video: frame order violation")

// FrameOrderError reports a frame whose declared index does not match its
// position in the stream. OnlineBuilder tracking assumes consecutive frames;
// accepting a non-monotone index would silently corrupt chain ordering on
// replay, so validation rejects it with the positions spelled out.
type FrameOrderError struct {
	Segment string // segment name, "" when validating a bare stream
	Index   int    // the frame's declared index
	Want    int    // the index its stream position requires
}

func (e *FrameOrderError) Error() string {
	where := "stream"
	if e.Segment != "" {
		where = "segment " + e.Segment
	}
	return fmt.Sprintf("video: %s frame at position %d has index %d: %v", where, e.Want, e.Index, ErrFrameOrder)
}

// Unwrap makes errors.Is(err, ErrFrameOrder) true.
func (e *FrameOrderError) Unwrap() error { return ErrFrameOrder }

// WriteJSON encodes the segment as JSON. Together with ReadJSON it is the
// interchange path for real segmentation output: any external segmenter
// (EDISON, a neural model, ...) that can emit per-frame region lists can
// feed the pipeline.
func (s *Segment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("video: encoding segment %s: %w", s.Name, err)
	}
	return nil
}

// ReadJSON decodes a segment written by WriteJSON (or produced by an
// external tool following the same schema) and validates it.
func ReadJSON(r io.Reader) (*Segment, error) {
	var s Segment
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("video: decoding segment: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural invariants of a deserialized segment: frame
// indices must be consecutive from zero, region IDs unique per frame, and
// geometry inside the frame bounds.
func (s *Segment) Validate() error {
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("video: segment %s has non-positive dimensions %gx%g", s.Name, s.Width, s.Height)
	}
	if len(s.Frames) == 0 {
		return fmt.Errorf("video: segment %s has no frames", s.Name)
	}
	for i, f := range s.Frames {
		if f.Index != i {
			return &FrameOrderError{Segment: s.Name, Index: f.Index, Want: i}
		}
		if err := f.Validate(s.Width, s.Height); err != nil {
			return fmt.Errorf("video: segment %s frame %d: %w", s.Name, i, err)
		}
	}
	return nil
}

// Validate checks one frame's regions against the enclosing dimensions:
// region IDs unique, sizes positive, centroids inside the frame. Frame-index
// monotonicity is the caller's concern (Segment.Validate for whole segments,
// the feed's per-stream counter for live ingestion).
func (f *Frame) Validate(width, height float64) error {
	seen := make(map[int]bool, len(f.Regions))
	for _, r := range f.Regions {
		if seen[r.ID] {
			return fmt.Errorf("duplicate region ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Size <= 0 {
			return fmt.Errorf("region %d has size %g", r.ID, r.Size)
		}
		if r.Centroid.X < 0 || r.Centroid.X > width || r.Centroid.Y < 0 || r.Centroid.Y > height {
			return fmt.Errorf("region %d centroid %v outside %gx%g", r.ID, r.Centroid, width, height)
		}
	}
	return nil
}
