package video

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON encodes the segment as JSON. Together with ReadJSON it is the
// interchange path for real segmentation output: any external segmenter
// (EDISON, a neural model, ...) that can emit per-frame region lists can
// feed the pipeline.
func (s *Segment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("video: encoding segment %s: %w", s.Name, err)
	}
	return nil
}

// ReadJSON decodes a segment written by WriteJSON (or produced by an
// external tool following the same schema) and validates it.
func ReadJSON(r io.Reader) (*Segment, error) {
	var s Segment
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("video: decoding segment: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural invariants of a deserialized segment: frame
// indices must be consecutive from zero, region IDs unique per frame, and
// geometry inside the frame bounds.
func (s *Segment) Validate() error {
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("video: segment %s has non-positive dimensions %gx%g", s.Name, s.Width, s.Height)
	}
	if len(s.Frames) == 0 {
		return fmt.Errorf("video: segment %s has no frames", s.Name)
	}
	for i, f := range s.Frames {
		if f.Index != i {
			return fmt.Errorf("video: segment %s frame %d has index %d", s.Name, i, f.Index)
		}
		seen := make(map[int]bool, len(f.Regions))
		for _, r := range f.Regions {
			if seen[r.ID] {
				return fmt.Errorf("video: segment %s frame %d has duplicate region ID %d", s.Name, i, r.ID)
			}
			seen[r.ID] = true
			if r.Size <= 0 {
				return fmt.Errorf("video: segment %s frame %d region %d has size %g", s.Name, i, r.ID, r.Size)
			}
			if r.Centroid.X < 0 || r.Centroid.X > s.Width || r.Centroid.Y < 0 || r.Centroid.Y > s.Height {
				return fmt.Errorf("video: segment %s frame %d region %d centroid %v outside %gx%g",
					s.Name, i, r.ID, r.Centroid, s.Width, s.Height)
			}
		}
	}
	return nil
}
