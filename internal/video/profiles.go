package video

import (
	"fmt"
	"math/rand"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
)

// StreamKind selects the scene style of a stream profile.
type StreamKind int

const (
	// KindLab mimics the paper's indoor laboratory streams: people moving
	// in varied patterns (horizontal, vertical, diagonal, U-turns).
	KindLab StreamKind = iota
	// KindTraffic mimics the outdoor traffic streams: vehicles in mostly
	// uniform bidirectional lanes, which is why the paper observes lower
	// clustering error there.
	KindTraffic
)

// String implements fmt.Stringer.
func (k StreamKind) String() string {
	switch k {
	case KindLab:
		return "lab"
	case KindTraffic:
		return "traffic"
	default:
		return fmt.Sprintf("StreamKind(%d)", int(k))
	}
}

// StreamProfile describes one of the four real-data streams of Table 1.
// NumObjects matches the paper's OG counts exactly; ReportedDuration is the
// paper's wall-clock duration, kept for the regenerated table (the synthetic
// streams are time-scaled: what matters downstream is the number and
// variety of object appearances, not idle hours of unchanged background).
type StreamProfile struct {
	Name              string
	Kind              StreamKind
	NumObjects        int
	ReportedDuration  string
	SegmentFrames     int
	ObjectsPerSegment int
}

// StreamProfiles returns the four stream profiles of Table 1.
func StreamProfiles() []StreamProfile {
	return []StreamProfile{
		{Name: "Lab1", Kind: KindLab, NumObjects: 411, ReportedDuration: "40 hour 38 min", SegmentFrames: 24, ObjectsPerSegment: 2},
		{Name: "Lab2", Kind: KindLab, NumObjects: 147, ReportedDuration: "4 hour 12 min", SegmentFrames: 24, ObjectsPerSegment: 2},
		{Name: "Traffic1", Kind: KindTraffic, NumObjects: 195, ReportedDuration: "15 min", SegmentFrames: 24, ObjectsPerSegment: 2},
		{Name: "Traffic2", Kind: KindTraffic, NumObjects: 203, ReportedDuration: "12 min", SegmentFrames: 24, ObjectsPerSegment: 2},
	}
}

// Stream is a generated video stream: a sequence of single-background
// segments plus the ground-truth motion-pattern class of every object.
type Stream struct {
	Profile  StreamProfile
	Segments []*Segment
	// Classes maps an object label (Region.Label) to its motion pattern
	// class, e.g. "horizontal-east". Used only for evaluation.
	Classes map[string]string
}

// NumObjects returns the total number of generated objects.
func (s *Stream) NumObjects() int { return len(s.Classes) }

// motionPattern is one entry of a profile's pattern repertoire.
type motionPattern struct {
	class string
	// path generates a waypoint polyline inside a w x h frame using rng
	// for lane/offset variation.
	path func(rng *rand.Rand, w, h float64) []geom.Point
}

// labPatterns is the varied indoor repertoire. Each pattern walks a fixed
// corridor (lane) with small per-object jitter: lab traffic follows the
// room's layout, so repeated appearances of a pattern form a tight
// positional cluster — the structure the BIC scan of Figure 8 detects.
func labPatterns() []motionPattern {
	lane := func(rng *rand.Rand, center float64) float64 {
		return center + rng.NormFloat64()*2.5
	}
	return []motionPattern{
		{"horizontal-east", func(rng *rand.Rand, w, h float64) []geom.Point {
			y := lane(rng, 0.30*h)
			return []geom.Point{geom.Pt(0.05*w, y), geom.Pt(0.95*w, y)}
		}},
		{"horizontal-west", func(rng *rand.Rand, w, h float64) []geom.Point {
			y := lane(rng, 0.70*h)
			return []geom.Point{geom.Pt(0.95*w, y), geom.Pt(0.05*w, y)}
		}},
		{"vertical-south", func(rng *rand.Rand, w, h float64) []geom.Point {
			x := lane(rng, 0.25*w)
			return []geom.Point{geom.Pt(x, 0.05*h), geom.Pt(x, 0.95*h)}
		}},
		{"vertical-north", func(rng *rand.Rand, w, h float64) []geom.Point {
			x := lane(rng, 0.75*w)
			return []geom.Point{geom.Pt(x, 0.95*h), geom.Pt(x, 0.05*h)}
		}},
		{"diagonal-se", func(rng *rand.Rand, w, h float64) []geom.Point {
			d := lane(rng, 0)
			return []geom.Point{geom.Pt(0.05*w, 0.1*h+d), geom.Pt(0.95*w, 0.9*h+d)}
		}},
		{"diagonal-nw", func(rng *rand.Rand, w, h float64) []geom.Point {
			d := lane(rng, 0)
			return []geom.Point{geom.Pt(0.95*w, 0.9*h+d), geom.Pt(0.05*w, 0.1*h+d)}
		}},
		{"uturn-east", func(rng *rand.Rand, w, h float64) []geom.Point {
			y := lane(rng, 0.45*h)
			return []geom.Point{geom.Pt(0.05*w, y), geom.Pt(0.85*w, y), geom.Pt(0.85*w, y+0.08*h), geom.Pt(0.05*w, y+0.08*h)}
		}},
		{"uturn-south", func(rng *rand.Rand, w, h float64) []geom.Point {
			x := lane(rng, 0.5*w)
			return []geom.Point{geom.Pt(x, 0.05*h), geom.Pt(x, 0.85*h), geom.Pt(x+0.08*w, 0.85*h), geom.Pt(x+0.08*w, 0.05*h)}
		}},
	}
}

// trafficPatterns is the uniform outdoor repertoire: two lanes each way plus
// an occasional cross street.
func trafficPatterns() []motionPattern {
	return []motionPattern{
		{"lane-east", func(rng *rand.Rand, w, h float64) []geom.Point {
			y := 0.35*h + rng.Float64()*0.08*h
			return []geom.Point{geom.Pt(0.02*w, y), geom.Pt(0.98*w, y)}
		}},
		{"lane-west", func(rng *rand.Rand, w, h float64) []geom.Point {
			y := 0.55*h + rng.Float64()*0.08*h
			return []geom.Point{geom.Pt(0.98*w, y), geom.Pt(0.02*w, y)}
		}},
		{"cross-south", func(rng *rand.Rand, w, h float64) []geom.Point {
			x := 0.45*w + rng.Float64()*0.1*w
			return []geom.Point{geom.Pt(x, 0.02*h), geom.Pt(x, 0.98*h)}
		}},
	}
}

// patternWeights returns per-kind sampling weights aligned with the
// repertoire order; traffic is dominated by the two lanes.
func patternWeights(kind StreamKind, n int) []float64 {
	w := make([]float64, n)
	switch kind {
	case KindTraffic:
		// lane-east, lane-west dominate; cross traffic is rare.
		copy(w, []float64{0.45, 0.45, 0.10})
	default:
		for i := range w {
			w[i] = 1 / float64(n)
		}
	}
	return w
}

// objectTemplate builds the part list for one object. Lab objects are
// person-like (head / torso / legs, three regions); traffic objects are
// vehicle-like (body / cabin, two regions).
func objectTemplate(kind StreamKind, rng *rand.Rand) []PartSpec {
	switch kind {
	case KindTraffic:
		base := 0.15 + rng.Float64()*0.5
		return []PartSpec{
			{Offset: geom.Vec(0, 0), Size: 620 + rng.Float64()*280, Color: graph.Color{R: base, G: base * 0.4, B: 1 - base}},
			{Offset: geom.Vec(0, -9), Size: 210 + rng.Float64()*90, Color: graph.Color{R: 0.12, G: 0.12, B: 0.16}},
		}
	default:
		// Clothing varies per person — which is what lets a tracker keep
		// identities apart when two people cross paths.
		shirt := rng.Float64()
		pants := rng.Float64()
		skin := 0.55 + rng.Float64()*0.35
		return []PartSpec{
			{Offset: geom.Vec(0, -16), Size: 95 + rng.Float64()*35, Color: graph.Color{R: skin, G: skin * 0.8, B: skin * 0.62}},
			{Offset: geom.Vec(0, 0), Size: 310 + rng.Float64()*120, Color: graph.Color{R: shirt, G: 0.25, B: 1 - shirt}},
			{Offset: geom.Vec(0, 17), Size: 240 + rng.Float64()*90, Color: graph.Color{R: pants * 0.5, G: 0.15 + pants*0.3, B: 0.2 + pants*0.6}},
		}
	}
}

// GenerateStream renders a full stream for the given profile. The object
// count matches the profile exactly; objects are distributed over as many
// segments as needed.
func GenerateStream(p StreamProfile, seed int64) (*Stream, error) {
	if p.NumObjects <= 0 {
		return nil, fmt.Errorf("video: profile %q has no objects", p.Name)
	}
	if p.SegmentFrames <= 0 {
		p.SegmentFrames = 24
	}
	if p.ObjectsPerSegment <= 0 {
		p.ObjectsPerSegment = 3
	}
	rng := rand.New(rand.NewSource(seed))
	var patterns []motionPattern
	switch p.Kind {
	case KindTraffic:
		patterns = trafficPatterns()
	default:
		patterns = labPatterns()
	}
	weights := patternWeights(p.Kind, len(patterns))

	stream := &Stream{Profile: p, Classes: make(map[string]string, p.NumObjects)}
	const w, h = 320.0, 240.0
	objIdx := 0
	for segIdx := 0; objIdx < p.NumObjects; segIdx++ {
		cfg := SceneConfig{
			Name:           fmt.Sprintf("%s-seg%03d", p.Name, segIdx),
			Width:          w,
			Height:         h,
			FPS:            12,
			Frames:         p.SegmentFrames,
			BackgroundRows: 3,
			BackgroundCols: 4,
			Jitter:         0.8,
			Seed:           rng.Int63(),
		}
		// Patterns are drawn without replacement within a segment: two
		// same-speed objects sharing one lane simultaneously are a convoy
		// that no tracker (or human) could separate, and real segments
		// rarely contain one.
		used := make(map[int]bool, p.ObjectsPerSegment)
		for k := 0; k < p.ObjectsPerSegment && objIdx < p.NumObjects; k++ {
			pi := sampleIndex(rng, weights)
			if len(used) < len(patterns) {
				for used[pi] {
					pi = sampleIndex(rng, weights)
				}
			}
			used[pi] = true
			pat := patterns[pi]
			label := fmt.Sprintf("%s-obj%04d", p.Name, objIdx)
			// Entry time varies; duration (and hence speed along the
			// pattern's path) is fixed, so appearances of one pattern are
			// time-shifted copies — the variation EGED is built to absorb.
			start := rng.Intn(3)
			end := start + cfg.Frames - 3
			cfg.Objects = append(cfg.Objects, ObjectSpec{
				Label: label,
				Parts: objectTemplate(p.Kind, rng),
				Path:  pat.path(rng, w, h),
				Start: start,
				End:   end,
			})
			stream.Classes[label] = pat.class
			objIdx++
		}
		seg, err := Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("video: generating %s: %w", cfg.Name, err)
		}
		stream.Segments = append(stream.Segments, seg)
	}
	return stream, nil
}

// sampleIndex draws an index from the discrete distribution given by
// weights (not necessarily normalized).
func sampleIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
