// Package video provides the video substrate for the STRG pipeline.
//
// The paper runs EDISON (mean-shift) color segmentation over real camera
// streams and feeds the resulting region lists into RAG construction. This
// package substitutes that front end with a synthetic scene generator that
// emits segmented frames directly: a static, jittered background region grid
// plus moving objects composed of several regions each. Everything
// downstream of segmentation (RAG, tracking, STRG, decomposition, indexing)
// consumes only region lists, so the substitution exercises the identical
// code paths while keeping the repository self-contained. The jitter and
// deliberate object over-splitting reproduce the segmentation instabilities
// (region split/merge, illumination drift) the tracker and the OG-merging
// step were designed to survive.
package video

import (
	"fmt"
	"math"
	"math/rand"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
)

// Region is one segmented homogeneous color region of a frame: the unit the
// whole pipeline is built on. Label carries the generating object's identity
// ("" for background); it is ground truth for evaluation and is never used
// by matching or indexing.
type Region struct {
	ID       int
	Centroid geom.Point
	Size     float64 // area in pixels
	Color    graph.Color
	Label    string
}

// Frame is one segmented video frame.
type Frame struct {
	Index   int
	Regions []Region
}

// Segment is a contiguous run of frames sharing one background — the unit
// of STRG construction (Definition 2 is defined over "a video segment S").
type Segment struct {
	Name   string
	Width  float64
	Height float64
	FPS    float64
	Frames []Frame
}

// Duration returns the segment length in seconds.
func (s *Segment) Duration() float64 {
	if s.FPS <= 0 {
		return 0
	}
	return float64(len(s.Frames)) / s.FPS
}

// ClipRef identifies a clip of video on "disk" — the payload the index's
// leaf records point at.
type ClipRef struct {
	Stream     string
	Segment    string
	FrameStart int
	FrameEnd   int
}

// String implements fmt.Stringer.
func (c ClipRef) String() string {
	return fmt.Sprintf("%s/%s[%d:%d]", c.Stream, c.Segment, c.FrameStart, c.FrameEnd)
}

// PartSpec is one region of a composite object, positioned relative to the
// object's trajectory point. Real segmentation splits a single object
// (e.g. a person) into several color regions; objects here do the same so
// the ORG-merging step has real work to do.
type PartSpec struct {
	Offset geom.Vector
	Size   float64
	Color  graph.Color
}

// ObjectSpec describes one moving object in a scene.
type ObjectSpec struct {
	Label string
	Parts []PartSpec
	// Path is the trajectory waypoint polyline; the object's anchor point
	// moves along it with uniform arc-length speed.
	Path []geom.Point
	// Start and End delimit the active frame range [Start, End).
	Start, End int
}

// SceneConfig configures the synthetic scene generator.
type SceneConfig struct {
	Name   string
	Width  float64
	Height float64
	FPS    float64
	Frames int
	// BackgroundRows x BackgroundCols static regions tile the frame.
	BackgroundRows int
	BackgroundCols int
	// Jitter is the magnitude of the per-frame segmentation noise:
	// centroid displacement in pixels; size and color wobble scale with it.
	Jitter float64
	// BackgroundShade offsets the background palette; scenes with
	// different shades read as different locations (used to exercise shot
	// boundary detection).
	BackgroundShade float64
	// Occlusion drops an object region when a larger object region covers
	// its centroid — what a real segmenter does when one object passes in
	// front of another. Exercises the tracker's gap bridging.
	Occlusion bool
	Seed      int64
	Objects   []ObjectSpec
}

// Validate checks the configuration for obvious mistakes.
func (c *SceneConfig) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("video: non-positive frame dimensions %gx%g", c.Width, c.Height)
	}
	if c.Frames <= 0 {
		return fmt.Errorf("video: non-positive frame count %d", c.Frames)
	}
	if c.BackgroundRows < 0 || c.BackgroundCols < 0 {
		return fmt.Errorf("video: negative background grid %dx%d", c.BackgroundRows, c.BackgroundCols)
	}
	for i, o := range c.Objects {
		if len(o.Parts) == 0 {
			return fmt.Errorf("video: object %d (%q) has no parts", i, o.Label)
		}
		if len(o.Path) == 0 {
			return fmt.Errorf("video: object %d (%q) has no path", i, o.Label)
		}
		if o.Start < 0 || o.End > c.Frames || o.Start >= o.End {
			return fmt.Errorf("video: object %d (%q) active range [%d, %d) outside frames [0, %d)",
				i, o.Label, o.Start, o.End, c.Frames)
		}
	}
	return nil
}

// Generate renders the scene into a Segment. Generation is deterministic
// for a given configuration (including Seed).
func Generate(cfg SceneConfig) (*Segment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seg := &Segment{
		Name:   cfg.Name,
		Width:  cfg.Width,
		Height: cfg.Height,
		FPS:    cfg.FPS,
		Frames: make([]Frame, cfg.Frames),
	}
	bg := backgroundRegions(cfg)
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(cfg.Width, cfg.Height)}

	// Precompute per-object resampled trajectories, one anchor point per
	// active frame.
	anchors := make([][]geom.Point, len(cfg.Objects))
	for i, o := range cfg.Objects {
		anchors[i] = geom.ResamplePath(o.Path, o.End-o.Start)
	}

	for f := 0; f < cfg.Frames; f++ {
		frame := Frame{Index: f}
		nextID := 0
		emit := func(r Region) {
			r.ID = nextID
			nextID++
			frame.Regions = append(frame.Regions, r)
		}
		for _, r := range bg {
			emit(jitterRegion(r, cfg.Jitter, rng, bounds))
		}
		var objectRegions []Region
		for i, o := range cfg.Objects {
			if f < o.Start || f >= o.End {
				continue
			}
			anchor := anchors[i][f-o.Start]
			for _, p := range o.Parts {
				r := Region{
					Centroid: bounds.Clamp(anchor.Add(p.Offset)),
					Size:     p.Size,
					Color:    p.Color,
					Label:    o.Label,
				}
				objectRegions = append(objectRegions, jitterRegion(r, cfg.Jitter, rng, bounds))
			}
		}
		if cfg.Occlusion {
			objectRegions = applyOcclusion(objectRegions)
		}
		for _, r := range objectRegions {
			emit(r)
		}
		seg.Frames[f] = frame
	}
	return seg, nil
}

// backgroundRegions lays out the static background grid.
func backgroundRegions(cfg SceneConfig) []Region {
	if cfg.BackgroundRows == 0 || cfg.BackgroundCols == 0 {
		return nil
	}
	cellW := cfg.Width / float64(cfg.BackgroundCols)
	cellH := cfg.Height / float64(cfg.BackgroundRows)
	var out []Region
	for r := 0; r < cfg.BackgroundRows; r++ {
		for c := 0; c < cfg.BackgroundCols; c++ {
			// Deterministic muted color per cell so background regions are
			// distinguishable from each other and from objects.
			shade := 0.35 + cfg.BackgroundShade + 0.4*float64((r*cfg.BackgroundCols+c)%5)/5
			shade = clamp01(shade)
			out = append(out, Region{
				Centroid: geom.Pt((float64(c)+0.5)*cellW, (float64(r)+0.5)*cellH),
				Size:     cellW * cellH,
				Color:    graph.Color{R: shade, G: shade, B: shade * 0.9},
				Label:    "",
			})
		}
	}
	return out
}

// applyOcclusion removes object regions whose centroid falls inside a
// larger region of a different object — the smaller region is hidden
// behind the larger one and the segmenter never sees it.
func applyOcclusion(regions []Region) []Region {
	out := regions[:0]
	for i, r := range regions {
		hidden := false
		for j, other := range regions {
			if i == j || other.Label == r.Label || other.Size <= r.Size {
				continue
			}
			radius := math.Sqrt(other.Size / math.Pi)
			if r.Centroid.Dist(other.Centroid) < radius {
				hidden = true
				break
			}
		}
		if !hidden {
			out = append(out, r)
		}
	}
	return out
}

// jitterRegion applies per-frame segmentation noise to a region.
func jitterRegion(r Region, jitter float64, rng *rand.Rand, bounds geom.Rect) Region {
	if jitter <= 0 {
		return r
	}
	r.Centroid = bounds.Clamp(geom.Pt(
		r.Centroid.X+rng.NormFloat64()*jitter,
		r.Centroid.Y+rng.NormFloat64()*jitter,
	))
	r.Size *= 1 + rng.NormFloat64()*jitter*0.01
	if r.Size < 1 {
		r.Size = 1
	}
	wobble := rng.NormFloat64() * jitter * 0.004
	r.Color = graph.Color{
		R: clamp01(r.Color.R + wobble),
		G: clamp01(r.Color.G + wobble),
		B: clamp01(r.Color.B + wobble),
	}
	return r
}

// Concat joins segments into one continuous segment (frame indices are
// renumbered), as a camera recording across scene changes would produce.
// All inputs must share dimensions and FPS.
func Concat(name string, segs ...*Segment) (*Segment, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("video: Concat of no segments")
	}
	out := &Segment{
		Name:   name,
		Width:  segs[0].Width,
		Height: segs[0].Height,
		FPS:    segs[0].FPS,
	}
	for _, s := range segs {
		if s.Width != out.Width || s.Height != out.Height || s.FPS != out.FPS {
			return nil, fmt.Errorf("video: Concat dimension/FPS mismatch in %s", s.Name)
		}
		for _, f := range s.Frames {
			f.Index = len(out.Frames)
			out.Frames = append(out.Frames, f)
		}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
