package video

import (
	"errors"
	"strings"
	"testing"

	"strgindex/internal/geom"
)

func orderSegment(indices ...int) *Segment {
	s := &Segment{Name: "order", Width: 100, Height: 100, FPS: 1}
	for _, idx := range indices {
		s.Frames = append(s.Frames, Frame{
			Index:   idx,
			Regions: []Region{{ID: 0, Centroid: geom.Pt(10, 10), Size: 5}},
		})
	}
	return s
}

// TestValidateFrameOrder rejects every non-monotone frame numbering with the
// typed error: reversed, duplicated, gapped, and offset streams all corrupt
// OnlineBuilder chain ordering if replayed, so none may pass.
func TestValidateFrameOrder(t *testing.T) {
	tests := []struct {
		name    string
		indices []int
		ok      bool
	}{
		{"consecutive", []int{0, 1, 2}, true},
		{"single", []int{0}, true},
		{"reversed", []int{2, 1, 0}, false},
		{"duplicate", []int{0, 0, 1}, false},
		{"gap", []int{0, 1, 3}, false},
		{"offset start", []int{1, 2, 3}, false},
		{"negative", []int{-1, 0, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := orderSegment(tt.indices...).Validate()
			if tt.ok {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("non-monotone frame numbering accepted")
			}
			if !errors.Is(err, ErrFrameOrder) {
				t.Errorf("error %v does not wrap ErrFrameOrder", err)
			}
			var foe *FrameOrderError
			if !errors.As(err, &foe) {
				t.Fatalf("error %v is not a *FrameOrderError", err)
			}
			if foe.Segment != "order" {
				t.Errorf("FrameOrderError.Segment = %q, want %q", foe.Segment, "order")
			}
		})
	}
}

// TestReadJSONFrameOrderTyped proves the typed error survives the ReadJSON
// path — the regression the issue names: deserialized segments with shuffled
// frame numbers must be rejected, not silently accepted.
func TestReadJSONFrameOrderTyped(t *testing.T) {
	body := `{"Name":"x","Width":10,"Height":10,"FPS":1,"Frames":[
		{"Index":0,"Regions":[{"ID":0,"Size":5,"Centroid":{"X":1,"Y":1}}]},
		{"Index":2,"Regions":[{"ID":0,"Size":5,"Centroid":{"X":1,"Y":1}}]},
		{"Index":1,"Regions":[{"ID":0,"Size":5,"Centroid":{"X":1,"Y":1}}]}]}`
	_, err := ReadJSON(strings.NewReader(body))
	if err == nil {
		t.Fatal("shuffled frame indices accepted")
	}
	if !errors.Is(err, ErrFrameOrder) {
		t.Errorf("ReadJSON error %v does not wrap ErrFrameOrder", err)
	}
	var foe *FrameOrderError
	if !errors.As(err, &foe) {
		t.Fatalf("ReadJSON error %v is not a *FrameOrderError", err)
	}
	if foe.Index != 2 || foe.Want != 1 {
		t.Errorf("FrameOrderError = {Index:%d Want:%d}, want {Index:2 Want:1}", foe.Index, foe.Want)
	}
}

func TestFrameValidate(t *testing.T) {
	good := Frame{Regions: []Region{{ID: 0, Centroid: geom.Pt(5, 5), Size: 2}}}
	if err := good.Validate(10, 10); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	tests := []struct {
		name string
		f    Frame
	}{
		{"dup id", Frame{Regions: []Region{
			{ID: 1, Centroid: geom.Pt(1, 1), Size: 2}, {ID: 1, Centroid: geom.Pt(2, 2), Size: 2}}}},
		{"zero size", Frame{Regions: []Region{{ID: 0, Centroid: geom.Pt(1, 1), Size: 0}}}},
		{"out of bounds", Frame{Regions: []Region{{ID: 0, Centroid: geom.Pt(99, 1), Size: 2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.f.Validate(10, 10); err == nil {
				t.Error("invalid frame accepted")
			}
		})
	}
}
