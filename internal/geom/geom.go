// Package geom provides the small amount of 2-D geometry the STRG pipeline
// needs: points, vectors, orientations, rectangles and sequence resampling.
//
// All angles are expressed in radians in the half-open interval [0, 2π).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the frame plane. Video frames use pixel
// coordinates with the origin at the top-left corner, x growing right and
// y growing down, but nothing in this package depends on that convention.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for comparisons.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Vector is a displacement in the frame plane.
type Vector struct {
	DX, DY float64
}

// Vec is shorthand for Vector{dx, dy}.
func Vec(dx, dy float64) Vector { return Vector{DX: dx, DY: dy} }

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.DX * s, v.DY * s} }

// Add returns the component-wise sum of v and w.
func (v Vector) Add(w Vector) Vector { return Vector{v.DX + w.DX, v.DY + w.DY} }

// Angle returns the orientation of v in [0, 2π). The zero vector has
// orientation 0.
func (v Vector) Angle() float64 {
	if v.DX == 0 && v.DY == 0 {
		return 0
	}
	return NormalizeAngle(math.Atan2(v.DY, v.DX))
}

// Dot returns the dot product of v and w.
func (v Vector) Dot(w Vector) float64 { return v.DX*w.DX + v.DY*w.DY }

// NormalizeAngle maps an arbitrary angle in radians into [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the absolute difference between two orientations,
// folded into [0, π]. It is the natural distance on the circle.
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// Orientation returns the orientation of the segment from p to q, in
// [0, 2π).
func Orientation(p, q Point) float64 { return q.Sub(p).Angle() }

// Rect is an axis-aligned rectangle. Min is the corner with the smallest
// coordinates and Max the corner with the largest; an empty rectangle has
// Min == Max.
type Rect struct {
	Min, Max Point
}

// RectAround returns the square of side 2r centered at p.
func RectAround(p Point, r float64) Rect {
	return Rect{Min: Point{p.X - r, p.Y - r}, Max: Point{p.X + r, p.Y + r}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether r and s overlap (touching borders count).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Clamp returns p moved to the closest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Centroid returns the arithmetic mean of pts. It panics if pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{sx / n, sy / n}
}

// ResamplePath resamples a polyline given by pts to exactly n points,
// uniformly spaced in arc length. It is used to compare and average
// trajectories of different lengths. It panics if pts is empty or n < 1.
// A single input point is replicated n times.
func ResamplePath(pts []Point, n int) []Point {
	if len(pts) == 0 {
		panic("geom: ResamplePath of empty path")
	}
	if n < 1 {
		panic("geom: ResamplePath to fewer than 1 point")
	}
	out := make([]Point, n)
	if len(pts) == 1 || n == 1 {
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	// Cumulative arc length.
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i].Dist(pts[i-1])
	}
	total := cum[len(cum)-1]
	if total == 0 {
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	seg := 0
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		for seg < len(pts)-2 && cum[seg+1] < target {
			seg++
		}
		span := cum[seg+1] - cum[seg]
		t := 0.0
		if span > 0 {
			t = (target - cum[seg]) / span
		}
		out[i] = pts[seg].Lerp(pts[seg+1], t)
	}
	return out
}

// PathLength returns the total arc length of the polyline pts.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i].Dist(pts[i-1])
	}
	return total
}
