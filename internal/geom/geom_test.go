package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 1), Pt(1, 1), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEq(got, tt.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); !almostEq(got, tt.want*tt.want) {
				t.Errorf("DistSq(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		a, b := Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by))
		return almostEq(a.Dist(b), b.Dist(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp 0 = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp 1 = %v, want %v", got, q)
	}
	mid := p.Lerp(q, 0.5)
	if !almostEq(mid.X, 5) || !almostEq(mid.Y, 10) {
		t.Errorf("Lerp 0.5 = %v, want (5, 10)", mid)
	}
}

func TestVectorAngle(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{"east", Vec(1, 0), 0},
		{"north-ish (y down)", Vec(0, 1), math.Pi / 2},
		{"west", Vec(-1, 0), math.Pi},
		{"south-ish", Vec(0, -1), 3 * math.Pi / 2},
		{"zero", Vec(0, 0), 0},
		{"diagonal", Vec(1, 1), math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Angle(); !almostEq(got, tt.want) {
				t.Errorf("Angle(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-4 * math.Pi, 0},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEq(got, tt.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		got := NormalizeAngle(a)
		return got >= 0 && got < 2*math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{"identical", 1, 1, 0},
		{"quarter turn", 0, math.Pi / 2, math.Pi / 2},
		{"wrap around", 0.1, 2*math.Pi - 0.1, 0.2},
		{"opposite", 0, math.Pi, math.Pi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AngleDiff(tt.a, tt.b); !almostEq(got, tt.want) {
				t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestAngleDiffSymmetricAndBounded(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		d1, d2 := AngleDiff(a, b), AngleDiff(b, a)
		return almostEq(d1, d2) && d1 >= 0 && d1 <= math.Pi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 2)}
	if got := r.Width(); got != 4 {
		t.Errorf("Width = %v, want 4", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v, want 2", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Center(); got != Pt(2, 1) {
		t.Errorf("Center = %v, want (2,1)", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},
		{Pt(10, 10), true},
		{Pt(-0.1, 5), false},
		{Pt(5, 10.1), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(5, 5)}
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlapping", Rect{Pt(3, 3), Pt(8, 8)}, true},
		{"touching edge", Rect{Pt(5, 0), Pt(8, 5)}, true},
		{"disjoint", Rect{Pt(6, 6), Pt(8, 8)}, false},
		{"contained", Rect{Pt(1, 1), Pt(2, 2)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		r := Rect{Min: Pt(math.Min(float64(ax), float64(bx)), math.Min(float64(ay), float64(by))),
			Max: Pt(math.Max(float64(ax), float64(bx)), math.Max(float64(ay), float64(by)))}
		s := Rect{Min: Pt(math.Min(float64(cx), float64(dx)), math.Min(float64(cy), float64(dy))),
			Max: Pt(math.Max(float64(cx), float64(dx)), math.Max(float64(cy), float64(dy)))}
		u := r.Union(s)
		return u.Contains(r.Min) && u.Contains(r.Max) && u.Contains(s.Min) && u.Contains(s.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	tests := []struct {
		in, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(12, 15), Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.in); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid of empty set did not panic")
		}
	}()
	Centroid(nil)
}

func TestResamplePath(t *testing.T) {
	path := []Point{Pt(0, 0), Pt(10, 0)}
	got := ResamplePath(path, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, p := range got {
		want := Pt(float64(i)*2.5, 0)
		if !almostEq(p.X, want.X) || !almostEq(p.Y, want.Y) {
			t.Errorf("point %d = %v, want %v", i, p, want)
		}
	}
}

func TestResamplePathEndpointsPreserved(t *testing.T) {
	path := []Point{Pt(0, 0), Pt(3, 4), Pt(10, -2), Pt(11, 0)}
	for _, n := range []int{2, 3, 7, 50} {
		got := ResamplePath(path, n)
		if got[0] != path[0] {
			t.Errorf("n=%d: first point %v, want %v", n, got[0], path[0])
		}
		last := got[len(got)-1]
		if !almostEq(last.X, 11) || !almostEq(last.Y, 0) {
			t.Errorf("n=%d: last point %v, want (11,0)", n, last)
		}
	}
}

func TestResamplePathSinglePoint(t *testing.T) {
	got := ResamplePath([]Point{Pt(3, 3)}, 4)
	for _, p := range got {
		if p != Pt(3, 3) {
			t.Errorf("resampled single point = %v, want (3,3)", p)
		}
	}
}

func TestResamplePathZeroLength(t *testing.T) {
	got := ResamplePath([]Point{Pt(1, 2), Pt(1, 2), Pt(1, 2)}, 3)
	for _, p := range got {
		if p != Pt(1, 2) {
			t.Errorf("resampled zero-length path = %v, want (1,2)", p)
		}
	}
}

func TestPathLength(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want float64
	}{
		{"empty", nil, 0},
		{"single", []Point{Pt(1, 1)}, 0},
		{"straight", []Point{Pt(0, 0), Pt(3, 4)}, 5},
		{"two segments", []Point{Pt(0, 0), Pt(3, 4), Pt(3, 10)}, 11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PathLength(tt.pts); !almostEq(got, tt.want) {
				t.Errorf("PathLength = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOrientation(t *testing.T) {
	if got := Orientation(Pt(0, 0), Pt(1, 1)); !almostEq(got, math.Pi/4) {
		t.Errorf("Orientation = %v, want pi/4", got)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vec(3, 4)
	if got := v.Len(); !almostEq(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.Scale(2); got != Vec(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := v.Add(Vec(1, -1)); got != Vec(4, 3) {
		t.Errorf("Add = %v, want (4,3)", got)
	}
	if got := v.Dot(Vec(2, 1)); !almostEq(got, 10) {
		t.Errorf("Dot = %v, want 10", got)
	}
}
