// Package shot segments a long video into single-background shots — the
// first of the paper's three issues ("how to efficiently parse a long
// video into meaningful smaller units"). The STRG of Definition 2 is
// defined per segment, so everything downstream assumes this parsing has
// happened.
//
// Detection compares consecutive frames' region sets: each region of one
// frame is greedily matched to a compatible, nearby region of the next
// (a cheap O(n²) stand-in for full RAG SimGraph — adequate because within
// a shot the background regions barely move, while across a cut most
// regions lose their counterpart). A similarity dip below the threshold
// is a cut.
package shot

import (
	"fmt"
	"sort"

	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// Config controls boundary detection.
type Config struct {
	// Tol decides region compatibility. The Centroid tolerance matters
	// here: background regions must match in place. Zero value uses a
	// default with Centroid = 25 px.
	Tol graph.Tolerance
	// SimThreshold is the frame-pair similarity below which a cut is
	// declared. Zero means 0.5.
	SimThreshold float64
	// MinShotFrames suppresses boundaries that would create shots shorter
	// than this many frames (flash suppression). Zero means 4.
	MinShotFrames int
}

func (c Config) withDefaults() Config {
	if c.Tol == (graph.Tolerance{}) {
		c.Tol = graph.DefaultTolerance()
		c.Tol.Centroid = 25
	}
	if c.SimThreshold <= 0 {
		c.SimThreshold = 0.5
	}
	if c.MinShotFrames <= 0 {
		c.MinShotFrames = 4
	}
	return c
}

// FrameSimilarity returns the fraction of the smaller frame's regions that
// find a compatible, unclaimed counterpart in the other frame (greedy
// nearest-first matching), in [0, 1].
func FrameSimilarity(a, b video.Frame, tol graph.Tolerance) float64 {
	if len(a.Regions) == 0 || len(b.Regions) == 0 {
		if len(a.Regions) == len(b.Regions) {
			return 1
		}
		return 0
	}
	type pair struct {
		i, j int
		d    float64
	}
	var pairs []pair
	for i, ra := range a.Regions {
		attrA := graph.NodeAttr{Size: ra.Size, Color: ra.Color, Centroid: ra.Centroid}
		for j, rb := range b.Regions {
			attrB := graph.NodeAttr{Size: rb.Size, Color: rb.Color, Centroid: rb.Centroid}
			if tol.NodesCompatible(attrA, attrB) {
				pairs = append(pairs, pair{i, j, ra.Centroid.Dist(rb.Centroid)})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].d != pairs[y].d {
			return pairs[x].d < pairs[y].d
		}
		if pairs[x].i != pairs[y].i {
			return pairs[x].i < pairs[y].i
		}
		return pairs[x].j < pairs[y].j
	})
	usedA := make(map[int]bool, len(a.Regions))
	usedB := make(map[int]bool, len(b.Regions))
	matched := 0
	for _, p := range pairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		matched++
	}
	minLen := len(a.Regions)
	if len(b.Regions) < minLen {
		minLen = len(b.Regions)
	}
	return float64(matched) / float64(minLen)
}

// DetectBoundaries returns the frame indices at which a new shot starts
// (never 0). Boundaries closer than MinShotFrames to the previous one are
// suppressed.
func DetectBoundaries(frames []video.Frame, cfg Config) []int {
	cfg = cfg.withDefaults()
	var cuts []int
	lastCut := 0
	for i := 1; i < len(frames); i++ {
		sim := FrameSimilarity(frames[i-1], frames[i], cfg.Tol)
		if sim < cfg.SimThreshold && i-lastCut >= cfg.MinShotFrames {
			cuts = append(cuts, i)
			lastCut = i
		}
	}
	return cuts
}

// Split parses a segment into single-shot segments at the detected
// boundaries. Shot names append a -shotN suffix; frame indices restart at
// zero within each shot (as Definition 2's per-segment STRG expects).
func Split(seg *video.Segment, cfg Config) []*video.Segment {
	cuts := DetectBoundaries(seg.Frames, cfg)
	bounds := append([]int{0}, cuts...)
	bounds = append(bounds, len(seg.Frames))
	var out []*video.Segment
	for s := 0; s+1 < len(bounds); s++ {
		shot := &video.Segment{
			Name:   shotName(seg.Name, s),
			Width:  seg.Width,
			Height: seg.Height,
			FPS:    seg.FPS,
		}
		for i := bounds[s]; i < bounds[s+1]; i++ {
			f := seg.Frames[i]
			f.Index = i - bounds[s]
			shot.Frames = append(shot.Frames, f)
		}
		out = append(out, shot)
	}
	return out
}

func shotName(base string, n int) string {
	return fmt.Sprintf("%s-shot%02d", base, n)
}
