package shot

import (
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// scene renders a short single-location clip with the given palette shade.
func scene(t *testing.T, name string, frames int, shade float64, seed int64) *video.Segment {
	t.Helper()
	seg, err := video.Generate(video.SceneConfig{
		Name: name, Width: 320, Height: 240, FPS: 12, Frames: frames,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 0.8,
		BackgroundShade: shade, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// multiScene concatenates scenes at different locations.
func multiScene(t *testing.T, frameCounts []int) (*video.Segment, []int) {
	t.Helper()
	var parts []*video.Segment
	var wantCuts []int
	total := 0
	for i, n := range frameCounts {
		parts = append(parts, scene(t, "p", n, float64(i)*0.3, int64(i+1)))
		total += n
		if i+1 < len(frameCounts) {
			wantCuts = append(wantCuts, total)
		}
	}
	joined, err := video.Concat("movie", parts...)
	if err != nil {
		t.Fatal(err)
	}
	return joined, wantCuts
}

func TestFrameSimilaritySameScene(t *testing.T) {
	seg := scene(t, "a", 10, 0, 1)
	tol := graph.DefaultTolerance()
	tol.Centroid = 25
	for i := 1; i < len(seg.Frames); i++ {
		if sim := FrameSimilarity(seg.Frames[i-1], seg.Frames[i], tol); sim < 0.9 {
			t.Errorf("within-scene similarity at %d = %v, want >= 0.9", i, sim)
		}
	}
}

func TestFrameSimilarityAcrossCut(t *testing.T) {
	a := scene(t, "a", 2, 0, 1)
	b := scene(t, "b", 2, 0.3, 2)
	tol := graph.DefaultTolerance()
	tol.Centroid = 25
	if sim := FrameSimilarity(a.Frames[0], b.Frames[0], tol); sim > 0.4 {
		t.Errorf("cross-scene similarity = %v, want <= 0.4", sim)
	}
}

func TestFrameSimilarityEmptyFrames(t *testing.T) {
	tol := graph.DefaultTolerance()
	empty := video.Frame{}
	full := video.Frame{Regions: []video.Region{{Size: 10}}}
	if got := FrameSimilarity(empty, empty, tol); got != 1 {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	if got := FrameSimilarity(empty, full, tol); got != 0 {
		t.Errorf("empty/full = %v, want 0", got)
	}
}

func TestDetectBoundaries(t *testing.T) {
	movie, wantCuts := multiScene(t, []int{12, 10, 14})
	cuts := DetectBoundaries(movie.Frames, Config{})
	if len(cuts) != len(wantCuts) {
		t.Fatalf("cuts = %v, want %v", cuts, wantCuts)
	}
	for i := range cuts {
		if cuts[i] != wantCuts[i] {
			t.Errorf("cut %d at %d, want %d", i, cuts[i], wantCuts[i])
		}
	}
}

func TestDetectBoundariesNoCutsInSingleScene(t *testing.T) {
	seg := scene(t, "a", 30, 0, 3)
	if cuts := DetectBoundaries(seg.Frames, Config{}); len(cuts) != 0 {
		t.Errorf("single scene produced cuts %v", cuts)
	}
}

func TestFlashSuppression(t *testing.T) {
	// A 2-frame flash between longer scenes: the second boundary is
	// suppressed by MinShotFrames, so the flash sticks to a neighbor shot.
	movie, _ := multiScene(t, []int{12, 2, 12})
	cuts := DetectBoundaries(movie.Frames, Config{MinShotFrames: 4})
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly 1 (flash suppressed)", cuts)
	}
}

func TestSplit(t *testing.T) {
	movie, wantCuts := multiScene(t, []int{12, 10, 14})
	shots := Split(movie, Config{})
	if len(shots) != 3 {
		t.Fatalf("shots = %d, want 3", len(shots))
	}
	wantLens := []int{12, 10, 14}
	total := 0
	for i, s := range shots {
		if len(s.Frames) != wantLens[i] {
			t.Errorf("shot %d has %d frames, want %d", i, len(s.Frames), wantLens[i])
		}
		for j, f := range s.Frames {
			if f.Index != j {
				t.Fatalf("shot %d frame %d has Index %d", i, j, f.Index)
			}
		}
		total += len(s.Frames)
	}
	if total != len(movie.Frames) {
		t.Errorf("shots cover %d frames, movie has %d", total, len(movie.Frames))
	}
	if shots[0].Name != "movie-shot00" || shots[2].Name != "movie-shot02" {
		t.Errorf("shot names = %q, %q", shots[0].Name, shots[2].Name)
	}
	_ = wantCuts
}

func TestSplitWithMovingObjectsDoesNotOverCut(t *testing.T) {
	// Moving objects change a few regions per frame; that must not read
	// as a scene cut.
	seg, err := video.Generate(video.SceneConfig{
		Name: "busy", Width: 320, Height: 240, FPS: 12, Frames: 24,
		BackgroundRows: 3, BackgroundCols: 4, Jitter: 1.0, Seed: 4,
		Objects: []video.ObjectSpec{
			{
				Label: "o1",
				Parts: []video.PartSpec{{Size: 400, Color: graph.Color{R: 0.9}}},
				Path:  []geom.Point{geom.Pt(10, 60), geom.Pt(310, 60)},
				Start: 0, End: 24,
			},
			{
				Label: "o2",
				Parts: []video.PartSpec{{Size: 350, Color: graph.Color{B: 0.9}}},
				Path:  []geom.Point{geom.Pt(160, 10), geom.Pt(160, 230)},
				Start: 0, End: 24,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	shots := Split(seg, Config{})
	if len(shots) != 1 {
		t.Errorf("busy scene split into %d shots, want 1", len(shots))
	}
}
