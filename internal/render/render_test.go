package render

import (
	"strings"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

func og(label string, pts ...geom.Point) *strg.OG {
	o := &strg.OG{Label: label}
	for i, p := range pts {
		o.Frames = append(o.Frames, i)
		o.Centroids = append(o.Centroids, p)
		o.Sizes = append(o.Sizes, 300)
	}
	return o
}

func TestSVGBasics(t *testing.T) {
	ogs := []*strg.OG{
		og("east", geom.Pt(10, 100), geom.Pt(200, 100)),
		og("south", geom.Pt(100, 10), geom.Pt(100, 200)),
	}
	var b strings.Builder
	if err := SVG(&b, ogs, Options{Labels: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`viewBox="0 0 320 240"`,
		`<polyline points="10.0,100.0 200.0,100.0"`,
		`<polyline points="100.0,10.0 100.0,200.0"`,
		`<circle`,
		`>east</text>`,
		`>south</text>`,
		"</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestSVGClusterColors(t *testing.T) {
	ogs := []*strg.OG{
		og("a", geom.Pt(0, 0), geom.Pt(10, 10)),
		og("b", geom.Pt(0, 10), geom.Pt(10, 0)),
	}
	var b strings.Builder
	if err := SVG(&b, ogs, Options{Clusters: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, palette[0]) || !strings.Contains(out, palette[1]) {
		t.Error("cluster colors not applied")
	}
}

func TestSVGValidation(t *testing.T) {
	ogs := []*strg.OG{og("a", geom.Pt(0, 0))}
	var b strings.Builder
	if err := SVG(&b, ogs, Options{Clusters: []int{0, 1}}); err == nil {
		t.Error("mismatched cluster count accepted")
	}
	// Empty OGs are skipped, not fatal.
	b.Reset()
	if err := SVG(&b, []*strg.OG{{}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<polyline") {
		t.Error("empty OG produced a polyline")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	ogs := []*strg.OG{og(`<evil>&"`, geom.Pt(0, 0), geom.Pt(1, 1))}
	var b strings.Builder
	if err := SVG(&b, ogs, Options{Labels: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<evil>") {
		t.Error("label not escaped")
	}
	if !strings.Contains(b.String(), "&lt;evil&gt;&amp;&quot;") {
		t.Error("escaped label missing")
	}
}

func TestSVGNegativeClusterIDs(t *testing.T) {
	ogs := []*strg.OG{og("x", geom.Pt(0, 0), geom.Pt(1, 1))}
	var b strings.Builder
	if err := SVG(&b, ogs, Options{Clusters: []int{-3}}); err != nil {
		t.Fatal(err)
	}
}
