// Package render draws Object Graph trajectories as SVG — the reporting
// surface for "show me what the database saw": each OG becomes a polyline
// with a start marker, optionally colored by cluster.
package render

import (
	"fmt"
	"io"
	"strings"

	"strgindex/internal/strg"
)

// palette holds visually distinct stroke colors; cluster c uses
// palette[c % len(palette)].
var palette = []string{
	"#1b9e77", "#d95f02", "#7570b3", "#e7298a",
	"#66a61e", "#e6ab02", "#a6761d", "#666666",
	"#1f78b4", "#b2df8a", "#fb9a99", "#cab2d6",
}

// Options configures the rendering.
type Options struct {
	// Width and Height are the scene dimensions in pixels (the SVG
	// viewBox). Zeros mean 320x240.
	Width, Height float64
	// Clusters assigns a cluster (color) to each OG; nil renders all OGs
	// in the first palette color.
	Clusters []int
	// Labels draws each OG's label next to its start marker.
	Labels bool
	// StrokeWidth of the polylines. Zero means 2.
	StrokeWidth float64
}

// SVG writes the trajectories of ogs as an SVG document.
func SVG(w io.Writer, ogs []*strg.OG, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 320
	}
	if opts.Height <= 0 {
		opts.Height = 240
	}
	if opts.StrokeWidth <= 0 {
		opts.StrokeWidth = 2
	}
	if opts.Clusters != nil && len(opts.Clusters) != len(ogs) {
		return fmt.Errorf("render: %d cluster assignments for %d OGs", len(opts.Clusters), len(ogs))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %g %g">`+"\n", opts.Width, opts.Height)
	fmt.Fprintf(&b, `  <rect width="%g" height="%g" fill="#fafafa" stroke="#ccc"/>`+"\n", opts.Width, opts.Height)
	for i, og := range ogs {
		if og.Len() == 0 {
			continue
		}
		color := palette[0]
		if opts.Clusters != nil {
			color = palette[((opts.Clusters[i]%len(palette))+len(palette))%len(palette)]
		}
		var pts []string
		for _, c := range og.Centroids {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", c.X, c.Y))
		}
		fmt.Fprintf(&b, `  <polyline points="%s" fill="none" stroke="%s" stroke-width="%g" opacity="0.85"/>`+"\n",
			strings.Join(pts, " "), color, opts.StrokeWidth)
		start := og.Centroids[0]
		fmt.Fprintf(&b, `  <circle cx="%.1f" cy="%.1f" r="%g" fill="%s"/>`+"\n",
			start.X, start.Y, opts.StrokeWidth*1.5, color)
		if opts.Labels && og.Label != "" {
			fmt.Fprintf(&b, `  <text x="%.1f" y="%.1f" font-size="8" fill="#333">%s</text>`+"\n",
				start.X+4, start.Y-4, escape(og.Label))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
