package synth

import (
	"math"
	"strings"
	"testing"

	"strgindex/internal/dist"
)

func TestPatternsCount(t *testing.T) {
	ps := Patterns()
	if len(ps) != 48 {
		t.Fatalf("patterns = %d, want 48", len(ps))
	}
	counts := map[string]int{}
	for i, p := range ps {
		if p.ID != i {
			t.Errorf("pattern %d has ID %d", i, p.ID)
		}
		counts[p.Class]++
		if len(p.Path) < 2 {
			t.Errorf("pattern %s has degenerate path", p.Name)
		}
	}
	want := map[string]int{"vertical": 12, "horizontal": 12, "diagonal": 8, "uturn": 16}
	for class, n := range want {
		if counts[class] != n {
			t.Errorf("%s patterns = %d, want %d", class, counts[class], n)
		}
	}
}

func TestPatternsUTurnShape(t *testing.T) {
	for _, p := range Patterns() {
		if p.Class == "uturn" && len(p.Path) != 4 {
			t.Errorf("uturn %s has %d waypoints, want 4", p.Name, len(p.Path))
		}
	}
}

func TestPatternNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Patterns() {
		if seen[p.Name] {
			t.Errorf("duplicate pattern name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{PerPattern: 0}); err == nil {
		t.Error("PerPattern 0 accepted")
	}
	if _, err := Generate(Config{PerPattern: 1, NoisePct: 2}); err == nil {
		t.Error("NoisePct 2 accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Config{PerPattern: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 48*3 {
		t.Fatalf("items = %d, want 144", ds.Len())
	}
	if ds.NumClusters() != 48 {
		t.Errorf("clusters = %d, want 48", ds.NumClusters())
	}
	for i, it := range ds.Items {
		if len(it) < 8 || len(it) > 16 {
			t.Errorf("item %d length %d outside [8, 16]", i, len(it))
		}
		if it.Dim() != 2 {
			t.Errorf("item %d dim = %d, want 2", i, it.Dim())
		}
		for _, v := range it {
			if v[0] < 0 || v[0] > FieldW || v[1] < 0 || v[1] > FieldH {
				t.Errorf("item %d sample %v outside field", i, v)
			}
		}
	}
}

func TestGenerateRestrictedPatterns(t *testing.T) {
	ds, err := Generate(Config{PerPattern: 2, NumPatterns: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 10 {
		t.Errorf("items = %d, want 10", ds.Len())
	}
	if ds.NumClusters() != 5 {
		t.Errorf("clusters = %d, want 5", ds.NumClusters())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{PerPattern: 2, NoisePct: 0.1, Seed: 9})
	b, _ := Generate(Config{PerPattern: 2, NoisePct: 0.1, Seed: 9})
	for i := range a.Items {
		for j := range a.Items[i] {
			if a.Items[i][j][0] != b.Items[i][j][0] || a.Items[i][j][1] != b.Items[i][j][1] {
				t.Fatal("generation not deterministic for fixed seed")
			}
		}
	}
}

func TestNoiseIncreasesSpread(t *testing.T) {
	clean, _ := Generate(Config{PerPattern: 5, NoisePct: 0, Seed: 3, NumPatterns: 4})
	noisy, _ := Generate(Config{PerPattern: 5, NoisePct: 0.3, Seed: 3, NumPatterns: 4})
	// Mean within-cluster pairwise EGED must grow with noise.
	meanIntra := func(ds *Dataset) float64 {
		var sum float64
		var n int
		for i := 0; i < ds.Len(); i++ {
			for j := i + 1; j < ds.Len(); j++ {
				if ds.Labels[i] == ds.Labels[j] {
					sum += dist.EGED(ds.Items[i], ds.Items[j])
					n++
				}
			}
		}
		return sum / float64(n)
	}
	c, nz := meanIntra(clean), meanIntra(noisy)
	if nz < 2*c {
		t.Errorf("noise did not spread clusters: clean %v, noisy %v", c, nz)
	}
}

func TestClustersSeparated(t *testing.T) {
	// At zero noise, within-cluster distances must be far below the
	// distance between a vertical and a horizontal pattern.
	ds, _ := Generate(Config{PerPattern: 4, NoisePct: 0, Seed: 5})
	var vIdx, hIdx []int
	for i, l := range ds.Labels {
		switch ds.Patterns[l].Class {
		case "vertical":
			vIdx = append(vIdx, i)
		case "horizontal":
			hIdx = append(hIdx, i)
		}
	}
	intra := dist.EGED(ds.Items[vIdx[0]], ds.Items[vIdx[1]])
	inter := dist.EGED(ds.Items[vIdx[0]], ds.Items[hIdx[0]])
	if intra*3 > inter {
		t.Errorf("weak separation: intra %v vs inter %v", intra, inter)
	}
}

func TestTrueCentroids(t *testing.T) {
	ds, _ := Generate(Config{PerPattern: 1, Seed: 1})
	cents := ds.TrueCentroids(12)
	if len(cents) != 48 {
		t.Fatalf("centroids = %d, want 48", len(cents))
	}
	for i, c := range cents {
		if len(c) != 12 {
			t.Errorf("centroid %d length %d, want 12", i, len(c))
		}
	}
}

func TestAsOG(t *testing.T) {
	seq := dist.Sequence{{10, 20}, {30, 40}, {50, 60}}
	og := AsOG(7, seq, "uturn-east-0")
	if og.ID != 7 || og.Label != "uturn-east-0" {
		t.Errorf("OG identity = %d/%q", og.ID, og.Label)
	}
	if og.Len() != 3 {
		t.Fatalf("OG length = %d, want 3", og.Len())
	}
	back := og.Sequence()
	for i := range seq {
		if math.Abs(back[i][0]-seq[i][0]) > 1e-12 || math.Abs(back[i][1]-seq[i][1]) > 1e-12 {
			t.Errorf("round trip mismatch at %d: %v vs %v", i, back[i], seq[i])
		}
	}
	if !strings.HasPrefix(og.Label, "uturn") {
		t.Error("label lost")
	}
}
