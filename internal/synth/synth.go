// Package synth generates the synthetic trajectory data of Section 6.1:
// 48 moving patterns — 12 vertical, 12 horizontal, 8 diagonal and 16
// U-turn, each in two directions with varied object sizes and time lengths
// — spread with Gaussian σ = 5 following Pelleg's cluster data recipe and
// corrupted with Vlachos-style noise at 5%–30%.
//
// Every generated item is a dist.Sequence (the Object Graph signal) with a
// ground-truth pattern label, ready for the clustering (Figure 5/6) and
// indexing (Figure 7) experiments.
package synth

import (
	"fmt"
	"math/rand"

	"strgindex/internal/dist"
	"strgindex/internal/geom"
	"strgindex/internal/strg"
)

// Field dimensions of the synthetic scene, matching the video substrate.
const (
	FieldW = 320.0
	FieldH = 240.0
)

// Pattern is one of the 48 prototype moving patterns.
type Pattern struct {
	ID    int
	Class string // "vertical", "horizontal", "diagonal" or "uturn"
	Name  string
	Path  []geom.Point
}

// Patterns returns the 48 patterns: 12 vertical, 12 horizontal, 8 diagonal,
// 16 U-turn (each class split evenly between two directions, lanes and
// turn depths providing the within-class variants).
func Patterns() []Pattern {
	var out []Pattern
	add := func(class, name string, path []geom.Point) {
		out = append(out, Pattern{ID: len(out), Class: class, Name: name, Path: path})
	}
	// 12 vertical: 6 lanes x 2 directions.
	for lane := 0; lane < 6; lane++ {
		x := FieldW * (0.15 + 0.14*float64(lane))
		add("vertical", fmt.Sprintf("vertical-down-%d", lane),
			[]geom.Point{geom.Pt(x, 0.05*FieldH), geom.Pt(x, 0.95*FieldH)})
		add("vertical", fmt.Sprintf("vertical-up-%d", lane),
			[]geom.Point{geom.Pt(x, 0.95*FieldH), geom.Pt(x, 0.05*FieldH)})
	}
	// 12 horizontal: 6 lanes x 2 directions.
	for lane := 0; lane < 6; lane++ {
		y := FieldH * (0.15 + 0.14*float64(lane))
		add("horizontal", fmt.Sprintf("horizontal-east-%d", lane),
			[]geom.Point{geom.Pt(0.05*FieldW, y), geom.Pt(0.95*FieldW, y)})
		add("horizontal", fmt.Sprintf("horizontal-west-%d", lane),
			[]geom.Point{geom.Pt(0.95*FieldW, y), geom.Pt(0.05*FieldW, y)})
	}
	// 8 diagonal: 4 corner pairs x 2 directions.
	corners := [][2]geom.Point{
		{geom.Pt(0.05*FieldW, 0.05*FieldH), geom.Pt(0.95*FieldW, 0.95*FieldH)},
		{geom.Pt(0.95*FieldW, 0.05*FieldH), geom.Pt(0.05*FieldW, 0.95*FieldH)},
		{geom.Pt(0.05*FieldW, 0.5*FieldH), geom.Pt(0.95*FieldW, 0.95*FieldH)},
		{geom.Pt(0.05*FieldW, 0.5*FieldH), geom.Pt(0.95*FieldW, 0.05*FieldH)},
	}
	for i, c := range corners {
		add("diagonal", fmt.Sprintf("diagonal-%d-fwd", i), []geom.Point{c[0], c[1]})
		add("diagonal", fmt.Sprintf("diagonal-%d-rev", i), []geom.Point{c[1], c[0]})
	}
	// 16 U-turn: 4 horizontal + 4 vertical variants x 2 directions.
	for v := 0; v < 4; v++ {
		y := FieldH * (0.2 + 0.15*float64(v))
		depth := FieldW * (0.6 + 0.08*float64(v))
		gap := FieldH * 0.1
		add("uturn", fmt.Sprintf("uturn-east-%d", v), []geom.Point{
			geom.Pt(0.05*FieldW, y), geom.Pt(depth, y), geom.Pt(depth, y+gap), geom.Pt(0.05*FieldW, y+gap)})
		add("uturn", fmt.Sprintf("uturn-west-%d", v), []geom.Point{
			geom.Pt(0.95*FieldW, y), geom.Pt(FieldW-depth, y), geom.Pt(FieldW-depth, y+gap), geom.Pt(0.95*FieldW, y+gap)})
	}
	for v := 0; v < 4; v++ {
		x := FieldW * (0.2 + 0.15*float64(v))
		depth := FieldH * (0.6 + 0.08*float64(v))
		gap := FieldW * 0.1
		add("uturn", fmt.Sprintf("uturn-south-%d", v), []geom.Point{
			geom.Pt(x, 0.05*FieldH), geom.Pt(x, depth), geom.Pt(x+gap, depth), geom.Pt(x+gap, 0.05*FieldH)})
		add("uturn", fmt.Sprintf("uturn-north-%d", v), []geom.Point{
			geom.Pt(x, 0.95*FieldH), geom.Pt(x, FieldH-depth), geom.Pt(x+gap, FieldH-depth), geom.Pt(x+gap, 0.95*FieldH)})
	}
	return out
}

// Config parameterizes dataset generation.
type Config struct {
	// PerPattern is the number of items generated per pattern (cluster).
	PerPattern int
	// NoisePct is the Vlachos-style noise level (0.05 .. 0.30). Three
	// corruptions are applied, all proportional to it: per-sample Gaussian
	// jitter with σ = NoisePct·NoiseScale, local time stutters (a sample
	// repeats, shifting the rest — the "local time shifting" EGED's gap
	// model absorbs), and occasional outlier spikes at 4x the jitter.
	NoisePct float64
	// Spread is the Pelleg-style Gaussian σ of the cluster around its
	// prototype. Zero means 5, the paper's value.
	Spread float64
	// MinLen and MaxLen bound the per-item time length. Zeros mean 8..16.
	MinLen, MaxLen int
	// Seed drives all randomness.
	Seed int64
	// NumPatterns restricts generation to the first N patterns (testing
	// convenience). Zero means all 48.
	NumPatterns int
}

// NoiseScale converts NoisePct into a jitter standard deviation in pixels.
// At 30% noise the per-sample jitter is ~9 px on a 320x240 field, with
// stutters and spikes on top — enough to degrade alignment-based measures
// without erasing the pattern.
const NoiseScale = 30

func (c Config) withDefaults() (Config, error) {
	if c.PerPattern <= 0 {
		return c, fmt.Errorf("synth: PerPattern = %d must be positive", c.PerPattern)
	}
	if c.NoisePct < 0 || c.NoisePct > 1 {
		return c, fmt.Errorf("synth: NoisePct = %v outside [0, 1]", c.NoisePct)
	}
	if c.Spread == 0 {
		c.Spread = 5
	}
	if c.MinLen <= 0 {
		c.MinLen = 8
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen + 8
	}
	if c.NumPatterns <= 0 || c.NumPatterns > 48 {
		c.NumPatterns = 48
	}
	return c, nil
}

// Dataset is a labeled synthetic trajectory collection.
type Dataset struct {
	Items    []dist.Sequence
	Labels   []int // pattern ID per item
	Patterns []Pattern
}

// Len returns the number of items.
func (d *Dataset) Len() int { return len(d.Items) }

// NumClusters returns the number of distinct pattern labels present.
func (d *Dataset) NumClusters() int {
	seen := map[int]bool{}
	for _, l := range d.Labels {
		seen[l] = true
	}
	return len(seen)
}

// Generate builds a dataset per the configuration.
func Generate(cfg Config) (*Dataset, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	patterns := Patterns()[:cfg.NumPatterns]
	ds := &Dataset{Patterns: patterns}
	bounds := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(FieldW, FieldH)}
	for _, p := range patterns {
		for i := 0; i < cfg.PerPattern; i++ {
			length := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
			pts := geom.ResamplePath(p.Path, length)
			// Pelleg-style cluster spread: a per-item offset plus
			// per-sample wobble, both Gaussian with σ = Spread.
			off := geom.Vec(rng.NormFloat64()*cfg.Spread, rng.NormFloat64()*cfg.Spread)
			seq := make(dist.Sequence, 0, length)
			stutter := 0 // local time shift: how far behind the clock we are
			for j := 0; j < length; j++ {
				src := j - stutter
				if src < 0 {
					src = 0
				}
				pt := pts[src]
				q := pt.Add(off)
				q.X += rng.NormFloat64() * cfg.Spread
				q.Y += rng.NormFloat64() * cfg.Spread
				if cfg.NoisePct > 0 {
					sigma := cfg.NoisePct * NoiseScale
					q.X += rng.NormFloat64() * sigma
					q.Y += rng.NormFloat64() * sigma
					if rng.Float64() < cfg.NoisePct {
						stutter++ // the object lingers: local time shift
					}
					if rng.Float64() < cfg.NoisePct/4 {
						q.X += rng.NormFloat64() * 4 * sigma
						q.Y += rng.NormFloat64() * 4 * sigma
					}
				}
				q = bounds.Clamp(q)
				seq = append(seq, dist.Vec{q.X, q.Y})
			}
			ds.Items = append(ds.Items, seq)
			ds.Labels = append(ds.Labels, p.ID)
		}
	}
	return ds, nil
}

// TrueCentroids returns the prototype trajectory of each pattern resampled
// to n samples — the "true centroids" of the distortion measurement
// (Figure 6(c)).
func (d *Dataset) TrueCentroids(n int) []dist.Sequence {
	out := make([]dist.Sequence, len(d.Patterns))
	for i, p := range d.Patterns {
		pts := geom.ResamplePath(p.Path, n)
		seq := make(dist.Sequence, n)
		for j, pt := range pts {
			seq[j] = dist.Vec{pt.X, pt.Y}
		}
		out[i] = seq
	}
	return out
}

// AsOG converts one generated item into the Object Graph form of
// Definition 8 (temporal subgraph with empty spatial edge set): per-sample
// centroids with synthetic frame numbers and sizes. The paper performs the
// same conversion on its synthetic data ("the generated data are converted
// to OGs").
func AsOG(id int, seq dist.Sequence, label string) *strg.OG {
	og := &strg.OG{
		ID:        id,
		Label:     label,
		Frames:    make([]int, len(seq)),
		Centroids: make([]geom.Point, len(seq)),
		Sizes:     make([]float64, len(seq)),
	}
	for i, v := range seq {
		og.Frames[i] = i
		og.Centroids[i] = geom.Pt(v[0], v[1])
		og.Sizes[i] = 300
	}
	return og
}
