package rag

import (
	"math"
	"testing"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

func frameOf(regions ...video.Region) video.Frame {
	for i := range regions {
		regions[i].ID = i
	}
	return video.Frame{Index: 0, Regions: regions}
}

func TestEquivalentRadius(t *testing.T) {
	tests := []struct {
		size, want float64
	}{
		{0, 0},
		{-5, 0},
		{math.Pi, 1},
		{4 * math.Pi, 2},
	}
	for _, tt := range tests {
		if got := EquivalentRadius(tt.size); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("EquivalentRadius(%v) = %v, want %v", tt.size, got, tt.want)
		}
	}
}

func TestBuildNodes(t *testing.T) {
	f := frameOf(
		video.Region{Centroid: geom.Pt(10, 10), Size: 100, Color: graph.Gray(0.5), Label: "a"},
		video.Region{Centroid: geom.Pt(200, 200), Size: 50, Color: graph.Gray(0.2)},
	)
	g := Build(f, DefaultConfig(), 0)
	if g.Order() != 2 {
		t.Fatalf("Order = %d, want 2", g.Order())
	}
	n, ok := g.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	if n.Attr.Size != 100 || n.Attr.Label != "a" || n.Attr.Centroid != geom.Pt(10, 10) {
		t.Errorf("node 0 attrs = %+v", n.Attr)
	}
}

func TestBuildAdjacency(t *testing.T) {
	// Two size-100 regions: equivalent radius ≈ 5.64, threshold ≈ 18.05.
	r := EquivalentRadius(100)
	tests := []struct {
		name string
		dist float64
		want bool
	}{
		{"touching", 2 * r, true},
		{"near", 1.5 * 2 * r, true},
		{"just inside", 1.59 * 2 * r, true},
		{"just outside", 1.61 * 2 * r, false},
		{"far", 100, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := frameOf(
				video.Region{Centroid: geom.Pt(0, 0), Size: 100},
				video.Region{Centroid: geom.Pt(tt.dist, 0), Size: 100},
			)
			g := Build(f, DefaultConfig(), 0)
			if got := g.HasEdge(0, 1); got != tt.want {
				t.Errorf("HasEdge at dist %.2f = %v, want %v", tt.dist, got, tt.want)
			}
		})
	}
}

func TestBuildEdgeAttrs(t *testing.T) {
	f := frameOf(
		video.Region{Centroid: geom.Pt(0, 0), Size: 400},
		video.Region{Centroid: geom.Pt(10, 10), Size: 400},
	)
	g := Build(f, DefaultConfig(), 0)
	attr, ok := g.EdgeAttr(0, 1)
	if !ok {
		t.Fatal("edge missing")
	}
	if want := math.Sqrt(200); math.Abs(attr.Dist-want) > 1e-9 {
		t.Errorf("Dist = %v, want %v", attr.Dist, want)
	}
	if want := math.Pi / 4; math.Abs(attr.Orient-want) > 1e-9 {
		t.Errorf("Orient = %v, want %v", attr.Orient, want)
	}
}

func TestBuildBaseID(t *testing.T) {
	f := frameOf(video.Region{Centroid: geom.Pt(0, 0), Size: 10})
	g := Build(f, DefaultConfig(), 1000)
	if !g.Has(1000) {
		t.Error("node 1000 missing with baseID offset")
	}
	if g.Has(0) {
		t.Error("node 0 present despite baseID offset")
	}
}

func TestBuildEmptyFrame(t *testing.T) {
	g := Build(video.Frame{}, DefaultConfig(), 0)
	if g.Order() != 0 || g.Size() != 0 {
		t.Errorf("empty frame produced %d nodes, %d edges", g.Order(), g.Size())
	}
}

func TestBuildZeroConfigFallsBack(t *testing.T) {
	f := frameOf(
		video.Region{Centroid: geom.Pt(0, 0), Size: 100},
		video.Region{Centroid: geom.Pt(15, 0), Size: 100},
	)
	g := Build(f, Config{}, 0)
	if !g.HasEdge(0, 1) {
		t.Error("zero config did not fall back to default adjacency scale")
	}
}

func TestBuildGeneratedFrameConnected(t *testing.T) {
	cfg := video.SceneConfig{
		Name: "t", Width: 320, Height: 240, FPS: 12, Frames: 1,
		BackgroundRows: 3, BackgroundCols: 4, Seed: 1,
	}
	seg, err := video.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(seg.Frames[0], DefaultConfig(), 0)
	if g.Order() != 12 {
		t.Fatalf("Order = %d, want 12", g.Order())
	}
	// The background grid tiles the frame, so every cell must touch at
	// least one neighbor.
	for _, id := range g.NodeIDs() {
		if g.Degree(id) == 0 {
			t.Errorf("background node %d is isolated", id)
		}
	}
}
