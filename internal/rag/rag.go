// Package rag builds Region Adjacency Graphs (Definition 1 of the paper)
// from segmented video frames.
//
// A node is created per region, carrying the region's size, color and
// centroid. Spatial edges connect adjacent regions and carry the distance
// and orientation between the two centroids.
//
// Real segmenters report adjacency as shared boundary pixels. The synthetic
// substrate has no pixel masks, so adjacency is decided geometrically: two
// regions are adjacent when their centroid distance is at most
// AdjacencyScale times the sum of their equivalent radii (the radius of a
// disc of the region's area). For compact regions this closely matches
// boundary adjacency.
package rag

import (
	"math"

	"strgindex/internal/geom"
	"strgindex/internal/graph"
	"strgindex/internal/video"
)

// Config controls RAG construction.
type Config struct {
	// AdjacencyScale multiplies the sum of two regions' equivalent radii
	// to obtain the adjacency distance threshold. Values near 1 require
	// near-touching regions; larger values connect looser neighborhoods.
	AdjacencyScale float64
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{AdjacencyScale: 1.6}
}

// EquivalentRadius returns the radius of a disc with the given area.
func EquivalentRadius(size float64) float64 {
	if size <= 0 {
		return 0
	}
	return math.Sqrt(size / math.Pi)
}

// Build constructs the RAG of one frame. Node IDs are baseID + region ID,
// letting the caller keep IDs unique across a whole segment.
func Build(f video.Frame, cfg Config, baseID graph.NodeID) *graph.Graph {
	if cfg.AdjacencyScale <= 0 {
		cfg.AdjacencyScale = DefaultConfig().AdjacencyScale
	}
	g := graph.New()
	for _, r := range f.Regions {
		g.MustAddNode(graph.Node{
			ID: baseID + graph.NodeID(r.ID),
			Attr: graph.NodeAttr{
				Size:     r.Size,
				Color:    r.Color,
				Centroid: r.Centroid,
				Label:    r.Label,
			},
		})
	}
	for i := 0; i < len(f.Regions); i++ {
		for j := i + 1; j < len(f.Regions); j++ {
			a, b := f.Regions[i], f.Regions[j]
			d := a.Centroid.Dist(b.Centroid)
			limit := cfg.AdjacencyScale * (EquivalentRadius(a.Size) + EquivalentRadius(b.Size))
			if d <= limit {
				attr := graph.SpatialAttr{
					Dist:   d,
					Orient: geom.Orientation(a.Centroid, b.Centroid),
				}
				if err := g.AddEdge(baseID+graph.NodeID(a.ID), baseID+graph.NodeID(b.ID), attr); err != nil {
					panic(err) // unreachable: region IDs are unique per frame
				}
			}
		}
	}
	return g
}
