package mtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"strgindex/internal/dist"
)

// TestKNNMatchesBruteForceProperty drives randomized tree shapes, metrics
// and queries through quick.Check: for every configuration the k-NN
// distances must equal the brute-force answer.
func TestKNNMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, policyBit bool, capSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := PromoteRandom
		if policyBit {
			policy = PromoteSampling
		}
		capacity := 4 + int(capSel%13)
		tr, err := New[int](Config{
			Metric:     dist.EGEDMZero,
			MaxEntries: capacity,
			Policy:     policy,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		n := 30 + rng.Intn(120)
		seqs := make([]dist.Sequence, n)
		for i := range seqs {
			m := 1 + rng.Intn(5)
			s := make(dist.Sequence, m)
			for j := range s {
				s[j] = dist.Vec{rng.Float64() * 200, rng.Float64() * 200}
			}
			seqs[i] = s
			tr.Insert(s, i)
		}
		q := dist.Sequence{{rng.Float64() * 200, rng.Float64() * 200}}
		k := 1 + rng.Intn(8)
		got := tr.KNN(q, k)
		ref := make([]float64, n)
		for i, s := range seqs {
			ref[i] = dist.EGEDMZero(q, s)
		}
		sort.Float64s(ref)
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Distance-ref[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRangeMatchesBruteForceProperty does the same for range queries.
func TestRangeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New[int](Config{Metric: dist.EGEDMZero, MaxEntries: 6, Seed: seed})
		if err != nil {
			return false
		}
		n := 40 + rng.Intn(80)
		seqs := make([]dist.Sequence, n)
		for i := range seqs {
			seqs[i] = dist.Sequence{{rng.Float64() * 100}}
			tr.Insert(seqs[i], i)
		}
		q := dist.Sequence{{rng.Float64() * 100}}
		radius := rng.Float64() * 30
		got := tr.Range(q, radius)
		want := map[int]bool{}
		for i, s := range seqs {
			if dist.EGEDMZero(q, s) <= radius {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r.Payload] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInvariantHoldsUnderRandomInserts keeps the covering-radius invariant
// across randomized insert orders and node capacities.
func TestInvariantHoldsUnderRandomInserts(t *testing.T) {
	f := func(seed int64, capSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New[int](Config{
			Metric:     dist.EGEDMZero,
			MaxEntries: 4 + int(capSel%10),
			Policy:     PromoteSampling,
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < 150; i++ {
			m := 1 + rng.Intn(4)
			s := make(dist.Sequence, m)
			for j := range s {
				s[j] = dist.Vec{rng.NormFloat64() * 50, rng.NormFloat64() * 50}
			}
			tr.Insert(s, i)
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
