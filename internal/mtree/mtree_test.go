package mtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"strgindex/internal/dist"
)

// point1 wraps a scalar into a 1-sample sequence: the metric space then
// behaves like plain R^1, which makes expected results easy to state.
func point1(v float64) dist.Sequence { return dist.Sequence{dist.Vec{v}} }

func newTree(t *testing.T, policy PromotePolicy) *Tree[int] {
	t.Helper()
	tr, err := New[int](Config{Metric: dist.EGEDMZero, MaxEntries: 4, Policy: policy, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](Config{}); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := New[int](Config{Metric: dist.EGEDMZero, MaxEntries: 2}); err == nil {
		t.Error("tiny MaxEntries accepted")
	}
	tr, err := New[int](Config{Metric: dist.EGEDMZero})
	if err != nil {
		t.Fatal(err)
	}
	if tr.maxEntries != 16 {
		t.Errorf("default MaxEntries = %d, want 16", tr.maxEntries)
	}
}

func TestInsertAndLen(t *testing.T) {
	tr := newTree(t, PromoteRandom)
	for i := 0; i < 50; i++ {
		tr.Insert(point1(float64(i)), i)
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d, want 50", tr.Len())
	}
	if tr.Height() < 2 {
		t.Errorf("Height = %d, want >= 2 after 50 inserts with capacity 4", tr.Height())
	}
}

func TestKNNExactness(t *testing.T) {
	for _, policy := range []PromotePolicy{PromoteRandom, PromoteSampling} {
		t.Run(policy.String(), func(t *testing.T) {
			tr := newTree(t, policy)
			rng := rand.New(rand.NewSource(3))
			vals := make([]float64, 200)
			for i := range vals {
				vals[i] = rng.Float64() * 1000
				tr.Insert(point1(vals[i]), i)
			}
			for trial := 0; trial < 20; trial++ {
				q := rng.Float64() * 1000
				k := 1 + rng.Intn(10)
				got := tr.KNN(point1(q), k)
				if len(got) != k {
					t.Fatalf("KNN returned %d results, want %d", len(got), k)
				}
				// Brute force reference.
				type pair struct {
					d float64
					i int
				}
				ref := make([]pair, len(vals))
				for i, v := range vals {
					ref[i] = pair{math.Abs(v - q), i}
				}
				sort.Slice(ref, func(a, b int) bool { return ref[a].d < ref[b].d })
				for i := 0; i < k; i++ {
					if math.Abs(got[i].Distance-ref[i].d) > 1e-9 {
						t.Fatalf("trial %d: k=%d result %d distance %v, want %v",
							trial, k, i, got[i].Distance, ref[i].d)
					}
				}
				// Results sorted ascending.
				for i := 1; i < k; i++ {
					if got[i].Distance < got[i-1].Distance {
						t.Fatal("KNN results not sorted")
					}
				}
			}
		})
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr := newTree(t, PromoteRandom)
	if got := tr.KNN(point1(1), 5); got != nil {
		t.Errorf("KNN on empty tree = %v, want nil", got)
	}
	tr.Insert(point1(10), 1)
	if got := tr.KNN(point1(1), 0); got != nil {
		t.Errorf("KNN with k=0 = %v, want nil", got)
	}
	got := tr.KNN(point1(1), 5)
	if len(got) != 1 {
		t.Errorf("KNN k>size returned %d, want 1", len(got))
	}
}

func TestRangeSearch(t *testing.T) {
	tr := newTree(t, PromoteSampling)
	for i := 0; i < 100; i++ {
		tr.Insert(point1(float64(i)), i)
	}
	got := tr.Range(point1(50), 3.5)
	want := map[int]bool{47: true, 48: true, 49: true, 50: true, 51: true, 52: true, 53: true}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d results, want %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.Payload] {
			t.Errorf("unexpected payload %d in range", r.Payload)
		}
		if r.Distance > 3.5 {
			t.Errorf("payload %d at distance %v > radius", r.Payload, r.Distance)
		}
	}
}

func TestCoveringRadiusInvariant(t *testing.T) {
	for _, policy := range []PromotePolicy{PromoteRandom, PromoteSampling} {
		t.Run(policy.String(), func(t *testing.T) {
			tr := newTree(t, policy)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 300; i++ {
				// Variable-length 2-D sequences: the real workload shape.
				n := 1 + rng.Intn(6)
				seq := make(dist.Sequence, n)
				for j := range seq {
					seq[j] = dist.Vec{rng.Float64() * 100, rng.Float64() * 100}
				}
				tr.Insert(seq, i)
				if i%50 == 49 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d inserts: %v", i+1, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKNNOnSequences(t *testing.T) {
	// End-to-end with real variable-length sequences under EGED_M.
	tr := newTree(t, PromoteSampling)
	rng := rand.New(rand.NewSource(5))
	seqs := make([]dist.Sequence, 120)
	for i := range seqs {
		n := 2 + rng.Intn(5)
		s := make(dist.Sequence, n)
		for j := range s {
			s[j] = dist.Vec{rng.Float64() * 50, rng.Float64() * 50}
		}
		seqs[i] = s
		tr.Insert(s, i)
	}
	q := seqs[7]
	got := tr.KNN(q, 3)
	if len(got) != 3 {
		t.Fatalf("KNN returned %d", len(got))
	}
	if got[0].Payload != 7 || got[0].Distance > 1e-9 {
		t.Errorf("nearest to itself = payload %d at %v", got[0].Payload, got[0].Distance)
	}
	// Brute-force verify.
	bestD, bestI := math.Inf(1), -1
	for i, s := range seqs {
		if i == 7 {
			continue
		}
		if d := dist.EGEDMZero(q, s); d < bestD {
			bestD, bestI = d, i
		}
	}
	if got[1].Payload != bestI {
		t.Errorf("second nearest = %d, want %d", got[1].Payload, bestI)
	}
}

func TestSamplingFewerDistanceCompsAtQuery(t *testing.T) {
	// MT-SA builds tighter regions than MT-RA, so queries should not do
	// meaningfully more distance computations. (Build cost goes the other
	// way; Figure 7(a).)
	build := func(policy PromotePolicy) (*Tree[int], *dist.Counter) {
		var c dist.Counter
		tr, err := New[int](Config{Metric: dist.Counted(dist.EGEDMZero, &c), MaxEntries: 8, Policy: policy, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 400; i++ {
			tr.Insert(point1(rng.Float64()*1000), i)
		}
		return tr, &c
	}
	ra, raC := build(PromoteRandom)
	sa, saC := build(PromoteSampling)
	if saC.Count() <= raC.Count() {
		t.Errorf("SAMPLING build cost %d should exceed RANDOM %d", saC.Count(), raC.Count())
	}
	raC.Reset()
	saC.Reset()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		q := point1(rng.Float64() * 1000)
		ra.KNN(q, 10)
		sa.KNN(q, 10)
	}
	if saC.Count() > raC.Count()*3/2 {
		t.Errorf("SAMPLING query cost %d far exceeds RANDOM %d", saC.Count(), raC.Count())
	}
}

func TestHeapOrdering(t *testing.T) {
	h := &minHeap[int]{less: func(a, b int) bool { return a < b }}
	for _, v := range []int{5, 3, 8, 1, 9, 2} {
		h.push(v)
	}
	prev := math.Inf(-1)
	for h.len() > 0 {
		v := float64(h.pop())
		if v < prev {
			t.Fatal("minHeap pop order violated")
		}
		prev = v
	}
	mh := &maxHeap[int]{less: func(a, b int) bool { return a < b }}
	for _, v := range []int{5, 3, 8, 1} {
		mh.push(v)
	}
	if mh.peek() != 8 {
		t.Errorf("maxHeap peek = %d, want 8", mh.peek())
	}
	if got := mh.pop(); got != 8 {
		t.Errorf("maxHeap pop = %d, want 8", got)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	tr := newTree(t, PromoteRandom)
	before := tr.MemoryBytes()
	for i := 0; i < 20; i++ {
		tr.Insert(point1(float64(i)), i)
	}
	if after := tr.MemoryBytes(); after <= before {
		t.Errorf("MemoryBytes did not grow: %d -> %d", before, after)
	}
}

func TestPolicyString(t *testing.T) {
	if PromoteRandom.String() != "MT-RA" || PromoteSampling.String() != "MT-SA" {
		t.Error("policy names mismatch")
	}
	if got := PromotePolicy(7).String(); got != "PromotePolicy(7)" {
		t.Errorf("unknown policy String = %q", got)
	}
}

func TestDuplicateObjects(t *testing.T) {
	tr := newTree(t, PromoteRandom)
	for i := 0; i < 30; i++ {
		tr.Insert(point1(42), i)
	}
	got := tr.KNN(point1(42), 30)
	if len(got) != 30 {
		t.Fatalf("KNN over duplicates returned %d, want 30", len(got))
	}
	for _, r := range got {
		if r.Distance != 0 {
			t.Errorf("duplicate at distance %v", r.Distance)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
