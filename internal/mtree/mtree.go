// Package mtree implements the M-tree of Ciaccia, Patella and Zezula
// (VLDB 1997) — the baseline index the paper compares STRG-Index against
// (Section 6.3). It is a height-balanced metric access method: routing
// entries carry a pivot object, a covering radius and a subtree; leaf
// entries carry the indexed objects.
//
// Two promotion policies from the original paper are provided, matching
// the experiment's MT-RA and MT-SA variants: RANDOM promotes two random
// entries on split, SAMPLING draws several candidate pairs and keeps the
// pair minimizing the larger covering radius.
//
// The tree is generic over the payload type; the indexed key is a
// dist.Sequence under a caller-supplied metric (EGED_M in the experiments,
// so both indexes measure the same distance).
package mtree

import (
	"fmt"
	"math"
	"math/rand"

	"strgindex/internal/dist"
)

// PromotePolicy selects how a split chooses the two routing pivots.
type PromotePolicy int

const (
	// PromoteRandom is the RANDOM policy (MT-RA): the fastest split, two
	// uniformly random entries become pivots.
	PromoteRandom PromotePolicy = iota
	// PromoteSampling is the SAMPLING policy (MT-SA): sampleSize candidate
	// pairs are drawn and the pair with the smallest larger covering
	// radius after partitioning wins — slower splits, tighter regions.
	PromoteSampling
)

// String implements fmt.Stringer.
func (p PromotePolicy) String() string {
	switch p {
	case PromoteRandom:
		return "MT-RA"
	case PromoteSampling:
		return "MT-SA"
	default:
		return fmt.Sprintf("PromotePolicy(%d)", int(p))
	}
}

// sampleSize is the number of candidate pivot pairs the SAMPLING policy
// evaluates per split.
const sampleSize = 10

// Config parameterizes an M-tree.
type Config struct {
	// Metric is the distance; it must satisfy the metric axioms or
	// pruning becomes unsound. Required.
	Metric dist.Metric
	// MaxEntries is the node capacity before splitting. Zero means 16.
	MaxEntries int
	// Policy selects the split promotion strategy.
	Policy PromotePolicy
	// Seed drives the randomized promotion choices.
	Seed int64
}

// Tree is an M-tree over sequence-keyed payloads. Not safe for concurrent
// mutation.
type Tree[P any] struct {
	metric     dist.Metric
	maxEntries int
	policy     PromotePolicy
	rng        *rand.Rand
	root       *node[P]
	size       int
}

type entry[P any] struct {
	seq dist.Sequence
	// payload is set on leaf entries only.
	payload P
	// parentDist is the distance to the parent routing pivot (unused at
	// the root).
	parentDist float64
	// radius and child are set on routing entries only.
	radius float64
	child  *node[P]
}

type node[P any] struct {
	leaf    bool
	entries []*entry[P]
}

// New creates an empty M-tree.
func New[P any](cfg Config) (*Tree[P], error) {
	if cfg.Metric == nil {
		return nil, fmt.Errorf("mtree: nil metric")
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = 16
	}
	if cfg.MaxEntries < 4 {
		return nil, fmt.Errorf("mtree: MaxEntries %d < 4", cfg.MaxEntries)
	}
	return &Tree[P]{
		metric:     cfg.Metric,
		maxEntries: cfg.MaxEntries,
		policy:     cfg.Policy,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		root:       &node[P]{leaf: true},
	}, nil
}

// Len returns the number of indexed objects.
func (t *Tree[P]) Len() int { return t.size }

// Insert adds one object to the tree.
func (t *Tree[P]) Insert(seq dist.Sequence, payload P) {
	e := &entry[P]{seq: seq, payload: payload}
	split := t.insert(t.root, e)
	if split != nil {
		// Root overflow: grow a new root referencing the two halves.
		newRoot := &node[P]{leaf: false, entries: []*entry[P]{split[0], split[1]}}
		t.root = newRoot
	}
	t.size++
}

// insert descends to a leaf and returns a pair of routing entries if the
// child had to split, nil otherwise.
func (t *Tree[P]) insert(n *node[P], e *entry[P]) []*entry[P] {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	// Subtree choice: prefer a routing entry already covering the object
	// (minimal distance); otherwise minimal radius expansion.
	var best *entry[P]
	bestD := math.Inf(1)
	covered := false
	for _, r := range n.entries {
		d := t.metric(e.seq, r.seq)
		if d <= r.radius {
			if !covered || d < bestD {
				best, bestD, covered = r, d, true
			}
		} else if !covered {
			if expand := d - r.radius; expand < bestD {
				best, bestD = r, expand
			}
		}
	}
	d := t.metric(e.seq, best.seq)
	if d > best.radius {
		best.radius = d
	}
	e.parentDist = d
	split := t.insert(best.child, e)
	if split == nil {
		return nil
	}
	// Replace the split routing entry with the two promoted ones.
	t.replaceEntry(n, best, split)
	if len(n.entries) > t.maxEntries {
		return t.split(n)
	}
	return nil
}

func (t *Tree[P]) replaceEntry(n *node[P], old *entry[P], repl []*entry[P]) {
	for i, e := range n.entries {
		if e == old {
			n.entries[i] = repl[0]
			n.entries = append(n.entries, repl[1])
			return
		}
	}
	panic("mtree: routing entry vanished during split")
}

// split promotes two pivots from n's entries, partitions the entries by
// nearest pivot (generalized hyperplane) and returns the two new routing
// entries.
func (t *Tree[P]) split(n *node[P]) []*entry[P] {
	entries := n.entries
	i1, i2 := t.promote(entries)
	p1, p2 := entries[i1], entries[i2]

	n1 := &node[P]{leaf: n.leaf}
	n2 := &node[P]{leaf: n.leaf}
	r1 := &entry[P]{seq: p1.seq, child: n1}
	r2 := &entry[P]{seq: p2.seq, child: n2}
	partition(t.metric, entries, p1, p2, r1, r2, n1, n2)
	return []*entry[P]{r1, r2}
}

// partition distributes entries to the nearer of the two pivots, updating
// parent distances and covering radii.
func partition[P any](metric dist.Metric, entries []*entry[P], p1, p2 *entry[P], r1, r2 *entry[P], n1, n2 *node[P]) {
	for _, e := range entries {
		d1 := metric(e.seq, p1.seq)
		d2 := metric(e.seq, p2.seq)
		if d1 <= d2 {
			e.parentDist = d1
			n1.entries = append(n1.entries, e)
			if cover := d1 + e.radius; cover > r1.radius {
				r1.radius = cover
			}
		} else {
			e.parentDist = d2
			n2.entries = append(n2.entries, e)
			if cover := d2 + e.radius; cover > r2.radius {
				r2.radius = cover
			}
		}
	}
}

// promote returns the indices of the two pivot entries per the policy.
func (t *Tree[P]) promote(entries []*entry[P]) (int, int) {
	n := len(entries)
	pick2 := func() (int, int) {
		i := t.rng.Intn(n)
		j := t.rng.Intn(n - 1)
		if j >= i {
			j++
		}
		return i, j
	}
	if t.policy == PromoteRandom {
		return pick2()
	}
	// SAMPLING: evaluate candidate pairs by the larger covering radius of
	// the induced partition; fewer distance computations than the
	// confirmed m_RAD policy, far tighter than RANDOM.
	bestI, bestJ := pick2()
	bestCost := t.partitionCost(entries, bestI, bestJ)
	for s := 1; s < sampleSize; s++ {
		i, j := pick2()
		if cost := t.partitionCost(entries, i, j); cost < bestCost {
			bestI, bestJ, bestCost = i, j, cost
		}
	}
	return bestI, bestJ
}

// partitionCost is the larger covering radius after a hypothetical
// generalized-hyperplane partition around pivots i and j.
func (t *Tree[P]) partitionCost(entries []*entry[P], i, j int) float64 {
	var rad1, rad2 float64
	for _, e := range entries {
		d1 := t.metric(e.seq, entries[i].seq)
		d2 := t.metric(e.seq, entries[j].seq)
		if d1 <= d2 {
			if cover := d1 + e.radius; cover > rad1 {
				rad1 = cover
			}
		} else {
			if cover := d2 + e.radius; cover > rad2 {
				rad2 = cover
			}
		}
	}
	return math.Max(rad1, rad2)
}

// Result is one k-NN or range search hit.
type Result[P any] struct {
	Payload  P
	Distance float64
}

// KNN returns the k nearest objects to the query, closest first. Pruning
// uses the covering radii, so the metric axioms are load-bearing.
func (t *Tree[P]) KNN(query dist.Sequence, k int) []Result[P] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	// Candidate priority queue over subtrees, keyed by the minimum
	// possible distance.
	type cand struct {
		n    *node[P]
		dmin float64
	}
	pq := &minHeap[cand]{less: func(a, b cand) bool { return a.dmin < b.dmin }}
	pq.push(cand{n: t.root, dmin: 0})

	best := &maxHeap[Result[P]]{less: func(a, b Result[P]) bool { return a.Distance < b.Distance }}
	kth := func() float64 {
		if best.len() < k {
			return math.Inf(1)
		}
		return best.peek().Distance
	}

	for pq.len() > 0 {
		c := pq.pop()
		if c.dmin > kth() {
			break // everything left is farther than the current k-th
		}
		if c.n.leaf {
			for _, e := range c.n.entries {
				d := t.metric(query, e.seq)
				if d <= kth() {
					best.push(Result[P]{Payload: e.payload, Distance: d})
					if best.len() > k {
						best.pop()
					}
				}
			}
			continue
		}
		for _, r := range c.n.entries {
			d := t.metric(query, r.seq)
			dmin := math.Max(0, d-r.radius)
			if dmin <= kth() {
				pq.push(cand{n: r.child, dmin: dmin})
			}
		}
	}
	out := make([]Result[P], best.len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = best.pop()
	}
	return out
}

// Range returns every object within radius of the query, in no particular
// order.
func (t *Tree[P]) Range(query dist.Sequence, radius float64) []Result[P] {
	var out []Result[P]
	t.rangeSearch(t.root, query, radius, &out)
	return out
}

func (t *Tree[P]) rangeSearch(n *node[P], query dist.Sequence, radius float64, out *[]Result[P]) {
	if n.leaf {
		for _, e := range n.entries {
			if d := t.metric(query, e.seq); d <= radius {
				*out = append(*out, Result[P]{Payload: e.payload, Distance: d})
			}
		}
		return
	}
	for _, r := range n.entries {
		if d := t.metric(query, r.seq); d <= radius+r.radius {
			t.rangeSearch(r.child, query, radius, out)
		}
	}
}

// Height returns the tree height (1 for a single leaf root).
func (t *Tree[P]) Height() int {
	h := 1
	n := t.root
	for !n.leaf {
		h++
		n = n.entries[0].child
	}
	return h
}

// CheckInvariants verifies the covering-radius invariant: every object in a
// routing entry's subtree lies within the entry's radius of its pivot. It
// returns an error naming the first violation. Intended for tests.
func (t *Tree[P]) CheckInvariants() error {
	return t.check(t.root)
}

func (t *Tree[P]) check(n *node[P]) error {
	if n.leaf {
		return nil
	}
	for _, r := range n.entries {
		var objs []dist.Sequence
		collect(r.child, &objs)
		for _, o := range objs {
			if d := t.metric(o, r.seq); d > r.radius+1e-9 {
				return fmt.Errorf("mtree: object at distance %v outside covering radius %v", d, r.radius)
			}
		}
		if err := t.check(r.child); err != nil {
			return err
		}
	}
	return nil
}

func collect[P any](n *node[P], out *[]dist.Sequence) {
	if n.leaf {
		for _, e := range n.entries {
			*out = append(*out, e.seq)
		}
		return
	}
	for _, r := range n.entries {
		collect(r.child, out)
	}
}

// MemoryBytes estimates the in-memory footprint of the tree structure
// (pivot sequences, radii, pointers), comparable with the STRG-Index size
// accounting.
func (t *Tree[P]) MemoryBytes() int {
	return t.nodeBytes(t.root)
}

func (t *Tree[P]) nodeBytes(n *node[P]) int {
	total := 0
	for _, e := range n.entries {
		total += seqBytes(e.seq) + 8 + 8 // seq + parentDist + radius
		if e.child != nil {
			total += 8 + t.nodeBytes(e.child)
		}
	}
	return total
}

func seqBytes(s dist.Sequence) int {
	if len(s) == 0 {
		return 0
	}
	return len(s) * s.Dim() * 8
}
