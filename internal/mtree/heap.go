package mtree

// minHeap is a small generic binary min-heap ordered by less. The zero
// value with a non-nil less is ready to use.
type minHeap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func (h *minHeap[T]) len() int { return len(h.items) }

func (h *minHeap[T]) peek() T { return h.items[0] }

func (h *minHeap[T]) push(v T) {
	h.items = append(h.items, v)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap[T]) pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < last && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

// maxHeap orders by the inverse of less: the largest element sits on top.
type maxHeap[T any] struct {
	inner minHeap[T]
	less  func(a, b T) bool
}

func (h *maxHeap[T]) init() {
	if h.inner.less == nil {
		h.inner.less = func(a, b T) bool { return h.less(b, a) }
	}
}

func (h *maxHeap[T]) len() int { return h.inner.len() }

func (h *maxHeap[T]) peek() T { return h.inner.peek() }

func (h *maxHeap[T]) push(v T) {
	h.init()
	h.inner.push(v)
}

func (h *maxHeap[T]) pop() T {
	h.init()
	return h.inner.pop()
}
