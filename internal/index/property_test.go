package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"strgindex/internal/dist"
)

// randomItems builds a random variable-length 2-D item set.
func randomItems(rng *rand.Rand, n int) []Item[int] {
	items := make([]Item[int], n)
	for i := range items {
		m := 2 + rng.Intn(6)
		s := make(dist.Sequence, m)
		for j := range s {
			s[j] = dist.Vec{rng.Float64() * 300, rng.Float64() * 200}
		}
		items[i] = Item[int]{Seq: s, Payload: i}
	}
	return items
}

// TestKNNExactMatchesBruteForceProperty: for any data, cluster count and
// query, the exact search equals brute force under the key metric.
func TestKNNExactMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, kSel, clSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(90)
		items := randomItems(rng, n)
		tr := New[int](Config{
			Seed:        seed,
			NumClusters: 1 + int(clSel%7),
			EMMaxIter:   8,
		})
		if err := tr.AddSegment(nil, items); err != nil {
			return false
		}
		q := dist.Sequence{{rng.Float64() * 300, rng.Float64() * 200}}
		k := 1 + int(kSel%9)
		got := tr.KNNExact(nil, q, k)
		ref := make([]float64, n)
		for i, it := range items {
			ref[i] = dist.EGEDMZero(q, it.Seq)
		}
		sort.Float64s(ref)
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Distance-ref[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRangeMatchesBruteForceProperty: range search is exact for any radius.
func TestRangeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, radSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		items := randomItems(rng, n)
		tr := New[int](Config{Seed: seed, NumClusters: 4, EMMaxIter: 8})
		if err := tr.AddSegment(nil, items); err != nil {
			return false
		}
		q := items[rng.Intn(n)].Seq
		radius := float64(radSel) * 10
		got := tr.Range(nil, q, radius)
		want := map[int]bool{}
		for _, it := range items {
			if dist.EGEDMZero(q, it.Seq) <= radius {
				want[it.Payload] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r.Payload] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsAfterChurnProperty: leaf key order and key correctness
// survive arbitrary insert sequences and splits.
func TestInvariantsAfterChurnProperty(t *testing.T) {
	f := func(seed int64, leafSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int](Config{
			Seed:           seed,
			NumClusters:    3,
			EMMaxIter:      6,
			MaxLeafEntries: 8 + int(leafSel%16),
		})
		if err := tr.AddSegment(nil, randomItems(rng, 20)); err != nil {
			return false
		}
		for i := 0; i < 60; i++ {
			m := 2 + rng.Intn(5)
			s := make(dist.Sequence, m)
			for j := range s {
				s[j] = dist.Vec{rng.Float64() * 300, rng.Float64() * 200}
			}
			if err := tr.Insert(nil, s, 1000+i); err != nil {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotRoundTripProperty: snapshot/restore preserves every record
// for arbitrary trees.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New[int](Config{Seed: seed, NumClusters: 4, EMMaxIter: 6})
		if err := tr.AddSegment(nil, randomItems(rng, 25+rng.Intn(40))); err != nil {
			return false
		}
		restored, err := FromSnapshot(tr.Snapshot(), Config{Seed: seed, NumClusters: 4})
		if err != nil {
			return false
		}
		if restored.Len() != tr.Len() || restored.NumClusters() != tr.NumClusters() {
			return false
		}
		a, b := tr.Items(), restored.Items()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Payload != b[i].Payload {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
