package index_test

import (
	"fmt"

	"strgindex/internal/dist"
	"strgindex/internal/index"
)

// Indexing trajectories and answering a k-NN query with Algorithm 3.
func ExampleTree_KNN() {
	tr := index.New[string](index.Config{NumClusters: 2, Seed: 1})
	east := dist.Sequence{{0, 50}, {100, 50}, {200, 50}}
	south := dist.Sequence{{100, 0}, {100, 100}, {100, 200}}
	err := tr.AddSegment(nil, []index.Item[string]{
		{Seq: east, Payload: "clip-east"},
		{Seq: south, Payload: "clip-south"},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	query := dist.Sequence{{0, 52}, {100, 48}, {200, 51}}
	for _, hit := range tr.KNN(nil, query, 1) {
		fmt.Println(hit.Payload)
	}
	// Output: clip-east
}
