package index

import (
	"math"
	"math/rand"

	"bytes"
	"context"
	"encoding/gob"
	"strgindex/internal/dist"
	"testing"
)

// TestColumnarOnOffByteIdentical is the tentpole's acceptance check: the
// columnar layout with its batched kernel and quantized tier must return
// byte-identical results AND byte-identical SearchStats to the
// pointer-chasing per-pair path, at every worker count and search mode.
func TestColumnarOnOffByteIdentical(t *testing.T) {
	seqs := detSequences(150, 91)
	queries := detSequences(10, 92)
	for _, workers := range []int{0, 1, 2, 4} {
		// SearchStats legitimately vary with the worker count (the pruning
		// threshold evolves with scan interleaving), so the reference runs
		// at the same worker count — only the layout differs.
		ref := buildCascadeTree(t, seqs, workers, func(c *Config) { c.DisableColumnar = true })
		tr := buildCascadeTree(t, seqs, workers, nil)
		for qi, q := range queries {
			for _, k := range []int{1, 5, 20} {
				sameResults(t, labelf("workers=%d q=%d k=%d KNN", workers, qi, k),
					tr.KNN(nil, q, k), ref.KNN(nil, q, k))
				sameResults(t, labelf("workers=%d q=%d k=%d KNNExact", workers, qi, k),
					tr.KNNExact(nil, q, k), ref.KNNExact(nil, q, k))
			}
			for _, radius := range []float64{30, 150, 500} {
				sameResults(t, labelf("workers=%d q=%d r=%v Range", workers, qi, radius),
					tr.Range(nil, q, radius), ref.Range(nil, q, radius))
			}
			// The quant tier folds into the envelope stage by design, so
			// the full stats structs must match, not just the results.
			gotR, gotSt, err := tr.KNNExactStats(nil, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			wantR, wantSt, err := ref.KNNExactStats(nil, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, labelf("workers=%d q=%d stats-knn", workers, qi), gotR, wantR)
			if gotSt != wantSt {
				t.Fatalf("workers=%d q=%d: SearchStats differ: columnar %+v, reference %+v",
					workers, qi, gotSt, wantSt)
			}
			_, gotRg, err := tr.RangeStatsCtx(context.Background(), nil, q, 150)
			if err != nil {
				t.Fatal(err)
			}
			_, wantRg, err := ref.RangeStatsCtx(context.Background(), nil, q, 150)
			if err != nil {
				t.Fatal(err)
			}
			if gotRg != wantRg {
				t.Fatalf("workers=%d q=%d: Range SearchStats differ: columnar %+v, reference %+v",
					workers, qi, gotRg, wantRg)
			}
		}
	}
}

// TestColumnarAfterChurn: inserts after construction (whose records carry
// codes from a grid fitted earlier, or none at all) and splits (which
// refit) keep the columnar tree byte-identical to the reference.
func TestColumnarAfterChurn(t *testing.T) {
	seqs := detSequences(60, 93)
	extra := detSequences(60, 94)
	queries := detSequences(6, 95)
	build := func(mut func(*Config)) *Tree[int] {
		tr := buildCascadeTree(t, seqs, 2, mut)
		for i, s := range extra {
			if err := tr.Insert(nil, s, 1000+i); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	ref := build(func(c *Config) { c.DisableColumnar = true })
	tr := build(nil)
	for qi, q := range queries {
		sameResults(t, labelf("q=%d KNNExact", qi), tr.KNNExact(nil, q, 9), ref.KNNExact(nil, q, 9))
		sameResults(t, labelf("q=%d Range", qi), tr.Range(nil, q, 200), ref.Range(nil, q, 200))
	}
}

// TestSearchBatchByteIdentical: the KNNExact leaf-batching knob changes
// scheduling granularity only, never results.
func TestSearchBatchByteIdentical(t *testing.T) {
	seqs := detSequences(120, 96)
	queries := detSequences(6, 97)
	ref := buildCascadeTree(t, seqs, 1, nil)
	for _, batch := range []int{1, 3, 64} {
		tr := buildCascadeTree(t, seqs, 4, func(c *Config) { c.SearchBatch = batch })
		for qi, q := range queries {
			sameResults(t, labelf("batch=%d q=%d", batch, qi),
				tr.KNNExact(nil, q, 8), ref.KNNExact(nil, q, 8))
		}
	}
}

// TestColumnarSnapshotCrossRestore: a packed-columnar (v2) snapshot loads
// into both columnar and non-columnar trees, a nested-Seqs (v1-form)
// snapshot loads into both, and all four restores answer queries
// byte-identically — through a gob round trip, as core persistence does.
func TestColumnarSnapshotCrossRestore(t *testing.T) {
	seqs := detSequences(80, 98)
	queries := detSequences(5, 99)
	baseCfg := Config{NumClusters: 5, Seed: 11, MaxLeafEntries: 16}
	colTree := buildCascadeTree(t, seqs, 1, nil)
	rowTree := buildCascadeTree(t, seqs, 1, func(c *Config) { c.DisableColumnar = true })

	colSnap, rowSnap := colTree.Snapshot(), rowTree.Snapshot()
	for _, cl := range colSnap.Roots[0].Clusters {
		if cl.Seqs != nil || cl.ColLens == nil {
			t.Fatal("columnar tree did not emit the packed encoding")
		}
	}
	for _, cl := range rowSnap.Roots[0].Clusters {
		if cl.Seqs == nil || cl.ColLens != nil {
			t.Fatal("non-columnar tree did not emit the nested encoding")
		}
	}

	for _, tc := range []struct {
		name    string
		snap    Snapshot[int]
		disable bool
	}{
		{"packed->columnar", colSnap, false},
		{"packed->row", colSnap, true},
		{"nested->columnar", rowSnap, false},
		{"nested->row", rowSnap, true},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&tc.snap); err != nil {
			t.Fatal(err)
		}
		var decoded Snapshot[int]
		if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
			t.Fatal(err)
		}
		cfg := baseCfg
		cfg.DisableColumnar = tc.disable
		restored, err := FromSnapshot(decoded, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := restored.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if restored.Len() != colTree.Len() {
			t.Fatalf("%s: Len = %d, want %d", tc.name, restored.Len(), colTree.Len())
		}
		for qi, q := range queries {
			sameResults(t, labelf("%s q=%d", tc.name, qi),
				restored.KNNExact(nil, q, 6), colTree.KNNExact(nil, q, 6))
			sameResults(t, labelf("%s q=%d range", tc.name, qi),
				restored.Range(nil, q, 150), colTree.Range(nil, q, 150))
		}
	}
}

// TestColumnarSnapshotRejectsTruncatedBlock: a packed snapshot whose
// column block is shorter than its lengths claim is refused, not sliced
// out of range or silently zero-filled.
func TestColumnarSnapshotRejectsTruncatedBlock(t *testing.T) {
	tr := buildCascadeTree(t, detSequences(30, 100), 1, nil)
	snap := tr.Snapshot()
	cl := &snap.Roots[0].Clusters[0]
	cl.ColData = cl.ColData[:len(cl.ColData)-1]
	if _, err := FromSnapshot(snap, Config{NumClusters: 5, Seed: 11, MaxLeafEntries: 16}); err == nil {
		t.Fatal("truncated column block accepted")
	}
}

// ringSequences places tight trajectories on a circle: every sequence has
// (nearly) the same gap-sum, so the O(1) quick bound cannot separate them,
// but their envelopes are far apart along both axes — the workload where
// the envelope tier, and hence its quantized shadow, does the pruning.
func ringSequences(n int, seed int64) []dist.Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dist.Sequence, n)
	for i := range out {
		ang := 2 * math.Pi * float64(i) / float64(n)
		cx, cy := 300*math.Cos(ang), 300*math.Sin(ang)
		s := make(dist.Sequence, 6)
		for j := range s {
			s[j] = dist.Vec{cx + rng.Float64()*4, cy + rng.Float64()*4}
		}
		out[i] = s
	}
	return out
}

// TestQuantTierFires: the tier must actually prune on an
// envelope-separable workload — the bit-identity tests above would pass
// trivially if the tier never ran — and its firing must leave results and
// SearchStats identical to the non-columnar reference.
func TestQuantTierFires(t *testing.T) {
	// One big leaf: leaf-level bounds cannot skip anything, so every far
	// record must die in the record-level cascade.
	oneLeaf := func(c *Config) { c.NumClusters = 1; c.MaxLeafEntries = 500 }
	seqs := ringSequences(120, 101)
	tr := buildCascadeTree(t, seqs, 1, oneLeaf)
	ref := buildCascadeTree(t, seqs, 1, func(c *Config) { oneLeaf(c); c.DisableColumnar = true })
	queries := ringSequences(8, 102)
	before := QuantPruned()
	for qi, q := range queries {
		gotR, gotSt, err := tr.KNNExactStats(nil, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantR, wantSt, err := ref.KNNExactStats(nil, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, labelf("q=%d", qi), gotR, wantR)
		if gotSt != wantSt {
			t.Fatalf("q=%d: SearchStats differ with quant tier firing: %+v vs %+v", qi, gotSt, wantSt)
		}
		if gotSt.LBEnvelopePruned == 0 {
			t.Fatalf("q=%d: ring workload exercised no envelope pruning (%+v)", qi, gotSt)
		}
	}
	if d := QuantPruned() - before; d == 0 {
		t.Fatal("quantized tier pruned nothing across 8 ring queries")
	} else {
		t.Logf("quant tier pruned %d records", d)
	}
}
