package index

import (
	"context"
	"sync"
	"sync/atomic"

	"strgindex/internal/cluster"
	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// Sharded is an STRG-Index partitioned into independently versioned
// copy-on-write shards, safe for any number of concurrent readers
// alongside one writer at a time (writers are serialized internally).
//
// # Partitioning
//
// Shards partition root records (backgrounds), not raw segments: a root is
// assigned to shard hash(globalRootID) mod Shards when it is created, and
// every segment routed to that root — the deterministic SimGraph
// resolution of Algorithm 3 — lands on its shard forever. Because a root's
// internal structure (cluster bootstrap, centroid routing, BIC splits)
// depends only on the sequence of segments addressed to it, and that
// sequence is independent of how roots are distributed, the per-root
// structure is identical at every shard count. A global root directory
// preserves creation order, so merged views enumerate roots exactly as a
// single tree would — which makes query results byte-identical to the
// single-shard (and plain Tree) build at every shard/worker setting.
//
// # Concurrency protocol (RCU)
//
// Each shard holds an atomic pointer to an immutable (tree, version)
// snapshot. Readers load the directory, then each shard pointer, assemble
// a merged read-only view and search it without taking any lock. A writer
// clones the target shard's tree (sharing all nodes), privatizes only the
// nodes it touches, then publishes: shard pointer first, directory second.
// Directory entries therefore always resolve — an entry is visible only
// after the snapshot holding its root is — and each query sees one
// consistent prefix of commit history (commits are fully ordered by the
// writer lock).
type Sharded[P any] struct {
	cfg     Config
	matcher *graph.Matcher
	n       int
	async   bool

	// mu serializes writers (ingest, delete, adopted async splits). Never
	// held by readers.
	mu     sync.Mutex
	shards []shardSlot[P]
	dir    atomic.Pointer[[]rootEntry]
	// wg tracks in-flight asynchronous split evaluations (Quiesce waits).
	wg sync.WaitGroup
}

type shardSlot[P any] struct {
	cur atomic.Pointer[shardVersion[P]]
}

// shardVersion is one published immutable snapshot of a shard.
type shardVersion[P any] struct {
	tree    *Tree[P]
	version uint64
}

// rootEntry maps one global root (directory position = global root ID,
// creation order) to its home shard and the root's index inside that
// shard's tree.
type rootEntry struct {
	bg    *graph.Graph
	shard int
	local int
}

// MaxShards bounds Config.Shards; the shard index must fit the distance
// cache's fixed generation table.
const MaxShards = 256

// NewSharded creates an empty sharded STRG-Index with cfg.Shards shards
// (clamped to [1, MaxShards]) and cfg.AsyncSplit deciding whether BIC
// splits run inline on the write path or on background goroutines.
func NewSharded[P any](cfg Config) *Sharded[P] {
	cfg = cfg.withDefaults()
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	s := &Sharded[P]{cfg: cfg, matcher: graph.NewMatcher(cfg.Tol), n: n, async: cfg.AsyncSplit}
	s.shards = make([]shardSlot[P], n)
	for i := range s.shards {
		t := New[P](cfg)
		t.shardTag = uint32(i)
		s.shards[i].cur.Store(&shardVersion[P]{tree: t})
	}
	dir := []rootEntry{}
	s.dir.Store(&dir)
	return s
}

// shardOf assigns a global root ID to a shard: FNV-1a over the ID's
// little-endian bytes, mod the shard count. Deterministic for a fixed
// count; changing the count between restarts simply re-homes roots
// (results are shard-placement independent).
func (s *Sharded[P]) shardOf(globalID int) int {
	if s.n == 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	v := uint64(globalID)
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	return int(h % uint64(s.n))
}

// ShardOfRoot exposes the deterministic global-root-ID → shard
// assignment (see shardOf). The replication layer groups a canonical
// snapshot's roots by shard with it to compute per-shard anti-entropy
// hashes that are stable across build paths.
func (s *Sharded[P]) ShardOfRoot(globalID int) int { return s.shardOf(globalID) }

// resolveRoot mirrors Tree.findOrCreateRoot's matching over the directory
// (creation order): the index of the best SimGraph match at or above the
// threshold, the first nil-background entry for a nil bg, or -1.
func (s *Sharded[P]) resolveRoot(dir []rootEntry, bg *graph.Graph) int {
	if bg == nil {
		for i := range dir {
			if dir[i].bg == nil {
				return i
			}
		}
		return -1
	}
	best := -1
	bestSim := 0.0
	for i := range dir {
		if dir[i].bg == nil {
			continue
		}
		if sim := s.matcher.SimGraph(bg, dir[i].bg); sim > bestSim {
			best, bestSim = i, sim
		}
	}
	if best >= 0 && bestSim >= s.cfg.BGSimThreshold {
		return best
	}
	return -1
}

// RouteShard returns the shard a segment with background bg commits to:
// its matched root's home shard, or — for a background that will create a
// new root — the shard the next global root ID hashes to. Pure (no state
// changes), so the durability layer can log the route before the commit
// mutates anything. Callers must not interleave other writes between
// RouteShard and the AddSegment it describes.
func (s *Sharded[P]) RouteShard(bg *graph.Graph) int {
	dir := *s.dir.Load()
	if gi := s.resolveRoot(dir, bg); gi >= 0 {
		return dir[gi].shard
	}
	return s.shardOf(len(dir))
}

// publish installs tree as shard si's next snapshot. Caller holds s.mu.
func (s *Sharded[P]) publish(si int, tree *Tree[P]) {
	cur := s.shards[si].cur.Load()
	s.shards[si].cur.Store(&shardVersion[P]{tree: tree, version: cur.version + 1})
	shardVersionSwaps.Inc()
}

// AddSegment routes the segment to its root's shard and commits it on a
// copy-on-write clone of that shard's tree: queries keep reading the
// previous snapshot, lock-free, until the new version is published.
// Unlike the plain Tree, a failed commit leaves the shard completely
// unchanged (the clone is discarded).
func (s *Sharded[P]) AddSegment(bg *graph.Graph, items []Item[P]) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := *s.dir.Load()
	gi := s.resolveRoot(dir, bg)
	if gi >= 0 {
		if len(items) == 0 {
			return nil
		}
		e := dir[gi]
		nt := s.shards[e.shard].cur.Load().tree.clone()
		x := &txn[P]{t: nt, cow: true, rootIdx: e.local, deferSplit: s.async}
		if err := nt.addItemsAt(x, e.local, items); err != nil {
			return err
		}
		s.publish(e.shard, nt)
		s.spawnSplits(e.shard, x.splitCands)
		return nil
	}
	// New root: home it on the shard its global ID hashes to. Matching the
	// plain tree, the root is created even when the segment carries no
	// items (its background still routes future segments).
	si := s.shardOf(len(dir))
	nt := s.shards[si].cur.Load().tree.clone()
	local := len(nt.roots)
	root := &rootRecord[P]{id: local, bg: bg}
	nt.roots = append(nt.roots, root)
	x := &txn[P]{t: nt, cow: true, rootIdx: local, deferSplit: s.async}
	x.own(root)
	if len(items) > 0 {
		if err := nt.addItemsAt(x, local, items); err != nil {
			return err
		}
	}
	s.publish(si, nt)
	nd := make([]rootEntry, len(dir), len(dir)+1)
	copy(nd, dir)
	nd = append(nd, rootEntry{bg: bg, shard: si, local: local})
	s.dir.Store(&nd)
	s.spawnSplits(si, x.splitCands)
	return nil
}

// Insert adds a single OG, routing by background like AddSegment.
func (s *Sharded[P]) Insert(bg *graph.Graph, seq dist.Sequence, payload P) error {
	return s.AddSegment(bg, []Item[P]{{Seq: seq, Payload: payload}})
}

// spawnSplits hands deferred split candidates to background evaluation.
// Caller holds s.mu (candidates reference the just-published snapshot).
func (s *Sharded[P]) spawnSplits(si int, cands []splitCand) {
	for _, c := range cands {
		s.wg.Add(1)
		go s.asyncSplit(si, c)
	}
}

// asyncSplit runs one deferred Section 5.3 evaluation: fit the one- and
// two-component models against the cluster's published membership with no
// lock held, then revalidate under the writer lock — the cluster record
// pointer must be unchanged, i.e. no commit touched the leaf since the
// candidate snapshot — and publish the split on a fresh clone. A changed
// cluster retries against the new membership a bounded number of times.
func (s *Sharded[P]) asyncSplit(si int, c splitCand) {
	defer s.wg.Done()
	for attempt := 0; attempt < 4; attempt++ {
		sv := s.shards[si].cur.Load()
		if c.rootIdx >= len(sv.tree.roots) {
			return
		}
		root := sv.tree.roots[c.rootIdx]
		ci := findClusterByID(root, c.clusterID)
		if ci < 0 {
			return
		}
		cl := root.clusters[ci]
		if len(cl.leaf) <= s.cfg.MaxLeafEntries {
			return
		}
		s.mu.Lock()
		skip := cl.splitChecked == len(cl.leaf)
		s.mu.Unlock()
		if skip {
			return
		}
		seqs := make([]dist.Sequence, len(cl.leaf))
		for i, rec := range cl.leaf {
			seqs[i] = rec.seq
		}
		dec, err := cluster.SplitEval(seqs, sv.tree.clusterCfg())
		splitEvals.Inc()
		if err != nil {
			return
		}
		s.mu.Lock()
		cur := s.shards[si].cur.Load()
		if c.rootIdx >= len(cur.tree.roots) {
			s.mu.Unlock()
			return
		}
		curRoot := cur.tree.roots[c.rootIdx]
		ci = findClusterByID(curRoot, c.clusterID)
		if ci < 0 || curRoot.clusters[ci] != cl {
			// The cluster changed under us; the fit no longer describes its
			// membership. Retry against the new snapshot.
			s.mu.Unlock()
			continue
		}
		if !dec.Adopt {
			// Remember the declined size on the shared record — advisory
			// state readers never touch, written only under s.mu.
			cl.splitChecked = len(cl.leaf)
			s.mu.Unlock()
			return
		}
		nt := cur.tree.clone()
		x := &txn[P]{t: nt, cow: true}
		r := x.root(c.rootIdx)
		target := x.cluster(r, ci)
		if nt.applySplit(r, target, dec.Two) {
			s.publish(si, nt)
			splitsAsync.Inc()
		} else {
			cl.splitChecked = len(cl.leaf)
		}
		s.mu.Unlock()
		return
	}
}

// findClusterByID locates a cluster record by ID within a root (IDs are
// unique per shard tree and stable across copy-on-write).
func findClusterByID[P any](root *rootRecord[P], id int) int {
	for i, cl := range root.clusters {
		if cl.id == id {
			return i
		}
	}
	return -1
}

// Quiesce waits until no asynchronous split evaluation is in flight.
// Deterministic tests and shutdown paths call it before inspecting or
// serializing state.
func (s *Sharded[P]) Quiesce() { s.wg.Wait() }

// Delete removes the first indexed record (in global root order, matching
// Tree.Delete) whose sequence equals seq and whose payload satisfies pred,
// publishing a new snapshot of the affected shard. It reports whether a
// record was removed.
func (s *Sharded[P]) Delete(seq dist.Sequence, pred func(P) bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := *s.dir.Load()
	for _, e := range dir {
		nt := s.shards[e.shard].cur.Load().tree.clone()
		x := &txn[P]{t: nt, cow: true}
		if nt.deleteFromRoot(x, e.local, seq, pred) {
			s.publish(e.shard, nt)
			return true
		}
	}
	return false
}

// shardedView is one query's consistent read snapshot: a merged read-only
// tree plus the shard versions it was assembled from.
type shardedView[P any] struct {
	t        *Tree[P]
	versions []uint64
}

// view assembles the merged read-only tree: directory first, then each
// shard snapshot. The writer publishes in the opposite order (snapshot
// before directory), so every directory entry resolves in the snapshots
// loaded here; at most the view also carries roots newer than the
// directory, which it ignores by construction (it enumerates dir entries).
func (s *Sharded[P]) view() shardedView[P] {
	dir := *s.dir.Load()
	versions := make([]uint64, s.n)
	trees := make([]*Tree[P], s.n)
	size := 0
	for i := range s.shards {
		sv := s.shards[i].cur.Load()
		trees[i], versions[i] = sv.tree, sv.version
		size += sv.tree.size
	}
	roots := make([]*rootRecord[P], len(dir))
	for j, e := range dir {
		roots[j] = trees[e.shard].roots[e.local]
	}
	vt := &Tree[P]{cfg: s.cfg, matcher: s.matcher, roots: roots, size: size}
	return shardedView[P]{t: vt, versions: versions}
}

// observeStaleness records how many versions were published while the
// query ran: its snapshot's staleness at completion. Freshly acquired
// snapshots are never stale (readers always load the latest pointer), so
// a nonzero lag only means writes landed mid-query — the RCU trade.
func (s *Sharded[P]) observeStaleness(v shardedView[P]) {
	var lag uint64
	for i := range s.shards {
		if d := s.shards[i].cur.Load().version - v.versions[i]; d > lag {
			lag = d
		}
	}
	staleVersionLag.Set(int64(lag))
	if lag > 0 {
		staleReads.Inc()
	}
}

// View returns a read-only merged Tree over the current snapshots —
// byte-identical in structure and iteration order to the plain
// single-tree build of the same ingest sequence. The caller must not
// mutate it; queries on it are lock-free and safe alongside writers.
func (s *Sharded[P]) View() *Tree[P] { return s.view().t }

// KNN is Tree.KNN over a lock-free merged view.
func (s *Sharded[P]) KNN(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, err := s.KNNCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNCtx is Tree.KNNCtx over a lock-free merged view.
func (s *Sharded[P]) KNNCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], error) {
	res, _, err := s.KNNStatsCtx(ctx, bg, query, k)
	return res, err
}

// KNNStatsCtx is Tree.KNNStatsCtx over a lock-free merged view.
func (s *Sharded[P]) KNNStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	v := s.view()
	res, st, err := v.t.KNNStatsCtx(ctx, bg, query, k)
	s.observeStaleness(v)
	return res, st, err
}

// KNNExact is Tree.KNNExact over a lock-free merged view.
func (s *Sharded[P]) KNNExact(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, _, err := s.KNNExactStatsCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNExactStatsCtx is Tree.KNNExactStatsCtx over a lock-free merged view.
func (s *Sharded[P]) KNNExactStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	v := s.view()
	res, st, err := v.t.KNNExactStatsCtx(ctx, bg, query, k)
	s.observeStaleness(v)
	return res, st, err
}

// Range is Tree.Range over a lock-free merged view.
func (s *Sharded[P]) Range(bg *graph.Graph, query dist.Sequence, radius float64) []Result[P] {
	res, _, err := s.RangeStatsCtx(context.Background(), bg, query, radius)
	must(err)
	return res
}

// RangeStatsCtx is Tree.RangeStatsCtx over a lock-free merged view.
func (s *Sharded[P]) RangeStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, radius float64) ([]Result[P], SearchStats, error) {
	v := s.view()
	res, st, err := v.t.RangeStatsCtx(ctx, bg, query, radius)
	s.observeStaleness(v)
	return res, st, err
}

// NumShards returns the shard count.
func (s *Sharded[P]) NumShards() int { return s.n }

// Cascade exposes the key metric's lower-bound cascade (never nil after
// construction: withDefaults fills it). External rankers use it so their
// distances are bit-identical to the index's own.
func (s *Sharded[P]) Cascade() dist.Cascade { return s.cfg.Cascade }

// Versions returns each shard's published snapshot version. Versions are
// monotonic; the sum advances by one per committed write (or adopted
// async split).
func (s *Sharded[P]) Versions() []uint64 {
	out := make([]uint64, s.n)
	for i := range s.shards {
		out[i] = s.shards[i].cur.Load().version
	}
	return out
}

// Len returns the number of indexed OGs (lock-free; exact between
// commits).
func (s *Sharded[P]) Len() int { return s.view().t.Len() }

// NumRoots returns the number of root records across all shards.
func (s *Sharded[P]) NumRoots() int { return len(*s.dir.Load()) }

// NumClusters returns the total number of cluster records.
func (s *Sharded[P]) NumClusters() int { return s.View().NumClusters() }

// MemoryBytes evaluates Equation 10 over the merged view.
func (s *Sharded[P]) MemoryBytes() int { return s.View().MemoryBytes() }

// Items returns every indexed item in global (root, cluster, key) order —
// the plain tree's order.
func (s *Sharded[P]) Items() []Item[P] { return s.View().Items() }

// CheckInvariants verifies the merged view (leaf order and key
// correctness across every shard).
func (s *Sharded[P]) CheckInvariants() error { return s.View().CheckInvariants() }

// Snapshot serializes the merged view in global root order, renumbering
// roots by directory position and clusters sequentially so the image is
// self-consistent regardless of shard count. NewShardedFromSnapshot (any
// shard count) and FromSnapshot both restore it.
func (s *Sharded[P]) Snapshot() Snapshot[P] {
	snap := s.View().Snapshot()
	next := 0
	for j := range snap.Roots {
		snap.Roots[j].ID = j
		for k := range snap.Roots[j].Clusters {
			snap.Roots[j].Clusters[k].ID = next
			next++
		}
	}
	return snap
}

// NewShardedFromSnapshot reconstructs a sharded index from a snapshot
// (produced by Sharded.Snapshot or Tree.Snapshot), re-homing each root by
// the hash of its position — the creation-order global ID — so any shard
// count restores the same logical database.
func NewShardedFromSnapshot[P any](snap Snapshot[P], cfg Config) (*Sharded[P], error) {
	s := NewSharded[P](cfg)
	trees := make([]*Tree[P], s.n)
	for i := range trees {
		trees[i] = s.shards[i].cur.Load().tree
	}
	dir := make([]rootEntry, 0, len(snap.Roots))
	for j, rs := range snap.Roots {
		si := s.shardOf(j)
		t := trees[si]
		local := len(t.roots)
		if err := t.restoreRoot(rs); err != nil {
			return nil, err
		}
		dir = append(dir, rootEntry{bg: t.roots[local].bg, shard: si, local: local})
	}
	for i, t := range trees {
		if err := t.CheckInvariants(); err != nil {
			return nil, err
		}
		s.shards[i].cur.Store(&shardVersion[P]{tree: t, version: 1})
	}
	s.dir.Store(&dir)
	return s, nil
}
