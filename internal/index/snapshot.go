package index

import (
	"fmt"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// Snapshot is a serializable image of a Tree: exported, map-free types for
// encoding/gob. Restoring requires the same Config the tree was built with
// (metrics are functions and cannot be serialized); the restore verifies
// leaf keys against the configured metric and fails loudly on mismatch.
type Snapshot[P any] struct {
	Roots []RootSnapshot[P]
}

// RootSnapshot serializes one root record.
type RootSnapshot[P any] struct {
	ID int
	// HasBG distinguishes a nil background from an empty graph.
	HasBG    bool
	BG       graph.Snapshot
	Clusters []ClusterSnapshot[P]
}

// ClusterSnapshot serializes one cluster record with its leaf. Two
// equivalent encodings of the member sequences exist:
//
//   - Seqs: one dist.Sequence per record (the v1 container form);
//   - ColData/ColLens/ColDim: every record's samples packed into one
//     flat row-major float64 column block (record i owns ColLens[i]
//     rows), the form a columnar tree writes — one contiguous gob slice
//     instead of len(leaf) nested slice-of-slices.
//
// A snapshot populates exactly one of the two; restore accepts either
// regardless of the restoring tree's columnar setting, so v1 snapshots
// load into columnar trees and vice versa.
type ClusterSnapshot[P any] struct {
	ID       int
	Centroid dist.Sequence
	Keys     []float64
	Seqs     []dist.Sequence
	ColData  []float64
	ColLens  []int
	ColDim   int
	Payloads []P
}

// Snapshot captures the tree's current state.
func (t *Tree[P]) Snapshot() Snapshot[P] {
	var s Snapshot[P]
	for _, r := range t.roots {
		rs := RootSnapshot[P]{ID: r.id}
		if r.bg != nil {
			rs.HasBG = true
			rs.BG = r.bg.Snapshot()
		}
		for _, cl := range r.clusters {
			cs := ClusterSnapshot[P]{ID: cl.id, Centroid: cl.centroid}
			for _, rec := range cl.leaf {
				cs.Keys = append(cs.Keys, rec.key)
				cs.Payloads = append(cs.Payloads, rec.payload)
				if t.cfg.DisableColumnar {
					cs.Seqs = append(cs.Seqs, rec.seq)
					continue
				}
				cs.ColLens = append(cs.ColLens, rec.col.Len())
				cs.ColData = append(cs.ColData, rec.col.Data()...)
				if rec.col.Dim() > 0 {
					cs.ColDim = rec.col.Dim()
				}
			}
			rs.Clusters = append(rs.Clusters, cs)
		}
		s.Roots = append(s.Roots, rs)
	}
	return s
}

// FromSnapshot reconstructs a tree under the given configuration.
func FromSnapshot[P any](s Snapshot[P], cfg Config) (*Tree[P], error) {
	t := New[P](cfg)
	for _, rs := range s.Roots {
		if err := t.restoreRoot(rs); err != nil {
			return nil, err
		}
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("index: snapshot inconsistent with configuration: %w", err)
	}
	return t, nil
}

// restoreRoot appends one serialized root to the tree, recomputing the
// derived per-record state (cascade summary, content hash, shard tag).
// Shared by FromSnapshot and the sharded restore, which re-partitions the
// same root sequence across shard trees.
func (t *Tree[P]) restoreRoot(rs RootSnapshot[P]) error {
	root := &rootRecord[P]{id: rs.ID}
	if rs.HasBG {
		bg, err := graph.FromSnapshot(rs.BG)
		if err != nil {
			return fmt.Errorf("index: restoring root %d: %w", rs.ID, err)
		}
		root.bg = bg
	}
	for _, cs := range rs.Clusters {
		columnar := cs.ColLens != nil
		if columnar {
			if len(cs.Keys) != len(cs.ColLens) || len(cs.Keys) != len(cs.Payloads) {
				return fmt.Errorf("index: cluster %d snapshot length mismatch", cs.ID)
			}
		} else if len(cs.Keys) != len(cs.Seqs) || len(cs.Keys) != len(cs.Payloads) {
			return fmt.Errorf("index: cluster %d snapshot length mismatch", cs.ID)
		}
		cl := &clusterRecord[P]{id: cs.ID, centroid: cs.Centroid}
		off := 0
		for i := range cs.Keys {
			// Materialize the record's sequence from whichever encoding
			// the snapshot carries (see ClusterSnapshot), rebuilding the
			// column block under the restoring tree's own columnar
			// setting — the block and the view sequence share one buffer.
			var col dist.Block
			var seq dist.Sequence
			if columnar {
				n := cs.ColLens[i]
				dim := cs.ColDim
				if n == 0 {
					dim = 0
				}
				end := off + n*dim
				if end > len(cs.ColData) {
					return fmt.Errorf("index: cluster %d column block truncated at record %d", cs.ID, i)
				}
				b, err := dist.BlockOf(cs.ColData[off:end:end], n, dim)
				if err != nil {
					return fmt.Errorf("index: cluster %d record %d: %w", cs.ID, i, err)
				}
				off = end
				col, seq = b, b.Sequence()
			} else {
				seq = cs.Seqs[i]
				if !t.cfg.DisableColumnar {
					col = dist.FromSequence(seq)
					seq = col.Sequence()
				}
			}
			if t.cfg.DisableColumnar {
				col = dist.Block{}
			}
			// The cascade summary and cache hash are derived state;
			// recompute them rather than trusting the snapshot.
			cl.leaf = append(cl.leaf, leafRecord[P]{
				key:     cs.Keys[i],
				seq:     seq,
				payload: cs.Payloads[i],
				sum:     t.cfg.Cascade.Summarize(seq),
				hash:    dist.HashSequence(seq),
				col:     col,
				shard:   t.shardTag,
			})
			t.size++
		}
		if columnar && off != len(cs.ColData) {
			return fmt.Errorf("index: cluster %d column block has %d trailing floats", cs.ID, len(cs.ColData)-off)
		}
		t.refitQuant(cl)
		if cs.ID >= t.nextCl {
			t.nextCl = cs.ID + 1
		}
		root.clusters = append(root.clusters, cl)
	}
	t.roots = append(t.roots, root)
	return nil
}
