package index

import (
	"fmt"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// Snapshot is a serializable image of a Tree: exported, map-free types for
// encoding/gob. Restoring requires the same Config the tree was built with
// (metrics are functions and cannot be serialized); the restore verifies
// leaf keys against the configured metric and fails loudly on mismatch.
type Snapshot[P any] struct {
	Roots []RootSnapshot[P]
}

// RootSnapshot serializes one root record.
type RootSnapshot[P any] struct {
	ID int
	// HasBG distinguishes a nil background from an empty graph.
	HasBG    bool
	BG       graph.Snapshot
	Clusters []ClusterSnapshot[P]
}

// ClusterSnapshot serializes one cluster record with its leaf.
type ClusterSnapshot[P any] struct {
	ID       int
	Centroid dist.Sequence
	Keys     []float64
	Seqs     []dist.Sequence
	Payloads []P
}

// Snapshot captures the tree's current state.
func (t *Tree[P]) Snapshot() Snapshot[P] {
	var s Snapshot[P]
	for _, r := range t.roots {
		rs := RootSnapshot[P]{ID: r.id}
		if r.bg != nil {
			rs.HasBG = true
			rs.BG = r.bg.Snapshot()
		}
		for _, cl := range r.clusters {
			cs := ClusterSnapshot[P]{ID: cl.id, Centroid: cl.centroid}
			for _, rec := range cl.leaf {
				cs.Keys = append(cs.Keys, rec.key)
				cs.Seqs = append(cs.Seqs, rec.seq)
				cs.Payloads = append(cs.Payloads, rec.payload)
			}
			rs.Clusters = append(rs.Clusters, cs)
		}
		s.Roots = append(s.Roots, rs)
	}
	return s
}

// FromSnapshot reconstructs a tree under the given configuration.
func FromSnapshot[P any](s Snapshot[P], cfg Config) (*Tree[P], error) {
	t := New[P](cfg)
	for _, rs := range s.Roots {
		if err := t.restoreRoot(rs); err != nil {
			return nil, err
		}
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("index: snapshot inconsistent with configuration: %w", err)
	}
	return t, nil
}

// restoreRoot appends one serialized root to the tree, recomputing the
// derived per-record state (cascade summary, content hash, shard tag).
// Shared by FromSnapshot and the sharded restore, which re-partitions the
// same root sequence across shard trees.
func (t *Tree[P]) restoreRoot(rs RootSnapshot[P]) error {
	root := &rootRecord[P]{id: rs.ID}
	if rs.HasBG {
		bg, err := graph.FromSnapshot(rs.BG)
		if err != nil {
			return fmt.Errorf("index: restoring root %d: %w", rs.ID, err)
		}
		root.bg = bg
	}
	for _, cs := range rs.Clusters {
		if len(cs.Keys) != len(cs.Seqs) || len(cs.Keys) != len(cs.Payloads) {
			return fmt.Errorf("index: cluster %d snapshot length mismatch", cs.ID)
		}
		cl := &clusterRecord[P]{id: cs.ID, centroid: cs.Centroid}
		for i := range cs.Keys {
			// The cascade summary and cache hash are derived state;
			// recompute them rather than trusting the snapshot.
			cl.leaf = append(cl.leaf, leafRecord[P]{
				key:     cs.Keys[i],
				seq:     cs.Seqs[i],
				payload: cs.Payloads[i],
				sum:     t.cfg.Cascade.Summarize(cs.Seqs[i]),
				hash:    dist.HashSequence(cs.Seqs[i]),
				shard:   t.shardTag,
			})
			t.size++
		}
		if cs.ID >= t.nextCl {
			t.nextCl = cs.ID + 1
		}
		root.clusters = append(root.clusters, cl)
	}
	t.roots = append(t.roots, root)
	return nil
}
