package index

import (
	"fmt"
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

func detSequences(n int, seed int64) []dist.Sequence {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dist.Sequence, n)
	for i := range out {
		l := 4 + rng.Intn(8)
		s := make(dist.Sequence, l)
		for j := range s {
			s[j] = dist.Vec{rng.Float64() * 100, rng.Float64() * 100}
		}
		out[i] = s
	}
	return out
}

func buildDetTree(t *testing.T, seqs []dist.Sequence, workers int) *Tree[int] {
	t.Helper()
	tr := New[int](Config{NumClusters: 5, Seed: 11, MaxLeafEntries: 16, Concurrency: workers})
	items := make([]Item[int], len(seqs))
	for i, s := range seqs {
		items[i] = Item[int]{Seq: s, Payload: i}
	}
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return tr
}

func sameResults(t *testing.T, label string, got, want []Result[int]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Payload != want[i].Payload || got[i].Distance != want[i].Distance {
			t.Fatalf("%s: result %d = (%d, %v), want (%d, %v) — not byte-identical",
				label, i, got[i].Payload, got[i].Distance, want[i].Payload, want[i].Distance)
		}
	}
}

// TestSearchDeterministicUnderConcurrency verifies that construction and
// every search mode produce byte-identical results (payloads AND
// distances, in order) at any worker count: the parallel per-leaf scans
// merge through the canonical (distance, leaf rank, scan step) ordinal, so
// scheduling cannot reorder ties.
func TestSearchDeterministicUnderConcurrency(t *testing.T) {
	seqs := detSequences(120, 47)
	queries := detSequences(15, 48)
	ref := buildDetTree(t, seqs, 1)
	for _, workers := range []int{0, 2, 4} {
		tr := buildDetTree(t, seqs, workers)

		// Identical construction: same items land in the same leaves with
		// the same keys.
		gotItems, wantItems := tr.Items(), ref.Items()
		if len(gotItems) != len(wantItems) {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(gotItems), len(wantItems))
		}
		for i := range wantItems {
			if gotItems[i].Payload != wantItems[i].Payload {
				t.Fatalf("workers=%d: item %d payload %d, want %d (tree layout diverged)",
					workers, i, gotItems[i].Payload, wantItems[i].Payload)
			}
		}

		for qi, q := range queries {
			for _, k := range []int{1, 5, 17} {
				sameResults(t, labelf("workers=%d q=%d k=%d KNN", workers, qi, k),
					tr.KNN(nil, q, k), ref.KNN(nil, q, k))
				sameResults(t, labelf("workers=%d q=%d k=%d KNNExact", workers, qi, k),
					tr.KNNExact(nil, q, k), ref.KNNExact(nil, q, k))
			}
			sameResults(t, labelf("workers=%d q=%d Range", workers, qi),
				tr.Range(nil, q, 150), ref.Range(nil, q, 150))
		}
	}
}

// TestKNNExactTieBreakDeterministic plants exact duplicate sequences so
// equal distances actually occur, then checks the tie order survives
// parallel scanning.
func TestKNNExactTieBreakDeterministic(t *testing.T) {
	seqs := detSequences(30, 53)
	// Duplicate a handful of sequences: their distances to any query tie
	// exactly.
	for i := 0; i < 10; i++ {
		seqs = append(seqs, seqs[i])
	}
	ref := buildDetTree(t, seqs, 1)
	q := detSequences(1, 54)[0]
	want := ref.KNNExact(nil, q, 12)
	for _, workers := range []int{2, 4, 8} {
		tr := buildDetTree(t, seqs, workers)
		sameResults(t, labelf("workers=%d", workers), tr.KNNExact(nil, q, 12), want)
	}
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
