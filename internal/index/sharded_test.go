package index

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// shardBG builds backgrounds that are mutually dissimilar (different node
// counts and sizes), so each creates its own root.
func shardBG(i int) *graph.Graph {
	g := graph.New()
	for n := 0; n <= i; n++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(n), Attr: graph.NodeAttr{
			Size: float64(int(1000) << (3 * i)), Color: graph.Gray(0.1 + 0.2*float64(i)),
		}})
	}
	return g
}

type shardSeg struct {
	bg    int
	items []Item[int]
}

// shardScript produces a deterministic multi-background ingest: one
// bootstrap segment per stream (EM path), then interleaved incremental
// segments (centroid routing + split path). Streams are offset in space so
// their contents differ.
func shardScript(seed int64) ([]*graph.Graph, []shardSeg) {
	bgs := []*graph.Graph{nil, shardBG(1), shardBG(2)}
	rng := rand.New(rand.NewSource(seed))
	payload := 0
	mk := func(n int, base float64) []Item[int] {
		items := make([]Item[int], n)
		for i := range items {
			l := 4 + rng.Intn(6)
			s := make(dist.Sequence, l)
			off := base + 200*float64(i%2)
			for j := range s {
				s[j] = dist.Vec{off + rng.Float64()*100, off + rng.Float64()*100}
			}
			items[i] = Item[int]{Seq: s, Payload: payload}
			payload++
		}
		return items
	}
	var segs []shardSeg
	for b := range bgs {
		segs = append(segs, shardSeg{b, mk(24, 400*float64(b))})
	}
	for round := 0; round < 6; round++ {
		for b := range bgs {
			segs = append(segs, shardSeg{b, mk(3+rng.Intn(4), 400*float64(b))})
		}
	}
	return bgs, segs
}

func sameItems(t *testing.T, label string, got, want []Item[int]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Payload != want[i].Payload {
			t.Fatalf("%s: item %d payload %d, want %d (layout diverged)",
				label, i, got[i].Payload, want[i].Payload)
		}
	}
}

// TestShardedByteIdentityMatrix is the acceptance matrix: shard counts
// {1,2,4} × worker counts × cascade on/off all produce trees whose merged
// iteration order, structure and every search result are byte-identical
// to the plain single-tree build of the same segment sequence.
func TestShardedByteIdentityMatrix(t *testing.T) {
	bgs, segs := shardScript(31)
	queries := detSequences(4, 99)
	for _, workers := range []int{1, 4} {
		for _, noCascade := range []bool{false, true} {
			cfg := Config{Seed: 11, NumClusters: 2, MaxLeafEntries: 8,
				Concurrency: workers, DisableCascade: noCascade}
			ref := New[int](cfg)
			for _, sg := range segs {
				if err := ref.AddSegment(bgs[sg.bg], sg.items); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, nsh := range []int{1, 2, 4} {
				label := labelf("workers=%d cascade=%v shards=%d", workers, !noCascade, nsh)
				scfg := cfg
				scfg.Shards = nsh
				s := NewSharded[int](scfg)
				for _, sg := range segs {
					if err := s.AddSegment(bgs[sg.bg], sg.items); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if s.Len() != ref.Len() || s.NumRoots() != ref.NumRoots() || s.NumClusters() != ref.NumClusters() {
					t.Fatalf("%s: shape (%d,%d,%d), want (%d,%d,%d)", label,
						s.Len(), s.NumRoots(), s.NumClusters(),
						ref.Len(), ref.NumRoots(), ref.NumClusters())
				}
				if s.MemoryBytes() != ref.MemoryBytes() {
					t.Fatalf("%s: MemoryBytes %d, want %d", label, s.MemoryBytes(), ref.MemoryBytes())
				}
				sameItems(t, label, s.Items(), ref.Items())
				// Every committed write published exactly one snapshot.
				var vsum uint64
				for _, v := range s.Versions() {
					vsum += v
				}
				if vsum != uint64(len(segs)) {
					t.Fatalf("%s: version sum %d, want %d", label, vsum, len(segs))
				}
				for b, bg := range bgs {
					for qi, q := range queries {
						sq := q.Clone()
						for _, v := range sq {
							v[0] += 400 * float64(b)
							v[1] += 400 * float64(b)
						}
						ql := labelf("%s bg=%d q=%d", label, b, qi)
						sameResults(t, ql+" KNN", s.KNN(bg, sq, 5), ref.KNN(bg, sq, 5))
						sameResults(t, ql+" KNNExact", s.KNNExact(bg, sq, 9), ref.KNNExact(bg, sq, 9))
						sameResults(t, ql+" Range", s.Range(bg, sq, 150), ref.Range(bg, sq, 150))
					}
				}
				// Search accounting is identical too: same records visited,
				// same cascade dispositions.
				gotRes, gotSt, err1 := s.KNNExactStatsCtx(t.Context(), bgs[1], queries[0], 7)
				wantRes, wantSt, err2 := ref.KNNExactStatsCtx(t.Context(), bgs[1], queries[0], 7)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: stats errs %v %v", label, err1, err2)
				}
				sameResults(t, label+" stats results", gotRes, wantRes)
				if gotSt != wantSt {
					t.Fatalf("%s: stats %+v, want %+v", label, gotSt, wantSt)
				}
			}
		}
	}
}

// TestShardedQueriesServeDuringIngest proves readers never wait on
// writers: with an ingest goroutine parked mid-commit (its cluster
// distance blocked on a channel), exact k-NN and range queries still
// complete against the previous snapshot.
func TestShardedQueriesServeDuringIngest(t *testing.T) {
	var armed atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cd := func(a, b dist.Sequence) float64 {
		if armed.Load() {
			once.Do(func() { close(entered) })
			<-release
		}
		return dist.EGED(a, b)
	}
	s := NewSharded[int](Config{Seed: 5, NumClusters: 2, Shards: 2, ClusterDistance: cd})
	seqs := detSequences(40, 7)
	items := make([]Item[int], len(seqs))
	for i, sq := range seqs {
		items[i] = Item[int]{Seq: sq, Payload: i}
	}
	if err := s.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	lenBefore := s.Len()

	armed.Store(true)
	more := detSequences(5, 8)
	errCh := make(chan error, 1)
	go func() {
		extra := make([]Item[int], len(more))
		for i, sq := range more {
			extra[i] = Item[int]{Seq: sq, Payload: 1000 + i}
		}
		errCh <- s.AddSegment(nil, extra)
	}()
	<-entered // the writer is now parked inside its commit

	q := detSequences(1, 9)[0]
	type ans struct {
		knn []Result[int]
		rng []Result[int]
	}
	done := make(chan ans, 1)
	go func() {
		done <- ans{knn: s.KNNExact(nil, q, 5), rng: s.Range(nil, q, 200)}
	}()
	select {
	case a := <-done:
		if len(a.knn) != 5 {
			t.Fatalf("KNNExact returned %d results during ingest", len(a.knn))
		}
		for _, r := range a.knn {
			if r.Payload >= 1000 {
				t.Fatalf("query observed uncommitted payload %d", r.Payload)
			}
		}
		if s.Len() != lenBefore {
			t.Fatalf("Len %d changed before commit (want %d)", s.Len(), lenBefore)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query blocked behind an in-flight ingest — snapshot reads are not lock-free")
	}
	armed.Store(false)
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if s.Len() != lenBefore+len(more) {
		t.Fatalf("Len after commit = %d, want %d", s.Len(), lenBefore+len(more))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedAsyncSplit drives a leaf past its occupancy bound with two
// well-separated groups under AsyncSplit: the background evaluator must
// adopt a Section 5.3 split (observable via the mode="async" metric and a
// new cluster) without corrupting the index.
func TestShardedAsyncSplit(t *testing.T) {
	s := NewSharded[int](Config{Seed: 11, NumClusters: 1, MaxLeafEntries: 6,
		Shards: 2, AsyncSplit: true})
	before := splitsAsync.Value()
	var boot []Item[int]
	for i := 0; i < 5; i++ {
		boot = append(boot, Item[int]{Seq: trajectory(0, float64(i), 100, float64(i), 6), Payload: i})
	}
	if err := s.AddSegment(nil, boot); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		var seg []Item[int]
		for i := 0; i < 3; i++ {
			y := 600 + float64(b*3+i)
			seg = append(seg, Item[int]{Seq: trajectory(0, y, 100, y, 6), Payload: 100 + b*3 + i})
		}
		if err := s.AddSegment(nil, seg); err != nil {
			t.Fatal(err)
		}
	}
	s.Quiesce()
	if got := splitsAsync.Value(); got <= before {
		t.Fatalf("splits_total{mode=async} = %d, want > %d — no asynchronous split was adopted", got, before)
	}
	if s.NumClusters() < 2 {
		t.Fatalf("NumClusters = %d, want >= 2 after async split", s.NumClusters())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 17 {
		t.Fatalf("Len = %d, want 17", s.Len())
	}
	// Both groups remain findable, exactly.
	got := s.KNNExact(nil, trajectory(0, 601, 100, 601, 6), 3)
	for _, r := range got {
		if r.Payload < 100 {
			t.Fatalf("post-split neighbor %d from the wrong group", r.Payload)
		}
	}
}

// TestShardedDeleteParity checks Delete matches the plain tree: same
// victim (global root order, first match), same post-delete layout and
// answers, and a published snapshot per removal.
func TestShardedDeleteParity(t *testing.T) {
	bgs, segs := shardScript(57)
	cfg := Config{Seed: 11, NumClusters: 2, MaxLeafEntries: 8}
	ref := New[int](cfg)
	scfg := cfg
	scfg.Shards = 3
	s := NewSharded[int](scfg)
	for _, sg := range segs {
		if err := ref.AddSegment(bgs[sg.bg], sg.items); err != nil {
			t.Fatal(err)
		}
		if err := s.AddSegment(bgs[sg.bg], sg.items); err != nil {
			t.Fatal(err)
		}
	}
	for _, victim := range []Item[int]{segs[1].items[2], segs[4].items[0], segs[2].items[5]} {
		pred := func(p int) bool { return p == victim.Payload }
		if got, want := s.Delete(victim.Seq, pred), ref.Delete(victim.Seq, pred); got != want {
			t.Fatalf("Delete(payload=%d) = %v, want %v", victim.Payload, got, want)
		}
	}
	missing := detSequences(1, 4242)[0]
	if s.Delete(missing, func(int) bool { return true }) {
		t.Fatal("Delete of absent sequence reported true")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sameItems(t, "post-delete", s.Items(), ref.Items())
	q := detSequences(1, 77)[0]
	sameResults(t, "post-delete KNNExact", s.KNNExact(nil, q, 8), ref.KNNExact(nil, q, 8))
}

// TestShardedSnapshotRoundtrip serializes a 3-shard index and restores it
// at shard counts 1, 2 and 5 and as a plain tree: every restore yields the
// same logical database (items in order, identical answers).
func TestShardedSnapshotRoundtrip(t *testing.T) {
	bgs, segs := shardScript(83)
	cfg := Config{Seed: 11, NumClusters: 2, MaxLeafEntries: 8, Shards: 3}
	s := NewSharded[int](cfg)
	for _, sg := range segs {
		if err := s.AddSegment(bgs[sg.bg], sg.items); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	wantItems := s.Items()
	q := detSequences(2, 13)
	for _, nsh := range []int{1, 2, 5} {
		rcfg := cfg
		rcfg.Shards = nsh
		r, err := NewShardedFromSnapshot[int](snap, rcfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", nsh, err)
		}
		sameItems(t, labelf("restore shards=%d", nsh), r.Items(), wantItems)
		for qi, query := range q {
			sameResults(t, labelf("restore shards=%d q=%d", nsh, qi),
				r.KNNExact(nil, query, 6), s.KNNExact(nil, query, 6))
			sameResults(t, labelf("restore shards=%d q=%d range", nsh, qi),
				r.Range(nil, query, 180), s.Range(nil, query, 180))
		}
	}
	plain, err := FromSnapshot(snap, Config{Seed: 11, NumClusters: 2, MaxLeafEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameItems(t, "restore plain", plain.Items(), wantItems)
	sameResults(t, "restore plain KNNExact", plain.KNNExact(nil, q[0], 6), s.KNNExact(nil, q[0], 6))
}

// TestRouteShardAgreement checks the pure pre-commit route matches where
// AddSegment actually homes each root — for new backgrounds and repeats.
func TestRouteShardAgreement(t *testing.T) {
	s := NewSharded[int](Config{Seed: 1, NumClusters: 2, Shards: 4})
	for i, bg := range []*graph.Graph{nil, shardBG(1), shardBG(2), shardBG(3)} {
		want := s.RouteShard(bg)
		seqs := detSequences(6, int64(100+i))
		items := make([]Item[int], len(seqs))
		for j, sq := range seqs {
			items[j] = Item[int]{Seq: sq, Payload: i*100 + j}
		}
		if err := s.AddSegment(bg, items); err != nil {
			t.Fatal(err)
		}
		dir := *s.dir.Load()
		e := dir[len(dir)-1]
		if e.shard != want {
			t.Fatalf("bg %d: RouteShard said %d, root homed on %d", i, want, e.shard)
		}
		if got := s.RouteShard(bg); got != e.shard {
			t.Fatalf("bg %d: repeat RouteShard = %d, want %d", i, got, e.shard)
		}
	}
	if s.NumRoots() != 4 {
		t.Fatalf("NumRoots = %d, want 4 (backgrounds unexpectedly matched)", s.NumRoots())
	}
}

// TestShardedEmptySegment matches the plain tree: a background-only
// segment creates a routable root without indexing anything.
func TestShardedEmptySegment(t *testing.T) {
	s := NewSharded[int](Config{Seed: 1, Shards: 2})
	bg := shardBG(1)
	if err := s.AddSegment(bg, nil); err != nil {
		t.Fatal(err)
	}
	if s.NumRoots() != 1 || s.Len() != 0 {
		t.Fatalf("after empty segment: roots=%d len=%d, want 1, 0", s.NumRoots(), s.Len())
	}
	seqs := detSequences(3, 2)
	items := []Item[int]{{Seq: seqs[0], Payload: 0}, {Seq: seqs[1], Payload: 1}, {Seq: seqs[2], Payload: 2}}
	if err := s.AddSegment(shardBG(1), items); err != nil {
		t.Fatal(err)
	}
	if s.NumRoots() != 1 {
		t.Fatalf("similar background created a second root (roots=%d)", s.NumRoots())
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
