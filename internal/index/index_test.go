package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// trajectory builds a 2-D line trajectory from (x0,y0) to (x1,y1) with n
// samples.
func trajectory(x0, y0, x1, y1 float64, n int) dist.Sequence {
	s := make(dist.Sequence, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		s[i] = dist.Vec{x0 + (x1-x0)*t, y0 + (y1-y0)*t}
	}
	return s
}

// patternItems generates items around p distinct trajectory patterns.
func patternItems(perPattern int, noise float64, seed int64) ([]Item[int], []int) {
	rng := rand.New(rand.NewSource(seed))
	protos := []dist.Sequence{
		trajectory(0, 50, 300, 50, 10),   // east
		trajectory(300, 150, 0, 150, 10), // west
		trajectory(150, 0, 150, 200, 10), // south
	}
	var items []Item[int]
	var labels []int
	id := 0
	for p, proto := range protos {
		for i := 0; i < perPattern; i++ {
			seq := proto.Clone()
			for _, v := range seq {
				v[0] += rng.NormFloat64() * noise
				v[1] += rng.NormFloat64() * noise
			}
			items = append(items, Item[int]{Seq: seq, Payload: id})
			labels = append(labels, p)
			id++
		}
	}
	return items, labels
}

func bgGraph(shade float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.MustAddNode(graph.Node{ID: graph.NodeID(i), Attr: graph.NodeAttr{
			Size: 1000, Color: graph.Gray(shade + float64(i)*0.1),
		}})
	}
	_ = g.AddEdge(0, 1, graph.SpatialAttr{Dist: 50})
	_ = g.AddEdge(1, 2, graph.SpatialAttr{Dist: 50})
	_ = g.AddEdge(2, 3, graph.SpatialAttr{Dist: 50})
	return g
}

func TestAddSegmentAndLen(t *testing.T) {
	tr := New[int](Config{Seed: 1})
	items, _ := patternItems(10, 3, 1)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 30 {
		t.Errorf("Len = %d, want 30", tr.Len())
	}
	if tr.NumRoots() != 1 {
		t.Errorf("NumRoots = %d, want 1", tr.NumRoots())
	}
	if tr.NumClusters() < 2 {
		t.Errorf("NumClusters = %d, want >= 2 (BIC should find structure)", tr.NumClusters())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKNNFindsPatternNeighbors(t *testing.T) {
	tr := New[int](Config{Seed: 1})
	items, labels := patternItems(15, 3, 2)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	// Query with a fresh east trajectory: neighbors should be east items.
	q := trajectory(0, 50, 300, 50, 10)
	got := tr.KNN(nil, q, 5)
	if len(got) != 5 {
		t.Fatalf("KNN returned %d, want 5", len(got))
	}
	for _, r := range got {
		if labels[r.Payload] != 0 {
			t.Errorf("neighbor payload %d has label %d, want 0 (east)", r.Payload, labels[r.Payload])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Distance < got[i-1].Distance {
			t.Error("KNN results not sorted")
		}
	}
}

func TestKNNExactMatchesBruteForce(t *testing.T) {
	tr := New[int](Config{Seed: 3})
	items, _ := patternItems(20, 8, 3)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		q := trajectory(rng.Float64()*300, rng.Float64()*200, rng.Float64()*300, rng.Float64()*200, 8+rng.Intn(4))
		k := 1 + rng.Intn(8)
		got := tr.KNNExact(nil, q, k)
		// Brute force.
		type pair struct {
			d float64
			p int
		}
		ref := make([]pair, len(items))
		for i, it := range items {
			ref[i] = pair{dist.EGEDMZero(q, it.Seq), it.Payload}
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].d < ref[j].d })
		if len(got) != k {
			t.Fatalf("KNNExact returned %d, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Distance-ref[i].d) > 1e-9 {
				t.Fatalf("trial %d: result %d distance %v, want %v", trial, i, got[i].Distance, ref[i].d)
			}
		}
	}
}

func TestApproximateKNNSubsetOfExact(t *testing.T) {
	tr := New[int](Config{Seed: 5})
	items, _ := patternItems(20, 5, 6)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	q := trajectory(10, 55, 290, 45, 10)
	approx := tr.KNN(nil, q, 5)
	exact := tr.KNNExact(nil, q, 5)
	if len(approx) == 0 || len(exact) != 5 {
		t.Fatalf("approx %d, exact %d results", len(approx), len(exact))
	}
	// Approximate distances can only be >= the exact ones rank-by-rank.
	for i := range approx {
		if i < len(exact) && approx[i].Distance < exact[i].Distance-1e-9 {
			t.Errorf("approximate rank %d distance %v beats exact %v", i, approx[i].Distance, exact[i].Distance)
		}
	}
}

func TestRangeSearch(t *testing.T) {
	tr := New[int](Config{Seed: 7})
	items, _ := patternItems(15, 3, 8)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	q := items[0].Seq
	radius := 100.0
	got := tr.Range(nil, q, radius)
	// Brute-force reference.
	want := map[int]float64{}
	for _, it := range items {
		if d := dist.EGEDMZero(q, it.Seq); d <= radius {
			want[it.Payload] = d
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d, want %d", len(got), len(want))
	}
	for _, r := range got {
		if wd, ok := want[r.Payload]; !ok || math.Abs(wd-r.Distance) > 1e-9 {
			t.Errorf("payload %d distance %v, want %v (present %v)", r.Payload, r.Distance, wd, ok)
		}
	}
}

func TestBackgroundRouting(t *testing.T) {
	tr := New[int](Config{Seed: 9, NumClusters: 2})
	bgA := bgGraph(0.2)
	bgB := graph.New() // wildly different background: single huge node
	bgB.MustAddNode(graph.Node{ID: 0, Attr: graph.NodeAttr{Size: 99999, Color: graph.Gray(0.9)}})

	itemsA, _ := patternItems(8, 2, 10)
	itemsB := []Item[int]{
		{Seq: trajectory(0, 0, 10, 10, 6), Payload: 1000},
		{Seq: trajectory(0, 0, 12, 9, 6), Payload: 1001},
		{Seq: trajectory(5, 0, 0, 12, 6), Payload: 1002},
	}
	if err := tr.AddSegment(bgA, itemsA); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddSegment(bgB, itemsB); err != nil {
		t.Fatal(err)
	}
	if tr.NumRoots() != 2 {
		t.Fatalf("NumRoots = %d, want 2", tr.NumRoots())
	}
	// A segment with a background similar to bgA must not create a third root.
	if err := tr.AddSegment(bgGraph(0.2), itemsA[:2]); err != nil {
		t.Fatal(err)
	}
	if tr.NumRoots() != 2 {
		t.Errorf("NumRoots after similar background = %d, want 2", tr.NumRoots())
	}
	// Querying with bgB must find bgB's items.
	got := tr.KNN(bgB, trajectory(0, 0, 11, 10, 6), 2)
	if len(got) != 2 {
		t.Fatalf("KNN returned %d", len(got))
	}
	for _, r := range got {
		if r.Payload < 1000 {
			t.Errorf("background routing leaked payload %d from the other stream", r.Payload)
		}
	}
}

func TestLeafSplit(t *testing.T) {
	tr := New[int](Config{Seed: 11, NumClusters: 1, MaxLeafEntries: 10})
	// Two tight, well-separated pattern groups forced into one cluster;
	// overflow must split them apart via EM + BIC.
	var items []Item[int]
	for i := 0; i < 12; i++ {
		items = append(items, Item[int]{Seq: trajectory(0, float64(i), 100, float64(i), 6), Payload: i})
	}
	for i := 0; i < 12; i++ {
		items = append(items, Item[int]{Seq: trajectory(0, 500+float64(i), 100, 500+float64(i), 6), Payload: 100 + i})
	}
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	if tr.NumClusters() < 2 {
		t.Errorf("NumClusters = %d, want >= 2 after split", tr.NumClusters())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 24 {
		t.Errorf("Len = %d, want 24", tr.Len())
	}
}

func TestInsertIncremental(t *testing.T) {
	tr := New[int](Config{Seed: 13, NumClusters: 2})
	items, _ := patternItems(5, 2, 14)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	before := tr.Len()
	if err := tr.Insert(nil, trajectory(0, 52, 300, 48, 10), 999); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != before+1 {
		t.Errorf("Len = %d, want %d", tr.Len(), before+1)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.KNN(nil, trajectory(0, 52, 300, 48, 10), 1)
	if len(got) != 1 || got[0].Payload != 999 {
		t.Errorf("KNN after insert = %+v, want payload 999", got)
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New[int](Config{})
	if got := tr.KNN(nil, trajectory(0, 0, 1, 1, 4), 3); got != nil {
		t.Errorf("KNN on empty tree = %v", got)
	}
	if got := tr.KNNExact(nil, trajectory(0, 0, 1, 1, 4), 3); got != nil {
		t.Errorf("KNNExact on empty tree = %v", got)
	}
	if got := tr.Range(nil, trajectory(0, 0, 1, 1, 4), 10); len(got) != 0 {
		t.Errorf("Range on empty tree = %v", got)
	}
	if got := tr.KNN(nil, trajectory(0, 0, 1, 1, 4), 0); got != nil {
		t.Errorf("KNN with k=0 = %v", got)
	}
}

func TestAddEmptySegment(t *testing.T) {
	tr := New[int](Config{})
	if err := tr.AddSegment(nil, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	// Root record exists but has no clusters; inserting later must error
	// only if clustering is impossible — a single item should bootstrap.
	if err := tr.Insert(nil, trajectory(0, 0, 5, 5, 4), 1); err != nil {
		t.Fatalf("bootstrap insert: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestMemoryBytesEquation10(t *testing.T) {
	tr := New[int](Config{Seed: 15, NumClusters: 3})
	items, _ := patternItems(10, 2, 16)
	bg := bgGraph(0.3)
	if err := tr.AddSegment(bg, items); err != nil {
		t.Fatal(err)
	}
	got := tr.MemoryBytes()
	if got <= 0 {
		t.Fatal("MemoryBytes <= 0")
	}
	// Equation 10 lower bound: the member sequences alone.
	var memberBytes int
	for _, it := range items {
		memberBytes += len(it.Seq) * 2 * 8
	}
	if got < memberBytes {
		t.Errorf("MemoryBytes %d below member payload %d", got, memberBytes)
	}
	// The background is counted once, not per frame.
	if got > memberBytes+bg.MemoryBytes()+tr.NumClusters()*10*2*8+tr.Len()*16+4096 {
		t.Errorf("MemoryBytes %d unexpectedly large", got)
	}
}

func TestCountedMetricObservesSavings(t *testing.T) {
	// The key-pruned leaf search must evaluate fewer distances than a
	// linear scan of the whole database.
	var c dist.Counter
	tr := New[int](Config{Seed: 17, Metric: dist.Counted(dist.EGEDMZero, &c)})
	items, _ := patternItems(30, 3, 18)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	q := trajectory(5, 48, 295, 52, 10)
	tr.KNN(nil, q, 5)
	if c.Count() >= int64(len(items)) {
		t.Errorf("KNN evaluated %d distances, want < %d (linear scan)", c.Count(), len(items))
	}
}
