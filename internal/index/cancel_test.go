package index

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"strgindex/internal/dist"
)

// gatedMetric wraps EGEDMZero with a gate: once armed, every evaluation
// registers itself and blocks until released, so a test can trap the
// worker pool mid-search and observe exactly which evaluations run.
type gatedMetric struct {
	armed    atomic.Bool
	started  atomic.Int64
	finished atomic.Int64
	release  chan struct{}
}

func (g *gatedMetric) metric(a, b dist.Sequence) float64 {
	if g.armed.Load() {
		g.started.Add(1)
		<-g.release
		g.finished.Add(1)
	}
	return dist.EGEDMZero(a, b)
}

// cancelTestTree builds a 4-cluster tree of well-separated trajectories.
func cancelTestTree(t *testing.T, g *gatedMetric) *Tree[int] {
	t.Helper()
	tree := New[int](Config{
		Metric:      g.metric,
		NumClusters: 4,
		Concurrency: 2,
		Seed:        1,
	})
	var items []Item[int]
	anchors := []float64{0, 1000, 2000, 3000}
	id := 0
	for _, a := range anchors {
		for j := 0; j < 4; j++ {
			seq := dist.Sequence{
				{a + float64(j), a},
				{a + float64(j) + 1, a + 1},
				{a + float64(j) + 2, a + 2},
			}
			items = append(items, Item[int]{Seq: seq, Payload: id})
			id++
		}
	}
	if err := tree.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	if tree.NumClusters() < 3 {
		t.Fatalf("clusters = %d, want >= 3 so cancellation can strand unclaimed work", tree.NumClusters())
	}
	return tree
}

// TestKNNExactCtxCancelDrainsPool aborts an exact k-NN mid-flight: with
// both workers trapped inside metric evaluations, cancel must (1) surface
// context.Canceled, (2) let the trapped evaluations drain rather than
// leak, and (3) claim no further evaluations afterwards.
func TestKNNExactCtxCancelDrainsPool(t *testing.T) {
	g := &gatedMetric{release: make(chan struct{})}
	tree := cancelTestTree(t, g)
	g.armed.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res []Result[int]
		err error
	}
	done := make(chan outcome, 1)
	query := dist.Sequence{{1500, 1500}, {1501, 1501}}
	go func() {
		res, err := tree.KNNExactCtx(ctx, nil, query, 3)
		done <- outcome{res, err}
	}()

	// Wait until both workers are trapped mid-evaluation.
	deadline := time.Now().Add(5 * time.Second)
	for g.started.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never started: %d", g.started.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(g.release) // let the in-flight evaluations finish

	out := <-done
	if !errors.Is(out.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	if out.res != nil {
		t.Errorf("cancelled search returned partial results: %v", out.res)
	}
	// The pool drained: every started evaluation completed, and with the
	// gate wide open nothing new is claimed.
	if s, f := g.started.Load(), g.finished.Load(); s != f {
		t.Errorf("started %d != finished %d: worker leaked mid-evaluation", s, f)
	}
	n := g.started.Load()
	if n >= int64(tree.NumClusters()) {
		t.Errorf("started %d of %d centroid evals: cancellation did not abort mid-flight", n, tree.NumClusters())
	}
	time.Sleep(30 * time.Millisecond)
	if got := g.started.Load(); got != n {
		t.Errorf("evaluations kept starting after drain: %d -> %d", n, got)
	}
}

// TestKNNCtxCancel covers the approximate search's descent path.
func TestKNNCtxCancel(t *testing.T) {
	g := &gatedMetric{release: make(chan struct{})}
	tree := New[int](Config{
		ClusterDistance: g.metric,
		NumClusters:     4,
		Concurrency:     2,
		Seed:            1,
	})
	var items []Item[int]
	for i := 0; i < 16; i++ {
		a := float64((i / 4) * 1000)
		items = append(items, Item[int]{Seq: dist.Sequence{{a, a}, {a + 1, a + 1}}, Payload: i})
	}
	if err := tree.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tree.KNNCtx(ctx, nil, dist.Sequence{{500, 500}}, 2)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.started.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("descent never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(g.release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s, f := g.started.Load(), g.finished.Load(); s != f {
		t.Errorf("started %d != finished %d", s, f)
	}
}

// TestRangeCtxCancel covers the range scan.
func TestRangeCtxCancel(t *testing.T) {
	g := &gatedMetric{release: make(chan struct{})}
	tree := cancelTestTree(t, g)
	g.armed.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := tree.RangeCtx(ctx, nil, dist.Sequence{{1500, 1500}}, 1e9)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.started.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("scan never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(g.release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCtxVariantsMatchLegacy pins the compatibility contract: with a live
// context the Ctx variants return byte-identical results to the legacy
// methods.
func TestCtxVariantsMatchLegacy(t *testing.T) {
	g := &gatedMetric{release: make(chan struct{})} // never armed: fast
	tree := cancelTestTree(t, g)
	query := dist.Sequence{{1500, 1500}, {1501, 1501}}
	ctx := context.Background()

	exact, err := tree.KNNExactCtx(ctx, nil, query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.KNNExact(nil, query, 3); !equalResults(exact, want) {
		t.Errorf("KNNExactCtx = %v, KNNExact = %v", exact, want)
	}
	approx, err := tree.KNNCtx(ctx, nil, query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.KNN(nil, query, 3); !equalResults(approx, want) {
		t.Errorf("KNNCtx = %v, KNN = %v", approx, want)
	}
	rng, err := tree.RangeCtx(ctx, nil, query, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Range(nil, query, 5000); !equalResults(rng, want) {
		t.Errorf("RangeCtx = %v, Range = %v", rng, want)
	}
}

func equalResults(a, b []Result[int]) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Payload != b[i].Payload || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}
