package index

import (
	"math"
	"sort"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
)

// KNN implements Algorithm 3: match the query background against the root
// records with SimGraph (skipped when bg is nil — "when a query does not
// consider a background"), descend to the most similar centroid OG under
// the clustering distance, then k-NN the chosen leaf using the metric key
// for pruning. Like the paper's algorithm it searches a single cluster, so
// results are approximate when the true neighbors straddle a cluster
// boundary — that is exactly the accuracy/speed trade-off Figure 7
// measures. Use KNNExact for exact results.
func (t *Tree[P]) KNN(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	roots := t.candidateRoots(bg)
	// Step 3: most similar centroid across the candidate roots.
	var best *clusterRecord[P]
	bestD := math.Inf(1)
	for _, r := range roots {
		for _, cl := range r.clusters {
			if d := t.cfg.ClusterDistance(query, cl.centroid); d < bestD {
				best, bestD = cl, d
			}
		}
	}
	if best == nil {
		return nil
	}
	h := newResultHeap[P](k)
	t.searchLeaf(best, query, h)
	return h.sorted()
}

// KNNExact searches every cluster best-first with metric lower bounds, so
// results are exact under the key metric. It is the repository's extension
// beyond Algorithm 3 (the paper trades accuracy for speed); the experiment
// harness uses it to separate index quality from search policy.
func (t *Tree[P]) KNNExact(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	if k <= 0 || t.size == 0 {
		return nil
	}
	roots := t.candidateRoots(bg)
	type cand struct {
		cl    *clusterRecord[P]
		bound float64
	}
	var cands []cand
	for _, r := range roots {
		for _, cl := range r.clusters {
			d := t.cfg.Metric(query, cl.centroid)
			// Every member m satisfies d(m, centroid) = key <= maxKey, so
			// d(query, m) >= d(query, centroid) - maxKey.
			cands = append(cands, cand{cl, math.Max(0, d-cl.maxKey())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bound < cands[j].bound })
	h := newResultHeap[P](k)
	for _, c := range cands {
		if h.full() && c.bound > h.worst() {
			break
		}
		t.searchLeafWithCentroidDist(c.cl, query, t.cfg.Metric(query, c.cl.centroid), h)
	}
	return h.sorted()
}

// Range returns every indexed OG within radius of the query under the key
// metric, searching all clusters with metric pruning (exact).
func (t *Tree[P]) Range(bg *graph.Graph, query dist.Sequence, radius float64) []Result[P] {
	roots := t.candidateRoots(bg)
	var out []Result[P]
	for _, r := range roots {
		for _, cl := range r.clusters {
			dc := t.cfg.Metric(query, cl.centroid)
			if dc-cl.maxKey() > radius {
				continue
			}
			// Key window: |key - dc| <= radius is necessary for a hit.
			lo := sort.Search(len(cl.leaf), func(i int) bool { return cl.leaf[i].key >= dc-radius })
			for i := lo; i < len(cl.leaf) && cl.leaf[i].key <= dc+radius; i++ {
				if d := t.cfg.Metric(query, cl.leaf[i].seq); d <= radius {
					out = append(out, Result[P]{Payload: cl.leaf[i].payload, Distance: d})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

// candidateRoots applies Algorithm 3 step 2: the most similar stored
// background wins; a nil background (or no match above the threshold)
// widens the search to every root.
func (t *Tree[P]) candidateRoots(bg *graph.Graph) []*rootRecord[P] {
	if bg == nil {
		return t.roots
	}
	var best *rootRecord[P]
	bestSim := 0.0
	for _, r := range t.roots {
		if r.bg == nil {
			continue
		}
		if sim := t.matcher.SimGraph(bg, r.bg); sim > bestSim {
			best, bestSim = r, sim
		}
	}
	if best == nil || bestSim < t.cfg.BGSimThreshold {
		return t.roots
	}
	return []*rootRecord[P]{best}
}

// searchLeaf k-NNs one leaf: compute Key_q = d(query, centroid) once, then
// expand outward from Key_q's position in the sorted keys, stopping each
// side when the reverse triangle inequality (|key - Key_q| <= d(query,
// member)) proves no closer member can remain.
func (t *Tree[P]) searchLeaf(cl *clusterRecord[P], query dist.Sequence, h *resultHeap[P]) {
	t.searchLeafWithCentroidDist(cl, query, t.cfg.Metric(query, cl.centroid), h)
}

func (t *Tree[P]) searchLeafWithCentroidDist(cl *clusterRecord[P], query dist.Sequence, keyQ float64, h *resultHeap[P]) {
	n := len(cl.leaf)
	if n == 0 {
		return
	}
	start := sort.Search(n, func(i int) bool { return cl.leaf[i].key >= keyQ })
	lo, hi := start-1, start
	for lo >= 0 || hi < n {
		// Expand the side whose key is closer to Key_q.
		var i int
		switch {
		case lo < 0:
			i = hi
			hi++
		case hi >= n:
			i = lo
			lo--
		case keyQ-cl.leaf[lo].key <= cl.leaf[hi].key-keyQ:
			i = lo
			lo--
		default:
			i = hi
			hi++
		}
		rec := cl.leaf[i]
		gap := math.Abs(rec.key - keyQ)
		if h.full() && gap > h.worst() {
			// Keys only diverge further on both sides once the nearer side
			// has been exhausted in order; this record's side is done.
			if i < start {
				lo = -1
			} else {
				hi = n
			}
			continue
		}
		d := t.cfg.Metric(query, rec.seq)
		h.offer(Result[P]{Payload: rec.payload, Distance: d})
	}
}

// resultHeap keeps the k best results (max-heap by distance).
type resultHeap[P any] struct {
	k     int
	items []Result[P]
}

func newResultHeap[P any](k int) *resultHeap[P] {
	return &resultHeap[P]{k: k}
}

func (h *resultHeap[P]) full() bool { return len(h.items) >= h.k }

func (h *resultHeap[P]) worst() float64 {
	if len(h.items) == 0 {
		return math.Inf(1)
	}
	return h.items[0].Distance
}

func (h *resultHeap[P]) offer(r Result[P]) {
	if h.full() && r.Distance >= h.worst() {
		return
	}
	h.items = append(h.items, r)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Distance >= h.items[i].Distance {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
	if len(h.items) > h.k {
		h.popTop()
	}
}

func (h *resultHeap[P]) popTop() Result[P] {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[l].Distance > h.items[largest].Distance {
			largest = l
		}
		if r < last && h.items[r].Distance > h.items[largest].Distance {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

func (h *resultHeap[P]) sorted() []Result[P] {
	out := make([]Result[P], len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popTop()
	}
	return out
}
