package index

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
	"strgindex/internal/parallel"
)

// SearchStats is one search's filter-and-refine accounting: how many
// candidates each stage of the distance cascade disposed of. Counts are
// deterministic at Concurrency 1; at higher worker counts the same
// records are pruned, but snapshot thresholds inside a batch may shift a
// few candidates between stages (never into or out of the result set).
type SearchStats struct {
	// CandidateLeaves is the number of leaves considered; ScannedLeaves
	// the number actually scanned (the rest were pruned by the cluster
	// lower bound).
	CandidateLeaves int
	ScannedLeaves   int
	// Records is the number of leaf records that survived key-window
	// pruning and entered the distance cascade.
	Records int
	// CacheHits is the number of records answered by the distance cache.
	CacheHits int
	// LBQuickPruned and LBEnvelopePruned count records rejected by the
	// O(1) and O(m) lower bounds respectively.
	LBQuickPruned    int
	LBEnvelopePruned int
	// DPEvaluated counts full DP evaluations; DPAbandoned counts DP
	// kernels cut short by the early-abandoning threshold.
	DPEvaluated int
	DPAbandoned int
}

// LBPruned is the total number of records rejected by lower bounds.
func (s SearchStats) LBPruned() int { return s.LBQuickPruned + s.LBEnvelopePruned }

// add accumulates another (per-leaf or per-cluster) stats block.
func (s *SearchStats) add(o SearchStats) {
	s.Records += o.Records
	s.CacheHits += o.CacheHits
	s.LBQuickPruned += o.LBQuickPruned
	s.LBEnvelopePruned += o.LBEnvelopePruned
	s.DPEvaluated += o.DPEvaluated
	s.DPAbandoned += o.DPAbandoned
}

// queryState is the per-search precomputation shared by every leaf scan:
// the query's cascade summary and content hash, plus handles resolved
// once instead of per record.
type queryState struct {
	query dist.Sequence
	qs    dist.Summary
	qh    uint64
	casc  dist.Cascade
	cache DistCache
	// scache is cache's shard-aware extension, resolved once per query;
	// nil when the cache does not implement it.
	scache ShardAwareDistCache
	// Columnar-layer state, resolved once per query and nil/zero when the
	// layer is off or the cascade lacks the extensions: bq is the prepared
	// batched query (immutable, shared by all leaf scans — each scan
	// derives its own mutable arena), qcasc/qgaps feed the quantized tier.
	bq    *dist.BatchQuery
	qcasc dist.QuantCascade
	qgaps []float64
}

func (t *Tree[P]) newQueryState(query dist.Sequence) *queryState {
	q := &queryState{query: query, casc: t.cfg.Cascade, cache: t.cfg.Cache}
	q.qs = q.casc.Summarize(query)
	if q.cache != nil {
		q.qh = dist.HashSequence(query)
		q.scache, _ = q.cache.(ShardAwareDistCache)
	}
	if !t.cfg.DisableColumnar {
		if bc, ok := q.casc.(dist.BatchCascade); ok {
			q.bq = bc.BatchQuery(query)
		}
		if qc, ok := q.casc.(dist.QuantCascade); ok {
			q.qcasc = qc
			q.qgaps = qc.QueryGaps(query)
		}
	}
	return q
}

// cachedDist looks the (query, record) pair up in the distance cache.
// Cached values were produced by the same deterministic kernel under
// content-hash identity, so a hit is bit-identical to re-evaluating.
func (q *queryState) cachedDist(hash uint64) (float64, bool) {
	if q.cache == nil {
		return 0, false
	}
	return q.cache.Get(q.qh, hash)
}

// putDist records a fully evaluated distance, tagged with the record's
// shard when the cache understands shards. Abandoned evaluations are
// never cached — they are threshold-relative, not values of the metric.
func (q *queryState) putDist(hash uint64, shard uint32, d float64) {
	switch {
	case q.scache != nil:
		q.scache.PutShard(q.qh, hash, d, shard)
	case q.cache != nil:
		q.cache.Put(q.qh, hash, d)
	}
}

// KNN implements Algorithm 3: match the query background against the root
// records with SimGraph (skipped when bg is nil — "when a query does not
// consider a background"), descend to the most similar centroid OG under
// the clustering distance, then k-NN the chosen leaf using the metric key
// for pruning. Like the paper's algorithm it searches a single cluster, so
// results are approximate when the true neighbors straddle a cluster
// boundary — that is exactly the accuracy/speed trade-off Figure 7
// measures. Use KNNExact for exact results.
//
// The centroid descent evaluates its distances across the configured
// worker pool; results are identical at every Concurrency setting.
func (t *Tree[P]) KNN(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, err := t.KNNCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNCtx is KNN with cancellation: once ctx is done the worker pool stops
// claiming centroid evaluations, in-flight ones drain, and ctx.Err() is
// returned. A cancelled search returns no partial results.
func (t *Tree[P]) KNNCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], error) {
	res, _, err := t.KNNStatsCtx(ctx, bg, query, k)
	return res, err
}

// KNNStats is KNN returning the search's cascade accounting.
func (t *Tree[P]) KNNStats(bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	return t.KNNStatsCtx(context.Background(), bg, query, k)
}

// KNNStatsCtx is KNNCtx returning the search's cascade accounting.
func (t *Tree[P]) KNNStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	var st SearchStats
	if k <= 0 || t.size == 0 {
		return nil, st, nil
	}
	searchesKNN.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	// Step 3: most similar centroid across the candidate roots.
	best, err := argminClusterCtx(ctx, cls, query, t.cfg.ClusterDistance, t.cfg.Concurrency)
	if err != nil {
		return nil, st, err
	}
	if best < 0 {
		return nil, st, nil
	}
	h := newResultHeap[P](k)
	q := t.newQueryState(query)
	cl := cls[best]
	t.searchLeafWithCentroidDist(cl, q, t.cfg.Metric(query, cl.centroid), 0, h, math.Inf(1), &st)
	st.CandidateLeaves, st.ScannedLeaves = len(cls), 1
	observeSearch(len(cls), 1)
	observeCascade(st)
	return h.sorted(), st, nil
}

// KNNExact searches every cluster best-first with metric lower bounds, so
// results are exact under the key metric. It is the repository's extension
// beyond Algorithm 3 (the paper trades accuracy for speed); the experiment
// harness uses it to separate index quality from search policy.
//
// Leaves are scanned in batches of one per worker: each leaf in a batch
// fills a private heap concurrently, and the batches merge into the global
// heap between rounds. Because every result carries a canonical ordinal
// (leaf rank in bound order, then ring-expansion step within the leaf) and
// the heap orders by (distance, ordinal), the returned slice is
// byte-identical to the Concurrency == 1 scan — parallelism can only scan
// leaves the sequential best-first loop would have pruned, and records
// from those leaves are provably too far to enter the heap.
func (t *Tree[P]) KNNExact(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, err := t.KNNExactCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNExactCtx is KNNExact with cancellation: cancellation is observed
// between leaf batches and at work-item claim time inside a batch, so a
// disconnected client stops burning the worker pool after at most the
// in-flight leaf scans. A cancelled search returns ctx.Err() and no
// partial results.
func (t *Tree[P]) KNNExactCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], error) {
	res, _, err := t.KNNExactStatsCtx(ctx, bg, query, k)
	return res, err
}

// KNNExactStats is KNNExact returning the search's cascade accounting.
func (t *Tree[P]) KNNExactStats(bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	return t.KNNExactStatsCtx(context.Background(), bg, query, k)
}

// KNNExactStatsCtx is KNNExactCtx returning the search's cascade
// accounting.
func (t *Tree[P]) KNNExactStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], SearchStats, error) {
	var st SearchStats
	if k <= 0 || t.size == 0 {
		return nil, st, nil
	}
	searchesKNNExact.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	// The query-to-centroid distance doubles as the leaf's search key, so
	// it is computed once here and reused by the scan (the sequential
	// version used to evaluate it twice per scanned leaf).
	keyQs, err := parallel.MapCtx(ctx, t.cfg.Concurrency, len(cls), func(i int) (float64, error) {
		return t.cfg.Metric(query, cls[i].centroid), nil
	})
	if err != nil {
		return nil, st, err
	}
	type cand struct {
		cl    *clusterRecord[P]
		keyQ  float64
		bound float64
	}
	cands := make([]cand, len(cls))
	for i, cl := range cls {
		// Every member m satisfies d(m, centroid) = key <= maxKey, so
		// d(query, m) >= d(query, centroid) - maxKey.
		cands[i] = cand{cl, keyQs[i], math.Max(0, keyQs[i]-cl.maxKey())}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bound < cands[j].bound })

	q := t.newQueryState(query)
	h := newResultHeap[P](k)
	batch := t.cfg.SearchBatch
	if batch <= 0 {
		batch = parallel.Workers(t.cfg.Concurrency)
	}
	var scanned atomic.Int64
	type leafScan struct {
		h  *resultHeap[P]
		st SearchStats
	}
	for start := 0; start < len(cands); start += batch {
		if h.full() && cands[start].bound > h.worst() {
			break
		}
		end := min(start+batch, len(cands))
		// Snapshot the global worst: h is not mutated during the batch, so
		// workers can prune against it without synchronizing. Once the
		// global heap is full its worst only decreases, so any record a
		// scan drops against this snapshot would also lose the merge.
		worst, pruning := h.worst(), h.full()
		bound := math.Inf(1)
		if pruning {
			bound = worst
		}
		locals, err := parallel.MapCtx(ctx, t.cfg.Concurrency, end-start, func(i int) (*leafScan, error) {
			c := cands[start+i]
			if pruning && c.bound > worst {
				return nil, nil
			}
			scanned.Add(1)
			ls := &leafScan{h: newResultHeap[P](k)}
			t.searchLeafWithCentroidDist(c.cl, q, c.keyQ, start+i, ls.h, bound, &ls.st)
			return ls, nil
		})
		if err != nil {
			return nil, st, err
		}
		for _, ls := range locals {
			if ls == nil {
				continue
			}
			for _, it := range ls.h.items {
				h.offer(it.res, it.ord)
			}
			st.add(ls.st)
		}
	}
	st.CandidateLeaves, st.ScannedLeaves = len(cands), int(scanned.Load())
	observeSearch(st.CandidateLeaves, st.ScannedLeaves)
	observeCascade(st)
	return h.sorted(), st, nil
}

// Range returns every indexed OG within radius of the query under the key
// metric, searching all clusters with metric pruning (exact). Clusters
// scan concurrently; the per-cluster hit lists concatenate in cluster
// order and sort stably, so the output is identical at every Concurrency
// setting.
func (t *Tree[P]) Range(bg *graph.Graph, query dist.Sequence, radius float64) []Result[P] {
	res, err := t.RangeCtx(context.Background(), bg, query, radius)
	must(err)
	return res
}

// RangeCtx is Range with cancellation: once ctx is done the pool stops
// claiming cluster scans, in-flight ones drain, and ctx.Err() is returned.
func (t *Tree[P]) RangeCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, radius float64) ([]Result[P], error) {
	res, _, err := t.RangeStatsCtx(ctx, bg, query, radius)
	return res, err
}

// RangeStatsCtx is RangeCtx returning the search's cascade accounting.
// The radius is a fixed refinement threshold, so every cascade stage
// prunes against it: a record whose lower bound exceeds the radius, or
// whose DP abandons above it, provably is not a hit.
func (t *Tree[P]) RangeStatsCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, radius float64) ([]Result[P], SearchStats, error) {
	var st SearchStats
	searchesRange.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	q := t.newQueryState(query)
	var scanned atomic.Int64
	type clusterScan struct {
		hits []Result[P]
		st   SearchStats
	}
	scans, err := parallel.MapCtx(ctx, t.cfg.Concurrency, len(cls), func(i int) (*clusterScan, error) {
		cl := cls[i]
		dc := t.cfg.Metric(query, cl.centroid)
		if dc-cl.maxKey() > radius {
			return nil, nil
		}
		scanned.Add(1)
		cs := &clusterScan{}
		// One batched-DP arena per cluster scan (scans run concurrently).
		var arena *dist.Batch
		if q.bq != nil {
			arena = q.bq.NewBatch()
		}
		// Key window: |key - dc| <= radius is necessary for a hit.
		lo := sort.Search(len(cl.leaf), func(i int) bool { return cl.leaf[i].key >= dc-radius })
		for i := lo; i < len(cl.leaf) && cl.leaf[i].key <= dc+radius; i++ {
			rec := &cl.leaf[i]
			cs.st.Records++
			if d, ok := q.cachedDist(rec.hash); ok {
				cs.st.CacheHits++
				if d <= radius {
					cs.hits = append(cs.hits, Result[P]{Payload: rec.payload, Distance: d})
				}
				continue
			}
			if lb := q.casc.LBQuick(query, rec.seq, q.qs, rec.sum); lb > radius {
				cs.st.LBQuickPruned++
				continue
			}
			if quantPrune(q, cl, rec, radius) {
				cs.st.LBEnvelopePruned++
				lbPrunedQuant.Inc()
				continue
			}
			if lb := q.casc.LBEnvelope(query, rec.sum); lb > radius {
				cs.st.LBEnvelopePruned++
				continue
			}
			d, abandoned := refineRecord(q, arena, rec, radius)
			if abandoned {
				cs.st.DPAbandoned++
				continue
			}
			cs.st.DPEvaluated++
			q.putDist(rec.hash, rec.shard, d)
			if d <= radius {
				cs.hits = append(cs.hits, Result[P]{Payload: rec.payload, Distance: d})
			}
		}
		return cs, nil
	})
	if err != nil {
		return nil, st, err
	}
	var out []Result[P]
	for _, cs := range scans {
		if cs == nil {
			continue
		}
		out = append(out, cs.hits...)
		st.add(cs.st)
	}
	st.CandidateLeaves, st.ScannedLeaves = len(cls), int(scanned.Load())
	observeSearch(st.CandidateLeaves, st.ScannedLeaves)
	observeCascade(st)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, st, nil
}

// candidateRoots applies Algorithm 3 step 2: the most similar stored
// background wins; a nil background (or no match above the threshold)
// widens the search to every root.
func (t *Tree[P]) candidateRoots(bg *graph.Graph) []*rootRecord[P] {
	if bg == nil {
		return t.roots
	}
	var best *rootRecord[P]
	bestSim := 0.0
	for _, r := range t.roots {
		if r.bg == nil {
			continue
		}
		if sim := t.matcher.SimGraph(bg, r.bg); sim > bestSim {
			best, bestSim = r, sim
		}
	}
	if best == nil || bestSim < t.cfg.BGSimThreshold {
		return t.roots
	}
	return []*rootRecord[P]{best}
}

// candidateClusters flattens the candidate roots' cluster records in
// root-then-cluster order — the iteration order of the original nested
// loops, which the deterministic argmin and merge rely on.
func (t *Tree[P]) candidateClusters(bg *graph.Graph) []*clusterRecord[P] {
	var cls []*clusterRecord[P]
	for _, r := range t.candidateRoots(bg) {
		cls = append(cls, r.clusters...)
	}
	return cls
}

// searchLeafWithCentroidDist k-NNs one leaf through the distance cascade:
// expand outward from Key_q's position in the sorted keys, stopping each
// side when the reverse triangle inequality (|key - Key_q| <= d(query,
// member)) proves no closer member can remain, and running each surviving
// record through cache -> LBQuick -> LBEnvelope -> early-abandoning DP.
//
// Every pruning comparison is strictly `>` against the threshold, and
// every bound (including the DP's row minimum) is <= the true distance,
// so a record whose distance ties the heap's worst is never pruned — the
// (distance, ordinal) tie-break sees exactly the same contenders as an
// exhaustive scan, keeping results byte-identical with the cascade off.
//
// bound is an external threshold that is valid for the whole scan (the
// batch-snapshot global worst in KNNExact; +Inf when there is none): the
// effective threshold is min(bound, local heap worst once full).
func (t *Tree[P]) searchLeafWithCentroidDist(cl *clusterRecord[P], q *queryState, keyQ float64, leafRank int, h *resultHeap[P], bound float64, st *SearchStats) {
	n := len(cl.leaf)
	if n == 0 {
		return
	}
	// One batched-DP arena per leaf scan: scans may run concurrently on
	// the worker pool, so the mutable scratch cannot live in queryState.
	var arena *dist.Batch
	if q.bq != nil {
		arena = q.bq.NewBatch()
	}
	start := sort.Search(n, func(i int) bool { return cl.leaf[i].key >= keyQ })
	lo, hi := start-1, start
	// The expansion order depends only on the stored keys and Key_q —
	// never on the heap — so the step counter is a canonical within-leaf
	// ordinal: the same record gets the same ordinal whether the leaf is
	// scanned by the sequential loop or by a private heap in a worker.
	for step := 0; lo >= 0 || hi < n; step++ {
		// Expand the side whose key is closer to Key_q.
		var i int
		switch {
		case lo < 0:
			i = hi
			hi++
		case hi >= n:
			i = lo
			lo--
		case keyQ-cl.leaf[lo].key <= cl.leaf[hi].key-keyQ:
			i = lo
			lo--
		default:
			i = hi
			hi++
		}
		rec := &cl.leaf[i]
		thresh := bound
		if h.full() && h.worst() < thresh {
			thresh = h.worst()
		}
		gap := math.Abs(rec.key - keyQ)
		if gap > thresh {
			// Keys only diverge further on both sides once the nearer side
			// has been exhausted in order; this record's side is done.
			if i < start {
				lo = -1
			} else {
				hi = n
			}
			continue
		}
		st.Records++
		if d, ok := q.cachedDist(rec.hash); ok {
			st.CacheHits++
			h.offer(Result[P]{Payload: rec.payload, Distance: d}, uint64(leafRank)<<32|uint64(step))
			continue
		}
		if lb := q.casc.LBQuick(q.query, rec.seq, q.qs, rec.sum); lb > thresh {
			st.LBQuickPruned++
			continue
		}
		if quantPrune(q, cl, rec, thresh) {
			// Counted as an envelope prune: the quant bound is <= the
			// envelope bound, so the envelope stage would have made the
			// same decision — just after touching the float columns.
			st.LBEnvelopePruned++
			lbPrunedQuant.Inc()
			continue
		}
		if lb := q.casc.LBEnvelope(q.query, rec.sum); lb > thresh {
			st.LBEnvelopePruned++
			continue
		}
		d, abandoned := refineRecord(q, arena, rec, thresh)
		if abandoned {
			st.DPAbandoned++
			continue
		}
		st.DPEvaluated++
		q.putDist(rec.hash, rec.shard, d)
		h.offer(Result[P]{Payload: rec.payload, Distance: d}, uint64(leafRank)<<32|uint64(step))
	}
}

// quantPrune reports whether the quantized 8-bit tier disposes of rec at
// thresh — a 2-byte-per-record check that runs before the envelope bound
// ever touches the record's float columns. The bound is admissible and
// weaker-or-equal to LBEnvelope bit-for-bit, so any record it prunes the
// envelope stage would have pruned too: callers count a quant prune as an
// envelope prune and SearchStats cannot tell the tier is on.
func quantPrune[P any](q *queryState, cl *clusterRecord[P], rec *leafRecord[P], thresh float64) bool {
	if q.qcasc == nil || !rec.qc.Valid || !cl.qgrid.Ok {
		return false
	}
	return q.qcasc.LBQuant(q.query, q.qgaps, cl.qgrid, rec.qc) > thresh
}

// refineRecord runs the cascade's final DP stage: the batched columnar
// kernel when the scan has an arena and the record carries its column
// block, the per-pair kernel otherwise. The two are bit-identical in
// value, abandon decision and eval/cell accounting.
func refineRecord[P any](q *queryState, b *dist.Batch, rec *leafRecord[P], thresh float64) (float64, bool) {
	if b != nil && rec.col.Len() == len(rec.seq) {
		return b.DistanceUB(rec.col, thresh)
	}
	return q.casc.DistanceUB(q.query, rec.seq, thresh)
}

// heapItem pairs a result with its canonical scan ordinal. Ordering is
// lexicographic on (Distance, ord): the ordinal reproduces "first offered
// wins" among equal distances no matter which worker evaluated the record,
// making search results independent of scheduling.
type heapItem[P any] struct {
	res Result[P]
	ord uint64
}

func (a heapItem[P]) before(b heapItem[P]) bool {
	if a.res.Distance != b.res.Distance {
		return a.res.Distance < b.res.Distance
	}
	return a.ord < b.ord
}

// resultHeap keeps the k best results: a max-heap by (distance, ordinal).
type resultHeap[P any] struct {
	k     int
	items []heapItem[P]
}

func newResultHeap[P any](k int) *resultHeap[P] {
	return &resultHeap[P]{k: k}
}

func (h *resultHeap[P]) full() bool { return len(h.items) >= h.k }

func (h *resultHeap[P]) worst() float64 {
	if len(h.items) == 0 {
		return math.Inf(1)
	}
	return h.items[0].res.Distance
}

func (h *resultHeap[P]) offer(r Result[P], ord uint64) {
	it := heapItem[P]{res: r, ord: ord}
	if h.full() && !it.before(h.items[0]) {
		return
	}
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[parent].before(h.items[i]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
	if len(h.items) > h.k {
		h.popTop()
	}
}

func (h *resultHeap[P]) popTop() heapItem[P] {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[largest].before(h.items[l]) {
			largest = l
		}
		if r < last && h.items[largest].before(h.items[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

func (h *resultHeap[P]) sorted() []Result[P] {
	out := make([]Result[P], len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popTop().res
	}
	return out
}
