package index

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"strgindex/internal/dist"
	"strgindex/internal/graph"
	"strgindex/internal/parallel"
)

// KNN implements Algorithm 3: match the query background against the root
// records with SimGraph (skipped when bg is nil — "when a query does not
// consider a background"), descend to the most similar centroid OG under
// the clustering distance, then k-NN the chosen leaf using the metric key
// for pruning. Like the paper's algorithm it searches a single cluster, so
// results are approximate when the true neighbors straddle a cluster
// boundary — that is exactly the accuracy/speed trade-off Figure 7
// measures. Use KNNExact for exact results.
//
// The centroid descent evaluates its distances across the configured
// worker pool; results are identical at every Concurrency setting.
func (t *Tree[P]) KNN(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, err := t.KNNCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNCtx is KNN with cancellation: once ctx is done the worker pool stops
// claiming centroid evaluations, in-flight ones drain, and ctx.Err() is
// returned. A cancelled search returns no partial results.
func (t *Tree[P]) KNNCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], error) {
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	searchesKNN.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	// Step 3: most similar centroid across the candidate roots.
	best, err := argminClusterCtx(ctx, cls, query, t.cfg.ClusterDistance, t.cfg.Concurrency)
	if err != nil {
		return nil, err
	}
	if best < 0 {
		return nil, nil
	}
	h := newResultHeap[P](k)
	t.searchLeaf(cls[best], query, 0, h)
	observeSearch(len(cls), 1)
	return h.sorted(), nil
}

// KNNExact searches every cluster best-first with metric lower bounds, so
// results are exact under the key metric. It is the repository's extension
// beyond Algorithm 3 (the paper trades accuracy for speed); the experiment
// harness uses it to separate index quality from search policy.
//
// Leaves are scanned in batches of one per worker: each leaf in a batch
// fills a private heap concurrently, and the batches merge into the global
// heap between rounds. Because every result carries a canonical ordinal
// (leaf rank in bound order, then ring-expansion step within the leaf) and
// the heap orders by (distance, ordinal), the returned slice is
// byte-identical to the Concurrency == 1 scan — parallelism can only scan
// leaves the sequential best-first loop would have pruned, and records
// from those leaves are provably too far to enter the heap.
func (t *Tree[P]) KNNExact(bg *graph.Graph, query dist.Sequence, k int) []Result[P] {
	res, err := t.KNNExactCtx(context.Background(), bg, query, k)
	must(err)
	return res
}

// KNNExactCtx is KNNExact with cancellation: cancellation is observed
// between leaf batches and at work-item claim time inside a batch, so a
// disconnected client stops burning the worker pool after at most the
// in-flight leaf scans. A cancelled search returns ctx.Err() and no
// partial results.
func (t *Tree[P]) KNNExactCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, k int) ([]Result[P], error) {
	if k <= 0 || t.size == 0 {
		return nil, nil
	}
	searchesKNNExact.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	// The query-to-centroid distance doubles as the leaf's search key, so
	// it is computed once here and reused by the scan (the sequential
	// version used to evaluate it twice per scanned leaf).
	keyQs, err := parallel.MapCtx(ctx, t.cfg.Concurrency, len(cls), func(i int) (float64, error) {
		return t.cfg.Metric(query, cls[i].centroid), nil
	})
	if err != nil {
		return nil, err
	}
	type cand struct {
		cl    *clusterRecord[P]
		keyQ  float64
		bound float64
	}
	cands := make([]cand, len(cls))
	for i, cl := range cls {
		// Every member m satisfies d(m, centroid) = key <= maxKey, so
		// d(query, m) >= d(query, centroid) - maxKey.
		cands[i] = cand{cl, keyQs[i], math.Max(0, keyQs[i]-cl.maxKey())}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bound < cands[j].bound })

	h := newResultHeap[P](k)
	batch := parallel.Workers(t.cfg.Concurrency)
	var scanned atomic.Int64
	for start := 0; start < len(cands); start += batch {
		if h.full() && cands[start].bound > h.worst() {
			break
		}
		end := min(start+batch, len(cands))
		// Snapshot the global worst: h is not mutated during the batch, so
		// workers can prune against it without synchronizing.
		worst, pruning := h.worst(), h.full()
		locals, err := parallel.MapCtx(ctx, t.cfg.Concurrency, end-start, func(i int) (*resultHeap[P], error) {
			c := cands[start+i]
			if pruning && c.bound > worst {
				return nil, nil
			}
			scanned.Add(1)
			lh := newResultHeap[P](k)
			t.searchLeafWithCentroidDist(c.cl, query, c.keyQ, start+i, lh)
			return lh, nil
		})
		if err != nil {
			return nil, err
		}
		for _, lh := range locals {
			if lh == nil {
				continue
			}
			for _, it := range lh.items {
				h.offer(it.res, it.ord)
			}
		}
	}
	observeSearch(len(cands), int(scanned.Load()))
	return h.sorted(), nil
}

// Range returns every indexed OG within radius of the query under the key
// metric, searching all clusters with metric pruning (exact). Clusters
// scan concurrently; the per-cluster hit lists concatenate in cluster
// order and sort stably, so the output is identical at every Concurrency
// setting.
func (t *Tree[P]) Range(bg *graph.Graph, query dist.Sequence, radius float64) []Result[P] {
	res, err := t.RangeCtx(context.Background(), bg, query, radius)
	must(err)
	return res
}

// RangeCtx is Range with cancellation: once ctx is done the pool stops
// claiming cluster scans, in-flight ones drain, and ctx.Err() is returned.
func (t *Tree[P]) RangeCtx(ctx context.Context, bg *graph.Graph, query dist.Sequence, radius float64) ([]Result[P], error) {
	searchesRange.Inc()
	cls := t.candidateClusters(bg)
	nodeVisits.Add(int64(len(cls)))
	var scanned atomic.Int64
	lists, err := parallel.MapCtx(ctx, t.cfg.Concurrency, len(cls), func(i int) ([]Result[P], error) {
		cl := cls[i]
		dc := t.cfg.Metric(query, cl.centroid)
		if dc-cl.maxKey() > radius {
			return nil, nil
		}
		scanned.Add(1)
		// Key window: |key - dc| <= radius is necessary for a hit.
		var hits []Result[P]
		lo := sort.Search(len(cl.leaf), func(i int) bool { return cl.leaf[i].key >= dc-radius })
		for i := lo; i < len(cl.leaf) && cl.leaf[i].key <= dc+radius; i++ {
			if d := t.cfg.Metric(query, cl.leaf[i].seq); d <= radius {
				hits = append(hits, Result[P]{Payload: cl.leaf[i].payload, Distance: d})
			}
		}
		return hits, nil
	})
	if err != nil {
		return nil, err
	}
	observeSearch(len(cls), int(scanned.Load()))
	var out []Result[P]
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}

// candidateRoots applies Algorithm 3 step 2: the most similar stored
// background wins; a nil background (or no match above the threshold)
// widens the search to every root.
func (t *Tree[P]) candidateRoots(bg *graph.Graph) []*rootRecord[P] {
	if bg == nil {
		return t.roots
	}
	var best *rootRecord[P]
	bestSim := 0.0
	for _, r := range t.roots {
		if r.bg == nil {
			continue
		}
		if sim := t.matcher.SimGraph(bg, r.bg); sim > bestSim {
			best, bestSim = r, sim
		}
	}
	if best == nil || bestSim < t.cfg.BGSimThreshold {
		return t.roots
	}
	return []*rootRecord[P]{best}
}

// candidateClusters flattens the candidate roots' cluster records in
// root-then-cluster order — the iteration order of the original nested
// loops, which the deterministic argmin and merge rely on.
func (t *Tree[P]) candidateClusters(bg *graph.Graph) []*clusterRecord[P] {
	var cls []*clusterRecord[P]
	for _, r := range t.candidateRoots(bg) {
		cls = append(cls, r.clusters...)
	}
	return cls
}

// searchLeaf k-NNs one leaf: compute Key_q = d(query, centroid) once, then
// expand outward from Key_q's position in the sorted keys, stopping each
// side when the reverse triangle inequality (|key - Key_q| <= d(query,
// member)) proves no closer member can remain.
func (t *Tree[P]) searchLeaf(cl *clusterRecord[P], query dist.Sequence, leafRank int, h *resultHeap[P]) {
	t.searchLeafWithCentroidDist(cl, query, t.cfg.Metric(query, cl.centroid), leafRank, h)
}

func (t *Tree[P]) searchLeafWithCentroidDist(cl *clusterRecord[P], query dist.Sequence, keyQ float64, leafRank int, h *resultHeap[P]) {
	n := len(cl.leaf)
	if n == 0 {
		return
	}
	start := sort.Search(n, func(i int) bool { return cl.leaf[i].key >= keyQ })
	lo, hi := start-1, start
	// The expansion order depends only on the stored keys and Key_q —
	// never on the heap — so the step counter is a canonical within-leaf
	// ordinal: the same record gets the same ordinal whether the leaf is
	// scanned by the sequential loop or by a private heap in a worker.
	for step := 0; lo >= 0 || hi < n; step++ {
		// Expand the side whose key is closer to Key_q.
		var i int
		switch {
		case lo < 0:
			i = hi
			hi++
		case hi >= n:
			i = lo
			lo--
		case keyQ-cl.leaf[lo].key <= cl.leaf[hi].key-keyQ:
			i = lo
			lo--
		default:
			i = hi
			hi++
		}
		rec := cl.leaf[i]
		gap := math.Abs(rec.key - keyQ)
		if h.full() && gap > h.worst() {
			// Keys only diverge further on both sides once the nearer side
			// has been exhausted in order; this record's side is done.
			if i < start {
				lo = -1
			} else {
				hi = n
			}
			continue
		}
		d := t.cfg.Metric(query, rec.seq)
		h.offer(Result[P]{Payload: rec.payload, Distance: d}, uint64(leafRank)<<32|uint64(step))
	}
}

// heapItem pairs a result with its canonical scan ordinal. Ordering is
// lexicographic on (Distance, ord): the ordinal reproduces "first offered
// wins" among equal distances no matter which worker evaluated the record,
// making search results independent of scheduling.
type heapItem[P any] struct {
	res Result[P]
	ord uint64
}

func (a heapItem[P]) before(b heapItem[P]) bool {
	if a.res.Distance != b.res.Distance {
		return a.res.Distance < b.res.Distance
	}
	return a.ord < b.ord
}

// resultHeap keeps the k best results: a max-heap by (distance, ordinal).
type resultHeap[P any] struct {
	k     int
	items []heapItem[P]
}

func newResultHeap[P any](k int) *resultHeap[P] {
	return &resultHeap[P]{k: k}
}

func (h *resultHeap[P]) full() bool { return len(h.items) >= h.k }

func (h *resultHeap[P]) worst() float64 {
	if len(h.items) == 0 {
		return math.Inf(1)
	}
	return h.items[0].res.Distance
}

func (h *resultHeap[P]) offer(r Result[P], ord uint64) {
	it := heapItem[P]{res: r, ord: ord}
	if h.full() && !it.before(h.items[0]) {
		return
	}
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[parent].before(h.items[i]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
	if len(h.items) > h.k {
		h.popTop()
	}
}

func (h *resultHeap[P]) popTop() heapItem[P] {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && h.items[largest].before(h.items[l]) {
			largest = l
		}
		if r < last && h.items[largest].before(h.items[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
	return top
}

func (h *resultHeap[P]) sorted() []Result[P] {
	out := make([]Result[P], len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.popTop().res
	}
	return out
}
