package index

import (
	"sync"
	"testing"

	"strgindex/internal/dist"
)

// buildCascadeTree builds a deterministic tree, letting the caller adjust
// the cascade/cache knobs before construction.
func buildCascadeTree(t *testing.T, seqs []dist.Sequence, workers int, mut func(*Config)) *Tree[int] {
	t.Helper()
	cfg := Config{NumClusters: 5, Seed: 11, MaxLeafEntries: 16, Concurrency: workers}
	if mut != nil {
		mut(&cfg)
	}
	tr := New[int](cfg)
	items := make([]Item[int], len(seqs))
	for i, s := range seqs {
		items[i] = Item[int]{Seq: s, Payload: i}
	}
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestCascadeOnOffByteIdentical is the tentpole's core acceptance check:
// with the filter-and-refine cascade disabled (every candidate pays the
// exact metric) and enabled (lower bounds + early abandoning + pruning),
// every search mode returns byte-identical results at every worker count.
func TestCascadeOnOffByteIdentical(t *testing.T) {
	seqs := detSequences(150, 71)
	queries := detSequences(12, 72)
	ref := buildCascadeTree(t, seqs, 1, func(c *Config) { c.DisableCascade = true })
	for _, workers := range []int{0, 1, 2, 4} {
		tr := buildCascadeTree(t, seqs, workers, nil)
		for qi, q := range queries {
			for _, k := range []int{1, 5, 20} {
				sameResults(t, labelf("workers=%d q=%d k=%d KNN", workers, qi, k),
					tr.KNN(nil, q, k), ref.KNN(nil, q, k))
				sameResults(t, labelf("workers=%d q=%d k=%d KNNExact", workers, qi, k),
					tr.KNNExact(nil, q, k), ref.KNNExact(nil, q, k))
			}
			for _, radius := range []float64{30, 150, 500} {
				sameResults(t, labelf("workers=%d q=%d r=%v Range", workers, qi, radius),
					tr.Range(nil, q, radius), ref.Range(nil, q, radius))
			}
		}
	}
}

// TestCascadeDTWByteIdentical runs the same check for the DTW cascade —
// its bounds (LB_Kim, LB_Keogh box) are different code paths.
func TestCascadeDTWByteIdentical(t *testing.T) {
	seqs := detSequences(100, 73)
	queries := detSequences(8, 74)
	ref := buildCascadeTree(t, seqs, 1, func(c *Config) {
		c.Cascade = dist.DTWCascade()
		c.DisableCascade = true
	})
	tr := buildCascadeTree(t, seqs, 2, func(c *Config) { c.Cascade = dist.DTWCascade() })
	for qi, q := range queries {
		sameResults(t, labelf("q=%d KNNExact", qi), tr.KNNExact(nil, q, 7), ref.KNNExact(nil, q, 7))
		sameResults(t, labelf("q=%d Range", qi), tr.Range(nil, q, 200), ref.Range(nil, q, 200))
	}
}

// TestSearchStatsAccounting: every record entering the cascade is disposed
// of by exactly one stage.
func TestSearchStatsAccounting(t *testing.T) {
	seqs := detSequences(150, 75)
	tr := buildCascadeTree(t, seqs, 1, nil)
	q := detSequences(1, 76)[0]
	for name, st := range map[string]SearchStats{
		"knn":   statsOf(t, tr, q, false),
		"exact": statsOf(t, tr, q, true),
	} {
		if st.Records == 0 {
			t.Fatalf("%s: no records entered the cascade", name)
		}
		disposed := st.CacheHits + st.LBQuickPruned + st.LBEnvelopePruned + st.DPEvaluated + st.DPAbandoned
		if disposed != st.Records {
			t.Fatalf("%s: dispositions %d != records %d (%+v)", name, disposed, st.Records, st)
		}
		if st.DPEvaluated == 0 {
			t.Fatalf("%s: nothing fully evaluated — the result set came from nowhere (%+v)", name, st)
		}
		if st.LBPruned() != st.LBQuickPruned+st.LBEnvelopePruned {
			t.Fatalf("%s: LBPruned() inconsistent (%+v)", name, st)
		}
	}
}

func statsOf(t *testing.T, tr *Tree[int], q dist.Sequence, exact bool) SearchStats {
	t.Helper()
	var st SearchStats
	var err error
	if exact {
		_, st, err = tr.KNNExactStats(nil, q, 5)
	} else {
		_, st, err = tr.KNNStats(nil, q, 5)
	}
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCascadeReducesDPCells asserts the acceptance bar directly: on a
// workload of clustered trajectories, the cascade evaluates less than half
// the DP cells of the exhaustive exact scan.
func TestCascadeReducesDPCells(t *testing.T) {
	seqs := detSequences(250, 77)
	queries := detSequences(10, 78)
	exact := buildCascadeTree(t, seqs, 1, func(c *Config) { c.DisableCascade = true })
	casc := buildCascadeTree(t, seqs, 1, nil)

	run := func(tr *Tree[int]) int64 {
		before := dist.DPCells()
		for _, q := range queries {
			tr.KNNExact(nil, q, 5)
		}
		return dist.DPCells() - before
	}
	exactCells := run(exact)
	cascCells := run(casc)
	if exactCells == 0 {
		t.Fatal("exact path recorded no DP cells")
	}
	if cascCells*2 > exactCells {
		t.Fatalf("cascade evaluated %d DP cells, exact %d — less than the required 2x reduction",
			cascCells, exactCells)
	}
	t.Logf("DP cells: exact=%d cascade=%d (%.1fx reduction)",
		exactCells, cascCells, float64(exactCells)/float64(cascCells))
}

// mapCache is a minimal DistCache for tests: an unbounded locked map.
type mapCache struct {
	mu   sync.Mutex
	m    map[[2]uint64]float64
	hits int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[[2]uint64]float64)} }

func (c *mapCache) Get(q, s uint64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.m[[2]uint64{q, s}]
	if ok {
		c.hits++
	}
	return d, ok
}

func (c *mapCache) Put(q, s uint64, d float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[[2]uint64{q, s}] = d
}

// TestDistCacheByteIdentical: a repeated query is answered (partly) from
// the cache and the results stay byte-identical to the uncached search.
func TestDistCacheByteIdentical(t *testing.T) {
	seqs := detSequences(150, 79)
	queries := detSequences(6, 80)
	ref := buildCascadeTree(t, seqs, 1, nil)
	cache := newMapCache()
	tr := buildCascadeTree(t, seqs, 2, func(c *Config) { c.Cache = cache })

	for round := 0; round < 2; round++ {
		for qi, q := range queries {
			sameResults(t, labelf("round=%d q=%d KNNExact", round, qi),
				tr.KNNExact(nil, q, 8), ref.KNNExact(nil, q, 8))
			sameResults(t, labelf("round=%d q=%d Range", round, qi),
				tr.Range(nil, q, 150), ref.Range(nil, q, 150))
		}
	}
	if cache.hits == 0 {
		t.Fatal("second round hit the cache zero times")
	}
	_, st, err := tr.KNNExactStats(nil, queries[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Fatalf("stats report no cache hits on a repeated query: %+v", st)
	}
}
