package index

import (
	"math/rand"
	"reflect"
	"testing"

	"strgindex/internal/dist"
)

func bulkSeq(rng *rand.Rand, n int) dist.Sequence {
	s := make(dist.Sequence, n)
	x, y := rng.Float64()*320, rng.Float64()*240
	for i := range s {
		x += rng.NormFloat64() * 6
		y += rng.NormFloat64() * 6
		s[i] = dist.Vec{x, y}
	}
	return s
}

// TestSortedLeafMatchesInsertSorted: the bulk leaf builder must leave
// records in exactly the order sequential insertSorted arrivals produce,
// including the reversed order of equal-key ties.
func TestSortedLeafMatchesInsertSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		recs := make([]leafRecord[int], n)
		for i := range recs {
			// Coarse keys force plenty of exact ties.
			recs[i] = leafRecord[int]{key: float64(rng.Intn(6)), payload: i}
		}
		var seq clusterRecord[int]
		for _, r := range recs {
			seq.insertSorted(r)
		}
		got := sortedLeaf(append([]leafRecord[int](nil), recs...))
		if !reflect.DeepEqual(got, seq.leaf) {
			t.Fatalf("trial %d: sortedLeaf diverges from sequential insertSorted", trial)
		}
	}
}

// TestMergeLeafMatchesInsertSorted: merging a sorted batch into an
// existing leaf must equal per-record insertSorted calls, newcomers
// placed before existing equal keys.
func TestMergeLeafMatchesInsertSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		var base clusterRecord[int]
		for i := 0; i < rng.Intn(30); i++ {
			base.insertSorted(leafRecord[int]{key: float64(rng.Intn(6)), payload: 1000 + i})
		}
		n := 1 + rng.Intn(20)
		recs := make([]leafRecord[int], n)
		for i := range recs {
			recs[i] = leafRecord[int]{key: float64(rng.Intn(6)), payload: i}
		}
		seq := clusterRecord[int]{leaf: append([]leafRecord[int](nil), base.leaf...)}
		for _, r := range recs {
			seq.insertSorted(r)
		}
		got := mergeLeaf(base.leaf, sortedLeaf(append([]leafRecord[int](nil), recs...)))
		if !reflect.DeepEqual(got, seq.leaf) {
			t.Fatalf("trial %d: mergeLeaf diverges from sequential insertSorted", trial)
		}
	}
}

// TestBulkInsertMatchesPerItem: a deferred-split batch insert must build
// the same tree as one-item-at-a-time inserts — same leaves, same order,
// same answers. This is the contract that lets million-OG ingest batches
// skip the per-item sorted-insert shifting.
func TestBulkInsertMatchesPerItem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{
		NumClusters:    4,
		MaxLeafEntries: 1 << 30, // no splits: both paths' cluster sets stay frozen
		Seed:           7,
		Concurrency:    1,
	}
	boot := make([]Item[int], 40)
	for i := range boot {
		boot[i] = Item[int]{Seq: bulkSeq(rng, 10), Payload: i}
	}
	batch := make([]Item[int], 120)
	for i := range batch {
		batch[i] = Item[int]{Seq: bulkSeq(rng, 10), Payload: 1000 + i}
	}

	bulk := New[int](cfg)
	if err := bulk.AddSegment(nil, boot); err != nil {
		t.Fatal(err)
	}
	x := &txn[int]{t: bulk, rootIdx: 0, deferSplit: true}
	if err := bulk.addItemsAt(x, 0, batch); err != nil {
		t.Fatal(err)
	}

	one := New[int](cfg)
	if err := one.AddSegment(nil, boot); err != nil {
		t.Fatal(err)
	}
	for _, it := range batch {
		if err := one.Insert(nil, it.Seq, it.Payload); err != nil {
			t.Fatal(err)
		}
	}

	if bulk.Len() != one.Len() {
		t.Fatalf("bulk holds %d records, per-item %d", bulk.Len(), one.Len())
	}
	for ri := range one.roots {
		a, b := bulk.roots[ri], one.roots[ri]
		if len(a.clusters) != len(b.clusters) {
			t.Fatalf("root %d: %d vs %d clusters", ri, len(a.clusters), len(b.clusters))
		}
		for ci := range b.clusters {
			if !reflect.DeepEqual(a.clusters[ci].leaf, b.clusters[ci].leaf) {
				t.Fatalf("root %d cluster %d: leaves differ between bulk and per-item insertion", ri, ci)
			}
		}
	}
	q := bulkSeq(rng, 10)
	if !reflect.DeepEqual(bulk.KNNExact(nil, q, 7), one.KNNExact(nil, q, 7)) {
		t.Error("bulk and per-item trees answer differently")
	}
}
