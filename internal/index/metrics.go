package index

import "strgindex/internal/obs"

// Process-global search instrumentation, registered against the default
// observability registry (the tree is generic and created per database, so
// per-instance handles would have to thread through every search call for
// no operational gain — one process serves one database).
//
//	strg_index_searches_total{kind}   searches served, by search policy
//	strg_index_node_visits_total      centroid records visited (one EGED
//	                                  evaluation each) during descents
//	strg_index_leaf_scans_total       leaf nodes actually scanned
//	strg_index_leaves_pruned_total    candidate leaves skipped by the
//	                                  metric lower bound (or, for the
//	                                  approximate KNN, by single-cluster
//	                                  descent)
//	strg_index_pruned_ratio           per-search pruned/candidates ratio
var (
	searchesKNN = obs.Default.Counter("strg_index_searches_total",
		"index searches served, by kind", obs.Labels{"kind": "knn"})
	searchesKNNExact = obs.Default.Counter("strg_index_searches_total",
		"index searches served, by kind", obs.Labels{"kind": "knn_exact"})
	searchesRange = obs.Default.Counter("strg_index_searches_total",
		"index searches served, by kind", obs.Labels{"kind": "range"})
	nodeVisits = obs.Default.Counter("strg_index_node_visits_total",
		"cluster-node centroid records visited during search descents", nil)
	leafScans = obs.Default.Counter("strg_index_leaf_scans_total",
		"leaf nodes scanned by searches", nil)
	leavesPruned = obs.Default.Counter("strg_index_leaves_pruned_total",
		"candidate leaves skipped without scanning", nil)
	prunedRatio = obs.Default.Histogram("strg_index_pruned_ratio",
		"per-search fraction of candidate leaves pruned", nil, obs.RatioBuckets)
)

// Distance-cascade instrumentation: per-record disposition counts across
// the filter-and-refine stages (see SearchStats for the taxonomy).
//
//	strg_dist_lb_pruned_total{stage}   records rejected by a lower bound
//	strg_dist_lb_passed_total          records that survived both bounds
//	                                   and reached the DP kernel
//	strg_dist_dp_abandoned_total       DP kernels cut short by the
//	                                   early-abandoning threshold
//	strg_dist_cache_search_hits_total  records answered by the distance
//	                                   cache without touching the cascade
var (
	lbPrunedQuick = obs.Default.Counter("strg_dist_lb_pruned_total",
		"cascade records rejected by a lower bound, by stage",
		obs.Labels{"stage": "quick"})
	lbPrunedEnvelope = obs.Default.Counter("strg_dist_lb_pruned_total",
		"cascade records rejected by a lower bound, by stage",
		obs.Labels{"stage": "envelope"})
	// lbPrunedQuant observes the quantized 8-bit tier's hit rate. Quant
	// prunes are a strict subset of envelope prunes (the bound is weaker
	// by construction) and are counted as LBEnvelopePruned in SearchStats
	// so stats stay identical with the tier on or off; this counter is the
	// only place the tier is separately visible.
	lbPrunedQuant = obs.Default.Counter("strg_dist_lb_pruned_total",
		"cascade records rejected by a lower bound, by stage",
		obs.Labels{"stage": "quant"})
	lbPassed = obs.Default.Counter("strg_dist_lb_passed_total",
		"cascade records that passed all lower bounds into the DP kernel", nil)
	dpAbandoned = obs.Default.Counter("strg_dist_dp_abandoned_total",
		"DP evaluations abandoned early above the pruning threshold", nil)
	cascadeCacheHits = obs.Default.Counter("strg_dist_cache_search_hits_total",
		"cascade records answered by the distance cache", nil)
)

// Shard-maintenance instrumentation: copy-on-write snapshot publication
// and Section 5.3 split activity, inline (on the ingest path) and
// asynchronous (deferred to background evaluation).
//
//	strg_index_shard_version_swaps_total  shard snapshot publications
//	                                      (one per committed write)
//	strg_index_split_evals_total          BIC split evaluations run
//	strg_index_splits_total{mode}         splits adopted, by where the
//	                                      evaluation ran
//	strg_index_stale_reads_total          searches that finished at least
//	                                      one shard version behind the
//	                                      latest published snapshot
//	strg_index_stale_version_lag          versions published during the
//	                                      most recent search (its
//	                                      snapshot's staleness at
//	                                      completion; 0 = fully fresh)
var (
	shardVersionSwaps = obs.Default.Counter("strg_index_shard_version_swaps_total",
		"copy-on-write shard snapshot publications", nil)
	splitEvals = obs.Default.Counter("strg_index_split_evals_total",
		"BIC-gated cluster split evaluations", nil)
	splitsInline = obs.Default.Counter("strg_index_splits_total",
		"cluster splits adopted, by evaluation mode", obs.Labels{"mode": "inline"})
	splitsAsync = obs.Default.Counter("strg_index_splits_total",
		"cluster splits adopted, by evaluation mode", obs.Labels{"mode": "async"})
	staleReads = obs.Default.Counter("strg_index_stale_reads_total",
		"searches completed at least one shard version behind the latest snapshot", nil)
	staleVersionLag = obs.Default.Gauge("strg_index_stale_version_lag",
		"shard versions published during the most recent search", nil)
)

// QuantPruned returns the process-wide number of leaf records pruned by
// the quantized summary tier — the tier's hit rate, observable even
// though SearchStats folds these prunes into LBEnvelopePruned.
func QuantPruned() int64 { return lbPrunedQuant.Value() }

// observeCascade records one search's cascade accounting.
func observeCascade(st SearchStats) {
	if st.LBQuickPruned > 0 {
		lbPrunedQuick.Add(int64(st.LBQuickPruned))
	}
	if st.LBEnvelopePruned > 0 {
		lbPrunedEnvelope.Add(int64(st.LBEnvelopePruned))
	}
	if passed := st.DPEvaluated + st.DPAbandoned; passed > 0 {
		lbPassed.Add(int64(passed))
	}
	if st.DPAbandoned > 0 {
		dpAbandoned.Add(int64(st.DPAbandoned))
	}
	if st.CacheHits > 0 {
		cascadeCacheHits.Add(int64(st.CacheHits))
	}
}

// observeSearch records one search's leaf accounting: scanned leaves,
// pruned leaves and the pruning ratio over the candidate set.
func observeSearch(candidates, scanned int) {
	leafScans.Add(int64(scanned))
	pruned := candidates - scanned
	if pruned > 0 {
		leavesPruned.Add(int64(pruned))
	}
	if candidates > 0 {
		prunedRatio.Observe(float64(pruned) / float64(candidates))
	}
}
