package index

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"strgindex/internal/dist"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tr := New[int](Config{Seed: 1, NumClusters: 3})
	items, _ := patternItems(10, 3, 20)
	if err := tr.AddSegment(bgGraph(0.3), items); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()

	// Gob round trip, as core persistence uses it.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot[int]
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := FromSnapshot(decoded, Config{Seed: 1, NumClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != tr.Len() {
		t.Fatalf("Len = %d, want %d", restored.Len(), tr.Len())
	}
	if restored.NumRoots() != tr.NumRoots() || restored.NumClusters() != tr.NumClusters() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			restored.NumRoots(), restored.NumClusters(), tr.NumRoots(), tr.NumClusters())
	}
	// Identical query results.
	q := trajectory(0, 52, 300, 48, 10)
	a := tr.KNNExact(nil, q, 5)
	b := restored.KNNExact(nil, q, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("result %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFromSnapshotRejectsCorruptKeys(t *testing.T) {
	tr := New[int](Config{Seed: 1, NumClusters: 2})
	items, _ := patternItems(5, 3, 21)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	snap.Roots[0].Clusters[0].Keys[0] += 100 // corrupt a key
	if _, err := FromSnapshot(snap, Config{}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestFromSnapshotRejectsLengthMismatch(t *testing.T) {
	tr := New[int](Config{Seed: 1, NumClusters: 2})
	items, _ := patternItems(5, 3, 22)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	snap.Roots[0].Clusters[0].Payloads = snap.Roots[0].Clusters[0].Payloads[:1]
	if _, err := FromSnapshot(snap, Config{}); err == nil {
		t.Error("length-mismatched snapshot accepted")
	}
}

func TestDelete(t *testing.T) {
	tr := New[int](Config{Seed: 1, NumClusters: 2})
	items, _ := patternItems(6, 3, 23)
	if err := tr.AddSegment(nil, items); err != nil {
		t.Fatal(err)
	}
	n := tr.Len()
	target := items[4]
	if !tr.Delete(target.Seq, func(p int) bool { return p == target.Payload }) {
		t.Fatal("Delete did not find the record")
	}
	if tr.Len() != n-1 {
		t.Errorf("Len = %d, want %d", tr.Len(), n-1)
	}
	// The deleted payload must no longer be retrievable.
	for _, r := range tr.KNNExact(nil, target.Seq, n) {
		if r.Payload == target.Payload {
			t.Error("deleted payload still retrievable")
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleting again fails.
	if tr.Delete(target.Seq, func(p int) bool { return p == target.Payload }) {
		t.Error("second Delete of same record succeeded")
	}
	// Nil predicate matches any payload with that sequence.
	other := items[7]
	if !tr.Delete(other.Seq, nil) {
		t.Error("Delete with nil pred failed")
	}
}

func TestDeleteEmptiesCluster(t *testing.T) {
	tr := New[int](Config{Seed: 1, NumClusters: 1})
	a := trajectory(0, 0, 100, 0, 6)
	if err := tr.AddSegment(nil, []Item[int]{{Seq: a, Payload: 1}}); err != nil {
		t.Fatal(err)
	}
	if tr.NumClusters() != 1 {
		t.Fatalf("clusters = %d", tr.NumClusters())
	}
	if !tr.Delete(a, nil) {
		t.Fatal("Delete failed")
	}
	if tr.NumClusters() != 0 {
		t.Errorf("empty cluster not removed: %d", tr.NumClusters())
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
}

func TestInsertDeleteChurnKeepsInvariants(t *testing.T) {
	tr := New[int](Config{Seed: 2, NumClusters: 3, MaxLeafEntries: 12})
	rng := rand.New(rand.NewSource(31))
	var live []Item[int]
	next := 0
	mk := func() Item[int] {
		seq := make(dist.Sequence, 6+rng.Intn(5))
		for i := range seq {
			seq[i] = dist.Vec{rng.Float64() * 300, rng.Float64() * 200}
		}
		it := Item[int]{Seq: seq, Payload: next}
		next++
		return it
	}
	seed := make([]Item[int], 12)
	for i := range seed {
		seed[i] = mk()
		live = append(live, seed[i])
	}
	if err := tr.AddSegment(nil, seed); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 200; step++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			it := mk()
			if err := tr.Insert(nil, it.Seq, it.Payload); err != nil {
				t.Fatal(err)
			}
			live = append(live, it)
		} else {
			i := rng.Intn(len(live))
			it := live[i]
			if !tr.Delete(it.Seq, func(p int) bool { return p == it.Payload }) {
				t.Fatalf("step %d: Delete of live item %d failed", step, it.Payload)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(live))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
